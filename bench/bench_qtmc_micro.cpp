// Figure 4 — running time of the qTMC scheme with a sequence of q messages.
//
//   Fig. 4(a): algorithms touching hard commitments — qKGen, qHCom, qHOpen
//              and qSOpen-of-a-hard-commitment — grow linearly with q.
//   Fig. 4(b): algorithms touching soft commitments — qSCom and
//              qSOpen-of-a-soft-commitment — are constant in q, as is
//              verification.
//
// The paper runs the pairing-based Libert–Yung scheme on jPBC; this build
// runs the strong-RSA instantiation (DESIGN.md §2), so absolute numbers
// differ while the q-scaling shape is the comparison target.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"

namespace {

using desword::Bytes;
using desword::benchutil::bench_messages;
using desword::benchutil::q_sweep;
using desword::benchutil::qtmc_for;
using desword::benchutil::rsa_bits;
using desword::mercurial::QtmcScheme;

void BM_qKGen(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  // Key generation = RSA modulus sampling + deterministic derivation of
  // the e_i primes and S_i power tables. The derivation dominates and is
  // what scales with q.
  for (auto _ : state) {
    auto keys = QtmcScheme::keygen(q, rsa_bits());
    QtmcScheme scheme(std::move(keys.pk));
    benchmark::DoNotOptimize(scheme.arity());
  }
}

void BM_qHCom(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  QtmcScheme& scheme = qtmc_for(q);
  const auto msgs = bench_messages(q);
  for (auto _ : state) {
    auto pair = scheme.hard_commit(msgs);
    benchmark::DoNotOptimize(pair.first.c0);
  }
}

void BM_qHOpen(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  QtmcScheme& scheme = qtmc_for(q);
  const auto msgs = bench_messages(q);
  const auto [com, dec] = scheme.hard_commit(msgs);
  std::uint32_t pos = 0;
  for (auto _ : state) {
    auto op = scheme.hard_open(dec, pos);
    pos = (pos + 1) % q;
    benchmark::DoNotOptimize(op.lambda);
  }
}

void BM_qSOpen_hard(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  QtmcScheme& scheme = qtmc_for(q);
  const auto msgs = bench_messages(q);
  const auto [com, dec] = scheme.hard_commit(msgs);
  std::uint32_t pos = 0;
  for (auto _ : state) {
    auto tease = scheme.tease_hard(dec, pos);
    pos = (pos + 1) % q;
    benchmark::DoNotOptimize(tease.lambda);
  }
}

void BM_qSCom(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  QtmcScheme& scheme = qtmc_for(q);
  for (auto _ : state) {
    auto pair = scheme.soft_commit();
    benchmark::DoNotOptimize(pair.first.c0);
  }
}

void BM_qSOpen_soft(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  QtmcScheme& scheme = qtmc_for(q);
  scheme.precompute_soft_bases();  // steady-state cost (cached U_i)
  const auto [com, dec] = scheme.soft_commit();
  const auto msgs = bench_messages(q);
  std::uint32_t pos = 0;
  for (auto _ : state) {
    auto tease = scheme.tease_soft(dec, pos, msgs[pos]);
    pos = (pos + 1) % q;
    benchmark::DoNotOptimize(tease.lambda);
  }
}

void BM_qVerOpen(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  QtmcScheme& scheme = qtmc_for(q);
  const auto msgs = bench_messages(q);
  const auto [com, dec] = scheme.hard_commit(msgs);
  const auto op = scheme.hard_open(dec, q / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.verify_open(com, op));
  }
}

void BM_qVerTease(benchmark::State& state) {
  const auto q = static_cast<std::uint32_t>(state.range(0));
  QtmcScheme& scheme = qtmc_for(q);
  const auto msgs = bench_messages(q);
  const auto [com, dec] = scheme.hard_commit(msgs);
  const auto tease = scheme.tease_hard(dec, q / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.verify_tease(com, tease));
  }
}

void register_all() {
  for (const std::uint32_t q : q_sweep()) {
    const auto arg = static_cast<long>(q);
    // Fig 4(a): hard-commitment algorithms (linear in q).
    benchmark::RegisterBenchmark("Fig4a/qKGen", BM_qKGen)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
    benchmark::RegisterBenchmark("Fig4a/qHCom", BM_qHCom)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("Fig4a/qHOpen", BM_qHOpen)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("Fig4a/qSOpen_hard", BM_qSOpen_hard)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond);
    // Fig 4(b): soft-commitment algorithms (constant in q).
    benchmark::RegisterBenchmark("Fig4b/qSCom", BM_qSCom)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("Fig4b/qSOpen_soft", BM_qSOpen_soft)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond);
    // Verification is constant in q (context for Fig. 5).
    benchmark::RegisterBenchmark("Fig4x/qVerOpen", BM_qVerOpen)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("Fig4x/qVerTease", BM_qVerTease)
        ->Arg(arg)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return desword::benchutil::run_benchmarks(argc, argv, "bench_qtmc_micro");
}
