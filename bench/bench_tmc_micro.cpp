// §VI-A TMC micro-benchmark — the seven algorithms of the trapdoor
// mercurial commitment, on both group backends.
//
// The paper's conclusion for this experiment is qualitative: every TMC
// algorithm is lightweight (their slowest, HCom on jPBC, averaged 34 ms),
// so the TMC does not dominate the POC scheme. The same conclusion must
// hold here — and it holds even more strongly on P-256.
//
// The MODP-2048 backend doubles as the "classic DL group" ablation
// (DESIGN.md experiment index, bench_groups role).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mercurial/tmc.h"

namespace {

using desword::Bytes;
using desword::GroupPtr;
using desword::mercurial::TmcKeyPair;
using desword::mercurial::TmcScheme;

struct TmcFixture {
  GroupPtr group;
  TmcKeyPair keys{desword::mercurial::TmcPublicKey{}, desword::Bignum()};
  std::unique_ptr<TmcScheme> scheme;
  Bytes msg;
};

TmcFixture& fixture_for(const std::string& backend) {
  static std::map<std::string, std::unique_ptr<TmcFixture>> cache;
  auto it = cache.find(backend);
  if (it == cache.end()) {
    auto fx = std::make_unique<TmcFixture>();
    fx->group = backend == "p256"
                    ? desword::make_p256_group()
                    : desword::make_modp_group(
                          desword::ModpGroupId::kRfc3526_2048);
    fx->keys = TmcScheme::keygen(fx->group);
    fx->scheme = std::make_unique<TmcScheme>(fx->group, fx->keys.pk);
    fx->msg = desword::benchutil::bench_messages(1)[0];
    it = cache.emplace(backend, std::move(fx)).first;
  }
  return *it->second;
}

void BM_KGen(benchmark::State& state, const std::string& backend) {
  TmcFixture& fx = fixture_for(backend);
  for (auto _ : state) {
    auto keys = TmcScheme::keygen(fx.group);
    benchmark::DoNotOptimize(keys.pk.h);
  }
}

void BM_HCom(benchmark::State& state, const std::string& backend) {
  TmcFixture& fx = fixture_for(backend);
  for (auto _ : state) {
    auto pair = fx.scheme->hard_commit(fx.msg);
    benchmark::DoNotOptimize(pair.first.c0);
  }
}

void BM_HOpen(benchmark::State& state, const std::string& backend) {
  TmcFixture& fx = fixture_for(backend);
  const auto [com, dec] = fx.scheme->hard_commit(fx.msg);
  for (auto _ : state) {
    auto op = fx.scheme->hard_open(dec);
    benchmark::DoNotOptimize(op.r1);
  }
}

void BM_HVer(benchmark::State& state, const std::string& backend) {
  TmcFixture& fx = fixture_for(backend);
  const auto [com, dec] = fx.scheme->hard_commit(fx.msg);
  const auto op = fx.scheme->hard_open(dec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.scheme->verify_open(com, op));
  }
}

void BM_SCom(benchmark::State& state, const std::string& backend) {
  TmcFixture& fx = fixture_for(backend);
  for (auto _ : state) {
    auto pair = fx.scheme->soft_commit();
    benchmark::DoNotOptimize(pair.first.c0);
  }
}

void BM_SOpen(benchmark::State& state, const std::string& backend) {
  TmcFixture& fx = fixture_for(backend);
  const auto [com, dec] = fx.scheme->soft_commit();
  for (auto _ : state) {
    auto tease = fx.scheme->tease_soft(dec, fx.msg);
    benchmark::DoNotOptimize(tease.tau);
  }
}

void BM_SVer(benchmark::State& state, const std::string& backend) {
  TmcFixture& fx = fixture_for(backend);
  const auto [com, dec] = fx.scheme->hard_commit(fx.msg);
  const auto tease = fx.scheme->tease_hard(dec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.scheme->verify_tease(com, tease));
  }
}

void register_all() {
  for (const std::string backend : {"p256", "modp2048"}) {
    const auto reg = [&](const char* name, auto fn) {
      benchmark::RegisterBenchmark(
          ("TMC/" + std::string(name) + "/" + backend).c_str(),
          [fn, backend](benchmark::State& st) { fn(st, backend); })
          ->Unit(benchmark::kMillisecond);
    };
    reg("KGen", BM_KGen);
    reg("HCom", BM_HCom);
    reg("HOpen", BM_HOpen);
    reg("HVer", BM_HVer);
    reg("SCom", BM_SCom);
    reg("SOpen", BM_SOpen);
    reg("SVer", BM_SVer);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return desword::benchutil::run_benchmarks(argc, argv, "bench_tmc_micro");
}
