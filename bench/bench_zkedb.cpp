// ZK-EDB scaling micro-benchmark (extension) — cost vs database size n.
//
// Validates the compactness claims behind the POC design:
//   * EDB-commit time grows ~linearly in n (n·h tree nodes),
//   * commitment size is CONSTANT in n,
//   * proof generation/verification and proof size are independent of n
//     (they only walk one root-to-leaf path),
//   * incremental insert costs ~one path recommit, not a rebuild.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "supplychain/rfid.h"
#include "zkedb/batch.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace {

using namespace desword;
using namespace desword::zkedb;

EdbCrsPtr bench_crs() {
  static const EdbCrsPtr crs = [] {
    EdbCrsPtr c = benchutil::quick_mode() ? benchutil::crs_for(4, 8)
                                          : benchutil::crs_for(16, 32);
    c->qtmc().precompute_soft_bases();
    c->qtmc().precompute_fixed_bases();
    c->tmc().precompute_fixed_bases();
    return c;
  }();
  return crs;
}

std::map<Bytes, Bytes> entries_of(const EdbCrs& crs, std::size_t n) {
  std::map<Bytes, Bytes> entries;
  for (std::size_t i = 0; entries.size() < n; ++i) {
    entries[key_for_identifier(crs, be64(i))] = bytes_of("value");
  }
  return entries;
}

EdbProver& prover_for(std::size_t n) {
  static std::map<std::size_t, std::unique_ptr<EdbProver>> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    const EdbCrsPtr crs = bench_crs();
    crs->qtmc().precompute_soft_bases();
    it = cache.emplace(n, std::make_unique<EdbProver>(crs, entries_of(*crs, n)))
             .first;
  }
  return *it->second;
}

void BM_Commit(benchmark::State& state) {
  const EdbCrsPtr crs = bench_crs();
  const auto entries = entries_of(*crs, static_cast<std::size_t>(state.range(0)));
  EdbProverOptions opts;
  opts.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    EdbProver prover(crs, entries, opts);
    benchmark::DoNotOptimize(prover.commitment_bytes());
  }
}

void BM_BatchProve(benchmark::State& state) {
  EdbProver& prover = prover_for(static_cast<std::size_t>(state.range(0)));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  std::vector<EdbKey> keys;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
       ++i) {
    keys.push_back(key_for_identifier(prover.crs(), be64(i)));
  }
  for (auto _ : state) {
    auto batch = edb_prove_membership_batch(prover, keys, threads);
    benchmark::DoNotOptimize(batch.leaves);
  }
}

void BM_BatchVerify(benchmark::State& state) {
  EdbProver& prover = prover_for(static_cast<std::size_t>(state.range(0)));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  std::vector<EdbKey> keys;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(state.range(0));
       ++i) {
    keys.push_back(key_for_identifier(prover.crs(), be64(i)));
  }
  const auto batch = edb_prove_membership_batch(prover, keys, threads);
  for (auto _ : state) {
    auto values = edb_verify_membership_batch(
        prover.crs(), prover.commitment(), keys, batch, threads);
    if (!values.has_value()) {
      state.SkipWithError("batch verification failed");
      return;
    }
  }
}

void BM_ProveMember(benchmark::State& state) {
  EdbProver& prover = prover_for(static_cast<std::size_t>(state.range(0)));
  const EdbKey key = key_for_identifier(prover.crs(), be64(0));
  for (auto _ : state) {
    auto proof = prover.prove_membership(key);
    benchmark::DoNotOptimize(proof.value);
  }
  state.counters["proof_KB"] = static_cast<double>(
      prover.prove_membership(key).serialize(prover.crs()).size()) / 1024.0;
  state.counters["com_B"] =
      static_cast<double>(prover.commitment_bytes().size());
}

void BM_VerifyMember(benchmark::State& state) {
  EdbProver& prover = prover_for(static_cast<std::size_t>(state.range(0)));
  const EdbKey key = key_for_identifier(prover.crs(), be64(0));
  const auto proof = prover.prove_membership(key);
  for (auto _ : state) {
    auto value =
        edb_verify_membership(prover.crs(), prover.commitment(), key, proof);
    if (!value.has_value()) {
      state.SkipWithError("verification failed");
      return;
    }
  }
}

// Verification throughput over a pile of independent proofs — the headline
// for the batch-verification engine (one multi-exponentiation per worker
// shard vs 3–4 exponentiations per opening). `batched` selects the
// strategy; verdicts are identical (see zkedb/verifier.h).
void BM_VerifyMany(benchmark::State& state, bool batched) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  EdbProver& prover = prover_for(batch);
  std::vector<EdbMembershipProof> proofs;
  std::vector<EdbMembershipQuery> queries;
  proofs.reserve(batch);
  queries.reserve(batch);
  for (std::uint64_t i = 0; i < batch; ++i) {
    const EdbKey key = key_for_identifier(prover.crs(), be64(i));
    proofs.push_back(prover.prove_membership(key));
    queries.push_back({key, &proofs.back()});
  }
  EdbVerifyOptions opts;
  opts.batched = batched;
  opts.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    const auto results = edb_verify_membership_many(
        prover.crs(), prover.commitment(), queries, opts);
    for (const auto& r : results) {
      if (!r.has_value()) {
        state.SkipWithError("verification failed");
        return;
      }
    }
  }
  state.counters["proofs_per_sec"] = benchmark::Counter(
      static_cast<double>(batch),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_IncrementalInsert(benchmark::State& state) {
  const EdbCrsPtr crs = bench_crs();
  crs->qtmc().precompute_soft_bases();
  EdbProver prover(crs, entries_of(*crs, static_cast<std::size_t>(state.range(0))));
  std::uint64_t serial = 1u << 20;
  for (auto _ : state) {
    const EdbKey key = key_for_identifier(*crs, be64(serial++));
    if (prover.contains(key)) continue;
    prover.insert(key, bytes_of("value"));
  }
}

void register_all() {
  const std::vector<long> sizes =
      benchutil::quick_mode() ? std::vector<long>{2, 8}
                              : std::vector<long>{2, 8, 32};
  // threads = 1 is the sequential baseline; the others exercise the pool.
  std::vector<long> thread_counts{1, 4};
  const long hw = static_cast<long>(ThreadPool::default_threads());
  if (hw > 4) thread_counts.push_back(hw);
  for (const long n : sizes) {
    for (const long t : thread_counts) {
      benchmark::RegisterBenchmark("ZkEdb/Commit", BM_Commit)
          ->Args({n, t})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(2);
    }
    benchmark::RegisterBenchmark("ZkEdb/ProveMember", BM_ProveMember)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
    benchmark::RegisterBenchmark("ZkEdb/VerifyMember", BM_VerifyMember)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(10);
    benchmark::RegisterBenchmark("ZkEdb/IncrementalInsert",
                                 BM_IncrementalInsert)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  }
  const long batch_n = benchutil::quick_mode() ? 8 : 32;
  for (const long t : thread_counts) {
    benchmark::RegisterBenchmark("ZkEdb/BatchProve", BM_BatchProve)
        ->Args({batch_n, t})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark("ZkEdb/BatchVerify", BM_BatchVerify)
        ->Args({batch_n, t})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  // Scalar vs batched verification throughput over identical proof piles
  // (tools/run_bench.sh pairs the matching cases into BENCH_zkedb.json).
  const long many_n = benchutil::quick_mode() ? 32 : 64;
  for (const long t : thread_counts) {
    benchmark::RegisterBenchmark("ZkEdb/VerifyManyScalar", BM_VerifyMany,
                                 /*batched=*/false)
        ->Args({many_n, t})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
    benchmark::RegisterBenchmark("ZkEdb/VerifyManyBatched", BM_VerifyMany,
                                 /*batched=*/true)
        ->Args({many_n, t})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return desword::benchutil::run_benchmarks(argc, argv, "bench_zkedb");
}
