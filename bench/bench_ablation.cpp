// Ablation (extension) — design choices called out in DESIGN.md.
//
//   1. SoftMode: kShared backs all absent children of a trie node with ONE
//      soft commitment; kPerChild (the literal CFM/CHLMR construction)
//      creates one per absent child. Measures the commit-time cost of
//      faithfulness and confirms proof costs are unchanged.
//   2. TMC group backend: P-256 vs RFC 3526 MODP-2048 as the leaf-level
//      commitment group inside the full ZK-EDB.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "poc/poc.h"
#include "supplychain/rfid.h"

namespace {

using namespace desword;

zkedb::EdbCrsPtr ablation_crs(zkedb::SoftMode mode, const char* group) {
  static std::map<std::pair<int, std::string>, zkedb::EdbCrsPtr> cache;
  const auto key = std::make_pair(static_cast<int>(mode), std::string(group));
  auto it = cache.find(key);
  if (it == cache.end()) {
    zkedb::EdbConfig cfg;
    cfg.q = benchutil::quick_mode() ? 4 : 16;
    cfg.height = benchutil::quick_mode() ? 8 : 32;
    cfg.rsa_bits = benchutil::quick_mode() ? 512 : benchutil::rsa_bits();
    cfg.group_name = group;
    cfg.soft_mode = mode;
    it = cache.emplace(key, zkedb::generate_crs(cfg)).first;
  }
  return it->second;
}

std::map<Bytes, Bytes> traces_of(std::size_t n) {
  std::map<Bytes, Bytes> traces;
  for (std::size_t i = 0; i < n; ++i) {
    traces[supplychain::make_epc(1, 1, static_cast<std::uint64_t>(i))] =
        bytes_of("production-data");
  }
  return traces;
}

void BM_AggregateSoftMode(benchmark::State& state, zkedb::SoftMode mode) {
  const zkedb::EdbCrsPtr crs = ablation_crs(mode, "p256");
  poc::PocScheme scheme(crs);
  const auto traces = traces_of(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto pair = scheme.aggregate("v1", traces);
    benchmark::DoNotOptimize(pair.first.commitment);
  }
}

void BM_ProveSoftMode(benchmark::State& state, zkedb::SoftMode mode) {
  const zkedb::EdbCrsPtr crs = ablation_crs(mode, "p256");
  crs->qtmc().precompute_soft_bases();
  poc::PocScheme scheme(crs);
  auto [p, dpoc] =
      scheme.aggregate("v1", traces_of(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto proof = scheme.prove(*dpoc, supplychain::make_epc(1, 1, 0));
    benchmark::DoNotOptimize(proof.zk_proof);
  }
}

void BM_AggregateGroup(benchmark::State& state, const char* group) {
  const zkedb::EdbCrsPtr crs =
      ablation_crs(zkedb::SoftMode::kShared, group);
  poc::PocScheme scheme(crs);
  const auto traces = traces_of(8);
  for (auto _ : state) {
    auto pair = scheme.aggregate("v1", traces);
    benchmark::DoNotOptimize(pair.first.commitment);
  }
}

void register_all() {
  for (const long n : {4L, 16L}) {
    benchmark::RegisterBenchmark(
        "Ablation/Aggregate/shared",
        [](benchmark::State& st) {
          BM_AggregateSoftMode(st, zkedb::SoftMode::kShared);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
    benchmark::RegisterBenchmark(
        "Ablation/Aggregate/per_child",
        [](benchmark::State& st) {
          BM_AggregateSoftMode(st, zkedb::SoftMode::kPerChild);
        })
        ->Arg(n)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  benchmark::RegisterBenchmark(
      "Ablation/OwnProofGen/shared",
      [](benchmark::State& st) {
        BM_ProveSoftMode(st, zkedb::SoftMode::kShared);
      })
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(5);
  benchmark::RegisterBenchmark(
      "Ablation/OwnProofGen/per_child",
      [](benchmark::State& st) {
        BM_ProveSoftMode(st, zkedb::SoftMode::kPerChild);
      })
      ->Arg(8)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(5);
  benchmark::RegisterBenchmark(
      "Ablation/Aggregate/leaf_p256",
      [](benchmark::State& st) { BM_AggregateGroup(st, "p256"); })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
  benchmark::RegisterBenchmark(
      "Ablation/Aggregate/leaf_modp2048",
      [](benchmark::State& st) {
        BM_AggregateGroup(
            st, desword::benchutil::quick_mode() ? "modp512-test"
                                                 : "modp2048");
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return desword::benchutil::run_benchmarks(argc, argv, "bench_ablation");
}
