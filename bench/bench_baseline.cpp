// Baseline comparison (extension) — ZK-EDB POC vs the §II-C signature
// strawman.
//
// For growing trace-database sizes n, compares:
//   * credential size          ZK-EDB: O(1)      baseline: O(n)
//   * aggregation time         ZK-EDB: O(n·h)    baseline: O(n)
//   * ids leaked to the proxy  ZK-EDB: none      baseline: all n
//
// The baseline is faster to build and query — the point of the comparison
// is what it gives up: privacy and, more fundamentally, any security
// against a dishonest data owner (see tests/baseline_test.cpp).
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/timing.h"
#include "desword/baseline.h"
#include "poc/poc.h"
#include "supplychain/rfid.h"

namespace {

using namespace desword;

supplychain::TraceDatabase make_db(std::size_t n) {
  supplychain::TraceDatabase db;
  for (std::size_t i = 0; i < n; ++i) {
    supplychain::TraceInfo info;
    info.participant = "v1";
    info.operation = "process";
    info.timestamp = i;
    db.record(supplychain::RfidTrace{
        supplychain::make_epc(1, 1, static_cast<std::uint64_t>(i)), info});
  }
  return db;
}

}  // namespace

int main() {
  const bool quick = benchutil::quick_mode();
  const std::uint32_t q = quick ? 4 : 16;
  const std::uint32_t h = quick ? 8 : 32;
  const zkedb::EdbCrsPtr crs = benchutil::crs_for(q, h);
  crs->qtmc().precompute_soft_bases();
  poc::PocScheme zk_scheme(crs);
  baseline::BaselineScheme sig_scheme(make_p256_group());

  std::printf("ZK-EDB POC (q=%u, h=%u, RSA-%d) vs signature-list baseline\n\n",
              q, h, benchutil::rsa_bits());
  std::printf("%-8s %-14s %-14s %-12s %-12s %-10s\n", "traces", "zk POC size",
              "base POC size", "zk agg(ms)", "base agg(ms)", "ids leaked");

  for (const std::size_t n : quick ? std::vector<std::size_t>{8, 32}
                                   : std::vector<std::size_t>{8, 64, 256}) {
    const supplychain::TraceDatabase db = make_db(n);

    Stopwatch sw;
    auto [zk_poc, zk_dpoc] = zk_scheme.aggregate("v1", db.as_poc_input());
    const double zk_ms = sw.elapsed_ms();

    sw.reset();
    auto [sig_poc, sig_keys] = sig_scheme.aggregate("v1", db);
    const double sig_ms = sw.elapsed_ms();

    std::printf("%-8zu %-11zuB   %-11zuB   %-12.1f %-12.1f %zu/%zu\n", n,
                zk_poc.serialize().size(), sig_poc.serialize().size(), zk_ms,
                sig_ms, sig_poc.entries.size(), n);
    const std::string suffix = "/n:" + std::to_string(n);
    benchutil::emit_json_line("bench_baseline", "ZkAggregate" + suffix,
                              zk_ms * 1e6);
    benchutil::emit_json_line("bench_baseline", "BaselineAggregate" + suffix,
                              sig_ms * 1e6);
  }

  std::printf("\nThe ZK-EDB credential stays constant-size and leaks no\n"
              "product ids; the baseline grows linearly and exposes every\n"
              "id it commits — and a dishonest owner can sign fabricated\n"
              "traces, which is exactly the failure DE-Sword's incentive\n"
              "mechanism addresses.\n");
  return 0;
}
