// Macro benchmark (extension) — end-to-end protocol cost.
//
// The paper's evaluation stops at the POC scheme; this harness measures
// the full distributed protocol built on it:
//
//   * distribution phase wall-clock per task (POC aggregation dominates),
//   * good/bad product query latency as a function of the path length,
//   * wire bytes exchanged per query (connects Table II to the protocol).
//
// Path length is swept by building layered supply chains of increasing
// depth; each product traverses exactly `depth` participants.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench_util.h"
#include "desword/scenario.h"
#include "net/fault_injector.h"
#include "obs/metrics.h"

namespace {

using namespace desword;
using namespace desword::protocol;

zkedb::EdbConfig macro_edb() {
  if (benchutil::quick_mode()) {
    return zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  }
  return zkedb::EdbConfig{16, 32, benchutil::rsa_bits(), "p256",
                          zkedb::SoftMode::kShared};
}

std::vector<long> depth_sweep() {
  if (benchutil::quick_mode()) return {3};
  return {3, 5, 7};
}

struct MacroFixture {
  std::unique_ptr<Scenario> scenario;
  supplychain::ProductId product;  // product with path length == depth
};

MacroFixture& fixture_for(long depth) {
  static std::map<long, std::unique_ptr<MacroFixture>> cache;
  auto it = cache.find(depth);
  if (it == cache.end()) {
    auto fx = std::make_unique<MacroFixture>();
    ScenarioConfig cfg;
    cfg.edb = macro_edb();
    // Latency cases measure real verification work; the repeat-query
    // sweep below owns the cache measurement.
    cfg.verify_cache = false;
    fx->scenario = std::make_unique<Scenario>(
        supplychain::SupplyChainGraph::layered(
            static_cast<std::size_t>(depth), 3, 2),
        cfg);
    supplychain::DistributionConfig dist;
    dist.initial = "L0-0";
    dist.products = supplychain::make_products(1, 0, 4);
    const auto& truth = fx->scenario->run_task("macro-task", dist);
    fx->product = truth.paths.begin()->first;
    it = cache.emplace(depth, std::move(fx)).first;
  }
  return *it->second;
}

void BM_DistributionPhase(benchmark::State& state) {
  // Fresh scenario per iteration: the distribution phase is one-shot.
  const long depth = state.range(0);
  int task = 0;
  ScenarioConfig cfg;
  cfg.edb = macro_edb();
  cfg.verify_cache = false;
  Scenario scenario(supplychain::SupplyChainGraph::layered(
                        static_cast<std::size_t>(depth), 3, 2),
                    cfg);
  for (auto _ : state) {
    supplychain::DistributionConfig dist;
    dist.initial = "L0-0";
    dist.products = supplychain::make_products(
        2, static_cast<std::uint64_t>(task) * 100, 4);
    scenario.run_task("task-" + std::to_string(task++), dist);
  }
  state.counters["participants"] =
      static_cast<double>(scenario.graph().participant_count());
}

void BM_GoodQuery(benchmark::State& state) {
  MacroFixture& fx = fixture_for(state.range(0));
  std::uint64_t bytes_before = fx.scenario->network().total_stats().bytes_sent;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    const QueryOutcome outcome = fx.scenario->proxy().run_query(
        fx.product, ProductQuality::kGood, std::string("macro-task"));
    if (!outcome.complete) {
      state.SkipWithError("query did not complete");
      return;
    }
    ++queries;
  }
  const std::uint64_t bytes_after =
      fx.scenario->network().total_stats().bytes_sent;
  if (queries > 0) {
    state.counters["wire_KB_per_query"] =
        static_cast<double>(bytes_after - bytes_before) / 1024.0 /
        static_cast<double>(queries);
    state.counters["path_len"] = static_cast<double>(state.range(0));
  }
}

void BM_BadQuery(benchmark::State& state) {
  MacroFixture& fx = fixture_for(state.range(0));
  for (auto _ : state) {
    const QueryOutcome outcome = fx.scenario->proxy().run_query(
        fx.product, ProductQuality::kBad, std::string("macro-task"));
    if (!outcome.complete) {
      state.SkipWithError("query did not complete");
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Serial vs concurrent query throughput (executor/scheduler acceptance).
//
// One wave of kQueryBatch good-product queries over the same deployment,
// driven either one run_query() at a time (workers=0, the legacy inline
// path) or as a single run_queries() batch with `workers` crypto threads
// and `in_flight` sessions admitted at once. The queries_per_sec counters
// of the Serial and Concurrent cases pair up in tools/run_bench.sh into
// the "query_throughput" speedup summary.
// ---------------------------------------------------------------------------

constexpr std::size_t kQueryBatch = 16;

struct ThroughputFixture {
  std::unique_ptr<Scenario> scenario;
  std::vector<supplychain::ProductId> products;
};

ThroughputFixture& throughput_fixture(unsigned workers, std::size_t in_flight) {
  static std::map<std::pair<unsigned, std::size_t>,
                  std::unique_ptr<ThroughputFixture>>
      cache;
  const auto key = std::make_pair(workers, in_flight);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto fx = std::make_unique<ThroughputFixture>();
    ScenarioConfig cfg;
    cfg.edb = macro_edb();
    // The serial/concurrent speedup must compare verification work, not
    // cache hits.
    cfg.verify_cache = false;
    cfg.worker_threads = workers;
    cfg.max_concurrent_queries = in_flight;
    fx->scenario = std::make_unique<Scenario>(
        supplychain::SupplyChainGraph::layered(4, 3, 2), cfg);
    supplychain::DistributionConfig dist;
    dist.initial = "L0-0";
    // Serial range chosen to avoid EDB key-prefix collisions in the tiny
    // quick-mode tree (q=4, h=8); see zkedb capacity notes in DESIGN.md.
    dist.products = supplychain::make_products(1, 0, kQueryBatch);
    fx->scenario->run_task("throughput-task", dist);
    fx->products = dist.products;
    it = cache.emplace(key, std::move(fx)).first;
  }
  return *it->second;
}

void BM_QueryThroughput(benchmark::State& state) {
  const unsigned workers = static_cast<unsigned>(state.range(0));
  const std::size_t in_flight = static_cast<std::size_t>(state.range(1));
  ThroughputFixture& fx = throughput_fixture(workers, in_flight);
  std::uint64_t queries = 0;
  const auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    if (in_flight <= 1) {
      for (const auto& product : fx.products) {
        const QueryOutcome outcome = fx.scenario->proxy().run_query(
            product, ProductQuality::kGood, std::string("throughput-task"));
        if (!outcome.complete) {
          state.SkipWithError("query did not complete");
          return;
        }
        ++queries;
      }
    } else {
      for (const QueryOutcome& outcome : fx.scenario->proxy().run_queries(
               fx.products, ProductQuality::kGood,
               std::string("throughput-task"))) {
        if (!outcome.complete) {
          state.SkipWithError("query did not complete");
          return;
        }
        ++queries;
      }
    }
  }
  // Wall-clock rate: google-benchmark rate counters divide by CPU time,
  // which double-counts the worker threads this case exists to measure.
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  state.counters["queries_per_sec"] =
      seconds > 0 ? static_cast<double>(queries) / seconds : 0.0;
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["in_flight"] = static_cast<double>(in_flight);
}

/// (workers, sessions in flight) configurations for the concurrent case.
std::vector<std::pair<long, long>> concurrency_sweep() {
  if (benchutil::quick_mode()) return {{4, 16}};
  return {{2, 4}, {4, 4}, {2, 16}, {4, 16}};
}

// ---------------------------------------------------------------------------
// Repeated-audit sweep (verification cache acceptance, ISSUE 10).
//
// Recall campaigns re-query the same products over and over. The Cold
// case runs with the verification cache disabled — every audit re-walks
// the full proof chain; the Warm case enables the epoch-versioned cache
// and takes one untimed warm-up pass so the timed region measures steady
// state. tools/run_bench.sh pairs the two queries_per_sec counters into
// the "repeat_query" summary and --check gates the Warm hit_rate.
// ---------------------------------------------------------------------------

struct RepeatFixture {
  std::unique_ptr<Scenario> scenario;
  std::vector<supplychain::ProductId> products;
};

RepeatFixture& repeat_fixture(bool cached) {
  static std::map<bool, std::unique_ptr<RepeatFixture>> cache;
  auto it = cache.find(cached);
  if (it == cache.end()) {
    auto fx = std::make_unique<RepeatFixture>();
    ScenarioConfig cfg;
    cfg.edb = macro_edb();
    cfg.verify_cache = cached;
    fx->scenario = std::make_unique<Scenario>(
        supplychain::SupplyChainGraph::layered(3, 3, 2), cfg);
    supplychain::DistributionConfig dist;
    dist.initial = "L0-0";
    dist.products = supplychain::make_products(1, 0, 4);
    fx->scenario->run_task("repeat-task", dist);
    fx->products = dist.products;
    it = cache.emplace(cached, std::move(fx)).first;
  }
  return *it->second;
}

void BM_RepeatQuery(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  RepeatFixture& fx = repeat_fixture(cached);
  const auto audit_pass = [&]() -> bool {
    for (const auto& product : fx.products) {
      const QueryOutcome outcome = fx.scenario->proxy().run_query(
          product, ProductQuality::kGood, std::string("repeat-task"));
      if (!outcome.complete) return false;
    }
    return true;
  };
  if (cached && !audit_pass()) {  // warm-up pass, outside the timed region
    state.SkipWithError("warm-up query did not complete");
    return;
  }
  const std::uint64_t hits_before = obs::metric("zkedb.cache.hit").value();
  const std::uint64_t misses_before = obs::metric("zkedb.cache.miss").value();
  std::uint64_t queries = 0;
  const auto started = std::chrono::steady_clock::now();
  for (auto _ : state) {
    if (!audit_pass()) {
      state.SkipWithError("query did not complete");
      return;
    }
    queries += fx.products.size();
  }
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  const double hits = static_cast<double>(
      obs::metric("zkedb.cache.hit").value() - hits_before);
  const double misses = static_cast<double>(
      obs::metric("zkedb.cache.miss").value() - misses_before);
  state.counters["queries_per_sec"] =
      seconds > 0 ? static_cast<double>(queries) / seconds : 0.0;
  state.counters["hit_rate"] =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;
  state.counters["cached"] = cached ? 1.0 : 0.0;
}

// ---------------------------------------------------------------------------
// Query latency under injected loss (fault tolerance acceptance).
//
// Same deployment as the latency cases, but queried through a FaultInjector
// dropping each frame with probability loss_permille/1000. Distribution runs
// fault-free (cfg.fault_plan has drop_rate 0 until the plan is swapped in),
// so the sweep isolates the query path: retransmission backoff is the only
// recovery mechanism exercised. Counters record the recovery cost —
// retransmits_per_query and the fraction of queries that still complete
// within the proxy's deadline budget. tools/run_bench.sh pairs each lossy
// case with the loss=0 baseline into the "fault_resilience" summary.
// ---------------------------------------------------------------------------

struct FaultFixture {
  std::unique_ptr<Scenario> scenario;
  supplychain::ProductId product;
};

FaultFixture& fault_fixture(long loss_permille) {
  static std::map<long, std::unique_ptr<FaultFixture>> cache;
  auto it = cache.find(loss_permille);
  if (it == cache.end()) {
    auto fx = std::make_unique<FaultFixture>();
    ScenarioConfig cfg;
    cfg.edb = macro_edb();
    cfg.verify_cache = false;
    cfg.fault_plan = net::FaultPlan{};  // fault mode on, no faults yet
    cfg.fault_plan->seed = 11;
    Scenario& scenario = *(fx->scenario = std::make_unique<Scenario>(
                               supplychain::SupplyChainGraph::layered(3, 3, 2),
                               cfg));
    supplychain::DistributionConfig dist;
    dist.initial = "L0-0";
    dist.products = supplychain::make_products(1, 0, 4);
    const auto& truth = scenario.run_task("fault-task", dist);
    fx->product = truth.paths.begin()->first;
    // Faults start only now that distribution has settled.
    net::FaultPlan plan;
    plan.seed = 11;
    plan.default_faults.drop_rate =
        static_cast<double>(loss_permille) / 1000.0;
    scenario.fault_injector()->set_plan(plan);
    it = cache.emplace(loss_permille, std::move(fx)).first;
  }
  return *it->second;
}

void BM_FaultedQuery(benchmark::State& state) {
  const long loss_permille = state.range(0);
  FaultFixture& fx = fault_fixture(loss_permille);
  const std::uint64_t fired_before =
      obs::metric("net.retransmit.fired").value();
  std::uint64_t queries = 0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    const QueryOutcome outcome = fx.scenario->proxy().run_query(
        fx.product, ProductQuality::kGood, std::string("fault-task"));
    ++queries;
    // Under loss a query may exhaust its deadline budget and come back
    // incomplete; that is the degradation being measured, not an error.
    if (outcome.complete) ++completed;
  }
  if (queries > 0) {
    const std::uint64_t fired_after =
        obs::metric("net.retransmit.fired").value();
    state.counters["loss_pct"] =
        static_cast<double>(loss_permille) / 10.0;
    state.counters["retransmits_per_query"] =
        static_cast<double>(fired_after - fired_before) /
        static_cast<double>(queries);
    state.counters["success_rate"] =
        static_cast<double>(completed) / static_cast<double>(queries);
  }
}

std::vector<long> loss_sweep() {
  if (benchutil::quick_mode()) return {0, 300};
  return {0, 100, 300};
}

void register_all() {
  for (const long depth : depth_sweep()) {
    benchmark::RegisterBenchmark("Macro/DistributionPhase",
                                 BM_DistributionPhase)
        ->Arg(depth)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(2);
    benchmark::RegisterBenchmark("Macro/GoodQuery", BM_GoodQuery)
        ->Arg(depth)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
    benchmark::RegisterBenchmark("Macro/BadQuery", BM_BadQuery)
        ->Arg(depth)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  }
  benchmark::RegisterBenchmark("Macro/QueryThroughputSerial",
                               BM_QueryThroughput)
      ->Args({0, 1})
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
  for (const auto& [workers, in_flight] : concurrency_sweep()) {
    benchmark::RegisterBenchmark("Macro/QueryThroughputConcurrent",
                                 BM_QueryThroughput)
        ->Args({workers, in_flight})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  benchmark::RegisterBenchmark("Macro/RepeatQueryCold", BM_RepeatQuery)
      ->Arg(0)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
  benchmark::RegisterBenchmark("Macro/RepeatQueryWarm", BM_RepeatQuery)
      ->Arg(1)
      ->Unit(benchmark::kMillisecond)
      ->Iterations(3);
  for (const long loss : loss_sweep()) {
    benchmark::RegisterBenchmark("Macro/FaultedQuery", BM_FaultedQuery)
        ->Arg(loss)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(5);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return desword::benchutil::run_benchmarks(argc, argv, "bench_macro");
}
