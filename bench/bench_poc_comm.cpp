// Table II — communication overhead of the POC scheme.
//
// Reproduces the paper's table: ownership and non-ownership proof sizes
// for (q, h) ∈ {(8,43), (16,32), (32,26), (64,22), (128,19)} with
// q^h >= 2^128. Sizes are measured on the actual serialized proofs.
//
// Expected shape (paper): size grows with h, is independent of q, and the
// ownership proof is slightly larger than the non-ownership proof.
// Absolute bytes are larger here than in the paper because RSA-2048 group
// elements (256 B) replace pairing-group elements (see DESIGN.md §2).
// Additionally measures END-TO-END query cost (latency and wire bytes of
// one verified good-product path query, distribution excluded) over both
// transports: the in-process simulator and the real TCP SocketTransport on
// loopback. Byte counts use the same logical-payload accounting on both,
// so the pair isolates the transport's latency contribution.
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "desword/scenario.h"
#include "net/socket_transport.h"
#include "poc/poc.h"
#include "supplychain/rfid.h"

namespace {

using namespace desword;

struct Row {
  std::uint32_t q;
  std::uint32_t h;
  std::size_t own_bytes;
  std::size_t nown_bytes;
};

Row measure(std::uint32_t q, std::uint32_t h) {
  const zkedb::EdbCrsPtr crs = benchutil::crs_for(q, h);
  poc::PocScheme scheme(crs);

  // A small trace database; proof size does not depend on it.
  std::map<Bytes, Bytes> traces;
  for (std::uint64_t i = 0; i < 4; ++i) {
    traces[supplychain::make_epc(1, 1, i)] = bytes_of("production-data");
  }
  auto [p, dpoc] = scheme.aggregate("v1", traces);

  const Bytes own =
      scheme.prove(*dpoc, supplychain::make_epc(1, 1, 0)).serialize();
  const Bytes nown =
      scheme.prove(*dpoc, supplychain::make_epc(9, 9, 9)).serialize();

  // Sanity: both proofs must verify before their size counts.
  if (scheme.verify(p, supplychain::make_epc(1, 1, 0),
                    poc::PocProof::deserialize(own))
          .verdict != poc::PocVerdict::kTrace ||
      scheme.verify(p, supplychain::make_epc(9, 9, 9),
                    poc::PocProof::deserialize(nown))
          .verdict != poc::PocVerdict::kValid) {
    std::fprintf(stderr, "proof verification failed at q=%u h=%u\n", q, h);
    std::exit(1);
  }
  return Row{q, h, own.size(), nown.size()};
}

// ---------------------------------------------------------------------------
// End-to-end query cost over SimTransport vs SocketTransport
// ---------------------------------------------------------------------------

using namespace desword::protocol;
using namespace desword::supplychain;

zkedb::EdbConfig e2e_edb() {
  return zkedb::EdbConfig{4, 8, benchutil::rsa_bits(), "p256",
                          zkedb::SoftMode::kShared};
}

DistributionConfig e2e_dist() {
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 1, 4);
  dist.seed = 42;
  return dist;
}

struct E2eResult {
  double latency_ns = 0;
  std::uint64_t bytes = 0;
  std::size_t hops = 0;
};

/// One good-product query through the Scenario harness (SimTransport).
E2eResult e2e_sim() {
  ScenarioConfig config;
  config.edb = e2e_edb();
  Scenario scenario(SupplyChainGraph::paper_example(), config);
  const DistributionConfig dist = e2e_dist();
  scenario.run_task("bench-task", dist);

  scenario.network().reset_stats();
  const auto t0 = std::chrono::steady_clock::now();
  const QueryOutcome outcome =
      scenario.proxy().run_query(dist.products[0], ProductQuality::kGood);
  const auto t1 = std::chrono::steady_clock::now();
  if (!outcome.complete) {
    std::fprintf(stderr, "sim e2e query did not complete\n");
    std::exit(1);
  }
  E2eResult r;
  r.latency_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  r.bytes = scenario.network().total_stats().bytes_sent;
  r.hops = outcome.path.size();
  return r;
}

/// Same deployment as separate SocketTransport endpoints on TCP loopback:
/// the proxy and every participant own their own transport (one listening
/// socket each), exactly like the multi-process `desword serve-*` daemons,
/// but pumped in-process so the bench stays self-contained.
E2eResult e2e_socket() {
  const auto addresses = std::make_shared<std::map<net::NodeId, std::string>>();
  const auto options = [&] {
    net::SocketTransportOptions o;
    o.resolve = [addresses](const net::NodeId& id)
        -> std::optional<std::string> {
      const auto it = addresses->find(id);
      if (it == addresses->end()) return std::nullopt;
      return it->second;
    };
    return o;
  };

  const SupplyChainGraph graph = SupplyChainGraph::paper_example();
  std::vector<std::unique_ptr<net::SocketTransport>> transports;
  const auto new_transport = [&](const net::NodeId& id) {
    transports.push_back(std::make_unique<net::SocketTransport>(options()));
    (*addresses)[id] = transports.back()->local_address();
    return transports.back().get();
  };
  const auto pump = [&](const std::function<bool()>& done) {
    for (int i = 0; i < 1000000 && !done(); ++i) {
      for (const auto& t : transports) t->poll(1);
    }
    if (!done()) {
      std::fprintf(stderr, "socket e2e deployment stalled\n");
      std::exit(1);
    }
  };

  const auto crs_cache = std::make_shared<CrsCache>();
  ProxyConfig proxy_config;
  proxy_config.edb = e2e_edb();
  ProxyDeps deps;
  deps.crs_cache = crs_cache;
  Proxy proxy("proxy", *new_transport("proxy"), std::move(deps),
              std::move(proxy_config));
  std::map<ParticipantId, std::unique_ptr<Participant>> participants;
  for (const ParticipantId& id : graph.participants()) {
    participants.emplace(
        id, std::make_unique<Participant>(
                id, *new_transport(id), "proxy",
                ParticipantDeps{.crs_cache = crs_cache}));
  }

  // Distribution phase across the sockets (wiring as in Scenario).
  const DistributionConfig dist = e2e_dist();
  const DistributionResult result = run_distribution(graph, dist);
  for (const ParticipantId& id : result.involved) {
    Participant& p = *participants.at(id);
    p.load_database(result.databases.at(id));
    TaskSetup setup;
    setup.task_id = "bench-task";
    setup.initial = dist.initial;
    setup.involved = result.involved;
    for (const auto& [parent, children] : result.used_edges) {
      if (parent == id) setup.children.assign(children.begin(), children.end());
      if (children.count(id) > 0) setup.parents.push_back(parent);
    }
    for (const auto& [product, path] : result.paths) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (path[i] == id) setup.shipments[product] = path[i + 1];
      }
    }
    p.begin_task(setup);
  }
  participants.at(dist.initial)->initiate_task("bench-task");
  pump([&] { return proxy.task_list("bench-task") != nullptr; });

  const auto bytes_now = [&] {
    std::uint64_t total = 0;
    for (const auto& t : transports) total += t->total_stats().bytes_sent;
    return total;
  };
  const std::uint64_t bytes_before = bytes_now();
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t qid =
      proxy.begin_query(dist.products[0], ProductQuality::kGood);
  pump([&] { return proxy.outcome(qid) != nullptr; });
  const auto t1 = std::chrono::steady_clock::now();
  const QueryOutcome& outcome = *proxy.outcome(qid);
  if (!outcome.complete) {
    std::fprintf(stderr, "socket e2e query did not complete\n");
    std::exit(1);
  }
  E2eResult r;
  r.latency_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  r.bytes = bytes_now() - bytes_before;
  r.hops = outcome.path.size();
  return r;
}

void run_e2e() {
  std::printf("\nEnd-to-end good-product query (paper Fig. 1 chain, %d-bit"
              " RSA)\n", benchutil::rsa_bits());
  const E2eResult sim = e2e_sim();
  const E2eResult sock = e2e_socket();
  std::printf("%-22s %-12s %-14s %s\n", "Transport", "Path hops", "Latency",
              "Wire bytes");
  std::printf("%-22s %-12zu %-11.2fms  %9llu\n", "SimTransport", sim.hops,
              sim.latency_ns / 1e6,
              static_cast<unsigned long long>(sim.bytes));
  std::printf("%-22s %-12zu %-11.2fms  %9llu\n", "SocketTransport (TCP)",
              sock.hops, sock.latency_ns / 1e6,
              static_cast<unsigned long long>(sock.bytes));
  benchutil::emit_json_line("bench_poc_comm", "E2EQueryLatencySim",
                            sim.latency_ns);
  benchutil::emit_json_line("bench_poc_comm", "E2EQueryBytesSim",
                            static_cast<double>(sim.bytes));
  benchutil::emit_json_line("bench_poc_comm", "E2EQueryLatencySocket",
                            sock.latency_ns);
  benchutil::emit_json_line("bench_poc_comm", "E2EQueryBytesSocket",
                            static_cast<double>(sock.bytes));
}

}  // namespace

int main() {
  std::printf("Table II: communication overhead of the POC scheme\n");
  std::printf("(RSA modulus: %d bits; paper used pairing-group elements)\n\n",
              benchutil::rsa_bits());
  std::printf("%-18s %-13s %-16s %-16s\n", "Breaching factor q",
              "Tree height h", "Own proof", "N-Own proof");
  for (const auto& [q, h] : benchutil::qh_sweep()) {
    const Row row = measure(q, h);
    std::printf("%-18u %-13u %-10.2fKB     %-10.2fKB\n", row.q, row.h,
                static_cast<double>(row.own_bytes) / 1024.0,
                static_cast<double>(row.nown_bytes) / 1024.0);
    const std::string suffix =
        "/q:" + std::to_string(row.q) + "/h:" + std::to_string(row.h);
    // Proof sizes are the measurement here; report bytes in the ns_per_op
    // slot (the schema's one numeric field) under explicit case names.
    benchutil::emit_json_line("bench_poc_comm", "OwnProofBytes" + suffix,
                              static_cast<double>(row.own_bytes));
    benchutil::emit_json_line("bench_poc_comm", "NonOwnProofBytes" + suffix,
                              static_cast<double>(row.nown_bytes));
  }
  std::printf("\npaper (jPBC):       43 -> 8.94/8.08KB ... 19 -> 3.97/3.58KB"
              " (same h-proportional shape)\n");
  run_e2e();
  return 0;
}
