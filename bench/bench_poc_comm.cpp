// Table II — communication overhead of the POC scheme.
//
// Reproduces the paper's table: ownership and non-ownership proof sizes
// for (q, h) ∈ {(8,43), (16,32), (32,26), (64,22), (128,19)} with
// q^h >= 2^128. Sizes are measured on the actual serialized proofs.
//
// Expected shape (paper): size grows with h, is independent of q, and the
// ownership proof is slightly larger than the non-ownership proof.
// Absolute bytes are larger here than in the paper because RSA-2048 group
// elements (256 B) replace pairing-group elements (see DESIGN.md §2).
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "poc/poc.h"
#include "supplychain/rfid.h"

namespace {

using namespace desword;

struct Row {
  std::uint32_t q;
  std::uint32_t h;
  std::size_t own_bytes;
  std::size_t nown_bytes;
};

Row measure(std::uint32_t q, std::uint32_t h) {
  const zkedb::EdbCrsPtr crs = benchutil::crs_for(q, h);
  poc::PocScheme scheme(crs);

  // A small trace database; proof size does not depend on it.
  std::map<Bytes, Bytes> traces;
  for (std::uint64_t i = 0; i < 4; ++i) {
    traces[supplychain::make_epc(1, 1, i)] = bytes_of("production-data");
  }
  auto [p, dpoc] = scheme.aggregate("v1", traces);

  const Bytes own =
      scheme.prove(*dpoc, supplychain::make_epc(1, 1, 0)).serialize();
  const Bytes nown =
      scheme.prove(*dpoc, supplychain::make_epc(9, 9, 9)).serialize();

  // Sanity: both proofs must verify before their size counts.
  if (scheme.verify(p, supplychain::make_epc(1, 1, 0),
                    poc::PocProof::deserialize(own))
          .verdict != poc::PocVerdict::kTrace ||
      scheme.verify(p, supplychain::make_epc(9, 9, 9),
                    poc::PocProof::deserialize(nown))
          .verdict != poc::PocVerdict::kValid) {
    std::fprintf(stderr, "proof verification failed at q=%u h=%u\n", q, h);
    std::exit(1);
  }
  return Row{q, h, own.size(), nown.size()};
}

}  // namespace

int main() {
  std::printf("Table II: communication overhead of the POC scheme\n");
  std::printf("(RSA modulus: %d bits; paper used pairing-group elements)\n\n",
              benchutil::rsa_bits());
  std::printf("%-18s %-13s %-16s %-16s\n", "Breaching factor q",
              "Tree height h", "Own proof", "N-Own proof");
  for (const auto& [q, h] : benchutil::qh_sweep()) {
    const Row row = measure(q, h);
    std::printf("%-18u %-13u %-10.2fKB     %-10.2fKB\n", row.q, row.h,
                static_cast<double>(row.own_bytes) / 1024.0,
                static_cast<double>(row.nown_bytes) / 1024.0);
    const std::string suffix =
        "/q:" + std::to_string(row.q) + "/h:" + std::to_string(row.h);
    // Proof sizes are the measurement here; report bytes in the ns_per_op
    // slot (the schema's one numeric field) under explicit case names.
    benchutil::emit_json_line("bench_poc_comm", "OwnProofBytes" + suffix,
                              static_cast<double>(row.own_bytes));
    benchutil::emit_json_line("bench_poc_comm", "NonOwnProofBytes" + suffix,
                              static_cast<double>(row.nown_bytes));
  }
  std::printf("\npaper (jPBC):       43 -> 8.94/8.08KB ... 19 -> 3.97/3.58KB"
              " (same h-proportional shape)\n");
  return 0;
}
