// Figure 5 — computation overhead of ownership / non-ownership proofs.
//
// Measures, for every Table II (q, h) configuration:
//   * ownership proof generation   (grows with q and h)
//   * ownership proof verification (grows with h only)
//   * non-ownership proof generation / verification ("similar" per the
//     paper — included for completeness)
//   * POC aggregation (extension: the distribution-phase commit cost)
//
// Expected shape (paper): generation is far more expensive than
// verification, generation increases with both q and h, verification only
// with h.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "poc/poc.h"
#include "supplychain/rfid.h"

namespace {

using namespace desword;

struct PocFixture {
  zkedb::EdbCrsPtr crs;
  std::unique_ptr<poc::PocScheme> scheme;
  poc::Poc poc;
  std::unique_ptr<poc::PocDecommitment> dpoc;
  Bytes owned_id;
  Bytes ghost_id;
  Bytes own_proof;
  Bytes nown_proof;
};

PocFixture& fixture_for(std::uint32_t q, std::uint32_t h) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>,
                  std::unique_ptr<PocFixture>>
      cache;
  const auto key = std::make_pair(q, h);
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto fx = std::make_unique<PocFixture>();
    fx->crs = benchutil::crs_for(q, h);
    fx->crs->qtmc().precompute_soft_bases();
    fx->crs->qtmc().precompute_fixed_bases();
    fx->crs->tmc().precompute_fixed_bases();
    fx->scheme = std::make_unique<poc::PocScheme>(fx->crs);
    std::map<Bytes, Bytes> traces;
    for (std::uint64_t i = 0; i < 4; ++i) {
      traces[supplychain::make_epc(1, 1, i)] = bytes_of("production-data");
    }
    auto [p, dpoc] = fx->scheme->aggregate("v1", traces);
    fx->poc = p;
    fx->dpoc = std::move(dpoc);
    fx->owned_id = supplychain::make_epc(1, 1, 0);
    fx->ghost_id = supplychain::make_epc(9, 9, 9);
    fx->own_proof = fx->scheme->prove(*fx->dpoc, fx->owned_id).serialize();
    fx->nown_proof = fx->scheme->prove(*fx->dpoc, fx->ghost_id).serialize();
    it = cache.emplace(key, std::move(fx)).first;
  }
  return *it->second;
}

void BM_OwnProofGen(benchmark::State& state) {
  PocFixture& fx = fixture_for(static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(1)));
  for (auto _ : state) {
    auto proof = fx.scheme->prove(*fx.dpoc, fx.owned_id);
    benchmark::DoNotOptimize(proof.zk_proof);
  }
}

void BM_OwnProofVerify(benchmark::State& state) {
  PocFixture& fx = fixture_for(static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(1)));
  const poc::PocProof proof = poc::PocProof::deserialize(fx.own_proof);
  for (auto _ : state) {
    auto result = fx.scheme->verify(fx.poc, fx.owned_id, proof);
    if (result.verdict != poc::PocVerdict::kTrace) {
      state.SkipWithError("ownership proof did not verify");
      return;
    }
  }
}

void BM_NOwnProofGen(benchmark::State& state) {
  PocFixture& fx = fixture_for(static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(1)));
  for (auto _ : state) {
    auto proof = fx.scheme->prove(*fx.dpoc, fx.ghost_id);
    benchmark::DoNotOptimize(proof.zk_proof);
  }
}

void BM_NOwnProofVerify(benchmark::State& state) {
  PocFixture& fx = fixture_for(static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(1)));
  const poc::PocProof proof = poc::PocProof::deserialize(fx.nown_proof);
  for (auto _ : state) {
    auto result = fx.scheme->verify(fx.poc, fx.ghost_id, proof);
    if (result.verdict != poc::PocVerdict::kValid) {
      state.SkipWithError("non-ownership proof did not verify");
      return;
    }
  }
}

void BM_PocAggregate(benchmark::State& state) {
  PocFixture& fx = fixture_for(static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(1)));
  std::map<Bytes, Bytes> traces;
  for (std::uint64_t i = 0; i < 4; ++i) {
    traces[supplychain::make_epc(1, 1, i)] = bytes_of("production-data");
  }
  for (auto _ : state) {
    auto pair = fx.scheme->aggregate("v1", traces);
    benchmark::DoNotOptimize(pair.first.commitment);
  }
}

// Distribution-phase commit with a bigger trace set, swept over the thread
// count: range(2) = workers for the parallel trie build (1 = sequential
// baseline).
void BM_PocAggregateThreads(benchmark::State& state) {
  PocFixture& fx = fixture_for(static_cast<std::uint32_t>(state.range(0)),
                               static_cast<std::uint32_t>(state.range(1)));
  zkedb::EdbProverOptions opts;
  opts.threads = static_cast<unsigned>(state.range(2));
  std::map<Bytes, Bytes> traces;
  for (std::uint64_t i = 0; i < 16; ++i) {
    traces[supplychain::make_epc(1, 1, i)] = bytes_of("production-data");
  }
  for (auto _ : state) {
    auto pair = fx.scheme->aggregate("v1", traces, opts);
    benchmark::DoNotOptimize(pair.first.commitment);
  }
}

void register_all() {
  for (const auto& [q, h] : desword::benchutil::qh_sweep()) {
    const auto add = [q = q, h = h](const char* name, auto* fn,
                                    int iterations) {
      benchmark::RegisterBenchmark(name, fn)
          ->Args({static_cast<long>(q), static_cast<long>(h)})
          ->Unit(benchmark::kMillisecond)
          ->Iterations(iterations);
    };
    add("Fig5/OwnProofGen", BM_OwnProofGen, 5);
    add("Fig5/OwnProofVerify", BM_OwnProofVerify, 20);
    add("Fig5/NOwnProofGen", BM_NOwnProofGen, 5);
    add("Fig5/NOwnProofVerify", BM_NOwnProofVerify, 20);
    add("Ext/PocAggregate", BM_PocAggregate, 3);
  }
  // Thread sweep on one representative configuration.
  const auto [q, h] = desword::benchutil::qh_sweep().front();
  std::vector<long> thread_counts{1, 4};
  const long hw = static_cast<long>(ThreadPool::default_threads());
  if (hw > 4) thread_counts.push_back(hw);
  for (const long t : thread_counts) {
    benchmark::RegisterBenchmark("Ext/PocAggregateThreads",
                                 BM_PocAggregateThreads)
        ->Args({static_cast<long>(q), static_cast<long>(h), t})
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return desword::benchutil::run_benchmarks(argc, argv, "bench_poc_comp");
}
