// Shared helpers for the DE-Sword benchmark suite.
//
// Environment knobs:
//   DESWORD_BENCH_RSA_BITS   qTMC modulus size (default 2048; set 1024 or
//                            512 for quick runs)
//   DESWORD_BENCH_QUICK      if set (non-empty), benchmarks shrink their
//                            parameter sweeps for smoke testing
#pragma once

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/hash.h"
#include "mercurial/qtmc.h"
#include "zkedb/params.h"

namespace desword::benchutil {

inline int rsa_bits() {
  if (const char* env = std::getenv("DESWORD_BENCH_RSA_BITS")) {
    const int bits = std::atoi(env);
    if (bits >= 256) return bits;
  }
  return 2048;
}

inline bool quick_mode() {
  const char* env = std::getenv("DESWORD_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// The paper's Figure 4 arity sweep.
inline std::vector<std::uint32_t> q_sweep() {
  if (quick_mode()) return {8, 32};
  return {8, 16, 32, 64, 128};
}

/// The paper's Table II / Figure 5 (q, h) sweep with q^h >= 2^128.
inline std::vector<std::pair<std::uint32_t, std::uint32_t>> qh_sweep() {
  if (quick_mode()) return {{8, 43}, {32, 26}};
  return {{8, 43}, {16, 32}, {32, 26}, {64, 22}, {128, 19}};
}

/// Deterministic 16-byte messages.
inline std::vector<Bytes> bench_messages(std::uint32_t count) {
  std::vector<Bytes> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(hash_to_128("bench-msg", {be64(i)}));
  }
  return out;
}

/// Caches one qTMC scheme per arity so every benchmark in a binary shares
/// the (expensive) key material.
inline mercurial::QtmcScheme& qtmc_for(std::uint32_t q) {
  static std::map<std::uint32_t, std::unique_ptr<mercurial::QtmcScheme>> cache;
  auto it = cache.find(q);
  if (it == cache.end()) {
    auto keys = mercurial::QtmcScheme::keygen(q, rsa_bits());
    it = cache
             .emplace(q, std::make_unique<mercurial::QtmcScheme>(
                             std::move(keys.pk)))
             .first;
  }
  return *it->second;
}

/// Caches one ZK-EDB CRS per (q, h) configuration.
inline zkedb::EdbCrsPtr crs_for(std::uint32_t q, std::uint32_t h) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>, zkedb::EdbCrsPtr>
      cache;
  const auto key = std::make_pair(q, h);
  auto it = cache.find(key);
  if (it == cache.end()) {
    zkedb::EdbConfig cfg;
    cfg.q = q;
    cfg.height = h;
    cfg.rsa_bits = rsa_bits();
    cfg.group_name = "p256";
    it = cache.emplace(key, zkedb::generate_crs(cfg)).first;
  }
  return it->second;
}

}  // namespace desword::benchutil
