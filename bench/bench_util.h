// Shared helpers for the DE-Sword benchmark suite.
//
// Environment knobs:
//   DESWORD_BENCH_RSA_BITS   qTMC modulus size (default 2048; set 1024 or
//                            512 for quick runs)
//   DESWORD_BENCH_QUICK      if set (non-empty), benchmarks shrink their
//                            parameter sweeps for smoke testing
//   DESWORD_THREADS          worker count for the parallel stages (see
//                            common/thread_pool.h); also lands in the
//                            "threads" field of the JSON result lines
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "crypto/hash.h"
#include "mercurial/qtmc.h"
#include "obs/metrics.h"
#include "zkedb/params.h"

namespace desword::benchutil {

inline int rsa_bits() {
  if (const char* env = std::getenv("DESWORD_BENCH_RSA_BITS")) {
    const int bits = std::atoi(env);
    if (bits >= 256) return bits;
  }
  return 2048;
}

inline bool quick_mode() {
  const char* env = std::getenv("DESWORD_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// The paper's Figure 4 arity sweep.
inline std::vector<std::uint32_t> q_sweep() {
  if (quick_mode()) return {8, 32};
  return {8, 16, 32, 64, 128};
}

/// The paper's Table II / Figure 5 (q, h) sweep with q^h >= 2^128.
inline std::vector<std::pair<std::uint32_t, std::uint32_t>> qh_sweep() {
  if (quick_mode()) return {{8, 43}, {32, 26}};
  return {{8, 43}, {16, 32}, {32, 26}, {64, 22}, {128, 19}};
}

/// Deterministic 16-byte messages.
inline std::vector<Bytes> bench_messages(std::uint32_t count) {
  std::vector<Bytes> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    out.push_back(hash_to_128("bench-msg", {be64(i)}));
  }
  return out;
}

/// Caches one qTMC scheme per arity so every benchmark in a binary shares
/// the (expensive) key material.
inline mercurial::QtmcScheme& qtmc_for(std::uint32_t q) {
  static std::map<std::uint32_t, std::unique_ptr<mercurial::QtmcScheme>> cache;
  auto it = cache.find(q);
  if (it == cache.end()) {
    auto keys = mercurial::QtmcScheme::keygen(q, rsa_bits());
    it = cache
             .emplace(q, std::make_unique<mercurial::QtmcScheme>(
                             std::move(keys.pk)))
             .first;
  }
  return *it->second;
}

/// Caches one ZK-EDB CRS per (q, h) configuration.
inline zkedb::EdbCrsPtr crs_for(std::uint32_t q, std::uint32_t h) {
  static std::map<std::pair<std::uint32_t, std::uint32_t>, zkedb::EdbCrsPtr>
      cache;
  const auto key = std::make_pair(q, h);
  auto it = cache.find(key);
  if (it == cache.end()) {
    zkedb::EdbConfig cfg;
    cfg.q = q;
    cfg.height = h;
    cfg.rsa_bits = rsa_bits();
    cfg.group_name = "p256";
    it = cache.emplace(key, zkedb::generate_crs(cfg)).first;
  }
  return it->second;
}

/// Worker count the parallel stages will use (the JSON "threads" field).
inline unsigned bench_threads() { return ThreadPool::default_threads(); }

/// Emits one machine-readable result line on stdout. The schema is stable
/// — scripts grep for lines starting with '{"bench"':
///   {"bench":"<binary>","case":"<case>","ns_per_op":<num>,"threads":<n>,
///    "counters":{...},"metrics":{...}}
/// "counters" carries the per-benchmark user counters (rates such as
/// proofs_per_sec; omitted when a run defines none). The "metrics" object
/// is the process-global observability snapshot (non-zero instruments
/// only, see obs/metrics.h), so a result line also records how much
/// crypto/ZK-EDB work the run has driven so far.
inline void emit_json_line(
    const std::string& bench, const std::string& case_name, double ns_per_op,
    const std::map<std::string, double>& counters = {}) {
  const auto escaped = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string counters_json;
  if (!counters.empty()) {
    counters_json = ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : counters) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%s\"%s\":%.3f", first ? "" : ",",
                    escaped(name).c_str(), value);
      counters_json += buf;
      first = false;
    }
    counters_json += "}";
  }
  std::printf("{\"bench\":\"%s\",\"case\":\"%s\",\"ns_per_op\":%.1f,"
              "\"threads\":%u%s,\"metrics\":%s}\n",
              escaped(bench).c_str(), escaped(case_name).c_str(), ns_per_op,
              bench_threads(), counters_json.c_str(),
              obs::MetricsRegistry::global().compact_json().c_str());
}

/// Console reporter that additionally emits one JSON line per finished
/// benchmark run (google-benchmark binaries).
class JsonLineReporter final : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(std::string bench) : bench_(std::move(bench)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations == 0) continue;
      const double ns_per_op = run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e9;
      // Flatten user counters with rate semantics already applied, the
      // same numbers the console shows.
      std::map<std::string, double> counters;
      for (const auto& [name, counter] : run.counters) {
        counters.emplace(name, static_cast<double>(counter));
      }
      emit_json_line(bench_, run.benchmark_name(), ns_per_op, counters);
    }
  }

 private:
  std::string bench_;
};

/// Standard main body for google-benchmark binaries: console output plus
/// JSON result lines.
inline int run_benchmarks(int argc, char** argv, const std::string& bench) {
  benchmark::Initialize(&argc, argv);
  JsonLineReporter reporter(bench);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace desword::benchutil
