// Figure 3 (qualitative) — the double-edged reputation incentive.
//
// The paper argues (without numbers) that deletion and addition yield no
// definite reputation benefit because participants cannot predict which
// products will be queried or their quality. This harness quantifies that
// argument with a Monte-Carlo simulation over the proxy's scoring model:
//
//   * honest       — every processed product is committed;
//   * deletion     — a fraction of processed products is deleted;
//   * addition     — fake traces are committed for unprocessed products.
//
// Per queried product the proxy awards +positive (good) or -negative
// (bad); a detected walk inconsistency caused by a fake trace costs the
// violation penalty (DE-Sword detects the adder's dead ends, §III-B).
//
// Output: expected reputation per period and its standard deviation (the
// "risk" that constitutes the second edge), per strategy and bad-product
// probability.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "desword/reputation.h"

namespace {

using desword::SimRng;

struct StrategyResult {
  double mean = 0.0;
  double stddev = 0.0;
};

struct Model {
  double p_bad;        // probability a queried product is bad
  double query_rate;   // probability any product is queried in the period
  int processed = 50;  // products processed per period
  int deleted = 0;     // of which deleted from the POC
  int added = 0;       // fake traces added
  desword::protocol::ScorePolicy scores;
  // Probability the proxy's walk exposes the adder's inconsistency (it
  // cannot name a consistent next hop for a product it never shipped).
  double addition_detection = 0.5;
};

StrategyResult simulate(const Model& model, int periods, std::uint64_t seed) {
  SimRng rng(seed);
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(periods));
  for (int t = 0; t < periods; ++t) {
    double score = 0.0;
    const int committed = model.processed - model.deleted;
    for (int i = 0; i < committed; ++i) {
      if (!rng.chance(model.query_rate)) continue;
      if (rng.chance(model.p_bad)) {
        score -= model.scores.negative;
      } else {
        score += model.scores.positive;
      }
    }
    // Deleted products: never identified, no score either way.
    for (int i = 0; i < model.added; ++i) {
      if (!rng.chance(model.query_rate)) continue;
      if (rng.chance(model.p_bad)) {
        score -= model.scores.negative;
      } else {
        score += model.scores.positive;
      }
      if (rng.chance(model.addition_detection)) {
        score -= model.scores.violation_penalty;
      }
    }
    samples.push_back(score);
  }
  StrategyResult out;
  for (const double s : samples) out.mean += s;
  out.mean /= static_cast<double>(samples.size());
  for (const double s : samples) {
    out.stddev += (s - out.mean) * (s - out.mean);
  }
  out.stddev = std::sqrt(out.stddev / static_cast<double>(samples.size()));
  return out;
}

}  // namespace

int main() {
  constexpr int kPeriods = 20000;
  constexpr double kQueryRate = 0.2;

  std::printf("Figure 3 (qualitative): double-edged reputation incentive\n");
  std::printf("50 products/period, query rate %.2f, scores +%.0f/-%.0f, "
              "violation penalty %.0f\n\n",
              kQueryRate, 1.0, 2.0, 5.0);
  std::printf("%-8s | %-22s | %-22s | %-22s\n", "p(bad)",
              "honest mean+-sd", "delete-20% mean+-sd", "add-10 mean+-sd");
  std::printf("---------+------------------------+------------------------+"
              "----------------------\n");

  for (const double p_bad : {0.01, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    Model honest{};
    honest.p_bad = p_bad;
    honest.query_rate = kQueryRate;
    Model deleter = honest;
    deleter.deleted = 10;  // 20% of 50
    Model adder = honest;
    adder.added = 10;

    const StrategyResult h = simulate(honest, kPeriods, 1);
    const StrategyResult d = simulate(deleter, kPeriods, 2);
    const StrategyResult a = simulate(adder, kPeriods, 3);
    std::printf("%-8.2f | %8.3f +- %-10.3f | %8.3f +- %-10.3f | "
                "%8.3f +- %-10.3f\n",
                p_bad, h.mean, h.stddev, d.mean, d.stddev, a.mean, a.stddev);
    // Mean reputation per period is the measurement; it rides in the
    // schema's numeric slot under explicit case names.
    const std::string suffix = "/pbad:" + std::to_string(p_bad);
    desword::benchutil::emit_json_line("bench_incentive",
                                       "HonestMean" + suffix, h.mean);
    desword::benchutil::emit_json_line("bench_incentive",
                                       "DeleteMean" + suffix, d.mean);
    desword::benchutil::emit_json_line("bench_incentive", "AddMean" + suffix,
                                       a.mean);
  }

  std::printf(
      "\nReading: while products are overwhelmingly good (small p(bad)),\n"
      "honesty strictly dominates deletion (foregone positive scores) and\n"
      "addition (violation penalties from inconsistent walks), matching\n"
      "the paper's double-edged argument. Deletion only pays once products\n"
      "turn bad more than ~1/3 of the time, far outside the paper's\n"
      "\"overwhelmingly good\" operating regime.\n");
  return 0;
}
