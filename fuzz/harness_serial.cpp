// Fuzz harness for the common/serial BinaryReader primitives.
//
// The input drives an op-stream interpreter: each iteration consumes one
// selector byte and then decodes one primitive from the same reader. For
// every successfully decoded value the harness re-encodes it with
// BinaryWriter and checks that the encoding reproduces the consumed bytes
// exactly — the serial layer is canonical by design (digests are computed
// over serialized bytes), so any non-canonical decode is a real bug.

#include <cstdlib>

#include "common/error.h"
#include "common/serial.h"
#include "fuzz/harnesses.h"

namespace desword::fuzz {

namespace {

/// Bytes the reader consumed so far (it tracks `remaining` only).
std::size_t consumed(const BinaryReader& r, std::size_t total) {
  return total - r.remaining();
}

/// Aborts when a decoded value does not re-encode to the bytes it was
/// decoded from. abort() (not an exception) so both libFuzzer and the
/// corpus-replay gtest report it as a crash, never as "expected" input.
void require_canonical(BytesView input, std::size_t begin, std::size_t end,
                       const BinaryWriter& reencoded) {
  BytesView original = input.subspan(begin, end - begin);
  BytesView redone = reencoded.view();
  if (original.size() != redone.size() ||
      !std::equal(original.begin(), original.end(), redone.begin())) {
    std::abort();  // non-canonical decode: one value, two spellings
  }
}

}  // namespace

int run_serial(const std::uint8_t* data, std::size_t size) {
  BytesView input(data, size);
  BinaryReader reader(input);
  try {
    while (!reader.done()) {
      const std::uint8_t op = reader.u8();
      const std::size_t begin = consumed(reader, size);
      BinaryWriter w;
      switch (op % 8) {
        case 0:
          w.u8(reader.u8());
          break;
        case 1:
          w.u16(reader.u16());
          break;
        case 2:
          w.u32(reader.u32());
          break;
        case 3:
          w.u64(reader.u64());
          break;
        case 4:
          w.varint(reader.varint());
          break;
        case 5:
          w.bytes(reader.bytes());
          break;
        case 6:
          w.str(reader.str());
          break;
        case 7:
          w.boolean(reader.boolean());
          break;
      }
      require_canonical(input, begin, consumed(reader, size), w);
    }
    reader.expect_done();
  } catch (const SerializationError&) {
    // Expected classification of malformed input; anything else escapes
    // and crashes the harness.
  }
  return 0;
}

}  // namespace desword::fuzz
