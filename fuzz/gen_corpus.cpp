// Seed-corpus generator for the fuzz harnesses.
//
//   desword_gen_corpus <output_dir>
//
// Writes fuzz/corpus/{serial,wire,messages,persist}/ plus the fixed CRS
// blob (persist_crs.bin) the persist harness decodes against. Every seed
// is derived from a handful of valid encodings plus deterministic
// truncation and bit-flip mutants (fixed mt19937 seed), so regenerating
// the corpus is reproducible except for the randomness inside fresh
// commitments — which is itself pinned by EdbProverOptions::seed and the
// checked-in CRS.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "common/serial.h"
#include "desword/messages.h"
#include "net/wire.h"
#include "poc/poc.h"
#include "poc/poc_list.h"
#include "zkedb/params.h"
#include "zkedb/prover.h"

namespace fs = std::filesystem;
using namespace desword;
using namespace desword::protocol;

namespace {

void write_file(const fs::path& dir, const std::string& name,
                BytesView data) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) {
    std::cerr << "failed to write " << (dir / name) << "\n";
    std::exit(1);
  }
}

/// Writes `base` plus deterministic mutants: two truncations and two
/// single-bit flips. Five corpus files per seed value.
void write_with_mutants(const fs::path& dir, const std::string& stem,
                        const Bytes& base, std::mt19937& rng) {
  write_file(dir, stem + ".bin", base);
  if (base.empty()) return;
  write_file(dir, stem + "_trunc1.bin",
             BytesView(base.data(), base.size() / 2));
  write_file(dir, stem + "_trunc2.bin",
             BytesView(base.data(), base.size() - 1));
  for (int i = 0; i < 2; ++i) {
    Bytes flipped = base;
    std::size_t pos = rng() % flipped.size();
    flipped[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
    write_file(dir, stem + "_flip" + std::to_string(i) + ".bin", flipped);
  }
}

Bytes tagged(MessageType type, const Bytes& payload) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(type));
  append(out, payload);
  return out;
}

void gen_serial(const fs::path& dir, std::mt19937& rng) {
  // Op-streams understood by run_serial: selector byte then one encoded
  // primitive per iteration (see harness_serial.cpp).
  struct Sample {
    std::string stem;
    Bytes data;
  };
  std::vector<Sample> samples;
  auto add = [&samples](const std::string& stem, BinaryWriter& w) {
    samples.push_back({stem, w.take()});
  };

  BinaryWriter w;
  w.u8(0), w.u8(0x7f);
  add("u8", w);
  w.u8(1), w.u16(0xbeef);
  add("u16", w);
  w.u8(2), w.u32(0xdeadbeef);
  add("u32", w);
  w.u8(3), w.u64(0x0123456789abcdefULL);
  add("u64", w);
  w.u8(4), w.varint(0);
  add("varint_zero", w);
  w.u8(4), w.varint(300);
  add("varint_two_byte", w);
  w.u8(4), w.varint(~0ULL);
  add("varint_max", w);
  w.u8(5), w.bytes(bytes_of("hello fuzz"));
  add("bytes", w);
  w.u8(6), w.str("de-sword");
  add("str", w);
  w.u8(7), w.boolean(true);
  add("bool", w);
  // A longer mixed stream.
  w.u8(2), w.u32(7), w.u8(6), w.str("task-1"), w.u8(4), w.varint(12345),
      w.u8(5), w.bytes(bytes_of("payload")), w.u8(7), w.boolean(false);
  add("mixed", w);
  // Hand-built malformed seeds the mutator can grow from.
  samples.push_back({"nonminimal_varint", {4, 0x80, 0x00}});   // 0 in 2 bytes
  samples.push_back({"varint_overflow",
                     {4, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                      0xff, 0xff, 0x7f}});                     // > 64 bits
  samples.push_back({"length_overflow", {5, 0xff, 0xff, 0x03}});  // len 64k

  for (const auto& s : samples) write_with_mutants(dir, s.stem, s.data, rng);
}

void gen_wire(const fs::path& dir, std::mt19937& rng) {
  auto frame = [](const std::string& from, const std::string& to,
                  const std::string& type, const Bytes& payload) {
    net::Envelope env;
    env.from = from;
    env.to = to;
    env.type = type;
    env.payload = payload;
    return net::encode_frame(env);
  };
  write_with_mutants(dir, "ps_request",
                     frame("v1", "proxy", msg::kPsRequest,
                           PsRequest{"task-1"}.serialize()),
                     rng);
  write_with_mutants(dir, "empty_payload",
                     frame("proxy", "v2", msg::kAdminShutdown, {}), rng);
  write_with_mutants(
      dir, "query",
      frame("proxy", "v3", msg::kQueryRequest,
            QueryRequest{7, bytes_of("prod-1"), ProductQuality::kBad,
                         bytes_of("poc-bytes")}
                .serialize()),
      rng);
  write_with_mutants(dir, "big_payload",
                     frame("a", "b", "x", Bytes(512, 0xa5)), rng);
  // Length prefix lies: claims more than the body that follows.
  Bytes partial = frame("v1", "proxy", msg::kPsRequest,
                        PsRequest{"task-2"}.serialize());
  partial.resize(partial.size() - 3);
  write_file(dir, "short_body.bin", partial);
  // Oversized length prefix (> kMaxFrameBytes): must throw, not allocate.
  write_file(dir, "huge_len.bin", Bytes{0xff, 0xff, 0xff, 0xff, 0x00});
  // Zero-length frame (empty envelope body is malformed).
  write_file(dir, "zero_len.bin", Bytes{0x00, 0x00, 0x00, 0x00});
}

void gen_messages(const fs::path& dir, std::mt19937& rng) {
  const Bytes product = bytes_of("prod-42");
  const Bytes poc = bytes_of("fake-poc");
  write_with_mutants(dir, "ps_request",
                     tagged(MessageType::kPsRequest,
                            PsRequest{"task-1"}.serialize()),
                     rng);
  write_with_mutants(dir, "ps_response",
                     tagged(MessageType::kPsResponse,
                            PsResponse{"task-1", bytes_of("ps")}.serialize()),
                     rng);
  write_with_mutants(dir, "poc_to_parent",
                     tagged(MessageType::kPocToParent,
                            PocToParent{"task-1", poc}.serialize()),
                     rng);
  PocPairsToInitial pairs{"task-1", poc, {{poc, bytes_of("child-poc")}}};
  write_with_mutants(dir, "poc_pairs",
                     tagged(MessageType::kPocPairsToInitial,
                            pairs.serialize()),
                     rng);
  write_with_mutants(dir, "poc_list_submit",
                     tagged(MessageType::kPocListSubmit,
                            PocListSubmit{"task-1", bytes_of("list")}
                                .serialize()),
                     rng);
  write_with_mutants(
      dir, "query_request",
      tagged(MessageType::kQueryRequest,
             QueryRequest{1, product, ProductQuality::kGood, poc}.serialize()),
      rng);
  write_with_mutants(
      dir, "query_response",
      tagged(MessageType::kQueryResponse,
             QueryResponse{1, true, bytes_of("proof")}.serialize()),
      rng);
  write_with_mutants(
      dir, "query_response_no_proof",
      tagged(MessageType::kQueryResponse,
             QueryResponse{2, false, std::nullopt}.serialize()),
      rng);
  write_with_mutants(
      dir, "reveal_request",
      tagged(MessageType::kRevealRequest,
             RevealRequest{3, product, poc}.serialize()),
      rng);
  write_with_mutants(dir, "reveal_response",
                     tagged(MessageType::kRevealResponse,
                            RevealResponse{3, bytes_of("proof")}.serialize()),
                     rng);
  write_with_mutants(dir, "next_hop_request",
                     tagged(MessageType::kNextHopRequest,
                            NextHopRequest{4, product}.serialize()),
                     rng);
  write_with_mutants(dir, "next_hop_response",
                     tagged(MessageType::kNextHopResponse,
                            NextHopResponse{4, "v5"}.serialize()),
                     rng);
  write_with_mutants(
      dir, "client_query_request",
      tagged(MessageType::kClientQueryRequest,
             ClientQueryRequest{9, product, ProductQuality::kBad, "task-1"}
                 .serialize()),
      rng);
  ClientQueryResponse cqr;
  cqr.client_ref = 9;
  cqr.ok = true;
  cqr.report_json = "{\"verdict\":\"ok\"}";
  write_with_mutants(dir, "client_query_response",
                     tagged(MessageType::kClientQueryResponse,
                            cqr.serialize()),
                     rng);
  write_with_mutants(dir, "status_request",
                     tagged(MessageType::kStatusRequest,
                            StatusRequest{"task-1"}.serialize()),
                     rng);
  write_with_mutants(dir, "status_response",
                     tagged(MessageType::kStatusResponse,
                            StatusResponse{"task-1", true}.serialize()),
                     rng);
  write_with_mutants(dir, "client_report_request",
                     tagged(MessageType::kClientReportRequest,
                            ClientReportRequest{11}.serialize()),
                     rng);
}

void gen_persist(const fs::path& corpus_root, const fs::path& dir,
                 std::mt19937& rng) {
  zkedb::EdbConfig config;
  config.q = 4;
  config.height = 8;
  config.rsa_bits = 512;
  config.group_name = "modp512-test";
  zkedb::EdbCrsPtr crs = zkedb::generate_crs(config);
  write_file(corpus_root, "persist_crs.bin", crs->params().serialize());

  auto sel = [](std::uint8_t selector, const Bytes& blob) {
    Bytes out;
    out.push_back(selector);
    append(out, blob);
    return out;
  };

  poc::PocScheme scheme(crs);
  std::map<Bytes, Bytes> traces{{bytes_of("prod-1"), bytes_of("da-1")},
                                {bytes_of("prod-2"), bytes_of("da-2")},
                                {bytes_of("prod-3"), bytes_of("da-3")}};
  zkedb::EdbProverOptions options;
  options.threads = 1;
  options.seed = bytes_of("desword-fuzz-corpus");
  auto [poc, dpoc] = scheme.aggregate("v1", traces, options);

  write_with_mutants(dir, "prover_state",
                     sel(0, dpoc->prover().serialize_state()), rng);
  write_with_mutants(dir, "dpoc", sel(1, dpoc->serialize()), rng);
  write_with_mutants(
      dir, "membership",
      sel(2, dpoc->prover()
                 .prove_membership(zkedb::key_for_identifier(
                     *crs, bytes_of("prod-1")))
                 .serialize(*crs)),
      rng);
  write_with_mutants(
      dir, "non_membership",
      sel(3, dpoc->prover()
                 .prove_non_membership(zkedb::key_for_identifier(
                     *crs, bytes_of("absent")))
                 .serialize(*crs)),
      rng);
  write_with_mutants(dir, "params", sel(4, crs->params().serialize()), rng);

  poc::PocList list(crs->params().serialize());
  list.add_poc(poc);
  poc::Poc other{"v2", poc.commitment};
  list.add_poc(other);
  list.add_edge("v1", "v2");
  write_with_mutants(dir, "poc_list", sel(5, list.serialize()), rng);

  write_with_mutants(
      dir, "ownership_proof",
      sel(6, scheme.prove(*dpoc, bytes_of("prod-2")).serialize()), rng);
  write_with_mutants(
      dir, "non_ownership_proof",
      sel(6, scheme.prove(*dpoc, bytes_of("absent")).serialize()), rng);
  write_with_mutants(dir, "poc", sel(7, poc.serialize()), rng);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: desword_gen_corpus <output_dir>\n";
    return 2;
  }
  const fs::path root = argv[1];
  std::mt19937 rng(0xde5140d);  // fixed: corpus generation is reproducible
  gen_serial(root / "serial", rng);
  gen_wire(root / "wire", rng);
  gen_messages(root / "messages", rng);
  gen_persist(root, root / "persist", rng);
  std::cout << "corpus written to " << root << "\n";
  return 0;
}
