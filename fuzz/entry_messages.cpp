// libFuzzer entry point (built only with DESWORD_FUZZ=ON under Clang).
#include "fuzz/harnesses.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return desword::fuzz::run_messages(data, size);
}
