// Fuzz harness for zkedb persistence and proof/commitment deserialization
// — the decoders that run over bytes a participant stored earlier (DPOC
// state) or received from an untrusted peer (proofs, POCs, POC lists,
// public parameters).
//
// The first input byte selects the decoder; the rest is the untrusted
// blob. CRS-bound decoders run against a fixed small CRS loaded from the
// checked-in `fuzz/corpus/persist_crs.bin` (so corpus inputs generated
// against that CRS replay meaningfully); when the file is missing a fresh
// small CRS is generated instead — robustness properties hold under any
// CRS.
//
// Because several of these types embed bignums (where decoding accepts
// non-minimal encodings but encoding is minimal), the canonicality check
// here is normalization idempotence: serialize(deserialize(x)) must be a
// fixed point of decode-then-encode.

#include <cstdlib>
#include <fstream>
#include <iterator>

#include "common/error.h"
#include "fuzz/harnesses.h"
#include "poc/poc.h"
#include "poc/poc_list.h"
#include "zkedb/params.h"
#include "zkedb/proof.h"
#include "zkedb/prover.h"

#ifndef DESWORD_FUZZ_DATA_DIR
#define DESWORD_FUZZ_DATA_DIR "fuzz/corpus"
#endif

namespace desword::fuzz {

namespace {

zkedb::EdbCrsPtr make_crs() {
  std::ifstream in(DESWORD_FUZZ_DATA_DIR "/persist_crs.bin",
                   std::ios::binary);
  if (in) {
    Bytes blob((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    return std::make_shared<zkedb::EdbCrs>(
        zkedb::EdbPublicParams::deserialize(blob));
  }
  zkedb::EdbConfig config;
  config.q = 4;
  config.height = 8;
  config.rsa_bits = 512;
  config.group_name = "modp512-test";
  return zkedb::generate_crs(config);
}

const zkedb::EdbCrsPtr& crs() {
  static const zkedb::EdbCrsPtr instance = make_crs();
  return instance;
}

/// abort() unless decode-then-encode is a fixed point of `x`.
template <typename Decode>
void require_idempotent(const Bytes& x, Decode decode) {
  const Bytes again = decode(x);
  if (again != x) std::abort();  // normalized form is not a fixed point
}

void decode_one(std::uint8_t selector, BytesView blob) {
  const zkedb::EdbCrsPtr& c = crs();
  switch (selector % 8) {
    case 0: {
      zkedb::EdbProver prover = zkedb::EdbProver::load(c, blob);
      require_idempotent(prover.serialize_state(), [&](const Bytes& x) {
        return zkedb::EdbProver::load(c, x).serialize_state();
      });
      break;
    }
    case 1: {
      auto dpoc = poc::PocDecommitment::load(c, blob);
      require_idempotent(dpoc->serialize(), [&](const Bytes& x) {
        return poc::PocDecommitment::load(c, x)->serialize();
      });
      break;
    }
    case 2: {
      auto proof = zkedb::EdbMembershipProof::deserialize(*c, blob);
      require_idempotent(proof.serialize(*c), [&](const Bytes& x) {
        return zkedb::EdbMembershipProof::deserialize(*c, x).serialize(*c);
      });
      break;
    }
    case 3: {
      auto proof = zkedb::EdbNonMembershipProof::deserialize(*c, blob);
      require_idempotent(proof.serialize(*c), [&](const Bytes& x) {
        return zkedb::EdbNonMembershipProof::deserialize(*c, x).serialize(*c);
      });
      break;
    }
    case 4: {
      auto params = zkedb::EdbPublicParams::deserialize(blob);
      require_idempotent(params.serialize(), [](const Bytes& x) {
        return zkedb::EdbPublicParams::deserialize(x).serialize();
      });
      // Instantiating the runtime CRS from hostile parameters must also be
      // safe (it validates group/key consistency).
      zkedb::EdbCrs runtime(params);
      break;
    }
    case 5: {
      auto list = poc::PocList::deserialize(blob);
      require_idempotent(list.serialize(), [](const Bytes& x) {
        return poc::PocList::deserialize(x).serialize();
      });
      break;
    }
    case 6: {
      auto proof = poc::PocProof::deserialize(blob);
      require_idempotent(proof.serialize(), [](const Bytes& x) {
        return poc::PocProof::deserialize(x).serialize();
      });
      break;
    }
    case 7: {
      auto poc = poc::Poc::deserialize(blob);
      require_idempotent(poc.serialize(), [](const Bytes& x) {
        return poc::Poc::deserialize(x).serialize();
      });
      break;
    }
  }
}

}  // namespace

int run_persist(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  try {
    decode_one(data[0], BytesView(data + 1, size - 1));
  } catch (const CheckError&) {
    throw;  // internal invariant violation — a real bug, crash loudly
  } catch (const Error&) {
    // SerializationError / ProtocolError / ConfigError / CryptoError are
    // all legitimate classifications of hostile input at this layer.
  }
  return 0;
}

}  // namespace desword::fuzz
