// Fuzz harness for desword/messages protocol payload decoding.
//
// The first input byte selects the message type (mapped through the
// MessageType enum so new types automatically join the fuzz surface); the
// remaining bytes are the untrusted payload. A payload that decodes must
// re-encode byte-for-byte: message encodings are canonical (varints are
// minimal, deserializers reject trailing bytes), and reply deduplication
// keys on request digests, so two spellings of one message would be a bug.

#include <cstdlib>

#include "common/error.h"
#include "desword/messages.h"
#include "fuzz/harnesses.h"

namespace desword::fuzz {

namespace {

using namespace desword::protocol;

/// abort() on a decode/re-encode mismatch so it registers as a crash.
void require_canonical(BytesView payload, const Bytes& reencoded) {
  if (reencoded.size() != payload.size() ||
      !std::equal(reencoded.begin(), reencoded.end(), payload.begin())) {
    std::abort();
  }
}

void decode_one(MessageType type, BytesView payload) {
  switch (type) {
    case MessageType::kUnknown:
    case MessageType::kAdminShutdown:
      // No payload structure to decode.
      return;
    case MessageType::kPsRequest:
      require_canonical(payload, PsRequest::deserialize(payload).serialize());
      return;
    case MessageType::kPsResponse:
    case MessageType::kPsBroadcast:
      require_canonical(payload, PsResponse::deserialize(payload).serialize());
      return;
    case MessageType::kPocToParent:
      require_canonical(payload,
                        PocToParent::deserialize(payload).serialize());
      return;
    case MessageType::kPocPairsToInitial:
      require_canonical(payload,
                        PocPairsToInitial::deserialize(payload).serialize());
      return;
    case MessageType::kPocListSubmit:
      require_canonical(payload,
                        PocListSubmit::deserialize(payload).serialize());
      return;
    case MessageType::kQueryRequest:
      require_canonical(payload,
                        QueryRequest::deserialize(payload).serialize());
      return;
    case MessageType::kQueryResponse:
      require_canonical(payload,
                        QueryResponse::deserialize(payload).serialize());
      return;
    case MessageType::kRevealRequest:
      require_canonical(payload,
                        RevealRequest::deserialize(payload).serialize());
      return;
    case MessageType::kRevealResponse:
      require_canonical(payload,
                        RevealResponse::deserialize(payload).serialize());
      return;
    case MessageType::kNextHopRequest:
      require_canonical(payload,
                        NextHopRequest::deserialize(payload).serialize());
      return;
    case MessageType::kNextHopResponse:
      require_canonical(payload,
                        NextHopResponse::deserialize(payload).serialize());
      return;
    case MessageType::kClientQueryRequest:
      require_canonical(payload,
                        ClientQueryRequest::deserialize(payload).serialize());
      return;
    case MessageType::kClientQueryResponse:
      require_canonical(payload,
                        ClientQueryResponse::deserialize(payload).serialize());
      return;
    case MessageType::kStatusRequest:
      require_canonical(payload,
                        StatusRequest::deserialize(payload).serialize());
      return;
    case MessageType::kStatusResponse:
      require_canonical(payload,
                        StatusResponse::deserialize(payload).serialize());
      return;
    case MessageType::kClientReportRequest:
      require_canonical(payload,
                        ClientReportRequest::deserialize(payload).serialize());
      return;
  }
}

}  // namespace

int run_messages(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  // 19 enumerators (kUnknown .. kAdminShutdown); keep in sync with the enum.
  constexpr std::uint8_t kTypeCount =
      static_cast<std::uint8_t>(MessageType::kAdminShutdown) + 1;
  const auto type = static_cast<MessageType>(data[0] % kTypeCount);
  BytesView payload(data + 1, size - 1);
  try {
    decode_one(type, payload);
  } catch (const SerializationError&) {
    // Malformed payload: expected classification.
  }
  return 0;
}

}  // namespace desword::fuzz
