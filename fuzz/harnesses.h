// Fuzz harness bodies for every decoder that consumes untrusted bytes.
//
// Each run_* function feeds one input to a decoder family and enforces two
// properties:
//
//   1. robustness — arbitrary bytes either decode or throw
//      desword::SerializationError (or a sibling input-classification
//      error); they never crash, over-read, or throw anything else;
//   2. canonicality — when an input does decode, re-encoding it reproduces
//      the input byte-for-byte (digests are computed over serialized
//      commitments, so one value must have exactly one spelling).
//
// The bodies are ordinary library code: the libFuzzer executables
// (fuzz_serial, fuzz_wire, ...; built with DESWORD_FUZZ=ON under Clang)
// and the tier-1 corpus-replay gtest (fuzz_regression_test) link the same
// functions, so every checked-in corpus input runs on every ctest
// invocation without requiring libFuzzer.
#pragma once

#include <cstddef>
#include <cstdint>

namespace desword::fuzz {

/// common/serial BinaryReader primitives, driven by an op-stream.
int run_serial(const std::uint8_t* data, std::size_t size);

/// net/wire envelope framing (try_decode_frame / decode_envelope).
int run_wire(const std::uint8_t* data, std::size_t size);

/// desword/messages protocol message decoding (first byte selects type).
int run_messages(const std::uint8_t* data, std::size_t size);

/// zkedb/persist + proof/commitment deserialization under a fixed CRS
/// (first byte selects the decoder).
int run_persist(const std::uint8_t* data, std::size_t size);

}  // namespace desword::fuzz
