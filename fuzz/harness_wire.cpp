// Fuzz harness for net/wire envelope framing — the first decoder hostile
// bytes reach when they arrive over TCP.
//
// Exercises both entry points:
//   * try_decode_frame on the raw input (a receive-buffer prefix), and
//   * decode_envelope on the input body directly.
// A decoded envelope must re-encode byte-for-byte (the framing layer is
// canonical), and `consumed` must stay within the buffer.

#include <cstdlib>

#include "common/error.h"
#include "fuzz/harnesses.h"
#include "net/wire.h"

namespace desword::fuzz {

int run_wire(const std::uint8_t* data, std::size_t size) {
  BytesView input(data, size);

  try {
    std::size_t consumed = 0;
    std::optional<net::Envelope> env = net::try_decode_frame(input, consumed);
    if (env.has_value()) {
      if (consumed < 4 || consumed > size) std::abort();  // out-of-range cut
      Bytes frame = net::encode_frame(*env);
      BytesView prefix = input.first(consumed);
      if (frame.size() != prefix.size() ||
          !std::equal(frame.begin(), frame.end(), prefix.begin())) {
        std::abort();  // decoded frame does not re-encode canonically
      }
    } else if (consumed != 0) {
      std::abort();  // incomplete frame must not consume bytes
    }
  } catch (const SerializationError&) {
    // Malformed frame: expected classification.
  }

  try {
    net::Envelope env = net::decode_envelope(input);
    Bytes body = net::encode_envelope(env);
    if (body.size() != input.size() ||
        !std::equal(body.begin(), body.end(), input.begin())) {
      std::abort();  // decoded envelope does not re-encode canonically
    }
  } catch (const SerializationError&) {
    // Expected.
  }
  return 0;
}

}  // namespace desword::fuzz
