#!/usr/bin/env python3
"""Self-test for tools/desword_lint.py (ctest: desword_lint_selftest).

The lint gate is only worth trusting if the lint itself is tested: a rule
that silently stops firing fails open, and a rule that fires on clean code
gets waived into noise. Each directory under ``tools/lint_fixtures/`` is a
miniature repo tree seeded with deliberate violations AND nearby clean
look-alikes (exempt files, waived lines, sanctioned nested spans); its
``expected_violations.txt`` lists the exact findings as
``<rule> <path>:<line>`` lines.

This driver runs the real Linter over every fixture root and compares the
exact (rule, path, line) sets — missing findings, extra findings, and
off-by-one line numbers all fail. It also fails if any lint rule has no
fixture coverage, so adding a rule forces adding a fixture.

All paths derive from ``__file__``; the test passes from any working
directory (ctest sets it to the build tree).
"""

from __future__ import annotations

import pathlib
import sys

TOOLS_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(TOOLS_DIR))

from desword_lint import Linter  # noqa: E402  (needs sys.path above)

FIXTURES_DIR = TOOLS_DIR / "lint_fixtures"

# Every rule the linter implements must appear in at least one fixture's
# expected set. Keep in sync with the rule list in desword_lint.py's
# docstring — the test fails loudly when they drift.
ALL_RULES = {
    "randomness",
    "decode-cast",
    "switch-default",
    "secret-print",
    "modexp",
    "handler-crypto",
    "metric-name",
    "raw-mutex",
    "loop-affinity",
    "timer-pairing",
    "cache-key",
}

Finding = tuple[str, str, int]  # (rule, relative path, line)


def load_expected(path: pathlib.Path) -> set[Finding]:
    expected: set[Finding] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        rule, loc = line.split()
        rel, _, lineno = loc.rpartition(":")
        expected.add((rule, rel, int(lineno)))
    return expected


def run_case(case_dir: pathlib.Path) -> tuple[bool, set[Finding]]:
    linter = Linter(case_dir)
    nfiles = linter.collect()
    actual = {(rule, rel, lineno)
              for rel, lineno, rule, _ in linter.violations}
    expected = load_expected(case_dir / "expected_violations.txt")
    ok = True
    if nfiles == 0:
        print(f"FAIL {case_dir.name}: fixture matched no source files")
        ok = False
    for finding in sorted(expected - actual):
        print(f"FAIL {case_dir.name}: expected but not reported: "
              f"[{finding[0]}] {finding[1]}:{finding[2]}")
        ok = False
    for finding in sorted(actual - expected):
        print(f"FAIL {case_dir.name}: reported but not expected: "
              f"[{finding[0]}] {finding[1]}:{finding[2]}")
        ok = False
    if ok:
        print(f"ok   {case_dir.name}: {len(expected)} finding(s) match "
              f"across {nfiles} file(s)")
    return ok, expected


def main() -> int:
    if not FIXTURES_DIR.is_dir():
        print(f"FAIL: fixture directory missing: {FIXTURES_DIR}")
        return 1
    cases = sorted(p for p in FIXTURES_DIR.iterdir() if p.is_dir())
    if not cases:
        print(f"FAIL: no fixture cases under {FIXTURES_DIR}")
        return 1
    all_ok = True
    covered: set[str] = set()
    for case_dir in cases:
        expected_file = case_dir / "expected_violations.txt"
        if not expected_file.is_file():
            print(f"FAIL {case_dir.name}: missing expected_violations.txt")
            all_ok = False
            continue
        ok, expected = run_case(case_dir)
        all_ok = all_ok and ok
        covered |= {rule for rule, _, _ in expected}
    uncovered = ALL_RULES - covered
    if uncovered:
        print("FAIL: rules with no fixture coverage: "
              + ", ".join(sorted(uncovered)))
        all_ok = False
    unknown = covered - ALL_RULES
    if unknown:
        print("FAIL: fixtures expect unknown rules: "
              + ", ".join(sorted(unknown)))
        all_ok = False
    if all_ok:
        print(f"desword_lint_selftest: {len(cases)} fixture case(s) pass")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
