#include "cli_lib.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "cli_serve.h"
#include "cli_util.h"
#include "common/error.h"
#include "common/json.h"
#include "desword/scenario.h"
#include "poc/poc.h"
#include "supplychain/trace.h"
#include "zkedb/params.h"

namespace desword::cli {

namespace {

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

int cmd_ps_gen(const Flags& flags, std::ostream& out) {
  zkedb::EdbConfig cfg;
  cfg.q = static_cast<std::uint32_t>(flags.get_int("q", 16));
  cfg.height = static_cast<std::uint32_t>(flags.get_int("height", 32));
  cfg.rsa_bits = flags.get_int("rsa-bits", 2048);
  cfg.group_name = flags.get("group", "p256");
  const std::string mode = flags.get("soft-mode", "shared");
  if (mode == "shared") {
    cfg.soft_mode = zkedb::SoftMode::kShared;
  } else if (mode == "per-child") {
    cfg.soft_mode = zkedb::SoftMode::kPerChild;
  } else {
    throw UsageError("--soft-mode must be shared or per-child");
  }
  const std::string path = flags.require("out");
  flags.reject_unknown();

  const zkedb::EdbCrsPtr crs = zkedb::generate_crs(cfg);
  write_file(path, crs->params().serialize());
  out << "wrote public parameters: q=" << cfg.q << " height=" << cfg.height
      << " rsa=" << cfg.rsa_bits << " group=" << cfg.group_name << " -> "
      << path << "\n";
  return 0;
}

int cmd_aggregate(const Flags& flags, std::ostream& out) {
  const std::string ps_path = flags.require("ps");
  const std::string participant = flags.require("participant");
  const std::string traces_path = flags.require("traces");
  const std::string poc_path = flags.require("poc");
  const std::string dpoc_path = flags.require("dpoc");
  flags.reject_unknown();

  const auto crs = std::make_shared<zkedb::EdbCrs>(
      zkedb::EdbPublicParams::deserialize(read_file(ps_path)));
  const json::Value doc =
      json::parse(string_of(read_file(traces_path)));
  const supplychain::TraceDatabase db = traces_from_json(doc, participant);

  poc::PocScheme scheme(crs);
  auto [p, dpoc] = scheme.aggregate(participant, db.as_poc_input());
  write_file(poc_path, p.serialize());
  write_file(dpoc_path, dpoc->serialize());
  out << "aggregated " << db.size() << " traces for " << participant
      << "\n  POC  (" << p.serialize().size() << " B) -> " << poc_path
      << "\n  DPOC (" << dpoc->serialize().size() << " B) -> " << dpoc_path
      << "\n";
  return 0;
}

int cmd_prove(const Flags& flags, std::ostream& out) {
  const std::string ps_path = flags.require("ps");
  const std::string dpoc_path = flags.require("dpoc");
  const supplychain::ProductId product =
      parse_product(flags.require("product"));
  const std::string out_path = flags.require("out");
  flags.reject_unknown();

  const auto crs = std::make_shared<zkedb::EdbCrs>(
      zkedb::EdbPublicParams::deserialize(read_file(ps_path)));
  auto dpoc = poc::PocDecommitment::load(crs, read_file(dpoc_path));
  poc::PocScheme scheme(crs);
  const poc::PocProof proof = scheme.prove(*dpoc, product);
  write_file(out_path, proof.serialize());
  out << (proof.ownership ? "ownership" : "non-ownership") << " proof for "
      << supplychain::epc_to_string(product) << " ("
      << proof.serialize().size() << " B) -> " << out_path << "\n";
  return 0;
}

int cmd_verify(const Flags& flags, std::ostream& out) {
  const std::string ps_path = flags.require("ps");
  const std::string poc_path = flags.require("poc");
  const supplychain::ProductId product =
      parse_product(flags.require("product"));
  const std::string proof_path = flags.require("proof");
  flags.reject_unknown();

  const auto crs = std::make_shared<zkedb::EdbCrs>(
      zkedb::EdbPublicParams::deserialize(read_file(ps_path)));
  const poc::Poc p = poc::Poc::deserialize(read_file(poc_path));
  const poc::PocProof proof =
      poc::PocProof::deserialize(read_file(proof_path));
  poc::PocScheme scheme(crs);
  const poc::PocVerifyResult result = scheme.verify(p, product, proof);
  switch (result.verdict) {
    case poc::PocVerdict::kTrace: {
      out << "VALID ownership proof: " << p.participant << " processed "
          << supplychain::epc_to_string(product) << "\n";
      try {
        const auto info =
            supplychain::TraceInfo::deserialize(*result.trace_info);
        out << "  operation=" << info.operation
            << " timestamp=" << info.timestamp << "\n";
      } catch (const Error&) {
        out << "  (committed value is not a decodable TraceInfo)\n";
      }
      return 0;
    }
    case poc::PocVerdict::kValid:
      out << "VALID non-ownership proof: " << p.participant
          << " did not process " << supplychain::epc_to_string(product)
          << "\n";
      return 0;
    case poc::PocVerdict::kBad:
      out << "BAD proof\n";
      return 1;
  }
  return 1;
}

int cmd_inspect(const Flags& flags, std::ostream& out) {
  const std::string ps_path = flags.get("ps", "");
  const std::string poc_path = flags.get("poc", "");
  flags.reject_unknown();
  if (!ps_path.empty()) {
    const zkedb::EdbPublicParams params =
        zkedb::EdbPublicParams::deserialize(read_file(ps_path));
    out << "public parameters:\n  q=" << params.q
        << " height=" << params.height << " group=" << params.group_name
        << "\n  rsa bits=" << params.qtmc_pk.n.bits() << " soft-mode="
        << (params.soft_mode == zkedb::SoftMode::kShared ? "shared"
                                                         : "per-child")
        << "\n";
    return 0;
  }
  if (!poc_path.empty()) {
    const poc::Poc p = poc::Poc::deserialize(read_file(poc_path));
    out << "POC of participant " << p.participant << "\n  commitment ("
        << p.commitment.size() << " B): " << to_hex(p.commitment).substr(0, 64)
        << "...\n  (no product ids are derivable from this credential)\n";
    return 0;
  }
  throw UsageError("inspect needs --ps or --poc");
}

int cmd_demo(std::ostream& out) {
  using namespace desword::protocol;
  ScenarioConfig config;
  config.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(supplychain::SupplyChainGraph::paper_example(), config);

  supplychain::DistributionConfig dist;
  dist.initial = "v0";
  dist.products = supplychain::make_products(1, 1, 4);
  scenario.run_task("demo-task", dist);
  out << "demo: distributed 4 products through the paper's Figure 1 "
         "supply chain\n";

  const QueryOutcome good =
      scenario.proxy().run_query(dist.products[0], ProductQuality::kGood);
  out << "good product query -> path:";
  for (const auto& hop : good.path) out << " " << hop;
  out << (good.complete ? "  [complete]\n" : "  [incomplete]\n");

  const QueryOutcome bad =
      scenario.proxy().run_query(dist.products[1], ProductQuality::kBad);
  out << "bad product query  -> path:";
  for (const auto& hop : bad.path) out << " " << hop;
  out << (bad.complete ? "  [complete]\n" : "  [incomplete]\n");

  out << "reputation:";
  for (const auto& [id, score] : scenario.proxy().reputation_snapshot()) {
    out << " " << id << "=" << score;
  }
  out << "\n";
  return good.complete && bad.complete ? 0 : 1;
}

void print_usage(std::ostream& err) {
  err << "usage: desword <command> [flags]\n"
         "commands:\n"
         "  ps-gen     generate ZK-EDB public parameters\n"
         "  aggregate  build a POC + DPOC from a traces JSON file\n"
         "  prove      produce an ownership / non-ownership proof\n"
         "  verify     verify a proof against a POC\n"
         "  inspect    describe a ps / poc file\n"
         "  demo       run an end-to-end in-process demonstration\n"
         "distributed deployment (TCP loopback):\n"
         "  plan               generate a deployment plan + ground truth\n"
         "  serve-proxy        run the proxy daemon of a plan\n"
         "                     [--workers N crypto worker threads,\n"
         "                      --query-concurrency N sessions in flight,\n"
         "                      --verify-cache 0|1 verification cache,\n"
         "                      --cache-capacity N cached verdicts]\n"
         "  serve-participant  run one participant daemon of a plan\n"
         "                     [--workers N crypto worker threads]\n"
         "                     [--proof-memo 0|1 memoize repeated proofs,\n"
         "                     default 1]\n"
         "  query              drive a running deployment (wait-ready /\n"
         "                     product query / report / shutdown)\n"
         "                     [--stats-json PATH fetches a metrics snapshot]\n"
         "  stats              fetch an observability snapshot (metrics,\n"
         "                     traces, reputation) from a running node\n";
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  try {
    if (args.empty()) {
      print_usage(err);
      return 2;
    }
    const std::string& cmd = args[0];
    const Flags flags(args, 1);
    if (cmd == "ps-gen") return cmd_ps_gen(flags, out);
    if (cmd == "aggregate") return cmd_aggregate(flags, out);
    if (cmd == "prove") return cmd_prove(flags, out);
    if (cmd == "verify") return cmd_verify(flags, out);
    if (cmd == "inspect") return cmd_inspect(flags, out);
    if (cmd == "demo") {
      flags.reject_unknown();
      return cmd_demo(out);
    }
    if (cmd == "plan") return cmd_plan(flags, out);
    if (cmd == "serve-proxy") return cmd_serve_proxy(flags, out);
    if (cmd == "serve-participant") return cmd_serve_participant(flags, out);
    if (cmd == "query") return cmd_query(flags, out, err);
    if (cmd == "stats") return cmd_stats(flags, out, err);
    err << "unknown command: " << cmd << "\n";
    print_usage(err);
    return 2;
  } catch (const UsageError& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace desword::cli
