// Thin executable wrapper around the CLI library.
#include <iostream>
#include <string>
#include <vector>

#include "cli_lib.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return desword::cli::run(args, std::cout, std::cerr);
}
