// Implementation of the `desword` command-line tool.
//
// Kept as a library (thin main in desword_cli.cpp) so the test suite can
// drive every command in-process. Commands:
//
//   desword ps-gen     --out ps.bin [--q 16 --height 32 --rsa-bits 2048
//                      --group p256 --soft-mode shared]
//   desword aggregate  --ps ps.bin --participant v1 --traces traces.json
//                      --poc v1.poc --dpoc v1.dpoc
//   desword prove      --ps ps.bin --dpoc v1.dpoc --product <hex-epc>
//                      --out proof.bin
//   desword verify     --ps ps.bin --poc v1.poc --product <hex-epc>
//                      --proof proof.bin
//   desword inspect    --ps ps.bin | --poc v1.poc | --traces traces.json
//   desword demo
//
// The traces JSON format:
//   { "traces": [ { "id": "300000...(24 hex chars)" |
//                   {"manager":1,"class":2,"serial":3},
//                   "operation": "process", "timestamp": 7,
//                   "ingredients": ["..."], "parameters": ["..."] }, ... ] }
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace desword::cli {

/// Entry point; returns the process exit code. Never throws — errors are
/// reported on `err` and mapped to exit code 2 (usage) or 1 (operation
/// failed / verification negative).
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace desword::cli
