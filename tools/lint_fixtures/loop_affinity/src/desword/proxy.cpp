// Fixture: worker-context strand lambdas touching loop-owned state
// (rule loop-affinity). Only the direct touches fire; the nested
// transport_.post hand-back runs on the loop thread and is exempt, as is
// the waived scheduler_ line and the clean good_path pattern.
#include "common/executor.h"

namespace desword {

void Proxy::verify_then() {
  strand->post([this] {
    sessions_.erase(7);
    transport_.send(id_, peer_, type_, {});
    scheduler_.finished(7);  // desword-lint: allow(loop-affinity)
    transport_.post([this] {
      finish_in_flight(key_, true, {});
      resume_verify(7);
    });
    transport_.remove_work();
  });
}

void Proxy::good_path() {
  s.strand->post([this] {
    auto verdict = work();
    transport_.post([this, verdict] { resume_verify(verdict); });
  });
}

}  // namespace desword
