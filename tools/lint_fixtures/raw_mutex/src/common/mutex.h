// Fixture: the wrapper layer itself is exempt — raw primitives are the
// implementation of the annotated Mutex and must not be flagged here.
#pragma once

#include <mutex>

namespace desword {
using RawMutexForTest = std::mutex;
}  // namespace desword
