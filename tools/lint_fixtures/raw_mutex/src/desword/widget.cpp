// Fixture: raw std synchronization primitives outside the wrapper layer.
// Every locking construct must go through common/mutex.h so Clang's
// -Wthread-safety sees the acquisition (rule raw-mutex).
#include <mutex>

#include "common/mutex.h"

namespace desword {

class Widget {
 public:
  void poke() {
    std::lock_guard<std::mutex> lk(mu_);
    ++n_;
  }

 private:
  std::mutex mu_;
  std::condition_variable_any cv_;  // desword-lint: allow(raw-mutex)
  int n_ = 0;
};

}  // namespace desword
