// Fixture: verification-cache keys that do not bind the proof bytes.
// A key missing the proof lets a tampered proof alias a cached
// acceptance (rule cache-key).
#include "zkedb/verify_cache.h"

namespace desword::zkedb {

Bytes lookup_keys(const Bytes& crs_digest, const Bytes& commitment,
                  const Bytes& position, const Bytes& proof_bytes) {
  // Clean: the proof bytes are part of the key.
  const Bytes good = VerifyCache::proof_key(crs_digest, commitment, position,
                                            proof_bytes, "membership");
  // Violation: commitment + position alone — any forgery for this slot
  // would hit the same entry.
  const Bytes bad =
      VerifyCache::proof_key(crs_digest, commitment, position, {},
                             "membership");
  // Violation: a hop key without the bytes as received.
  const Bytes bad_hop = VerifyCache::hop_key("t0", "p1", position, commitment,
                                             {}, "ownership");
  // Waived: migration shim measured separately.
  const Bytes waived = VerifyCache::hop_key(  // desword-lint: allow(cache-key)
      "t0", "p1", position, commitment, {}, "ownership");
  // Clean: multi-line call with the proof bytes on a later line.
  const Bytes wrapped = VerifyCache::hop_key(
      "t0", "p1", position, commitment,
      proof_bytes, "ownership");
  (void)good;
  (void)bad_hop;
  (void)waived;
  return wrapped.empty() ? bad : wrapped;
}

}  // namespace desword::zkedb
