// Fixture instrument registry: the quoted literals here are the
// registered metric names for this mini-tree.
#pragma once

#define FIXTURE_OBS_COUNTERS(X) \
  X(net_frame_sent, "net.frame.sent") \
  X(proxy_query_started, "proxy.query.started")
