// Fixture: metric call sites (rule metric-name). A registered
// layer.object.verb name is fine; a name breaking the scheme or one
// absent from the registry fires.
#include "obs/metrics.h"

namespace desword {

void record() {
  obs::metric("net.frame.sent").add();
  obs::metric("BadName").add();
  obs::metric("net.frame.unregistered").add();
}

}  // namespace desword
