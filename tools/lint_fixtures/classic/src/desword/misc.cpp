// Fixture: classic rules — randomness, switch-default, secret-print.
#include <cstdlib>
#include <iostream>

namespace desword {

int weak_seed() {
  return rand();
}

void dispatch(const net::Envelope& env) {
  switch (message_type_of(env)) {
    case MessageType::kQueryRequest:
      break;
    default:
      break;
  }
}

void dump_keys(const Bytes& trapdoor) {
  std::cout << "trapdoor bytes: " << trapdoor.size() << "\n";
}

}  // namespace desword
