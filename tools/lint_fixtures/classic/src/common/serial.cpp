// Fixture: memcpy in a decode-path file (rule decode-cast).
#include <cstring>

namespace desword {

void decode_header(const unsigned char* wire, char* out) {
  memcpy(out, wire, 4);
}

}  // namespace desword
