// Fixture for rule timer-pairing: armed timers must be cancellable.
#include <cstdint>
#include <utility>

struct Widget {
  void arm_good() {
    // Paired: the id is kept and teardown passes it to cancel_timer.
    retrans_timer_ = transport_.set_timer(250, [] {});
  }

  void arm_orphaned() {
    // Fires: the id is kept but no cancel_timer in this file names it.
    orphan_timer_ = transport_.set_timer(100, [] {});
  }

  void arm_discarded() {
    // Fires: the TimerId is dropped on the floor — nobody can cancel it.
    transport_.set_timer(50, [] {});
  }

  void arm_waived() {
    leaky_timer_ = transport_.set_timer(10, [] {});  // desword-lint: allow(timer-pairing)
  }

  std::uint64_t arm_forwarded(std::uint64_t delay) {
    // Clean: `return ...set_timer(...)` hands ownership to the caller.
    return transport_.set_timer(delay, [] {});
  }

  void arm_wrapped_assignment() {
    // Clean: the formatter split `lhs =` onto its own line; the id is
    // still paired with the teardown cancellation below.
    wrapped_timer_ =
        transport_.set_timer(75, [] {});
  }

  ~Widget() {
    if (retrans_timer_ != 0) transport_.cancel_timer(retrans_timer_);
    if (wrapped_timer_ != 0) transport_.cancel_timer(wrapped_timer_);
  }

  struct FakeTransport {
    template <typename Fn>
    std::uint64_t set_timer(std::uint64_t, Fn&&) { return 1; }
    void cancel_timer(std::uint64_t) {}
  };
  FakeTransport transport_;
  std::uint64_t retrans_timer_ = 0;
  std::uint64_t orphan_timer_ = 0;
  std::uint64_t leaky_timer_ = 0;
  std::uint64_t wrapped_timer_ = 0;
};
