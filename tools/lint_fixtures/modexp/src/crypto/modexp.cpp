// Fixture: the one sanctioned home of raw BN_mod_exp — exempt.
#include <openssl/bn.h>

namespace desword {

void sanctioned(BIGNUM* r, const BIGNUM* a, const BIGNUM* p, const BIGNUM* m,
                BN_CTX* ctx) {
  BN_mod_exp_mont(r, a, p, m, ctx, nullptr);
}

}  // namespace desword
