// Fixture: raw OpenSSL modular exponentiation outside crypto/modexp
// (rule modexp). Stray BN_mod_exp bypasses the shared Montgomery context
// and the fixed-base tables.
#include <openssl/bn.h>

namespace desword {

void stray(BIGNUM* r, const BIGNUM* a, const BIGNUM* p, const BIGNUM* m,
           BN_CTX* ctx) {
  BN_mod_exp(r, a, p, m, ctx);
  BN_MONT_CTX* mont = BN_MONT_CTX_new();
  (void)mont;
}

}  // namespace desword
