// Fixture: blocking crypto invoked inline from loop-thread handlers
// (rule handler-crypto). The builder method is not a handler and may
// prove directly — it runs on an Executor strand.

namespace desword {

void Participant::handle(const net::Envelope& env) {
  auto proof = scheme().prove(env.payload);
  transport_.send(id_, env.from, type_, proof);
}

void Participant::on_query_request(const net::Envelope& env) {
  auto ok = check_ownership(poc_, product_, env.payload);
  (void)ok;
}

Bytes Participant::build_reply(const net::Envelope& env) {
  return scheme().prove(env.payload);
}

}  // namespace desword
