// Shared helpers for the `desword` CLI commands (flag parsing, file IO,
// product/trace JSON decoding). Header-only; used by cli_lib.cpp and
// cli_serve.cpp.
#pragma once

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "common/json.h"
#include "supplychain/rfid.h"
#include "supplychain/trace.h"

namespace desword::cli {

class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

inline Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  return Bytes(s.begin(), s.end());
}

inline void write_file(const std::string& path, BytesView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot create " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("write failed: " + path);
}

/// Flag parser: --name value pairs after the subcommand.
class Flags {
 public:
  Flags(const std::vector<std::string>& args, std::size_t start) {
    for (std::size_t i = start; i < args.size(); i += 2) {
      const std::string& name = args[i];
      if (name.rfind("--", 0) != 0) {
        throw UsageError("expected flag, got '" + name + "'");
      }
      if (i + 1 >= args.size()) {
        throw UsageError("flag " + name + " needs a value");
      }
      values_[name.substr(2)] = args[i + 1];
    }
  }

  bool has(const std::string& name) const {
    used_.insert(name);
    return values_.find(name) != values_.end();
  }

  std::string require(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) throw UsageError("missing --" + name);
    used_.insert(name);
    return it->second;
  }

  std::string get(const std::string& name, const std::string& dflt) const {
    const auto it = values_.find(name);
    used_.insert(name);
    return it == values_.end() ? dflt : it->second;
  }

  int get_int(const std::string& name, int dflt) const {
    const auto it = values_.find(name);
    used_.insert(name);
    if (it == values_.end()) return dflt;
    return std::stoi(it->second);
  }

  void reject_unknown() const {
    for (const auto& [name, value] : values_) {
      if (used_.find(name) == used_.end()) {
        throw UsageError("unknown flag --" + name);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

inline supplychain::ProductId parse_product(const std::string& hex) {
  Bytes id;
  try {
    id = from_hex(hex);
  } catch (const std::invalid_argument&) {
    throw UsageError("product id is not valid hex");
  }
  if (!supplychain::epc_valid(id)) {
    throw UsageError("product id is not a valid EPC-96 (24 hex chars, "
                     "header 0x30)");
  }
  return id;
}

inline supplychain::ProductId product_from_json(const json::Value& v) {
  if (v.is_string()) return parse_product(v.as_string());
  return supplychain::make_epc(
      static_cast<std::uint32_t>(v.at("manager").as_int()),
      static_cast<std::uint32_t>(v.at("class").as_int()),
      static_cast<std::uint64_t>(v.at("serial").as_int()));
}

inline supplychain::TraceDatabase traces_from_json(
    const json::Value& doc, const std::string& participant) {
  supplychain::TraceDatabase db;
  for (const json::Value& t : doc.at("traces").as_array()) {
    supplychain::TraceInfo info;
    info.participant = participant;
    info.operation = t.has("operation") ? t.at("operation").as_string()
                                        : std::string("process");
    info.timestamp = t.has("timestamp")
                         ? static_cast<std::uint64_t>(t.at("timestamp").as_int())
                         : 0;
    if (t.has("ingredients")) {
      for (const json::Value& s : t.at("ingredients").as_array()) {
        info.ingredients.push_back(s.as_string());
      }
    }
    if (t.has("parameters")) {
      for (const json::Value& s : t.at("parameters").as_array()) {
        info.parameters.push_back(s.as_string());
      }
    }
    db.record(supplychain::RfidTrace{product_from_json(t.at("id")),
                                     std::move(info)});
  }
  return db;
}

}  // namespace desword::cli
