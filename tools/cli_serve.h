// Distributed-deployment commands of the `desword` CLI: run the proxy and
// each participant as separate OS processes speaking the real TCP
// transport, coordinated through a plan file plus a directory of
// `<node>.addr` files (written by each daemon once it is listening, so
// ports are kernel-assigned and race-free).
//
//   desword plan              --out plan.json --addr-dir DIR
//                             [--participants 4 --products 3 --task task-1
//                              --q 4 --height 8 --rsa-bits 512 --group p256
//                              --seed 7]
//   desword serve-proxy       --plan plan.json [--stats-json PATH]
//   desword serve-participant --plan plan.json --id v1 [--stats-json PATH]
//   desword query             --plan plan.json
//                             (--wait-ready MS |
//                              --product HEX --quality good|bad [--task ID] |
//                              --report - | --shutdown all)
//                             [--timeout-ms 30000] [--stats-json PATH]
//   desword stats             --plan plan.json [--node ID] [--out -]
//                             [--timeout-ms 30000]
//
// `--stats-json PATH` makes the daemon dump an observability snapshot
// (metrics + traces) to PATH on exit and on SIGUSR1; on `query` it fetches
// the proxy's snapshot after the query completes. `stats` asks a running
// node for its snapshot on demand.
#pragma once

#include <ostream>

#include "cli_util.h"

namespace desword::cli {

int cmd_plan(const Flags& flags, std::ostream& out);
int cmd_serve_proxy(const Flags& flags, std::ostream& out);
int cmd_serve_participant(const Flags& flags, std::ostream& out);
int cmd_query(const Flags& flags, std::ostream& out, std::ostream& err);
int cmd_stats(const Flags& flags, std::ostream& out, std::ostream& err);

}  // namespace desword::cli
