#include "cli_serve.h"

#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "desword/messages.h"
#include "desword/participant.h"
#include "desword/proxy.h"
#include "net/fault_injector.h"
#include "net/socket_transport.h"
#include "obs/metrics.h"
#include "supplychain/distribution.h"
#include "supplychain/graph.h"
#include "zkedb/params.h"

namespace desword::cli {

namespace {

namespace fs = std::filesystem;
using namespace desword::protocol;

// ---------------------------------------------------------------------------
// Stats dumping (--stats-json + SIGUSR1)
// ---------------------------------------------------------------------------

/// Set by SIGUSR1; the serve loops poll it and dump a stats snapshot.
volatile std::sig_atomic_t g_dump_stats = 0;

extern "C" void on_sigusr1(int) { g_dump_stats = 1; }

/// Observability snapshot of a participant daemon: the process-wide
/// metrics registry plus the participant's own counters.
std::string participant_stats_json(const Participant& participant) {
  json::Object o;
  o["metrics"] = obs::MetricsRegistry::global().snapshot_value();
  json::Object ps;
  ps["duplicate_requests_served"] = json::Value(
      static_cast<std::int64_t>(participant.stats().duplicate_requests_served));
  ps["proofs_generated"] = json::Value(
      static_cast<std::int64_t>(participant.stats().proofs_generated));
  ps["reply_cache_size"] = json::Value(
      static_cast<std::int64_t>(participant.reply_cache_size()));
  o["participant"] = json::Value(std::move(ps));
  return json::Value(std::move(o)).dump_pretty();
}

// ---------------------------------------------------------------------------
// Plan file
// ---------------------------------------------------------------------------

struct PlanParticipant {
  std::string id;
  std::vector<std::string> parents;
  std::vector<std::string> children;
  std::map<supplychain::ProductId, std::string> shipments;
  supplychain::TraceDatabase traces;
};

struct Plan {
  std::string addr_dir;
  std::string proxy_id;
  zkedb::EdbConfig edb;
  int max_retries = 3;
  std::uint64_t retransmit_ms = 250;
  std::string task_id;
  std::string initial;
  std::vector<supplychain::ProductId> products;
  std::vector<std::string> involved;  // all participant ids, in order
  std::map<std::string, PlanParticipant> participants;
  std::map<supplychain::ProductId, std::vector<std::string>> paths;
};

json::Array string_array(const std::vector<std::string>& v) {
  json::Array a;
  for (const auto& s : v) a.push_back(json::Value(s));
  return a;
}

std::vector<std::string> parse_string_array(const json::Value& v) {
  std::vector<std::string> out;
  for (const json::Value& s : v.as_array()) out.push_back(s.as_string());
  return out;
}

Plan load_plan(const std::string& path) {
  const json::Value doc = json::parse(string_of(read_file(path)));
  Plan plan;
  plan.addr_dir = doc.at("addr_dir").as_string();
  plan.proxy_id = doc.at("proxy").as_string();
  const json::Value& edb = doc.at("edb");
  plan.edb.q = static_cast<std::uint32_t>(edb.at("q").as_int());
  plan.edb.height = static_cast<std::uint32_t>(edb.at("height").as_int());
  plan.edb.rsa_bits = static_cast<int>(edb.at("rsa_bits").as_int());
  plan.edb.group_name = edb.at("group").as_string();
  plan.edb.soft_mode = zkedb::SoftMode::kShared;
  plan.max_retries = static_cast<int>(doc.at("max_retries").as_int());
  plan.retransmit_ms =
      static_cast<std::uint64_t>(doc.at("retransmit_ms").as_int());
  const json::Value& task = doc.at("task");
  plan.task_id = task.at("id").as_string();
  plan.initial = task.at("initial").as_string();
  for (const json::Value& p : task.at("products").as_array()) {
    plan.products.push_back(parse_product(p.as_string()));
  }
  for (const json::Value& pj : doc.at("participants").as_array()) {
    PlanParticipant p;
    p.id = pj.at("id").as_string();
    p.parents = parse_string_array(pj.at("parents"));
    p.children = parse_string_array(pj.at("children"));
    for (const json::Value& sj : pj.at("shipments").as_array()) {
      p.shipments[parse_product(sj.at("product").as_string())] =
          sj.at("next").as_string();
    }
    p.traces = traces_from_json(pj, p.id);
    plan.involved.push_back(p.id);
    plan.participants.emplace(p.id, std::move(p));
  }
  for (const json::Value& pj : doc.at("paths").as_array()) {
    plan.paths[parse_product(pj.at("product").as_string())] =
        parse_string_array(pj.at("path"));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Fault plans (--fault-plan)
// ---------------------------------------------------------------------------

/// Fault-rate fields of one JSON object, over `base` defaults. Rates are
/// probabilities in [0,1]; `delay` is in transport clock units (ms here).
net::LinkFaults parse_link_faults(const json::Value& v, net::LinkFaults base) {
  if (v.has("drop_rate")) base.drop_rate = v.at("drop_rate").as_double();
  if (v.has("reset_rate")) base.reset_rate = v.at("reset_rate").as_double();
  if (v.has("delay_rate")) base.delay_rate = v.at("delay_rate").as_double();
  if (v.has("delay")) {
    base.delay = static_cast<std::uint64_t>(v.at("delay").as_int());
  }
  if (v.has("duplicate_rate")) {
    base.duplicate_rate = v.at("duplicate_rate").as_double();
  }
  return base;
}

net::FaultWindow parse_fault_window(const json::Value& v) {
  net::FaultWindow w;
  if (v.has("from")) w.from = static_cast<std::uint64_t>(v.at("from").as_int());
  if (v.has("until")) {
    w.until = static_cast<std::uint64_t>(v.at("until").as_int());
  }
  return w;
}

/// Parses a fault-plan file (see DESIGN.md §11 for the schema):
///
///   {"seed": 42,
///    "default": {"drop_rate": 0.1, "delay_rate": 0.05, "delay": 40},
///    "rules": [{"from": "v0", "to": "proxy", "drop_rate": 0.3}],
///    "partitions": [{"group_a": ["v0"], "group_b": ["proxy"],
///                    "from": 1000, "until": 2000}],
///    "crashes": [{"node": "v1", "from": 0, "until": 500}]}
///
/// Every field is optional; rule objects inherit unset rates from
/// "default"; a missing/zero "until" means the window never heals.
net::FaultPlan load_fault_plan(const std::string& path) {
  const json::Value doc = json::parse(string_of(read_file(path)));
  net::FaultPlan plan;
  if (doc.has("seed")) {
    plan.seed = static_cast<std::uint64_t>(doc.at("seed").as_int());
  }
  if (doc.has("default")) {
    plan.default_faults = parse_link_faults(doc.at("default"), {});
  }
  if (doc.has("rules")) {
    for (const json::Value& rj : doc.at("rules").as_array()) {
      net::FaultRule rule;
      if (rj.has("from")) rule.from = rj.at("from").as_string();
      if (rj.has("to")) rule.to = rj.at("to").as_string();
      rule.faults = parse_link_faults(rj, plan.default_faults);
      plan.rules.push_back(std::move(rule));
    }
  }
  if (doc.has("partitions")) {
    for (const json::Value& pj : doc.at("partitions").as_array()) {
      net::Partition part;
      part.group_a = parse_string_array(pj.at("group_a"));
      part.group_b = parse_string_array(pj.at("group_b"));
      part.window = parse_fault_window(pj);
      plan.partitions.push_back(std::move(part));
    }
  }
  if (doc.has("crashes")) {
    for (const json::Value& cj : doc.at("crashes").as_array()) {
      net::CrashWindow crash;
      crash.node = cj.at("node").as_string();
      crash.window = parse_fault_window(cj);
      plan.crashes.push_back(std::move(crash));
    }
  }
  return plan;
}

/// The TaskSetup a daemon hands to its Participant, straight from the plan.
TaskSetup setup_for(const Plan& plan, const PlanParticipant& p) {
  TaskSetup setup;
  setup.task_id = plan.task_id;
  setup.initial = plan.initial;
  setup.parents.assign(p.parents.begin(), p.parents.end());
  setup.children.assign(p.children.begin(), p.children.end());
  setup.involved = plan.involved;
  for (const auto& [product, next] : p.shipments) {
    setup.shipments[product] = next;
  }
  return setup;
}

// ---------------------------------------------------------------------------
// Address files
// ---------------------------------------------------------------------------

std::string addr_path(const std::string& dir, const std::string& node) {
  return (fs::path(dir) / (node + ".addr")).string();
}

/// Writes `<dir>/<node>.addr` atomically (tmp + rename) so a concurrent
/// reader never observes a half-written address.
void write_addr_file(const std::string& dir, const std::string& node,
                     const std::string& address) {
  const std::string final_path = addr_path(dir, node);
  const std::string tmp_path = final_path + ".tmp";
  write_file(tmp_path, bytes_of(address));
  fs::rename(tmp_path, final_path);
}

/// Resolver over the addr-file directory. Missing files simply mean "not
/// up yet": the message is dropped and a retransmission retries later.
net::SocketTransportOptions transport_options(const std::string& addr_dir) {
  net::SocketTransportOptions options;
  options.resolve =
      [addr_dir](const net::NodeId& node) -> std::optional<std::string> {
    const std::string path = addr_path(addr_dir, node);
    std::error_code ec;
    if (!fs::exists(path, ec)) return std::nullopt;
    try {
      std::string address = string_of(read_file(path));
      while (!address.empty() &&
             (address.back() == '\n' || address.back() == '\r')) {
        address.pop_back();
      }
      if (address.empty()) return std::nullopt;
      return address;
    } catch (const Error&) {
      return std::nullopt;
    }
  };
  return options;
}

// ---------------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------------

int plan_impl(const Flags& flags, std::ostream& out) {
  const std::string out_path = flags.require("out");
  const std::string addr_dir = flags.require("addr-dir");
  const int n = flags.get_int("participants", 4);
  const int product_count = flags.get_int("products", 3);
  const std::string task_id = flags.get("task", "task-1");
  zkedb::EdbConfig edb;
  edb.q = static_cast<std::uint32_t>(flags.get_int("q", 4));
  edb.height = static_cast<std::uint32_t>(flags.get_int("height", 8));
  edb.rsa_bits = flags.get_int("rsa-bits", 512);
  edb.group_name = flags.get("group", "p256");
  edb.soft_mode = zkedb::SoftMode::kShared;
  const int seed = flags.get_int("seed", 7);
  flags.reject_unknown();
  if (n < 2) throw UsageError("--participants must be >= 2");
  if (product_count < 1) throw UsageError("--products must be >= 1");

  fs::create_directories(addr_dir);

  // Chain supply chain v0 -> v1 -> ... -> v{n-1}: every product traverses
  // every participant, which makes ground truth trivial to pin in tests.
  supplychain::SupplyChainGraph graph;
  for (int i = 0; i + 1 < n; ++i) {
    graph.add_edge("v" + std::to_string(i), "v" + std::to_string(i + 1));
  }

  supplychain::DistributionConfig dist;
  dist.initial = "v0";
  dist.products = supplychain::make_products(
      1, 1, static_cast<std::size_t>(product_count));
  dist.seed = static_cast<std::uint64_t>(seed);
  const supplychain::DistributionResult result =
      supplychain::run_distribution(graph, dist);

  json::Object doc;
  doc["addr_dir"] = json::Value(addr_dir);
  doc["proxy"] = json::Value("proxy");
  json::Object edbj;
  edbj["q"] = json::Value(static_cast<std::int64_t>(edb.q));
  edbj["height"] = json::Value(static_cast<std::int64_t>(edb.height));
  edbj["rsa_bits"] = json::Value(static_cast<std::int64_t>(edb.rsa_bits));
  edbj["group"] = json::Value(edb.group_name);
  doc["edb"] = json::Value(std::move(edbj));
  doc["max_retries"] = json::Value(static_cast<std::int64_t>(3));
  doc["retransmit_ms"] = json::Value(static_cast<std::int64_t>(250));

  json::Object task;
  task["id"] = json::Value(task_id);
  task["initial"] = json::Value(dist.initial);
  json::Array products;
  for (const auto& p : dist.products) products.push_back(json::Value(to_hex(p)));
  task["products"] = json::Value(std::move(products));
  doc["task"] = json::Value(std::move(task));

  json::Array participants;
  for (const auto& id : result.involved) {
    json::Object pj;
    pj["id"] = json::Value(id);
    std::vector<std::string> parents;
    std::vector<std::string> children;
    for (const auto& [parent, kids] : result.used_edges) {
      if (parent == id) children.assign(kids.begin(), kids.end());
      if (kids.count(id) > 0) parents.push_back(parent);
    }
    pj["parents"] = json::Value(string_array(parents));
    pj["children"] = json::Value(string_array(children));
    json::Array shipments;
    for (const auto& [product, path] : result.paths) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (path[i] != id) continue;
        json::Object s;
        s["product"] = json::Value(to_hex(product));
        s["next"] = json::Value(path[i + 1]);
        shipments.push_back(json::Value(std::move(s)));
      }
    }
    pj["shipments"] = json::Value(std::move(shipments));
    json::Array traces;
    for (const supplychain::RfidTrace& t :
         result.databases.at(id).all()) {
      json::Object tj;
      tj["id"] = json::Value(to_hex(t.id));
      tj["operation"] = json::Value(t.da.operation);
      tj["timestamp"] =
          json::Value(static_cast<std::int64_t>(t.da.timestamp));
      tj["ingredients"] = json::Value(string_array(t.da.ingredients));
      tj["parameters"] = json::Value(string_array(t.da.parameters));
      traces.push_back(json::Value(std::move(tj)));
    }
    pj["traces"] = json::Value(std::move(traces));
    participants.push_back(json::Value(std::move(pj)));
  }
  doc["participants"] = json::Value(std::move(participants));

  json::Array paths;
  for (const auto& [product, path] : result.paths) {
    json::Object pj;
    pj["product"] = json::Value(to_hex(product));
    pj["path"] = json::Value(string_array(path));
    paths.push_back(json::Value(std::move(pj)));
  }
  doc["paths"] = json::Value(std::move(paths));

  const std::string text = json::Value(std::move(doc)).dump_pretty();
  write_file(out_path, bytes_of(text));
  out << "plan: " << result.involved.size() << " participants, "
      << dist.products.size() << " products, task " << task_id << " -> "
      << out_path << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// serve-proxy
// ---------------------------------------------------------------------------

/// QueryOutcome -> the JSON summary returned to query clients. Includes the
/// public reputation board so clients see the double-edged scores applied.
std::string outcome_json(const QueryOutcome& outcome, const Proxy& proxy) {
  json::Object o;
  o["query_id"] = json::Value(static_cast<std::int64_t>(outcome.query_id));
  o["product"] = json::Value(to_hex(outcome.product));
  o["quality"] = json::Value(to_string(outcome.quality));
  o["task"] = json::Value(outcome.task_id);
  o["complete"] = json::Value(outcome.complete);
  json::Array path;
  for (const auto& hop : outcome.path) path.push_back(json::Value(hop));
  o["path"] = json::Value(std::move(path));
  json::Array violations;
  for (const Violation& v : outcome.violations) {
    json::Object vo;
    vo["participant"] = json::Value(v.participant);
    vo["type"] = json::Value(to_string(v.type));
    violations.push_back(json::Value(std::move(vo)));
  }
  o["violations"] = json::Value(std::move(violations));
  json::Object reputation;
  for (const auto& [id, score] : proxy.reputation_snapshot()) {
    reputation[id] = json::Value(score);
  }
  o["reputation"] = json::Value(std::move(reputation));
  return json::Value(std::move(o)).dump();
}

int serve_proxy_impl(const Flags& flags, std::ostream& out) {
  const std::string plan_path = flags.require("plan");
  const std::string stats_path = flags.get("stats-json", "");
  const std::string fault_path = flags.get("fault-plan", "");
  const int workers = flags.get_int("workers", 0);
  const int query_concurrency = flags.get_int("query-concurrency", 8);
  const int query_deadline = flags.get_int("query-deadline", 0);
  const int verify_cache = flags.get_int("verify-cache", 1);
  const int cache_capacity = flags.get_int("cache-capacity", 4096);
  flags.reject_unknown();
  if (workers < 0) throw UsageError("--workers must be >= 0");
  if (query_concurrency < 1) {
    throw UsageError("--query-concurrency must be >= 1");
  }
  if (query_deadline < 0) throw UsageError("--query-deadline must be >= 0");
  if (cache_capacity < 1) throw UsageError("--cache-capacity must be >= 1");
  const Plan plan = load_plan(plan_path);

  net::SocketTransport socket(transport_options(plan.addr_dir));
  std::optional<net::FaultInjector> fault;
  if (!fault_path.empty()) fault.emplace(socket, load_fault_plan(fault_path));
  net::Transport& transport =
      fault ? static_cast<net::Transport&>(*fault) : socket;

  ProxyConfig config;
  config.edb = plan.edb;
  config.max_retries = plan.max_retries;
  config.retransmit_base = plan.retransmit_ms;
  config.query_deadline = static_cast<std::uint64_t>(query_deadline);
  config.verify.worker_threads = static_cast<unsigned>(workers);
  config.verify.cache_proofs = verify_cache != 0;
  config.verify.cache_hops = verify_cache != 0;
  config.verify.cache_capacity = static_cast<std::size_t>(cache_capacity);
  config.max_concurrent_queries = static_cast<std::size_t>(query_concurrency);
  ProxyDeps deps;
  deps.crs_cache = std::make_shared<CrsCache>();
  Proxy proxy(plan.proxy_id, transport, std::move(deps), std::move(config));

  bool running = true;
  struct PendingClient {
    net::NodeId node;
    std::uint64_t client_ref = 0;
  };
  std::map<std::uint64_t, PendingClient> pending;

  proxy.set_completion_callback([&](const QueryOutcome& outcome) {
    const auto it = pending.find(outcome.query_id);
    if (it == pending.end()) return;  // locally-driven query
    ClientQueryResponse resp;
    resp.client_ref = it->second.client_ref;
    resp.ok = true;
    resp.report_json = outcome_json(outcome, proxy);
    transport.send(plan.proxy_id, it->second.node, msg::kClientQueryResponse,
                   resp.serialize());
    pending.erase(it);
  });

  proxy.set_fallback_handler([&](const net::Envelope& env) {
    if (env.type == msg::kStatusRequest) {
      const StatusRequest m = StatusRequest::deserialize(env.payload);
      StatusResponse resp{m.task_id, proxy.task_list(m.task_id) != nullptr};
      transport.send(plan.proxy_id, env.from, msg::kStatusResponse,
                     resp.serialize());
    } else if (env.type == msg::kClientQueryRequest) {
      const ClientQueryRequest m =
          ClientQueryRequest::deserialize(env.payload);
      try {
        const std::uint64_t qid =
            proxy.begin_query(m.product, m.quality, m.task_hint);
        if (const QueryOutcome* done = proxy.outcome(qid)) {
          // Resolved synchronously (no candidates at all).
          ClientQueryResponse resp;
          resp.client_ref = m.client_ref;
          resp.ok = true;
          resp.report_json = outcome_json(*done, proxy);
          transport.send(plan.proxy_id, env.from, msg::kClientQueryResponse,
                         resp.serialize());
        } else {
          pending[qid] = PendingClient{env.from, m.client_ref};
        }
      } catch (const Error& e) {
        ClientQueryResponse resp;
        resp.client_ref = m.client_ref;
        resp.ok = false;
        resp.error = e.what();
        transport.send(plan.proxy_id, env.from, msg::kClientQueryResponse,
                       resp.serialize());
      }
    } else if (env.type == msg::kClientReportRequest) {
      const ClientReportRequest m =
          ClientReportRequest::deserialize(env.payload);
      ClientQueryResponse resp;
      resp.client_ref = m.client_ref;
      resp.ok = true;
      resp.report_json = proxy.export_report_json();
      transport.send(plan.proxy_id, env.from, msg::kClientQueryResponse,
                     resp.serialize());
    } else if (env.type == msg::kStatsRequest) {
      const StatsRequest m = StatsRequest::deserialize(env.payload);
      ClientQueryResponse resp;
      resp.client_ref = m.client_ref;
      resp.ok = true;
      resp.report_json = proxy.export_stats_json();
      transport.send(plan.proxy_id, env.from, msg::kClientQueryResponse,
                     resp.serialize());
    } else if (env.type == msg::kAdminShutdown) {
      running = false;
    }
  });

  write_addr_file(plan.addr_dir, plan.proxy_id, socket.local_address());
  out << "proxy " << plan.proxy_id << " listening on "
      << socket.local_address() << "\n";
  out.flush();

  if (!stats_path.empty()) std::signal(SIGUSR1, on_sigusr1);
  while (running) {
    transport.poll(/*timeout_ms=*/50);
    if (g_dump_stats != 0 && !stats_path.empty()) {
      g_dump_stats = 0;
      write_file(stats_path, bytes_of(proxy.export_stats_json()));
    }
  }
  socket.flush(/*timeout_ms=*/1000);  // drain in-flight client replies
  if (!stats_path.empty()) {
    write_file(stats_path, bytes_of(proxy.export_stats_json()));
    out << "stats -> " << stats_path << "\n";
  }
  out << "proxy " << plan.proxy_id << " shut down\n";
  return 0;
}

// ---------------------------------------------------------------------------
// serve-participant
// ---------------------------------------------------------------------------

int serve_participant_impl(const Flags& flags, std::ostream& out) {
  const std::string plan_path = flags.require("plan");
  const std::string id = flags.require("id");
  const std::string stats_path = flags.get("stats-json", "");
  const std::string fault_path = flags.get("fault-plan", "");
  const int workers = flags.get_int("workers", 0);
  const int proof_memo = flags.get_int("proof-memo", 1);
  flags.reject_unknown();
  if (workers < 0) throw UsageError("--workers must be >= 0");
  const Plan plan = load_plan(plan_path);
  const auto it = plan.participants.find(id);
  if (it == plan.participants.end()) {
    throw UsageError("participant " + id + " is not in the plan");
  }
  const PlanParticipant& me = it->second;

  net::SocketTransport socket(transport_options(plan.addr_dir));
  std::optional<net::FaultInjector> fault;
  if (!fault_path.empty()) fault.emplace(socket, load_fault_plan(fault_path));
  net::Transport& transport =
      fault ? static_cast<net::Transport&>(*fault) : socket;
  Participant participant(
      id, transport, plan.proxy_id,
      ParticipantDeps{.crs_cache = std::make_shared<CrsCache>()});
  participant.set_proof_memo(proof_memo != 0);
  if (workers > 0) {
    obs::install_executor_metrics();
    participant.set_executor(
        std::make_shared<Executor>(static_cast<unsigned>(workers)));
  }
  participant.load_database(me.traces);
  participant.begin_task(setup_for(plan, me));

  bool running = true;
  participant.set_fallback_handler([&](const net::Envelope& env) {
    if (env.type == msg::kStatsRequest) {
      const StatsRequest m = StatsRequest::deserialize(env.payload);
      ClientQueryResponse resp;
      resp.client_ref = m.client_ref;
      resp.ok = true;
      resp.report_json = participant_stats_json(participant);
      transport.send(id, env.from, msg::kClientQueryResponse,
                     resp.serialize());
    } else if (env.type == msg::kAdminShutdown) {
      running = false;
    }
  });

  write_addr_file(plan.addr_dir, id, socket.local_address());
  out << "participant " << id << " listening on "
      << socket.local_address() << "\n";
  out.flush();

  if (plan.initial == id) {
    // Kick off the distribution phase. The proxy may not be up yet: the
    // ps-retry timer keeps re-requesting until the list is submitted.
    participant.initiate_task(plan.task_id);
  }

  if (!stats_path.empty()) std::signal(SIGUSR1, on_sigusr1);
  while (running) {
    transport.poll(/*timeout_ms=*/50);
    if (g_dump_stats != 0 && !stats_path.empty()) {
      g_dump_stats = 0;
      write_file(stats_path, bytes_of(participant_stats_json(participant)));
    }
  }
  socket.flush(/*timeout_ms=*/1000);
  if (!stats_path.empty()) {
    write_file(stats_path, bytes_of(participant_stats_json(participant)));
    out << "stats -> " << stats_path << "\n";
  }
  out << "participant " << id << " shut down\n";
  return 0;
}

// ---------------------------------------------------------------------------
// query (client)
// ---------------------------------------------------------------------------

struct Client {
  explicit Client(const Plan& plan, const std::string& fault_path = "")
      : socket(transport_options(plan.addr_dir)),
        node_id("client-" + std::to_string(::getpid())) {
    if (!fault_path.empty()) {
      fault.emplace(socket, load_fault_plan(fault_path));
    }
    transport().register_node(node_id, [this](const net::Envelope& env) {
      try {
        if (env.type == msg::kStatusResponse) {
          status = StatusResponse::deserialize(env.payload);
        } else if (env.type == msg::kClientQueryResponse) {
          response = ClientQueryResponse::deserialize(env.payload);
        }
      } catch (const SerializationError&) {
        // Corrupt reply: keep waiting; the deadline bounds the damage.
      }
    });
  }

  /// The transport requests go through: the fault injector when a
  /// --fault-plan was given (lets operators rehearse a lossy client link
  /// against live daemons), the raw socket otherwise.
  net::Transport& transport() {
    return fault ? static_cast<net::Transport&>(*fault) : socket;
  }

  net::SocketTransport socket;
  std::optional<net::FaultInjector> fault;
  net::NodeId node_id;
  std::optional<StatusResponse> status;
  std::optional<ClientQueryResponse> response;
};

/// Pulls `node`'s observability snapshot (kStatsRequest) and writes it to
/// `path`. Returns 0 on success, 1 on timeout/error reply.
int fetch_stats_to_file(Client& client, const net::NodeId& node,
                        const std::string& path, int timeout_ms,
                        std::ostream& err) {
  client.response.reset();
  client.transport().send(client.node_id, node, msg::kStatsRequest,
                        StatsRequest{2}.serialize());
  const std::uint64_t deadline =
      client.transport().now() + static_cast<std::uint64_t>(timeout_ms);
  while (!client.response.has_value() && client.transport().now() < deadline) {
    client.transport().poll(/*timeout_ms=*/50);
  }
  if (!client.response.has_value() || !client.response->ok) {
    err << "error: no stats response from " << node << " within "
        << timeout_ms << " ms\n";
    return 1;
  }
  write_file(path, bytes_of(client.response->report_json));
  return 0;
}

int query_impl(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string plan_path = flags.require("plan");
  const int timeout_ms = flags.get_int("timeout-ms", 30000);
  const std::string stats_path = flags.get("stats-json", "");
  const std::string fault_path = flags.get("fault-plan", "");
  const Plan plan = load_plan(plan_path);

  if (flags.has("wait-ready")) {
    const int deadline_ms = flags.get_int("wait-ready", timeout_ms);
    flags.reject_unknown();
    Client client(plan, fault_path);
    const std::uint64_t deadline =
        client.transport().now() + static_cast<std::uint64_t>(deadline_ms);
    std::uint64_t next_probe = 0;
    while (client.transport().now() < deadline) {
      if (client.transport().now() >= next_probe) {
        // Re-probe on a cadence: early probes are dropped while the proxy
        // is still coming up (no addr file / no listener yet).
        client.transport().send(client.node_id, plan.proxy_id,
                              msg::kStatusRequest,
                              StatusRequest{plan.task_id}.serialize());
        next_probe = client.transport().now() + 200;
      }
      client.transport().poll(/*timeout_ms=*/50);
      if (client.status.has_value() && client.status->ready) {
        out << "ready: task " << plan.task_id << "\n";
        return 0;
      }
      if (client.status.has_value()) client.status.reset();  // not yet: re-ask
    }
    err << "error: task " << plan.task_id << " not ready after "
        << deadline_ms << " ms\n";
    return 1;
  }

  if (flags.has("shutdown")) {
    const std::string scope = flags.get("shutdown", "all");
    flags.reject_unknown();
    if (scope != "all") throw UsageError("--shutdown only supports 'all'");
    Client client(plan, fault_path);
    client.transport().send(client.node_id, plan.proxy_id, msg::kAdminShutdown,
                          {});
    for (const auto& id : plan.involved) {
      client.transport().send(client.node_id, id, msg::kAdminShutdown, {});
    }
    client.socket.flush(/*timeout_ms=*/2000);
    out << "shutdown sent to proxy and " << plan.involved.size()
        << " participants\n";
    return 0;
  }

  const bool want_report = flags.has("report");
  if (!want_report && !flags.has("product")) {
    throw UsageError(
        "query needs --wait-ready, --product, --report or --shutdown");
  }

  Client client(plan, fault_path);
  if (want_report) {
    const std::string report_dest = flags.get("report", "-");
    flags.reject_unknown();
    client.transport().send(client.node_id, plan.proxy_id,
                          msg::kClientReportRequest,
                          ClientReportRequest{1}.serialize());
    const std::uint64_t deadline =
        client.transport().now() + static_cast<std::uint64_t>(timeout_ms);
    while (!client.response.has_value() &&
           client.transport().now() < deadline) {
      client.transport().poll(/*timeout_ms=*/50);
    }
    if (!client.response.has_value()) {
      err << "error: no report response within " << timeout_ms << " ms\n";
      return 1;
    }
    if (report_dest == "-") {
      out << client.response->report_json << "\n";
    } else {
      write_file(report_dest, bytes_of(client.response->report_json));
      out << "report -> " << report_dest << "\n";
    }
    const bool ok = client.response->ok;
    if (!stats_path.empty() &&
        fetch_stats_to_file(client, plan.proxy_id, stats_path, timeout_ms,
                            err) != 0) {
      return 1;
    }
    return ok ? 0 : 1;
  }

  ClientQueryRequest request;
  request.client_ref = 1;
  request.product = parse_product(flags.require("product"));
  const std::string quality = flags.get("quality", "good");
  if (quality == "good") {
    request.quality = ProductQuality::kGood;
  } else if (quality == "bad") {
    request.quality = ProductQuality::kBad;
  } else {
    throw UsageError("--quality must be good or bad");
  }
  if (flags.has("task")) request.task_hint = flags.require("task");
  // How long this client waits for the verdict. The proxy enforces its own
  // budget (serve-proxy --query-deadline) and always answers; this bound
  // only catches a dead/unreachable proxy.
  const int query_deadline = flags.get_int("query-deadline", timeout_ms);
  if (query_deadline < 0) throw UsageError("--query-deadline must be >= 0");
  flags.reject_unknown();

  client.transport().send(client.node_id, plan.proxy_id,
                        msg::kClientQueryRequest, request.serialize());
  const std::uint64_t deadline =
      client.transport().now() + static_cast<std::uint64_t>(query_deadline);
  while (!client.response.has_value() && client.transport().now() < deadline) {
    client.transport().poll(/*timeout_ms=*/50);
  }
  if (!client.response.has_value()) {
    err << "error: no query response within " << query_deadline << " ms\n";
    return 1;
  }
  const ClientQueryResponse resp = *client.response;
  if (!resp.ok) {
    err << "error: " << resp.error << "\n";
    return 1;
  }
  out << resp.report_json << "\n";
  if (!stats_path.empty() &&
      fetch_stats_to_file(client, plan.proxy_id, stats_path, timeout_ms,
                          err) != 0) {
    return 1;
  }
  const json::Value outcome = json::parse(resp.report_json);
  return outcome.at("complete").as_bool() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// stats (client)
// ---------------------------------------------------------------------------

int stats_impl(const Flags& flags, std::ostream& out, std::ostream& err) {
  const std::string plan_path = flags.require("plan");
  const int timeout_ms = flags.get_int("timeout-ms", 30000);
  const std::string node = flags.get("node", "");  // default: the proxy
  const std::string dest = flags.get("out", "-");
  const std::string fault_path = flags.get("fault-plan", "");
  flags.reject_unknown();
  const Plan plan = load_plan(plan_path);

  Client client(plan, fault_path);
  const net::NodeId target = node.empty() ? plan.proxy_id : node;
  client.transport().send(client.node_id, target, msg::kStatsRequest,
                        StatsRequest{1}.serialize());
  const std::uint64_t deadline =
      client.transport().now() + static_cast<std::uint64_t>(timeout_ms);
  while (!client.response.has_value() && client.transport().now() < deadline) {
    client.transport().poll(/*timeout_ms=*/50);
  }
  if (!client.response.has_value()) {
    err << "error: no stats response from " << target << " within "
        << timeout_ms << " ms\n";
    return 1;
  }
  if (dest == "-") {
    out << client.response->report_json << "\n";
  } else {
    write_file(dest, bytes_of(client.response->report_json));
    out << "stats -> " << dest << "\n";
  }
  return client.response->ok ? 0 : 1;
}

}  // namespace

int cmd_plan(const Flags& flags, std::ostream& out) {
  return plan_impl(flags, out);
}

int cmd_serve_proxy(const Flags& flags, std::ostream& out) {
  return serve_proxy_impl(flags, out);
}

int cmd_serve_participant(const Flags& flags, std::ostream& out) {
  return serve_participant_impl(flags, out);
}

int cmd_query(const Flags& flags, std::ostream& out, std::ostream& err) {
  return query_impl(flags, out, err);
}

int cmd_stats(const Flags& flags, std::ostream& out, std::ostream& err) {
  return stats_impl(flags, out, err);
}

}  // namespace desword::cli
