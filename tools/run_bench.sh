#!/usr/bin/env bash
# Runs the core benchmark trio (bench_qtmc_micro, bench_zkedb,
# bench_poc_comp), collects their machine-readable '{"bench"...}' result
# lines, and assembles a consolidated BENCH_zkedb.json at the repo root.
#
# The consolidated file records every result line plus two summaries:
#
#   * "verify_throughput" pairs the ZkEdb/VerifyManyScalar and
#     ZkEdb/VerifyManyBatched cases (same proof pile, same thread count)
#     into per-configuration speedups — the acceptance metric for the
#     batch verification engine;
#   * "query_throughput" pairs Macro/QueryThroughputSerial with every
#     Macro/QueryThroughputConcurrent configuration (workers x sessions
#     in flight) on queries_per_sec — the acceptance metric for the
#     executor/scheduler concurrency layer;
#   * "fault_resilience" pairs every lossy Macro/FaultedQuery case with
#     its loss=0 baseline: latency overhead, retransmits per query and
#     success rate under injected frame loss — the acceptance metric for
#     the fault injection / adaptive recovery layer;
#   * "repeat_query" pairs Macro/RepeatQueryCold (verification cache off)
#     with Macro/RepeatQueryWarm (cache on, warmed) on queries_per_sec
#     and carries the warm hit_rate — the acceptance metric for the
#     epoch-versioned verification cache.
#
# Usage: tools/run_bench.sh [--build-dir DIR] [--out FILE] [--check]
#   --build-dir DIR  where the bench binaries live (default: build)
#   --out FILE       consolidated JSON path (default: BENCH_zkedb.json)
#   --check          exit non-zero if any batched configuration is slower
#                    than its scalar counterpart, or if the warm repeat-
#                    query cache hit rate drops below 0.8 (CI perf smoke)
#
# Env: DESWORD_BENCH_QUICK / DESWORD_BENCH_RSA_BITS shrink the run
# (see bench/bench_util.h).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build"
OUT="$ROOT/BENCH_zkedb.json"
CHECK=0

while [ $# -gt 0 ]; do
  case "$1" in
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --check) CHECK=1; shift ;;
    *) echo "run_bench.sh: unknown argument: $1" >&2; exit 2 ;;
  esac
done

BENCHES=(bench_qtmc_micro bench_zkedb bench_poc_comp bench_macro)
LINES="$(mktemp)"
trap 'rm -f "$LINES"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "run_bench.sh: $bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  echo "== $bench ==" >&2
  # --benchmark_color=false keeps ANSI escapes out of the result lines;
  # grep -o still strips any console-reporter prefix on the same line.
  "$bin" --benchmark_color=false | tee /dev/stderr |
      grep -o '{"bench".*}' >> "$LINES" || {
    echo "run_bench.sh: $bench emitted no result lines" >&2
    exit 1
  }
done

python3 - "$LINES" "$OUT" "$CHECK" <<'PY'
import json
import os
import sys

lines_path, out_path, check = sys.argv[1], sys.argv[2], sys.argv[3] == "1"
cpu_count = os.cpu_count() or 1
results = []
with open(lines_path, encoding="utf-8") as fh:
    for line in fh:
        line = line.strip()
        if line:
            results.append(json.loads(line))

# Pair ZkEdb/VerifyManyScalar/<batch>/<threads> with the matching
# ...Batched case on proofs_per_sec.
scalar, batched = {}, {}
for r in results:
    case = r.get("case", "")
    pps = r.get("counters", {}).get("proofs_per_sec")
    if pps is None:
        continue
    if case.startswith("ZkEdb/VerifyManyScalar/"):
        scalar[case.split("VerifyManyScalar/", 1)[1]] = pps
    elif case.startswith("ZkEdb/VerifyManyBatched/"):
        batched[case.split("VerifyManyBatched/", 1)[1]] = pps

configs = []
for cfg in sorted(scalar.keys() & batched.keys()):
    configs.append({
        "config": cfg,  # "<batch>/<threads>"
        "scalar_proofs_per_sec": scalar[cfg],
        "batched_proofs_per_sec": batched[cfg],
        "speedup": batched[cfg] / scalar[cfg] if scalar[cfg] else None,
    })

# Pair Macro/QueryThroughputSerial with every ...Concurrent/<workers>/
# <in_flight> configuration on queries_per_sec.
serial_qps = None
concurrent_qps = {}
for r in results:
    case = r.get("case", "")
    qps = r.get("counters", {}).get("queries_per_sec")
    if qps is None:
        continue
    if case.startswith("Macro/QueryThroughputSerial"):
        serial_qps = qps
    elif case.startswith("Macro/QueryThroughputConcurrent/"):
        concurrent_qps[case.split("QueryThroughputConcurrent/", 1)[1]] = qps

query_configs = []
if serial_qps:
    for cfg in sorted(concurrent_qps):
        query_configs.append({
            "config": cfg,  # "<workers>/<in_flight>"
            "serial_queries_per_sec": serial_qps,
            "concurrent_queries_per_sec": concurrent_qps[cfg],
            "speedup": concurrent_qps[cfg] / serial_qps,
        })

# Pair each lossy Macro/FaultedQuery/<loss_permille> case with the
# loss=0 baseline on latency; carry the recovery counters through.
faulted = {}
for r in results:
    case = r.get("case", "")
    if case.startswith("Macro/FaultedQuery/"):
        arg = case.split("FaultedQuery/", 1)[1].split("/", 1)[0]
        faulted[int(arg)] = r

fault_configs = []
baseline = faulted.get(0)
if baseline:
    base_ns = baseline.get("ns_per_op") or 0
    for loss in sorted(faulted):
        if loss == 0:
            continue
        r = faulted[loss]
        counters = r.get("counters", {})
        ns = r.get("ns_per_op") or 0
        fault_configs.append({
            "loss_pct": counters.get("loss_pct", loss / 10.0),
            "baseline_ms_per_query": base_ns / 1e6,
            "faulted_ms_per_query": ns / 1e6,
            "latency_overhead": ns / base_ns if base_ns else None,
            "retransmits_per_query": counters.get("retransmits_per_query"),
            "success_rate": counters.get("success_rate"),
        })

# Pair Macro/RepeatQueryCold (cache off) with Macro/RepeatQueryWarm
# (cache on, warmed) on queries_per_sec; carry the warm hit rate.
cold_repeat, warm_repeat = None, None
for r in results:
    case = r.get("case", "")
    if case.startswith("Macro/RepeatQueryCold"):
        cold_repeat = r
    elif case.startswith("Macro/RepeatQueryWarm"):
        warm_repeat = r

repeat_query = None
if cold_repeat and warm_repeat:
    cold_qps = cold_repeat.get("counters", {}).get("queries_per_sec") or 0
    warm_qps = warm_repeat.get("counters", {}).get("queries_per_sec") or 0
    repeat_query = {
        "cold_queries_per_sec": cold_qps,
        "warm_queries_per_sec": warm_qps,
        "speedup": warm_qps / cold_qps if cold_qps else None,
        "warm_hit_rate": warm_repeat.get("counters", {}).get("hit_rate"),
    }

summary = {
    "generated_by": "tools/run_bench.sh",
    "cpu_count": cpu_count,
    "benches": sorted({r.get("bench", "?") for r in results}),
    "verify_throughput": configs,
    "query_throughput": query_configs,
    "fault_resilience": fault_configs,
    "repeat_query": repeat_query,
    "results": results,
}
with open(out_path, "w", encoding="utf-8") as fh:
    json.dump(summary, fh, indent=1, sort_keys=False)
    fh.write("\n")

print(f"run_bench.sh: wrote {out_path} ({len(results)} result lines)")
for c in configs:
    print("  verify_many {config}: scalar {scalar_proofs_per_sec:.2f}/s "
          "batched {batched_proofs_per_sec:.2f}/s speedup {speedup:.2f}x"
          .format(**c))
for c in query_configs:
    print("  query_throughput {config}: serial "
          "{serial_queries_per_sec:.2f}/s concurrent "
          "{concurrent_queries_per_sec:.2f}/s speedup {speedup:.2f}x"
          .format(**c))
for c in fault_configs:
    print("  fault_resilience {loss_pct:.0f}% loss: "
          "{baseline_ms_per_query:.2f}ms -> {faulted_ms_per_query:.2f}ms "
          "({latency_overhead:.2f}x), {retransmits_per_query:.1f} "
          "retransmits/query, success {success_rate:.2f}".format(**c))
if repeat_query:
    print("  repeat_query: cold {cold_queries_per_sec:.2f}/s warm "
          "{warm_queries_per_sec:.2f}/s speedup {speedup:.2f}x "
          "hit_rate {warm_hit_rate:.2f}".format(**repeat_query))

if check:
    if not configs:
        print("run_bench.sh: --check but no VerifyMany pairs found",
              file=sys.stderr)
        sys.exit(1)
    slow = [c for c in configs if c["speedup"] is None or c["speedup"] < 1.0]
    if slow:
        for c in slow:
            print(f"run_bench.sh: batched slower than scalar for "
                  f"{c['config']} (speedup {c['speedup']})", file=sys.stderr)
        sys.exit(1)
    # Worker threads can only win wall-clock when they have real cores to
    # run on; on a starved box the inline path is strictly cheaper, so only
    # enforce the speedup for configurations the machine can parallelize.
    eligible = [c for c in query_configs
                if int(c["config"].split("/")[0]) < cpu_count]
    skipped = [c for c in query_configs if c not in eligible]
    for c in skipped:
        print(f"run_bench.sh: note: query_throughput {c['config']} not "
              f"enforced ({cpu_count} CPU(s) cannot host the workers)",
              file=sys.stderr)
    slow_q = [c for c in eligible if c["speedup"] < 1.0]
    if slow_q:
        for c in slow_q:
            print(f"run_bench.sh: concurrent queries slower than serial for "
                  f"{c['config']} (speedup {c['speedup']:.2f})",
                  file=sys.stderr)
        sys.exit(1)
    # Recovery must actually recover: with retransmission backoff in play a
    # query only fails when every retry of some hop is dropped, so even at
    # 30% loss the vast majority of queries must still complete.
    fragile = [c for c in fault_configs
               if c["success_rate"] is None or c["success_rate"] < 0.9]
    if fragile:
        for c in fragile:
            print(f"run_bench.sh: faulted queries failing at "
                  f"{c['loss_pct']:.0f}% loss "
                  f"(success rate {c['success_rate']})", file=sys.stderr)
        sys.exit(1)
    # The warm repeat-query pass must actually run out of the cache. The
    # hit rate is machine-independent (unlike the warm/cold wall-clock
    # ratio, which collapses on a starved box), so it is the gated metric.
    if repeat_query is None:
        print("run_bench.sh: --check but no RepeatQuery pair found",
              file=sys.stderr)
        sys.exit(1)
    hit_rate = repeat_query["warm_hit_rate"]
    if hit_rate is None or hit_rate < 0.8:
        print(f"run_bench.sh: warm repeat-query hit rate too low "
              f"({hit_rate})", file=sys.stderr)
        sys.exit(1)
PY
