#!/usr/bin/env python3
"""Repo-specific invariant lint for the DE-Sword codebase.

Rules (each can be waived on a specific line with a trailing
``// desword-lint: allow(<rule>)`` marker):

  randomness    No ``std::rand``/``srand``/``rand()`` and no ``time(...)``
                seeding outside ``src/crypto/randsource*``. All randomness
                must flow through RandomSource (CSPRNG or seeded DRBG) so
                commitments stay unpredictable and tests stay reproducible.

  decode-cast   No ``memcpy`` or ``reinterpret_cast`` in decode-path files
                (everything that parses untrusted bytes). Decoders go
                through BinaryReader, which bounds-checks every read; raw
                pointer reinterpretation is how length-prefix bugs become
                memory corruption.

  switch-default
                ``switch`` statements over ``MessageType`` must not have a
                ``default:`` label. -Wswitch then forces every dispatch
                site to be revisited when a message type is added.

  secret-print  Lines that print/log must not mention trapdoor or secret
                key material (``trapdoor``, ``secret``, ``_sk``/``sk_``).
                The trapdoor breaks the binding of every commitment made
                under the CRS; it must never reach logs.

  modexp        No raw ``BN_mod_exp*`` calls and no per-call
                ``BN_MONT_CTX_new``/``BN_MONT_CTX_set`` construction outside
                ``src/crypto/modexp.*``. All modular exponentiation flows
                through ModExpContext so it shares one Montgomery context
                per modulus, hits the fixed-base tables, and is countable —
                a stray BN_mod_exp silently forfeits every one of those.

  handler-crypto
                Message handlers (``handle``/``dispatch``/``on_*`` methods
                of ``Proxy`` and ``Participant``) run on the protocol loop
                thread and must never invoke modular-exponentiation-heavy
                scheme calls (``scheme().verify/prove/aggregate``,
                ``qHOpen``-family, ``make_ownership_proof``,
                ``check_ownership``) inline. Blocking crypto belongs in the
                builder/check methods dispatched through the Executor
                strands; a handler that proves or verifies directly stalls
                every session behind it.

  metric-name   Every ``metric("...")`` / ``gauge_metric("...")`` /
                ``histogram_metric("...")`` call site must use a name that
                (a) follows the ``layer.object.verb`` scheme
                (``^[a-z]+(\.[a-z_]+){1,3}$``) and (b) is registered in
                ``src/obs/instruments.h``. A typo'd name would otherwise
                throw at first use — or worse, silently record into a dead
                instrument nobody snapshots.

Run:  tools/desword_lint.py --root <repo root>
Exit status 0 = clean, 1 = violations (printed one per line).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

SOURCE_GLOBS = ("src/**/*.h", "src/**/*.cpp", "fuzz/**/*.h", "fuzz/**/*.cpp",
                "tools/**/*.cpp", "examples/**/*.cpp", "bench/**/*.cpp")

# Files allowed to talk to the system RNG / clock directly.
RANDOMNESS_EXEMPT = re.compile(r"src/crypto/randsource\.(h|cpp)$")

# The one home of raw OpenSSL modular exponentiation (rule modexp).
MODEXP_EXEMPT = re.compile(r"src/crypto/modexp\.(h|cpp)$")

# Decode paths: every file that parses attacker-supplied or persisted
# bytes. memcpy/reinterpret_cast are banned here (rule decode-cast).
DECODE_PATH_FILES = {
    "src/common/serial.cpp",
    "src/common/serial.h",
    "src/net/wire.cpp",
    "src/desword/messages.cpp",
    "src/zkedb/persist.cpp",
    "src/zkedb/proof.cpp",
    "src/zkedb/params.cpp",
    "src/mercurial/qtmc.cpp",
    "src/mercurial/tmc.cpp",
    "src/poc/poc.cpp",
    "src/poc/poc_list.cpp",
}

# Event-loop message handlers (rule handler-crypto): the files holding them
# and the method names that run on the protocol loop thread.
HANDLER_FILES = {
    "src/desword/proxy.cpp",
    "src/desword/participant.cpp",
}
RE_HANDLER_DEF = re.compile(
    r"\b(?:Proxy|Participant)::(on_\w+|handle|dispatch)\s*\(")
# Blocking crypto entry points that must not appear in a handler body.
RE_HANDLER_CRYPTO = re.compile(
    r"\bscheme\s*\(\s*\)\s*\.\s*(?:verify|prove|aggregate)\b|"
    r"\bscheme_?\s*(?:\.|->)\s*(?:verify|prove|aggregate)\s*\(|"
    r"(?:\.|->)\s*prove\s*\(|"
    r"\bqH(?:Com|Open|Ver|Update)\w*\s*\(|"
    r"\bmake_ownership_proof\s*\(|"
    r"\bcheck_(?:non_)?ownership\s*\(")

RE_ALLOW = re.compile(r"//\s*desword-lint:\s*allow\(([a-z-]+)\)")
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_RANDOMNESS = re.compile(
    r"std::rand\b|\bsrand\s*\(|[^_\w.:]rand\s*\(|\bstd::time\s*\(|"
    r"[^_\w.:]time\s*\(\s*(NULL|nullptr|0)\s*\)")
RE_DECODE_CAST = re.compile(r"\bmemcpy\s*\(|\breinterpret_cast\b")
RE_MODEXP = re.compile(r"\bBN_mod_exp\w*\s*\(|\bBN_MONT_CTX_(?:new|set)\s*\(")
RE_SWITCH = re.compile(r"\bswitch\s*\(")
RE_MESSAGE_TYPE = re.compile(r"\bMessageType\b|\bmessage_type_of\s*\(")
RE_PRINT = re.compile(
    r"std::cout|std::cerr|\bprintf\s*\(|\bfprintf\s*\(|\bsnprintf\s*\(|"
    r"\blog\w*\s*\(")
RE_SECRET = re.compile(r"\btrapdoor\b|\bsecret\w*\b|\b\w*_sk\b|\bsk_\w+\b",
                       re.IGNORECASE)
RE_METRIC_CALL = re.compile(
    r"\b(?:metric|gauge_metric|histogram_metric)\s*\(\s*\"([^\"]+)\"")
RE_METRIC_NAME = re.compile(r"^[a-z]+(\.[a-z_]+){1,3}$")
# The instrument registry: every "quoted.metric.name" literal in this file
# is a registered instrument (see the X-macro lists there).
INSTRUMENTS_FILE = "src/obs/instruments.h"
RE_INSTRUMENT_LITERAL = re.compile(r"\"([a-z][a-z_.]*)\"")


def strip_comment(line: str) -> str:
    """Removes a trailing // comment (crude: ignores // inside strings,
    which is fine for these token-level rules)."""
    return RE_LINE_COMMENT.sub("", line)


def allowed(line: str, rule: str) -> bool:
    m = RE_ALLOW.search(line)
    return bool(m) and m.group(1) == rule


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.violations: list[str] = []
        self.instruments = self.load_instruments()

    def load_instruments(self) -> set[str]:
        path = self.root / INSTRUMENTS_FILE
        if not path.is_file():
            return set()
        text = path.read_text(encoding="utf-8", errors="replace")
        return set(RE_INSTRUMENT_LITERAL.findall(text))

    def report(self, rel: str, lineno: int, rule: str, message: str) -> None:
        self.violations.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path: pathlib.Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        lines = text.splitlines()
        self.check_line_rules(rel, lines)
        self.check_switch_default(rel, text, lines)
        if rel in HANDLER_FILES:
            self.check_handler_crypto(rel, text, lines)

    def check_line_rules(self, rel: str, lines: list[str]) -> None:
        decode_path = rel in DECODE_PATH_FILES
        randomness_applies = not RANDOMNESS_EXEMPT.search(rel)
        modexp_applies = not MODEXP_EXEMPT.search(rel)
        for lineno, raw in enumerate(lines, start=1):
            code = strip_comment(raw)
            if randomness_applies and RE_RANDOMNESS.search(code):
                if not allowed(raw, "randomness"):
                    self.report(rel, lineno, "randomness",
                                "direct rand()/time() use; go through "
                                "crypto/randsource (RandomSource)")
            if modexp_applies and RE_MODEXP.search(code):
                if not allowed(raw, "modexp"):
                    self.report(rel, lineno, "modexp",
                                "raw BN_mod_exp / Montgomery-context "
                                "construction; go through crypto/modexp "
                                "(ModExpContext)")
            if decode_path and RE_DECODE_CAST.search(code):
                if not allowed(raw, "decode-cast"):
                    self.report(rel, lineno, "decode-cast",
                                "memcpy/reinterpret_cast in a decode path; "
                                "use BinaryReader primitives")
            if RE_PRINT.search(code) and RE_SECRET.search(code):
                if not allowed(raw, "secret-print"):
                    self.report(rel, lineno, "secret-print",
                                "print/log statement mentions trapdoor or "
                                "secret-key material")
            if rel != INSTRUMENTS_FILE:
                for m in RE_METRIC_CALL.finditer(code):
                    name = m.group(1)
                    if allowed(raw, "metric-name"):
                        continue
                    if not RE_METRIC_NAME.match(name):
                        self.report(rel, lineno, "metric-name",
                                    f'"{name}" does not follow the '
                                    "layer.object.verb naming scheme")
                    elif self.instruments and name not in self.instruments:
                        self.report(rel, lineno, "metric-name",
                                    f'"{name}" is not registered in '
                                    f"{INSTRUMENTS_FILE}")

    def check_handler_crypto(self, rel: str, text: str,
                             lines: list[str]) -> None:
        """Flags blocking crypto calls inside loop-thread handler bodies."""
        for match in RE_HANDLER_DEF.finditer(text):
            # Balance the parameter list's parens.
            paren_start = text.index("(", match.start())
            depth = 0
            i = paren_start
            while i < len(text):
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            # Definition body: the first '{' before any ';' (a ';' first
            # means this was a declaration or qualified call, not a body).
            body_start = text.find("{", i)
            semi = text.find(";", i)
            if body_start < 0 or (0 <= semi < body_start):
                continue
            depth = 0
            j = body_start
            while j < len(text):
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            first_line = text.count("\n", 0, body_start) + 1
            last_line = text.count("\n", 0, j) + 1
            handler = match.group(1)
            for lineno in range(first_line, last_line + 1):
                raw = lines[lineno - 1]
                if not RE_HANDLER_CRYPTO.search(strip_comment(raw)):
                    continue
                if allowed(raw, "handler-crypto"):
                    continue
                self.report(rel, lineno, "handler-crypto",
                            f"blocking crypto call inside handler "
                            f"{handler}(); move it to a builder/check "
                            "method dispatched via the Executor strand")

    def check_switch_default(self, rel: str, text: str,
                             lines: list[str]) -> None:
        """Flags `default:` inside switch statements over MessageType."""
        for match in RE_SWITCH.finditer(text):
            # The switch condition: everything up to the matching ')'.
            cond_start = text.index("(", match.start())
            depth = 0
            i = cond_start
            while i < len(text):
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            condition = text[cond_start:i + 1]
            if not RE_MESSAGE_TYPE.search(condition):
                continue
            # The switch body: balance braces from the first '{' after ')'.
            body_start = text.find("{", i)
            if body_start < 0:
                continue
            depth = 0
            j = body_start
            while j < len(text):
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            body = text[body_start:j + 1]
            offset = body.find("default:")
            if offset < 0:
                continue
            lineno = text.count("\n", 0, body_start + offset) + 1
            if not allowed(lines[lineno - 1], "switch-default"):
                self.report(rel, lineno, "switch-default",
                            "switch over MessageType must be exhaustive "
                            "(no default:)")

    def run(self) -> int:
        files = sorted(
            {p for g in SOURCE_GLOBS for p in self.root.glob(g)
             if p.is_file()})
        if not files:
            print("desword_lint: no source files found under "
                  f"{self.root}", file=sys.stderr)
            return 1
        for path in files:
            self.lint_file(path)
        for v in self.violations:
            print(v)
        if self.violations:
            print(f"desword_lint: {len(self.violations)} violation(s)",
                  file=sys.stderr)
            return 1
        print(f"desword_lint: {len(files)} files clean")
        return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path, default=pathlib.Path("."),
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
