#!/usr/bin/env python3
"""Repo-specific invariant lint for the DE-Sword codebase.

Rules (each can be waived on a specific line with a trailing
``// desword-lint: allow(<rule>)`` marker):

  randomness    No ``std::rand``/``srand``/``rand()`` and no ``time(...)``
                seeding outside ``src/crypto/randsource*``. All randomness
                must flow through RandomSource (CSPRNG or seeded DRBG) so
                commitments stay unpredictable and tests stay reproducible.

  decode-cast   No ``memcpy`` or ``reinterpret_cast`` in decode-path files
                (everything that parses untrusted bytes). Decoders go
                through BinaryReader, which bounds-checks every read; raw
                pointer reinterpretation is how length-prefix bugs become
                memory corruption.

  switch-default
                ``switch`` statements over ``MessageType`` must not have a
                ``default:`` label. -Wswitch then forces every dispatch
                site to be revisited when a message type is added.

  secret-print  Lines that print/log must not mention trapdoor or secret
                key material (``trapdoor``, ``secret``, ``_sk``/``sk_``).
                The trapdoor breaks the binding of every commitment made
                under the CRS; it must never reach logs.

  modexp        No raw ``BN_mod_exp*`` calls and no per-call
                ``BN_MONT_CTX_new``/``BN_MONT_CTX_set`` construction outside
                ``src/crypto/modexp.*``. All modular exponentiation flows
                through ModExpContext so it shares one Montgomery context
                per modulus, hits the fixed-base tables, and is countable —
                a stray BN_mod_exp silently forfeits every one of those.

  handler-crypto
                Message handlers (``handle``/``dispatch``/``on_*`` methods
                of ``Proxy`` and ``Participant``) run on the protocol loop
                thread and must never invoke modular-exponentiation-heavy
                scheme calls (``scheme().verify/prove/aggregate``,
                ``qHOpen``-family, ``make_ownership_proof``,
                ``check_ownership``) inline. Blocking crypto belongs in the
                builder/check methods dispatched through the Executor
                strands; a handler that proves or verifies directly stalls
                every session behind it.

  metric-name   Every ``metric("...")`` / ``gauge_metric("...")`` /
                ``histogram_metric("...")`` call site must use a name that
                (a) follows the ``layer.object.verb`` scheme
                (``^[a-z]+(\.[a-z_]+){1,3}$``) and (b) is registered in
                ``src/obs/instruments.h``. A typo'd name would otherwise
                throw at first use — or worse, silently record into a dead
                instrument nobody snapshots.

  raw-mutex     No raw ``std::mutex``/``std::lock_guard``/
                ``std::unique_lock``/``std::condition_variable``/... (and
                no ``#include`` of their headers) outside
                ``src/common/annotations.h`` and ``src/common/mutex.h``.
                All locking goes through the annotated ``Mutex``/
                ``MutexLock``/``CondVar`` wrappers so Clang's thread-safety
                analysis (``-Wthread-safety``, DESWORD_THREAD_SAFETY=ON)
                sees every acquisition — a raw std::mutex is a lock the
                analysis silently cannot check.

  loop-affinity Inside ``Proxy``/``Participant`` strand/executor ``post``
                lambdas (worker context), loop-owned state must not be
                touched: ``transport_.send/set_timer/cancel_timer``,
                ``sessions_``, ``in_flight_``, ``reply_cache_*``,
                ``scheduler_``, ``finish_in_flight``, ``resume_verify``.
                Results must travel back to the loop thread through a
                nested ``transport_.post(...)`` (those nested spans are
                exempt — they run on the loop). The runtime counterpart is
                DESWORD_DCHECK_ON_LOOP; this rule catches the bug at
                review time, in builds where DCHECKs are compiled out.

  timer-pairing Every ``x = ...set_timer(...)`` call site must be paired
                with a ``cancel_timer(...)`` in the same file that names
                ``x``'s variable (its last identifier component), and a
                ``set_timer`` whose TimerId is discarded is flagged as
                unowned. A timer whose id nobody keeps — or keeps but
                never cancels on teardown — fires into a destroyed
                endpoint: exactly the use-after-free class the
                FaultInjector's delay timers and the proxy's
                retransmission timers guard against in their destructors.
                ``return ...set_timer(...)`` forwards ownership to the
                caller and is exempt.

  cache-key     Every verification-cache key construction — a
                ``proof_key(...)`` / ``hop_key(...)`` call — must pass the
                full proof bytes (an argument naming ``proof``). The cache
                maps keys to *accepted* verdicts; a key that omits the
                proof bytes would let a tampered proof alias a cached
                acceptance and ride straight past the verifier
                (src/zkedb/verify_cache.h, DESIGN.md §12).

Run:  tools/desword_lint.py [--root <repo root>]
The root defaults to the repository containing this script, so the linter
works from any working directory (CI checkouts, editor integrations).
Exit status 0 = clean, 1 = violations (printed one per line). Under
GitHub Actions (``GITHUB_ACTIONS`` set) each violation is additionally
emitted as a ``::error file=...,line=...::`` workflow annotation so it
shows up inline on the PR diff.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import sys

SOURCE_GLOBS = ("src/**/*.h", "src/**/*.cpp", "fuzz/**/*.h", "fuzz/**/*.cpp",
                "tools/**/*.cpp", "examples/**/*.cpp", "bench/**/*.cpp")

# Files allowed to talk to the system RNG / clock directly.
RANDOMNESS_EXEMPT = re.compile(r"src/crypto/randsource\.(h|cpp)$")

# The one home of raw OpenSSL modular exponentiation (rule modexp).
MODEXP_EXEMPT = re.compile(r"src/crypto/modexp\.(h|cpp)$")

# The annotated wrapper layer itself (rule raw-mutex): the only files
# allowed to name std synchronization primitives.
RAW_MUTEX_EXEMPT = re.compile(r"src/common/(annotations|mutex)\.h$")

# Fixture mini-trees for the lint self-test contain deliberate violations;
# they are linted by tools/desword_lint_selftest.py, never by run().
FIXTURE_DIR_PART = "lint_fixtures"

# Decode paths: every file that parses attacker-supplied or persisted
# bytes. memcpy/reinterpret_cast are banned here (rule decode-cast).
DECODE_PATH_FILES = {
    "src/common/serial.cpp",
    "src/common/serial.h",
    "src/net/wire.cpp",
    "src/desword/messages.cpp",
    "src/zkedb/persist.cpp",
    "src/zkedb/proof.cpp",
    "src/zkedb/params.cpp",
    "src/mercurial/qtmc.cpp",
    "src/mercurial/tmc.cpp",
    "src/poc/poc.cpp",
    "src/poc/poc_list.cpp",
}

# Event-loop message handlers (rule handler-crypto): the files holding them
# and the method names that run on the protocol loop thread.
HANDLER_FILES = {
    "src/desword/proxy.cpp",
    "src/desword/participant.cpp",
}
RE_HANDLER_DEF = re.compile(
    r"\b(?:Proxy|Participant)::(on_\w+|handle|dispatch)\s*\(")
# Blocking crypto entry points that must not appear in a handler body.
RE_HANDLER_CRYPTO = re.compile(
    r"\bscheme\s*\(\s*\)\s*\.\s*(?:verify|prove|aggregate)\b|"
    r"\bscheme_?\s*(?:\.|->)\s*(?:verify|prove|aggregate)\s*\(|"
    r"(?:\.|->)\s*prove\s*\(|"
    r"\bqH(?:Com|Open|Ver|Update)\w*\s*\(|"
    r"\bmake_ownership_proof\s*\(|"
    r"\bcheck_(?:non_)?ownership\s*\(")

RE_ALLOW = re.compile(r"//\s*desword-lint:\s*allow\(([a-z-]+)\)")
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_RANDOMNESS = re.compile(
    r"std::rand\b|\bsrand\s*\(|[^_\w.:]rand\s*\(|\bstd::time\s*\(|"
    r"[^_\w.:]time\s*\(\s*(NULL|nullptr|0)\s*\)")
RE_DECODE_CAST = re.compile(r"\bmemcpy\s*\(|\breinterpret_cast\b")
RE_MODEXP = re.compile(r"\bBN_mod_exp\w*\s*\(|\bBN_MONT_CTX_(?:new|set)\s*\(")
RE_SWITCH = re.compile(r"\bswitch\s*\(")
RE_MESSAGE_TYPE = re.compile(r"\bMessageType\b|\bmessage_type_of\s*\(")
RE_PRINT = re.compile(
    r"std::cout|std::cerr|\bprintf\s*\(|\bfprintf\s*\(|\bsnprintf\s*\(|"
    r"\blog\w*\s*\(")
RE_SECRET = re.compile(r"\btrapdoor\b|\bsecret\w*\b|\b\w*_sk\b|\bsk_\w+\b",
                       re.IGNORECASE)
RE_METRIC_CALL = re.compile(
    r"\b(?:metric|gauge_metric|histogram_metric)\s*\(\s*\"([^\"]+)\"")
RE_METRIC_NAME = re.compile(r"^[a-z]+(\.[a-z_]+){1,3}$")
# The instrument registry: every "quoted.metric.name" literal in this file
# is a registered instrument (see the X-macro lists there).
INSTRUMENTS_FILE = "src/obs/instruments.h"
RE_INSTRUMENT_LITERAL = re.compile(r"\"([a-z][a-z_.]*)\"")

# Raw std synchronization primitives (rule raw-mutex). Includes the header
# names too: a stray `#include <mutex>` is the tell that someone is about
# to bypass the annotated wrappers. <atomic> stays allowed everywhere.
RE_RAW_MUTEX = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable|condition_variable_any)\b|"
    r"#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>")

# Timer call sites (rule timer-pairing). Member-access only: `x.set_timer`
# / `x->set_timer` are calls, `Foo::set_timer(` is a definition.
RE_SET_TIMER_CALL = re.compile(r"(?:\.|->)\s*set_timer\s*\(")
RE_SET_TIMER_ASSIGN = re.compile(
    r"([A-Za-z_][\w.\[\]]*(?:->[\w.\[\]]+)*)\s*=\s*[^=;]*\bset_timer\s*\(")
RE_SET_TIMER_RETURN = re.compile(r"\breturn\b[^;]*\bset_timer\s*\(")
RE_CANCEL_TIMER_ARGS = re.compile(r"\bcancel_timer\s*\(([^()]*)\)")

# Verification-cache key constructions (rule cache-key). Call sites AND
# the static definitions match; both must name the proof bytes.
RE_CACHE_KEY = re.compile(r"\b(?:proof_key|hop_key)\s*\(")
RE_CACHE_KEY_PROOF_ARG = re.compile(r"proof")

# Worker-context dispatch points (rule loop-affinity): posting to a strand
# or directly to the executor moves the lambda off the loop thread.
RE_WORKER_POST = re.compile(
    r"(?:\bstrand\w*|\w+\.strand|\bexecutor_)\s*(?:->|\.)\s*post\s*\(")
# Nested hand-back to the loop thread: spans under transport post are the
# one sanctioned place worker code names loop-owned state again.
RE_LOOP_POST = re.compile(r"\btransport_?\s*(?:\.|->)\s*post\s*\(")
# Loop-owned state: anything here appearing in worker context (outside a
# nested transport post) is a data race against the loop thread.
RE_LOOP_OWNED = re.compile(
    r"\btransport_?\s*(?:\.|->)\s*(?:send|set_timer|cancel_timer)\s*\(|"
    r"\bsessions_\b|\bin_flight_\b|\breply_cache_\w*|\bscheduler_\b|"
    r"\bfinish_in_flight\s*\(|\bresume_verify\b")


def balance_parens(text: str, open_idx: int,
                   open_ch: str = "(", close_ch: str = ")") -> int:
    """Returns the index of the delimiter matching ``text[open_idx]``
    (which must be ``open_ch``), or ``len(text)-1`` if unbalanced."""
    depth = 0
    i = open_idx
    while i < len(text):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(text) - 1


def strip_comment(line: str) -> str:
    """Removes a trailing // comment (crude: ignores // inside strings,
    which is fine for these token-level rules)."""
    return RE_LINE_COMMENT.sub("", line)


def allowed(line: str, rule: str) -> bool:
    m = RE_ALLOW.search(line)
    return bool(m) and m.group(1) == rule


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        # (relative path, line, rule, message) — structured so the
        # self-test can compare (rule, path, line) sets exactly.
        self.violations: list[tuple[str, int, str, str]] = []
        self.instruments = self.load_instruments()

    def load_instruments(self) -> set[str]:
        path = self.root / INSTRUMENTS_FILE
        if not path.is_file():
            return set()
        text = path.read_text(encoding="utf-8", errors="replace")
        return set(RE_INSTRUMENT_LITERAL.findall(text))

    def report(self, rel: str, lineno: int, rule: str, message: str) -> None:
        self.violations.append((rel, lineno, rule, message))

    def lint_file(self, path: pathlib.Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        lines = text.splitlines()
        self.check_line_rules(rel, lines)
        self.check_switch_default(rel, text, lines)
        self.check_timer_pairing(rel, text, lines)
        self.check_cache_key(rel, text, lines)
        if rel in HANDLER_FILES:
            self.check_handler_crypto(rel, text, lines)
            self.check_loop_affinity(rel, text, lines)

    def check_line_rules(self, rel: str, lines: list[str]) -> None:
        decode_path = rel in DECODE_PATH_FILES
        randomness_applies = not RANDOMNESS_EXEMPT.search(rel)
        modexp_applies = not MODEXP_EXEMPT.search(rel)
        raw_mutex_applies = not RAW_MUTEX_EXEMPT.search(rel)
        for lineno, raw in enumerate(lines, start=1):
            code = strip_comment(raw)
            if randomness_applies and RE_RANDOMNESS.search(code):
                if not allowed(raw, "randomness"):
                    self.report(rel, lineno, "randomness",
                                "direct rand()/time() use; go through "
                                "crypto/randsource (RandomSource)")
            if raw_mutex_applies and RE_RAW_MUTEX.search(code):
                if not allowed(raw, "raw-mutex"):
                    self.report(rel, lineno, "raw-mutex",
                                "raw std synchronization primitive; use "
                                "the annotated Mutex/MutexLock/CondVar "
                                "wrappers from common/mutex.h so "
                                "-Wthread-safety sees the acquisition")
            if modexp_applies and RE_MODEXP.search(code):
                if not allowed(raw, "modexp"):
                    self.report(rel, lineno, "modexp",
                                "raw BN_mod_exp / Montgomery-context "
                                "construction; go through crypto/modexp "
                                "(ModExpContext)")
            if decode_path and RE_DECODE_CAST.search(code):
                if not allowed(raw, "decode-cast"):
                    self.report(rel, lineno, "decode-cast",
                                "memcpy/reinterpret_cast in a decode path; "
                                "use BinaryReader primitives")
            if RE_PRINT.search(code) and RE_SECRET.search(code):
                if not allowed(raw, "secret-print"):
                    self.report(rel, lineno, "secret-print",
                                "print/log statement mentions trapdoor or "
                                "secret-key material")
            if rel != INSTRUMENTS_FILE:
                for m in RE_METRIC_CALL.finditer(code):
                    name = m.group(1)
                    if allowed(raw, "metric-name"):
                        continue
                    if not RE_METRIC_NAME.match(name):
                        self.report(rel, lineno, "metric-name",
                                    f'"{name}" does not follow the '
                                    "layer.object.verb naming scheme")
                    elif self.instruments and name not in self.instruments:
                        self.report(rel, lineno, "metric-name",
                                    f'"{name}" is not registered in '
                                    f"{INSTRUMENTS_FILE}")

    def check_handler_crypto(self, rel: str, text: str,
                             lines: list[str]) -> None:
        """Flags blocking crypto calls inside loop-thread handler bodies."""
        for match in RE_HANDLER_DEF.finditer(text):
            # Balance the parameter list's parens.
            paren_start = text.index("(", match.start())
            i = balance_parens(text, paren_start)
            # Definition body: the first '{' before any ';' (a ';' first
            # means this was a declaration or qualified call, not a body).
            body_start = text.find("{", i)
            semi = text.find(";", i)
            if body_start < 0 or (0 <= semi < body_start):
                continue
            j = balance_parens(text, body_start, "{", "}")
            first_line = text.count("\n", 0, body_start) + 1
            last_line = text.count("\n", 0, j) + 1
            handler = match.group(1)
            for lineno in range(first_line, last_line + 1):
                raw = lines[lineno - 1]
                if not RE_HANDLER_CRYPTO.search(strip_comment(raw)):
                    continue
                if allowed(raw, "handler-crypto"):
                    continue
                self.report(rel, lineno, "handler-crypto",
                            f"blocking crypto call inside handler "
                            f"{handler}(); move it to a builder/check "
                            "method dispatched via the Executor strand")

    def check_loop_affinity(self, rel: str, text: str,
                            lines: list[str]) -> None:
        """Flags loop-owned state named inside strand/executor post lambdas
        (worker context), outside nested transport_.post hand-backs."""
        for match in RE_WORKER_POST.finditer(text):
            open_idx = text.index("(", match.end() - 1)
            close_idx = balance_parens(text, open_idx)
            span = text[open_idx:close_idx + 1]
            # Mask nested transport posts: those lambdas run back on the
            # loop thread, where loop-owned state is fair game. Spaces
            # (not deletion) keep line numbers stable.
            masked = list(span)
            for nested in RE_LOOP_POST.finditer(span):
                n_open = span.index("(", nested.end() - 1)
                n_close = balance_parens(span, n_open)
                for k in range(nested.start(), n_close + 1):
                    if masked[k] != "\n":
                        masked[k] = " "
            span = "".join(masked)
            base_line = text.count("\n", 0, open_idx) + 1
            for off, span_line in enumerate(span.split("\n")):
                if not RE_LOOP_OWNED.search(strip_comment(span_line)):
                    continue
                lineno = base_line + off
                if allowed(lines[lineno - 1], "loop-affinity"):
                    continue
                self.report(rel, lineno, "loop-affinity",
                            "loop-owned state touched in worker context "
                            "(strand/executor post lambda); hand the "
                            "result back via transport_.post(...)")

    def check_timer_pairing(self, rel: str, text: str,
                            lines: list[str]) -> None:
        """Flags set_timer call sites whose TimerId is discarded, or stored
        in a variable the file never passes to cancel_timer."""
        # Every identifier that appears inside a cancel_timer(...) argument
        # list anywhere in the file counts as "cancelled here".
        cancelled: set[str] = set()
        for m in RE_CANCEL_TIMER_ARGS.finditer(text):
            cancelled |= set(re.findall(r"\w+", m.group(1)))
        for lineno, raw in enumerate(lines, start=1):
            code = strip_comment(raw)
            if not RE_SET_TIMER_CALL.search(code):
                continue
            if allowed(raw, "timer-pairing"):
                continue
            if RE_SET_TIMER_RETURN.search(code):
                continue  # forwarding wrapper: the caller owns the id
            assign = RE_SET_TIMER_ASSIGN.search(code)
            if assign is None and lineno > 1:
                # `lhs =` broken onto the previous line by the formatter.
                prev = strip_comment(lines[lineno - 2]).rstrip()
                if prev.endswith("="):
                    assign = RE_SET_TIMER_ASSIGN.search(prev + " " + code)
                elif prev.endswith("return"):
                    continue
            if assign is None:
                self.report(rel, lineno, "timer-pairing",
                            "set_timer return value discarded; keep the "
                            "TimerId so teardown can cancel_timer it — an "
                            "unowned timer fires into a destroyed endpoint")
                continue
            tail = re.findall(r"\w+", assign.group(1))[-1]
            if tail not in cancelled:
                self.report(rel, lineno, "timer-pairing",
                            f"timer id stored in '{assign.group(1)}' but "
                            f"this file never passes '{tail}' to "
                            "cancel_timer; pair every armed timer with a "
                            "teardown cancellation")

    def check_cache_key(self, rel: str, text: str,
                        lines: list[str]) -> None:
        """Flags proof_key/hop_key constructions (call sites and
        definitions alike) whose balanced argument span never names the
        proof bytes. Key components other than the proof are contextual;
        the proof bytes are the one ingredient whose omission turns the
        cache into a verifier bypass."""
        for match in RE_CACHE_KEY.finditer(text):
            line_start = text.rfind("\n", 0, match.start()) + 1
            if "//" in text[line_start:match.start()]:
                continue  # prose mention inside a comment, not a call
            open_idx = text.index("(", match.end() - 1)
            close_idx = balance_parens(text, open_idx)
            span = text[open_idx:close_idx + 1]
            if RE_CACHE_KEY_PROOF_ARG.search(span):
                continue
            lineno = text.count("\n", 0, match.start()) + 1
            if allowed(lines[lineno - 1], "cache-key"):
                continue
            self.report(rel, lineno, "cache-key",
                        "cache key built without the proof bytes; a key "
                        "that does not bind the full proof lets a "
                        "tampered proof alias a cached acceptance")

    def check_switch_default(self, rel: str, text: str,
                             lines: list[str]) -> None:
        """Flags `default:` inside switch statements over MessageType."""
        for match in RE_SWITCH.finditer(text):
            # The switch condition: everything up to the matching ')'.
            cond_start = text.index("(", match.start())
            i = balance_parens(text, cond_start)
            condition = text[cond_start:i + 1]
            if not RE_MESSAGE_TYPE.search(condition):
                continue
            # The switch body: balance braces from the first '{' after ')'.
            body_start = text.find("{", i)
            if body_start < 0:
                continue
            j = balance_parens(text, body_start, "{", "}")
            body = text[body_start:j + 1]
            offset = body.find("default:")
            if offset < 0:
                continue
            lineno = text.count("\n", 0, body_start + offset) + 1
            if not allowed(lines[lineno - 1], "switch-default"):
                self.report(rel, lineno, "switch-default",
                            "switch over MessageType must be exhaustive "
                            "(no default:)")

    def collect(self) -> int:
        """Lints every in-scope file under the root; violations accumulate
        in self.violations. Returns the number of files examined (the
        self-test drives this directly to get the structured set)."""
        files = sorted(
            {p for g in SOURCE_GLOBS for p in self.root.glob(g)
             if p.is_file()
             and FIXTURE_DIR_PART not in p.relative_to(self.root).parts})
        for path in files:
            self.lint_file(path)
        return len(files)

    def run(self) -> int:
        nfiles = self.collect()
        if nfiles == 0:
            print("desword_lint: no source files found under "
                  f"{self.root}", file=sys.stderr)
            return 1
        github = bool(os.environ.get("GITHUB_ACTIONS"))
        for rel, lineno, rule, message in self.violations:
            print(f"{rel}:{lineno}: [{rule}] {message}")
            if github:
                # Workflow annotation: surfaces the finding inline on the
                # PR diff. Newlines are not legal in the message field.
                flat = message.replace("\n", " ")
                print(f"::error file={rel},line={lineno},"
                      f"title=desword-lint {rule}::{flat}")
        if self.violations:
            print(f"desword_lint: {len(self.violations)} violation(s)",
                  file=sys.stderr)
            return 1
        print(f"desword_lint: {nfiles} files clean")
        return 0


def default_root() -> pathlib.Path:
    """The repository containing this script — correct regardless of the
    invoker's working directory (CI runs, editor save hooks)."""
    return pathlib.Path(__file__).resolve().parent.parent


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path, default=default_root(),
                        help="repository root (default: the repo containing "
                             "this script)")
    args = parser.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
