#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "crypto/hash.h"
#include "zkedb/batch.h"
#include "zkedb/prover.h"

namespace desword::zkedb {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EdbConfig cfg;
    cfg.q = 4;
    cfg.height = 8;
    cfg.rsa_bits = 512;
    cfg.group_name = "p256";
    crs_ = generate_crs(cfg);
    // Keys with shared prefixes (small integers cluster in the low end of
    // the key space) — the realistic same-lot case batching targets.
    std::map<Bytes, Bytes> entries;
    for (int i = 0; i < 8; ++i) {
      EdbKey key(kKeyBytes, 0);
      key[15] = static_cast<std::uint8_t>(i);
      keys_.push_back(key);
      entries[keys_.back()] = bytes_of("value-" + std::to_string(i));
    }
    prover_ = std::make_unique<EdbProver>(crs_, entries);
  }

  EdbCrsPtr crs_;
  std::vector<EdbKey> keys_;
  std::unique_ptr<EdbProver> prover_;
};

TEST_F(BatchTest, BatchVerifiesAndRecoversAllValues) {
  const auto batch = edb_prove_membership_batch(*prover_, keys_);
  const auto values = edb_verify_membership_batch(
      *crs_, prover_->commitment(), keys_, batch);
  ASSERT_TRUE(values.has_value());
  ASSERT_EQ(values->size(), keys_.size());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(values->at(keys_[static_cast<std::size_t>(i)]),
              bytes_of("value-" + std::to_string(i)));
  }
}

TEST_F(BatchTest, BatchIsSmallerThanIndividualProofs) {
  const auto batch = edb_prove_membership_batch(*prover_, keys_);
  std::size_t individual = 0;
  for (const EdbKey& key : keys_) {
    individual += prover_->prove_membership(key).serialize(*crs_).size();
  }
  const std::size_t batched = batch.serialize(*crs_).size();
  // The 8 clustered keys share their first six tree levels, so the batch
  // carries ~16 unique steps instead of 64.
  EXPECT_LT(batched, individual / 2)
      << "batched=" << batched << " individual=" << individual;
}

TEST_F(BatchTest, SingleKeyBatchMatchesIndividualProof) {
  const std::vector<EdbKey> one = {keys_[0]};
  const auto batch = edb_prove_membership_batch(*prover_, one);
  EXPECT_EQ(batch.steps.size(), crs_->height());
  EXPECT_EQ(batch.leaves.size(), 1u);
  EXPECT_TRUE(edb_verify_membership_batch(*crs_, prover_->commitment(), one,
                                          batch)
                  .has_value());
}

TEST_F(BatchTest, DuplicateRequestKeysHandled) {
  const std::vector<EdbKey> dup = {keys_[0], keys_[0], keys_[1]};
  const auto batch = edb_prove_membership_batch(*prover_, dup);
  EXPECT_EQ(batch.leaves.size(), 2u);
  const auto values = edb_verify_membership_batch(
      *crs_, prover_->commitment(), dup, batch);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(values->size(), 2u);
}

TEST_F(BatchTest, MissingKeyRejected) {
  const auto batch = edb_prove_membership_batch(
      *prover_, {keys_[0], keys_[1]});
  // Asking for a key the proof does not cover must fail all-or-nothing.
  EXPECT_FALSE(edb_verify_membership_batch(*crs_, prover_->commitment(),
                                           {keys_[0], keys_[2]}, batch)
                   .has_value());
}

TEST_F(BatchTest, TamperedValueRejectsWholeBatch) {
  auto batch = edb_prove_membership_batch(*prover_, {keys_[0], keys_[1]});
  batch.leaves[1].value = bytes_of("forged");
  EXPECT_FALSE(edb_verify_membership_batch(*crs_, prover_->commitment(),
                                           {keys_[0], keys_[1]}, batch)
                   .has_value());
}

TEST_F(BatchTest, WrongRootRejected) {
  std::map<Bytes, Bytes> other_entries;
  other_entries[keys_[0]] = bytes_of("other");
  EdbProver other(crs_, other_entries);
  const auto batch = edb_prove_membership_batch(*prover_, {keys_[0]});
  EXPECT_FALSE(edb_verify_membership_batch(*crs_, other.commitment(),
                                           {keys_[0]}, batch)
                   .has_value());
}

TEST_F(BatchTest, SerializationRoundTrip) {
  const auto batch = edb_prove_membership_batch(*prover_, keys_);
  const auto back =
      EdbBatchMembershipProof::deserialize(*crs_, batch.serialize(*crs_));
  EXPECT_TRUE(edb_verify_membership_batch(*crs_, prover_->commitment(),
                                          keys_, back)
                  .has_value());
  // Truncations throw, never crash.
  const Bytes ser = batch.serialize(*crs_);
  for (std::size_t len : {0ul, 1ul, ser.size() / 3, ser.size() - 1}) {
    const Bytes prefix(ser.begin(), ser.begin() + static_cast<long>(len));
    EXPECT_THROW(EdbBatchMembershipProof::deserialize(*crs_, prefix),
                 SerializationError);
  }
}

TEST_F(BatchTest, AbsentKeyCannotBeProven) {
  const EdbKey ghost = key_for_identifier(*crs_, bytes_of("ghost"));
  EXPECT_THROW(edb_prove_membership_batch(*prover_, {keys_[0], ghost}),
               ProtocolError);
}

}  // namespace
}  // namespace desword::zkedb
