// Locking-discipline regression suite (ISSUE 8).
//
// Covers the annotated synchronization wrappers (common/mutex.h), the
// loop-thread affinity tagging (net/transport.h, common/executor.h), and
// the three under-locked-read fixes that rode along with the annotation
// sweep:
//   * Network::stats() must not materialize map entries on reads of
//     unknown links (it was a const-method insertion with unbounded
//     growth);
//   * histogram snapshots must keep the Σ buckets ≤ count invariant under
//     concurrent observers (read order buckets→count pairs with the
//     write order count→bucket-release);
//   * the Network posted seam must hand every worker-posted continuation
//     to the loop thread exactly once.
//
// Tests here use raw std::thread on purpose: the raw-mutex lint rule
// covers src/ only, and exercising the wrappers from plain threads is the
// point.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/executor.h"
#include "common/mutex.h"
#include "net/network.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace desword {
namespace {

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  std::uint64_t guarded = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++guarded;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(guarded, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockReflectsHeldState) {
  Mutex mu;
  mu.lock();
  // try_lock from another thread must fail while held (same-thread
  // try_lock on a held std::mutex is UB, so probe from a helper).
  bool acquired_while_held = true;
  std::thread probe([&] { acquired_while_held = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired_while_held);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, CondVarProducerConsumer) {
  Mutex mu;
  CondVar cv;
  std::vector<int> queue;
  bool done = false;
  constexpr int kItems = 1000;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lock(mu);
      queue.push_back(i);
      cv.notify_one();
    }
    MutexLock lock(mu);
    done = true;
    cv.notify_one();
  });

  std::vector<int> consumed;
  {
    MutexLock lock(mu);
    while (!(done && queue.empty())) {
      while (queue.empty() && !done) cv.wait(lock);
      for (int v : queue) consumed.push_back(v);
      queue.clear();
    }
  }
  producer.join();

  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(consumed[i], i);
}

TEST(MutexTest, CondVarWaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.wait_for(lock, std::chrono::milliseconds(10)));
}

TEST(MutexTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu;
  Mutex state_mu;
  CondVar state_cv;
  int readers_inside = 0;
  bool both_seen = false;

  auto reader = [&] {
    ReaderMutexLock read_lock(mu);
    {
      MutexLock lock(state_mu);
      ++readers_inside;
      if (readers_inside == 2) both_seen = true;
      state_cv.notify_all();
      // Hold the shared lock until both readers are inside — impossible
      // if lock_shared were exclusive.
      while (!both_seen) state_cv.wait(lock);
    }
  };
  std::thread a(reader), b(reader);
  a.join();
  b.join();
  EXPECT_TRUE(both_seen);
}

TEST(MetricsTest, HistogramSnapshotBucketsNeverExceedCount) {
  obs::Histogram h;
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t us = 1u << t;
      while (!stop.load(std::memory_order_relaxed)) {
        h.observe_us(us);
        us = us * 1103515245u + 12345u;  // cheap LCG spreads the buckets
        us %= (1u << 20);
      }
    });
  }
  // Snapshot like histogram_value() does: buckets first, count after.
  for (int iter = 0; iter < 2000; ++iter) {
    std::uint64_t bucket_sum = 0;
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      bucket_sum += h.bucket(i);
    }
    const std::uint64_t count = h.count();
    ASSERT_LE(bucket_sum, count) << "snapshot shows more bucketed "
                                    "observations than its count";
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
  // Quiescent: totals agree exactly.
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    bucket_sum += h.bucket(i);
  }
  EXPECT_EQ(bucket_sum, h.count());
}

TEST(NetworkTest, PostedSeamDeliversEveryWorkerContinuationOnce) {
  net::Network network;
  std::atomic<int> delivered{0};
  constexpr int kThreads = 4;
  constexpr int kPostsPerThread = 250;
  std::vector<std::thread> posters;
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPostsPerThread; ++i) {
        network.post([&delivered] {
          delivered.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& th : posters) th.join();
  EXPECT_EQ(network.posted_pending(),
            static_cast<std::size_t>(kThreads) * kPostsPerThread);
  EXPECT_TRUE(network.wait_posted(/*timeout_ms=*/0));
  EXPECT_EQ(network.run_posted(),
            static_cast<std::size_t>(kThreads) * kPostsPerThread);
  EXPECT_EQ(delivered.load(), kThreads * kPostsPerThread);
  EXPECT_EQ(network.run_posted(), 0u);  // nothing runs twice
}

TEST(NetworkTest, WorkPendingBracketBalances) {
  net::Network network;
  EXPECT_EQ(network.work_pending(), 0u);
  network.add_work();
  network.add_work();
  EXPECT_EQ(network.work_pending(), 2u);
  network.remove_work();
  EXPECT_EQ(network.work_pending(), 1u);
  network.remove_work();
  EXPECT_EQ(network.work_pending(), 0u);
}

// Regression: stats() on a const Network used operator[] and inserted an
// entry per queried (from, to) pair — observation mutated (and grew) the
// table. Unknown links must all map to one canonical zero record.
TEST(NetworkTest, StatsReadDoesNotMaterializeUnknownLinks) {
  net::Network network;
  const net::LinkStats& ab = network.stats("a", "b");
  const net::LinkStats& cd = network.stats("c", "d");
  EXPECT_EQ(&ab, &cd) << "distinct unknown links returned distinct "
                         "records — reads are materializing entries";
  EXPECT_EQ(ab.messages_sent, 0u);
  EXPECT_EQ(ab.bytes_sent, 0u);

  // A real send still gets its own live record.
  network.register_node("x", [](const net::Envelope&) {});
  network.register_node("y", [](const net::Envelope&) {});
  network.send("x", "y", "t", Bytes{1, 2, 3});
  const net::LinkStats& xy = network.stats("x", "y");
  EXPECT_NE(&xy, &ab);
  EXPECT_EQ(xy.messages_sent, 1u);
  // And reading it back did not disturb the unknown-link record.
  EXPECT_EQ(&network.stats("a", "b"), &ab);
}

TEST(TransportTest, PollBindsTheLoopThread) {
  net::Network network;
  net::SimTransport transport(network);

  // Unbound: every thread passes (setup happens before the loop starts).
  EXPECT_TRUE(transport.on_loop_thread());
  bool off_thread_before = false;
  std::thread pre([&] { off_thread_before = transport.on_loop_thread(); });
  pre.join();
  EXPECT_TRUE(off_thread_before);

  transport.poll();  // binds this thread as the loop thread

  EXPECT_TRUE(transport.on_loop_thread());
  bool off_thread_after = true;
  std::thread post([&] { off_thread_after = transport.on_loop_thread(); });
  post.join();
  EXPECT_FALSE(off_thread_after)
      << "a foreign thread still passes the loop-affinity predicate "
         "after poll() bound the loop";

  // Re-polling from the bound thread keeps the binding (first wins).
  transport.poll();
  EXPECT_TRUE(transport.on_loop_thread());
}

TEST(StrandTest, RunningOnThisThreadTracksExecution) {
  auto executor = std::make_shared<Executor>(2u);
  Strand strand(executor);

  EXPECT_FALSE(strand.running_on_this_thread());

  std::atomic<bool> inside_sees_it{false};
  std::atomic<bool> ran{false};
  strand.post([&] {
    inside_sees_it.store(strand.running_on_this_thread());
    ran.store(true);
  });
  strand.drain();
  ASSERT_TRUE(ran.load());
  EXPECT_TRUE(inside_sees_it.load())
      << "a task posted to the strand does not see itself running on it";
  // Between tasks the slot clears again.
  EXPECT_FALSE(strand.running_on_this_thread());
  executor->drain();
}

}  // namespace
}  // namespace desword
