#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "crypto/hash.h"
#include "mercurial/qtmc.h"

namespace desword::mercurial {
namespace {

// Small parameters keep the suite fast; production scale (RSA-2048,
// q up to 128) is exercised by the benchmarks.
constexpr int kTestRsaBits = 512;

Bytes msg16(int i) {
  return hash_to_128("qtmc-test-msg", {be64(static_cast<std::uint64_t>(i))});
}

std::vector<Bytes> make_messages(std::uint32_t count) {
  std::vector<Bytes> msgs;
  for (std::uint32_t i = 0; i < count; ++i) msgs.push_back(msg16(100 + i));
  return msgs;
}

class QtmcTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    q_ = GetParam();
    keys_ = QtmcScheme::keygen(q_, kTestRsaBits);
    scheme_ = std::make_unique<QtmcScheme>(keys_.pk);
  }

  std::uint32_t q_ = 0;
  QtmcKeyPair keys_{QtmcPublicKey{}, Bignum()};
  std::unique_ptr<QtmcScheme> scheme_;
};

TEST_P(QtmcTest, HardCommitOpenVerifyAllPositions) {
  const auto msgs = make_messages(q_);
  const auto [com, dec] = scheme_->hard_commit(msgs);
  for (std::uint32_t i = 0; i < q_; ++i) {
    const QtmcOpening op = scheme_->hard_open(dec, i);
    EXPECT_TRUE(scheme_->verify_open(com, op)) << "pos " << i;
    EXPECT_EQ(op.message, msgs[i]);
  }
}

TEST_P(QtmcTest, HardCommitTeaseVerifyAllPositions) {
  const auto msgs = make_messages(q_);
  const auto [com, dec] = scheme_->hard_commit(msgs);
  for (std::uint32_t i = 0; i < q_; ++i) {
    const QtmcTease t = scheme_->tease_hard(dec, i);
    EXPECT_TRUE(scheme_->verify_tease(com, t)) << "pos " << i;
    EXPECT_EQ(t.message, msgs[i]);
  }
}

TEST_P(QtmcTest, ShortMessageVectorPadsWithNull) {
  if (q_ < 2) GTEST_SKIP() << "needs arity >= 2";
  // Committing fewer than q messages commits the null message at the tail.
  const auto msgs = make_messages(1);
  const auto [com, dec] = scheme_->hard_commit(msgs);
  const QtmcOpening op = scheme_->hard_open(dec, q_ - 1);
  EXPECT_EQ(op.message, null_message());
  EXPECT_TRUE(scheme_->verify_open(com, op));
}

TEST_P(QtmcTest, OpenRejectsWrongMessage) {
  const auto [com, dec] = scheme_->hard_commit(make_messages(q_));
  QtmcOpening op = scheme_->hard_open(dec, 0);
  op.message = msg16(999);
  EXPECT_FALSE(scheme_->verify_open(com, op));
}

TEST_P(QtmcTest, TeaseRejectsWrongMessage) {
  const auto [com, dec] = scheme_->hard_commit(make_messages(q_));
  QtmcTease t = scheme_->tease_hard(dec, 0);
  t.message = msg16(999);
  EXPECT_FALSE(scheme_->verify_tease(com, t));
}

TEST_P(QtmcTest, OpenRejectsWrongPosition) {
  // An opening for position 0 replayed at position 1 must fail.
  const auto [com, dec] = scheme_->hard_commit(make_messages(q_));
  QtmcOpening op = scheme_->hard_open(dec, 0);
  if (q_ < 2) GTEST_SKIP() << "needs arity >= 2";
  op.pos = 1;
  EXPECT_FALSE(scheme_->verify_open(com, op));
}

TEST_P(QtmcTest, OpenRejectsOutOfRangePosition) {
  const auto [com, dec] = scheme_->hard_commit(make_messages(q_));
  QtmcOpening op = scheme_->hard_open(dec, 0);
  op.pos = q_;
  EXPECT_FALSE(scheme_->verify_open(com, op));
}

TEST_P(QtmcTest, OpenRejectsWrongCommitment) {
  const auto [com1, dec1] = scheme_->hard_commit(make_messages(q_));
  const auto [com2, dec2] = scheme_->hard_commit({msg16(7)});
  EXPECT_FALSE(scheme_->verify_open(com2, scheme_->hard_open(dec1, 0)));
}

TEST_P(QtmcTest, SoftCommitTeasesToAnythingAtAnyPosition) {
  const auto [com, dec] = scheme_->soft_commit();
  for (std::uint32_t i = 0; i < q_; ++i) {
    const QtmcTease t = scheme_->tease_soft(dec, i, msg16(static_cast<int>(i)));
    EXPECT_TRUE(scheme_->verify_tease(com, t)) << "pos " << i;
  }
  // Including the null message.
  const QtmcTease tn = scheme_->tease_soft(dec, 0, null_message());
  EXPECT_TRUE(scheme_->verify_tease(com, tn));
}

TEST_P(QtmcTest, SoftCommitTeasesSamePositionToDifferentMessages) {
  // The equivocation at the heart of non-ownership proofs.
  const auto [com, dec] = scheme_->soft_commit();
  const QtmcTease t1 = scheme_->tease_soft(dec, 0, msg16(1));
  const QtmcTease t2 = scheme_->tease_soft(dec, 0, msg16(2));
  EXPECT_TRUE(scheme_->verify_tease(com, t1));
  EXPECT_TRUE(scheme_->verify_tease(com, t2));
}

TEST_P(QtmcTest, SoftCommitCannotBeHardOpenedNaively) {
  const auto [com, dec] = scheme_->soft_commit();
  const QtmcTease t = scheme_->tease_soft(dec, 0, msg16(3));
  // Present the tease as an opening using the soft r1 — must fail the
  // C1 = h^{r1} check (C1 is a power of g, not of h).
  QtmcOpening cheat{0, t.message, t.tau, t.lambda, dec.r1};
  EXPECT_FALSE(scheme_->verify_open(com, cheat));
}

TEST_P(QtmcTest, HardAndSoftCommitmentsLookAlike) {
  const auto [hcom, hdec] = scheme_->hard_commit(make_messages(q_));
  const auto [scom, sdec] = scheme_->soft_commit();
  EXPECT_EQ(hcom.serialize(keys_.pk.n).size(),
            scom.serialize(keys_.pk.n).size());
}

TEST_P(QtmcTest, HardAndSoftTeasesLookAlike) {
  const auto [hcom, hdec] = scheme_->hard_commit(make_messages(q_));
  const auto [scom, sdec] = scheme_->soft_commit();
  const QtmcTease th = scheme_->tease_hard(hdec, 0);
  const QtmcTease ts = scheme_->tease_soft(sdec, 0, hdec.messages[0]);
  EXPECT_EQ(th.serialize(keys_.pk.n).size(), ts.serialize(keys_.pk.n).size());
}

TEST_P(QtmcTest, CommitmentsAreRandomized) {
  const auto msgs = make_messages(q_);
  const auto [com1, dec1] = scheme_->hard_commit(msgs);
  const auto [com2, dec2] = scheme_->hard_commit(msgs);
  EXPECT_NE(com1, com2);
}

TEST_P(QtmcTest, SerializationRoundTrips) {
  const auto [com, dec] = scheme_->hard_commit(make_messages(q_));
  const QtmcCommitment com2 =
      QtmcCommitment::deserialize(keys_.pk.n, com.serialize(keys_.pk.n));
  EXPECT_EQ(com, com2);

  const QtmcOpening op = scheme_->hard_open(dec, 0);
  const QtmcOpening op2 =
      QtmcOpening::deserialize(keys_.pk.n, op.serialize(keys_.pk.n));
  EXPECT_TRUE(scheme_->verify_open(com2, op2));

  const QtmcTease t = scheme_->tease_hard(dec, 0);
  const QtmcTease t2 =
      QtmcTease::deserialize(keys_.pk.n, t.serialize(keys_.pk.n));
  EXPECT_TRUE(scheme_->verify_tease(com2, t2));
}

TEST_P(QtmcTest, PublicKeyRoundTripYieldsWorkingScheme) {
  const QtmcPublicKey pk2 = QtmcPublicKey::deserialize(keys_.pk.serialize());
  QtmcScheme scheme2(pk2);
  // A commitment made under the original scheme verifies under the
  // re-derived one (primes and S_i tables are deterministic).
  const auto [com, dec] = scheme_->hard_commit(make_messages(q_));
  const QtmcOpening op = scheme_->hard_open(dec, 0);
  EXPECT_TRUE(scheme2.verify_open(com, op));
}

TEST_P(QtmcTest, TrapdoorEquivocation) {
  const auto [com, dec] = scheme_->fake_commit(keys_.trapdoor);
  const QtmcOpening op1 = scheme_->fake_open(dec, keys_.trapdoor, 0, msg16(1));
  const QtmcOpening op2 = scheme_->fake_open(dec, keys_.trapdoor, 0, msg16(2));
  EXPECT_TRUE(scheme_->verify_open(com, op1));
  EXPECT_TRUE(scheme_->verify_open(com, op2));
  if (q_ > 1) {
    const QtmcOpening op3 =
        scheme_->fake_open(dec, keys_.trapdoor, q_ - 1, msg16(3));
    EXPECT_TRUE(scheme_->verify_open(com, op3));
  }
}

TEST_P(QtmcTest, OpeningBitFlipFuzz) {
  const auto [com, dec] = scheme_->hard_commit(make_messages(q_));
  const QtmcOpening op = scheme_->hard_open(dec, 0);
  const Bytes ser = op.serialize(keys_.pk.n);
  ASSERT_TRUE(scheme_->verify_open(com, op));
  for (std::size_t i = 0; i < ser.size(); ++i) {
    Bytes mutated = ser;
    mutated[i] ^= 0x01;
    try {
      const QtmcOpening bad = QtmcOpening::deserialize(keys_.pk.n, mutated);
      EXPECT_FALSE(scheme_->verify_open(com, bad)) << "byte " << i;
    } catch (const Error&) {
      // rejected at parse time: fine
    }
  }
}

TEST_P(QtmcTest, PrecomputeSoftBasesIsIdempotent) {
  scheme_->precompute_soft_bases();
  const auto [com, dec] = scheme_->soft_commit();
  const QtmcTease t = scheme_->tease_soft(dec, q_ - 1, msg16(5));
  EXPECT_TRUE(scheme_->verify_tease(com, t));
  scheme_->precompute_soft_bases();
}

INSTANTIATE_TEST_SUITE_P(Arity, QtmcTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

TEST(QtmcKeygenTest, RejectsBadArity) {
  EXPECT_THROW(QtmcScheme::keygen(0, kTestRsaBits), Error);
  EXPECT_THROW(QtmcScheme::keygen(5000, kTestRsaBits), Error);
}

TEST(QtmcKeygenTest, TooManyMessagesRejected) {
  const QtmcKeyPair keys = QtmcScheme::keygen(2, kTestRsaBits);
  QtmcScheme scheme(keys.pk);
  EXPECT_THROW(scheme.hard_commit(make_messages(3)), Error);
}

}  // namespace
}  // namespace desword::mercurial
