// Executor / Strand unit tests: task accounting, drain semantics, strand
// serialization, inline mode, and the metric hooks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace desword {
namespace {

TEST(ExecutorTest, RunsEveryTaskAndDrains) {
  Executor exec(4);
  constexpr int kN = 200;
  std::atomic<int> ran{0};
  for (int i = 0; i < kN; ++i) {
    exec.post([&ran] { ran.fetch_add(1); });
  }
  exec.drain();
  EXPECT_EQ(ran.load(), kN);
  EXPECT_EQ(exec.pending(), 0u);
}

TEST(ExecutorTest, InlineModeRunsOnCallerThread) {
  ThreadPool pool(1);
  Executor exec(pool);
  EXPECT_TRUE(exec.inline_mode());
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  exec.post([&] {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);  // inline: completed before post() returned
  exec.drain();
}

TEST(ExecutorTest, TaskExceptionsDoNotWedgeAccounting) {
  Executor exec(2);
  for (int i = 0; i < 8; ++i) {
    exec.post([] { throw std::runtime_error("task boom"); });
  }
  exec.drain();  // must not hang or terminate
  EXPECT_EQ(exec.pending(), 0u);
}

TEST(ExecutorTest, MetricHooksObserveSubmissionAndCompletion) {
  obs::install_executor_metrics();
  obs::Counter& submitted = obs::metric("exec.task.submitted");
  obs::Counter& completed = obs::metric("exec.task.completed");
  const auto before_submitted = submitted.value();
  const auto before_completed = completed.value();
  Executor exec(2);
  for (int i = 0; i < 10; ++i) exec.post([] {});
  exec.drain();
  EXPECT_EQ(submitted.value() - before_submitted, 10u);
  EXPECT_EQ(completed.value() - before_completed, 10u);
}

TEST(StrandTest, SerializesTasksInFifoOrder) {
  auto exec = std::make_shared<Executor>(4);
  Strand strand(exec);
  constexpr int kN = 300;
  std::vector<int> order;  // no lock: the strand is the lock
  std::atomic<int> overlap{0};
  std::atomic<bool> in_task{false};
  for (int i = 0; i < kN; ++i) {
    strand.post([&, i] {
      if (in_task.exchange(true)) overlap.fetch_add(1);
      order.push_back(i);
      in_task.store(false);
    });
  }
  strand.drain();
  exec->drain();
  EXPECT_EQ(overlap.load(), 0);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[i], i);
}

TEST(StrandTest, IndependentStrandsRunConcurrently) {
  auto exec = std::make_shared<Executor>(4);
  Strand a(exec);
  Strand b(exec);
  // If a and b were serialized against each other this would deadlock-free
  // but never overlap; with 4 workers the rendezvous below must succeed.
  std::atomic<bool> a_entered{false};
  std::atomic<bool> b_entered{false};
  std::atomic<bool> overlapped{false};
  const auto spin_until = [](std::atomic<bool>& flag) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!flag.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    return flag.load();
  };
  a.post([&] {
    a_entered.store(true);
    if (spin_until(b_entered)) overlapped.store(true);
  });
  b.post([&] {
    b_entered.store(true);
    if (spin_until(a_entered)) overlapped.store(true);
  });
  a.drain();
  b.drain();
  exec->drain();
  EXPECT_TRUE(overlapped.load());
}

TEST(StrandTest, DrainWaitsForQueuedTasks) {
  auto exec = std::make_shared<Executor>(2);
  Strand strand(exec);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    strand.post([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ran.fetch_add(1);
    });
  }
  strand.drain();
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(strand.pending(), 0u);
  exec->drain();
}

TEST(StrandTest, StrandTaskExceptionDoesNotStopSuccessors) {
  auto exec = std::make_shared<Executor>(2);
  Strand strand(exec);
  std::atomic<int> ran{0};
  strand.post([] { throw std::runtime_error("strand boom"); });
  strand.post([&ran] { ran.fetch_add(1); });
  strand.drain();
  exec->drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ExecutorTest, ManyStrandsManyTasksStress) {
  auto exec = std::make_shared<Executor>(4);
  constexpr int kStrands = 8;
  constexpr int kTasksPerStrand = 100;
  std::vector<std::unique_ptr<Strand>> strands;
  std::vector<std::atomic<int>> counters(kStrands);
  for (int sidx = 0; sidx < kStrands; ++sidx) {
    strands.push_back(std::make_unique<Strand>(exec));
  }
  for (int t = 0; t < kTasksPerStrand; ++t) {
    for (int sidx = 0; sidx < kStrands; ++sidx) {
      strands[static_cast<std::size_t>(sidx)]->post(
          [&counters, sidx] { counters[sidx].fetch_add(1); });
    }
  }
  for (auto& strand : strands) strand->drain();
  exec->drain();
  for (int sidx = 0; sidx < kStrands; ++sidx) {
    EXPECT_EQ(counters[sidx].load(), kTasksPerStrand);
  }
}

}  // namespace
}  // namespace desword
