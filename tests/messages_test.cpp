#include <gtest/gtest.h>

#include "common/error.h"
#include "desword/crs_cache.h"
#include "desword/messages.h"
#include "supplychain/rfid.h"

namespace desword::protocol {
namespace {

using supplychain::make_epc;

/// Every serialized message must deserialize to an equal value, and every
/// strict prefix must throw SerializationError (never crash, never parse).
template <typename M>
void check_roundtrip_and_truncation(const M& msg) {
  const Bytes ser = msg.serialize();
  const M back = M::deserialize(ser);
  EXPECT_EQ(back.serialize(), ser);
  for (std::size_t len = 0; len < ser.size(); ++len) {
    const Bytes prefix(ser.begin(), ser.begin() + static_cast<long>(len));
    EXPECT_THROW((void)M::deserialize(prefix), SerializationError)
        << "prefix length " << len;
  }
  // Trailing garbage is rejected too.
  Bytes extended = ser;
  extended.push_back(0x00);
  EXPECT_THROW((void)M::deserialize(extended), SerializationError);
}

TEST(MessagesTest, PsRequestRoundTrip) {
  check_roundtrip_and_truncation(PsRequest{"task-1"});
}

TEST(MessagesTest, PsResponseRoundTrip) {
  check_roundtrip_and_truncation(PsResponse{"task-1", bytes_of("ps-bytes")});
}

TEST(MessagesTest, PocToParentRoundTrip) {
  check_roundtrip_and_truncation(PocToParent{"task-1", bytes_of("poc")});
}

TEST(MessagesTest, PocPairsToInitialRoundTrip) {
  PocPairsToInitial m;
  m.task_id = "task-9";
  m.own_poc = bytes_of("own");
  m.pairs.emplace_back(bytes_of("parent-1"), bytes_of("child-1"));
  m.pairs.emplace_back(bytes_of("parent-2"), bytes_of("child-2"));
  check_roundtrip_and_truncation(m);
}

TEST(MessagesTest, PocListSubmitRoundTrip) {
  check_roundtrip_and_truncation(PocListSubmit{"task-1", bytes_of("list")});
}

TEST(MessagesTest, QueryRequestRoundTrip) {
  QueryRequest m;
  m.query_id = 77;
  m.product = make_epc(1, 2, 3);
  m.quality = ProductQuality::kBad;
  m.poc = bytes_of("poc-bytes");
  check_roundtrip_and_truncation(m);
}

TEST(MessagesTest, QueryResponseVariants) {
  QueryResponse with_proof;
  with_proof.query_id = 1;
  with_proof.claims_processing = true;
  with_proof.proof = bytes_of("proof");
  check_roundtrip_and_truncation(with_proof);

  QueryResponse without_proof;
  without_proof.query_id = 2;
  without_proof.claims_processing = false;
  check_roundtrip_and_truncation(without_proof);
  EXPECT_FALSE(QueryResponse::deserialize(without_proof.serialize())
                   .proof.has_value());
}

TEST(MessagesTest, RevealMessagesRoundTrip) {
  RevealRequest req;
  req.query_id = 5;
  req.product = make_epc(4, 5, 6);
  req.poc = bytes_of("poc");
  check_roundtrip_and_truncation(req);

  RevealResponse refuse;
  refuse.query_id = 5;
  check_roundtrip_and_truncation(refuse);

  RevealResponse reveal;
  reveal.query_id = 5;
  reveal.proof = bytes_of("ownership-proof");
  check_roundtrip_and_truncation(reveal);
}

TEST(MessagesTest, NextHopMessagesRoundTrip) {
  NextHopRequest req;
  req.query_id = 8;
  req.product = make_epc(1, 1, 1);
  check_roundtrip_and_truncation(req);

  NextHopResponse last;
  last.query_id = 8;
  check_roundtrip_and_truncation(last);
  EXPECT_FALSE(NextHopResponse::deserialize(last.serialize())
                   .next.has_value());

  NextHopResponse onward;
  onward.query_id = 8;
  onward.next = "v7";
  check_roundtrip_and_truncation(onward);
  EXPECT_EQ(*NextHopResponse::deserialize(onward.serialize()).next, "v7");
}

TEST(MessagesTest, BadQualityByteRejected) {
  QueryRequest m;
  m.query_id = 1;
  m.product = make_epc(1, 1, 1);
  m.poc = bytes_of("p");
  Bytes ser = m.serialize();
  // Quality byte sits right after the length-prefixed product field.
  // Find and corrupt it via a targeted reserialize instead: flip through
  // all single-byte corruptions and require parse failure or equal parse.
  bool rejected_some = false;
  for (std::size_t i = 0; i < ser.size(); ++i) {
    Bytes mutated = ser;
    mutated[i] = 0x7f;
    try {
      (void)QueryRequest::deserialize(mutated);
    } catch (const SerializationError&) {
      rejected_some = true;
    }
  }
  EXPECT_TRUE(rejected_some);
}

TEST(MessagesTest, QualityToString) {
  EXPECT_EQ(to_string(ProductQuality::kGood), "good");
  EXPECT_EQ(to_string(ProductQuality::kBad), "bad");
}

TEST(CrsCacheTest, SameBytesYieldSameInstance) {
  CrsCache cache;
  zkedb::EdbConfig cfg{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  const zkedb::EdbCrsPtr crs = zkedb::generate_crs(cfg);
  const Bytes ps = crs->params().serialize();
  const zkedb::EdbCrsPtr a = cache.get(ps);
  const zkedb::EdbCrsPtr b = cache.get(ps);
  EXPECT_EQ(a.get(), b.get());  // derived once, shared afterwards
  EXPECT_EQ(a->q(), 4u);
}

TEST(CrsCacheTest, PutPreseedsInstance) {
  CrsCache cache;
  zkedb::EdbConfig cfg{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  const zkedb::EdbCrsPtr crs = zkedb::generate_crs(cfg);
  cache.put(crs);
  const zkedb::EdbCrsPtr got = cache.get(crs->params().serialize());
  EXPECT_EQ(got.get(), crs.get());
}

}  // namespace
}  // namespace desword::protocol
