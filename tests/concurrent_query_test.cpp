// Concurrency semantics of the executor-backed protocol stack:
//
//   * a retransmitted request racing a slow in-flight proof generation
//     joins the existing computation (one proof, two deliveries);
//   * the query scheduler bounds in-flight sessions and admits queued ones
//     as slots free;
//   * ≥32 interleaved good/bad queries over a lossy, jittery SimTransport
//     with 4 crypto workers produce verdicts and reputation identical to
//     the single-threaded serial run.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "desword/messages.h"
#include "desword/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::SupplyChainGraph;

ScenarioConfig fast_config() {
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  return cfg;
}

TEST(ConcurrentQueryTest, RetransmitJoinsInFlightProofGeneration) {
  ScenarioConfig cfg = fast_config();
  cfg.worker_threads = 2;  // participants build proofs on their strands
  Scenario scenario(SupplyChainGraph::paper_example(), cfg);

  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  dist.seed = 7;
  const auto& truth = scenario.run_task("t0", dist);

  const supplychain::ProductId product = dist.products[0];
  const auto& path = truth.paths.at(product);
  const std::string& first_hop = path[0];
  const poc::Poc* poc = scenario.proxy().task_list("t0")->find(first_hop);
  ASSERT_NE(poc, nullptr);

  // A fake query client standing in for a proxy whose retransmission timer
  // fired while the participant was still proving.
  std::vector<Bytes> responses;
  scenario.network().register_node("probe", [&](const net::Envelope& env) {
    if (env.type == msg::kQueryResponse) responses.push_back(env.payload);
  });

  Participant& prover = scenario.participant(first_hop);
  const std::uint64_t proofs_before = prover.stats().proofs_generated;
  const std::uint64_t joined_before = prover.stats().duplicate_requests_served;

  const Bytes request =
      QueryRequest{99, product, ProductQuality::kGood, poc->serialize()}
          .serialize();
  // Back-to-back identical requests: both deliver in the same run() round,
  // so the second necessarily arrives while the first's proof generation
  // is still in flight on the strand — the deterministic join race.
  scenario.network().send("probe", first_hop, msg::kQueryRequest, request);
  scenario.network().send("probe", first_hop, msg::kQueryRequest, request);

  for (int round = 0; round < 200 && responses.size() < 2; ++round) {
    prover.transport().poll(50);
  }

  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0], responses[1]) << "joined waiters must receive the "
                                           "byte-identical response";
  EXPECT_EQ(prover.stats().proofs_generated - proofs_before, 1u)
      << "the duplicate must not trigger a second proof generation";
  EXPECT_EQ(prover.stats().duplicate_requests_served - joined_before, 1u);
}

TEST(ConcurrentQueryTest, SchedulerQueuesBeyondConcurrencyLimit) {
  ScenarioConfig cfg = fast_config();
  cfg.max_concurrent_queries = 2;
  Scenario scenario(SupplyChainGraph::paper_example(), cfg);

  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 6);
  dist.seed = 11;
  scenario.run_task("t0", dist);

  std::vector<std::uint64_t> ids;
  for (const auto& product : dist.products) {
    ids.push_back(scenario.proxy().begin_query(product, ProductQuality::kGood));
  }
  scenario.proxy().pump();

  std::size_t queued_spans = 0;
  for (const std::uint64_t qid : ids) {
    const obs::QueryTrace* trace = scenario.proxy().query_trace(qid);
    ASSERT_NE(trace, nullptr);
    // Every session is eventually admitted exactly once...
    EXPECT_EQ(trace->count(obs::span::kAdmitted), 1u);
    queued_spans += trace->count(obs::span::kQueued);
    const QueryOutcome* outcome = scenario.proxy().outcome(qid);
    ASSERT_NE(outcome, nullptr);
    EXPECT_TRUE(outcome->complete);
  }
  // ...but only the first two slots were free at begin time: the other
  // four queries all waited in the scheduler.
  EXPECT_EQ(queued_spans, ids.size() - cfg.max_concurrent_queries);
}

/// Compact comparable digest of a query outcome.
struct OutcomeDigest {
  bool complete = false;
  std::vector<std::string> path;
  std::vector<std::pair<std::string, std::string>> violations;

  bool operator==(const OutcomeDigest& other) const {
    return complete == other.complete && path == other.path &&
           violations == other.violations;
  }
};

OutcomeDigest digest_of(const QueryOutcome& outcome) {
  OutcomeDigest d;
  d.complete = outcome.complete;
  d.path = outcome.path;
  for (const Violation& v : outcome.violations) {
    d.violations.emplace_back(v.participant, to_string(v.type));
  }
  return d;
}

struct SweepResult {
  std::vector<OutcomeDigest> outcomes;
  std::map<std::string, double> reputation;
};

/// Builds a 3-task lossy deployment with two adversaries and runs the same
/// 33-query mixed-quality sweep, either serially (one run_query at a time)
/// or as one concurrent batch.
SweepResult run_sweep(unsigned worker_threads,
                      std::size_t max_concurrent_queries, bool batch) {
  ScenarioConfig cfg = fast_config();
  cfg.worker_threads = worker_threads;
  cfg.max_concurrent_queries = max_concurrent_queries;
  Scenario scenario(SupplyChainGraph::layered(5, 4, 2), cfg);

  std::vector<std::vector<supplychain::ProductId>> lots;
  for (int t = 0; t < 3; ++t) {
    DistributionConfig dist;
    dist.initial = "L0-" + std::to_string(t);
    dist.products = make_products(static_cast<std::uint32_t>(t + 1),
                                  static_cast<std::uint64_t>(t) * 1000, 11);
    dist.seed = static_cast<std::uint64_t>(t) + 23;
    scenario.run_task("task-" + std::to_string(t), dist);
    lots.push_back(dist.products);
  }

  // Drops and jitter on every link from here on: the query sweep sees
  // retransmissions and reordered deliveries (distribution ran clean so
  // the deployment itself is identical across runs).
  net::LinkPolicy lossy;
  lossy.latency = 1;
  lossy.jitter = 2;
  lossy.drop_rate = 0.02;
  scenario.network().set_default_policy(lossy);

  QueryBehavior wrong_next;
  wrong_next.wrong_next[lots[0][0]] = "L4-0";
  scenario.participant("L0-0").set_query_behavior(wrong_next);

  QueryBehavior denial;
  denial.claim_non_processing.insert(lots[1][1]);
  const auto& denial_path = *scenario.path_of(lots[1][1]);
  scenario.participant(denial_path[1]).set_query_behavior(denial);

  std::vector<Proxy::QuerySpec> specs;
  for (std::size_t lot = 0; lot < lots.size(); ++lot) {
    for (std::size_t i = 0; i < lots[lot].size(); ++i) {
      const ProductQuality quality = (i % 3 == 0) ? ProductQuality::kBad
                                                  : ProductQuality::kGood;
      specs.push_back(Proxy::QuerySpec{lots[lot][i], quality, {}});
    }
  }

  SweepResult result;
  if (batch) {
    for (const QueryOutcome& outcome : scenario.proxy().run_queries(specs)) {
      result.outcomes.push_back(digest_of(outcome));
    }
  } else {
    for (const Proxy::QuerySpec& spec : specs) {
      result.outcomes.push_back(digest_of(
          scenario.proxy().run_query(spec.product, spec.quality)));
    }
  }
  result.reputation = scenario.proxy().reputation_snapshot();
  return result;
}

TEST(ConcurrentQueryTest, ConcurrentSweepMatchesSerialVerdicts) {
  const SweepResult serial =
      run_sweep(/*worker_threads=*/0, /*max_concurrent_queries=*/1,
                /*batch=*/false);
  const SweepResult concurrent =
      run_sweep(/*worker_threads=*/4, /*max_concurrent_queries=*/16,
                /*batch=*/true);

  ASSERT_GE(serial.outcomes.size(), 32u);
  ASSERT_EQ(serial.outcomes.size(), concurrent.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i] == concurrent.outcomes[i], true)
        << "query " << i << " diverged between serial and concurrent runs";
  }

  ASSERT_EQ(serial.reputation.size(), concurrent.reputation.size());
  for (const auto& [participant, score] : serial.reputation) {
    const auto it = concurrent.reputation.find(participant);
    ASSERT_NE(it, concurrent.reputation.end()) << participant;
    EXPECT_DOUBLE_EQ(score, it->second) << participant;
  }
}

}  // namespace
}  // namespace desword::protocol
