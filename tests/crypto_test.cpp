#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/bignum.h"
#include "crypto/group.h"
#include "crypto/hash.h"
#include "crypto/primes.h"
#include "crypto/rsa.h"
#include "crypto/schnorr.h"

namespace desword {
namespace {

TEST(BignumTest, BasicArithmetic) {
  const Bignum a(1000);
  const Bignum b(37);
  EXPECT_EQ((a + b).to_u64(), 1037u);
  EXPECT_EQ((a - b).to_u64(), 963u);
  EXPECT_EQ((a * b).to_u64(), 37000u);
  EXPECT_EQ(a.divided_by(b).to_u64(), 27u);
  Bignum rem;
  a.divided_by(b, &rem);
  EXPECT_EQ(rem.to_u64(), 1u);
  EXPECT_FALSE(a.divisible_by(b));
  EXPECT_TRUE(Bignum(999).divisible_by(Bignum(37)));
}

TEST(BignumTest, NegativeValues) {
  const Bignum a(5);
  const Bignum b(9);
  const Bignum d = a - b;  // -4
  EXPECT_TRUE(d.is_negative());
  EXPECT_EQ(d.negated().to_u64(), 4u);
  EXPECT_EQ(d.mod(Bignum(7)).to_u64(), 3u);  // canonical residue
  EXPECT_THROW(d.to_bytes(), CryptoError);
}

TEST(BignumTest, BytesRoundTrip) {
  const Bignum v = Bignum::from_dec("123456789012345678901234567890");
  EXPECT_EQ(Bignum::from_bytes(v.to_bytes()), v);
  const Bytes padded = v.to_bytes_padded(32);
  EXPECT_EQ(padded.size(), 32u);
  EXPECT_EQ(Bignum::from_bytes(padded), v);
  EXPECT_THROW(v.to_bytes_padded(4), CryptoError);
}

TEST(BignumTest, DecHexRoundTrip) {
  const Bignum v(9876543210ULL);
  EXPECT_EQ(Bignum::from_dec(v.to_dec()), v);
  EXPECT_EQ(Bignum::from_hex(v.to_hex()), v);
}

TEST(BignumTest, ModularOps) {
  const Bignum m(1009);  // prime
  const Bignum a(123);
  const Bignum e(456);
  const Bignum x = Bignum::mod_exp(a, e, m);
  EXPECT_LT(x, m);
  // Fermat: a^(m-1) = 1 mod m.
  EXPECT_TRUE(Bignum::mod_exp(a, Bignum(1008), m).is_one());
  const Bignum inv = Bignum::mod_inverse(a, m);
  EXPECT_TRUE(Bignum::mod_mul(a, inv, m).is_one());
  EXPECT_EQ(Bignum::gcd(Bignum(12), Bignum(18)).to_u64(), 6u);
}

TEST(BignumTest, ModInverseNonexistentThrows) {
  EXPECT_THROW(Bignum::mod_inverse(Bignum(6), Bignum(9)), CryptoError);
}

TEST(BignumTest, ModExpRejectsNegativeExponent) {
  EXPECT_THROW(
      Bignum::mod_exp(Bignum(2), Bignum(1) - Bignum(3), Bignum(11)),
      CryptoError);
}

TEST(BignumTest, Comparisons) {
  EXPECT_LT(Bignum(3), Bignum(4));
  EXPECT_GT(Bignum(9), Bignum(4));
  EXPECT_EQ(Bignum(7), Bignum(7));
}

TEST(BignumTest, RandRangeBounds) {
  const Bignum bound(1000);
  for (int i = 0; i < 50; ++i) {
    const Bignum r = Bignum::rand_range(bound);
    EXPECT_LT(r, bound);
    EXPECT_FALSE(r.is_negative());
  }
  EXPECT_THROW(Bignum::rand_range(Bignum()), CryptoError);
}

TEST(BignumTest, RandBitsExactWidth) {
  for (int bits : {8, 64, 136, 256}) {
    EXPECT_EQ(Bignum::rand_bits(bits).bits(), bits);
  }
}

TEST(BignumTest, PrimeGeneration) {
  const Bignum p = Bignum::generate_prime(128);
  EXPECT_EQ(p.bits(), 128);
  EXPECT_TRUE(p.is_prime());
  EXPECT_FALSE((p * Bignum(3)).is_prime());
}

TEST(HashTest, Sha256KnownVector) {
  // SHA-256("abc")
  EXPECT_EQ(to_hex(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(HashTest, TaggedHashDomainSeparation) {
  const Bytes a = hash_tagged("tag-a", {bytes_of("msg")});
  const Bytes b = hash_tagged("tag-b", {bytes_of("msg")});
  EXPECT_NE(a, b);
  // Structural separation: ("ab","c") != ("a","bc").
  const Bytes c = hash_tagged("t", {bytes_of("ab"), bytes_of("c")});
  const Bytes d = hash_tagged("t", {bytes_of("a"), bytes_of("bc")});
  EXPECT_NE(c, d);
}

TEST(HashTest, TaggedHasherMatchesOneShot) {
  TaggedHasher h("t");
  h.add(bytes_of("x")).add(bytes_of("y"));
  EXPECT_EQ(h.digest(), hash_tagged("t", {bytes_of("x"), bytes_of("y")}));
}

TEST(HashTest, HashTo128Width) {
  EXPECT_EQ(hash_to_128("t", {bytes_of("m")}).size(), 16u);
}

TEST(PrimesTest, HashToPrimeDeterministicAndPrime) {
  const Bytes seed = bytes_of("seed");
  const Bignum p1 = hash_to_prime(seed, 0, 136);
  const Bignum p2 = hash_to_prime(seed, 0, 136);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(p1.bits(), 136);
  EXPECT_TRUE(p1.is_prime());
  EXPECT_NE(hash_to_prime(seed, 1, 136), p1);
}

TEST(PrimesTest, DerivePrimesDistinct) {
  const auto primes = derive_primes(bytes_of("s2"), 16, 136);
  ASSERT_EQ(primes.size(), 16u);
  for (std::size_t i = 0; i < primes.size(); ++i) {
    EXPECT_TRUE(primes[i].is_prime());
    EXPECT_EQ(primes[i].bits(), 136);
    for (std::size_t j = i + 1; j < primes.size(); ++j) {
      EXPECT_NE(primes[i], primes[j]);
    }
  }
}

TEST(RsaTest, ModulusGeneration) {
  const RsaModulus m = generate_rsa_modulus(512, /*keep_factors=*/true);
  EXPECT_EQ(m.n.bits(), 512);
  ASSERT_TRUE(m.p.has_value());
  ASSERT_TRUE(m.q.has_value());
  EXPECT_EQ(*m.p * *m.q, m.n);
  EXPECT_TRUE(m.p->is_prime());
  EXPECT_TRUE(m.q->is_prime());
}

TEST(RsaTest, ModulusFactorsDiscardedByDefault) {
  const RsaModulus m = generate_rsa_modulus(512);
  EXPECT_FALSE(m.p.has_value());
  EXPECT_FALSE(m.q.has_value());
}

TEST(RsaTest, QuadraticResidueIsUnit) {
  const RsaModulus m = generate_rsa_modulus(512);
  const Bignum r = random_quadratic_residue(m.n);
  EXPECT_FALSE(r.is_zero());
  EXPECT_LT(r, m.n);
  EXPECT_TRUE(Bignum::gcd(r, m.n).is_one());
}

// ---------------------------------------------------------------------------
// Group backends (shared conformance suite).
// ---------------------------------------------------------------------------

class GroupConformance : public ::testing::TestWithParam<const char*> {
 protected:
  GroupPtr make() const {
    const std::string which = GetParam();
    if (which == "p256") return make_p256_group();
    return make_modp_group(ModpGroupId::kTest512);
  }
};

TEST_P(GroupConformance, GeneratorValidAndOrderPrime) {
  const GroupPtr g = make();
  EXPECT_TRUE(g->is_valid_element(g->generator()));
  EXPECT_TRUE(g->order().is_prime());
  EXPECT_EQ(g->generator().size(), g->element_size());
}

TEST_P(GroupConformance, ExpHomomorphism) {
  const GroupPtr g = make();
  const Bignum a = g->random_scalar();
  const Bignum b = g->random_scalar();
  // g^a * g^b == g^(a+b)
  const Bytes lhs = g->mul(g->exp_g(a), g->exp_g(b));
  const Bytes rhs = g->exp_g((a + b).mod(g->order()));
  EXPECT_EQ(lhs, rhs);
}

TEST_P(GroupConformance, InverseCancels) {
  const GroupPtr g = make();
  const Bignum a = g->random_scalar();
  const Bytes x = g->exp_g(a);
  // (x * x) * x^{-1} == x; ordered to avoid materializing the identity,
  // which has no fixed-width encoding on the EC backend.
  EXPECT_EQ(g->mul(g->mul(x, x), g->inverse(x)), x);
}

TEST_P(GroupConformance, OrderAnnihilates) {
  const GroupPtr g = make();
  const Bignum a = g->random_scalar();
  const Bytes x = g->exp_g(a);
  // x^(order+1) == x
  const Bytes y = g->exp(x, g->order() + Bignum(1));
  EXPECT_EQ(y, x);
}

TEST_P(GroupConformance, HashToElementValidAndDeterministic) {
  const GroupPtr g = make();
  const Bytes e1 = g->hash_to_element(bytes_of("seed-1"));
  const Bytes e2 = g->hash_to_element(bytes_of("seed-1"));
  const Bytes e3 = g->hash_to_element(bytes_of("seed-2"));
  EXPECT_EQ(e1, e2);
  EXPECT_NE(e1, e3);
  EXPECT_TRUE(g->is_valid_element(e1));
  EXPECT_TRUE(g->is_valid_element(e3));
}

TEST_P(GroupConformance, RejectsGarbageElements) {
  const GroupPtr g = make();
  EXPECT_FALSE(g->is_valid_element(Bytes{}));
  EXPECT_FALSE(g->is_valid_element(Bytes(g->element_size() + 1, 0x02)));
  Bytes zeros(g->element_size(), 0x00);
  EXPECT_FALSE(g->is_valid_element(zeros));
}

TEST_P(GroupConformance, ExpReducesScalarModOrder) {
  const GroupPtr g = make();
  const Bignum a = g->random_scalar();
  EXPECT_EQ(g->exp_g(a), g->exp_g(a + g->order()));
}

INSTANTIATE_TEST_SUITE_P(Backends, GroupConformance,
                         ::testing::Values("p256", "modp512"));

TEST(ModpGroupTest, Rfc3526PrimeIsSafePrime) {
  // Validates the hardcoded RFC 3526 group-14 modulus: p prime and
  // (p-1)/2 prime. This is the expensive check that justifies trusting
  // the constant at runtime.
  const GroupPtr g = make_modp_group(ModpGroupId::kRfc3526_2048);
  const Bignum q = g->order();
  EXPECT_EQ(q.bits(), 2047);
  EXPECT_TRUE(q.is_prime());
  const Bignum p = q * Bignum(2) + Bignum(1);
  EXPECT_TRUE(p.is_prime());
}

// ---------------------------------------------------------------------------
// Schnorr signatures.
// ---------------------------------------------------------------------------

class SchnorrTest : public GroupConformance {};

TEST_P(SchnorrTest, SignVerifyRoundTrip) {
  const GroupPtr g = make();
  const SchnorrKeyPair kp = schnorr_keygen(*g);
  const Bytes msg = bytes_of("trace data");
  const SchnorrSignature sig = schnorr_sign(*g, kp.secret, msg);
  EXPECT_TRUE(schnorr_verify(*g, kp.public_key, msg, sig));
}

TEST_P(SchnorrTest, RejectsWrongMessage) {
  const GroupPtr g = make();
  const SchnorrKeyPair kp = schnorr_keygen(*g);
  const SchnorrSignature sig = schnorr_sign(*g, kp.secret, bytes_of("a"));
  EXPECT_FALSE(schnorr_verify(*g, kp.public_key, bytes_of("b"), sig));
}

TEST_P(SchnorrTest, RejectsWrongKey) {
  const GroupPtr g = make();
  const SchnorrKeyPair kp1 = schnorr_keygen(*g);
  const SchnorrKeyPair kp2 = schnorr_keygen(*g);
  const Bytes msg = bytes_of("m");
  const SchnorrSignature sig = schnorr_sign(*g, kp1.secret, msg);
  EXPECT_FALSE(schnorr_verify(*g, kp2.public_key, msg, sig));
}

TEST_P(SchnorrTest, RejectsTamperedSignature) {
  const GroupPtr g = make();
  const SchnorrKeyPair kp = schnorr_keygen(*g);
  const Bytes msg = bytes_of("m");
  SchnorrSignature sig = schnorr_sign(*g, kp.secret, msg);
  sig.response = (sig.response + Bignum(1)).mod(g->order());
  EXPECT_FALSE(schnorr_verify(*g, kp.public_key, msg, sig));
}

TEST_P(SchnorrTest, SerializationRoundTrip) {
  const GroupPtr g = make();
  const SchnorrKeyPair kp = schnorr_keygen(*g);
  const Bytes msg = bytes_of("m");
  const SchnorrSignature sig = schnorr_sign(*g, kp.secret, msg);
  const SchnorrSignature sig2 =
      SchnorrSignature::deserialize(*g, sig.serialize(*g));
  EXPECT_TRUE(schnorr_verify(*g, kp.public_key, msg, sig2));
}

INSTANTIATE_TEST_SUITE_P(Backends, SchnorrTest,
                         ::testing::Values("p256", "modp512"));

}  // namespace
}  // namespace desword
