// End-to-end corrupted-proof hardening (ISSUE satellite): a participant
// whose serialized POC proof arrives bit-flipped (wire corruption or crude
// tampering) must yield a clean verification failure at the proxy — a
// recorded violation plus a reputation penalty — and never an exception
// escaping the session loop.

#include <gtest/gtest.h>

#include <memory>

#include "desword/scenario.h"

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::ProductId;
using supplychain::SupplyChainGraph;

ScenarioConfig fast_config() {
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  return cfg;
}

class CorruptedPocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<Scenario>(SupplyChainGraph::paper_example(),
                                           fast_config());
    products_ = make_products(1, 1000, 8);
    DistributionConfig dist;
    dist.initial = "v0";
    dist.products = products_;
    dist.seed = 42;
    scenario_->run_task("task-1", dist);
  }

  ProductId product_with_path_length(std::size_t min_hops) const {
    for (const ProductId& p : products_) {
      const auto* path = scenario_->path_of(p);
      if (path != nullptr && path->size() >= min_hops) return p;
    }
    throw std::runtime_error("no product with long enough path");
  }

  /// Configures `participant` to bit-flip its serialized proofs for
  /// `product` before sending them.
  void corrupt(const std::string& participant, const ProductId& product) {
    QueryBehavior behavior;
    behavior.corrupt_proof.insert(product);
    scenario_->participant(participant).set_query_behavior(behavior);
  }

  std::unique_ptr<Scenario> scenario_;
  std::vector<ProductId> products_;
};

TEST_F(CorruptedPocTest, GoodQueryCorruptProofPenalizedCleanly) {
  const ProductId product = product_with_path_length(3);
  const auto& path = *scenario_->path_of(product);
  const std::string& cheater = path[1];
  corrupt(cheater, product);

  QueryOutcome outcome;
  // The corrupted proof must be classified inside the protocol: no
  // exception may escape the proxy's session loop into the caller.
  ASSERT_NO_THROW(outcome = scenario_->proxy().run_query(
                      product, ProductQuality::kGood));
  // The proxy records the invalid proof against the corrupting hop...
  EXPECT_TRUE(outcome.has_violation(
      cheater, ViolationType::kClaimProcessingInvalidProof));
  // ...and the double-edged award goes to the penalty edge.
  EXPECT_LT(scenario_->proxy().reputation(cheater), 0.0);
}

TEST_F(CorruptedPocTest, BadQueryCorruptProofPenalizedCleanly) {
  const ProductId product = product_with_path_length(3);
  const auto& path = *scenario_->path_of(product);
  const std::string& cheater = path[1];
  corrupt(cheater, product);

  QueryOutcome outcome;
  ASSERT_NO_THROW(outcome = scenario_->proxy().run_query(
                      product, ProductQuality::kBad));
  // Bad-case scan: the corrupt proof fails verification whichever shape
  // it arrives in (claimed ownership or denial), so the hop is flagged.
  ASSERT_FALSE(outcome.violations.empty());
  bool cheater_flagged = false;
  for (const Violation& v : outcome.violations) {
    if (v.participant == cheater) cheater_flagged = true;
  }
  EXPECT_TRUE(cheater_flagged);
  EXPECT_LT(scenario_->proxy().reputation(cheater), 0.0);
}

TEST_F(CorruptedPocTest, OtherProductsUnaffected) {
  const ProductId corrupted = product_with_path_length(3);
  const std::string& cheater = (*scenario_->path_of(corrupted))[1];
  corrupt(cheater, corrupted);

  // Queries for other products run clean: the deviation is scoped.
  for (const ProductId& p : products_) {
    if (p == corrupted) continue;
    const QueryOutcome outcome =
        scenario_->proxy().run_query(p, ProductQuality::kGood);
    EXPECT_TRUE(outcome.complete);
    EXPECT_TRUE(outcome.violations.empty());
  }
}

}  // namespace
}  // namespace desword::protocol
