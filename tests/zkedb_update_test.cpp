// Incremental ZK-EDB updates: insert/erase recommit only the affected
// path, change the root commitment, and leave the database consistent.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "crypto/hash.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace desword::zkedb {
namespace {

class ZkEdbUpdateTest : public ::testing::TestWithParam<SoftMode> {
 protected:
  void SetUp() override {
    EdbConfig cfg;
    cfg.q = 4;
    cfg.height = 8;
    cfg.rsa_bits = 512;
    cfg.group_name = "p256";
    cfg.soft_mode = GetParam();
    crs_ = generate_crs(cfg);
    std::map<Bytes, Bytes> entries;
    for (int i = 0; i < 3; ++i) {
      entries[key("base-" + std::to_string(i))] = bytes_of("base-value");
    }
    prover_ = std::make_unique<EdbProver>(crs_, entries);
  }

  EdbKey key(const std::string& id) const {
    return key_for_identifier(*crs_, bytes_of(id));
  }

  void expect_member(const EdbKey& k, const Bytes& value) {
    const auto proof = prover_->prove_membership(k);
    const auto got =
        edb_verify_membership(*crs_, prover_->commitment(), k, proof);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
  }

  void expect_non_member(const EdbKey& k) {
    const auto proof = prover_->prove_non_membership(k);
    EXPECT_TRUE(
        edb_verify_non_membership(*crs_, prover_->commitment(), k, proof));
  }

  EdbCrsPtr crs_;
  std::unique_ptr<EdbProver> prover_;
};

TEST_P(ZkEdbUpdateTest, InsertMakesKeyProvable) {
  const EdbKey k = key("new-entry");
  expect_non_member(k);
  const auto old_root = prover_->commitment();

  prover_->insert(k, bytes_of("new-value"));
  EXPECT_NE(prover_->commitment(), old_root);  // commitment changed
  EXPECT_EQ(prover_->size(), 4u);
  expect_member(k, bytes_of("new-value"));
  // Existing entries still prove under the NEW root.
  expect_member(key("base-0"), bytes_of("base-value"));
  expect_non_member(key("still-absent"));
}

TEST_P(ZkEdbUpdateTest, OldProofsRejectedAfterUpdate) {
  const EdbKey base = key("base-0");
  const auto old_proof = prover_->prove_membership(base);
  prover_->insert(key("new-entry"), bytes_of("v"));
  // The old proof chains to the old root; it must fail under the new one.
  EXPECT_FALSE(
      edb_verify_membership(*crs_, prover_->commitment(), base, old_proof)
          .has_value());
}

TEST_P(ZkEdbUpdateTest, EraseMakesKeyDeniable) {
  const EdbKey k = key("base-1");
  const auto old_root = prover_->commitment();
  prover_->erase(k);
  EXPECT_NE(prover_->commitment(), old_root);
  EXPECT_EQ(prover_->size(), 2u);
  expect_non_member(k);
  expect_member(key("base-0"), bytes_of("base-value"));
  expect_member(key("base-2"), bytes_of("base-value"));
}

TEST_P(ZkEdbUpdateTest, EraseToEmptyAndRefill) {
  for (int i = 0; i < 3; ++i) prover_->erase(key("base-" + std::to_string(i)));
  EXPECT_EQ(prover_->size(), 0u);
  expect_non_member(key("base-0"));
  expect_non_member(key("anything"));

  prover_->insert(key("reborn"), bytes_of("v2"));
  expect_member(key("reborn"), bytes_of("v2"));
}

TEST_P(ZkEdbUpdateTest, InsertEraseGuards) {
  EXPECT_THROW(prover_->insert(key("base-0"), bytes_of("dup")),
               ProtocolError);
  EXPECT_THROW(prover_->erase(key("never-there")), ProtocolError);
}

TEST_P(ZkEdbUpdateTest, ManySequentialUpdatesStayConsistent) {
  // Interleaved inserts and erases; verify the final state exhaustively.
  for (int i = 0; i < 8; ++i) {
    prover_->insert(key("bulk-" + std::to_string(i)),
                    bytes_of("v" + std::to_string(i)));
  }
  for (int i = 0; i < 8; i += 2) {
    prover_->erase(key("bulk-" + std::to_string(i)));
  }
  for (int i = 0; i < 8; ++i) {
    const EdbKey k = key("bulk-" + std::to_string(i));
    if (i % 2 == 0) {
      expect_non_member(k);
    } else {
      expect_member(k, bytes_of("v" + std::to_string(i)));
    }
  }
}

TEST_P(ZkEdbUpdateTest, UpdatedProverSurvivesPersistence) {
  prover_->insert(key("added"), bytes_of("av"));
  prover_->erase(key("base-0"));
  const Bytes state = prover_->serialize_state();
  EdbProver reloaded = EdbProver::load(crs_, state);
  EXPECT_EQ(reloaded.commitment(), prover_->commitment());
  const auto proof = reloaded.prove_membership(key("added"));
  EXPECT_TRUE(edb_verify_membership(*crs_, prover_->commitment(),
                                    key("added"), proof)
                  .has_value());
}

INSTANTIATE_TEST_SUITE_P(SoftModes, ZkEdbUpdateTest,
                         ::testing::Values(SoftMode::kShared,
                                           SoftMode::kPerChild));

}  // namespace
}  // namespace desword::zkedb
