#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/hash.h"
#include "mercurial/tmc.h"

namespace desword::mercurial {
namespace {

Bytes msg16(const char* s) { return hash_to_128("test-msg", {bytes_of(s)}); }

class TmcTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    const std::string which = GetParam();
    group_ = (which == std::string("p256"))
                 ? make_p256_group()
                 : make_modp_group(ModpGroupId::kTest512);
    keys_ = TmcScheme::keygen(group_);
    scheme_ = std::make_unique<TmcScheme>(group_, keys_.pk);
  }

  GroupPtr group_;
  TmcKeyPair keys_{TmcPublicKey{}, Bignum()};
  std::unique_ptr<TmcScheme> scheme_;
};

TEST_P(TmcTest, HardCommitOpenVerify) {
  const Bytes m = msg16("hello");
  const auto [com, dec] = scheme_->hard_commit(m);
  const TmcOpening op = scheme_->hard_open(dec);
  EXPECT_TRUE(scheme_->verify_open(com, op));
  EXPECT_EQ(op.message, m);
}

TEST_P(TmcTest, HardCommitTeaseVerify) {
  const Bytes m = msg16("hello");
  const auto [com, dec] = scheme_->hard_commit(m);
  const TmcTease t = scheme_->tease_hard(dec);
  EXPECT_TRUE(scheme_->verify_tease(com, t));
  EXPECT_EQ(t.message, m);
}

TEST_P(TmcTest, OpenRejectsWrongMessage) {
  const auto [com, dec] = scheme_->hard_commit(msg16("real"));
  TmcOpening op = scheme_->hard_open(dec);
  op.message = msg16("fake");
  EXPECT_FALSE(scheme_->verify_open(com, op));
}

TEST_P(TmcTest, TeaseRejectsWrongMessage) {
  const auto [com, dec] = scheme_->hard_commit(msg16("real"));
  TmcTease t = scheme_->tease_hard(dec);
  t.message = msg16("fake");
  EXPECT_FALSE(scheme_->verify_tease(com, t));
}

TEST_P(TmcTest, OpenRejectsWrongCommitment) {
  const auto [com1, dec1] = scheme_->hard_commit(msg16("a"));
  const auto [com2, dec2] = scheme_->hard_commit(msg16("b"));
  EXPECT_FALSE(scheme_->verify_open(com2, scheme_->hard_open(dec1)));
}

TEST_P(TmcTest, SoftCommitTeasesToAnything) {
  const auto [com, dec] = scheme_->soft_commit();
  for (const char* s : {"x", "y", "z"}) {
    const TmcTease t = scheme_->tease_soft(dec, msg16(s));
    EXPECT_TRUE(scheme_->verify_tease(com, t)) << s;
  }
}

TEST_P(TmcTest, SoftCommitCannotBeHardOpened) {
  // The only hard-opening data a soft committer could plausibly present is
  // (m, τ, r1') for guesses of r1'; verify_open must reject because
  // C1 = g^{r1} is not a known power of h. We check the natural cheats.
  const auto [com, dec] = scheme_->soft_commit();
  const Bytes m = msg16("forged");
  const TmcTease t = scheme_->tease_soft(dec, m);
  // Cheat 1: present the tease transcript as an opening with r1 = soft r1.
  TmcOpening cheat1{m, t.tau, dec.r1};
  EXPECT_FALSE(scheme_->verify_open(com, cheat1));
  // Cheat 2: r0/r1 straight from the soft decommitment.
  TmcOpening cheat2{m, dec.r0, dec.r1};
  EXPECT_FALSE(scheme_->verify_open(com, cheat2));
}

TEST_P(TmcTest, NullMessageSupported) {
  // The ZK-EDB teases fabricated leaves to the all-zero null message; the
  // zero scalar must round-trip through commit/open/tease on every backend.
  const Bytes null_msg = null_message();
  const auto [hcom, hdec] = scheme_->hard_commit(null_msg);
  EXPECT_TRUE(scheme_->verify_open(hcom, scheme_->hard_open(hdec)));
  EXPECT_TRUE(scheme_->verify_tease(hcom, scheme_->tease_hard(hdec)));

  const auto [scom, sdec] = scheme_->soft_commit();
  const TmcTease t = scheme_->tease_soft(sdec, null_msg);
  EXPECT_TRUE(scheme_->verify_tease(scom, t));
  // And a null tease must not verify against a non-null hard commitment.
  const auto [hcom2, hdec2] = scheme_->hard_commit(msg16("real"));
  TmcTease cheat = scheme_->tease_hard(hdec2);
  cheat.message = null_msg;
  EXPECT_FALSE(scheme_->verify_tease(hcom2, cheat));
}

TEST_P(TmcTest, HardAndSoftCommitmentsLookAlike) {
  // Indistinguishability smoke test: same serialized size, valid elements.
  const auto [hcom, hdec] = scheme_->hard_commit(msg16("m"));
  const auto [scom, sdec] = scheme_->soft_commit();
  EXPECT_EQ(hcom.serialize().size(), scom.serialize().size());
}

TEST_P(TmcTest, CommitmentsAreRandomized) {
  const Bytes m = msg16("same message");
  const auto [com1, dec1] = scheme_->hard_commit(m);
  const auto [com2, dec2] = scheme_->hard_commit(m);
  EXPECT_NE(com1, com2);
}

TEST_P(TmcTest, SerializationRoundTrips) {
  const auto [com, dec] = scheme_->hard_commit(msg16("m"));
  const TmcCommitment com2 =
      TmcCommitment::deserialize(*group_, com.serialize());
  EXPECT_EQ(com, com2);

  const TmcOpening op = scheme_->hard_open(dec);
  const TmcOpening op2 =
      TmcOpening::deserialize(*group_, op.serialize(*group_));
  EXPECT_TRUE(scheme_->verify_open(com2, op2));

  const TmcTease t = scheme_->tease_hard(dec);
  const TmcTease t2 = TmcTease::deserialize(*group_, t.serialize(*group_));
  EXPECT_TRUE(scheme_->verify_tease(com2, t2));
}

TEST_P(TmcTest, PublicKeySerializationRoundTrip) {
  const Bytes ser = keys_.pk.serialize();
  const TmcPublicKey pk2 = TmcPublicKey::deserialize(*group_, ser);
  EXPECT_EQ(pk2.g, keys_.pk.g);
  EXPECT_EQ(pk2.h, keys_.pk.h);
}

TEST_P(TmcTest, TrapdoorEquivocation) {
  // The simulator (holding the trapdoor) can produce a commitment it later
  // hard-opens to arbitrary messages — this is the ZK property, and the
  // reason the trapdoor must remain with the CRS generator.
  const auto [com, dec] = scheme_->fake_commit(keys_.trapdoor);
  const TmcOpening op1 = scheme_->fake_open(dec, keys_.trapdoor, msg16("a"));
  const TmcOpening op2 = scheme_->fake_open(dec, keys_.trapdoor, msg16("b"));
  EXPECT_TRUE(scheme_->verify_open(com, op1));
  EXPECT_TRUE(scheme_->verify_open(com, op2));
  EXPECT_NE(op1.message, op2.message);
}

TEST_P(TmcTest, OpeningBitFlipFuzz) {
  const auto [com, dec] = scheme_->hard_commit(msg16("fuzz"));
  const TmcOpening op = scheme_->hard_open(dec);
  const Bytes ser = op.serialize(*group_);
  ASSERT_TRUE(scheme_->verify_open(com, op));
  // Flip each byte once; the proof must either fail to parse or fail to
  // verify — never verify with altered content.
  for (std::size_t i = 0; i < ser.size(); ++i) {
    Bytes mutated = ser;
    mutated[i] ^= 0x01;
    try {
      const TmcOpening bad = TmcOpening::deserialize(*group_, mutated);
      EXPECT_FALSE(scheme_->verify_open(com, bad)) << "byte " << i;
    } catch (const Error&) {
      // rejected at parse time: fine
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TmcTest,
                         ::testing::Values("p256", "modp512"));

}  // namespace
}  // namespace desword::mercurial
