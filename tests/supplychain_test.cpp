#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "supplychain/distribution.h"
#include "supplychain/graph.h"
#include "supplychain/rfid.h"
#include "supplychain/trace.h"

namespace desword::supplychain {
namespace {

TEST(EpcTest, MakeAndValidate) {
  const ProductId id = make_epc(42, 7, 1001);
  EXPECT_EQ(id.size(), kEpcBytes);
  EXPECT_TRUE(epc_valid(id));
  EXPECT_FALSE(epc_valid(Bytes{1, 2, 3}));
  EXPECT_NE(make_epc(42, 7, 1001), make_epc(42, 7, 1002));
  EXPECT_EQ(make_epc(42, 7, 1001), make_epc(42, 7, 1001));
}

TEST(EpcTest, FieldLimitsEnforced) {
  EXPECT_THROW(make_epc(1, 0x1000000, 1), Error);
  EXPECT_THROW(make_epc(1, 1, 0x100000000ULL), Error);
}

TEST(EpcTest, ToStringIsHex) {
  const ProductId id = make_epc(1, 1, 1);
  EXPECT_EQ(epc_to_string(id).substr(0, 4), "epc:");
}

TEST(RfidTagTest, UserBankBounds) {
  RfidTag tag(make_epc(1, 1, 1));
  tag.write_user_bank(bytes_of("lot=7"));
  EXPECT_EQ(string_of(tag.user_bank()), "lot=7");
  EXPECT_THROW(tag.write_user_bank(Bytes(100, 0)), Error);
}

TEST(RfidTagTest, RejectsInvalidEpc) {
  EXPECT_THROW(RfidTag(Bytes{1, 2}), Error);
}

TEST(RfidReaderTest, PerfectReaderSeesEverything) {
  std::vector<RfidTag> tags;
  for (std::uint64_t i = 0; i < 10; ++i) tags.emplace_back(make_epc(1, 1, i));
  RfidReader reader("r1");
  EXPECT_EQ(reader.inventory_round(tags).size(), 10u);
  EXPECT_EQ(reader.inventory_all(tags).size(), 10u);
}

TEST(RfidReaderTest, LossyReaderConvergesWithRetries) {
  std::vector<RfidTag> tags;
  for (std::uint64_t i = 0; i < 50; ++i) tags.emplace_back(make_epc(1, 1, i));
  RfidReader reader("r1", /*miss_rate=*/0.5, /*seed=*/7);
  const auto all = reader.inventory_all(tags, /*max_rounds=*/64);
  EXPECT_EQ(all.size(), 50u);
  EXPECT_GT(reader.total_reads(), 50u);  // needed more than one round
}

TEST(RfidReaderTest, ReadTagRespectsMissRate) {
  RfidTag tag(make_epc(1, 1, 1));
  RfidReader lossy("r", 0.9, 3);
  int seen = 0;
  for (int i = 0; i < 200; ++i) {
    if (lossy.read_tag(tag).has_value()) ++seen;
  }
  EXPECT_GT(seen, 0);
  EXPECT_LT(seen, 100);
}

TEST(RfidReaderTest, InvalidMissRateRejected) {
  EXPECT_THROW(RfidReader("r", 1.0), Error);
  EXPECT_THROW(RfidReader("r", -0.1), Error);
}

TEST(TraceTest, SerializationRoundTrip) {
  TraceInfo info;
  info.participant = "v2";
  info.operation = "process";
  info.timestamp = 17;
  info.ingredients = {"paracetamol", "starch"};
  info.parameters = {"temp=20C"};
  const TraceInfo info2 = TraceInfo::deserialize(info.serialize());
  EXPECT_EQ(info, info2);

  RfidTrace trace{make_epc(1, 1, 5), info};
  const RfidTrace trace2 = RfidTrace::deserialize(trace.serialize());
  EXPECT_EQ(trace, trace2);
}

TEST(TraceTest, SerializationIsDeterministic) {
  TraceInfo info;
  info.participant = "v1";
  info.operation = "ship";
  EXPECT_EQ(info.serialize(), info.serialize());
}

TEST(TraceDatabaseTest, RecordFindRemove) {
  TraceDatabase db;
  const ProductId id = make_epc(1, 1, 9);
  EXPECT_FALSE(db.has(id));
  db.record(RfidTrace{id, TraceInfo{"v1", "manufacture", 0, {}, {}}});
  EXPECT_TRUE(db.has(id));
  ASSERT_NE(db.find(id), nullptr);
  EXPECT_EQ(db.find(id)->da.operation, "manufacture");
  EXPECT_EQ(db.size(), 1u);
  db.remove(id);
  EXPECT_FALSE(db.has(id));
}

TEST(TraceDatabaseTest, PocInputMatchesTraces) {
  TraceDatabase db;
  const ProductId a = make_epc(1, 1, 1);
  const ProductId b = make_epc(1, 1, 2);
  db.record(RfidTrace{a, TraceInfo{"v1", "m", 0, {}, {}}});
  db.record(RfidTrace{b, TraceInfo{"v1", "m", 1, {}, {}}});
  const auto input = db.as_poc_input();
  ASSERT_EQ(input.size(), 2u);
  EXPECT_EQ(input.at(a), db.find(a)->da.serialize());
}

TEST(GraphTest, PaperExampleShape) {
  const SupplyChainGraph g = SupplyChainGraph::paper_example();
  EXPECT_EQ(g.participant_count(), 10u);
  const auto initials = g.initial_participants();
  EXPECT_EQ(initials, (std::vector<ParticipantId>{"v0", "v1"}));
  const auto leaves = g.leaf_participants();
  EXPECT_EQ(leaves, (std::vector<ParticipantId>{"v5", "v7", "v8", "v9"}));
  EXPECT_TRUE(g.has_edge("v0", "v2"));
  EXPECT_TRUE(g.has_edge("v2", "v5"));
}

TEST(GraphTest, CycleRejected) {
  SupplyChainGraph g;
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  EXPECT_THROW(g.add_edge("c", "a"), Error);
  EXPECT_THROW(g.add_edge("a", "a"), Error);
}

TEST(GraphTest, DynamicUpdates) {
  SupplyChainGraph g;
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  EXPECT_TRUE(g.has_edge("a", "b"));
  g.remove_edge("a", "b");
  EXPECT_FALSE(g.has_edge("a", "b"));
  EXPECT_THROW(g.remove_edge("a", "b"), Error);
  g.remove_participant("b");
  EXPECT_FALSE(g.has_participant("b"));
  EXPECT_TRUE(g.has_participant("c"));
  EXPECT_THROW(g.remove_participant("zz"), Error);
}

TEST(GraphTest, InitialAndLeafClassification) {
  SupplyChainGraph g;
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  EXPECT_TRUE(g.is_initial("a"));
  EXPECT_FALSE(g.is_initial("b"));
  EXPECT_TRUE(g.is_leaf("c"));
  EXPECT_FALSE(g.is_leaf("b"));
}

TEST(GraphTest, LayeredGenerator) {
  const SupplyChainGraph g = SupplyChainGraph::layered(4, 3, 2);
  EXPECT_EQ(g.participant_count(), 12u);
  EXPECT_EQ(g.initial_participants().size(), 3u);
  EXPECT_EQ(g.leaf_participants().size(), 3u);
  EXPECT_THROW(SupplyChainGraph::layered(1, 3, 2), Error);
}

class DistributionTest : public ::testing::Test {
 protected:
  SupplyChainGraph graph_ = SupplyChainGraph::paper_example();
};

TEST_F(DistributionTest, PathsFollowGraphEdges) {
  DistributionConfig cfg;
  cfg.initial = "v0";
  cfg.products = make_products(1, 100, 8);
  cfg.seed = 3;
  const DistributionResult result = run_distribution(graph_, cfg);
  ASSERT_EQ(result.paths.size(), 8u);
  for (const auto& [id, path] : result.paths) {
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), "v0");
    EXPECT_TRUE(graph_.is_leaf(path.back()));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(graph_.has_edge(path[i], path[i + 1]))
          << path[i] << "->" << path[i + 1];
    }
  }
}

TEST_F(DistributionTest, TracesRecordedAlongPath) {
  DistributionConfig cfg;
  cfg.initial = "v0";
  cfg.products = make_products(1, 100, 8);
  const DistributionResult result = run_distribution(graph_, cfg);
  for (const auto& [id, path] : result.paths) {
    for (const auto& hop : path) {
      const TraceDatabase& db = result.databases.at(hop);
      ASSERT_TRUE(db.has(id)) << hop;
      EXPECT_EQ(db.find(id)->da.participant, hop);
    }
  }
}

TEST_F(DistributionTest, UsedEdgesAreGraphEdges) {
  DistributionConfig cfg;
  cfg.initial = "v1";
  cfg.products = make_products(2, 0, 16);
  const DistributionResult result = run_distribution(graph_, cfg);
  for (const auto& [parent, children] : result.used_edges) {
    for (const auto& child : children) {
      EXPECT_TRUE(graph_.has_edge(parent, child));
    }
  }
}

TEST_F(DistributionTest, DeterministicUnderSeed) {
  DistributionConfig cfg;
  cfg.initial = "v0";
  cfg.products = make_products(1, 0, 10);
  cfg.seed = 99;
  const DistributionResult r1 = run_distribution(graph_, cfg);
  const DistributionResult r2 = run_distribution(graph_, cfg);
  EXPECT_EQ(r1.paths, r2.paths);
}

TEST_F(DistributionTest, RejectsBadInputs) {
  DistributionConfig cfg;
  cfg.initial = "v5";  // leaf, not initial
  cfg.products = make_products(1, 0, 2);
  EXPECT_THROW(run_distribution(graph_, cfg), Error);
  cfg.initial = "nope";
  EXPECT_THROW(run_distribution(graph_, cfg), Error);
  cfg.initial = "v0";
  cfg.products.push_back(cfg.products.front());  // duplicate
  EXPECT_THROW(run_distribution(graph_, cfg), Error);
}

TEST_F(DistributionTest, LossyReadersStillRecordEverything) {
  DistributionConfig cfg;
  cfg.initial = "v0";
  cfg.products = make_products(1, 0, 12);
  cfg.reader_miss_rate = 0.3;
  const DistributionResult result = run_distribution(graph_, cfg);
  for (const auto& [id, path] : result.paths) {
    for (const auto& hop : path) {
      EXPECT_TRUE(result.databases.at(hop).has(id));
    }
  }
}

TEST(MakeProductsTest, CountAndUniqueness) {
  const auto products = make_products(7, 1000, 20);
  EXPECT_EQ(products.size(), 20u);
  const std::set<ProductId> unique(products.begin(), products.end());
  EXPECT_EQ(unique.size(), 20u);
}

}  // namespace
}  // namespace desword::supplychain
