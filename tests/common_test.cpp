#include <gtest/gtest.h>

#include <stdexcept>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/serial.h"

namespace desword {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
  EXPECT_EQ(from_hex("0001ABFF7E"), data);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, StringRoundTrip) {
  const Bytes b = bytes_of("hello");
  EXPECT_EQ(string_of(b), "hello");
}

TEST(BytesTest, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = concat({a, b});
  EXPECT_EQ(c, (Bytes{1, 2, 3}));
}

TEST(BytesTest, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, Bytes{1, 2}));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(BytesTest, Be64RoundTrip) {
  const std::uint64_t v = 0x0123456789abcdefULL;
  EXPECT_EQ(read_be64(be64(v)), v);
  EXPECT_EQ(be64(0), Bytes(8, 0));
  EXPECT_THROW(read_be64(Bytes{1, 2}), std::invalid_argument);
}

TEST(SerialTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  w.boolean(true);
  w.boolean(false);
  const Bytes buf = w.take();

  BinaryReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(SerialTest, VarintBoundaries) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                          0xffffffffULL, ~0ULL}) {
    BinaryWriter w;
    w.varint(v);
    BinaryReader r(w.view());
    EXPECT_EQ(r.varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(SerialTest, BytesAndStrings) {
  BinaryWriter w;
  w.bytes(Bytes{9, 8, 7});
  w.str("desword");
  w.bytes({});
  const Bytes buf = w.take();

  BinaryReader r(buf);
  EXPECT_EQ(r.bytes(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.str(), "desword");
  EXPECT_TRUE(r.bytes().empty());
  r.expect_done();
}

TEST(SerialTest, TruncationThrows) {
  BinaryWriter w;
  w.u32(42);
  Bytes buf = w.take();
  buf.pop_back();
  BinaryReader r(buf);
  EXPECT_THROW(r.u32(), SerializationError);
}

TEST(SerialTest, LengthPrefixBeyondBufferThrows) {
  BinaryWriter w;
  w.varint(1000);  // claims a 1000-byte string
  Bytes buf = w.take();
  buf.push_back(1);
  BinaryReader r(buf);
  EXPECT_THROW(r.bytes(), SerializationError);
}

TEST(SerialTest, TrailingBytesDetected) {
  BinaryWriter w;
  w.u8(1);
  w.u8(2);
  BinaryReader r(w.view());
  r.u8();
  EXPECT_THROW(r.expect_done(), SerializationError);
}

TEST(SerialTest, BadBooleanThrows) {
  const Bytes buf = {7};
  BinaryReader r(buf);
  EXPECT_THROW(r.boolean(), SerializationError);
}

TEST(RngTest, RandomBytesDistinct) {
  const Bytes a = random_bytes(32);
  const Bytes b = random_bytes(32);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, b);  // probability 2^-256 of flaking
}

TEST(RngTest, SimRngDeterministic) {
  SimRng r1(42);
  SimRng r2(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r1.next(), r2.next());
}

TEST(RngTest, SimRngBelowInRange) {
  SimRng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(RngTest, SimRngUniformInUnitInterval) {
  SimRng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, SimRngChanceExtremes) {
  SimRng r(1);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(RngTest, SimRngBytesDeterministic) {
  SimRng a(5);
  SimRng b(5);
  EXPECT_EQ(a.bytes(33), b.bytes(33));
  EXPECT_EQ(a.bytes(10).size(), 10u);
}

}  // namespace
}  // namespace desword
