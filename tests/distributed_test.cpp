// End-to-end distributed deployment test: runs the proxy and participants
// as separate OS processes (the real `desword` CLI binary) speaking the
// TCP SocketTransport on loopback, then drives distribution, a good and a
// bad product query, the audit report, and an orderly shutdown through the
// `desword query` client.
//
// The CLI binary path is injected at compile time (DESWORD_CLI_PATH).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace desword {
namespace {

std::string read_text(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Forks and execs the CLI with `args`, stdout+stderr appended to
/// `log_path`. Returns the child pid.
pid_t spawn_cli(const std::vector<std::string>& args,
                const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child.
  const int fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    ::close(fd);
  }
  std::vector<char*> argv;
  std::string bin = DESWORD_CLI_PATH;
  argv.push_back(bin.data());
  std::vector<std::string> copy = args;
  for (std::string& a : copy) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(bin.c_str(), argv.data());
  ::_exit(127);
}

/// Waits for `pid` with a deadline; SIGKILLs and returns -1 on timeout,
/// else the exit status (as from waitpid).
int wait_with_timeout(pid_t pid, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return status;
    if (got < 0) return -1;  // already reaped / no such child
    ::usleep(50 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return -1;
}

/// Runs a blocking CLI command to completion; returns its exit code and
/// fills `output` with everything it printed.
int run_cli(const std::vector<std::string>& args, const std::string& log_path,
            std::string* output, int timeout_ms = 120000) {
  const pid_t pid = spawn_cli(args, log_path);
  const int status = wait_with_timeout(pid, timeout_ms);
  if (output != nullptr) *output = read_text(log_path);
  if (status < 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/desword-dist-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    plan_ = dir_ + "/plan.json";
  }

  void TearDown() override {
    for (const pid_t pid : daemons_) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }

  std::string log(const std::string& name) const {
    return dir_ + "/" + name + ".log";
  }

  std::string dir_;
  std::string plan_;
  std::vector<pid_t> daemons_;
};

TEST_F(DistributedTest, FullDeploymentOverTcpLoopback) {
  // 1. Plan: 4 participants in a chain, 2 products, ground truth recorded.
  std::string out;
  ASSERT_EQ(run_cli({"plan", "--out", plan_, "--addr-dir", dir_ + "/addr",
                     "--participants", "4", "--products", "2"},
                    log("plan"), &out), 0)
      << out;
  const json::Value plan = json::parse(read_text(plan_));
  const auto& products = plan.at("task").at("products").as_array();
  ASSERT_EQ(products.size(), 2u);
  const std::string good_product = products[0].as_string();
  const std::string bad_product = products[1].as_string();

  std::vector<std::string> participant_ids;
  for (const json::Value& p : plan.at("participants").as_array()) {
    participant_ids.push_back(p.at("id").as_string());
  }
  ASSERT_EQ(participant_ids.size(), 4u);

  // 2. Spawn the proxy (dumping an observability snapshot on exit) and one
  //    daemon per participant.
  const std::string stats_path = dir_ + "/proxy-stats.json";
  daemons_.push_back(spawn_cli(
      {"serve-proxy", "--plan", plan_, "--stats-json", stats_path},
      log("proxy")));
  for (const std::string& id : participant_ids) {
    daemons_.push_back(spawn_cli(
        {"serve-participant", "--plan", plan_, "--id", id}, log(id)));
  }

  // 3. Distribution phase runs across the processes; wait until the POC
  //    list landed at the proxy.
  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--wait-ready", "60000"},
                    log("wait"), &out), 0)
      << out;

  // 4. Good-product query: full verified path, +1 for every hop.
  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--product", good_product,
                     "--quality", "good"},
                    log("good"), &out), 0)
      << out;
  {
    const json::Value outcome = json::parse(out);
    EXPECT_TRUE(outcome.at("complete").as_bool());
    std::vector<std::string> path;
    for (const json::Value& hop : outcome.at("path").as_array()) {
      path.push_back(hop.as_string());
    }
    // Ground truth from the plan: the product's recorded distribution path.
    std::vector<std::string> expected;
    for (const json::Value& pj : plan.at("paths").as_array()) {
      if (pj.at("product").as_string() != good_product) continue;
      for (const json::Value& hop : pj.at("path").as_array()) {
        expected.push_back(hop.as_string());
      }
    }
    EXPECT_EQ(path, expected);
    EXPECT_EQ(outcome.at("violations").as_array().size(), 0u);
    for (const std::string& id : participant_ids) {
      EXPECT_DOUBLE_EQ(outcome.at("reputation").at(id).as_double(), 1.0)
          << id;
    }
  }

  // 5. Bad-product query: double-edged penalty, every hop at +1-2 = -1.
  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--product", bad_product,
                     "--quality", "bad"},
                    log("bad"), &out), 0)
      << out;
  {
    const json::Value outcome = json::parse(out);
    EXPECT_TRUE(outcome.at("complete").as_bool());
    for (const std::string& id : participant_ids) {
      EXPECT_DOUBLE_EQ(outcome.at("reputation").at(id).as_double(), -1.0)
          << id;
    }
  }

  // 6. The audit report records both queries and all ledger events.
  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--report", "-"},
                    log("report"), &out), 0)
      << out;
  {
    const json::Value report = json::parse(out);
    EXPECT_EQ(report.at("queries").as_array().size(), 2u);
    EXPECT_EQ(report.at("events").as_array().size(),
              2 * participant_ids.size());
  }

  // 7. `desword stats` pulls a live observability snapshot from the proxy:
  //    metrics drove real work, and each query left a full trace.
  ASSERT_EQ(run_cli({"stats", "--plan", plan_}, log("stats"), &out), 0)
      << out;
  {
    const json::Value stats = json::parse(out);
    EXPECT_GT(
        stats.at("metrics").at("zkedb.verify.wall_ms").at("count").as_int(),
        0);
    EXPECT_EQ(stats.at("traces").as_array().size(), 2u);
    EXPECT_FALSE(stats.at("reputation").as_object().empty());
  }
  //    Participants answer too, with their local proof/cache stats.
  ASSERT_EQ(run_cli({"stats", "--plan", plan_, "--node", participant_ids[0]},
                    log("stats-v"), &out), 0)
      << out;
  {
    const json::Value stats = json::parse(out);
    EXPECT_TRUE(stats.has("metrics"));
    EXPECT_GT(stats.at("participant").at("proofs_generated").as_int(), 0);
  }

  // 8. Orderly shutdown: every daemon exits 0 on its own.
  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--shutdown", "all"},
                    log("shutdown"), &out), 0)
      << out;
  for (const pid_t pid : daemons_) {
    const int status = wait_with_timeout(pid, 30000);
    ASSERT_GE(status, 0) << "daemon did not exit after shutdown";
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << read_text(log("proxy")) << read_text(log("v0"));
  }
  daemons_.clear();

  // 9. The proxy dumped its final snapshot on exit (--stats-json).
  const std::string dumped = read_text(stats_path);
  ASSERT_FALSE(dumped.empty()) << "no stats dump at " << stats_path;
  const json::Value snapshot = json::parse(dumped);
  EXPECT_TRUE(snapshot.has("metrics"));
  EXPECT_TRUE(snapshot.has("traces"));
}

TEST_F(DistributedTest, ConcurrentClientsAgainstMultithreadedDaemons) {
  // Same deployment shape, but the daemons run with crypto worker threads
  // (--workers) and the proxy admits several sessions at once
  // (--query-concurrency); four client processes then query concurrently.
  std::string out;
  ASSERT_EQ(run_cli({"plan", "--out", plan_, "--addr-dir", dir_ + "/addr",
                     "--participants", "4", "--products", "4"},
                    log("plan"), &out), 0)
      << out;
  const json::Value plan = json::parse(read_text(plan_));
  std::vector<std::string> products;
  for (const json::Value& p : plan.at("task").at("products").as_array()) {
    products.push_back(p.as_string());
  }
  ASSERT_EQ(products.size(), 4u);
  std::vector<std::string> participant_ids;
  for (const json::Value& p : plan.at("participants").as_array()) {
    participant_ids.push_back(p.at("id").as_string());
  }

  daemons_.push_back(spawn_cli({"serve-proxy", "--plan", plan_, "--workers",
                                "4", "--query-concurrency", "8"},
                               log("proxy")));
  for (const std::string& id : participant_ids) {
    daemons_.push_back(spawn_cli(
        {"serve-participant", "--plan", plan_, "--id", id, "--workers", "2"},
        log(id)));
  }
  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--wait-ready", "60000"},
                    log("wait"), &out), 0)
      << out;

  // Fire all four good-product queries at once, then reap.
  std::vector<pid_t> clients;
  for (std::size_t i = 0; i < products.size(); ++i) {
    clients.push_back(spawn_cli({"query", "--plan", plan_, "--product",
                                 products[i], "--quality", "good"},
                                log("client-" + std::to_string(i))));
  }
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int status = wait_with_timeout(clients[i], 120000);
    ASSERT_GE(status, 0) << "client " << i << " timed out";
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0)
        << read_text(log("client-" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < products.size(); ++i) {
    const json::Value outcome =
        json::parse(read_text(log("client-" + std::to_string(i))));
    EXPECT_TRUE(outcome.at("complete").as_bool()) << "query " << i;
    EXPECT_EQ(outcome.at("path").as_array().size(), participant_ids.size());
    EXPECT_EQ(outcome.at("violations").as_array().size(), 0u);
  }

  // Every hop earned +1 per good query: serial-equivalent reputation.
  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--report", "-"},
                    log("report"), &out), 0)
      << out;
  const json::Value report = json::parse(out);
  EXPECT_EQ(report.at("queries").as_array().size(), products.size());
  for (const std::string& id : participant_ids) {
    EXPECT_DOUBLE_EQ(report.at("reputation").at(id).as_double(),
                     static_cast<double>(products.size()))
        << id;
  }

  ASSERT_EQ(run_cli({"query", "--plan", plan_, "--shutdown", "all"},
                    log("shutdown"), &out), 0)
      << out;
  for (const pid_t pid : daemons_) {
    const int status = wait_with_timeout(pid, 30000);
    ASSERT_GE(status, 0) << "daemon did not exit after shutdown";
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << read_text(log("proxy"));
  }
  daemons_.clear();
}

}  // namespace
}  // namespace desword
