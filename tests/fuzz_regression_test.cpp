// Corpus-replay regression test: feeds every checked-in fuzz corpus input
// through the same harness bodies the libFuzzer executables use, so tier-1
// ctest exercises the whole corpus on every run without requiring
// libFuzzer/Clang. A crash or unexpected exception here is exactly what
// the fuzzers would report in CI.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <vector>

#include "common/bytes.h"
#include "fuzz/harnesses.h"

namespace fs = std::filesystem;

#ifndef DESWORD_FUZZ_CORPUS_DIR
#error "DESWORD_FUZZ_CORPUS_DIR must point at fuzz/corpus"
#endif

namespace {

using Harness = std::function<int(const std::uint8_t*, std::size_t)>;

std::vector<fs::path> corpus_files(const std::string& harness) {
  const fs::path dir = fs::path(DESWORD_FUZZ_CORPUS_DIR) / harness;
  std::vector<fs::path> files;
  if (fs::is_directory(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

desword::Bytes slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return desword::Bytes((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
}

void replay(const std::string& name, const Harness& harness,
            std::size_t min_inputs) {
  const std::vector<fs::path> files = corpus_files(name);
  // The corpus is checked in; a shrinking corpus means inputs were lost,
  // not that the decoder got safer.
  ASSERT_GE(files.size(), min_inputs)
      << "corpus for '" << name << "' is missing inputs — regenerate with "
      << "desword_gen_corpus or restore fuzz/corpus/" << name;
  for (const fs::path& file : files) {
    const desword::Bytes input = slurp(file);
    SCOPED_TRACE(file.filename().string());
    // Harnesses classify malformed input internally; any exception that
    // escapes (or a crash) is a finding.
    EXPECT_NO_THROW(harness(input.data(), input.size()));
  }
}

TEST(FuzzRegression, Serial) {
  replay("serial", desword::fuzz::run_serial, 20);
}

TEST(FuzzRegression, Wire) { replay("wire", desword::fuzz::run_wire, 20); }

TEST(FuzzRegression, Messages) {
  replay("messages", desword::fuzz::run_messages, 20);
}

TEST(FuzzRegression, Persist) {
  replay("persist", desword::fuzz::run_persist, 20);
}

// The harnesses must also tolerate the degenerate empty input (libFuzzer
// always starts there).
TEST(FuzzRegression, EmptyInput) {
  EXPECT_EQ(0, desword::fuzz::run_serial(nullptr, 0));
  EXPECT_EQ(0, desword::fuzz::run_wire(nullptr, 0));
  EXPECT_EQ(0, desword::fuzz::run_messages(nullptr, 0));
  EXPECT_EQ(0, desword::fuzz::run_persist(nullptr, 0));
}

}  // namespace
