#include <gtest/gtest.h>

#include "poc/poc.h"
#include "poc/poc_list.h"
#include "supplychain/rfid.h"

namespace desword::poc {
namespace {

zkedb::EdbConfig test_config() {
  zkedb::EdbConfig cfg;
  cfg.q = 4;
  cfg.height = 6;
  cfg.rsa_bits = 512;
  cfg.group_name = "p256";
  return cfg;
}

class PocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crs_ = ps_gen(test_config());
    scheme_ = std::make_unique<PocScheme>(crs_);
    traces_[supplychain::make_epc(1, 1, 1)] = bytes_of("da-1");
    traces_[supplychain::make_epc(1, 1, 2)] = bytes_of("da-2");
    traces_[supplychain::make_epc(1, 1, 3)] = bytes_of("da-3");
    auto [poc, dpoc] = scheme_->aggregate("v2", traces_);
    poc_ = poc;
    dpoc_ = std::move(dpoc);
  }

  zkedb::EdbCrsPtr crs_;
  std::unique_ptr<PocScheme> scheme_;
  std::map<Bytes, Bytes> traces_;
  Poc poc_;
  std::unique_ptr<PocDecommitment> dpoc_;
};

TEST_F(PocTest, OwnershipProofRecoversTrace) {
  const Bytes id = supplychain::make_epc(1, 1, 2);
  const PocProof proof = scheme_->prove(*dpoc_, id);
  EXPECT_TRUE(proof.ownership);
  const PocVerifyResult result = scheme_->verify(poc_, id, proof);
  ASSERT_EQ(result.verdict, PocVerdict::kTrace);
  EXPECT_EQ(*result.trace_info, bytes_of("da-2"));
}

TEST_F(PocTest, NonOwnershipProofForUnknownProduct) {
  const Bytes id = supplychain::make_epc(9, 9, 9);
  const PocProof proof = scheme_->prove(*dpoc_, id);
  EXPECT_FALSE(proof.ownership);
  EXPECT_EQ(scheme_->verify(poc_, id, proof).verdict, PocVerdict::kValid);
}

TEST_F(PocTest, CrossProductProofRejected) {
  const Bytes id1 = supplychain::make_epc(1, 1, 1);
  const Bytes id2 = supplychain::make_epc(1, 1, 2);
  const PocProof proof = scheme_->prove(*dpoc_, id1);
  EXPECT_EQ(scheme_->verify(poc_, id2, proof).verdict, PocVerdict::kBad);
}

TEST_F(PocTest, MislabeledProofRejected) {
  // A non-ownership proof presented as ownership (the "claim processing"
  // forgery) must come back bad, and vice versa.
  const Bytes ghost = supplychain::make_epc(9, 9, 9);
  PocProof forged = scheme_->prove(*dpoc_, ghost);
  forged.ownership = true;
  EXPECT_EQ(scheme_->verify(poc_, ghost, forged).verdict, PocVerdict::kBad);

  const Bytes owned = supplychain::make_epc(1, 1, 1);
  PocProof forged2 = scheme_->prove(*dpoc_, owned);
  forged2.ownership = false;
  EXPECT_EQ(scheme_->verify(poc_, owned, forged2).verdict, PocVerdict::kBad);
}

TEST_F(PocTest, GarbageProofRejectedNotThrown) {
  PocProof garbage;
  garbage.ownership = true;
  garbage.zk_proof = bytes_of("not a proof");
  const Bytes id = supplychain::make_epc(1, 1, 1);
  EXPECT_EQ(scheme_->verify(poc_, id, garbage).verdict, PocVerdict::kBad);
}

TEST_F(PocTest, WrongPocRejected) {
  auto [other_poc, other_dpoc] =
      scheme_->aggregate("v3", {{supplychain::make_epc(1, 1, 1),
                                 bytes_of("other-da")}});
  const Bytes id = supplychain::make_epc(1, 1, 1);
  const PocProof proof = scheme_->prove(*dpoc_, id);
  EXPECT_EQ(scheme_->verify(other_poc, id, proof).verdict, PocVerdict::kBad);
}

TEST_F(PocTest, PocSerializationRoundTrip) {
  const Poc poc2 = Poc::deserialize(poc_.serialize());
  EXPECT_EQ(poc2, poc_);
  const PocProof proof =
      scheme_->prove(*dpoc_, supplychain::make_epc(1, 1, 1));
  const PocProof proof2 = PocProof::deserialize(proof.serialize());
  EXPECT_EQ(scheme_->verify(poc2, supplychain::make_epc(1, 1, 1), proof2)
                .verdict,
            PocVerdict::kTrace);
}

TEST_F(PocTest, PocIsCompact) {
  // POC size is independent of the number of committed traces.
  std::map<Bytes, Bytes> big;
  for (std::uint64_t i = 0; i < 64; ++i) {
    big[supplychain::make_epc(2, 2, i)] = bytes_of("da");
  }
  auto [big_poc, big_dpoc] = scheme_->aggregate("v9", big);
  EXPECT_EQ(big_poc.serialize().size(), poc_.serialize().size());
}

TEST_F(PocTest, EmptyParticipantIdRejected) {
  EXPECT_THROW(scheme_->aggregate("", traces_), Error);
}

TEST_F(PocTest, DpocOwnership) {
  EXPECT_TRUE(dpoc_->owns(supplychain::make_epc(1, 1, 1)));
  EXPECT_FALSE(dpoc_->owns(supplychain::make_epc(5, 5, 5)));
  EXPECT_EQ(dpoc_->trace_count(), 3u);
}

class PocListTest : public ::testing::Test {
 protected:
  Poc make_poc(const std::string& participant, const char* salt) {
    // Synthetic commitments are fine for graph-level tests.
    return Poc{participant, bytes_of(std::string("commit-") + salt)};
  }
};

TEST_F(PocListTest, BuildAndQuery) {
  PocList list(bytes_of("ps"));
  list.add_poc(make_poc("v0", "0"));
  list.add_poc(make_poc("v2", "2"));
  list.add_poc(make_poc("v5", "5"));
  list.add_edge("v0", "v2");
  list.add_edge("v2", "v5");

  EXPECT_EQ(list.poc_count(), 3u);
  EXPECT_EQ(list.edge_count(), 2u);
  EXPECT_TRUE(list.has_edge("v0", "v2"));
  EXPECT_FALSE(list.has_edge("v0", "v5"));
  EXPECT_EQ(list.children_of("v2"), (std::vector<std::string>{"v5"}));
  EXPECT_EQ(list.parents_of("v2"), (std::vector<std::string>{"v0"}));
  EXPECT_EQ(list.initial_participants(), (std::vector<std::string>{"v0"}));
  ASSERT_NE(list.find("v2"), nullptr);
  EXPECT_EQ(list.find("v2")->participant, "v2");
  EXPECT_EQ(list.find("nope"), nullptr);
}

TEST_F(PocListTest, ConflictingPocRejected) {
  PocList list;
  list.add_poc(make_poc("v0", "a"));
  list.add_poc(make_poc("v0", "a"));  // identical duplicate is fine
  EXPECT_THROW(list.add_poc(make_poc("v0", "b")), Error);
}

TEST_F(PocListTest, EdgeRequiresRegisteredEndpoints) {
  PocList list;
  list.add_poc(make_poc("v0", "0"));
  EXPECT_THROW(list.add_edge("v0", "v2"), Error);
  EXPECT_THROW(list.add_edge("v0", "v0"), Error);
}

TEST_F(PocListTest, SerializationRoundTrip) {
  PocList list(bytes_of("ps-bytes"));
  list.add_poc(make_poc("v0", "0"));
  list.add_poc(make_poc("v2", "2"));
  list.add_edge("v0", "v2");
  const PocList list2 = PocList::deserialize(list.serialize());
  EXPECT_EQ(list2.ps(), bytes_of("ps-bytes"));
  EXPECT_EQ(list2.poc_count(), 2u);
  EXPECT_TRUE(list2.has_edge("v0", "v2"));
  EXPECT_EQ(list2.initial_participants(), (std::vector<std::string>{"v0"}));
}

}  // namespace
}  // namespace desword::poc
