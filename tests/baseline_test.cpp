#include <gtest/gtest.h>

#include "desword/baseline.h"

namespace desword::baseline {
namespace {

supplychain::TraceDatabase make_db(int count) {
  supplychain::TraceDatabase db;
  for (int i = 0; i < count; ++i) {
    supplychain::TraceInfo info;
    info.participant = "v1";
    info.operation = "process";
    info.timestamp = static_cast<std::uint64_t>(i);
    db.record(supplychain::RfidTrace{
        supplychain::make_epc(1, 1, static_cast<std::uint64_t>(i)), info});
  }
  return db;
}

class BaselineTest : public ::testing::Test {
 protected:
  GroupPtr group_ = make_p256_group();
  BaselineScheme scheme_{group_};
};

TEST_F(BaselineTest, ProvesProcessingForCommittedProducts) {
  const auto db = make_db(5);
  const auto [poc, keys] = scheme_.aggregate("v1", db);
  for (const auto& trace : db.all()) {
    EXPECT_TRUE(scheme_.proves_processing(poc, trace.id));
    EXPECT_TRUE(scheme_.verify_trace(poc, trace));
  }
  EXPECT_FALSE(scheme_.proves_processing(poc, supplychain::make_epc(9, 9, 9)));
}

TEST_F(BaselineTest, TamperedTraceRejected) {
  const auto db = make_db(2);
  const auto [poc, keys] = scheme_.aggregate("v1", db);
  supplychain::RfidTrace tampered = db.all()[0];
  tampered.da.operation = "forged";
  EXPECT_FALSE(scheme_.verify_trace(poc, tampered));
}

TEST_F(BaselineTest, PocSizeIsLinearInTraceCount) {
  // The §II-C strawman's core deficiency vs the ZK-EDB POC.
  const auto [poc8, k8] = scheme_.aggregate("v1", make_db(8));
  const auto [poc64, k64] = scheme_.aggregate("v1", make_db(64));
  EXPECT_GT(poc64.serialize().size(), 6 * poc8.serialize().size());
}

TEST_F(BaselineTest, CommittedIdsLeakPublicly) {
  // Anyone holding the baseline POC reads the ids — no privacy.
  const auto db = make_db(3);
  const auto [poc, keys] = scheme_.aggregate("v1", db);
  const BaselinePoc reparsed = BaselinePoc::deserialize(poc.serialize());
  for (const auto& trace : db.all()) {
    EXPECT_TRUE(reparsed.contains(trace.id));
  }
}

TEST_F(BaselineTest, DishonestOwnerDefeatsBaseline) {
  // The honest-data-owner failure: a participant can sign a fake trace at
  // construction time and the baseline verifies it happily.
  supplychain::TraceDatabase fake_db;
  supplychain::TraceInfo fake;
  fake.participant = "v1";
  fake.operation = "never-happened";
  fake_db.record(supplychain::RfidTrace{supplychain::make_epc(7, 7, 7), fake});
  const auto [poc, keys] = scheme_.aggregate("v1", fake_db);
  EXPECT_TRUE(scheme_.proves_processing(poc, supplychain::make_epc(7, 7, 7)));
}

}  // namespace
}  // namespace desword::baseline
