#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "crypto/hash.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace desword::zkedb {
namespace {

// Small tree (q=4, h=6 => 4096-key space) over fast test-sized crypto.
EdbConfig test_config(SoftMode mode = SoftMode::kShared) {
  EdbConfig cfg;
  cfg.q = 4;
  cfg.height = 6;
  cfg.rsa_bits = 512;
  cfg.group_name = "p256";
  cfg.soft_mode = mode;
  return cfg;
}

EdbKey key_of(const EdbCrs& crs, const std::string& id) {
  return key_for_identifier(crs, bytes_of(id));
}

class ZkEdbTest : public ::testing::TestWithParam<SoftMode> {
 protected:
  void SetUp() override {
    crs_ = generate_crs(test_config(GetParam()));
    std::map<Bytes, Bytes> entries;
    for (const char* id : {"prod-1", "prod-2", "prod-3", "prod-4", "prod-5"}) {
      entries[key_of(*crs_, id)] = bytes_of(std::string("trace of ") + id);
    }
    prover_ = std::make_unique<EdbProver>(crs_, entries);
  }

  EdbCrsPtr crs_;
  std::unique_ptr<EdbProver> prover_;
};

TEST_P(ZkEdbTest, MembershipRoundTripAllKeys) {
  for (const char* id : {"prod-1", "prod-2", "prod-3", "prod-4", "prod-5"}) {
    const EdbKey key = key_of(*crs_, id);
    ASSERT_TRUE(prover_->contains(key)) << id;
    const auto proof = prover_->prove_membership(key);
    const auto value =
        edb_verify_membership(*crs_, prover_->commitment(), key, proof);
    ASSERT_TRUE(value.has_value()) << id;
    EXPECT_EQ(*value, bytes_of(std::string("trace of ") + id));
  }
}

TEST_P(ZkEdbTest, NonMembershipRoundTrip) {
  for (const char* id : {"ghost-1", "ghost-2", "ghost-3"}) {
    const EdbKey key = key_of(*crs_, id);
    ASSERT_FALSE(prover_->contains(key)) << id;
    const auto proof = prover_->prove_non_membership(key);
    EXPECT_TRUE(edb_verify_non_membership(*crs_, prover_->commitment(), key,
                                          proof))
        << id;
  }
}

TEST_P(ZkEdbTest, RepeatedNonMembershipQueriesAreConsistent) {
  // Memoized fabrication: the digest chain must be identical across
  // repeated queries for the same key (the teases may re-randomize).
  const EdbKey key = key_of(*crs_, "ghost");
  const auto p1 = prover_->prove_non_membership(key);
  const auto p2 = prover_->prove_non_membership(key);
  ASSERT_EQ(p1.child_commitments.size(), p2.child_commitments.size());
  for (std::size_t i = 0; i < p1.child_commitments.size(); ++i) {
    EXPECT_EQ(p1.child_commitments[i], p2.child_commitments[i]) << i;
  }
  EXPECT_TRUE(
      edb_verify_non_membership(*crs_, prover_->commitment(), key, p2));
}

TEST_P(ZkEdbTest, MembershipProofRejectedForWrongKey) {
  const EdbKey k1 = key_of(*crs_, "prod-1");
  const EdbKey k2 = key_of(*crs_, "prod-2");
  const auto proof = prover_->prove_membership(k1);
  EXPECT_FALSE(
      edb_verify_membership(*crs_, prover_->commitment(), k2, proof)
          .has_value());
}

TEST_P(ZkEdbTest, MembershipProofRejectedForWrongRoot) {
  std::map<Bytes, Bytes> other;
  other[key_of(*crs_, "prod-1")] = bytes_of("different value");
  EdbProver other_prover(crs_, other);
  const EdbKey key = key_of(*crs_, "prod-1");
  const auto proof = prover_->prove_membership(key);
  EXPECT_FALSE(
      edb_verify_membership(*crs_, other_prover.commitment(), key, proof)
          .has_value());
}

TEST_P(ZkEdbTest, TamperedValueRejected) {
  const EdbKey key = key_of(*crs_, "prod-1");
  auto proof = prover_->prove_membership(key);
  proof.value = bytes_of("forged trace");
  EXPECT_FALSE(edb_verify_membership(*crs_, prover_->commitment(), key, proof)
                   .has_value());
}

TEST_P(ZkEdbTest, NonMembershipRejectedForPresentKey) {
  // A malicious prover cannot even construct the proof through the API;
  // simulate a cheater by verifying a ghost's proof against a present key.
  const EdbKey present = key_of(*crs_, "prod-1");
  const EdbKey ghost = key_of(*crs_, "ghost");
  auto proof = prover_->prove_non_membership(ghost);
  EXPECT_FALSE(edb_verify_non_membership(*crs_, prover_->commitment(),
                                         present, proof));
}

TEST_P(ZkEdbTest, ProverApiGuards) {
  EXPECT_THROW(prover_->prove_membership(key_of(*crs_, "ghost")),
               ProtocolError);
  EXPECT_THROW(prover_->prove_non_membership(key_of(*crs_, "prod-1")),
               ProtocolError);
}

TEST_P(ZkEdbTest, EmptyDatabaseProvesAllKeysAbsent) {
  EdbProver empty(crs_, {});
  EXPECT_EQ(empty.size(), 0u);
  const EdbKey key = key_of(*crs_, "anything");
  const auto proof = empty.prove_non_membership(key);
  EXPECT_TRUE(edb_verify_non_membership(*crs_, empty.commitment(), key,
                                        proof));
}

TEST_P(ZkEdbTest, ProofSerializationRoundTrips) {
  const EdbKey present = key_of(*crs_, "prod-3");
  const auto mproof = prover_->prove_membership(present);
  const auto mproof2 =
      EdbMembershipProof::deserialize(*crs_, mproof.serialize(*crs_));
  EXPECT_TRUE(edb_verify_membership(*crs_, prover_->commitment(), present,
                                    mproof2)
                  .has_value());

  const EdbKey ghost = key_of(*crs_, "ghost");
  const auto nproof = prover_->prove_non_membership(ghost);
  const auto nproof2 =
      EdbNonMembershipProof::deserialize(*crs_, nproof.serialize(*crs_));
  EXPECT_TRUE(
      edb_verify_non_membership(*crs_, prover_->commitment(), ghost, nproof2));
}

TEST_P(ZkEdbTest, MembershipProofBitFlipFuzz) {
  const EdbKey key = key_of(*crs_, "prod-2");
  const auto proof = prover_->prove_membership(key);
  const Bytes ser = proof.serialize(*crs_);
  // Sample positions across the buffer (full sweep would be slow).
  for (std::size_t i = 0; i < ser.size(); i += 97) {
    Bytes mutated = ser;
    mutated[i] ^= 0x01;
    try {
      const auto bad = EdbMembershipProof::deserialize(*crs_, mutated);
      const auto value =
          edb_verify_membership(*crs_, prover_->commitment(), key, bad);
      // The only byte flips that may still verify are inside the value
      // field... and those change the value digest, so none may verify.
      EXPECT_FALSE(value.has_value()) << "byte " << i;
    } catch (const Error&) {
      // parse-time rejection: fine
    }
  }
}

TEST_P(ZkEdbTest, StructurallyManipulatedProofsRejected) {
  const EdbKey key = key_of(*crs_, "prod-1");
  const auto good = prover_->prove_membership(key);

  // Swapped adjacent levels.
  {
    auto bad = good;
    std::swap(bad.openings[1], bad.openings[2]);
    EXPECT_FALSE(edb_verify_membership(*crs_, prover_->commitment(), key, bad)
                     .has_value());
  }
  // Truncated chain.
  {
    auto bad = good;
    bad.openings.pop_back();
    bad.child_commitments.pop_back();
    EXPECT_FALSE(edb_verify_membership(*crs_, prover_->commitment(), key, bad)
                     .has_value());
  }
  // Child commitment replaced by another valid node's commitment.
  {
    auto bad = good;
    bad.child_commitments[1] = good.child_commitments[0];
    EXPECT_FALSE(edb_verify_membership(*crs_, prover_->commitment(), key, bad)
                     .has_value());
  }
  // Leaf opening replayed from a different product.
  {
    auto bad = good;
    const auto other = prover_->prove_membership(key_of(*crs_, "prod-2"));
    bad.leaf_opening = other.leaf_opening;
    bad.value = other.value;
    EXPECT_FALSE(edb_verify_membership(*crs_, prover_->commitment(), key, bad)
                     .has_value());
  }
}

TEST_P(ZkEdbTest, MixedProofPartsRejected) {
  // A non-membership tease chain cannot be dressed up with a membership
  // ending or vice versa.
  const EdbKey ghost = key_of(*crs_, "ghost");
  auto nproof = prover_->prove_non_membership(ghost);
  nproof.leaf_tease.message = bytes_of("0123456789abcdef");  // non-null 16B
  EXPECT_FALSE(
      edb_verify_non_membership(*crs_, prover_->commitment(), ghost, nproof));
}

TEST_P(ZkEdbTest, CommitmentIsCompact) {
  // The commitment size is independent of the database size.
  std::map<Bytes, Bytes> big;
  for (int i = 0; i < 32; ++i) {
    big[key_of(*crs_, "bulk-" + std::to_string(i))] =
        bytes_of("v" + std::to_string(i));
  }
  EdbProver big_prover(crs_, big);
  EXPECT_EQ(big_prover.commitment_bytes().size(),
            prover_->commitment_bytes().size());
}

INSTANTIATE_TEST_SUITE_P(SoftModes, ZkEdbTest,
                         ::testing::Values(SoftMode::kShared,
                                           SoftMode::kPerChild));

TEST(ZkEdbParamsTest, DigitsRoundTrip) {
  EdbConfig cfg = test_config();
  const EdbCrsPtr crs = generate_crs(cfg);
  // key = 0b...  digits recompose to the key value under base q.
  EdbKey key(kKeyBytes, 0);
  key[15] = 0x2d;  // 45 = 2*16 + 3*4 + 1 -> digits ...0,2,3,1 base 4
  const auto digits = crs->digits_of(key);
  ASSERT_EQ(digits.size(), cfg.height);
  std::uint64_t value = 0;
  for (const auto d : digits) value = value * cfg.q + d;
  EXPECT_EQ(value, 45u);
}

TEST(ZkEdbParamsTest, KeyOutOfRangeRejected) {
  const EdbCrsPtr crs = generate_crs(test_config());  // space = 4^6 = 4096
  EdbKey key(kKeyBytes, 0);
  key[13] = 1;  // 2^16 > 4095
  EXPECT_FALSE(crs->key_in_range(key));
  EXPECT_THROW(crs->digits_of(key), ConfigError);
  EdbKey short_key(8, 0);
  EXPECT_FALSE(crs->key_in_range(short_key));
}

TEST(ZkEdbParamsTest, KeyForIdentifierInRangeAndDeterministic) {
  const EdbCrsPtr crs = generate_crs(test_config());
  const EdbKey k1 = key_for_identifier(*crs, bytes_of("id-1"));
  const EdbKey k2 = key_for_identifier(*crs, bytes_of("id-1"));
  EXPECT_EQ(k1, k2);
  EXPECT_TRUE(crs->key_in_range(k1));
  EXPECT_NE(key_for_identifier(*crs, bytes_of("id-2")), k1);
}

TEST(ZkEdbParamsTest, PublicParamsSerializationRoundTrip) {
  const EdbCrsPtr crs = generate_crs(test_config());
  const Bytes ser = crs->params().serialize();
  const EdbPublicParams params = EdbPublicParams::deserialize(ser);
  const EdbCrs crs2(params);
  EXPECT_EQ(crs2.q(), crs->q());
  EXPECT_EQ(crs2.height(), crs->height());
  // Proofs generated under the original CRS verify under the round-tripped
  // one.
  std::map<Bytes, Bytes> entries;
  const EdbKey key = key_for_identifier(*crs, bytes_of("x"));
  entries[key] = bytes_of("value");
  EdbProver prover(crs, entries);
  const auto proof = prover.prove_membership(key);
  EXPECT_TRUE(
      edb_verify_membership(crs2, prover.commitment(), key, proof)
          .has_value());
}

TEST(ZkEdbParamsTest, BadConfigsRejected) {
  EdbConfig cfg = test_config();
  cfg.q = 1;
  EXPECT_THROW(generate_crs(cfg), Error);
  cfg = test_config();
  cfg.q = 300;
  EXPECT_THROW(generate_crs(cfg), Error);
  cfg = test_config();
  cfg.group_name = "nonsense";
  EXPECT_THROW(generate_crs(cfg), Error);
}

}  // namespace
}  // namespace desword::zkedb
