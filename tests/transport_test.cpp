// Transport-layer tests: wire framing, SimTransport timer semantics, the
// real TCP SocketTransport on loopback, and the protocol stack surviving a
// crashed (deregistered) peer through its retransmission timers.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "desword/scenario.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace desword::net {
namespace {

Envelope make_env(std::string from, std::string to, std::string type,
                  Bytes payload) {
  Envelope env;
  env.from = std::move(from);
  env.to = std::move(to);
  env.type = std::move(type);
  env.payload = std::move(payload);
  return env;
}

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

TEST(WireTest, EnvelopeRoundTrip) {
  const Envelope env = make_env("alice", "bob", "query_request",
                                Bytes{0x00, 0x01, 0xff, 0x7f});
  const Envelope back = decode_envelope(encode_envelope(env));
  EXPECT_EQ(back.from, "alice");
  EXPECT_EQ(back.to, "bob");
  EXPECT_EQ(back.type, "query_request");
  EXPECT_EQ(back.payload, env.payload);
}

TEST(WireTest, EnvelopeRejectsTrailingBytes) {
  Bytes body = encode_envelope(make_env("a", "b", "t", Bytes{1, 2, 3}));
  body.push_back(0x00);
  EXPECT_THROW(decode_envelope(body), SerializationError);
}

TEST(WireTest, FrameRoundTripAndConsumed) {
  const Envelope env = make_env("a", "b", "t", Bytes(100, 0xab));
  const Bytes frame = encode_frame(env);
  std::size_t consumed = 0;
  const std::optional<Envelope> got = try_decode_frame(frame, consumed);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(got->payload, env.payload);
}

TEST(WireTest, IncompleteFrameYieldsNothing) {
  const Bytes frame = encode_frame(make_env("a", "b", "t", Bytes(32, 1)));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::size_t consumed = 77;
    const Bytes partial(frame.begin(),
                        frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(try_decode_frame(partial, consumed).has_value());
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireTest, TwoFramesDecodeSequentially) {
  Bytes buffer = encode_frame(make_env("a", "b", "first", Bytes{1}));
  const Bytes second = encode_frame(make_env("a", "b", "second", Bytes{2}));
  buffer.insert(buffer.end(), second.begin(), second.end());

  std::size_t consumed = 0;
  const auto one = try_decode_frame(buffer, consumed);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->type, "first");
  buffer.erase(buffer.begin(),
               buffer.begin() + static_cast<std::ptrdiff_t>(consumed));

  const auto two = try_decode_frame(buffer, consumed);
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->type, "second");
  EXPECT_EQ(consumed, buffer.size());
}

TEST(WireTest, OversizedLengthPrefixThrows) {
  // A hostile length prefix must fail fast, not allocate 4 GiB.
  Bytes buffer = {0xff, 0xff, 0xff, 0xff, 0x00};
  std::size_t consumed = 0;
  EXPECT_THROW(try_decode_frame(buffer, consumed), SerializationError);
}

// ---------------------------------------------------------------------------
// SimTransport
// ---------------------------------------------------------------------------

TEST(SimTransportTest, DeliversLikeUnderlyingNetwork) {
  Network network;
  SimTransport transport(network);
  std::vector<std::string> seen;
  transport.register_node("a", [&](const Envelope& env) {
    seen.push_back(env.type);
    if (env.type == "ping") transport.send("a", "b", "pong", Bytes{});
  });
  transport.register_node("b", [&](const Envelope& env) {
    seen.push_back(env.type);
  });
  transport.send("b", "a", "ping", Bytes(10, 0));
  EXPECT_EQ(transport.poll(), 2u);  // ping + pong
  EXPECT_EQ(seen, (std::vector<std::string>{"ping", "pong"}));
  EXPECT_EQ(transport.stats("b", "a").bytes_sent, 10u);
  EXPECT_EQ(transport.total_stats().messages_sent, 2u);
}

TEST(SimTransportTest, TimersFireOnlyAtQuiescenceInArmingOrder) {
  Network network;
  SimTransport transport(network);
  std::vector<int> fired;
  transport.register_node("a", [](const Envelope&) {});

  transport.set_timer(5, [&] { fired.push_back(2); });
  // Later timer armed first in *this* poll round? No: arming order is id
  // order, and the shorter delay below must NOT jump the queue — the sim
  // fires at quiescence in arming order, by design.
  transport.set_timer(1, [&] { fired.push_back(1); });
  transport.send("a", "a", "m", Bytes{});

  // First poll: a message is in flight, so it delivers and NO timer fires.
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(transport.pending_timers(), 2u);

  // Queue drained: all pending timers fire, in arming order.
  EXPECT_EQ(transport.poll(), 2u);
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
  EXPECT_EQ(transport.pending_timers(), 0u);
}

TEST(SimTransportTest, CancelledTimerNeverFires) {
  Network network;
  SimTransport transport(network);
  bool fired = false;
  const Transport::TimerId id = transport.set_timer(1, [&] { fired = true; });
  transport.cancel_timer(id);
  EXPECT_EQ(transport.poll(), 0u);
  EXPECT_FALSE(fired);
}

TEST(SimTransportTest, TimerHandlerMayRearm) {
  Network network;
  SimTransport transport(network);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) transport.set_timer(1, tick);
  };
  transport.set_timer(1, tick);
  // Each quiescent poll fires the snapshot of then-pending timers only.
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(transport.poll(), 0u);
  EXPECT_EQ(fires, 3);
}

TEST(SimTransportTest, TimerHandlerMayCancelSibling) {
  // Regression: a callback cancelling a later timer in the SAME firing
  // round must win — the snapshot loop re-checks liveness per id instead
  // of firing a stale copy of the handler.
  Network network;
  SimTransport transport(network);
  std::vector<int> fired;
  Transport::TimerId sibling = 0;
  transport.set_timer(1, [&] {
    fired.push_back(1);
    transport.cancel_timer(sibling);
  });
  sibling = transport.set_timer(1, [&] { fired.push_back(2); });
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(fired, std::vector<int>{1});
  EXPECT_EQ(transport.pending_timers(), 0u);
  EXPECT_EQ(transport.poll(), 0u);  // the cancelled sibling stays dead
  EXPECT_EQ(fired, std::vector<int>{1});
}

TEST(SimTransportTest, TimerArmedInCallbackDefersEvenWithZeroDelay) {
  // Regression: the firing round snapshots the then-pending ids, so a
  // timer armed *inside* a due-timer callback — even with delay 0 — must
  // wait for the next quiescent round, not piggyback on this one.
  Network network;
  SimTransport transport(network);
  std::vector<int> fired;
  transport.set_timer(1, [&] {
    fired.push_back(1);
    transport.set_timer(0, [&] { fired.push_back(2); });
  });
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(fired, std::vector<int>{1}) << "the child timer must defer";
  EXPECT_EQ(transport.pending_timers(), 1u);
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SimTransportTest, TimerArmedThenCancelledInsideCallbackNeverFires) {
  // Regression: arm-then-cancel within one due-timer callback (the shape
  // of a handler that re-arms a retransmission and then settles in the
  // same dispatch) must leave nothing behind — not fire this round, not
  // fire a later one, not leak a pending timer.
  Network network;
  SimTransport transport(network);
  std::vector<int> fired;
  transport.set_timer(1, [&] {
    fired.push_back(1);
    const Transport::TimerId child =
        transport.set_timer(0, [&] { fired.push_back(2); });
    transport.cancel_timer(child);
  });
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(transport.pending_timers(), 0u);
  EXPECT_EQ(transport.poll(), 0u);
  EXPECT_EQ(fired, std::vector<int>{1});
}

TEST(SimTransportTest, TimerSendingTrafficEndsFiringRound) {
  // Regression: once a timer callback queues a message the network is no
  // longer quiescent, so the remaining snapshot timers must wait for the
  // next quiescent round instead of firing behind in-flight traffic (a
  // retransmission timer must not fire "concurrently" with the reply it
  // just requested).
  Network network;
  SimTransport transport(network);
  std::vector<std::string> order;
  transport.register_node("a", [&](const Envelope& env) {
    order.push_back("deliver:" + env.type);
  });
  transport.set_timer(1, [&] {
    order.push_back("timer1");
    transport.send("a", "a", "probe", Bytes{});
  });
  transport.set_timer(1, [&] { order.push_back("timer2"); });

  // Round 1: timer1 fires and queues traffic — the round ends immediately,
  // timer2 is deferred.
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(order, std::vector<std::string>{"timer1"});
  EXPECT_EQ(transport.pending_timers(), 1u);

  // Round 2: the queued message delivers (deliveries preempt timers).
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(order,
            (std::vector<std::string>{"timer1", "deliver:probe"}));

  // Round 3: quiescent again, the deferred timer finally fires.
  EXPECT_EQ(transport.poll(), 1u);
  EXPECT_EQ(order.back(), "timer2");
}

// ---------------------------------------------------------------------------
// SocketTransport (TCP loopback)
// ---------------------------------------------------------------------------

/// Polls both endpoints until `done` or ~5 s of wall clock passed.
template <typename Pred>
bool pump_until(SocketTransport& a, SocketTransport& b, Pred done) {
  const std::uint64_t deadline = a.now() + 5000;
  while (a.now() < deadline) {
    a.poll(10);
    b.poll(10);
    if (done()) return true;
  }
  return done();
}

TEST(SocketTransportTest, LoopbackPingPong) {
  SocketTransport server{SocketTransportOptions{}};
  SocketTransportOptions client_options;
  client_options.resolve =
      [&](const NodeId& node) -> std::optional<std::string> {
    if (node == "server") return server.local_address();
    return std::nullopt;
  };
  SocketTransport client(std::move(client_options));

  std::optional<Envelope> request;
  std::optional<Envelope> reply;
  server.register_node("server", [&](const Envelope& env) {
    request = env;
    // Reply rides the inbound connection: the server has no resolver.
    server.send("server", env.from, "pong", Bytes{9, 9});
  });
  client.register_node("client", [&](const Envelope& env) { reply = env; });

  client.send("client", "server", "ping", Bytes{1, 2, 3});
  ASSERT_TRUE(
      pump_until(client, server, [&] { return reply.has_value(); }));

  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->from, "client");
  EXPECT_EQ(request->payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(reply->from, "server");
  EXPECT_EQ(reply->type, "pong");
  EXPECT_EQ(reply->payload, (Bytes{9, 9}));

  EXPECT_EQ(client.stats("client", "server").messages_sent, 1u);
  EXPECT_EQ(client.stats("client", "server").messages_dropped, 0u);
  EXPECT_EQ(server.stats("server", "client").messages_sent, 1u);
}

TEST(SocketTransportTest, LocalLoopbackDelivery) {
  // Two nodes on the SAME transport short-circuit through the local queue.
  SocketTransport transport{SocketTransportOptions{}};
  std::optional<Envelope> got;
  transport.register_node("a", [&](const Envelope&) {});
  transport.register_node("b", [&](const Envelope& env) { got = env; });
  transport.send("a", "b", "hello", Bytes{7});
  transport.poll(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, "a");
  EXPECT_EQ(got->payload, Bytes{7});
}

TEST(SocketTransportTest, UnresolvablePeerDropsAndCounts) {
  SocketTransport transport{SocketTransportOptions{}};  // no resolver at all
  transport.register_node("a", [](const Envelope&) {});
  EXPECT_NO_THROW(transport.send("a", "ghost", "m", Bytes(5, 0)));
  EXPECT_EQ(transport.stats("a", "ghost").messages_sent, 1u);
  EXPECT_EQ(transport.stats("a", "ghost").messages_dropped, 1u);
  EXPECT_EQ(transport.stats("a", "ghost").bytes_sent, 5u);
}

TEST(SocketTransportTest, TimersFireOnRealClock) {
  SocketTransport transport{SocketTransportOptions{}};
  std::vector<int> fired;
  transport.set_timer(10, [&] { fired.push_back(1); });
  const Transport::TimerId cancelled =
      transport.set_timer(10, [&] { fired.push_back(2); });
  transport.cancel_timer(cancelled);

  const std::uint64_t t0 = transport.now();
  while (fired.empty() && transport.now() < t0 + 5000) transport.poll(20);
  EXPECT_EQ(fired, std::vector<int>{1});

  // The cancelled timer stays dead even after its deadline passed.
  while (transport.now() < t0 + 60) transport.poll(20);
  EXPECT_EQ(fired, std::vector<int>{1});
}

TEST(SocketTransportTest, NegativeFlushTimeoutBlocksUntilDrained) {
  // Regression: flush() clamped negative timeouts to 0, so the documented
  // "-1 = block until drained" sentinel returned false immediately while
  // the connect was still in flight and bytes sat buffered.
  SocketTransport server{SocketTransportOptions{}};
  SocketTransportOptions client_options;
  client_options.resolve =
      [&](const NodeId& node) -> std::optional<std::string> {
    if (node == "server") return server.local_address();
    return std::nullopt;
  };
  SocketTransport client(std::move(client_options));

  std::optional<Envelope> got;
  server.register_node("server", [&](const Envelope& env) { got = env; });
  client.register_node("client", [](const Envelope&) {});

  // A payload large enough to outlive the first partial write, sent while
  // the non-blocking connect is still completing — flush(-1) must ride it
  // all the way out instead of bailing on the first loop iteration.
  client.send("client", "server", "bulk", Bytes(1 << 20, 0xab));
  EXPECT_TRUE(client.flush(-1));

  const std::uint64_t deadline = server.now() + 5000;
  while (!got.has_value() && server.now() < deadline) server.poll(10);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), std::size_t{1} << 20);
}

}  // namespace
}  // namespace desword::net

// ---------------------------------------------------------------------------
// Protocol over transports: crashed-peer regression
// ---------------------------------------------------------------------------

namespace desword::protocol {
namespace {

TEST(TransportProtocolTest, QuerySurvivesCrashedParticipant) {
  ScenarioConfig config;
  config.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(supplychain::SupplyChainGraph::paper_example(), config);

  supplychain::DistributionConfig dist;
  dist.initial = "v0";
  dist.products = supplychain::make_products(1, 1, 4);
  dist.seed = 42;
  scenario.run_task("task-1", dist);

  // Pick a product whose path has an intermediate hop, then crash that hop.
  const supplychain::ProductId product = dist.products[0];
  const auto* path = scenario.path_of(product);
  ASSERT_NE(path, nullptr);
  ASSERT_GE(path->size(), 2u);
  const std::string& victim = (*path)[1];
  scenario.network().unregister_node(victim);

  // The old pump() threw on sends to dead nodes; now the drop is counted,
  // the session's retransmission timer expires and the victim is reported
  // as unresponsive instead of the proxy dying.
  const QueryOutcome outcome =
      scenario.proxy().run_query(product, ProductQuality::kGood);
  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.has_violation(victim, ViolationType::kNoResponse));
  EXPECT_LT(scenario.proxy().reputation(victim), 0.0);
  EXPECT_GT(scenario.network().stats(scenario.proxy().id(), victim)
                .messages_dropped,
            0u);
}

TEST(TransportProtocolTest, DeadPeerFastFailsOverSockets) {
  // Regression for the retransmission loop burning a full timeout per
  // attempt on a peer the transport KNOWS is gone. Over real sockets a
  // deregistered peer refuses at send time, so after the first timeout
  // every remaining retry must be charged immediately: the verdict lands
  // in ~one retransmit_base of wall clock, not max_retries of them.
  net::SocketTransport socket{net::SocketTransportOptions{}};
  const auto crs_cache = std::make_shared<CrsCache>();
  ProxyConfig config;
  config.edb = zkedb::EdbConfig{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  config.retransmit_base = 400;
  config.retransmit_cap = 400;
  config.max_retries = 5;
  ProxyDeps deps;
  deps.crs_cache = crs_cache;
  Proxy proxy("proxy", socket, std::move(deps), config);

  const auto graph = supplychain::SupplyChainGraph::paper_example();
  std::map<std::string, std::unique_ptr<Participant>> participants;
  for (const ParticipantId& id : graph.participants()) {
    participants.emplace(
        id, std::make_unique<Participant>(
                id, socket, "proxy", ParticipantDeps{.crs_cache = crs_cache}));
  }

  supplychain::DistributionConfig dist;
  dist.initial = "v0";
  dist.products = supplychain::make_products(1, 1, 2);
  dist.seed = 42;
  const auto truth = supplychain::run_distribution(graph, dist);
  for (const ParticipantId& id : truth.involved) {
    Participant& p = *participants.at(id);
    p.load_database(truth.databases.at(id));
    TaskSetup setup;
    setup.task_id = "task-1";
    setup.initial = dist.initial;
    setup.involved = truth.involved;
    for (const auto& [parent, children] : truth.used_edges) {
      if (parent == id) setup.children.assign(children.begin(), children.end());
      if (children.count(id) > 0) setup.parents.push_back(parent);
    }
    for (const auto& [product, path] : truth.paths) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (path[i] == id) setup.shipments[product] = path[i + 1];
      }
    }
    p.begin_task(setup);
  }
  participants.at(dist.initial)->initiate_task("task-1");
  // Everyone shares one transport, so the whole phase short-circuits
  // through the local loopback queue — pump until the list lands.
  const std::uint64_t setup_deadline = socket.now() + 30000;
  while (proxy.task_list("task-1") == nullptr &&
         socket.now() < setup_deadline) {
    socket.poll(10);
  }
  ASSERT_NE(proxy.task_list("task-1"), nullptr);

  const supplychain::ProductId product = dist.products[0];
  const auto& path = truth.paths.at(product);
  ASSERT_GE(path.size(), 2u);
  const std::string victim = path[1];
  socket.unregister_node(victim);

  const std::uint64_t refused_before =
      obs::metric("net.retransmit.refused").value();
  const std::uint64_t t0 = socket.now();
  const QueryOutcome outcome =
      proxy.run_query(product, ProductQuality::kGood);
  const std::uint64_t elapsed = socket.now() - t0;

  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.has_violation(victim, ViolationType::kNoResponse));
  EXPECT_GE(obs::metric("net.retransmit.refused").value() - refused_before,
            static_cast<std::uint64_t>(config.max_retries - 1));
  // Old behavior: (max_retries + 1) timeouts = 2400 ms of silence. New:
  // one armed timeout, then the refused redials burn the budget inline.
  EXPECT_LT(elapsed, 1800u)
      << "dead-peer detection must not wait out every retry timer";
}

}  // namespace
}  // namespace desword::protocol
