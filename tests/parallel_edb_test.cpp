// Parallel EDB-commit determinism and soft-node stability.
//
// The parallel trie build must be schedule-independent: with a fixed
// EdbProverOptions::seed, every node draws randomness from a DRBG keyed by
// its position, so the commitment — and every proof derived from it — is
// byte-identical at any thread count. These tests pin that contract, plus
// the deque-backed soft-node store (fabricating a child soft node while
// holding a reference to its parent must not invalidate the parent).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/hash.h"
#include "zkedb/batch.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace desword::zkedb {
namespace {

EdbConfig test_config(SoftMode mode = SoftMode::kShared) {
  EdbConfig cfg;
  cfg.q = 4;
  cfg.height = 6;
  cfg.rsa_bits = 512;
  cfg.group_name = "p256";
  cfg.soft_mode = mode;
  return cfg;
}

EdbKey key_of(const EdbCrs& crs, const std::string& id) {
  return key_for_identifier(crs, bytes_of(id));
}

std::map<Bytes, Bytes> test_entries(const EdbCrs& crs, int n) {
  std::map<Bytes, Bytes> entries;
  for (int i = 0; i < n; ++i) {
    entries[key_of(crs, "prod-" + std::to_string(i))] =
        bytes_of("trace-" + std::to_string(i));
  }
  return entries;
}

EdbProverOptions seeded(unsigned threads) {
  EdbProverOptions opts;
  opts.threads = threads;
  opts.seed = bytes_of("determinism-test-seed");
  return opts;
}

class ParallelEdbTest : public ::testing::TestWithParam<SoftMode> {
 protected:
  void SetUp() override { crs_ = generate_crs(test_config(GetParam())); }
  EdbCrsPtr crs_;
};

TEST_P(ParallelEdbTest, SeededCommitIdenticalAcrossThreadCounts) {
  const auto entries = test_entries(*crs_, 12);
  EdbProver seq(crs_, entries, seeded(1));
  for (const unsigned threads : {2u, 4u, 8u}) {
    EdbProver par(crs_, entries, seeded(threads));
    EXPECT_EQ(par.commitment_bytes(), seq.commitment_bytes())
        << "threads=" << threads;
  }
}

TEST_P(ParallelEdbTest, SeededProofsIdenticalAcrossThreadCounts) {
  const auto entries = test_entries(*crs_, 12);
  EdbProver seq(crs_, entries, seeded(1));
  EdbProver par(crs_, entries, seeded(4));

  // Single membership proofs: byte-identical.
  const EdbKey key = key_of(*crs_, "prod-3");
  EXPECT_EQ(seq.prove_membership(key).serialize(*crs_),
            par.prove_membership(key).serialize(*crs_));

  // Batch proofs: byte-identical, at either batch thread count.
  std::vector<EdbKey> keys;
  for (int i = 0; i < 12; ++i) keys.push_back(key_of(*crs_, "prod-" + std::to_string(i)));
  const Bytes base =
      edb_prove_membership_batch(seq, keys, /*threads=*/1).serialize(*crs_);
  EXPECT_EQ(edb_prove_membership_batch(par, keys, /*threads=*/1)
                .serialize(*crs_),
            base);
  EXPECT_EQ(edb_prove_membership_batch(par, keys, /*threads=*/4)
                .serialize(*crs_),
            base);

  // Fabricated non-membership chains too: same seed, same query order, so
  // the fabricated soft nodes (and thus the digest chain) coincide. The
  // teases themselves re-randomize per query by design (blinding lift in
  // qTMC tease_soft), so only the commitment chain is compared.
  const EdbKey ghost = key_of(*crs_, "ghost-1");
  const auto nseq = seq.prove_non_membership(ghost);
  const auto npar = par.prove_non_membership(ghost);
  ASSERT_EQ(nseq.child_commitments.size(), npar.child_commitments.size());
  for (std::size_t j = 0; j < nseq.child_commitments.size(); ++j) {
    EXPECT_EQ(nseq.child_commitments[j], npar.child_commitments[j]) << j;
  }
}

TEST_P(ParallelEdbTest, ParallelCommitVerifies) {
  const auto entries = test_entries(*crs_, 12);
  EdbProverOptions opts;
  opts.threads = 4;  // CSPRNG randomness, parallel build
  EdbProver prover(crs_, entries, opts);
  for (const auto& [key, value] : entries) {
    const auto proof = prover.prove_membership(key);
    const auto got =
        edb_verify_membership(*crs_, prover.commitment(), key, proof);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, value);
  }
  const EdbKey ghost = key_of(*crs_, "ghost");
  EXPECT_TRUE(edb_verify_non_membership(*crs_, prover.commitment(), ghost,
                                        prover.prove_non_membership(ghost)));
}

TEST_P(ParallelEdbTest, DifferentSeedsDifferentCommitments) {
  const auto entries = test_entries(*crs_, 4);
  EdbProverOptions a = seeded(1);
  EdbProverOptions b = seeded(1);
  b.seed = bytes_of("another-seed");
  EXPECT_NE(EdbProver(crs_, entries, a).commitment_bytes(),
            EdbProver(crs_, entries, b).commitment_bytes());
  // Unseeded builds draw from the CSPRNG: two builds never collide.
  EXPECT_NE(EdbProver(crs_, entries).commitment_bytes(),
            EdbProver(crs_, entries).commitment_bytes());
}

TEST_P(ParallelEdbTest, SeededUpdatesStayDeterministic) {
  const auto entries = test_entries(*crs_, 6);
  EdbProver a(crs_, entries, seeded(1));
  EdbProver b(crs_, entries, seeded(4));
  const EdbKey extra = key_of(*crs_, "late-arrival");
  a.insert(extra, bytes_of("late"));
  b.insert(extra, bytes_of("late"));
  EXPECT_EQ(a.commitment_bytes(), b.commitment_bytes());
  a.erase(key_of(*crs_, "prod-0"));
  b.erase(key_of(*crs_, "prod-0"));
  EXPECT_EQ(a.commitment_bytes(), b.commitment_bytes());
}

TEST_P(ParallelEdbTest, ManyFabricationsKeepEarlierProofsStable) {
  // Regression: fabricating a ghost path appends child soft nodes to the
  // store while the updater still holds a reference to the parent soft
  // node. With a vector store, enough growth reallocates and the parent
  // reference dangles (UB, typically corrupt teases). The deque store must
  // keep every earlier fabrication intact — digest chains are memoized, so
  // re-querying an early ghost must reproduce its chain exactly.
  EdbProver prover(crs_, test_entries(*crs_, 5));
  const int kGhosts = 40;  // enough appends to force vector regrowth

  std::vector<EdbKey> ghosts;
  std::vector<Bytes> first_chain_digests;
  for (int i = 0; i < kGhosts; ++i) {
    const EdbKey ghost = key_of(*crs_, "ghost-" + std::to_string(i));
    if (prover.contains(ghost)) continue;
    ghosts.push_back(ghost);
    const auto proof = prover.prove_non_membership(ghost);
    ASSERT_TRUE(edb_verify_non_membership(*crs_, prover.commitment(), ghost,
                                          proof))
        << "ghost " << i;
    if (ghosts.size() == 1) {
      for (const auto& c : proof.child_commitments) {
        first_chain_digests.push_back(c);
      }
    }
  }
  ASSERT_GE(ghosts.size(), 30u);

  // The very first ghost's memoized chain survived all later appends.
  const auto again = prover.prove_non_membership(ghosts.front());
  ASSERT_EQ(again.child_commitments.size(), first_chain_digests.size());
  for (std::size_t i = 0; i < first_chain_digests.size(); ++i) {
    EXPECT_EQ(again.child_commitments[i], first_chain_digests[i]) << i;
  }
  EXPECT_TRUE(edb_verify_non_membership(*crs_, prover.commitment(),
                                        ghosts.front(), again));
}

TEST_P(ParallelEdbTest, VerifyManySweep) {
  const auto entries = test_entries(*crs_, 8);
  EdbProver prover(crs_, entries, seeded(4));
  std::vector<EdbMembershipProof> proofs;
  std::vector<EdbMembershipQuery> queries;
  proofs.reserve(8);
  for (const auto& [key, value] : entries) {
    proofs.push_back(prover.prove_membership(key));
    queries.push_back({key, &proofs.back()});
  }
  queries.push_back({key_of(*crs_, "prod-0"), nullptr});  // skipped slot
  EdbVerifyOptions opts;
  opts.threads = 4;
  const auto results =
      edb_verify_membership_many(*crs_, prover.commitment(), queries, opts);
  ASSERT_EQ(results.size(), queries.size());
  std::size_t i = 0;
  for (const auto& [key, value] : entries) {
    ASSERT_TRUE(results[i].has_value()) << i;
    EXPECT_EQ(*results[i], value);
    ++i;
  }
  EXPECT_FALSE(results.back().has_value());

  // A tampered proof fails only its own slot.
  auto bad = proofs.front();
  bad.value = bytes_of("forged");
  std::vector<EdbMembershipQuery> mixed{{queries[0].key, &bad}, queries[1]};
  EdbVerifyOptions mixed_opts;
  mixed_opts.threads = 2;
  const auto mixed_results = edb_verify_membership_many(
      *crs_, prover.commitment(), mixed, mixed_opts);
  EXPECT_FALSE(mixed_results[0].has_value());
  EXPECT_TRUE(mixed_results[1].has_value());
}

INSTANTIATE_TEST_SUITE_P(SoftModes, ParallelEdbTest,
                         ::testing::Values(SoftMode::kShared,
                                           SoftMode::kPerChild));

}  // namespace
}  // namespace desword::zkedb
