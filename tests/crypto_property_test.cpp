// Property-style sweeps over the arithmetic and commitment layers:
// algebraic laws on random inputs, equivalence of the Montgomery fast
// path with the reference implementation, and cross-CRS rejection.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/hash.h"
#include "crypto/modexp.h"
#include "crypto/primes.h"
#include "crypto/rsa.h"
#include "mercurial/qtmc.h"
#include "mercurial/tmc.h"

namespace desword {
namespace {

Bignum random_bn(int bits) { return Bignum::rand_bits(bits); }

TEST(BignumPropertyTest, RingLaws) {
  for (int i = 0; i < 25; ++i) {
    const Bignum a = random_bn(200);
    const Bignum b = random_bn(180);
    const Bignum c = random_bn(90);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(BignumPropertyTest, DivisionInvariant) {
  for (int i = 0; i < 25; ++i) {
    const Bignum a = random_bn(300);
    const Bignum d = random_bn(120);
    Bignum r;
    const Bignum q = a.divided_by(d, &r);
    EXPECT_EQ(q * d + r, a);
    EXPECT_LT(r, d);
  }
}

TEST(BignumPropertyTest, ModularExponentLaws) {
  const Bignum m = Bignum::generate_prime(128);
  for (int i = 0; i < 10; ++i) {
    const Bignum g = random_bn(100).mod(m);
    const Bignum x = random_bn(64);
    const Bignum y = random_bn(64);
    // g^(x+y) == g^x * g^y (mod m)
    EXPECT_EQ(Bignum::mod_exp(g, x + y, m),
              Bignum::mod_mul(Bignum::mod_exp(g, x, m),
                              Bignum::mod_exp(g, y, m), m));
    // (g^x)^y == g^(x*y)
    EXPECT_EQ(Bignum::mod_exp(Bignum::mod_exp(g, x, m), y, m),
              Bignum::mod_exp(g, x * y, m));
  }
}

TEST(BignumPropertyTest, GcdLaws) {
  for (int i = 0; i < 25; ++i) {
    const Bignum a = random_bn(150);
    const Bignum b = random_bn(150);
    const Bignum g = Bignum::gcd(a, b);
    EXPECT_TRUE(a.divisible_by(g));
    EXPECT_TRUE(b.divisible_by(g));
    EXPECT_EQ(Bignum::gcd(a, b), Bignum::gcd(b, a));
  }
}

TEST(ModExpContextTest, MatchesReferenceImplementation) {
  const RsaModulus mod = generate_rsa_modulus(512);
  const ModExpContext ctx(mod.n);
  for (int i = 0; i < 20; ++i) {
    const Bignum base = random_bn(500);
    const Bignum e = random_bn(1 + static_cast<int>(random_u64() % 300));
    EXPECT_EQ(ctx.exp(base, e), Bignum::mod_exp(base.mod(mod.n), e, mod.n));
  }
}

TEST(ModExpContextTest, SignedExponentInverts) {
  const RsaModulus mod = generate_rsa_modulus(512);
  const ModExpContext ctx(mod.n);
  const Bignum g = random_quadratic_residue(mod.n);
  const Bignum e = random_bn(100);
  const Bignum pos = ctx.exp_signed(g, e);
  const Bignum neg = ctx.exp_signed(g, e.negated());
  EXPECT_TRUE(Bignum::mod_mul(pos, neg, mod.n).is_one());
}

TEST(ModExpContextTest, RejectsEvenModulus) {
  EXPECT_THROW(ModExpContext(Bignum(100)), CryptoError);
  EXPECT_THROW(ModExpContext(Bignum(1)), CryptoError);
}

// Proofs generated under one CRS must never verify under another, even
// with identical configurations — commitments bind to the key material.
TEST(CrossCrsTest, TmcRejectsForeignOpenings) {
  const GroupPtr group = make_p256_group();
  const auto keys_a = mercurial::TmcScheme::keygen(group);
  const auto keys_b = mercurial::TmcScheme::keygen(group);
  const mercurial::TmcScheme a(group, keys_a.pk);
  const mercurial::TmcScheme b(group, keys_b.pk);

  const Bytes msg = hash_to_128("m", {bytes_of("x")});
  const auto [com, dec] = a.hard_commit(msg);
  EXPECT_TRUE(a.verify_open(com, a.hard_open(dec)));
  EXPECT_FALSE(b.verify_open(com, a.hard_open(dec)));
}

TEST(CrossCrsTest, QtmcRejectsForeignOpenings) {
  const auto keys_a = mercurial::QtmcScheme::keygen(4, 512);
  const auto keys_b = mercurial::QtmcScheme::keygen(4, 512);
  const mercurial::QtmcScheme a(keys_a.pk);
  const mercurial::QtmcScheme b(keys_b.pk);

  std::vector<Bytes> msgs;
  for (int i = 0; i < 4; ++i) msgs.push_back(hash_to_128("m", {be64(i)}));
  const auto [com, dec] = a.hard_commit(msgs);
  const auto op = a.hard_open(dec, 1);
  EXPECT_TRUE(a.verify_open(com, op));
  EXPECT_FALSE(b.verify_open(com, op));
}

TEST(CrossCrsTest, QtmcDifferentSeedsGiveDifferentPrimes) {
  // Same modulus reused with a different prime seed is still a different
  // scheme: openings cannot transfer.
  const auto keys = mercurial::QtmcScheme::keygen(4, 512);
  mercurial::QtmcPublicKey other_pk = keys.pk;
  other_pk.prime_seed = bytes_of("different-seed");
  const mercurial::QtmcScheme a(keys.pk);
  const mercurial::QtmcScheme b(other_pk);

  std::vector<Bytes> msgs;
  for (int i = 0; i < 4; ++i) msgs.push_back(hash_to_128("m", {be64(i)}));
  const auto [com, dec] = a.hard_commit(msgs);
  EXPECT_FALSE(b.verify_open(com, a.hard_open(dec, 0)));
}

TEST(HashToPrimePropertyTest, WidthSweep) {
  for (const int bits : {64, 96, 136, 160}) {
    const Bignum p = hash_to_prime(bytes_of("sweep"), 3, bits);
    EXPECT_EQ(p.bits(), bits);
    EXPECT_TRUE(p.is_prime());
    EXPECT_TRUE(p.is_odd());
  }
}

}  // namespace
}  // namespace desword
