// Proxy / scenario edge cases and state-machine corners not covered by
// the main protocol suite.
#include <gtest/gtest.h>

#include <memory>

#include "common/json.h"
#include "desword/scenario.h"

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::SupplyChainGraph;

ScenarioConfig fast_config() {
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  return cfg;
}

TEST(ProxyEdgeTest, QueryWithNoTasksResolvesEmpty) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  const QueryOutcome outcome = scenario.proxy().run_query(
      supplychain::make_epc(1, 1, 1), ProductQuality::kGood);
  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.path.empty());
  EXPECT_TRUE(outcome.violations.empty());
}

TEST(ProxyEdgeTest, DuplicateTaskIdRejected) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  scenario.run_task("task-1", dist);
  DistributionConfig dist2;
  dist2.initial = "v1";
  dist2.products = make_products(2, 0, 2);
  EXPECT_THROW(scenario.run_task("task-1", dist2), ProtocolError);
}

TEST(ProxyEdgeTest, UnknownParticipantLookupThrows) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  EXPECT_THROW(scenario.participant("nobody"), ProtocolError);
  EXPECT_THROW(scenario.truth("no-task"), ProtocolError);
  EXPECT_EQ(scenario.path_of(supplychain::make_epc(1, 1, 1)), nullptr);
}

TEST(ProxyEdgeTest, OutcomePointerLifecycle) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  scenario.run_task("task-1", dist);

  EXPECT_EQ(scenario.proxy().outcome(999), nullptr);  // unknown query id
  const std::uint64_t qid = scenario.proxy().begin_query(
      dist.products[0], ProductQuality::kGood);
  scenario.proxy().pump();
  const QueryOutcome* outcome = scenario.proxy().outcome(qid);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->query_id, qid);
  EXPECT_TRUE(outcome->complete);
}

TEST(ProxyEdgeTest, ConcurrentQueriesResolveIndependently) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 6);
  scenario.run_task("task-1", dist);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(scenario.proxy().begin_query(
        dist.products[static_cast<std::size_t>(i)],
        i % 2 == 0 ? ProductQuality::kGood : ProductQuality::kBad));
  }
  scenario.proxy().pump();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const QueryOutcome* outcome = scenario.proxy().outcome(ids[i]);
    ASSERT_NE(outcome, nullptr) << i;
    EXPECT_TRUE(outcome->complete) << i;
    EXPECT_EQ(outcome->path, *scenario.path_of(dist.products[i])) << i;
  }
}

TEST(ProxyEdgeTest, ReputationEventsLogged) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  scenario.run_task("task-1", dist);
  const QueryOutcome outcome =
      scenario.proxy().run_query(dist.products[0], ProductQuality::kGood);
  ASSERT_TRUE(outcome.complete);
  const auto& history = scenario.proxy().ledger().history();
  ASSERT_EQ(history.size(), outcome.path.size());
  for (const auto& event : history) {
    EXPECT_EQ(event.reason, "good-product-query");
    EXPECT_EQ(event.query_id, outcome.query_id);
    EXPECT_DOUBLE_EQ(event.delta, 1.0);
  }
}

TEST(ProxyEdgeTest, RepeatedQueriesAccumulateScores) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  scenario.run_task("task-1", dist);
  const auto product = dist.products[0];
  const QueryOutcome o1 =
      scenario.proxy().run_query(product, ProductQuality::kGood);
  const QueryOutcome o2 =
      scenario.proxy().run_query(product, ProductQuality::kGood);
  ASSERT_TRUE(o1.complete);
  ASSERT_TRUE(o2.complete);
  EXPECT_EQ(o1.path, o2.path);
  EXPECT_DOUBLE_EQ(scenario.proxy().reputation(o1.path.front()), 2.0);
}

TEST(ProxyEdgeTest, SingleParticipantTask) {
  // A chain where the initial participant is also the leaf for one branch:
  // build a graph with an isolated initial->leaf pair to exercise the
  // one-hop walk.
  SupplyChainGraph graph;
  graph.add_edge("solo-initial", "solo-leaf");
  Scenario scenario(graph, fast_config());
  DistributionConfig dist;
  dist.initial = "solo-initial";
  dist.products = make_products(1, 0, 1);
  scenario.run_task("t", dist);
  const QueryOutcome outcome =
      scenario.proxy().run_query(dist.products[0], ProductQuality::kBad);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.path,
            (std::vector<std::string>{"solo-initial", "solo-leaf"}));
}

TEST(ProxyEdgeTest, TranscriptRecordsFullExchange) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  scenario.run_task("task-1", dist);

  const std::uint64_t qid = scenario.proxy().begin_query(
      dist.products[0], ProductQuality::kGood);
  scenario.proxy().pump();
  const QueryOutcome* outcome = scenario.proxy().outcome(qid);
  ASSERT_NE(outcome, nullptr);
  ASSERT_TRUE(outcome->complete);

  const auto* transcript = scenario.proxy().transcript(qid);
  ASSERT_NE(transcript, nullptr);
  // Per hop: query_request/response + next_hop request/response = 4.
  EXPECT_EQ(transcript->size(), outcome->path.size() * 4);
  // Alternating direction, starting with an outgoing request.
  for (std::size_t i = 0; i < transcript->size(); ++i) {
    EXPECT_EQ((*transcript)[i].outgoing, i % 2 == 0) << i;
    EXPECT_GT((*transcript)[i].bytes, 0u) << i;
  }
  EXPECT_EQ(transcript->front().type, msg::kQueryRequest);
  EXPECT_EQ(transcript->back().type, msg::kNextHopResponse);
  EXPECT_EQ(scenario.proxy().transcript(9999), nullptr);
}

TEST(ProxyEdgeTest, JsonReportExport) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  scenario.run_task("task-1", dist);
  const QueryOutcome outcome =
      scenario.proxy().run_query(dist.products[0], ProductQuality::kGood);
  ASSERT_TRUE(outcome.complete);

  const std::string report_text = scenario.proxy().export_report_json();
  const json::Value report = json::parse(report_text);
  // Reputation board matches the ledger.
  for (const auto& [participant, score] :
       scenario.proxy().reputation_snapshot()) {
    EXPECT_DOUBLE_EQ(report.at("reputation").at(participant).as_double(),
                     score);
  }
  // The query appears with its path and completeness.
  const json::Array& queries = report.at("queries").as_array();
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_TRUE(queries[0].at("complete").as_bool());
  EXPECT_EQ(queries[0].at("quality").as_string(), "good");
  EXPECT_EQ(queries[0].at("path").as_array().size(), outcome.path.size());
  EXPECT_EQ(queries[0].at("product").as_string(), to_hex(outcome.product));
  // Events reference the query.
  const json::Array& events = report.at("events").as_array();
  ASSERT_EQ(events.size(), outcome.path.size());
  for (const json::Value& e : events) {
    EXPECT_EQ(e.at("query_id").as_int(),
              static_cast<std::int64_t>(outcome.query_id));
  }
}

TEST(ProxyEdgeTest, LedgerDefaultsToZero) {
  ReputationLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.score("anyone"), 0.0);
  ledger.apply("a", 2.5, "test", 1);
  ledger.apply("a", -1.0, "test", 2);
  EXPECT_DOUBLE_EQ(ledger.score("a"), 1.5);
  EXPECT_EQ(ledger.history().size(), 2u);
  EXPECT_EQ(ledger.snapshot().size(), 1u);
}

}  // namespace
}  // namespace desword::protocol
