// Verification-cache coverage (ISSUE 10): the epoch-versioned verdict
// cache must be a pure accelerator — never a way to smuggle a bad proof
// past the verifier, never a way to resurrect a verdict from a retired
// POC-list epoch.
//
//   * unit: LRU eviction under a small cap, epoch invalidation, rejected
//     verdicts never stored, bit-flipped proof bytes never alias a key;
//   * verifier level: a warm cache returns the identical outcome and a
//     tampered proof after a genuine hit is still rejected;
//   * protocol level: a repeated product query hits the proxy's hop memo
//     with an identical outcome, and a replacement POC-list submission
//     bumps the task epoch so stale entries are erased on next touch.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "crypto/hash.h"
#include "desword/messages.h"
#include "desword/scenario.h"
#include "net/network.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "poc/poc_list.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"
#include "zkedb/verify_cache.h"

namespace desword {
namespace {

namespace zk = zkedb;
namespace proto = protocol;
using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::ProductId;
using supplychain::SupplyChainGraph;
using zk::VerifyCache;
using zk::VerifyOutcome;

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

Bytes key_of(int i) {
  return TaggedHasher("test/cache-key").add_str(std::to_string(i)).digest();
}

std::uint64_t hits() { return obs::metric("zkedb.cache.hit").value(); }
std::uint64_t evictions() { return obs::metric("zkedb.cache.evict").value(); }
std::uint64_t stales() { return obs::metric("zkedb.cache.stale").value(); }

// ---------------------------------------------------------------------------
// VerifyCache unit coverage
// ---------------------------------------------------------------------------

TEST(VerifyCacheTest, HitReturnsStoredOutcome) {
  VerifyCache cache;
  const Bytes key = key_of(1);
  EXPECT_FALSE(cache.lookup(key, 0).has_value());
  cache.store(key, VerifyOutcome::accept_value(bytes_of("v")), 0);
  const std::uint64_t h0 = hits();
  const auto hit = cache.lookup(key, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->ok);
  EXPECT_EQ(**hit, bytes_of("v"));
  EXPECT_EQ(hits(), h0 + 1);
}

TEST(VerifyCacheTest, RejectionsAreNeverStored) {
  // Negative caching would let a flooder evict the legitimate working set
  // with free garbage proofs; rejections must stay uncached.
  VerifyCache cache;
  cache.store(key_of(1), VerifyOutcome::reject(), 0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key_of(1), 0).has_value());
}

TEST(VerifyCacheTest, LruEvictsOldestUnderSmallCap) {
  VerifyCache cache(VerifyCache::Config{/*capacity=*/4, /*shards=*/1});
  const std::uint64_t e0 = evictions();
  for (int i = 0; i < 4; ++i) {
    cache.store(key_of(i), VerifyOutcome::accept(), 0);
  }
  EXPECT_EQ(cache.size(), 4u);
  // Touch key 0 so key 1 becomes the LRU victim.
  ASSERT_TRUE(cache.lookup(key_of(0), 0).has_value());
  cache.store(key_of(4), VerifyOutcome::accept(), 0);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(evictions(), e0 + 1);
  EXPECT_FALSE(cache.lookup(key_of(1), 0).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_of(0), 0).has_value());   // kept (recently used)
  EXPECT_TRUE(cache.lookup(key_of(4), 0).has_value());
}

TEST(VerifyCacheTest, EpochMismatchErasesStaleEntry) {
  VerifyCache cache;
  const Bytes key = key_of(7);
  cache.store(key, VerifyOutcome::accept(), /*epoch=*/1);
  const std::uint64_t s0 = stales();
  EXPECT_FALSE(cache.lookup(key, /*epoch=*/2).has_value());
  EXPECT_EQ(stales(), s0 + 1);
  // The stale entry was erased, not just skipped: even its own epoch
  // misses now.
  EXPECT_FALSE(cache.lookup(key, /*epoch=*/1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerifyCacheTest, BitFlippedProofBytesNeverAliasAKey) {
  // Cache poisoning via key collision: a proof that shares every other
  // key component but differs in ONE bit of the proof bytes must map to a
  // different slot.
  const Bytes crs_digest = key_of(1);
  const Bytes commitment = bytes_of("commitment");
  const Bytes position = bytes_of("position");
  Bytes proof = bytes_of("proof-bytes");
  const Bytes genuine = VerifyCache::proof_key(crs_digest, commitment,
                                               position, proof, "membership");
  proof[0] ^= 0x01;
  const Bytes flipped = VerifyCache::proof_key(crs_digest, commitment,
                                               position, proof, "membership");
  EXPECT_NE(genuine, flipped);
  // The flavour is bound too: a non-membership verdict can never answer a
  // membership lookup for the same bytes.
  proof[0] ^= 0x01;
  EXPECT_NE(genuine, VerifyCache::proof_key(crs_digest, commitment, position,
                                            proof, "non_membership"));

  const Bytes hop = VerifyCache::hop_key("t0", "p1", position, commitment,
                                         proof, "ownership");
  proof[0] ^= 0x01;
  EXPECT_NE(hop, VerifyCache::hop_key("t0", "p1", position, commitment, proof,
                                      "ownership"));
}

// ---------------------------------------------------------------------------
// Verifier integration
// ---------------------------------------------------------------------------

class VerifyCacheEdbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zk::EdbConfig cfg{4, 4, 512, "p256", zk::SoftMode::kShared};
    crs_ = zk::generate_crs(cfg);
    std::map<Bytes, Bytes> entries;
    for (int i = 0; i < 4; ++i) {
      entries[zk::key_for_identifier(*crs_, bytes_of("k" + std::to_string(i)))] =
          bytes_of("value-" + std::to_string(i));
    }
    prover_ = std::make_unique<zk::EdbProver>(crs_, entries);
  }

  zk::EdbCrsPtr crs_;
  std::unique_ptr<zk::EdbProver> prover_;
};

TEST_F(VerifyCacheEdbTest, WarmHitReturnsIdenticalOutcome) {
  const zk::EdbKey key = zk::key_for_identifier(*crs_, bytes_of("k0"));
  const auto proof = prover_->prove_membership(key);
  zk::EdbVerifyOptions opts;
  opts.cache = std::make_shared<VerifyCache>();

  const auto cold =
      zk::edb_verify_membership(*crs_, prover_->commitment(), key, proof, opts);
  ASSERT_TRUE(cold.has_value());
  const std::uint64_t h0 = hits();
  const auto warm =
      zk::edb_verify_membership(*crs_, prover_->commitment(), key, proof, opts);
  EXPECT_EQ(hits(), h0 + 1);
  EXPECT_TRUE(cold == warm);
  EXPECT_EQ(*warm, bytes_of("value-0"));
}

TEST_F(VerifyCacheEdbTest, TamperedProofAfterGenuineHitIsRejected) {
  const zk::EdbKey key = zk::key_for_identifier(*crs_, bytes_of("k0"));
  const auto proof = prover_->prove_membership(key);
  zk::EdbVerifyOptions opts;
  opts.cache = std::make_shared<VerifyCache>();
  ASSERT_TRUE(zk::edb_verify_membership(*crs_, prover_->commitment(), key,
                                        proof, opts)
                  .has_value());

  // The genuine proof is cached. A tampered variant must neither hit the
  // cached acceptance nor verify.
  auto bad = proof;
  bad.value = bytes_of("forged");
  const std::uint64_t h0 = hits();
  EXPECT_FALSE(zk::edb_verify_membership(*crs_, prover_->commitment(), key,
                                         bad, opts)
                   .ok);
  EXPECT_EQ(hits(), h0);  // different proof bytes -> different key -> miss

  auto bad_opening = proof;
  bad_opening.openings[1].tau += Bignum(1);
  EXPECT_FALSE(zk::edb_verify_membership(*crs_, prover_->commitment(), key,
                                         bad_opening, opts)
                   .ok);
  EXPECT_EQ(hits(), h0);
}

TEST_F(VerifyCacheEdbTest, NonMembershipVerdictIsCachedToo) {
  const zk::EdbKey ghost = zk::key_for_identifier(*crs_, bytes_of("ghost"));
  const auto proof = prover_->prove_non_membership(ghost);
  zk::EdbVerifyOptions opts;
  opts.cache = std::make_shared<VerifyCache>();
  ASSERT_TRUE(zk::edb_verify_non_membership(*crs_, prover_->commitment(),
                                            ghost, proof, opts)
                  .ok);
  const std::uint64_t h0 = hits();
  const auto warm = zk::edb_verify_non_membership(*crs_, prover_->commitment(),
                                                  ghost, proof, opts);
  EXPECT_EQ(hits(), h0 + 1);
  EXPECT_TRUE(warm.ok);
  EXPECT_FALSE(warm.has_value());  // non-membership proves no value
}

// ---------------------------------------------------------------------------
// Protocol integration (proxy hop memo + epochs)
// ---------------------------------------------------------------------------

class VerifyCacheProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    proto::ScenarioConfig cfg;
    cfg.edb = zk::EdbConfig{4, 6, 512, "p256", zk::SoftMode::kShared};
    scenario_ = std::make_unique<proto::Scenario>(
        SupplyChainGraph::paper_example(), cfg);
    dist_.initial = "v0";
    dist_.products = make_products(1, 0, 3);
    dist_.seed = 7;
    scenario_->run_task("t0", dist_);
  }

  proto::QueryOutcome query(const ProductId& product) {
    return scenario_->proxy().run_query(product, proto::ProductQuality::kGood);
  }

  static std::pair<std::vector<std::string>, bool> digest(
      const proto::QueryOutcome& o) {
    return {o.path, o.complete};
  }

  std::unique_ptr<proto::Scenario> scenario_;
  DistributionConfig dist_;
};

TEST_F(VerifyCacheProtocolTest, RepeatedQueryHitsTheHopMemo) {
  const ProductId& product = dist_.products[0];
  const auto first = query(product);
  EXPECT_TRUE(first.complete);

  const std::uint64_t h0 = hits();
  const auto second = query(product);
  EXPECT_GT(hits(), h0) << "repeat query must reuse cached hop verdicts";
  EXPECT_EQ(digest(first), digest(second));
  EXPECT_TRUE(second.violations.empty());
}

TEST_F(VerifyCacheProtocolTest, RepeatedQuerySkipsProofRegeneration) {
  const ProductId& product = dist_.products[0];
  const auto first = query(product);
  ASSERT_TRUE(first.complete);

  // Participants memoize per committed statement: a repeat of the same
  // query re-serves identical proof bytes without touching PocScheme.
  std::uint64_t generated = 0;
  for (const auto& id : scenario_->graph().participants()) {
    generated += scenario_->participant(id).stats().proofs_generated;
  }
  const auto second = query(product);
  std::uint64_t generated_after = 0;
  for (const auto& id : scenario_->graph().participants()) {
    generated_after += scenario_->participant(id).stats().proofs_generated;
  }
  EXPECT_EQ(generated_after, generated)
      << "repeat query must not re-run proof generation";
  EXPECT_EQ(digest(first), digest(second));
}

TEST_F(VerifyCacheProtocolTest, ListReplacementBumpsEpochAndStalesEntries) {
  const ProductId& product = dist_.products[0];
  const auto first = query(product);
  ASSERT_TRUE(first.complete);

  // Build a replacement POC list for t0: same POCs, minus one edge that
  // the queried product's path never crosses. Different bytes -> the
  // proxy treats it as a NEW distribution epoch for the task.
  const poc::PocList* orig = scenario_->proxy().task_list("t0");
  ASSERT_NE(orig, nullptr);
  const auto& path = scenario_->truth("t0").paths.at(product);
  const auto on_path = [&](const std::string& a, const std::string& b) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i] == a && path[i + 1] == b) return true;
    }
    return false;
  };
  poc::PocList fresh(orig->ps());
  for (const std::string& p : orig->participants()) {
    fresh.add_poc(*orig->find(p));
  }
  bool dropped = false;
  for (const std::string& parent : orig->participants()) {
    for (const std::string& child : orig->children_of(parent)) {
      if (!dropped && !on_path(parent, child)) {
        dropped = true;  // omit exactly this edge
        continue;
      }
      fresh.add_edge(parent, child);
    }
  }
  ASSERT_TRUE(dropped) << "no off-path edge to drop; pick another product";

  net::SimTransport sender(scenario_->network());
  sender.send("v0", "proxy", proto::msg::kPocListSubmit,
              proto::PocListSubmit{"t0", fresh.serialize()}.serialize());
  scenario_->network().run();
  ASSERT_NE(scenario_->proxy().task_list("t0"), nullptr);

  // The re-query re-walks the same hops; every memoized verdict carries
  // the retired epoch, so each touch is a stale erase, never a hit.
  const std::uint64_t s0 = stales();
  const auto second = query(product);
  EXPECT_GT(stales(), s0)
      << "old-epoch entries must be erased on first touch";
  EXPECT_EQ(digest(first), digest(second));
}

// ---------------------------------------------------------------------------
// Cache-on / cache-off equivalence (no faults; the chaos suite covers the
// faulted cells)
// ---------------------------------------------------------------------------

TEST(VerifyCacheEquivalenceTest, CacheOffReachesIdenticalOutcome) {
  const auto run = [](bool cache) {
    proto::ScenarioConfig cfg;
    cfg.edb = zk::EdbConfig{4, 6, 512, "p256", zk::SoftMode::kShared};
    cfg.verify_cache = cache;
    proto::Scenario scenario(SupplyChainGraph::paper_example(), cfg);
    DistributionConfig dist;
    dist.initial = "v0";
    dist.products = make_products(1, 0, 2);
    dist.seed = 11;
    scenario.run_task("t0", dist);
    std::vector<std::string> paths;
    for (int round = 0; round < 2; ++round) {
      for (const ProductId& p : dist.products) {
        const auto outcome =
            scenario.proxy().run_query(p, proto::ProductQuality::kGood);
        EXPECT_TRUE(outcome.complete);
        for (const std::string& hop : outcome.path) paths.push_back(hop);
      }
    }
    return std::make_pair(paths, scenario.proxy().reputation_snapshot());
  };
  const auto on = run(true);
  const auto off = run(false);
  EXPECT_EQ(on.first, off.first);
  EXPECT_EQ(on.second, off.second);
}

}  // namespace
}  // namespace desword
