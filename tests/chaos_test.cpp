// Chaos soak: the DE-Sword incentive argument (§V) needs every query to
// terminate in a verdict no matter what the network does. This suite
// drives full deployments through deterministic fault plans — loss,
// resets, duplication, delays, partitions, crash windows — and asserts:
//
//   * serial and concurrent query schedulers reach identical verdicts
//     under identical plans (the FaultInjector's order-independent fates);
//   * every query resolves within its `query_deadline` budget and the
//     pump never reports a stalled session;
//   * a participant dark for the whole distribution phase produces a
//     bounded give-up naming it — never a wedged `run_task`.
//
// Plus unit coverage of the FaultInjector decorator itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "desword/messages.h"
#include "desword/scenario.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace desword::protocol {
namespace {

using net::CrashWindow;
using net::FaultInjector;
using net::FaultPlan;
using net::FaultWindow;
using net::Partition;
using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::SupplyChainGraph;

// ---------------------------------------------------------------------------
// FaultInjector unit coverage
// ---------------------------------------------------------------------------

/// Two-node harness over a raw SimTransport recording deliveries at "b".
struct InjectorRig {
  explicit InjectorRig(FaultPlan plan)
      : network(1), sim(network), fault(sim, std::move(plan)) {
    fault.register_node("a", [](const net::Envelope&) {});
    fault.register_node("b", [this](const net::Envelope& env) {
      deliveries.push_back({env.type, env.payload});
    });
  }

  void pump() {
    while (fault.poll() > 0) {
    }
  }

  net::Network network;
  net::SimTransport sim;
  FaultInjector fault;
  std::vector<std::pair<std::string, Bytes>> deliveries;
};

TEST(FaultInjectorTest, CertainDropIsSilentAndCounted) {
  FaultPlan plan;
  plan.default_faults.drop_rate = 1.0;
  InjectorRig rig(plan);
  const std::uint64_t before = obs::metric("net.fault.dropped").value();
  EXPECT_TRUE(rig.fault.send("a", "b", "t", Bytes{1}))
      << "silent loss must look like success to the sender";
  rig.pump();
  EXPECT_TRUE(rig.deliveries.empty());
  EXPECT_EQ(obs::metric("net.fault.dropped").value() - before, 1u);
}

TEST(FaultInjectorTest, ResetReportsFailureToSender) {
  FaultPlan plan;
  plan.default_faults.reset_rate = 1.0;
  InjectorRig rig(plan);
  const std::uint64_t before = obs::metric("net.fault.reset").value();
  EXPECT_FALSE(rig.fault.send("a", "b", "t", Bytes{1}))
      << "a reset is a failure the transport KNOWS about";
  rig.pump();
  EXPECT_TRUE(rig.deliveries.empty());
  EXPECT_EQ(obs::metric("net.fault.reset").value() - before, 1u);
}

TEST(FaultInjectorTest, CrashWindowFatesDependOnSide) {
  FaultPlan plan;
  plan.crashes.push_back(CrashWindow{"b", FaultWindow{0, 0}});  // b dark
  InjectorRig rig(plan);
  // Send TO the crashed node: the refused connect is visible.
  EXPECT_FALSE(rig.fault.send("a", "b", "t", Bytes{1}));
  // Send FROM the crashed node: a zombie never learns it is dead.
  EXPECT_TRUE(rig.fault.send("b", "a", "t", Bytes{2}));
  rig.pump();
  EXPECT_TRUE(rig.deliveries.empty());
}

TEST(FaultInjectorTest, PartitionDropsBothDirectionsThenHeals) {
  FaultPlan plan;
  plan.partitions.push_back(
      Partition{{"a"}, {"b"}, FaultWindow{0, 4}});  // heals at t=4
  InjectorRig rig(plan);
  rig.fault.register_node("c", [](const net::Envelope&) {});
  rig.fault.register_node("d", [](const net::Envelope&) {});

  EXPECT_TRUE(rig.fault.send("a", "b", "t", Bytes{1}));  // silent drop
  EXPECT_TRUE(rig.fault.send("b", "a", "t", Bytes{2}));  // both directions
  rig.pump();
  EXPECT_TRUE(rig.deliveries.empty());

  // Unrelated traffic advances the simulated clock past the heal time
  // (latency 1 per delivery).
  for (int i = 0; i < 5; ++i) {
    rig.fault.send("c", "d", "filler", Bytes{});
    rig.pump();
  }
  ASSERT_GE(rig.fault.now(), 4u);
  EXPECT_TRUE(rig.fault.send("a", "b", "t", Bytes{3}));
  rig.pump();
  ASSERT_EQ(rig.deliveries.size(), 1u) << "the partition must heal";
  EXPECT_EQ(rig.deliveries[0].second, Bytes{3});
}

TEST(FaultInjectorTest, DuplicateDeliversTwice) {
  FaultPlan plan;
  plan.default_faults.duplicate_rate = 1.0;
  InjectorRig rig(plan);
  EXPECT_TRUE(rig.fault.send("a", "b", "t", Bytes{7}));
  rig.pump();
  ASSERT_EQ(rig.deliveries.size(), 2u);
  EXPECT_EQ(rig.deliveries[0].second, rig.deliveries[1].second);
}

TEST(FaultInjectorTest, DelayedFrameArrivesViaTimer) {
  FaultPlan plan;
  plan.default_faults.delay_rate = 1.0;
  plan.default_faults.delay = 10;
  InjectorRig rig(plan);
  EXPECT_TRUE(rig.fault.send("a", "b", "t", Bytes{9}));
  EXPECT_EQ(rig.fault.pending_timers(), 1u) << "the frame is held on a timer";
  rig.pump();  // quiescence fires the delay timer, then delivers
  ASSERT_EQ(rig.deliveries.size(), 1u);
  EXPECT_EQ(rig.deliveries[0].second, Bytes{9});
}

TEST(FaultInjectorTest, TeardownCancelsHeldFrames) {
  net::Network network(1);
  net::SimTransport sim(network);
  std::size_t delivered = 0;
  sim.register_node("a", [](const net::Envelope&) {});
  sim.register_node("b", [&](const net::Envelope&) { ++delivered; });
  {
    FaultPlan plan;
    plan.default_faults.delay_rate = 1.0;
    FaultInjector fault(sim, plan);
    fault.send("a", "b", "t", Bytes{1});
    EXPECT_EQ(sim.pending_timers(), 1u);
  }
  // The injector died with the frame still held: the timer must be gone,
  // and polling the surviving inner transport must not deliver (or crash).
  EXPECT_EQ(sim.pending_timers(), 0u);
  while (sim.poll() > 0) {
  }
  EXPECT_EQ(delivered, 0u);
}

TEST(FaultInjectorTest, RetransmissionsDrawFreshFates) {
  FaultPlan plan;
  plan.seed = 3;
  plan.default_faults.drop_rate = 0.5;
  InjectorRig rig(plan);
  const Bytes frame{42};  // identical payload, 32 attempts
  for (int i = 0; i < 32; ++i) {
    rig.fault.send("a", "b", "t", frame);
    rig.pump();
  }
  // The attempt counter decorrelates retransmissions: at 50% loss some
  // attempts must die and some must land (all-or-nothing would mean one
  // fate is reused for every attempt).
  EXPECT_GT(rig.deliveries.size(), 0u);
  EXPECT_LT(rig.deliveries.size(), 32u);
}

TEST(FaultInjectorTest, EqualSeedsGiveEqualFates) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.default_faults.drop_rate = 0.4;
    plan.default_faults.duplicate_rate = 0.2;
    InjectorRig rig(plan);
    for (int i = 0; i < 24; ++i) {
      rig.fault.send("a", "b", "t" + std::to_string(i % 3),
                     Bytes{static_cast<std::uint8_t>(i)});
      rig.pump();
    }
    return rig.deliveries;
  };
  EXPECT_EQ(run(11), run(11)) << "same plan, same fates — replayable chaos";
}

// ---------------------------------------------------------------------------
// Chaos sweep: seeds x fault plans x schedulers
// ---------------------------------------------------------------------------

/// Comparable digest of a query outcome (order-sensitive; violations are
/// recorded in walk order, which the sweep asserts is scheduler-invariant).
struct OutcomeDigest {
  bool complete = false;
  std::vector<std::string> path;
  std::vector<std::pair<std::string, std::string>> violations;

  bool operator==(const OutcomeDigest&) const = default;
};

enum class Cell { kLoss10, kLoss30, kPartition, kCrash };

const char* cell_name(Cell cell) {
  switch (cell) {
    case Cell::kLoss10: return "loss10";
    case Cell::kLoss30: return "loss30";
    case Cell::kPartition: return "partition";
    case Cell::kCrash: return "crash";
  }
  return "?";
}

constexpr std::uint64_t kQueryDeadline = 200000;

struct SweepRun {
  std::vector<OutcomeDigest> outcomes;
  std::map<std::string, double> reputation;
};

/// One full deployment under one fault plan and one scheduler. The
/// distribution phase runs under background loss only; partition/crash
/// windows are swapped in afterwards as open-ended windows, which makes
/// them schedule-independent on the simulated clock (a timed window would
/// cover different message sets in serial vs concurrent runs).
SweepRun run_cell(Cell cell, std::uint64_t seed, bool concurrent,
                  bool verify_cache = true) {
  FaultPlan plan;
  plan.seed = seed;
  plan.default_faults.drop_rate = cell == Cell::kLoss30 ? 0.30 : 0.10;

  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  cfg.fault_plan = plan;
  cfg.query_deadline = kQueryDeadline;
  cfg.max_concurrent_queries = concurrent ? 8 : 1;
  cfg.verify_cache = verify_cache;
  Scenario scenario(SupplyChainGraph::paper_example(), cfg);

  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 3);
  dist.seed = 7;
  const auto& truth = scenario.run_task("t0", dist);

  const auto& victim_path = truth.paths.at(dist.products[0]);
  const std::string victim =
      victim_path.size() > 1 ? victim_path[1] : victim_path[0];
  if (cell == Cell::kPartition) {
    FaultPlan query_plan = plan;
    query_plan.partitions.push_back(
        Partition{{"proxy"}, {victim}, FaultWindow{0, 0}});
    scenario.fault_injector()->set_plan(query_plan);
  } else if (cell == Cell::kCrash) {
    FaultPlan query_plan = plan;
    query_plan.crashes.push_back(CrashWindow{victim, FaultWindow{0, 0}});
    scenario.fault_injector()->set_plan(query_plan);
  }

  std::vector<Proxy::QuerySpec> specs;
  for (std::size_t i = 0; i < dist.products.size(); ++i) {
    specs.push_back(Proxy::QuerySpec{
        dist.products[i],
        i % 2 == 0 ? ProductQuality::kGood : ProductQuality::kBad,
        {}});
  }

  SweepRun run;
  std::vector<std::uint64_t> ids;
  for (const QueryOutcome& outcome : scenario.proxy().run_queries(specs)) {
    OutcomeDigest d;
    d.complete = outcome.complete;
    d.path = outcome.path;
    for (const Violation& v : outcome.violations) {
      d.violations.emplace_back(v.participant, to_string(v.type));
    }
    run.outcomes.push_back(std::move(d));
    ids.push_back(outcome.query_id);
  }
  run.reputation = scenario.proxy().reputation_snapshot();

  // Every query must have resolved within its deadline budget.
  for (const std::uint64_t qid : ids) {
    const obs::QueryTrace* trace = scenario.proxy().query_trace(qid);
    EXPECT_TRUE(trace != nullptr);
    if (trace == nullptr || trace->spans().empty()) continue;
    EXPECT_EQ(trace->count(obs::span::kFinished), 1u);
    const std::uint64_t begun = trace->spans().front().at;
    const std::uint64_t finished = trace->spans().back().at;
    EXPECT_LE(finished - begun, kQueryDeadline)
        << cell_name(cell) << " seed " << seed << " query " << qid;
  }
  return run;
}

TEST(ChaosSweepTest, SerialAndConcurrentSchedulersAgreeUnderFaults) {
  const std::uint64_t stalled_before =
      obs::metric("protocol.pump.stalled").value();
  const std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 34};
  const std::vector<Cell> cells{Cell::kLoss10, Cell::kLoss30,
                                Cell::kPartition, Cell::kCrash};
  for (const Cell cell : cells) {
    for (const std::uint64_t seed : seeds) {
      SCOPED_TRACE(std::string(cell_name(cell)) + " seed " +
                   std::to_string(seed));
      const SweepRun serial = run_cell(cell, seed, /*concurrent=*/false);
      const SweepRun concurrent = run_cell(cell, seed, /*concurrent=*/true);
      ASSERT_EQ(serial.outcomes.size(), concurrent.outcomes.size());
      for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
        EXPECT_TRUE(serial.outcomes[i] == concurrent.outcomes[i])
            << "query " << i << " diverged between schedulers";
      }
      ASSERT_EQ(serial.reputation.size(), concurrent.reputation.size());
      for (const auto& [participant, score] : serial.reputation) {
        const auto it = concurrent.reputation.find(participant);
        ASSERT_TRUE(it != concurrent.reputation.end()) << participant;
        EXPECT_DOUBLE_EQ(score, it->second) << participant;
      }
    }
  }
  EXPECT_EQ(obs::metric("protocol.pump.stalled").value(), stalled_before)
      << "no pump round may ever report a stalled session";
}

TEST(ChaosSweepTest, VerifyCacheOnAndOffAgreeUnderFaults) {
  // The epoch-versioned verification cache (ISSUE 10) must be outcome-
  // invisible even when the network mangles the walk: identical verdict
  // digests AND identical reputation, per seed, with the cache on vs off.
  const std::vector<std::uint64_t> seeds{1, 2, 3, 5, 8, 13, 21, 34};
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("loss10 seed " + std::to_string(seed));
    const SweepRun cached =
        run_cell(Cell::kLoss10, seed, /*concurrent=*/true, /*cache=*/true);
    const SweepRun uncached =
        run_cell(Cell::kLoss10, seed, /*concurrent=*/true, /*cache=*/false);
    ASSERT_EQ(cached.outcomes.size(), uncached.outcomes.size());
    for (std::size_t i = 0; i < cached.outcomes.size(); ++i) {
      EXPECT_TRUE(cached.outcomes[i] == uncached.outcomes[i])
          << "query " << i << " diverged between cache modes";
    }
    ASSERT_EQ(cached.reputation.size(), uncached.reputation.size());
    for (const auto& [participant, score] : cached.reputation) {
      const auto it = uncached.reputation.find(participant);
      ASSERT_TRUE(it != uncached.reputation.end()) << participant;
      EXPECT_DOUBLE_EQ(score, it->second) << participant;
    }
  }
}

TEST(ChaosSweepTest, FaultedWalksRecordNoResponseAgainstTheVictim) {
  // Sanity-check the crash cell actually bites: the victim sits on the
  // first product's path, so that query must abort on a kNoResponse.
  const SweepRun run = run_cell(Cell::kCrash, 1, /*concurrent=*/false);
  bool saw_no_response = false;
  for (const OutcomeDigest& d : run.outcomes) {
    for (const auto& [participant, type] : d.violations) {
      if (type == to_string(ViolationType::kNoResponse)) {
        saw_no_response = true;
      }
    }
  }
  EXPECT_TRUE(saw_no_response);
}

// ---------------------------------------------------------------------------
// Distribution-phase robustness
// ---------------------------------------------------------------------------

TEST(ChaosDistributionTest, DarkParticipantProducesBoundedGiveUpNamingIt) {
  // The wedge this PR fixes: a participant dark for the WHOLE distribution
  // phase used to stall `run_task` forever (the initial re-requested ps
  // with no bound and the harness kept waiting). Now the initial gives up
  // after its retry budget and the error names exactly who never reported.
  FaultPlan plan;
  plan.seed = 5;
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  cfg.fault_plan = plan;
  cfg.max_distribution_retries = 4;
  Scenario scenario(SupplyChainGraph::paper_example(), cfg);

  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 3);
  dist.seed = 7;

  // Routing is a pure function of the config, so the ground truth tells us
  // who will be involved before the protocol runs: black out a non-initial
  // participant on the first product's path for the whole phase.
  const auto preview =
      supplychain::run_distribution(SupplyChainGraph::paper_example(), dist);
  const auto& victim_path = preview.paths.at(dist.products[0]);
  ASSERT_GT(victim_path.size(), 1u);
  const std::string victim = victim_path[1];
  FaultPlan dark = plan;
  dark.crashes.push_back(CrashWindow{victim, FaultWindow{0, 0}});
  scenario.fault_injector()->set_plan(dark);

  const std::uint64_t gaveup_before =
      obs::metric("protocol.distribution.gaveup").value();
  try {
    scenario.run_task("t0", dist);
    FAIL() << "a dark participant must surface a distribution error";
  } catch (const ProtocolError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("missing reports from"), std::string::npos) << what;
    EXPECT_NE(what.find(victim), std::string::npos)
        << "the give-up must name the dark participant: " << what;
  }
  EXPECT_EQ(obs::metric("protocol.distribution.gaveup").value(),
            gaveup_before + 1);
}

TEST(ChaosDistributionTest, LostListSubmitIsResentUntilTheProxyHasIt) {
  // Regression for the subtler wedge: everything delivered EXCEPT the
  // final PocListSubmit. The initial used to latch list_submitted and stop
  // retrying, leaving the proxy permanently listless.
  FaultPlan plan;
  plan.seed = 9;
  plan.rules.push_back(net::FaultRule{"v0", "proxy", {}});
  plan.rules.back().faults.drop_rate = 0.6;  // ps requests + list submits
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  cfg.fault_plan = plan;
  Scenario scenario(SupplyChainGraph::paper_example(), cfg);

  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 2);
  dist.seed = 7;
  scenario.run_task("t0", dist);  // throws if distribution wedges
  EXPECT_TRUE(scenario.proxy().task_list("t0") != nullptr);
}

TEST(ChaosDistributionTest, OrphanedDistributionMessagesAreCounted) {
  // A ps/report for a task the receiver never began must not vanish
  // silently — `net.distribution.orphaned` feeds `desword stats`.
  net::Network network(1);
  net::SimTransport sim(network);
  Participant participant(
      "p0", sim, "proxy",
      ParticipantDeps{.crs_cache = std::make_shared<CrsCache>()});
  sim.register_node("proxy", [](const net::Envelope&) {});

  const std::uint64_t before =
      obs::metric("net.distribution.orphaned").value();
  sim.send("proxy", "p0", msg::kPocToParent,
           PocToParent{"no-such-task", Bytes{1, 2, 3}}.serialize());
  while (sim.poll() > 0) {
  }
  EXPECT_EQ(obs::metric("net.distribution.orphaned").value(), before + 1);
}

}  // namespace
}  // namespace desword::protocol
