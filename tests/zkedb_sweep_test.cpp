// Parameterized conformance sweep: the ZK-EDB must behave identically
// across branching factors, heights, key-space sizes, group backends and
// RSA modulus sizes. Each configuration runs the same battery:
// commit -> prove members & non-members -> verify -> reject cross-key
// replays.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "crypto/hash.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace desword::zkedb {
namespace {

struct SweepParam {
  std::uint32_t q;
  std::uint32_t h;
  int rsa_bits;
  const char* group;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return "q" + std::to_string(info.param.q) + "h" +
         std::to_string(info.param.h) + "rsa" +
         std::to_string(info.param.rsa_bits) + "_" +
         (std::string(info.param.group) == "p256" ? "p256" : "modp");
}

class ZkEdbSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const SweepParam& p = GetParam();
    EdbConfig cfg;
    cfg.q = p.q;
    cfg.height = p.h;
    cfg.rsa_bits = p.rsa_bits;
    cfg.group_name = p.group;
    crs_ = generate_crs(cfg);
  }

  EdbKey key(const std::string& id) const {
    return key_for_identifier(*crs_, bytes_of(id));
  }

  EdbCrsPtr crs_;
};

TEST_P(ZkEdbSweep, FullBattery) {
  std::map<Bytes, Bytes> entries;
  std::vector<std::string> member_ids;
  for (int i = 0; i < 6; ++i) {
    const std::string id = "member-" + std::to_string(i);
    const EdbKey k = key(id);
    if (entries.emplace(k, bytes_of("value:" + id)).second) {
      member_ids.push_back(id);
    }
    // (tiny key spaces may collide; skip collided ids)
  }
  EdbProver prover(crs_, entries);

  // Members verify and recover their values.
  for (const std::string& id : member_ids) {
    const EdbKey k = key(id);
    const auto proof = prover.prove_membership(k);
    const auto value =
        edb_verify_membership(*crs_, prover.commitment(), k, proof);
    ASSERT_TRUE(value.has_value()) << id;
    EXPECT_EQ(*value, bytes_of("value:" + id));
    // Replay against a different member's key fails.
    for (const std::string& other : member_ids) {
      if (other == id) continue;
      EXPECT_FALSE(edb_verify_membership(*crs_, prover.commitment(),
                                         key(other), proof)
                       .has_value());
      break;  // one cross-check per member keeps the sweep fast
    }
  }

  // Non-members produce valid non-membership proofs.
  for (int i = 0; i < 3; ++i) {
    const std::string id = "ghost-" + std::to_string(i);
    const EdbKey k = key(id);
    if (entries.find(k) != entries.end()) continue;  // collided, skip
    const auto proof = prover.prove_non_membership(k);
    EXPECT_TRUE(
        edb_verify_non_membership(*crs_, prover.commitment(), k, proof))
        << id;
    // A non-membership proof never validates for a member key.
    if (!member_ids.empty()) {
      EXPECT_FALSE(edb_verify_non_membership(*crs_, prover.commitment(),
                                             key(member_ids[0]), proof));
    }
  }

  // Proof sizes are independent of which key is proven (privacy of access
  // structure) — all membership proofs serialize to the same length.
  if (member_ids.size() >= 2) {
    const auto p1 = prover.prove_membership(key(member_ids[0]));
    const auto p2 = prover.prove_membership(key(member_ids[1]));
    EXPECT_EQ(p1.serialize(*crs_).size(), p2.serialize(*crs_).size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ZkEdbSweep,
    ::testing::Values(SweepParam{2, 16, 512, "p256"},     // binary tree
                      SweepParam{4, 8, 512, "p256"},      // default test
                      SweepParam{16, 4, 512, "p256"},     // wide/shallow
                      SweepParam{3, 10, 512, "p256"},     // non-power-of-2 q
                      SweepParam{4, 8, 768, "p256"},      // larger modulus
                      SweepParam{4, 8, 512, "modp512-test"}),  // DL backend
    param_name);

}  // namespace
}  // namespace desword::zkedb
