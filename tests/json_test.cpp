#include <gtest/gtest.h>

#include "common/json.h"

namespace desword::json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesContainers) {
  const Value v = parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.is_object());
  const Array& arr = v.at("a").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[0].as_int(), 1);
  EXPECT_EQ(arr[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").is_null());
  EXPECT_TRUE(v.at("missing").is_null());
  EXPECT_TRUE(v.has("d"));
  EXPECT_FALSE(v.has("missing"));
}

TEST(JsonTest, WhitespaceTolerant) {
  const Value v = parse("  {\n\t\"k\" :  [ 1 ,\r 2 ]\n} ");
  EXPECT_EQ(v.at("k").as_array().size(), 2u);
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd")").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(parse(R"("Aé中")").as_string(), "A\xc3\xa9\xe4\xb8\xad");
  EXPECT_THROW(parse(R"("\ud800")"), SerializationError);
  EXPECT_THROW(parse(R"("\q")"), SerializationError);
  EXPECT_THROW(parse("\"ctrl\x01char\""), SerializationError);
}

TEST(JsonTest, DumpRoundTrip) {
  const char* doc =
      R"({"name":"v1","count":3,"weights":[1.5,2],"nested":{"ok":true},"none":null})";
  const Value v = parse(doc);
  const Value again = parse(v.dump());
  EXPECT_EQ(again.at("name").as_string(), "v1");
  EXPECT_EQ(again.at("count").as_int(), 3);
  EXPECT_TRUE(again.at("nested").at("ok").as_bool());
  // Insertion order preserved.
  EXPECT_EQ(v.dump(), again.dump());
}

TEST(JsonTest, DumpEscapesStrings) {
  Object obj;
  obj["k\"ey"] = Value(std::string("line1\nline2\x01"));
  const std::string out = Value(std::move(obj)).dump();
  EXPECT_EQ(parse(out).at("k\"ey").as_string(), "line1\nline2\x01");
}

TEST(JsonTest, PrettyDumpParses) {
  const Value v = parse(R"({"a":[1,2],"b":{}})");
  const std::string pretty = v.dump_pretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty).dump(), v.dump());
}

TEST(JsonTest, BuilderInterface) {
  Value root;
  root.mutable_object()["ids"].mutable_array().push_back(Value("a"));
  root.mutable_object()["ids"].mutable_array().push_back(Value("b"));
  root.mutable_object()["n"] = Value(std::int64_t{7});
  const Value parsed = parse(root.dump());
  EXPECT_EQ(parsed.at("ids").as_array().size(), 2u);
  EXPECT_EQ(parsed.at("n").as_int(), 7);
}

TEST(JsonTest, MalformedInputsRejected) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "nul", "01x", "-",
        "\"unterminated", "[1 2]", "{\"a\":1,}", "[]]", "{\"a\":1}extra",
        R"({"a":1,"a":2})"}) {
    EXPECT_THROW(parse(bad), SerializationError) << bad;
  }
}

TEST(JsonTest, DeepNestingRejected) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW(parse(deep), SerializationError);
}

TEST(JsonTest, IntExactness) {
  EXPECT_EQ(parse("9007199254740991").as_int(), 9007199254740991LL);
  EXPECT_THROW(parse("2.5").as_int(), SerializationError);
  EXPECT_DOUBLE_EQ(parse("42").as_double(), 42.0);  // int usable as double
}

}  // namespace
}  // namespace desword::json
