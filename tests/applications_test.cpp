#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "desword/applications.h"
#include "desword/scenario.h"

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::ProductId;
using supplychain::SupplyChainGraph;

ScenarioConfig fast_config() {
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  return cfg;
}

class ApplicationsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<Scenario>(SupplyChainGraph::paper_example(),
                                           fast_config());
    products_ = make_products(1, 500, 8);
    DistributionConfig dist;
    dist.initial = "v0";
    dist.products = products_;
    dist.seed = 11;
    scenario_->run_task("lot", dist);
  }

  std::unique_ptr<Scenario> scenario_;
  std::vector<ProductId> products_;
};

TEST_F(ApplicationsTest, InvestigationLocatesSourceAndRecallSet) {
  ContaminationInvestigator investigator(scenario_->proxy());
  const ProductId bad = products_[0];
  const InvestigationReport report =
      investigator.investigate(bad, products_, /*suspect_hop=*/1);

  ASSERT_TRUE(report.located());
  EXPECT_EQ(report.source, "v0");
  EXPECT_EQ(report.suspect_stage, (*scenario_->path_of(bad))[1]);
  EXPECT_EQ(report.sibling_queries.size(), products_.size() - 1);

  // The recall set is exactly the siblings whose ground-truth paths pass
  // through the suspect stage.
  std::vector<ProductId> expected;
  for (const ProductId& p : products_) {
    if (p == bad) continue;
    const auto& path = *scenario_->path_of(p);
    if (std::find(path.begin(), path.end(), report.suspect_stage) !=
        path.end()) {
      expected.push_back(p);
    }
  }
  EXPECT_EQ(report.recall_set, expected);
}

TEST_F(ApplicationsTest, InvestigationOfUnknownProductReportsNotLocated) {
  ContaminationInvestigator investigator(scenario_->proxy());
  const InvestigationReport report = investigator.investigate(
      supplychain::make_epc(9, 9, 9), products_, 1);
  EXPECT_FALSE(report.located());
  EXPECT_TRUE(report.recall_set.empty());
}

TEST_F(ApplicationsTest, CounterfeitDetectorAuthenticatesRealProducts) {
  CounterfeitDetector detector(scenario_->proxy(), {"v0", "v1"});
  const ProvenanceReport report = detector.check(products_[1]);
  EXPECT_EQ(report.verdict, ProvenanceVerdict::kAuthentic);
}

TEST_F(ApplicationsTest, CounterfeitDetectorFlagsUnknownProducts) {
  CounterfeitDetector detector(scenario_->proxy(), {"v0", "v1"});
  const ProvenanceReport report =
      detector.check(supplychain::make_epc(7, 7, 7777));
  EXPECT_EQ(report.verdict, ProvenanceVerdict::kUnknownOrigin);
  EXPECT_EQ(to_string(report.verdict), "unknown-origin");
}

TEST_F(ApplicationsTest, CounterfeitDetectorFlagsUnlicensedOrigin) {
  // License only v1; products from v0's task become suspect.
  CounterfeitDetector detector(scenario_->proxy(), {"v1"});
  const ProvenanceReport report = detector.check(products_[0]);
  EXPECT_EQ(report.verdict, ProvenanceVerdict::kSuspect);
  EXPECT_NE(report.reason.find("unlicensed"), std::string::npos);
}

TEST_F(ApplicationsTest, CounterfeitDetectorFlagsBrokenChain) {
  // A mid-path participant goes dark: chain breaks, product is suspect.
  const ProductId product = products_[2];
  const auto& path = *scenario_->path_of(product);
  QueryBehavior dark;
  dark.unresponsive = true;
  scenario_->participant(path[1]).set_query_behavior(dark);

  CounterfeitDetector detector(scenario_->proxy(), {"v0", "v1"});
  const ProvenanceReport report = detector.check(product);
  EXPECT_EQ(report.verdict, ProvenanceVerdict::kSuspect);
}

TEST_F(ApplicationsTest, MarketSamplerRespectsRateAndScores) {
  MarketSampler sampler(scenario_->proxy(), /*seed=*/5);
  const auto outcomes = sampler.sweep(
      products_, /*rate=*/1.0,
      [](const ProductId&) { return ProductQuality::kGood; });
  EXPECT_EQ(outcomes.size(), products_.size());
  EXPECT_EQ(sampler.sampled_count(), products_.size());
  // Every participant on any path earned positive reputation.
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.complete);
    for (const auto& hop : outcome.path) {
      EXPECT_GT(scenario_->proxy().reputation(hop), 0.0);
    }
  }

  MarketSampler never(scenario_->proxy(), 6);
  EXPECT_TRUE(never
                  .sweep(products_, 0.0,
                         [](const ProductId&) { return ProductQuality::kGood; })
                  .empty());
}

TEST_F(ApplicationsTest, MarketSamplerUsesOracleQuality) {
  MarketSampler sampler(scenario_->proxy(), 7);
  const ProductId bad_one = products_[3];
  const auto outcomes = sampler.sweep(
      products_, 1.0, [&](const ProductId& p) {
        return p == bad_one ? ProductQuality::kBad : ProductQuality::kGood;
      });
  bool saw_bad = false;
  for (const auto& outcome : outcomes) {
    if (outcome.product == bad_one) {
      EXPECT_EQ(outcome.quality, ProductQuality::kBad);
      saw_bad = true;
    }
  }
  EXPECT_TRUE(saw_bad);
}

}  // namespace
}  // namespace desword::protocol
