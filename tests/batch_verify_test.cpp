// Differential tests for the randomized batch-verification engine
// (mercurial/batch_verify.h): the batched strategy must agree with the
// scalar verifiers verdict-for-verdict — on valid proofs, on tampered
// proofs whose structure still parses, and on adversarial bit-flips — and
// the bisection must pinpoint exactly the corrupted unit inside a large
// batch. Also covers the fixed-base table registry shared across scheme
// instances and the protocol-level reputation outcome under both
// verification strategies.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "crypto/hash.h"
#include "desword/scenario.h"
#include "mercurial/batch_verify.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace desword {
namespace {

using mercurial::BatchVerifier;
using mercurial::QtmcKeyPair;
using mercurial::QtmcOpening;
using mercurial::QtmcScheme;
using mercurial::QtmcTease;
using mercurial::TmcKeyPair;
using mercurial::TmcOpening;
using mercurial::TmcScheme;
using mercurial::TmcTease;

namespace zk = zkedb;
using zk::EdbKey;

constexpr int kTestRsaBits = 512;

Bytes msg16(int i) {
  return hash_to_128("batch-test-msg", {be64(static_cast<std::uint64_t>(i))});
}

std::vector<Bytes> make_messages(std::uint32_t count) {
  std::vector<Bytes> msgs;
  for (std::uint32_t i = 0; i < count; ++i) msgs.push_back(msg16(1000 + i));
  return msgs;
}

// ---------------------------------------------------------------------------
// qTMC: batch verdicts equal scalar verdicts, unit by unit.

class QtmcBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keys_ = QtmcScheme::keygen(/*q=*/4, kTestRsaBits);
    scheme_ = std::make_unique<QtmcScheme>(keys_.pk);
  }

  QtmcKeyPair keys_{mercurial::QtmcPublicKey{}, Bignum()};
  std::unique_ptr<QtmcScheme> scheme_;
};

TEST_F(QtmcBatchTest, MixedValidAndTamperedUnitsMatchScalar) {
  const auto msgs = make_messages(4);
  const auto [com, dec] = scheme_->hard_commit(msgs);

  // Unit 0: valid opening. Unit 1: wrong message (parses, equation fails).
  // Unit 2: valid tease. Unit 3: tease with wrong message. Unit 4: opening
  // replayed at the wrong position (equation fails, not structure).
  QtmcOpening good_op = scheme_->hard_open(dec, 0);
  QtmcOpening bad_op = scheme_->hard_open(dec, 1);
  bad_op.message = msg16(999);
  QtmcTease good_tease = scheme_->tease_hard(dec, 2);
  QtmcTease bad_tease = scheme_->tease_hard(dec, 3);
  bad_tease.message = msg16(998);
  QtmcOpening moved_op = scheme_->hard_open(dec, 0);
  moved_op.pos = 1;

  BatchVerifier bv(*scheme_);
  bv.begin_unit();
  EXPECT_TRUE(bv.add_open(com, good_op));
  bv.begin_unit();
  EXPECT_TRUE(bv.add_open(com, bad_op));  // structure ok, equation bad
  bv.begin_unit();
  EXPECT_TRUE(bv.add_tease(com, good_tease));
  bv.begin_unit();
  EXPECT_TRUE(bv.add_tease(com, bad_tease));
  bv.begin_unit();
  EXPECT_TRUE(bv.add_open(com, moved_op));

  const BatchVerifier::Result res = bv.verify();
  const std::vector<bool> scalar = {
      scheme_->verify_open(com, good_op), scheme_->verify_open(com, bad_op),
      scheme_->verify_tease(com, good_tease),
      scheme_->verify_tease(com, bad_tease),
      scheme_->verify_open(com, moved_op)};
  ASSERT_EQ(res.unit_ok.size(), scalar.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_EQ(res.unit_ok[i], scalar[i]) << "unit " << i;
  }
  EXPECT_FALSE(res.all_ok);
  EXPECT_TRUE(res.unit_ok[0]);
  EXPECT_FALSE(res.unit_ok[1]);
}

TEST_F(QtmcBatchTest, StructuralFailureMarksUnitWithoutPollutingFold) {
  const auto [com, dec] = scheme_->hard_commit(make_messages(4));
  QtmcOpening oob = scheme_->hard_open(dec, 0);
  oob.pos = scheme_->arity();  // out of range: structural rejection

  BatchVerifier bv(*scheme_);
  bv.begin_unit();
  EXPECT_FALSE(bv.add_open(com, oob));
  bv.begin_unit();
  EXPECT_TRUE(bv.add_open(com, scheme_->hard_open(dec, 1)));

  const auto res = bv.verify();
  EXPECT_FALSE(res.all_ok);
  EXPECT_FALSE(res.unit_ok[0]);
  EXPECT_TRUE(res.unit_ok[1]);  // the valid unit folds clean on its own
}

TEST_F(QtmcBatchTest, BisectionPinpointsSingleCorruptedUnitOf64) {
  constexpr std::size_t kUnits = 64;
  constexpr std::size_t kBad = 37;
  const auto [com, dec] = scheme_->hard_commit(make_messages(4));

  BatchVerifier bv(*scheme_);
  for (std::size_t i = 0; i < kUnits; ++i) {
    bv.begin_unit();
    QtmcOpening op = scheme_->hard_open(
        dec, static_cast<std::uint32_t>(i % scheme_->arity()));
    if (i == kBad) op.message = msg16(666);  // equation-level corruption
    ASSERT_TRUE(bv.add_open(com, op)) << "unit " << i;
  }
  ASSERT_EQ(bv.units(), kUnits);

  const auto res = bv.verify();
  EXPECT_FALSE(res.all_ok);
  ASSERT_EQ(res.unit_ok.size(), kUnits);
  for (std::size_t i = 0; i < kUnits; ++i) {
    EXPECT_EQ(res.unit_ok[i], i != kBad) << "unit " << i;
  }
}

// Equations are compared in Z_N*/{±1} and proof elements must be the
// canonical representative min(x, N−x): replacing Λ by N−Λ (same quotient
// element, non-canonical encoding, coprimality-invisible since
// gcd(N−Λ, N) = gcd(Λ, N)) must be rejected by BOTH paths. In plain Z_N*
// this forgery's fold defect (−1)^{e_pos} cancels for every even batching
// multiplier, defeating small-exponent batching with probability 1/2.
TEST_F(QtmcBatchTest, SignFlippedElementsRejectedByBothPaths) {
  const Bignum& n = scheme_->public_key().n;
  const auto [com, dec] = scheme_->hard_commit(make_messages(4));

  QtmcOpening flipped_op = scheme_->hard_open(dec, 0);
  flipped_op.lambda = n - flipped_op.lambda;
  EXPECT_FALSE(scheme_->verify_open(com, flipped_op));

  QtmcTease flipped_tease = scheme_->tease_hard(dec, 1);
  flipped_tease.lambda = n - flipped_tease.lambda;
  EXPECT_FALSE(scheme_->verify_tease(com, flipped_tease));

  mercurial::QtmcCommitment flipped_com = com;
  flipped_com.c0 = n - flipped_com.c0;
  EXPECT_FALSE(scheme_->verify_open(flipped_com, scheme_->hard_open(dec, 2)));

  BatchVerifier bv(*scheme_);
  bv.begin_unit();
  EXPECT_FALSE(bv.add_open(com, flipped_op));
  bv.begin_unit();
  EXPECT_FALSE(bv.add_tease(com, flipped_tease));
  bv.begin_unit();
  EXPECT_FALSE(bv.add_open(flipped_com, scheme_->hard_open(dec, 2)));
  const auto res = bv.verify();
  EXPECT_FALSE(res.all_ok);
  for (std::size_t i = 0; i < res.unit_ok.size(); ++i) {
    EXPECT_FALSE(res.unit_ok[i]) << "unit " << i;
  }
}

// The deterministic Fiat–Shamir multipliers make acceptance offline-
// computable, so a 1/2-probability hole would be grindable to certainty;
// the rejection must therefore be unconditional — a sign-flipped unit in a
// large batch is rejected structurally, never reaching the fold, while the
// honest remainder still folds clean.
TEST_F(QtmcBatchTest, SignFlipInLargeBatchRejectedRegardlessOfMultipliers) {
  constexpr std::size_t kUnits = 32;
  constexpr std::size_t kBad = 11;
  const Bignum& n = scheme_->public_key().n;
  const auto [com, dec] = scheme_->hard_commit(make_messages(4));

  BatchVerifier bv(*scheme_);
  for (std::size_t i = 0; i < kUnits; ++i) {
    bv.begin_unit();
    QtmcOpening op = scheme_->hard_open(
        dec, static_cast<std::uint32_t>(i % scheme_->arity()));
    if (i == kBad) {
      op.lambda = n - op.lambda;
      EXPECT_FALSE(bv.add_open(com, op));
    } else {
      ASSERT_TRUE(bv.add_open(com, op)) << "unit " << i;
    }
  }
  const auto res = bv.verify();
  EXPECT_FALSE(res.all_ok);
  ASSERT_EQ(res.unit_ok.size(), kUnits);
  for (std::size_t i = 0; i < kUnits; ++i) {
    EXPECT_EQ(res.unit_ok[i], i != kBad) << "unit " << i;
  }
}

TEST_F(QtmcBatchTest, EmptyBatchAcceptsVacuously) {
  BatchVerifier bv(*scheme_);
  const auto res = bv.verify();
  EXPECT_TRUE(res.all_ok);
  EXPECT_TRUE(res.unit_ok.empty());
}

TEST_F(QtmcBatchTest, FixedBaseTablesSharedAcrossInstancesOfSameKey) {
  QtmcScheme other(keys_.pk);  // second instance, same CRS
  scheme_->precompute_fixed_bases(/*position_bases=*/false);
  other.precompute_fixed_bases(/*position_bases=*/false);
  ASSERT_NE(scheme_->fixed_base_tables_id(), nullptr);
  // One registry entry per public key: both instances adopt the same set.
  EXPECT_EQ(scheme_->fixed_base_tables_id(), other.fixed_base_tables_id());

  const auto fresh = QtmcScheme::keygen(/*q=*/2, kTestRsaBits);
  QtmcScheme unrelated(fresh.pk);
  unrelated.precompute_fixed_bases(/*position_bases=*/false);
  EXPECT_NE(unrelated.fixed_base_tables_id(), scheme_->fixed_base_tables_id());
}

// ---------------------------------------------------------------------------
// TMC leaf equations fold into the same batch.

TEST(TmcBatchTest, LeafUnitsMatchScalar) {
  const GroupPtr group = make_p256_group();
  const TmcKeyPair keys = TmcScheme::keygen(group);
  const TmcScheme tmc(group, keys.pk);
  // BatchVerifier needs a qTMC scheme even for leaf-only batches.
  const QtmcKeyPair qkeys = QtmcScheme::keygen(/*q=*/2, kTestRsaBits);
  const QtmcScheme qtmc(qkeys.pk);

  const auto [com, dec] = tmc.hard_commit(msg16(1));
  TmcOpening good_op = tmc.hard_open(dec);
  TmcOpening bad_op = tmc.hard_open(dec);
  bad_op.message = msg16(2);
  TmcTease good_tease = tmc.tease_hard(dec);
  TmcTease bad_tease = tmc.tease_hard(dec);
  bad_tease.message = msg16(3);

  BatchVerifier bv(qtmc, &tmc);
  bv.begin_unit();
  EXPECT_TRUE(bv.add_leaf_open(com, good_op));
  bv.begin_unit();
  EXPECT_TRUE(bv.add_leaf_open(com, bad_op));
  bv.begin_unit();
  EXPECT_TRUE(bv.add_leaf_tease(com, good_tease));
  bv.begin_unit();
  EXPECT_TRUE(bv.add_leaf_tease(com, bad_tease));

  const auto res = bv.verify();
  EXPECT_FALSE(res.all_ok);
  EXPECT_EQ(res.unit_ok[0], tmc.verify_open(com, good_op));
  EXPECT_EQ(res.unit_ok[1], tmc.verify_open(com, bad_op));
  EXPECT_EQ(res.unit_ok[2], tmc.verify_tease(com, good_tease));
  EXPECT_EQ(res.unit_ok[3], tmc.verify_tease(com, bad_tease));
  EXPECT_TRUE(res.unit_ok[0]);
  EXPECT_FALSE(res.unit_ok[1]);
  EXPECT_TRUE(res.unit_ok[2]);
  EXPECT_FALSE(res.unit_ok[3]);
}

// ---------------------------------------------------------------------------
// ZK-EDB proof chains: batched and scalar strategies decide identically.

class EdbDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zk::EdbConfig cfg;
    cfg.q = 4;
    cfg.height = 6;
    cfg.rsa_bits = kTestRsaBits;
    cfg.group_name = "p256";
    crs_ = zk::generate_crs(cfg);
    std::map<Bytes, Bytes> entries;
    for (int i = 0; i < 8; ++i) {
      entries[key_of(i)] = bytes_of("value-" + std::to_string(i));
    }
    prover_ = std::make_unique<zk::EdbProver>(crs_, entries);
  }

  EdbKey key_of(int i) const {
    return zk::key_for_identifier(*crs_, bytes_of("k" + std::to_string(i)));
  }

  /// Both strategies must return the same verdict; returns it.
  zk::VerifyOutcome verify_both(const EdbKey& key,
                                const zk::EdbMembershipProof& proof) {
    zk::EdbVerifyOptions scalar;
    scalar.batched = false;
    const auto s = zk::edb_verify_membership(*crs_, prover_->commitment(),
                                             key, proof, scalar);
    const auto b =
        zk::edb_verify_membership(*crs_, prover_->commitment(), key, proof);
    EXPECT_EQ(s.has_value(), b.has_value());
    if (s.has_value() && b.has_value()) {
      EXPECT_EQ(*s, *b);
    }
    return b;
  }

  bool verify_both(const EdbKey& key, const zk::EdbNonMembershipProof& proof) {
    zk::EdbVerifyOptions scalar;
    scalar.batched = false;
    const bool s = zk::edb_verify_non_membership(*crs_, prover_->commitment(),
                                                 key, proof, scalar)
                       .ok;
    const bool b = zk::edb_verify_non_membership(*crs_, prover_->commitment(),
                                                 key, proof)
                       .ok;
    EXPECT_EQ(s, b);
    return b;
  }

  zk::EdbCrsPtr crs_;
  std::unique_ptr<zk::EdbProver> prover_;
};

TEST_F(EdbDifferentialTest, MembershipValidAndTamperedAgree) {
  const EdbKey key = key_of(0);
  auto proof = prover_->prove_membership(key);
  EXPECT_TRUE(verify_both(key, proof).has_value());

  // Equation-level tamper: τ of a mid-chain opening shifts by one. All
  // structural checks still pass; only the folded/scalar equations catch it.
  auto tau_tampered = proof;
  tau_tampered.openings[2].tau += Bignum(1);
  EXPECT_FALSE(verify_both(key, tau_tampered).has_value());

  auto value_tampered = proof;
  value_tampered.value = bytes_of("forged value");
  EXPECT_FALSE(verify_both(key, value_tampered).has_value());

  // Sign flip Λ → N−Λ: the same element of Z_N*/{±1} in non-canonical
  // encoding; must be structurally rejected by both strategies.
  auto sign_tampered = proof;
  sign_tampered.openings[1].lambda =
      crs_->params().qtmc_pk.n - sign_tampered.openings[1].lambda;
  EXPECT_FALSE(verify_both(key, sign_tampered).has_value());

  auto leaf_tampered = proof;
  leaf_tampered.leaf_opening.r0 += Bignum(1);
  EXPECT_FALSE(verify_both(key, leaf_tampered).has_value());
}

TEST_F(EdbDifferentialTest, NonMembershipValidAndTamperedAgree) {
  const EdbKey key = zk::key_for_identifier(*crs_, bytes_of("absent"));
  ASSERT_FALSE(prover_->contains(key));
  auto proof = prover_->prove_non_membership(key);
  EXPECT_TRUE(verify_both(key, proof));

  auto tampered = proof;
  tampered.teases[1].tau += Bignum(1);
  EXPECT_FALSE(verify_both(key, tampered));

  auto leaf_tampered = proof;
  leaf_tampered.leaf_tease.message = msg16(7);
  EXPECT_FALSE(verify_both(key, leaf_tampered));
}

TEST_F(EdbDifferentialTest, BitFlippedSerializedProofsAgree) {
  const EdbKey key = key_of(1);
  const Bytes wire = prover_->prove_membership(key).serialize(*crs_);
  // Sample flip positions across the whole proof; every one that still
  // deserializes must draw the same verdict from both strategies (the
  // EXPECT inside verify_both), and none may crash either path.
  for (std::size_t pos = 0; pos < wire.size(); pos += 97) {
    Bytes corrupted = wire;
    corrupted[pos] ^= 0x40;
    zk::EdbMembershipProof proof;
    try {
      proof = zk::EdbMembershipProof::deserialize(*crs_, corrupted);
    } catch (const Error&) {
      continue;  // parse-level rejection: identical for both strategies
    }
    verify_both(key, proof);
  }
}

TEST_F(EdbDifferentialTest, VerifyManyPinpointsTamperedProof) {
  constexpr std::size_t kProofs = 8;
  constexpr std::size_t kBad = 5;
  std::vector<zk::EdbMembershipProof> proofs;
  std::vector<zk::EdbMembershipQuery> queries;
  proofs.reserve(kProofs);
  queries.reserve(kProofs);
  for (std::size_t i = 0; i < kProofs; ++i) {
    const EdbKey key = key_of(static_cast<int>(i));
    proofs.push_back(prover_->prove_membership(key));
    queries.push_back({key, &proofs.back()});
  }
  proofs[kBad].openings[3].tau += Bignum(1);

  for (const bool batched : {true, false}) {
    zk::EdbVerifyOptions opts;
    opts.batched = batched;
    const auto results = zk::edb_verify_membership_many(
        *crs_, prover_->commitment(), queries, opts);
    ASSERT_EQ(results.size(), kProofs);
    for (std::size_t i = 0; i < kProofs; ++i) {
      EXPECT_EQ(results[i].has_value(), i != kBad)
          << "proof " << i << " batched=" << batched;
    }
  }
}

// ---------------------------------------------------------------------------
// Protocol level: a corrupted query proof costs the corrupting hop its
// reputation under BOTH verification strategies.

class BatchVerifyReputationTest : public ::testing::TestWithParam<bool> {};

TEST_P(BatchVerifyReputationTest, PenaltyLandsOnCorruptingHop) {
  using supplychain::DistributionConfig;
  using supplychain::ProductId;
  using supplychain::SupplyChainGraph;
  namespace proto = protocol;

  proto::ScenarioConfig cfg;
  cfg.edb = zk::EdbConfig{4, 8, kTestRsaBits, "p256", zk::SoftMode::kShared};
  cfg.batch_verify = GetParam();
  proto::Scenario scenario(SupplyChainGraph::paper_example(), cfg);

  const auto products = supplychain::make_products(1, 2000, 8);
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = products;
  dist.seed = 42;
  scenario.run_task("task-bv", dist);

  const ProductId* product = nullptr;
  for (const ProductId& p : products) {
    const auto* path = scenario.path_of(p);
    if (path != nullptr && path->size() >= 3) {
      product = &p;
      break;
    }
  }
  ASSERT_NE(product, nullptr) << "no product with a long enough path";
  const std::string cheater = (*scenario.path_of(*product))[1];

  proto::QueryBehavior behavior;
  behavior.corrupt_proof.insert(*product);
  scenario.participant(cheater).set_query_behavior(behavior);

  proto::QueryOutcome outcome;
  ASSERT_NO_THROW(outcome = scenario.proxy().run_query(
                      *product, proto::ProductQuality::kGood));
  EXPECT_TRUE(outcome.has_violation(
      cheater, proto::ViolationType::kClaimProcessingInvalidProof));
  EXPECT_LT(scenario.proxy().reputation(cheater), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Strategies, BatchVerifyReputationTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Batched" : "Scalar";
                         });

}  // namespace
}  // namespace desword
