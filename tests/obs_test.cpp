// Observability-layer tests (ISSUE 4 tentpole):
//   * metrics registry primitives — concurrent counter/histogram recording
//     with exact totals, deterministic snapshots, bucket boundaries;
//   * protocol integration — a good-product query over an 8-participant
//     chain produces the expected span sequence and metric deltas, a lossy
//     rerun fires retransmissions, and `export_stats_json()` round-trips.
//
// Runs under the TSan CI preset: the concurrency tests double as the data
// race gate for the zero-alloc recording hot path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"
#include "desword/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace desword::obs {
namespace {

// ---------------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------------

TEST(MetricsTest, NamedLookupReturnsStableAddress) {
  Counter& a = metric("net.frame.sent");
  Counter& b = metric("net.frame.sent");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&a,
            &MetricsRegistry::global().counter(CounterId::net_frame_sent));
}

TEST(MetricsTest, UnregisteredNameThrows) {
  EXPECT_ANY_THROW(MetricsRegistry::global().counter("no.such.metric"));
  EXPECT_ANY_THROW(MetricsRegistry::global().gauge("no.such.metric"));
  EXPECT_ANY_THROW(MetricsRegistry::global().histogram("no.such.metric"));
}

TEST(MetricsTest, ResetZeroesInPlace) {
  Counter& c = metric("protocol.query.started");
  c.add(7);
  Histogram& h = histogram_metric("zkedb.verify.wall_ms");
  h.observe_us(123);
  MetricsRegistry::global().reset_for_test();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum_us(), 0u);
  EXPECT_EQ(h.max_us(), 0u);
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(h.bucket(i), 0u);
  }
}

TEST(MetricsTest, ConcurrentCounterAddsAreExact) {
  MetricsRegistry::global().reset_for_test();
  Counter& c = metric("net.frame.sent");
  Gauge& g = gauge_metric("protocol.sessions.active");
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kAddsPerTask = 5000;
  ThreadPool pool(8);
  pool.for_each(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kAddsPerTask; ++i) {
      c.add();
      g.add(1);
      g.add(-1);
    }
  });
  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
  EXPECT_EQ(g.value(), 0);
  MetricsRegistry::global().reset_for_test();
}

TEST(MetricsTest, ConcurrentHistogramObservationsAreExact) {
  MetricsRegistry::global().reset_for_test();
  Histogram& h = histogram_metric("zkedb.prove.wall_ms");
  constexpr std::size_t kTasks = 32;
  constexpr std::uint64_t kObsPerTask = 2000;
  ThreadPool pool(8);
  pool.for_each(kTasks, [&](std::size_t task) {
    for (std::uint64_t i = 0; i < kObsPerTask; ++i) {
      // Deterministic spread across buckets, including the max candidate.
      h.observe_us((task * kObsPerTask + i) % 4096);
    }
  });
  EXPECT_EQ(h.count(), kTasks * kObsPerTask);
  EXPECT_EQ(h.max_us(), 4095u);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += h.bucket(i);
  }
  EXPECT_EQ(bucket_total, h.count());
  MetricsRegistry::global().reset_for_test();
}

TEST(MetricsTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  // Everything past the covered range lands in the unbounded last bucket.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST(MetricsTest, SnapshotsAreDeterministic) {
  MetricsRegistry::global().reset_for_test();
  metric("net.frame.sent").add(3);
  histogram_metric("zkedb.commit.wall_ms").observe_us(1500);
  const std::string a = MetricsRegistry::global().snapshot_json();
  const std::string b = MetricsRegistry::global().snapshot_json();
  EXPECT_EQ(a, b);

  // Snapshot parses and surfaces the recorded values.
  const json::Value v = json::parse(a);
  EXPECT_EQ(v.at("net.frame.sent").as_int(), 3);
  EXPECT_EQ(v.at("zkedb.commit.wall_ms").at("count").as_int(), 1);
  MetricsRegistry::global().reset_for_test();
}

TEST(MetricsTest, CompactJsonOmitsIdleInstruments) {
  MetricsRegistry::global().reset_for_test();
  EXPECT_EQ(MetricsRegistry::global().compact_json(), "{}");
  metric("net.reply_cache.hits").add(2);
  const std::string compact = MetricsRegistry::global().compact_json();
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  const json::Value v = json::parse(compact);
  EXPECT_EQ(v.at("net.reply_cache.hits").as_int(), 2);
  EXPECT_FALSE(v.has("net.frame.dropped"));
  MetricsRegistry::global().reset_for_test();
}

// ---------------------------------------------------------------------------
// QueryTrace
// ---------------------------------------------------------------------------

TEST(QueryTraceTest, RecordsAndExports) {
  QueryTrace trace;
  trace.set_query_id(42);
  trace.record(10, "v1", span::kRequestSent, "query_request");
  trace.record(12, "v1", span::kResponseReceived, "query_response");
  trace.record(13, "v1", span::kVerifyOk, "ownership");
  trace.record(20, "", span::kFinished, "complete");
  EXPECT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.count(span::kRequestSent), 1u);
  EXPECT_EQ(trace.count(span::kRetransmit), 0u);

  const json::Value v = trace.to_json();
  EXPECT_EQ(v.at("query_id").as_int(), 42);
  const auto& spans = v.at("spans").as_array();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].at("event").as_string(), span::kRequestSent);
  EXPECT_EQ(spans[0].at("peer").as_string(), "v1");
  EXPECT_EQ(spans[3].at("detail").as_string(), "complete");

  // The single-line export parses to the same value.
  const std::string line = trace.to_json_line();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(json::parse(line).at("query_id").as_int(), 42);
}

}  // namespace
}  // namespace desword::obs

// ---------------------------------------------------------------------------
// Protocol integration: spans + metric deltas over a real query
// ---------------------------------------------------------------------------

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::ProductId;
using supplychain::SupplyChainGraph;

/// v0 -> v1 -> ... -> v7: every product walks the full 8-hop chain, so the
/// expected span counts are exact.
SupplyChainGraph chain_graph(std::size_t hops) {
  SupplyChainGraph graph;
  for (std::size_t i = 0; i + 1 < hops; ++i) {
    graph.add_edge("v" + std::to_string(i), "v" + std::to_string(i + 1));
  }
  return graph;
}

class ObsProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScenarioConfig cfg;
    cfg.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
    scenario_ = std::make_unique<Scenario>(chain_graph(8), cfg);
    products_ = make_products(1, 1, 2);
    DistributionConfig dist;
    dist.initial = "v0";
    dist.products = products_;
    dist.seed = 7;
    scenario_->run_task("task-1", dist);
  }

  std::unique_ptr<Scenario> scenario_;
  std::vector<ProductId> products_;
};

TEST_F(ObsProtocolTest, GoodQueryProducesSpansAndMetricDeltas) {
  const ProductId product = products_[0];
  const auto* path = scenario_->path_of(product);
  ASSERT_NE(path, nullptr);
  ASSERT_EQ(path->size(), 8u);

  auto& registry = obs::MetricsRegistry::global();
  registry.reset_for_test();

  const std::uint64_t query_id =
      scenario_->proxy().begin_query(product, ProductQuality::kGood);
  scenario_->proxy().pump();
  const QueryOutcome* outcome = scenario_->proxy().outcome(query_id);
  ASSERT_NE(outcome, nullptr);
  ASSERT_TRUE(outcome->complete);
  EXPECT_EQ(outcome->path, *path);

  // Metric deltas: the verify histogram saw every ownership proof, the
  // lossless run never retransmitted, the session is accounted closed.
  EXPECT_GT(obs::histogram_metric("zkedb.verify.wall_ms").count(), 0u);
  EXPECT_EQ(obs::metric("protocol.query.started").value(), 1u);
  EXPECT_EQ(obs::metric("protocol.query.completed").value(), 1u);
  EXPECT_EQ(obs::metric("net.retransmit.fired").value(), 0u);
  EXPECT_EQ(obs::metric("protocol.violation.detected").value(), 0u);
  EXPECT_EQ(obs::gauge_metric("protocol.sessions.active").value(), 0);
  EXPECT_GT(obs::metric("net.frame.sent").value(), 0u);

  // Span sequence: a request went to (at least) every hop, exactly one
  // ownership proof verified per hop, nothing failed, and the trace closed
  // with a single kFinished span.
  const obs::QueryTrace* trace = scenario_->proxy().query_trace(query_id);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->query_id(), query_id);
  for (const auto& hop : *path) {
    bool requested = false;
    for (const auto& span : trace->spans()) {
      if (span.event == obs::span::kRequestSent && span.peer == hop) {
        requested = true;
        break;
      }
    }
    EXPECT_TRUE(requested) << "no request_sent span for hop " << hop;
  }
  EXPECT_EQ(trace->count(obs::span::kVerifyOk), path->size());
  EXPECT_EQ(trace->count(obs::span::kVerifyFail), 0u);
  EXPECT_EQ(trace->count(obs::span::kRetransmit), 0u);
  EXPECT_EQ(trace->count(obs::span::kFinished), 1u);
  ASSERT_FALSE(trace->spans().empty());
  EXPECT_EQ(trace->spans().back().event, obs::span::kFinished);
  EXPECT_EQ(trace->spans().back().detail, "complete");

  registry.reset_for_test();
}

TEST_F(ObsProtocolTest, LossyLinksFireRetransmitMetricAndSpans) {
  const ProductId product = products_[0];
  for (const auto& id : scenario_->graph().participants()) {
    scenario_->network().set_link_policy("proxy", id, net::LinkPolicy{1, 0.3});
    scenario_->network().set_link_policy(id, "proxy", net::LinkPolicy{1, 0.3});
  }

  auto& registry = obs::MetricsRegistry::global();
  registry.reset_for_test();

  const std::uint64_t query_id =
      scenario_->proxy().begin_query(product, ProductQuality::kGood);
  scenario_->proxy().pump();
  const QueryOutcome* outcome = scenario_->proxy().outcome(query_id);
  ASSERT_NE(outcome, nullptr);
  // Whether the walk completes depends on the (seeded, deterministic) loss
  // pattern vs the retry budget; the observability contract is only that
  // every firing is counted AND traced, and the session still closes.

  // 30% loss each way over 8 hops: retransmission fired, was counted, and
  // each firing landed in the trace.
  const std::uint64_t retransmits = obs::metric("net.retransmit.fired").value();
  EXPECT_GT(retransmits, 0u);
  EXPECT_GT(obs::metric("net.frame.dropped").value(), 0u);
  const obs::QueryTrace* trace = scenario_->proxy().query_trace(query_id);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->count(obs::span::kRetransmit), retransmits);
  EXPECT_EQ(trace->count(obs::span::kFinished), 1u);

  registry.reset_for_test();
}

TEST_F(ObsProtocolTest, ExportStatsJsonRoundTrips) {
  obs::MetricsRegistry::global().reset_for_test();
  const QueryOutcome outcome =
      scenario_->proxy().run_query(products_[0], ProductQuality::kGood);
  ASSERT_TRUE(outcome.complete);

  const std::string stats = scenario_->proxy().export_stats_json();
  const json::Value v = json::parse(stats);
  EXPECT_GT(v.at("metrics").at("zkedb.verify.wall_ms").at("count").as_int(),
            0);
  EXPECT_FALSE(v.at("reputation").as_object().empty());
  const auto& traces = v.at("traces").as_array();
  ASSERT_FALSE(traces.empty());
  EXPECT_FALSE(traces[0].at("spans").as_array().empty());

  obs::MetricsRegistry::global().reset_for_test();
}

}  // namespace
}  // namespace desword::protocol
