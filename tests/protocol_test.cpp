#include <gtest/gtest.h>

#include <memory>

#include "desword/scenario.h"

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::ProductId;
using supplychain::SupplyChainGraph;

ScenarioConfig fast_config() {
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  return cfg;
}

/// Paper-example scenario with one task of 8 products from v0.
class ProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = std::make_unique<Scenario>(SupplyChainGraph::paper_example(),
                                           fast_config());
    products_ = make_products(1, 1000, 8);
  }

  /// Runs the task (call after configuring distribution behaviours).
  void run_task() {
    DistributionConfig dist;
    dist.initial = "v0";
    dist.products = products_;
    dist.seed = 42;
    scenario_->run_task("task-1", dist);
  }

  /// A product whose ground-truth path has at least `min_hops` hops.
  ProductId product_with_path_length(std::size_t min_hops) const {
    for (const ProductId& p : products_) {
      const auto* path = scenario_->path_of(p);
      if (path != nullptr && path->size() >= min_hops) return p;
    }
    throw std::runtime_error("no product with long enough path");
  }

  std::unique_ptr<Scenario> scenario_;
  std::vector<ProductId> products_;
};

TEST_F(ProtocolTest, DistributionPhaseBuildsPocList) {
  run_task();
  const poc::PocList* list = scenario_->proxy().task_list("task-1");
  ASSERT_NE(list, nullptr);
  const auto& truth = scenario_->truth("task-1");
  EXPECT_EQ(list->poc_count(), truth.involved.size());
  // Every used edge appears as a POC pair.
  for (const auto& [parent, children] : truth.used_edges) {
    for (const auto& child : children) {
      EXPECT_TRUE(list->has_edge(parent, child)) << parent << "->" << child;
    }
  }
  EXPECT_EQ(list->initial_participants(),
            (std::vector<std::string>{"v0"}));
  // The proxy's POC queue for v0 has one entry.
  EXPECT_EQ(scenario_->proxy().poc_queue("v0").size(), 1u);
}

TEST_F(ProtocolTest, HonestGoodQueryRecoversFullPath) {
  run_task();
  const ProductId product = product_with_path_length(3);
  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kGood);
  EXPECT_TRUE(outcome.complete);
  EXPECT_TRUE(outcome.violations.empty());
  EXPECT_EQ(outcome.path, *scenario_->path_of(product));
  // Every recovered trace decodes and names its participant.
  for (const auto& hop : outcome.path) {
    const auto it = outcome.traces.find(hop);
    ASSERT_NE(it, outcome.traces.end());
    ASSERT_TRUE(it->second.info.has_value());
    EXPECT_EQ(it->second.info->participant, hop);
  }
}

TEST_F(ProtocolTest, HonestBadQueryRecoversFullPath) {
  run_task();
  const ProductId product = product_with_path_length(3);
  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kBad);
  EXPECT_TRUE(outcome.complete);
  EXPECT_TRUE(outcome.violations.empty());
  EXPECT_EQ(outcome.path, *scenario_->path_of(product));
}

TEST_F(ProtocolTest, DoubleEdgedReputationAwards) {
  run_task();
  const ProductId good = product_with_path_length(2);
  const QueryOutcome good_outcome =
      scenario_->proxy().run_query(good, ProductQuality::kGood);
  ASSERT_TRUE(good_outcome.complete);
  for (const auto& hop : good_outcome.path) {
    EXPECT_DOUBLE_EQ(scenario_->proxy().reputation(hop), 1.0) << hop;
  }
  // A second, bad query for another product subtracts 2.0 from its path.
  ProductId bad;
  for (const ProductId& p : products_) {
    if (p != good) {
      bad = p;
      break;
    }
  }
  const QueryOutcome bad_outcome =
      scenario_->proxy().run_query(bad, ProductQuality::kBad);
  ASSERT_TRUE(bad_outcome.complete);
  for (const auto& hop : bad_outcome.path) {
    const bool also_in_good =
        std::find(good_outcome.path.begin(), good_outcome.path.end(), hop) !=
        good_outcome.path.end();
    EXPECT_DOUBLE_EQ(scenario_->proxy().reputation(hop),
                     also_in_good ? -1.0 : -2.0)
        << hop;
  }
}

TEST_F(ProtocolTest, QueryForUnknownProductFindsNothing) {
  run_task();
  const ProductId unknown = supplychain::make_epc(9, 9, 9999);
  const QueryOutcome outcome =
      scenario_->proxy().run_query(unknown, ProductQuality::kGood);
  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.path.empty());
  EXPECT_TRUE(outcome.violations.empty());
}

TEST_F(ProtocolTest, TaskHintSkipsScan) {
  run_task();
  const ProductId product = product_with_path_length(2);
  const QueryOutcome outcome = scenario_->proxy().run_query(
      product, ProductQuality::kGood, std::string("task-1"));
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.task_id, "task-1");
  EXPECT_THROW(scenario_->proxy().run_query(product, ProductQuality::kGood,
                                            std::string("no-such-task")),
               ProtocolError);
}

// ---------------------------------------------------------------------------
// Distribution-phase dishonesty (§III-A): the double-edged incentive cases.
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, DeletionEscapesBothQueriesUnidentified) {
  // Fig. 3(a): a deleting participant is never identified — it avoids the
  // negative score of a bad query but forfeits the positive score of a
  // good query.
  const ProductId product = supplychain::make_epc(1, 1, 1000);  // in batch
  // Find its path first via a dry-run of the routing (same seed).
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = products_;
  dist.seed = 42;
  const auto preview = supplychain::run_distribution(
      SupplyChainGraph::paper_example(), dist);
  const auto& path = preview.paths.at(product);
  ASSERT_GE(path.size(), 2u);
  const std::string deleter = path[1];  // a mid-path participant

  DistributionBehavior behavior;
  behavior.delete_ids.insert(product);
  scenario_->participant(deleter).set_distribution_behavior(behavior);
  run_task();

  const QueryOutcome good =
      scenario_->proxy().run_query(product, ProductQuality::kGood);
  EXPECT_FALSE(good.complete);  // the walk dead-ends at the deleter
  EXPECT_EQ(std::count(good.path.begin(), good.path.end(), deleter), 0);
  EXPECT_DOUBLE_EQ(scenario_->proxy().reputation(deleter), 0.0);

  const QueryOutcome bad =
      scenario_->proxy().run_query(product, ProductQuality::kBad);
  EXPECT_EQ(std::count(bad.path.begin(), bad.path.end(), deleter), 0);
  EXPECT_DOUBLE_EQ(scenario_->proxy().reputation(deleter), 0.0);
}

TEST_F(ProtocolTest, AdditionFacesBothEdges) {
  // Fig. 3(b): an adding participant IS identified whenever the faked
  // product is queried — positive score if good, negative if bad. The
  // faker here is initial participant v0 of its own task; the faked
  // product belongs to a task initiated by v1 (so the scan hits v0 first:
  // queue order is lexicographic).
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  const auto own_products = make_products(1, 0, 4);
  const auto victim_products = make_products(2, 100, 4);
  const ProductId faked = victim_products[0];

  DistributionBehavior behavior;
  behavior.add_fake[faked] = bytes_of("fabricated-da");
  scenario.participant("v0").set_distribution_behavior(behavior);

  DistributionConfig dist_a;
  dist_a.initial = "v0";
  dist_a.products = own_products;
  scenario.run_task("task-a", dist_a);

  scenario.participant("v0").set_distribution_behavior({});
  DistributionConfig dist_b;
  dist_b.initial = "v1";
  dist_b.products = victim_products;
  scenario.run_task("task-b", dist_b);

  // Bad query: v0 cannot deny the faked product under its task-a POC.
  const QueryOutcome bad =
      scenario.proxy().run_query(faked, ProductQuality::kBad);
  ASSERT_FALSE(bad.path.empty());
  EXPECT_EQ(bad.path.front(), "v0");
  EXPECT_LT(scenario.proxy().reputation("v0"), 0.0);

  // Good query (fresh scenario to reset scores): v0 earns the positive
  // score with a valid ownership proof for the faked product.
  Scenario scenario2(SupplyChainGraph::paper_example(), fast_config());
  scenario2.participant("v0").set_distribution_behavior(behavior);
  DistributionConfig dist_a2 = dist_a;
  scenario2.run_task("task-a", dist_a2);
  scenario2.participant("v0").set_distribution_behavior({});
  scenario2.run_task("task-b", dist_b);

  const QueryOutcome good =
      scenario2.proxy().run_query(faked, ProductQuality::kGood);
  ASSERT_FALSE(good.path.empty());
  EXPECT_EQ(good.path.front(), "v0");
  EXPECT_GE(scenario2.proxy().reputation("v0"), 1.0 - 5.0);  // may also be
  // penalized for the inconsistent walk that follows — the positive award
  // itself must be present in the ledger:
  bool positive_awarded = false;
  for (const auto& event : scenario2.proxy().ledger().history()) {
    if (event.participant == "v0" && event.delta > 0) positive_awarded = true;
  }
  EXPECT_TRUE(positive_awarded);
}

TEST_F(ProtocolTest, ModificationReturnsCommittedValue) {
  // Modification hides the original da; the query verifiably returns the
  // *committed* (modified) value — the ZK-EDB binds v to what it chose to
  // commit.
  const ProductId product = supplychain::make_epc(1, 1, 1001);
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = products_;
  dist.seed = 42;
  const auto preview = supplychain::run_distribution(
      SupplyChainGraph::paper_example(), dist);
  const std::string modifier = preview.paths.at(product)[0];

  DistributionBehavior behavior;
  behavior.modify[product] = bytes_of("redacted");
  scenario_->participant(modifier).set_distribution_behavior(behavior);
  run_task();

  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kGood);
  ASSERT_TRUE(outcome.traces.find(modifier) != outcome.traces.end());
  EXPECT_EQ(outcome.traces.at(modifier).da, bytes_of("redacted"));
  EXPECT_FALSE(outcome.traces.at(modifier).info.has_value());
}

// ---------------------------------------------------------------------------
// Query-phase dishonesty (§III-B): every behaviour must be detected.
// ---------------------------------------------------------------------------

class QueryAdversaryTest : public ProtocolTest {
 protected:
  /// Runs the task honestly, then configures a query-phase deviation on
  /// the participant at `hop_index` of some product's path.
  struct Setup {
    ProductId product;
    std::string cheater;
  };

  Setup prepare(std::size_t hop_index, std::size_t min_hops = 3) {
    run_task();
    const ProductId product = product_with_path_length(min_hops);
    const auto& path = *scenario_->path_of(product);
    return Setup{product, path[hop_index]};
  }
};

TEST_F(QueryAdversaryTest, ClaimNonProcessingDetected) {
  const Setup setup = prepare(1);
  QueryBehavior behavior;
  behavior.claim_non_processing.insert(setup.product);
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kBad);
  EXPECT_TRUE(outcome.has_violation(
      setup.cheater, ViolationType::kClaimNonProcessingInvalidProof));
  // The cheater is identified anyway (honest reveal follows) and the walk
  // continues to completion.
  EXPECT_TRUE(outcome.complete);
  EXPECT_NE(std::find(outcome.path.begin(), outcome.path.end(), setup.cheater),
            outcome.path.end());
  EXPECT_LT(scenario_->proxy().reputation(setup.cheater), -2.0);
}

TEST_F(QueryAdversaryTest, ClaimProcessingDetectedAndQueryRecovers) {
  // v1 (an initial participant of no task... it runs no task here, so use
  // a two-initial setup): distribute from v0; v1 runs its own empty-ish
  // task and fakes a processing claim for v0's product at scan time.
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  const auto products_a = make_products(1, 0, 4);
  const auto products_b = make_products(2, 50, 4);

  DistributionConfig dist_a;  // task from v0 — "task-a" sorts first
  dist_a.initial = "v0";
  dist_a.products = products_a;
  scenario.run_task("task-a", dist_a);
  DistributionConfig dist_b;
  dist_b.initial = "v1";
  dist_b.products = products_b;
  scenario.run_task("task-b", dist_b);

  const ProductId target = products_b[0];  // belongs to v1's task
  QueryBehavior behavior;
  behavior.claim_processing.insert(target);
  scenario.participant("v0").set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario.proxy().run_query(target, ProductQuality::kGood);
  EXPECT_TRUE(outcome.has_violation(
      "v0", ViolationType::kClaimProcessingInvalidProof));
  // The scan advanced past the liar and completed via the true task.
  EXPECT_TRUE(outcome.complete);
  ASSERT_FALSE(outcome.path.empty());
  EXPECT_EQ(outcome.path.front(), "v1");
  EXPECT_LT(scenario.proxy().reputation("v0"), 0.0);
}

TEST_F(QueryAdversaryTest, WrongTraceDetectedOnReveal) {
  const Setup setup = prepare(1);
  QueryBehavior behavior;
  behavior.wrong_trace.insert(setup.product);
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kBad);
  EXPECT_TRUE(
      outcome.has_violation(setup.cheater, ViolationType::kInvalidReveal));
  EXPECT_FALSE(outcome.complete);
}

TEST_F(QueryAdversaryTest, WrongTraceDetectedInGoodQuery) {
  const Setup setup = prepare(1);
  QueryBehavior behavior;
  behavior.wrong_trace.insert(setup.product);
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kGood);
  EXPECT_TRUE(outcome.has_violation(
      setup.cheater, ViolationType::kClaimProcessingInvalidProof));
  EXPECT_FALSE(outcome.complete);
}

TEST_F(QueryAdversaryTest, RefusedRevealDetected) {
  const Setup setup = prepare(1);
  QueryBehavior behavior;
  behavior.refuse_reveal = true;
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kBad);
  EXPECT_TRUE(
      outcome.has_violation(setup.cheater, ViolationType::kRefusedReveal));
}

TEST_F(QueryAdversaryTest, WrongNextHopNotChildDetected) {
  const Setup setup = prepare(0);
  QueryBehavior behavior;
  behavior.wrong_next[setup.product] = "v9";  // not a child of v0 in the list
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kGood);
  EXPECT_TRUE(outcome.has_violation(setup.cheater,
                                    ViolationType::kWrongNextHopNotChild));
  EXPECT_FALSE(outcome.complete);
}

TEST_F(QueryAdversaryTest, MisdirectionToSiblingDetected) {
  // The referrer names a participant that IS its child in the POC list but
  // did not process this product; the child's valid non-ownership proof
  // exposes the referrer.
  run_task();
  const auto& truth = scenario_->truth("task-1");
  // Find a hop with >= 2 used children and a product routed through one.
  ProductId product;
  std::string referrer;
  std::string sibling;
  for (const auto& [id, path] : truth.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto it = truth.used_edges.find(path[i]);
      if (it == truth.used_edges.end() || it->second.size() < 2) continue;
      for (const auto& child : it->second) {
        if (child != path[i + 1] &&
            !truth.databases.at(child).has(id)) {
          product = id;
          referrer = path[i];
          sibling = child;
          break;
        }
      }
      if (!referrer.empty()) break;
    }
    if (!referrer.empty()) break;
  }
  ASSERT_FALSE(referrer.empty()) << "workload lacks a suitable fork";

  QueryBehavior behavior;
  behavior.wrong_next[product] = sibling;
  scenario_->participant(referrer).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kBad);
  EXPECT_TRUE(outcome.has_violation(
      referrer, ViolationType::kWrongNextHopNotProcessed));
  EXPECT_FALSE(outcome.complete);
}

TEST_F(QueryAdversaryTest, SelfNextHopDetected) {
  // Naming yourself as the next hop is a revisit — caught by the loop
  // guard, not just the edge check.
  const Setup setup = prepare(0);
  QueryBehavior behavior;
  behavior.wrong_next[setup.product] = setup.cheater;
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kGood);
  EXPECT_TRUE(outcome.has_violation(setup.cheater,
                                    ViolationType::kWrongNextHopNotChild));
  EXPECT_FALSE(outcome.complete);
}

TEST_F(QueryAdversaryTest, FalseTerminationDetected) {
  const Setup setup = prepare(0);
  QueryBehavior behavior;
  behavior.false_termination.insert(setup.product);
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kGood);
  EXPECT_TRUE(outcome.has_violation(setup.cheater,
                                    ViolationType::kFalseTermination));
  EXPECT_FALSE(outcome.complete);
}

TEST_F(QueryAdversaryTest, UnresponsiveParticipantDetected) {
  const Setup setup = prepare(1);
  QueryBehavior behavior;
  behavior.unresponsive = true;
  scenario_->participant(setup.cheater).set_query_behavior(behavior);

  const QueryOutcome outcome =
      scenario_->proxy().run_query(setup.product, ProductQuality::kGood);
  EXPECT_TRUE(
      outcome.has_violation(setup.cheater, ViolationType::kNoResponse));
  EXPECT_FALSE(outcome.complete);
}

TEST_F(QueryAdversaryTest, ColludingWrongTracesAllDetected) {
  // §III-B collusion example: "all the participants on a path may return
  // wrong RFID-traces to let the proxy collect wrong while seemingly
  // correct path information". With a correct POC list the very first
  // tampered proof fails verification — the proxy never accepts a wrong
  // trace, it aborts with a violation.
  run_task();
  const ProductId product = product_with_path_length(3);
  const auto& path = *scenario_->path_of(product);
  for (const auto& hop : path) {
    QueryBehavior behavior;
    behavior.wrong_trace.insert(product);
    scenario_->participant(hop).set_query_behavior(behavior);
  }
  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kGood);
  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.traces.empty());  // no wrong trace was accepted
  EXPECT_TRUE(outcome.has_violation(
      path[0], ViolationType::kClaimProcessingInvalidProof));
}

TEST_F(QueryAdversaryTest, ColludingPathDeletionEscapesDetection) {
  // §III-A collusion: every participant on a path deletes the product's
  // trace. The query finds nothing and nobody is identified — exactly the
  // residual risk the double-edged incentive (not cryptography) addresses.
  const ProductId product = supplychain::make_epc(1, 1, 1002);
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = products_;
  dist.seed = 42;
  const auto preview = supplychain::run_distribution(
      SupplyChainGraph::paper_example(), dist);
  const auto& path = preview.paths.at(product);
  for (const auto& hop : path) {
    DistributionBehavior behavior;
    behavior.delete_ids.insert(product);
    scenario_->participant(hop).set_distribution_behavior(behavior);
  }
  run_task();

  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kBad);
  EXPECT_FALSE(outcome.complete);
  EXPECT_TRUE(outcome.path.empty());
  for (const auto& hop : path) {
    EXPECT_DOUBLE_EQ(scenario_->proxy().reputation(hop), 0.0) << hop;
  }
}

// ---------------------------------------------------------------------------
// Multi-task (§IV-D) and fault injection.
// ---------------------------------------------------------------------------

TEST_F(ProtocolTest, MultiTaskQueuesAndQueries) {
  Scenario scenario(SupplyChainGraph::paper_example(), fast_config());
  const auto products_a = make_products(1, 0, 4);
  const auto products_b = make_products(2, 50, 4);
  const auto products_c = make_products(3, 90, 4);

  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = products_a;
  scenario.run_task("task-a", dist);
  dist.products = products_c;
  dist.seed = 7;
  scenario.run_task("task-c", dist);
  dist.initial = "v1";
  dist.products = products_b;
  scenario.run_task("task-b", dist);

  // v0 initiated two tasks, v1 one — queue sizes reflect that (§IV-D).
  EXPECT_EQ(scenario.proxy().poc_queue("v0").size(), 2u);
  EXPECT_EQ(scenario.proxy().poc_queue("v1").size(), 1u);

  // Queries without a task hint resolve to the right task.
  const QueryOutcome a =
      scenario.proxy().run_query(products_a[0], ProductQuality::kGood);
  EXPECT_TRUE(a.complete);
  EXPECT_EQ(a.task_id, "task-a");
  const QueryOutcome b =
      scenario.proxy().run_query(products_b[1], ProductQuality::kBad);
  EXPECT_TRUE(b.complete);
  EXPECT_EQ(b.task_id, "task-b");
  const QueryOutcome c =
      scenario.proxy().run_query(products_c[2], ProductQuality::kGood);
  EXPECT_TRUE(c.complete);
  EXPECT_EQ(c.task_id, "task-c");
}

TEST_F(ProtocolTest, QuerySurvivesLossyLinks) {
  run_task();
  const ProductId product = product_with_path_length(3);
  // Make every link to/from the proxy lossy AFTER the distribution phase.
  for (const auto& id : scenario_->graph().participants()) {
    scenario_->network().set_link_policy("proxy", id,
                                         net::LinkPolicy{1, 0.3});
    scenario_->network().set_link_policy(id, "proxy",
                                         net::LinkPolicy{1, 0.3});
  }
  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kGood);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.path, *scenario_->path_of(product));
}

TEST_F(ProtocolTest, QuerySurvivesChaos) {
  // Drops + duplicates + jitter on every proxy link at once: the protocol
  // must stay correct (idempotent handlers, phase-gated sessions,
  // retransmission), not merely available.
  run_task();
  const ProductId product = product_with_path_length(3);
  net::LinkPolicy chaos;
  chaos.drop_rate = 0.2;
  chaos.duplicate_rate = 0.3;
  chaos.jitter = 7;
  for (const auto& id : scenario_->graph().participants()) {
    scenario_->network().set_link_policy("proxy", id, chaos);
    scenario_->network().set_link_policy(id, "proxy", chaos);
  }
  for (int i = 0; i < 3; ++i) {
    const QueryOutcome outcome =
        scenario_->proxy().run_query(product, ProductQuality::kGood);
    ASSERT_TRUE(outcome.complete) << "round " << i;
    EXPECT_EQ(outcome.path, *scenario_->path_of(product));
  }
}

TEST_F(ProtocolTest, GarbageMessagesDoNotCrashEndpoints) {
  run_task();
  SimRng rng(99);
  auto& net = scenario_->network();
  const std::vector<std::string> types = {
      msg::kPsResponse,    msg::kPsBroadcast,     msg::kPocToParent,
      msg::kPocPairsToInitial, msg::kQueryRequest, msg::kRevealRequest,
      msg::kNextHopRequest, msg::kQueryResponse,  msg::kRevealResponse,
      msg::kNextHopResponse, msg::kPocListSubmit, "unknown_type"};
  for (int i = 0; i < 300; ++i) {
    const std::string& type = types[rng.below(types.size())];
    const net::NodeId to = rng.chance(0.5)
                               ? net::NodeId("proxy")
                               : net::NodeId("v" + std::to_string(
                                                 rng.below(10)));
    net.send("proxy", to, type, rng.bytes(rng.below(64)));
  }
  net.run();  // must not throw or crash
  // The system still works afterwards.
  const ProductId product = product_with_path_length(2);
  EXPECT_TRUE(
      scenario_->proxy().run_query(product, ProductQuality::kGood).complete);
}

TEST_F(ProtocolTest, DistributionSurvivesDuplicatesAndJitter) {
  // Duplicate + reorder every message during the DISTRIBUTION phase (the
  // chaos tests above only stress the query phase). Duplicated ps
  // responses, POCs and pair reports must all be absorbed idempotently,
  // and the resulting deployment must behave exactly like a clean one.
  net::LinkPolicy noisy;
  noisy.duplicate_rate = 0.3;
  noisy.jitter = 9;
  scenario_->network().set_default_policy(noisy);
  run_task();

  ASSERT_NE(scenario_->proxy().task_list("task-1"), nullptr);
  const ProductId product = product_with_path_length(3);
  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kGood);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.path, *scenario_->path_of(product));
  EXPECT_TRUE(outcome.violations.empty());
  // Reputation is pinned to the clean-run values: duplicates must not
  // double-apply scores anywhere.
  for (const auto& hop : outcome.path) {
    EXPECT_DOUBLE_EQ(scenario_->proxy().reputation(hop), 1.0) << hop;
  }
  EXPECT_GT(scenario_->network().total_stats().messages_duplicated, 0u);
}

TEST_F(ProtocolTest, DuplicatedRequestsServedFromReplyCache) {
  run_task();
  const ProductId product = product_with_path_length(3);
  // Deliver every proxy->participant request twice: participants answer
  // the copy from their reply cache instead of regenerating proofs.
  net::LinkPolicy duplicate_all;
  duplicate_all.duplicate_rate = 1.0;
  for (const auto& id : scenario_->graph().participants()) {
    scenario_->network().set_link_policy("proxy", id, duplicate_all);
  }
  std::map<std::string, std::uint64_t> proofs_before;
  for (const auto& id : scenario_->graph().participants()) {
    proofs_before[id] = scenario_->participant(id).stats().proofs_generated;
  }

  const QueryOutcome outcome =
      scenario_->proxy().run_query(product, ProductQuality::kGood);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.path, *scenario_->path_of(product));

  std::uint64_t cached_replies = 0;
  std::uint64_t proofs_during = 0;
  for (const auto& id : scenario_->graph().participants()) {
    const auto& stats = scenario_->participant(id).stats();
    cached_replies += stats.duplicate_requests_served;
    proofs_during += stats.proofs_generated - proofs_before[id];
  }
  EXPECT_GT(cached_replies, 0u);

  // Pin against a clean twin deployment (same graph, seeds and query):
  // every duplicated request must cost zero EXTRA proofs.
  Scenario clean(SupplyChainGraph::paper_example(), fast_config());
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = products_;
  dist.seed = 42;
  clean.run_task("task-1", dist);
  std::uint64_t proofs_clean = 0;
  for (const auto& id : clean.graph().participants()) {
    proofs_clean += clean.participant(id).stats().proofs_generated;
  }
  const QueryOutcome clean_outcome =
      clean.proxy().run_query(product, ProductQuality::kGood);
  ASSERT_TRUE(clean_outcome.complete);
  std::uint64_t proofs_clean_during = 0;
  for (const auto& id : clean.graph().participants()) {
    proofs_clean_during += clean.participant(id).stats().proofs_generated;
  }
  proofs_clean_during -= proofs_clean;
  EXPECT_EQ(proofs_during, proofs_clean_during);

  // And scores applied exactly once per hop despite doubled traffic.
  for (const auto& hop : outcome.path) {
    EXPECT_DOUBLE_EQ(scenario_->proxy().reputation(hop), 1.0) << hop;
  }
}

TEST_F(ProtocolTest, ResponsibilityWeightedScores) {
  ScenarioConfig cfg = fast_config();
  cfg.scores.weight_by_responsibility = true;
  cfg.scores.source_multiplier = 3.0;
  Scenario scenario(SupplyChainGraph::paper_example(), cfg);
  DistributionConfig dist;
  dist.initial = "v0";
  dist.products = make_products(1, 0, 4);
  scenario.run_task("task-1", dist);

  const ProductId product = dist.products[0];
  const QueryOutcome outcome =
      scenario.proxy().run_query(product, ProductQuality::kBad);
  ASSERT_TRUE(outcome.complete);
  ASSERT_GE(outcome.path.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario.proxy().reputation(outcome.path.front()), -6.0);
  EXPECT_DOUBLE_EQ(scenario.proxy().reputation(outcome.path.back()), -2.0);
}

}  // namespace
}  // namespace desword::protocol
