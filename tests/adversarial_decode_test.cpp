// Negative-path decoding tests: every reader that consumes untrusted bytes
// must classify malformed input with SerializationError (or a sibling
// desword::Error) — never undefined behaviour, never a foreign exception
// type, never an over-read.
//
// Three attack shapes per decoder:
//   * truncation sweep: every strict prefix of a valid encoding,
//   * bit flips: each byte of a valid encoding perturbed,
//   * trailing garbage: a valid encoding with bytes appended.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/serial.h"
#include "desword/messages.h"
#include "net/wire.h"
#include "poc/poc.h"
#include "zkedb/params.h"
#include "zkedb/proof.h"
#include "zkedb/prover.h"

namespace desword {
namespace {

using namespace desword::protocol;

/// Runs `decode`; passes if it succeeds or throws a desword::Error.
/// Anything else (std::bad_alloc, std::out_of_range, a crash) escapes and
/// fails the test.
void expect_decode_or_error(const std::function<void()>& decode) {
  try {
    decode();
  } catch (const Error&) {
    // Classified as malformed: acceptable.
  }
}

/// Every strict prefix of `valid` must throw SerializationError: no
/// message encoding has a complete message as a strict prefix (all fields
/// are fixed-width or length-prefixed, and decoders check expect_done).
void truncation_sweep(const Bytes& valid,
                      const std::function<void(BytesView)>& decode) {
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    EXPECT_THROW(decode(BytesView(valid.data(), cut)), SerializationError);
  }
}

/// Each single-byte perturbation must decode or throw a desword::Error.
void bitflip_sweep(const Bytes& valid,
                   const std::function<void(BytesView)>& decode,
                   std::size_t stride = 1) {
  for (std::size_t pos = 0; pos < valid.size(); pos += stride) {
    SCOPED_TRACE("flip=" + std::to_string(pos));
    Bytes mutated = valid;
    mutated[pos] ^= 0x41;
    expect_decode_or_error([&] { decode(mutated); });
  }
}

/// Appending garbage must throw (decoders reject trailing bytes).
void trailing_garbage(const Bytes& valid,
                      const std::function<void(BytesView)>& decode) {
  Bytes padded = valid;
  padded.push_back(0x00);
  EXPECT_THROW(decode(padded), SerializationError);
}

template <typename Message>
void exercise_message(const Message& sample) {
  const Bytes valid = sample.serialize();
  auto decode = [](BytesView data) { (void)Message::deserialize(data); };
  // The valid encoding round-trips.
  EXPECT_EQ(Message::deserialize(valid).serialize(), valid);
  truncation_sweep(valid, decode);
  bitflip_sweep(valid, decode);
  trailing_garbage(valid, decode);
}

TEST(AdversarialMessages, AllMessageTypesSurviveMutation) {
  const Bytes product = bytes_of("prod-1");
  const Bytes poc = bytes_of("poc-bytes");
  exercise_message(PsRequest{"task-1"});
  exercise_message(PsResponse{"task-1", bytes_of("ps-blob")});
  exercise_message(PocToParent{"task-1", poc});
  exercise_message(
      PocPairsToInitial{"task-1", poc, {{poc, bytes_of("child")}}});
  exercise_message(PocListSubmit{"task-1", bytes_of("list")});
  exercise_message(QueryRequest{1, product, ProductQuality::kBad, poc});
  exercise_message(QueryResponse{1, true, bytes_of("proof")});
  exercise_message(QueryResponse{2, false, std::nullopt});
  exercise_message(RevealRequest{3, product, poc});
  exercise_message(RevealResponse{3, bytes_of("proof")});
  exercise_message(RevealResponse{4, std::nullopt});
  exercise_message(NextHopRequest{5, product});
  exercise_message(NextHopResponse{5, "v2"});
  exercise_message(NextHopResponse{6, std::nullopt});
  exercise_message(
      ClientQueryRequest{7, product, ProductQuality::kGood, "task-1"});
  ClientQueryResponse cqr;
  cqr.client_ref = 7;
  cqr.ok = false;
  cqr.error = "nope";
  exercise_message(cqr);
  exercise_message(StatusRequest{"task-1"});
  exercise_message(StatusResponse{"task-1", true});
  exercise_message(ClientReportRequest{8});
}

TEST(AdversarialWire, EnvelopeBodyMutation) {
  net::Envelope env;
  env.from = "v1";
  env.to = "proxy";
  env.type = msg::kQueryRequest;
  env.payload = bytes_of("payload-bytes");
  const Bytes body = net::encode_envelope(env);
  auto decode = [](BytesView data) { (void)net::decode_envelope(data); };
  truncation_sweep(body, decode);
  bitflip_sweep(body, decode);
  trailing_garbage(body, decode);
}

TEST(AdversarialWire, FramePrefixesAreIncompleteNotErrors) {
  net::Envelope env;
  env.from = "v1";
  env.to = "proxy";
  env.type = msg::kPsRequest;
  env.payload = PsRequest{"task-1"}.serialize();
  const Bytes frame = net::encode_frame(env);
  // A strict prefix is an incomplete frame: decode must wait for more
  // bytes (nullopt, consumed == 0), not throw.
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::size_t consumed = 0xdead;
    const auto decoded =
        net::try_decode_frame(BytesView(frame.data(), cut), consumed);
    EXPECT_FALSE(decoded.has_value()) << "cut=" << cut;
    EXPECT_EQ(consumed, 0u) << "cut=" << cut;
  }
  // Flipping bytes of a complete frame either still decodes (payload
  // flips), throws, or reports the frame incomplete (length-prefix grew).
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    Bytes mutated = frame;
    mutated[pos] ^= 0x41;
    expect_decode_or_error([&] {
      std::size_t consumed = 0;
      (void)net::try_decode_frame(mutated, consumed);
    });
  }
}

TEST(AdversarialWire, HostileLengthPrefixes) {
  // Length prefix beyond kMaxFrameBytes: must throw, not allocate.
  const Bytes huge{0xff, 0xff, 0xff, 0xff, 0x00};
  std::size_t consumed = 0;
  EXPECT_THROW((void)net::try_decode_frame(huge, consumed),
               SerializationError);
  // Length prefix whose frame_len wraps 32 bits must not be treated as
  // complete (0xffffffff + 4 overflows u32).
  const Bytes wrap{0xff, 0xff, 0xff, 0xfb, 0x01, 0x02, 0x03};
  consumed = 0;
  EXPECT_THROW((void)net::try_decode_frame(wrap, consumed),
               SerializationError);
  // Zero-length frame: empty envelope body is malformed, not a wait state.
  const Bytes zero{0x00, 0x00, 0x00, 0x00};
  consumed = 0;
  EXPECT_THROW((void)net::try_decode_frame(zero, consumed),
               SerializationError);
}

TEST(AdversarialSerial, MalformedPrimitives) {
  // Non-minimal varint (0 encoded in two bytes) is rejected: serialized
  // bytes feed digests, so each value must have exactly one spelling.
  {
    const Bytes nonminimal{0x80, 0x00};
    BinaryReader r(nonminimal);
    EXPECT_THROW((void)r.varint(), SerializationError);
  }
  // Varint wider than 64 bits.
  {
    const Bytes overlong{0xff, 0xff, 0xff, 0xff, 0xff,
                         0xff, 0xff, 0xff, 0xff, 0x7f};
    BinaryReader r(overlong);
    EXPECT_THROW((void)r.varint(), SerializationError);
  }
  // Length prefix larger than the remaining buffer.
  {
    const Bytes hungry{0xff, 0xff, 0x03, 0x01};
    BinaryReader r(hungry);
    EXPECT_THROW((void)r.bytes(), SerializationError);
  }
  // Boolean bytes other than 0/1 are rejected.
  {
    const Bytes notbool{0x02};
    BinaryReader r(notbool);
    EXPECT_THROW((void)r.boolean(), SerializationError);
  }
}

class AdversarialPersist : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    zkedb::EdbConfig config;
    config.q = 4;
    config.height = 8;
    config.rsa_bits = 512;
    config.group_name = "modp512-test";
    crs_ = new zkedb::EdbCrsPtr(zkedb::generate_crs(config));
  }
  static void TearDownTestSuite() {
    delete crs_;
    crs_ = nullptr;
  }
  static const zkedb::EdbCrs& crs() { return **crs_; }
  static zkedb::EdbCrsPtr crs_ptr() { return *crs_; }

  static zkedb::EdbProver make_prover() {
    std::map<Bytes, Bytes> entries;
    for (int i = 0; i < 3; ++i) {
      const Bytes id = bytes_of("prod-" + std::to_string(i));
      entries[zkedb::key_for_identifier(crs(), id)] =
          bytes_of("da-" + std::to_string(i));
    }
    zkedb::EdbProverOptions options;
    options.threads = 1;
    options.seed = bytes_of("adversarial-decode-test");
    return zkedb::EdbProver(crs_ptr(), entries, options);
  }

 private:
  static zkedb::EdbCrsPtr* crs_;
};

zkedb::EdbCrsPtr* AdversarialPersist::crs_ = nullptr;

TEST_F(AdversarialPersist, ProverStateMutation) {
  zkedb::EdbProver prover = make_prover();
  const Bytes state = prover.serialize_state();
  auto decode = [&](BytesView data) {
    (void)zkedb::EdbProver::load(crs_ptr(), data);
  };
  // State blobs are a few KB; sweep a bounded set of cut/flip points so
  // the test stays fast while covering every region of the layout.
  const std::size_t stride = std::max<std::size_t>(1, state.size() / 64);
  for (std::size_t cut = 0; cut < state.size(); cut += stride) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    expect_decode_or_error([&] { decode(BytesView(state.data(), cut)); });
  }
  bitflip_sweep(state, decode, stride);
}

TEST_F(AdversarialPersist, MembershipProofMutation) {
  zkedb::EdbProver prover = make_prover();
  const zkedb::EdbKey key =
      zkedb::key_for_identifier(crs(), bytes_of("prod-1"));
  const Bytes proof = prover.prove_membership(key).serialize(crs());
  auto decode = [&](BytesView data) {
    (void)zkedb::EdbMembershipProof::deserialize(crs(), data);
  };
  const std::size_t stride = std::max<std::size_t>(1, proof.size() / 64);
  for (std::size_t cut = 0; cut < proof.size(); cut += stride) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    expect_decode_or_error([&] { decode(BytesView(proof.data(), cut)); });
  }
  bitflip_sweep(proof, decode, stride);
}

TEST_F(AdversarialPersist, NonMembershipProofMutation) {
  zkedb::EdbProver prover = make_prover();
  const zkedb::EdbKey key =
      zkedb::key_for_identifier(crs(), bytes_of("absent"));
  const Bytes proof = prover.prove_non_membership(key).serialize(crs());
  auto decode = [&](BytesView data) {
    (void)zkedb::EdbNonMembershipProof::deserialize(crs(), data);
  };
  const std::size_t stride = std::max<std::size_t>(1, proof.size() / 64);
  for (std::size_t cut = 0; cut < proof.size(); cut += stride) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    expect_decode_or_error([&] { decode(BytesView(proof.data(), cut)); });
  }
  bitflip_sweep(proof, decode, stride);
}

TEST_F(AdversarialPersist, PublicParamsMutation) {
  const Bytes params = crs().params().serialize();
  auto decode = [](BytesView data) {
    // Instantiating the runtime CRS validates group/key consistency; it
    // must classify hostile parameters, not crash.
    zkedb::EdbCrs runtime(zkedb::EdbPublicParams::deserialize(data));
  };
  truncation_sweep(params, [](BytesView data) {
    (void)zkedb::EdbPublicParams::deserialize(data);
  });
  bitflip_sweep(params, decode);
}

}  // namespace
}  // namespace desword
