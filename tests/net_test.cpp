#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "net/network.h"

namespace desword::net {
namespace {

TEST(NetworkTest, DeliversMessages) {
  Network net;
  std::vector<std::string> received;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [&](const Envelope& env) {
    received.push_back(env.type + ":" + string_of(env.payload));
  });
  net.send("a", "b", "hello", bytes_of("x"));
  net.send("a", "b", "hello", bytes_of("y"));
  EXPECT_EQ(net.run(), 2u);
  EXPECT_EQ(received, (std::vector<std::string>{"hello:x", "hello:y"}));
}

TEST(NetworkTest, HandlersCanReply) {
  Network net;
  std::string got;
  net.register_node("client", [&](const Envelope& env) {
    got = string_of(env.payload);
  });
  net.register_node("server", [&](const Envelope& env) {
    net.send("server", env.from, "pong", env.payload);
  });
  net.send("client", "server", "ping", bytes_of("42"));
  net.run();
  EXPECT_EQ(got, "42");
}

TEST(NetworkTest, LatencyOrdersDelivery) {
  Network net;
  std::vector<std::string> order;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [&](const Envelope& env) {
    order.push_back(env.type);
  });
  net.set_link_policy("a", "b", LinkPolicy{/*latency=*/10, 0.0});
  net.send("a", "b", "slow", {});
  net.set_link_policy("a", "b", LinkPolicy{/*latency=*/1, 0.0});
  net.send("a", "b", "fast", {});
  net.run();
  EXPECT_EQ(order, (std::vector<std::string>{"fast", "slow"}));
  EXPECT_GE(net.now(), 10u);
}

TEST(NetworkTest, DropsAreCountedNotDelivered) {
  Network net(/*seed=*/5);
  int delivered = 0;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [&](const Envelope&) { ++delivered; });
  net.set_link_policy("a", "b", LinkPolicy{1, /*drop_rate=*/1.0});
  for (int i = 0; i < 10; ++i) net.send("a", "b", "m", {});
  net.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats("a", "b").messages_dropped, 10u);
  EXPECT_EQ(net.stats("a", "b").messages_sent, 10u);
}

TEST(NetworkTest, ByteAccounting) {
  Network net;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [](const Envelope&) {});
  net.send("a", "b", "m", Bytes(100, 0));
  net.send("a", "b", "m", Bytes(28, 0));
  net.run();
  EXPECT_EQ(net.stats("a", "b").bytes_sent, 128u);
  EXPECT_EQ(net.total_stats().bytes_sent, 128u);
}

TEST(NetworkTest, UnknownRecipientDropsAndCounts) {
  // A crashed / never-registered peer must not take the sender down: the
  // message is silently dropped and shows up in the drop counter, exactly
  // like a lossy-link drop. The sender's retransmission and no-response
  // machinery deal with the silence.
  Network net;
  net.register_node("a", [](const Envelope&) {});
  EXPECT_NO_THROW(net.send("a", "ghost", "m", Bytes(7, 0)));
  EXPECT_EQ(net.run(), 0u);
  EXPECT_EQ(net.stats("a", "ghost").messages_sent, 1u);
  EXPECT_EQ(net.stats("a", "ghost").messages_dropped, 1u);
  EXPECT_EQ(net.stats("a", "ghost").bytes_sent, 7u);
  EXPECT_EQ(net.total_stats().messages_dropped, 1u);
}

TEST(NetworkTest, DuplicateRegistrationThrows) {
  Network net;
  net.register_node("a", [](const Envelope&) {});
  EXPECT_THROW(net.register_node("a", [](const Envelope&) {}), Error);
}

TEST(NetworkTest, UnregisteredReceiverLosesMessage) {
  Network net;
  int delivered = 0;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [&](const Envelope&) { ++delivered; });
  net.send("a", "b", "m", {});
  net.unregister_node("b");
  net.run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, MaxStepsBoundsDelivery) {
  Network net;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [](const Envelope&) {});
  for (int i = 0; i < 5; ++i) net.send("a", "b", "m", {});
  EXPECT_EQ(net.run(2), 2u);
  EXPECT_EQ(net.pending(), 3u);
  net.run();
  EXPECT_EQ(net.pending(), 0u);
}

TEST(NetworkTest, DuplicationDeliversTwice) {
  Network net(/*seed=*/3);
  int delivered = 0;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [&](const Envelope&) { ++delivered; });
  LinkPolicy policy;
  policy.duplicate_rate = 1.0;
  net.set_link_policy("a", "b", policy);
  for (int i = 0; i < 5; ++i) net.send("a", "b", "m", {});
  net.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(net.stats("a", "b").messages_duplicated, 5u);
}

TEST(NetworkTest, JitterReordersMessages) {
  Network net(/*seed=*/17);
  std::vector<int> order;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [&](const Envelope& env) {
    order.push_back(static_cast<int>(env.payload[0]));
  });
  LinkPolicy policy;
  policy.jitter = 50;
  net.set_link_policy("a", "b", policy);
  for (int i = 0; i < 32; ++i) {
    net.send("a", "b", "m", Bytes{static_cast<std::uint8_t>(i)});
  }
  net.run();
  ASSERT_EQ(order.size(), 32u);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "jitter should reorder at least one pair";
}

TEST(NetworkTest, PartialDropRateDropsSome) {
  Network net(/*seed=*/11);
  int delivered = 0;
  net.register_node("a", [](const Envelope&) {});
  net.register_node("b", [&](const Envelope&) { ++delivered; });
  net.set_link_policy("a", "b", LinkPolicy{1, 0.5});
  for (int i = 0; i < 200; ++i) net.send("a", "b", "m", {});
  net.run();
  EXPECT_GT(delivered, 50);
  EXPECT_LT(delivered, 150);
}

}  // namespace
}  // namespace desword::net
