// Larger-scale soak: a 20-participant chain, several tasks, dozens of
// queries with mixed qualities and a sprinkle of adversaries — checks that
// nothing degrades across many sequential protocol runs (memoization
// growth, session bookkeeping, reputation accumulation).
#include <gtest/gtest.h>

#include <memory>

#include "desword/applications.h"
#include "desword/scenario.h"
#include "obs/metrics.h"

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::SupplyChainGraph;

TEST(StressTest, MultiTaskMultiQuerySoak) {
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(SupplyChainGraph::layered(5, 4, 2), cfg);

  // Three tasks from different initial participants.
  std::vector<std::vector<supplychain::ProductId>> lots;
  for (int t = 0; t < 3; ++t) {
    DistributionConfig dist;
    dist.initial = "L0-" + std::to_string(t);
    dist.products = make_products(static_cast<std::uint32_t>(t + 1),
                                  static_cast<std::uint64_t>(t) * 1000, 6);
    dist.seed = static_cast<std::uint64_t>(t) + 17;
    scenario.run_task("task-" + std::to_string(t), dist);
    lots.push_back(dist.products);
  }

  // One adversary per behaviour class, scattered over the chain.
  QueryBehavior wrong_next;
  wrong_next.wrong_next[lots[0][0]] = "L4-0";
  scenario.participant("L0-0").set_query_behavior(wrong_next);

  QueryBehavior denial;
  denial.claim_non_processing.insert(lots[1][1]);
  const auto& denial_path = *scenario.path_of(lots[1][1]);
  scenario.participant(denial_path[1]).set_query_behavior(denial);

  // Sweep every product of every lot with alternating qualities.
  int complete = 0;
  int detected = 0;
  SimRng rng(4242);
  for (std::size_t lot = 0; lot < lots.size(); ++lot) {
    for (std::size_t i = 0; i < lots[lot].size(); ++i) {
      const ProductQuality quality = (i % 3 == 0) ? ProductQuality::kBad
                                                  : ProductQuality::kGood;
      const QueryOutcome outcome =
          scenario.proxy().run_query(lots[lot][i], quality);
      if (outcome.complete) {
        ++complete;
        EXPECT_EQ(outcome.path, *scenario.path_of(lots[lot][i]));
      }
      detected += static_cast<int>(outcome.violations.size());
    }
  }

  // All but the two sabotaged products complete with exact paths.
  EXPECT_EQ(complete, 18 - 2);
  EXPECT_GE(detected, 2);
  // Ledger bookkeeping stayed consistent: every event references a real
  // query and participant.
  for (const auto& event : scenario.proxy().ledger().history()) {
    EXPECT_FALSE(event.participant.empty());
    EXPECT_GT(event.query_id, 0u);
  }
}

TEST(StressTest, RepeatedNonMembershipQueriesBoundedGrowth) {
  // Repeatedly querying the same absent products must reuse memoized
  // fabrications rather than growing state per query.
  zkedb::EdbConfig cfg{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  const zkedb::EdbCrsPtr crs = zkedb::generate_crs(cfg);
  poc::PocScheme scheme(crs);
  std::map<Bytes, Bytes> traces;
  traces[supplychain::make_epc(1, 1, 1)] = bytes_of("da");
  auto [p, dpoc] = scheme.aggregate("v1", traces);

  const supplychain::ProductId ghost = supplychain::make_epc(2, 2, 2);
  const Bytes first = scheme.prove(*dpoc, ghost).serialize();
  const std::size_t state_after_first = dpoc->serialize().size();
  for (int i = 0; i < 20; ++i) {
    const poc::PocProof proof = scheme.prove(*dpoc, ghost);
    EXPECT_EQ(scheme.verify(p, ghost, proof).verdict,
              poc::PocVerdict::kValid);
  }
  EXPECT_EQ(dpoc->serialize().size(), state_after_first)
      << "repeated queries for the same key must not grow the DPOC";
  (void)first;
}

TEST(StressTest, ReplyCacheEvictsLeastRecentlyUsed) {
  // Direct participant, no proxy: unknown-POC query requests get cheap
  // "not processing" replies, each caching one entry. 20 distinct requests
  // against a capacity of 8 must evict the 12 oldest; a resend of a
  // surviving (recent) request is served from the cache.
  net::Network network;
  auto crs_cache = std::make_shared<CrsCache>();
  Participant participant("p1", network, "proxy", crs_cache);
  network.register_node("client", [](const net::Envelope&) {});

  obs::MetricsRegistry::global().reset_for_test();
  participant.set_reply_cache_capacity(8);

  const auto request_for = [](std::uint64_t i) {
    QueryRequest req;
    req.query_id = i;
    req.product = supplychain::make_epc(1, 1, i);
    req.quality = ProductQuality::kGood;
    req.poc = Bytes{0xde, 0xad};  // never built: cheap cached denial
    return req.serialize();
  };

  for (std::uint64_t i = 1; i <= 20; ++i) {
    network.send("client", "p1", msg::kQueryRequest, request_for(i));
    network.run();
  }
  EXPECT_EQ(participant.reply_cache_size(), 8u);
  EXPECT_EQ(obs::metric("net.reply_cache.misses").value(), 20u);
  EXPECT_EQ(obs::metric("net.reply_cache.evictions").value(), 12u);
  EXPECT_EQ(participant.stats().duplicate_requests_served, 0u);

  // Most recent request survived the evictions: cache hit, no recompute.
  network.send("client", "p1", msg::kQueryRequest, request_for(20));
  network.run();
  EXPECT_EQ(obs::metric("net.reply_cache.hits").value(), 1u);
  EXPECT_EQ(participant.stats().duplicate_requests_served, 1u);
  EXPECT_EQ(participant.reply_cache_size(), 8u);

  // The oldest request was evicted: answering it again is a fresh miss
  // that evicts the then-LRU entry to stay at capacity.
  network.send("client", "p1", msg::kQueryRequest, request_for(1));
  network.run();
  EXPECT_EQ(obs::metric("net.reply_cache.misses").value(), 21u);
  EXPECT_EQ(obs::metric("net.reply_cache.evictions").value(), 13u);
  EXPECT_EQ(participant.reply_cache_size(), 8u);

  obs::MetricsRegistry::global().reset_for_test();
}

TEST(StressTest, ReputationHistoryIsBounded) {
  obs::MetricsRegistry::global().reset_for_test();
  ReputationLedger ledger;
  EXPECT_EQ(ledger.history_cap(), ReputationLedger::kDefaultHistoryCap);
  ledger.set_history_cap(100);

  for (std::uint64_t i = 1; i <= 250; ++i) {
    ledger.apply("v" + std::to_string(i % 7), 1.0, "good_query", i);
  }
  EXPECT_EQ(ledger.history().size(), 100u);
  EXPECT_EQ(ledger.events_applied(), 250u);
  EXPECT_EQ(ledger.events_dropped(), 150u);
  EXPECT_EQ(obs::metric("protocol.reputation.events").value(), 250u);
  EXPECT_EQ(obs::metric("protocol.reputation.dropped").value(), 150u);
  // Oldest retained event is #151; scores kept every fold regardless.
  EXPECT_EQ(ledger.history().front().query_id, 151u);
  EXPECT_EQ(ledger.history().back().query_id, 250u);
  EXPECT_DOUBLE_EQ(ledger.score("v1"), 36.0);  // 36 of 250 hit v1

  // Lowering the cap shrinks eagerly; raising it never resurrects.
  ledger.set_history_cap(10);
  EXPECT_EQ(ledger.history().size(), 10u);
  EXPECT_EQ(ledger.events_dropped(), 240u);
  ledger.set_history_cap(1000);
  EXPECT_EQ(ledger.history().size(), 10u);

  obs::MetricsRegistry::global().reset_for_test();
}

TEST(StressTest, ScenarioNodesShareOneCrsInstance) {
  // CrsCache::put() keep-first semantics: the proxy generates the CRS, all
  // participants derive theirs through the shared cache, so the whole
  // in-process deployment holds exactly one EdbCrs (one set of qTMC power
  // tables).
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 6, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(SupplyChainGraph::paper_example(), cfg);
  EXPECT_EQ(scenario.crs_cache()->size(), 1u);

  const zkedb::EdbCrsPtr& proxy_crs = scenario.proxy().crs();
  ASSERT_NE(proxy_crs, nullptr);
  // The cache's canonical instance for these parameters IS the proxy's.
  EXPECT_EQ(scenario.crs_cache()->get(proxy_crs->params().serialize()).get(),
            proxy_crs.get());
  // Re-putting a fresh duplicate keeps the first instance (no silent swap).
  const zkedb::EdbCrsPtr dup = std::make_shared<zkedb::EdbCrs>(
      zkedb::EdbPublicParams::deserialize(proxy_crs->params().serialize()));
  EXPECT_EQ(scenario.crs_cache()->put(dup).get(), proxy_crs.get());
  EXPECT_EQ(scenario.crs_cache()->size(), 1u);
}

}  // namespace
}  // namespace desword::protocol
