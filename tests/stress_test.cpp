// Larger-scale soak: a 20-participant chain, several tasks, dozens of
// queries with mixed qualities and a sprinkle of adversaries — checks that
// nothing degrades across many sequential protocol runs (memoization
// growth, session bookkeeping, reputation accumulation).
#include <gtest/gtest.h>

#include <memory>

#include "desword/applications.h"
#include "desword/scenario.h"

namespace desword::protocol {
namespace {

using supplychain::DistributionConfig;
using supplychain::make_products;
using supplychain::SupplyChainGraph;

TEST(StressTest, MultiTaskMultiQuerySoak) {
  ScenarioConfig cfg;
  cfg.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(SupplyChainGraph::layered(5, 4, 2), cfg);

  // Three tasks from different initial participants.
  std::vector<std::vector<supplychain::ProductId>> lots;
  for (int t = 0; t < 3; ++t) {
    DistributionConfig dist;
    dist.initial = "L0-" + std::to_string(t);
    dist.products = make_products(static_cast<std::uint32_t>(t + 1),
                                  static_cast<std::uint64_t>(t) * 1000, 6);
    dist.seed = static_cast<std::uint64_t>(t) + 17;
    scenario.run_task("task-" + std::to_string(t), dist);
    lots.push_back(dist.products);
  }

  // One adversary per behaviour class, scattered over the chain.
  QueryBehavior wrong_next;
  wrong_next.wrong_next[lots[0][0]] = "L4-0";
  scenario.participant("L0-0").set_query_behavior(wrong_next);

  QueryBehavior denial;
  denial.claim_non_processing.insert(lots[1][1]);
  const auto& denial_path = *scenario.path_of(lots[1][1]);
  scenario.participant(denial_path[1]).set_query_behavior(denial);

  // Sweep every product of every lot with alternating qualities.
  int complete = 0;
  int detected = 0;
  SimRng rng(4242);
  for (std::size_t lot = 0; lot < lots.size(); ++lot) {
    for (std::size_t i = 0; i < lots[lot].size(); ++i) {
      const ProductQuality quality = (i % 3 == 0) ? ProductQuality::kBad
                                                  : ProductQuality::kGood;
      const QueryOutcome outcome =
          scenario.proxy().run_query(lots[lot][i], quality);
      if (outcome.complete) {
        ++complete;
        EXPECT_EQ(outcome.path, *scenario.path_of(lots[lot][i]));
      }
      detected += static_cast<int>(outcome.violations.size());
    }
  }

  // All but the two sabotaged products complete with exact paths.
  EXPECT_EQ(complete, 18 - 2);
  EXPECT_GE(detected, 2);
  // Ledger bookkeeping stayed consistent: every event references a real
  // query and participant.
  for (const auto& event : scenario.proxy().ledger().history()) {
    EXPECT_FALSE(event.participant.empty());
    EXPECT_GT(event.query_id, 0u);
  }
}

TEST(StressTest, RepeatedNonMembershipQueriesBoundedGrowth) {
  // Repeatedly querying the same absent products must reuse memoized
  // fabrications rather than growing state per query.
  zkedb::EdbConfig cfg{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  const zkedb::EdbCrsPtr crs = zkedb::generate_crs(cfg);
  poc::PocScheme scheme(crs);
  std::map<Bytes, Bytes> traces;
  traces[supplychain::make_epc(1, 1, 1)] = bytes_of("da");
  auto [p, dpoc] = scheme.aggregate("v1", traces);

  const supplychain::ProductId ghost = supplychain::make_epc(2, 2, 2);
  const Bytes first = scheme.prove(*dpoc, ghost).serialize();
  const std::size_t state_after_first = dpoc->serialize().size();
  for (int i = 0; i < 20; ++i) {
    const poc::PocProof proof = scheme.prove(*dpoc, ghost);
    EXPECT_EQ(scheme.verify(p, ghost, proof).verdict,
              poc::PocVerdict::kValid);
  }
  EXPECT_EQ(dpoc->serialize().size(), state_after_first)
      << "repeated queries for the same key must not grow the DPOC";
  (void)first;
}

}  // namespace
}  // namespace desword::protocol
