// Drives the `desword` CLI in-process through a full
// ps-gen -> aggregate -> prove -> verify workflow in a temp directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli_lib.h"
#include "common/rng.h"

namespace desword::cli {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("desword-cli-test-" + std::to_string(random_u64()));
    fs::create_directories(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  int run_cli(std::initializer_list<std::string> args) {
    out_.str("");
    err_.str("");
    return run(std::vector<std::string>(args), out_, err_);
  }

  void write_traces_json() {
    std::ofstream f(path("traces.json"));
    f << R"({"traces": [
      {"id": {"manager": 1, "class": 2, "serial": 100},
       "operation": "manufacture", "timestamp": 5,
       "ingredients": ["api", "excipient"], "parameters": ["temp=20C"]},
      {"id": {"manager": 1, "class": 2, "serial": 101},
       "operation": "manufacture", "timestamp": 6}
    ]})";
  }

  fs::path dir_;
  std::ostringstream out_;
  std::ostringstream err_;
};

// Hex EPC for manager=1 class=2 serial=100 (see supplychain::make_epc).
constexpr const char* kProduct100 = "300000000100000200000064";
constexpr const char* kGhost = "300000000900000900000009";

TEST_F(CliTest, FullWorkflow) {
  ASSERT_EQ(run_cli({"ps-gen", "--q", "4", "--height", "8", "--rsa-bits",
                     "512", "--out", path("ps.bin")}),
            0)
      << err_.str();
  write_traces_json();
  ASSERT_EQ(run_cli({"aggregate", "--ps", path("ps.bin"), "--participant",
                     "v1", "--traces", path("traces.json"), "--poc",
                     path("v1.poc"), "--dpoc", path("v1.dpoc")}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("aggregated 2 traces"), std::string::npos);

  // Ownership proof for a committed product verifies.
  ASSERT_EQ(run_cli({"prove", "--ps", path("ps.bin"), "--dpoc",
                     path("v1.dpoc"), "--product", kProduct100, "--out",
                     path("own.proof")}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("ownership proof"), std::string::npos);
  ASSERT_EQ(run_cli({"verify", "--ps", path("ps.bin"), "--poc",
                     path("v1.poc"), "--product", kProduct100, "--proof",
                     path("own.proof")}),
            0)
      << err_.str();
  EXPECT_NE(out_.str().find("VALID ownership proof"), std::string::npos);
  EXPECT_NE(out_.str().find("operation=manufacture"), std::string::npos);

  // Non-ownership proof for an unknown product verifies.
  ASSERT_EQ(run_cli({"prove", "--ps", path("ps.bin"), "--dpoc",
                     path("v1.dpoc"), "--product", kGhost, "--out",
                     path("nown.proof")}),
            0);
  EXPECT_NE(out_.str().find("non-ownership proof"), std::string::npos);
  ASSERT_EQ(run_cli({"verify", "--ps", path("ps.bin"), "--poc",
                     path("v1.poc"), "--product", kGhost, "--proof",
                     path("nown.proof")}),
            0);
  EXPECT_NE(out_.str().find("VALID non-ownership proof"), std::string::npos);

  // Cross-product proof replay is rejected with exit code 1.
  EXPECT_EQ(run_cli({"verify", "--ps", path("ps.bin"), "--poc",
                     path("v1.poc"), "--product", kGhost, "--proof",
                     path("own.proof")}),
            1);
  EXPECT_NE(out_.str().find("BAD proof"), std::string::npos);
}

TEST_F(CliTest, InspectCommands) {
  ASSERT_EQ(run_cli({"ps-gen", "--q", "4", "--height", "8", "--rsa-bits",
                     "512", "--out", path("ps.bin")}),
            0);
  ASSERT_EQ(run_cli({"inspect", "--ps", path("ps.bin")}), 0);
  EXPECT_NE(out_.str().find("q=4 height=8"), std::string::npos);

  write_traces_json();
  ASSERT_EQ(run_cli({"aggregate", "--ps", path("ps.bin"), "--participant",
                     "v1", "--traces", path("traces.json"), "--poc",
                     path("v1.poc"), "--dpoc", path("v1.dpoc")}),
            0);
  ASSERT_EQ(run_cli({"inspect", "--poc", path("v1.poc")}), 0);
  EXPECT_NE(out_.str().find("POC of participant v1"), std::string::npos);
}

TEST_F(CliTest, UsageErrors) {
  EXPECT_EQ(run_cli({}), 2);
  EXPECT_EQ(run_cli({"no-such-command"}), 2);
  EXPECT_EQ(run_cli({"ps-gen"}), 2);  // missing --out
  EXPECT_EQ(run_cli({"ps-gen", "--out"}), 2);  // flag without value
  EXPECT_EQ(run_cli({"ps-gen", "--out", path("x"), "--bogus", "1"}), 2);
  EXPECT_EQ(run_cli({"inspect"}), 2);
  EXPECT_FALSE(err_.str().empty());
}

TEST_F(CliTest, OperationalErrors) {
  // Missing file -> exit 1, not a crash.
  EXPECT_EQ(run_cli({"inspect", "--ps", path("missing.bin")}), 1);
  // Malformed product id.
  ASSERT_EQ(run_cli({"ps-gen", "--q", "4", "--height", "8", "--rsa-bits",
                     "512", "--out", path("ps.bin")}),
            0);
  write_traces_json();
  ASSERT_EQ(run_cli({"aggregate", "--ps", path("ps.bin"), "--participant",
                     "v1", "--traces", path("traces.json"), "--poc",
                     path("v1.poc"), "--dpoc", path("v1.dpoc")}),
            0);
  EXPECT_EQ(run_cli({"prove", "--ps", path("ps.bin"), "--dpoc",
                     path("v1.dpoc"), "--product", "zz", "--out",
                     path("p.bin")}),
            2);
  // Corrupt DPOC file.
  std::ofstream(path("broken.dpoc")) << "garbage";
  EXPECT_EQ(run_cli({"prove", "--ps", path("ps.bin"), "--dpoc",
                     path("broken.dpoc"), "--product", kProduct100, "--out",
                     path("p.bin")}),
            1);
}

TEST_F(CliTest, DemoRuns) {
  EXPECT_EQ(run_cli({"demo"}), 0) << err_.str();
  EXPECT_NE(out_.str().find("good product query"), std::string::npos);
  EXPECT_NE(out_.str().find("[complete]"), std::string::npos);
}

}  // namespace
}  // namespace desword::cli
