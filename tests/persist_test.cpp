// DPOC persistence: a reloaded prover must keep producing proofs that
// verify under the ORIGINAL commitment, including previously memoized
// non-membership fabrications.
#include <gtest/gtest.h>

#include <map>

#include "crypto/hash.h"
#include "poc/poc.h"
#include "supplychain/rfid.h"
#include "zkedb/prover.h"
#include "zkedb/verifier.h"

namespace desword::zkedb {
namespace {

EdbConfig test_config() {
  EdbConfig cfg;
  cfg.q = 4;
  cfg.height = 8;
  cfg.rsa_bits = 512;
  cfg.group_name = "p256";
  return cfg;
}

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crs_ = generate_crs(test_config());
    std::map<Bytes, Bytes> entries;
    for (int i = 0; i < 4; ++i) {
      entries[key("prod-" + std::to_string(i))] =
          bytes_of("value-" + std::to_string(i));
    }
    prover_ = std::make_unique<EdbProver>(crs_, entries);
  }

  EdbKey key(const std::string& id) const {
    return key_for_identifier(*crs_, bytes_of(id));
  }

  EdbCrsPtr crs_;
  std::unique_ptr<EdbProver> prover_;
};

TEST_F(PersistTest, ReloadedProverKeepsCommitment) {
  const Bytes state = prover_->serialize_state();
  EdbProver reloaded = EdbProver::load(crs_, state);
  EXPECT_EQ(reloaded.commitment(), prover_->commitment());
  EXPECT_EQ(reloaded.size(), prover_->size());
}

TEST_F(PersistTest, ReloadedMembershipProofsVerifyUnderOriginalRoot) {
  const Bytes state = prover_->serialize_state();
  EdbProver reloaded = EdbProver::load(crs_, state);
  for (int i = 0; i < 4; ++i) {
    const EdbKey k = key("prod-" + std::to_string(i));
    const auto proof = reloaded.prove_membership(k);
    const auto value =
        edb_verify_membership(*crs_, prover_->commitment(), k, proof);
    ASSERT_TRUE(value.has_value()) << i;
    EXPECT_EQ(*value, bytes_of("value-" + std::to_string(i)));
  }
}

TEST_F(PersistTest, MemoizedFabricationsSurviveReload) {
  // Fabricate a soft path before saving; afterwards the reloaded prover
  // must present the SAME digest chain for that key (consistency of the
  // simulated view across restarts).
  const EdbKey ghost = key("ghost");
  const auto before = prover_->prove_non_membership(ghost);
  const Bytes state = prover_->serialize_state();
  EdbProver reloaded = EdbProver::load(crs_, state);
  const auto after = reloaded.prove_non_membership(ghost);
  ASSERT_EQ(before.child_commitments.size(), after.child_commitments.size());
  for (std::size_t i = 0; i < before.child_commitments.size(); ++i) {
    EXPECT_EQ(before.child_commitments[i], after.child_commitments[i]) << i;
  }
  EXPECT_TRUE(edb_verify_non_membership(*crs_, prover_->commitment(), ghost,
                                        after));
}

TEST_F(PersistTest, FreshNonMembershipAfterReloadWorks) {
  const Bytes state = prover_->serialize_state();
  EdbProver reloaded = EdbProver::load(crs_, state);
  const EdbKey ghost = key("never-queried-before");
  const auto proof = reloaded.prove_non_membership(ghost);
  EXPECT_TRUE(edb_verify_non_membership(*crs_, prover_->commitment(), ghost,
                                        proof));
}

TEST_F(PersistTest, CorruptedStateRejected) {
  Bytes state = prover_->serialize_state();
  // Wrong magic.
  Bytes bad_magic = state;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(EdbProver::load(crs_, bad_magic), SerializationError);
  // Truncations never crash.
  for (std::size_t len : {0ul, 4ul, 5ul, state.size() / 2, state.size() - 1}) {
    const Bytes prefix(state.begin(), state.begin() + static_cast<long>(len));
    EXPECT_THROW(EdbProver::load(crs_, prefix), SerializationError) << len;
  }
}

TEST_F(PersistTest, PocDecommitmentRoundTrip) {
  poc::PocScheme scheme(crs_);
  std::map<Bytes, Bytes> traces;
  for (std::uint64_t i = 0; i < 3; ++i) {
    traces[supplychain::make_epc(1, 1, i)] = bytes_of("da");
  }
  auto [p, dpoc] = scheme.aggregate("v1", traces);
  const Bytes blob = dpoc->serialize();
  const auto reloaded = poc::PocDecommitment::load(crs_, blob);
  EXPECT_EQ(reloaded->trace_count(), 3u);
  EXPECT_TRUE(reloaded->owns(supplychain::make_epc(1, 1, 0)));

  // Proofs from the reloaded DPOC verify under the original POC.
  const poc::PocProof own = scheme.prove(*reloaded,
                                         supplychain::make_epc(1, 1, 1));
  EXPECT_EQ(scheme.verify(p, supplychain::make_epc(1, 1, 1), own).verdict,
            poc::PocVerdict::kTrace);
  const poc::PocProof nown = scheme.prove(*reloaded,
                                          supplychain::make_epc(9, 9, 9));
  EXPECT_EQ(scheme.verify(p, supplychain::make_epc(9, 9, 9), nown).verdict,
            poc::PocVerdict::kValid);
}

}  // namespace
}  // namespace desword::zkedb
