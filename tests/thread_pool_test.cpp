#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace desword {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolOfSizeOneRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.for_each(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // no lock needed: single-threaded by contract
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_each(64,
                    [&](std::size_t i) {
                      if (i == 13) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool pool(4);
  try {
    pool.for_each(64, [](std::size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.for_each(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, ExceptionAbandonsUnclaimedIndices) {
  // One index throws immediately; with a big batch, at least the unclaimed
  // tail must be skipped (count < n). Inline pool makes this deterministic.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  try {
    pool.for_each(100, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("boom");
      count.fetch_add(1);
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, NestedForEachDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.for_each(8, [&](std::size_t) {
    // Nested fan-out from inside a task: the blocked caller drains its own
    // batch, so this completes even with every worker busy.
    pool.for_each(8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForHelper) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  parallel_for(&pool, 6, [&](std::size_t) {
    parallel_for(&pool, 6, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 36);
}

TEST(ThreadPoolTest, ParallelForNullPoolIsSequential) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(nullptr, 8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ForEachZeroAndOne) {
  ThreadPool pool(4);
  int count = 0;
  pool.for_each(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  // n == 1 runs inline on the caller.
  const auto caller = std::this_thread::get_id();
  pool.for_each(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, WorkIsActuallyDistributed) {
  // Each of 4 tasks blocks until all 4 have started, which is only
  // possible if every one runs on a distinct thread (3 workers + caller).
  ThreadPool pool(4);
  std::atomic<unsigned> started{0};
  std::mutex mu;
  std::set<std::thread::id> seen;
  pool.for_each(4, [&](std::size_t) {
    started.fetch_add(1);
    while (started.load() < 4) std::this_thread::yield();
    std::lock_guard<std::mutex> lk(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ThreadPoolTest, DefaultThreadsResolutionOrder) {
  // Override wins over everything.
  ThreadPool::set_default_threads(3);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ThreadPool::set_default_threads(0);  // clear

  // Env var wins once the override is cleared.
  ::setenv("DESWORD_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 5u);
  ::setenv("DESWORD_THREADS", "0", 1);  // invalid -> fall through to hw
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::unsetenv("DESWORD_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPoolTest, WithThreadsCachesPerCount) {
  ThreadPool& a = ThreadPool::with_threads(2);
  ThreadPool& b = ThreadPool::with_threads(2);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.concurrency(), 2u);
  ThreadPool& c = ThreadPool::with_threads(3);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(c.concurrency(), 3u);
}

}  // namespace
}  // namespace desword
