file(REMOVE_RECURSE
  "CMakeFiles/poc_test.dir/poc_test.cpp.o"
  "CMakeFiles/poc_test.dir/poc_test.cpp.o.d"
  "poc_test"
  "poc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
