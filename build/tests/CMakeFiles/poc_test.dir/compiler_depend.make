# Empty compiler generated dependencies file for poc_test.
# This may be replaced when dependencies are built.
