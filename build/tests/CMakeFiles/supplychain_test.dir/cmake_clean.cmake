file(REMOVE_RECURSE
  "CMakeFiles/supplychain_test.dir/supplychain_test.cpp.o"
  "CMakeFiles/supplychain_test.dir/supplychain_test.cpp.o.d"
  "supplychain_test"
  "supplychain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplychain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
