# Empty compiler generated dependencies file for supplychain_test.
# This may be replaced when dependencies are built.
