file(REMOVE_RECURSE
  "CMakeFiles/zkedb_update_test.dir/zkedb_update_test.cpp.o"
  "CMakeFiles/zkedb_update_test.dir/zkedb_update_test.cpp.o.d"
  "zkedb_update_test"
  "zkedb_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkedb_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
