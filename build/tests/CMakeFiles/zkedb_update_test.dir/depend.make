# Empty dependencies file for zkedb_update_test.
# This may be replaced when dependencies are built.
