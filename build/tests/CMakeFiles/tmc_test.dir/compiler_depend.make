# Empty compiler generated dependencies file for tmc_test.
# This may be replaced when dependencies are built.
