file(REMOVE_RECURSE
  "CMakeFiles/tmc_test.dir/tmc_test.cpp.o"
  "CMakeFiles/tmc_test.dir/tmc_test.cpp.o.d"
  "tmc_test"
  "tmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
