
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tmc_test.cpp" "tests/CMakeFiles/tmc_test.dir/tmc_test.cpp.o" "gcc" "tests/CMakeFiles/tmc_test.dir/tmc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/desword/CMakeFiles/desword_desword.dir/DependInfo.cmake"
  "/root/repo/build/src/poc/CMakeFiles/desword_poc.dir/DependInfo.cmake"
  "/root/repo/build/src/supplychain/CMakeFiles/desword_supplychain.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/desword_net.dir/DependInfo.cmake"
  "/root/repo/build/src/zkedb/CMakeFiles/desword_zkedb.dir/DependInfo.cmake"
  "/root/repo/build/src/mercurial/CMakeFiles/desword_mercurial.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/desword_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desword_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
