file(REMOVE_RECURSE
  "CMakeFiles/proxy_edge_test.dir/proxy_edge_test.cpp.o"
  "CMakeFiles/proxy_edge_test.dir/proxy_edge_test.cpp.o.d"
  "proxy_edge_test"
  "proxy_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
