# Empty compiler generated dependencies file for proxy_edge_test.
# This may be replaced when dependencies are built.
