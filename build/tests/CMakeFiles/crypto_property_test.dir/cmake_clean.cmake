file(REMOVE_RECURSE
  "CMakeFiles/crypto_property_test.dir/crypto_property_test.cpp.o"
  "CMakeFiles/crypto_property_test.dir/crypto_property_test.cpp.o.d"
  "crypto_property_test"
  "crypto_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
