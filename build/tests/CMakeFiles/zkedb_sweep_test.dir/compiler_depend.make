# Empty compiler generated dependencies file for zkedb_sweep_test.
# This may be replaced when dependencies are built.
