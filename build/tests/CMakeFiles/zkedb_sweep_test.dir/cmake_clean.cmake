file(REMOVE_RECURSE
  "CMakeFiles/zkedb_sweep_test.dir/zkedb_sweep_test.cpp.o"
  "CMakeFiles/zkedb_sweep_test.dir/zkedb_sweep_test.cpp.o.d"
  "zkedb_sweep_test"
  "zkedb_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkedb_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
