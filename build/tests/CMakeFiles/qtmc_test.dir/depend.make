# Empty dependencies file for qtmc_test.
# This may be replaced when dependencies are built.
