file(REMOVE_RECURSE
  "CMakeFiles/qtmc_test.dir/qtmc_test.cpp.o"
  "CMakeFiles/qtmc_test.dir/qtmc_test.cpp.o.d"
  "qtmc_test"
  "qtmc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qtmc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
