file(REMOVE_RECURSE
  "CMakeFiles/zkedb_test.dir/zkedb_test.cpp.o"
  "CMakeFiles/zkedb_test.dir/zkedb_test.cpp.o.d"
  "zkedb_test"
  "zkedb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zkedb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
