# Empty compiler generated dependencies file for desword_supplychain.
# This may be replaced when dependencies are built.
