file(REMOVE_RECURSE
  "libdesword_supplychain.a"
)
