file(REMOVE_RECURSE
  "CMakeFiles/desword_supplychain.dir/distribution.cpp.o"
  "CMakeFiles/desword_supplychain.dir/distribution.cpp.o.d"
  "CMakeFiles/desword_supplychain.dir/graph.cpp.o"
  "CMakeFiles/desword_supplychain.dir/graph.cpp.o.d"
  "CMakeFiles/desword_supplychain.dir/rfid.cpp.o"
  "CMakeFiles/desword_supplychain.dir/rfid.cpp.o.d"
  "CMakeFiles/desword_supplychain.dir/trace.cpp.o"
  "CMakeFiles/desword_supplychain.dir/trace.cpp.o.d"
  "libdesword_supplychain.a"
  "libdesword_supplychain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_supplychain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
