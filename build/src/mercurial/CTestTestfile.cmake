# CMake generated Testfile for 
# Source directory: /root/repo/src/mercurial
# Build directory: /root/repo/build/src/mercurial
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
