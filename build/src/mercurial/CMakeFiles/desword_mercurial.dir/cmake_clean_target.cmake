file(REMOVE_RECURSE
  "libdesword_mercurial.a"
)
