
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mercurial/qtmc.cpp" "src/mercurial/CMakeFiles/desword_mercurial.dir/qtmc.cpp.o" "gcc" "src/mercurial/CMakeFiles/desword_mercurial.dir/qtmc.cpp.o.d"
  "/root/repo/src/mercurial/tmc.cpp" "src/mercurial/CMakeFiles/desword_mercurial.dir/tmc.cpp.o" "gcc" "src/mercurial/CMakeFiles/desword_mercurial.dir/tmc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/desword_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desword_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
