file(REMOVE_RECURSE
  "CMakeFiles/desword_mercurial.dir/qtmc.cpp.o"
  "CMakeFiles/desword_mercurial.dir/qtmc.cpp.o.d"
  "CMakeFiles/desword_mercurial.dir/tmc.cpp.o"
  "CMakeFiles/desword_mercurial.dir/tmc.cpp.o.d"
  "libdesword_mercurial.a"
  "libdesword_mercurial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_mercurial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
