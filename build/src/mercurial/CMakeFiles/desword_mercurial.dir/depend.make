# Empty dependencies file for desword_mercurial.
# This may be replaced when dependencies are built.
