# Empty dependencies file for desword_crypto.
# This may be replaced when dependencies are built.
