
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bignum.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/bignum.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/bignum.cpp.o.d"
  "/root/repo/src/crypto/ec_group.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/ec_group.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/ec_group.cpp.o.d"
  "/root/repo/src/crypto/hash.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/hash.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/hash.cpp.o.d"
  "/root/repo/src/crypto/modexp.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/modexp.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/modexp.cpp.o.d"
  "/root/repo/src/crypto/modp_group.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/modp_group.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/modp_group.cpp.o.d"
  "/root/repo/src/crypto/primes.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/primes.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/primes.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/rsa.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/rsa.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/crypto/CMakeFiles/desword_crypto.dir/schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/desword_crypto.dir/schnorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/desword_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
