file(REMOVE_RECURSE
  "CMakeFiles/desword_crypto.dir/bignum.cpp.o"
  "CMakeFiles/desword_crypto.dir/bignum.cpp.o.d"
  "CMakeFiles/desword_crypto.dir/ec_group.cpp.o"
  "CMakeFiles/desword_crypto.dir/ec_group.cpp.o.d"
  "CMakeFiles/desword_crypto.dir/hash.cpp.o"
  "CMakeFiles/desword_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/desword_crypto.dir/modexp.cpp.o"
  "CMakeFiles/desword_crypto.dir/modexp.cpp.o.d"
  "CMakeFiles/desword_crypto.dir/modp_group.cpp.o"
  "CMakeFiles/desword_crypto.dir/modp_group.cpp.o.d"
  "CMakeFiles/desword_crypto.dir/primes.cpp.o"
  "CMakeFiles/desword_crypto.dir/primes.cpp.o.d"
  "CMakeFiles/desword_crypto.dir/rsa.cpp.o"
  "CMakeFiles/desword_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/desword_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/desword_crypto.dir/schnorr.cpp.o.d"
  "libdesword_crypto.a"
  "libdesword_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
