file(REMOVE_RECURSE
  "libdesword_crypto.a"
)
