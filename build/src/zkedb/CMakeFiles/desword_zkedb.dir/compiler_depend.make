# Empty compiler generated dependencies file for desword_zkedb.
# This may be replaced when dependencies are built.
