file(REMOVE_RECURSE
  "CMakeFiles/desword_zkedb.dir/batch.cpp.o"
  "CMakeFiles/desword_zkedb.dir/batch.cpp.o.d"
  "CMakeFiles/desword_zkedb.dir/params.cpp.o"
  "CMakeFiles/desword_zkedb.dir/params.cpp.o.d"
  "CMakeFiles/desword_zkedb.dir/persist.cpp.o"
  "CMakeFiles/desword_zkedb.dir/persist.cpp.o.d"
  "CMakeFiles/desword_zkedb.dir/proof.cpp.o"
  "CMakeFiles/desword_zkedb.dir/proof.cpp.o.d"
  "CMakeFiles/desword_zkedb.dir/prover.cpp.o"
  "CMakeFiles/desword_zkedb.dir/prover.cpp.o.d"
  "CMakeFiles/desword_zkedb.dir/verifier.cpp.o"
  "CMakeFiles/desword_zkedb.dir/verifier.cpp.o.d"
  "libdesword_zkedb.a"
  "libdesword_zkedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_zkedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
