file(REMOVE_RECURSE
  "libdesword_zkedb.a"
)
