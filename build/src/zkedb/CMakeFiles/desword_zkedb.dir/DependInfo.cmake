
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zkedb/batch.cpp" "src/zkedb/CMakeFiles/desword_zkedb.dir/batch.cpp.o" "gcc" "src/zkedb/CMakeFiles/desword_zkedb.dir/batch.cpp.o.d"
  "/root/repo/src/zkedb/params.cpp" "src/zkedb/CMakeFiles/desword_zkedb.dir/params.cpp.o" "gcc" "src/zkedb/CMakeFiles/desword_zkedb.dir/params.cpp.o.d"
  "/root/repo/src/zkedb/persist.cpp" "src/zkedb/CMakeFiles/desword_zkedb.dir/persist.cpp.o" "gcc" "src/zkedb/CMakeFiles/desword_zkedb.dir/persist.cpp.o.d"
  "/root/repo/src/zkedb/proof.cpp" "src/zkedb/CMakeFiles/desword_zkedb.dir/proof.cpp.o" "gcc" "src/zkedb/CMakeFiles/desword_zkedb.dir/proof.cpp.o.d"
  "/root/repo/src/zkedb/prover.cpp" "src/zkedb/CMakeFiles/desword_zkedb.dir/prover.cpp.o" "gcc" "src/zkedb/CMakeFiles/desword_zkedb.dir/prover.cpp.o.d"
  "/root/repo/src/zkedb/verifier.cpp" "src/zkedb/CMakeFiles/desword_zkedb.dir/verifier.cpp.o" "gcc" "src/zkedb/CMakeFiles/desword_zkedb.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mercurial/CMakeFiles/desword_mercurial.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/desword_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desword_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
