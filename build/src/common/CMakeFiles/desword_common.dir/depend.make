# Empty dependencies file for desword_common.
# This may be replaced when dependencies are built.
