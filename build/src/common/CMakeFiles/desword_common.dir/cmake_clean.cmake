file(REMOVE_RECURSE
  "CMakeFiles/desword_common.dir/bytes.cpp.o"
  "CMakeFiles/desword_common.dir/bytes.cpp.o.d"
  "CMakeFiles/desword_common.dir/json.cpp.o"
  "CMakeFiles/desword_common.dir/json.cpp.o.d"
  "CMakeFiles/desword_common.dir/rng.cpp.o"
  "CMakeFiles/desword_common.dir/rng.cpp.o.d"
  "CMakeFiles/desword_common.dir/serial.cpp.o"
  "CMakeFiles/desword_common.dir/serial.cpp.o.d"
  "libdesword_common.a"
  "libdesword_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
