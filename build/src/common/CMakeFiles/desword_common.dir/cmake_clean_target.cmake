file(REMOVE_RECURSE
  "libdesword_common.a"
)
