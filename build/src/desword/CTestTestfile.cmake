# CMake generated Testfile for 
# Source directory: /root/repo/src/desword
# Build directory: /root/repo/build/src/desword
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
