# Empty compiler generated dependencies file for desword_desword.
# This may be replaced when dependencies are built.
