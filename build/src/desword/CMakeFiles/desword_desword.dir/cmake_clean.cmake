file(REMOVE_RECURSE
  "CMakeFiles/desword_desword.dir/applications.cpp.o"
  "CMakeFiles/desword_desword.dir/applications.cpp.o.d"
  "CMakeFiles/desword_desword.dir/baseline.cpp.o"
  "CMakeFiles/desword_desword.dir/baseline.cpp.o.d"
  "CMakeFiles/desword_desword.dir/messages.cpp.o"
  "CMakeFiles/desword_desword.dir/messages.cpp.o.d"
  "CMakeFiles/desword_desword.dir/participant.cpp.o"
  "CMakeFiles/desword_desword.dir/participant.cpp.o.d"
  "CMakeFiles/desword_desword.dir/proxy.cpp.o"
  "CMakeFiles/desword_desword.dir/proxy.cpp.o.d"
  "CMakeFiles/desword_desword.dir/query.cpp.o"
  "CMakeFiles/desword_desword.dir/query.cpp.o.d"
  "CMakeFiles/desword_desword.dir/reputation.cpp.o"
  "CMakeFiles/desword_desword.dir/reputation.cpp.o.d"
  "CMakeFiles/desword_desword.dir/scenario.cpp.o"
  "CMakeFiles/desword_desword.dir/scenario.cpp.o.d"
  "libdesword_desword.a"
  "libdesword_desword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_desword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
