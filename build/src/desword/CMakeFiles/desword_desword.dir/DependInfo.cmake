
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/desword/applications.cpp" "src/desword/CMakeFiles/desword_desword.dir/applications.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/applications.cpp.o.d"
  "/root/repo/src/desword/baseline.cpp" "src/desword/CMakeFiles/desword_desword.dir/baseline.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/baseline.cpp.o.d"
  "/root/repo/src/desword/messages.cpp" "src/desword/CMakeFiles/desword_desword.dir/messages.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/messages.cpp.o.d"
  "/root/repo/src/desword/participant.cpp" "src/desword/CMakeFiles/desword_desword.dir/participant.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/participant.cpp.o.d"
  "/root/repo/src/desword/proxy.cpp" "src/desword/CMakeFiles/desword_desword.dir/proxy.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/proxy.cpp.o.d"
  "/root/repo/src/desword/query.cpp" "src/desword/CMakeFiles/desword_desword.dir/query.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/query.cpp.o.d"
  "/root/repo/src/desword/reputation.cpp" "src/desword/CMakeFiles/desword_desword.dir/reputation.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/reputation.cpp.o.d"
  "/root/repo/src/desword/scenario.cpp" "src/desword/CMakeFiles/desword_desword.dir/scenario.cpp.o" "gcc" "src/desword/CMakeFiles/desword_desword.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poc/CMakeFiles/desword_poc.dir/DependInfo.cmake"
  "/root/repo/build/src/zkedb/CMakeFiles/desword_zkedb.dir/DependInfo.cmake"
  "/root/repo/build/src/mercurial/CMakeFiles/desword_mercurial.dir/DependInfo.cmake"
  "/root/repo/build/src/supplychain/CMakeFiles/desword_supplychain.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/desword_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/desword_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desword_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
