file(REMOVE_RECURSE
  "libdesword_desword.a"
)
