# Empty dependencies file for desword_desword.
# This may be replaced when dependencies are built.
