
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/poc/poc.cpp" "src/poc/CMakeFiles/desword_poc.dir/poc.cpp.o" "gcc" "src/poc/CMakeFiles/desword_poc.dir/poc.cpp.o.d"
  "/root/repo/src/poc/poc_list.cpp" "src/poc/CMakeFiles/desword_poc.dir/poc_list.cpp.o" "gcc" "src/poc/CMakeFiles/desword_poc.dir/poc_list.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zkedb/CMakeFiles/desword_zkedb.dir/DependInfo.cmake"
  "/root/repo/build/src/mercurial/CMakeFiles/desword_mercurial.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/desword_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/desword_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
