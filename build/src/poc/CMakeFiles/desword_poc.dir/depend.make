# Empty dependencies file for desword_poc.
# This may be replaced when dependencies are built.
