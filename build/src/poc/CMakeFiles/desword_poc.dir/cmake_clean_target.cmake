file(REMOVE_RECURSE
  "libdesword_poc.a"
)
