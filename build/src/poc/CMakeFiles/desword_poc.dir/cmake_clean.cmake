file(REMOVE_RECURSE
  "CMakeFiles/desword_poc.dir/poc.cpp.o"
  "CMakeFiles/desword_poc.dir/poc.cpp.o.d"
  "CMakeFiles/desword_poc.dir/poc_list.cpp.o"
  "CMakeFiles/desword_poc.dir/poc_list.cpp.o.d"
  "libdesword_poc.a"
  "libdesword_poc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_poc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
