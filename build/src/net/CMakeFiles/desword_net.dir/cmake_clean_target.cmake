file(REMOVE_RECURSE
  "libdesword_net.a"
)
