# Empty compiler generated dependencies file for desword_net.
# This may be replaced when dependencies are built.
