file(REMOVE_RECURSE
  "CMakeFiles/desword_net.dir/network.cpp.o"
  "CMakeFiles/desword_net.dir/network.cpp.o.d"
  "libdesword_net.a"
  "libdesword_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
