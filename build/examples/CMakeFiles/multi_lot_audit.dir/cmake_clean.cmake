file(REMOVE_RECURSE
  "CMakeFiles/multi_lot_audit.dir/multi_lot_audit.cpp.o"
  "CMakeFiles/multi_lot_audit.dir/multi_lot_audit.cpp.o.d"
  "multi_lot_audit"
  "multi_lot_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_lot_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
