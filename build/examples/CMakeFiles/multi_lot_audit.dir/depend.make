# Empty dependencies file for multi_lot_audit.
# This may be replaced when dependencies are built.
