file(REMOVE_RECURSE
  "CMakeFiles/reputation_simulation.dir/reputation_simulation.cpp.o"
  "CMakeFiles/reputation_simulation.dir/reputation_simulation.cpp.o.d"
  "reputation_simulation"
  "reputation_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reputation_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
