# Empty dependencies file for reputation_simulation.
# This may be replaced when dependencies are built.
