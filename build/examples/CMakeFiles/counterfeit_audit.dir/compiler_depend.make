# Empty compiler generated dependencies file for counterfeit_audit.
# This may be replaced when dependencies are built.
