file(REMOVE_RECURSE
  "CMakeFiles/counterfeit_audit.dir/counterfeit_audit.cpp.o"
  "CMakeFiles/counterfeit_audit.dir/counterfeit_audit.cpp.o.d"
  "counterfeit_audit"
  "counterfeit_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterfeit_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
