# Empty dependencies file for contamination_recall.
# This may be replaced when dependencies are built.
