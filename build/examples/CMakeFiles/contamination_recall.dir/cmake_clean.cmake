file(REMOVE_RECURSE
  "CMakeFiles/contamination_recall.dir/contamination_recall.cpp.o"
  "CMakeFiles/contamination_recall.dir/contamination_recall.cpp.o.d"
  "contamination_recall"
  "contamination_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contamination_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
