file(REMOVE_RECURSE
  "CMakeFiles/bench_poc_comp.dir/bench_poc_comp.cpp.o"
  "CMakeFiles/bench_poc_comp.dir/bench_poc_comp.cpp.o.d"
  "bench_poc_comp"
  "bench_poc_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poc_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
