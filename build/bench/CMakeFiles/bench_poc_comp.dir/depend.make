# Empty dependencies file for bench_poc_comp.
# This may be replaced when dependencies are built.
