# Empty dependencies file for bench_incentive.
# This may be replaced when dependencies are built.
