file(REMOVE_RECURSE
  "CMakeFiles/bench_incentive.dir/bench_incentive.cpp.o"
  "CMakeFiles/bench_incentive.dir/bench_incentive.cpp.o.d"
  "bench_incentive"
  "bench_incentive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incentive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
