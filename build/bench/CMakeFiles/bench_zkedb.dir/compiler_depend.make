# Empty compiler generated dependencies file for bench_zkedb.
# This may be replaced when dependencies are built.
