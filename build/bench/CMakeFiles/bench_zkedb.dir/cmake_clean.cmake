file(REMOVE_RECURSE
  "CMakeFiles/bench_zkedb.dir/bench_zkedb.cpp.o"
  "CMakeFiles/bench_zkedb.dir/bench_zkedb.cpp.o.d"
  "bench_zkedb"
  "bench_zkedb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zkedb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
