file(REMOVE_RECURSE
  "CMakeFiles/bench_tmc_micro.dir/bench_tmc_micro.cpp.o"
  "CMakeFiles/bench_tmc_micro.dir/bench_tmc_micro.cpp.o.d"
  "bench_tmc_micro"
  "bench_tmc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tmc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
