# Empty dependencies file for bench_tmc_micro.
# This may be replaced when dependencies are built.
