# Empty compiler generated dependencies file for bench_qtmc_micro.
# This may be replaced when dependencies are built.
