file(REMOVE_RECURSE
  "CMakeFiles/bench_qtmc_micro.dir/bench_qtmc_micro.cpp.o"
  "CMakeFiles/bench_qtmc_micro.dir/bench_qtmc_micro.cpp.o.d"
  "bench_qtmc_micro"
  "bench_qtmc_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qtmc_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
