file(REMOVE_RECURSE
  "CMakeFiles/bench_poc_comm.dir/bench_poc_comm.cpp.o"
  "CMakeFiles/bench_poc_comm.dir/bench_poc_comm.cpp.o.d"
  "bench_poc_comm"
  "bench_poc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
