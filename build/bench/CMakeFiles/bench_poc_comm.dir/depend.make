# Empty dependencies file for bench_poc_comm.
# This may be replaced when dependencies are built.
