file(REMOVE_RECURSE
  "libdesword_cli_lib.a"
)
