# Empty dependencies file for desword_cli_lib.
# This may be replaced when dependencies are built.
