file(REMOVE_RECURSE
  "CMakeFiles/desword_cli_lib.dir/cli_lib.cpp.o"
  "CMakeFiles/desword_cli_lib.dir/cli_lib.cpp.o.d"
  "libdesword_cli_lib.a"
  "libdesword_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
