# Empty compiler generated dependencies file for desword_cli.
# This may be replaced when dependencies are built.
