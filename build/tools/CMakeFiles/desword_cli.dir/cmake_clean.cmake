file(REMOVE_RECURSE
  "CMakeFiles/desword_cli.dir/desword_cli.cpp.o"
  "CMakeFiles/desword_cli.dir/desword_cli.cpp.o.d"
  "desword"
  "desword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desword_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
