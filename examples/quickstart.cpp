// Quickstart — the DE-Sword API in one file.
//
// Builds a three-stage supply chain (manufacturer -> distributor ->
// pharmacy), ships a batch of tagged products through it, runs the
// DE-Sword distribution phase (POC construction + POC list submission),
// and then asks the proxy for the verifiable path of one product.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "desword/scenario.h"

using namespace desword;
using namespace desword::protocol;

int main() {
  // 1. The supply chain digraph. Edges are "products may flow this way".
  supplychain::SupplyChainGraph graph;
  graph.add_edge("acme-pharma", "metro-distributor");
  graph.add_edge("metro-distributor", "corner-pharmacy");
  graph.add_edge("metro-distributor", "city-hospital");

  // 2. A scenario wires up the proxy, one protocol endpoint per
  //    participant, and a simulated network. The EdbConfig picks the
  //    ZK-EDB shape: q-ary tree of the given height over an RSA modulus.
  ScenarioConfig config;
  config.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(graph, config);

  // 3. One distribution task: 6 tagged products leave the manufacturer.
  supplychain::DistributionConfig dist;
  dist.initial = "acme-pharma";
  dist.products = supplychain::make_products(/*manager=*/42,
                                             /*first_serial=*/1, /*count=*/6);
  const auto& truth = scenario.run_task("lot-2026-07", dist);
  std::printf("distribution phase done: %zu participants committed POCs\n",
              truth.involved.size());

  // 4. Query the path of the first product (good-product flavour: every
  //    identified participant earns a positive reputation score).
  const supplychain::ProductId product = dist.products[0];
  const QueryOutcome outcome =
      scenario.proxy().run_query(product, ProductQuality::kGood);

  std::printf("\nquery for %s (%s product): %s\n",
              supplychain::epc_to_string(product).c_str(),
              to_string(outcome.quality).c_str(),
              outcome.complete ? "complete" : "incomplete");
  std::printf("verified path:");
  for (const auto& hop : outcome.path) std::printf(" -> %s", hop.c_str());
  std::printf("\n");
  for (const auto& [participant, trace] : outcome.traces) {
    if (trace.info.has_value()) {
      std::printf("  %-18s op=%-12s t=%llu\n", participant.c_str(),
                  trace.info->operation.c_str(),
                  static_cast<unsigned long long>(trace.info->timestamp));
    }
  }

  // 5. Reputation is public.
  std::printf("\nreputation scores after the query:\n");
  for (const auto& [participant, score] :
       scenario.proxy().reputation_snapshot()) {
    std::printf("  %-18s %+5.1f\n", participant.c_str(), score);
  }
  return outcome.complete ? 0 : 1;
}
