// Contamination localization & targeted recall — the paper's motivating
// application (§I).
//
// A product quality administration discovers one bad product in the
// market. DE-Sword lets it (a) recover the product's verifiable path,
// (b) locate the contamination source (the path's first hop carries the
// heaviest responsibility weight), and (c) run good-product queries for
// the sibling products of the same lot to find everything else the source
// touched — the targeted recall set.
//
//   $ ./examples/contamination_recall
#include <algorithm>
#include <cstdio>

#include "desword/scenario.h"

using namespace desword;
using namespace desword::protocol;

int main() {
  // The paper's Figure 1 topology: v0/v1 initial, v5/v7/v8/v9 leaves.
  ScenarioConfig config;
  config.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  config.scores.weight_by_responsibility = true;  // source pays double
  Scenario scenario(supplychain::SupplyChainGraph::paper_example(), config);

  supplychain::DistributionConfig dist;
  dist.initial = "v0";
  dist.products = supplychain::make_products(7, 100, 8);  // one lot
  dist.seed = 2026;
  scenario.run_task("lot-7", dist);
  std::printf("lot-7 distributed: 8 products, POC list filed with proxy\n");

  // A quality check flags product #3 as contaminated.
  const supplychain::ProductId bad_product = dist.products[3];
  std::printf("\n!! contamination detected in %s — issuing bad product "
              "path query\n",
              supplychain::epc_to_string(bad_product).c_str());
  const QueryOutcome bad =
      scenario.proxy().run_query(bad_product, ProductQuality::kBad);
  if (!bad.complete) {
    std::printf("query aborted — violations: %zu\n", bad.violations.size());
    return 1;
  }
  std::printf("verified path:");
  for (const auto& hop : bad.path) std::printf(" -> %s", hop.c_str());
  const std::string source = bad.path.front();
  std::printf("\ncontamination source: %s (responsibility-weighted score "
              "%+0.1f)\n",
              source.c_str(), scenario.proxy().reputation(source));

  // Targeted recall: which other lot-7 products passed through the source?
  // (For a same-lot recall every product shares the initial participant;
  // the interesting set is everything sharing the *second* hop, where the
  // contamination was introduced in this scenario.)
  const std::string& suspect_stage = bad.path.size() > 1 ? bad.path[1] : source;
  std::printf("\nchecking the rest of the lot against suspect stage %s:\n",
              suspect_stage.c_str());
  int recalled = 0;
  for (const auto& product : dist.products) {
    if (product == bad_product) continue;
    const QueryOutcome sibling =
        scenario.proxy().run_query(product, ProductQuality::kGood);
    const bool affected =
        sibling.complete &&
        std::find(sibling.path.begin(), sibling.path.end(), suspect_stage) !=
            sibling.path.end();
    std::printf("  %s path verified (%zu hops) -> %s\n",
                supplychain::epc_to_string(product).c_str(),
                sibling.path.size(), affected ? "RECALL" : "clear");
    if (affected) ++recalled;
  }
  std::printf("\nrecall set: %d of %zu sibling products\n", recalled,
              dist.products.size() - 1);

  std::printf("\nfinal public reputation board:\n");
  for (const auto& [participant, score] :
       scenario.proxy().reputation_snapshot()) {
    std::printf("  %-4s %+6.1f\n", participant.c_str(), score);
  }
  return 0;
}
