// Multi-lot regulatory audit — the applications layer end to end.
//
// Three lots from two manufacturers flow through the paper's Figure 1
// chain (multi-distribution tasks, §IV-D). The regulator then:
//
//   1. market-samples products across all lots (MarketSampler) with a lab
//      oracle that flags one contaminated product,
//   2. investigates the contamination (ContaminationInvestigator): source
//      localization + targeted recall set,
//   3. screens a gray-market product of unknown origin and a product from
//      an unlicensed source (CounterfeitDetector).
//
//   $ ./examples/multi_lot_audit
#include <cstdio>

#include "desword/applications.h"
#include "desword/scenario.h"

using namespace desword;
using namespace desword::protocol;

int main() {
  ScenarioConfig config;
  config.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  config.scores.weight_by_responsibility = true;
  Scenario scenario(supplychain::SupplyChainGraph::paper_example(), config);

  // Three lots: two from v0, one from v1 (multi-task POC queues).
  supplychain::DistributionConfig lot;
  lot.initial = "v0";
  lot.products = supplychain::make_products(1, 0, 5);
  scenario.run_task("lot-alpha", lot);
  const auto alpha = lot.products;

  lot.products = supplychain::make_products(1, 100, 5);
  lot.seed = 5;
  scenario.run_task("lot-beta", lot);
  const auto beta = lot.products;

  lot.initial = "v1";
  lot.products = supplychain::make_products(2, 200, 5);
  lot.seed = 9;
  scenario.run_task("lot-gamma", lot);
  const auto gamma = lot.products;

  std::printf("3 lots distributed (15 products, 2 manufacturers)\n");
  std::printf("POC queues: v0=%zu tasks, v1=%zu tasks\n\n",
              scenario.proxy().poc_queue("v0").size(),
              scenario.proxy().poc_queue("v1").size());

  // --- 1. Market sampling with a lab oracle -----------------------------
  const supplychain::ProductId contaminated = beta[2];
  std::vector<supplychain::ProductId> market;
  market.insert(market.end(), alpha.begin(), alpha.end());
  market.insert(market.end(), beta.begin(), beta.end());
  market.insert(market.end(), gamma.begin(), gamma.end());

  MarketSampler sampler(scenario.proxy(), /*seed=*/2026);
  const auto sampled = sampler.sweep(
      market, /*rate=*/0.5, [&](const supplychain::ProductId& p) {
        return p == contaminated ? ProductQuality::kBad
                                 : ProductQuality::kGood;
      });
  std::printf("market sweep: sampled %llu of %zu products\n",
              static_cast<unsigned long long>(sampler.sampled_count()),
              market.size());

  // --- 2. Contamination investigation -----------------------------------
  std::printf("\ninvestigating contaminated product %s (lot-beta)\n",
              supplychain::epc_to_string(contaminated).c_str());
  ContaminationInvestigator investigator(scenario.proxy());
  const InvestigationReport report =
      investigator.investigate(contaminated, beta, /*suspect_hop=*/1);
  if (report.located()) {
    std::printf("  source: %s, suspect stage: %s\n", report.source.c_str(),
                report.suspect_stage.c_str());
    std::printf("  recall set (%zu of %zu siblings):", report.recall_set.size(),
                beta.size() - 1);
    for (const auto& p : report.recall_set) {
      std::printf(" %s", supplychain::epc_to_string(p).c_str());
    }
    std::printf("\n");
  } else {
    std::printf("  investigation failed to locate the path\n");
  }

  // --- 3. Counterfeit screening ------------------------------------------
  CounterfeitDetector licensed_only_v0(scenario.proxy(), {"v0"});
  std::printf("\ncounterfeit screening (licensed manufacturers: v0):\n");
  const ProvenanceReport unknown =
      licensed_only_v0.check(supplychain::make_epc(9, 9, 99999));
  std::printf("  gray-market product : %-14s (%s)\n",
              to_string(unknown.verdict).c_str(), unknown.reason.c_str());
  const ProvenanceReport unlicensed = licensed_only_v0.check(gamma[0]);
  std::printf("  lot-gamma product   : %-14s (%s)\n",
              to_string(unlicensed.verdict).c_str(),
              unlicensed.reason.c_str());
  const ProvenanceReport genuine = licensed_only_v0.check(alpha[0]);
  std::printf("  lot-alpha product   : %-14s (%s)\n",
              to_string(genuine.verdict).c_str(), genuine.reason.c_str());

  std::printf("\nreputation board (responsibility-weighted):\n");
  for (const auto& [id, score] : scenario.proxy().reputation_snapshot()) {
    std::printf("  %-4s %+7.1f\n", id.c_str(), score);
  }

  const bool ok = report.located() &&
                  unknown.verdict == ProvenanceVerdict::kUnknownOrigin &&
                  unlicensed.verdict == ProvenanceVerdict::kSuspect &&
                  genuine.verdict == ProvenanceVerdict::kAuthentic;
  std::printf("\naudit checks passed: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
