// Counterfeit detection audit — dishonest participants against the
// verifiable query (§III).
//
// Two frauds are staged and both are exposed by the proxy:
//
//   1. "claim processing": a participant that never handled a premium
//      product tries to free-ride on its good reputation during a good
//      product query. Its forged ownership proof cannot verify.
//   2. "claim non-processing": a participant that DID handle a product
//      later found bad tries to deny involvement. It cannot produce a
//      valid non-ownership proof, is identified anyway, and is penalized.
//
//   $ ./examples/counterfeit_audit
#include <cstdio>

#include "desword/scenario.h"

using namespace desword;
using namespace desword::protocol;

namespace {

void print_outcome(const char* label, const QueryOutcome& outcome) {
  std::printf("%s: %s, path:", label,
              outcome.complete ? "complete" : "incomplete");
  for (const auto& hop : outcome.path) std::printf(" -> %s", hop.c_str());
  std::printf("\n");
  for (const auto& violation : outcome.violations) {
    std::printf("  !! violation detected: %s by %s\n",
                to_string(violation.type).c_str(),
                violation.participant.c_str());
  }
}

}  // namespace

int main() {
  ScenarioConfig config;
  config.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(supplychain::SupplyChainGraph::paper_example(), config);

  // Two independent lots from the two initial participants.
  supplychain::DistributionConfig lot_a;
  lot_a.initial = "v0";
  lot_a.products = supplychain::make_products(1, 0, 4);
  scenario.run_task("lot-a", lot_a);

  supplychain::DistributionConfig lot_b;
  lot_b.initial = "v1";
  lot_b.products = supplychain::make_products(2, 50, 4);
  scenario.run_task("lot-b", lot_b);

  // Fraud 1: v0 claims it processed a premium product from v1's lot.
  const supplychain::ProductId premium = lot_b.products[0];
  QueryBehavior freerider;
  freerider.claim_processing.insert(premium);
  scenario.participant("v0").set_query_behavior(freerider);

  std::printf("audit 1: good product query for %s (v0 will lie)\n",
              supplychain::epc_to_string(premium).c_str());
  const QueryOutcome audit1 =
      scenario.proxy().run_query(premium, ProductQuality::kGood);
  print_outcome("audit 1", audit1);
  std::printf("  query recovered the true path despite the lie "
              "(starts at %s)\n\n",
              audit1.path.empty() ? "?" : audit1.path.front().c_str());
  scenario.participant("v0").set_query_behavior({});

  // Fraud 2: a participant on a bad product's path denies processing.
  const supplychain::ProductId flagged = lot_a.products[2];
  const auto* path = scenario.path_of(flagged);
  const std::string denier = (*path)[1];
  QueryBehavior denial;
  denial.claim_non_processing.insert(flagged);
  scenario.participant(denier).set_query_behavior(denial);

  std::printf("audit 2: bad product query for %s (%s will deny)\n",
              supplychain::epc_to_string(flagged).c_str(), denier.c_str());
  const QueryOutcome audit2 =
      scenario.proxy().run_query(flagged, ProductQuality::kBad);
  print_outcome("audit 2", audit2);

  std::printf("\nreputation board after the audits:\n");
  for (const auto& [participant, score] :
       scenario.proxy().reputation_snapshot()) {
    std::printf("  %-4s %+6.1f%s\n", participant.c_str(), score,
                score < -2.5 ? "   <- penalized cheater" : "");
  }
  const bool both_detected =
      audit1.has_violation("v0",
                           ViolationType::kClaimProcessingInvalidProof) &&
      audit2.has_violation(denier,
                           ViolationType::kClaimNonProcessingInvalidProof);
  std::printf("\nboth frauds detected: %s\n", both_detected ? "yes" : "NO");
  return both_detected ? 0 : 1;
}
