// Reputation trajectories — the double-edged incentive, protocol in the
// loop.
//
// Runs several "market periods". In each period a lot is distributed and
// the proxy samples a few products for path queries; sampled products are
// bad with a small probability (the paper's "overwhelmingly good"
// regime). One mid-chain participant plays a deletion strategy, hiding a
// fraction of its traces every period. Period by period, the honest
// sibling participant accumulates reputation while the deleter stagnates —
// exactly Figure 3(a)'s trade-off realised through the actual protocol.
//
//   $ ./examples/reputation_simulation
#include <cstdio>

#include "common/rng.h"
#include "desword/scenario.h"

using namespace desword;
using namespace desword::protocol;

int main() {
  constexpr int kPeriods = 6;
  constexpr int kProductsPerLot = 6;
  constexpr double kBadProbability = 0.1;
  constexpr double kSampleRate = 0.7;

  // A diamond chain with two competing distributors: the honest one and
  // the deleter sit in parallel between the manufacturer and retailers.
  supplychain::SupplyChainGraph graph;
  graph.add_edge("factory", "honest-dist");
  graph.add_edge("factory", "shady-dist");
  graph.add_edge("honest-dist", "retail-1");
  graph.add_edge("shady-dist", "retail-2");

  ScenarioConfig config;
  config.edb = zkedb::EdbConfig{4, 8, 512, "p256", zkedb::SoftMode::kShared};
  Scenario scenario(graph, config);
  SimRng rng(20260707);

  std::printf("period | honest-dist | shady-dist | factory\n");
  std::printf("-------+-------------+------------+--------\n");

  for (int period = 0; period < kPeriods; ++period) {
    supplychain::DistributionConfig dist;
    dist.initial = "factory";
    dist.products = supplychain::make_products(
        9, static_cast<std::uint64_t>(period) * 100, kProductsPerLot);
    dist.seed = static_cast<std::uint64_t>(period) + 1;

    // The shady distributor deletes the traces of half the products it
    // expects to handle this period (it cannot know which will be
    // queried, or whether they will test good or bad — the double edge).
    const auto preview =
        supplychain::run_distribution(graph, dist);
    DistributionBehavior deletion;
    for (const auto& [product, path] : preview.paths) {
      if (path.size() > 1 && path[1] == "shady-dist" && rng.chance(0.5)) {
        deletion.delete_ids.insert(product);
      }
    }
    scenario.participant("shady-dist").set_distribution_behavior(deletion);

    const std::string task = "period-" + std::to_string(period);
    scenario.run_task(task, dist);

    // Market sampling: the proxy queries a subset of the lot.
    for (const auto& product : dist.products) {
      if (!rng.chance(kSampleRate)) continue;
      const ProductQuality quality = rng.chance(kBadProbability)
                                         ? ProductQuality::kBad
                                         : ProductQuality::kGood;
      (void)scenario.proxy().run_query(product, quality, task);
    }

    std::printf("%6d | %+11.1f | %+10.1f | %+6.1f\n", period,
                scenario.proxy().reputation("honest-dist"),
                scenario.proxy().reputation("shady-dist"),
                scenario.proxy().reputation("factory"));
  }

  const double honest = scenario.proxy().reputation("honest-dist");
  const double shady = scenario.proxy().reputation("shady-dist");
  std::printf("\nhonest distributor ends at %+0.1f, deleter at %+0.1f — "
              "hiding traces forfeits the good-product scores that make "
              "up a trustworthy reputation.\n",
              honest, shady);
  return honest > shady ? 0 : 1;
}
