// Parameters and common reference string for the ZK-EDB.
//
// The ZK-EDB is a q-ary tree of height h over the key space [0, q^h).
// Production deployments use q^h >= 2^128 with keys derived by hashing
// product identifiers (the paper sweeps (q,h) ∈ {(8,43),(16,32),(32,26),
// (64,22),(128,19)}). Unit tests shrink the key space.
//
// Leaves (depth h) are TMC commitments over a prime-order group; inner
// nodes (depths 0..h-1) are strong-RSA qTMC commitments. The CRS bundles
// both public keys.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/group.h"
#include "mercurial/qtmc.h"
#include "mercurial/tmc.h"

namespace desword::zkedb {

/// Keys are always 16-byte big-endian integers; configurations with
/// q^h < 2^128 simply require the value to be < q^h.
inline constexpr std::size_t kKeyBytes = 16;
using EdbKey = Bytes;

/// How absent children of committed (trie) nodes are backed.
enum class SoftMode : std::uint8_t {
  /// One shared soft commitment per trie node covers every absent child.
  /// Much cheaper to commit; reveals that sibling absences share a node
  /// (documented deviation, see DESIGN.md).
  kShared = 0,
  /// One soft commitment per absent child — the faithful CFM/CHLMR
  /// construction; commit cost grows by a factor of ~q.
  kPerChild = 1,
};

struct EdbConfig {
  std::uint32_t q = 16;
  std::uint32_t height = 32;
  int rsa_bits = 2048;
  std::string group_name = "p256";  // "p256" | "modp2048" | "modp512-test"
  SoftMode soft_mode = SoftMode::kShared;
};

/// Serializable public parameters (the "ps" of the paper's Table I).
struct EdbPublicParams {
  std::uint32_t q = 0;
  std::uint32_t height = 0;
  std::string group_name;
  SoftMode soft_mode = SoftMode::kShared;
  mercurial::TmcPublicKey tmc_pk;
  mercurial::QtmcPublicKey qtmc_pk;

  Bytes serialize() const;
  static EdbPublicParams deserialize(BytesView data);
};

/// Runtime CRS: public parameters plus instantiated schemes. Shared
/// (immutable) between provers and verifiers.
class EdbCrs {
 public:
  explicit EdbCrs(EdbPublicParams params);

  const EdbPublicParams& params() const { return params_; }
  const mercurial::TmcScheme& tmc() const { return *tmc_; }
  const mercurial::QtmcScheme& qtmc() const { return *qtmc_; }
  const Group& group() const { return *group_; }
  std::uint32_t q() const { return params_.q; }
  std::uint32_t height() const { return params_.height; }

  /// Base-q digits of `key`, most significant first (length = height).
  /// Throws ConfigError if the key is outside [0, q^height).
  std::vector<std::uint32_t> digits_of(const EdbKey& key) const;

  /// True iff `key` is a valid 16-byte key within the key space.
  bool key_in_range(const EdbKey& key) const;

  /// 128-bit digest binding an inner-node commitment into its parent.
  Bytes digest_inner(const mercurial::QtmcCommitment& com) const;
  /// 128-bit digest binding a leaf commitment into its parent.
  Bytes digest_leaf(const mercurial::TmcCommitment& com) const;

  /// SHA-256 of the serialized public parameters — the CRS identity that
  /// verification-cache keys bind (two CRSs share a digest iff they share
  /// every public parameter). Computed once at construction.
  const Bytes& digest() const { return digest_; }

 private:
  EdbPublicParams params_;
  Bytes digest_;
  GroupPtr group_;
  std::unique_ptr<mercurial::TmcScheme> tmc_;
  std::unique_ptr<mercurial::QtmcScheme> qtmc_;
};

using EdbCrsPtr = std::shared_ptr<const EdbCrs>;

/// Trusted setup (paper: CRS-Gen / PS-Gen). Generates fresh TMC and qTMC
/// keys for the given configuration; trapdoors are discarded.
EdbCrsPtr generate_crs(const EdbConfig& config);

/// Resolves a group backend by name.
GroupPtr group_by_name(const std::string& name);

/// Derives the canonical ZK-EDB key for an application-level identifier
/// (e.g. an RFID product id): hash truncated into the key space.
EdbKey key_for_identifier(const EdbCrs& crs, BytesView identifier);

}  // namespace desword::zkedb
