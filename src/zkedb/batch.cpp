#include "zkedb/batch.h"

#include <algorithm>
#include <atomic>
#include <set>

#include "common/error.h"
#include "common/serial.h"
#include "common/thread_pool.h"
#include "mercurial/batch_verify.h"
#include "zkedb/prover.h"

namespace desword::zkedb {

namespace {

ThreadPool* resolve_pool(unsigned threads) {
  const unsigned t = threads != 0 ? threads : ThreadPool::default_threads();
  return t > 1 ? &ThreadPool::with_threads(t) : nullptr;
}

}  // namespace

Bytes EdbBatchMembershipProof::serialize(const EdbCrs& crs) const {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryWriter w;
  w.varint(steps.size());
  for (const EdbBatchStep& s : steps) {
    w.bytes(s.prefix);
    w.bytes(s.opening.serialize(n));
    w.bytes(s.child_commitment);
  }
  w.varint(leaves.size());
  for (const EdbBatchLeaf& l : leaves) {
    w.bytes(l.key);
    w.bytes(l.opening.serialize(crs.group()));
    w.bytes(l.value);
  }
  return w.take();
}

EdbBatchMembershipProof EdbBatchMembershipProof::deserialize(
    const EdbCrs& crs, BytesView data) {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryReader r(data);
  EdbBatchMembershipProof proof;
  const std::uint64_t n_steps = r.varint();
  for (std::uint64_t i = 0; i < n_steps; ++i) {
    EdbBatchStep step;
    step.prefix = r.bytes();
    step.opening = mercurial::QtmcOpening::deserialize(n, r.bytes());
    step.child_commitment = r.bytes();
    if (step.prefix.size() >= crs.height()) {
      throw SerializationError("batch step prefix too deep");
    }
    proof.steps.push_back(std::move(step));
  }
  const std::uint64_t n_leaves = r.varint();
  for (std::uint64_t i = 0; i < n_leaves; ++i) {
    EdbBatchLeaf leaf;
    leaf.key = r.bytes();
    leaf.opening = mercurial::TmcOpening::deserialize(crs.group(), r.bytes());
    leaf.value = r.bytes();
    proof.leaves.push_back(std::move(leaf));
  }
  r.expect_done();
  return proof;
}

EdbBatchMembershipProof edb_prove_membership_batch(
    const EdbProver& prover, const std::vector<EdbKey>& keys,
    unsigned threads) {
  const EdbCrs& crs = prover.crs();

  std::vector<EdbKey> unique_keys;
  {
    std::set<EdbKey> seen_keys;
    for (const EdbKey& key : keys) {
      if (seen_keys.insert(key).second) unique_keys.push_back(key);
    }
  }

  // Opening generation (one qTMC hard_open per edge, one TMC open per
  // leaf) dominates; prove_membership is read-only, so keys fan out.
  std::vector<EdbMembershipProof> singles(unique_keys.size());
  parallel_for(resolve_pool(threads), unique_keys.size(),
               [&](std::size_t i) {
                 singles[i] = prover.prove_membership(unique_keys[i]);
               });

  EdbBatchMembershipProof batch;
  std::map<std::pair<Bytes, std::uint32_t>, std::size_t> seen_steps;
  for (std::size_t i = 0; i < unique_keys.size(); ++i) {
    const EdbKey& key = unique_keys[i];
    const std::vector<std::uint32_t> digits = crs.digits_of(key);
    EdbMembershipProof& single = singles[i];
    Bytes prefix;
    for (std::uint32_t d = 0; d < crs.height(); ++d) {
      const auto step_id = std::make_pair(prefix, digits[d]);
      if (seen_steps.find(step_id) == seen_steps.end()) {
        seen_steps.emplace(step_id, batch.steps.size());
        batch.steps.push_back(EdbBatchStep{
            prefix, std::move(single.openings[d]),
            std::move(single.child_commitments[d])});
      }
      prefix.push_back(static_cast<std::uint8_t>(digits[d]));
    }
    batch.leaves.push_back(EdbBatchLeaf{key, std::move(single.leaf_opening),
                                        std::move(single.value)});
  }
  return batch;
}

std::optional<std::map<EdbKey, Bytes>> edb_verify_membership_batch(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbKey>& keys, const EdbBatchMembershipProof& proof,
    const EdbVerifyOptions& opts) {
  try {
    const std::uint32_t h = crs.height();
    const Bignum& n = crs.params().qtmc_pk.n;

    // Index the deduplicated material.
    std::map<std::pair<Bytes, std::uint32_t>, const EdbBatchStep*> steps;
    for (const EdbBatchStep& s : proof.steps) {
      steps[{s.prefix, s.opening.pos}] = &s;
    }
    std::map<EdbKey, const EdbBatchLeaf*> leaves;
    for (const EdbBatchLeaf& l : proof.leaves) leaves[l.key] = &l;

    // Phase 1 (sequential, no modular arithmetic): walk every chain,
    // checking structure, and collect each unique (prefix, digit) edge
    // together with the commitment it must be verified against. Chains
    // sharing an edge share the identical reconstruction, so verifying it
    // once is sound — and the edges are independent, so they fan out.
    struct EdgeCheck {
      const EdbBatchStep* step;
      mercurial::QtmcCommitment parent;
      bool at_leaf_depth;
    };
    std::vector<EdgeCheck> edges;
    std::set<std::pair<Bytes, std::uint32_t>> edge_seen;
    struct LeafCheck {
      const EdbBatchLeaf* leaf;
      const EdbBatchStep* last_step;
    };
    std::vector<LeafCheck> leaf_checks;

    std::map<EdbKey, Bytes> values;
    for (const EdbKey& key : keys) {
      if (values.find(key) != values.end()) continue;  // duplicate request
      const std::vector<std::uint32_t> digits = crs.digits_of(key);
      mercurial::QtmcCommitment cur = root;
      Bytes prefix;
      const EdbBatchStep* last_step = nullptr;
      for (std::uint32_t d = 0; d < h; ++d) {
        const auto it = steps.find({prefix, digits[d]});
        if (it == steps.end()) return std::nullopt;
        const EdbBatchStep* step = it->second;
        if (step->opening.pos != digits[d]) return std::nullopt;
        if (edge_seen.insert({prefix, digits[d]}).second) {
          edges.push_back(EdgeCheck{step, cur, d + 1 == h});
        }
        if (d + 1 < h) {
          cur = mercurial::QtmcCommitment::deserialize(
              n, step->child_commitment);
        }
        last_step = step;
        prefix.push_back(static_cast<std::uint8_t>(digits[d]));
      }
      const auto leaf_it = leaves.find(key);
      if (leaf_it == leaves.end()) return std::nullopt;
      leaf_checks.push_back(LeafCheck{leaf_it->second, last_step});
      values.emplace(key, leaf_it->second->value);
    }

    // Phase 2 (parallel): the expensive opening verifications. Failures
    // only flip the flag, so order does not matter; remaining checks keep
    // running but the batch is rejected as a whole (all-or-nothing).
    std::atomic<bool> ok{true};
    ThreadPool* pool = resolve_pool(opts.threads);
    // Contiguous shards so the batched strategy can fold a whole shard
    // into one multi-exponentiation per worker.
    const unsigned t =
        opts.threads != 0 ? opts.threads : ThreadPool::default_threads();
    const auto run_sharded = [&](std::size_t count, auto&& shard_fn) {
      const std::size_t shards =
          pool == nullptr
              ? 1
              : std::max<std::size_t>(1, std::min<std::size_t>(t, count));
      parallel_for(pool, count == 0 ? 0 : shards, [&](std::size_t s) {
        const std::size_t begin = count * s / shards;
        const std::size_t end = count * (s + 1) / shards;
        if (begin != end) shard_fn(begin, end);
      });
    };

    // The opened message of an edge must be the digest of its revealed
    // child; throws on malformed child bytes.
    const auto edge_digest = [&](const EdgeCheck& e) {
      return e.at_leaf_depth
                 ? crs.digest_leaf(mercurial::TmcCommitment::deserialize(
                       crs.group(), e.step->child_commitment))
                 : crs.digest_inner(mercurial::QtmcCommitment::deserialize(
                       n, e.step->child_commitment));
    };

    if (opts.batched) {
      run_sharded(edges.size(), [&](std::size_t begin, std::size_t end) {
        if (!ok.load(std::memory_order_relaxed)) return;
        mercurial::BatchVerifier bv(crs.qtmc());
        bool shard_ok = true;
        for (std::size_t i = begin; i < end && shard_ok; ++i) {
          const EdgeCheck& e = edges[i];
          bv.begin_unit();
          try {
            if (!bv.add_open(e.parent, e.step->opening) ||
                edge_digest(e) != e.step->opening.message) {
              shard_ok = false;
            }
          } catch (const Error&) {
            shard_ok = false;
          }
        }
        // verify() has no no-throw guarantee (BN_* failures, internal
        // checks); a throw escaping a pool worker would not be converted
        // into a rejection, so treat it as shard failure like the scalar
        // verifiers' internal catch does.
        if (shard_ok) {
          try {
            shard_ok = bv.verify().all_ok;
          } catch (const Error&) {
            shard_ok = false;
          }
        }
        if (!shard_ok) ok.store(false, std::memory_order_relaxed);
      });
      if (!ok.load()) return std::nullopt;

      run_sharded(leaf_checks.size(), [&](std::size_t begin,
                                          std::size_t end) {
        if (!ok.load(std::memory_order_relaxed)) return;
        mercurial::BatchVerifier bv(crs.qtmc(), &crs.tmc());
        bool shard_ok = true;
        for (std::size_t i = begin; i < end && shard_ok; ++i) {
          const LeafCheck& c = leaf_checks[i];
          bv.begin_unit();
          try {
            const mercurial::TmcCommitment leaf_com =
                mercurial::TmcCommitment::deserialize(
                    crs.group(), c.last_step->child_commitment);
            if (!bv.add_leaf_open(leaf_com, c.leaf->opening) ||
                c.leaf->opening.message != leaf_value_digest(c.leaf->value)) {
              shard_ok = false;
            }
          } catch (const Error&) {
            shard_ok = false;
          }
        }
        if (shard_ok) {
          try {
            shard_ok = bv.verify().all_ok;
          } catch (const Error&) {
            shard_ok = false;
          }
        }
        if (!shard_ok) ok.store(false, std::memory_order_relaxed);
      });
      if (!ok.load()) return std::nullopt;

      return values;
    }

    parallel_for(pool, edges.size(), [&](std::size_t i) {
      if (!ok.load(std::memory_order_relaxed)) return;
      const EdgeCheck& e = edges[i];
      try {
        if (!crs.qtmc().verify_open(e.parent, e.step->opening)) {
          ok.store(false, std::memory_order_relaxed);
          return;
        }
        if (edge_digest(e) != e.step->opening.message) {
          ok.store(false, std::memory_order_relaxed);
        }
      } catch (const Error&) {
        ok.store(false, std::memory_order_relaxed);
      }
    });
    if (!ok.load()) return std::nullopt;

    parallel_for(pool, leaf_checks.size(), [&](std::size_t i) {
      if (!ok.load(std::memory_order_relaxed)) return;
      const LeafCheck& c = leaf_checks[i];
      try {
        const mercurial::TmcCommitment leaf_com =
            mercurial::TmcCommitment::deserialize(
                crs.group(), c.last_step->child_commitment);
        if (!crs.tmc().verify_open(leaf_com, c.leaf->opening) ||
            c.leaf->opening.message != leaf_value_digest(c.leaf->value)) {
          ok.store(false, std::memory_order_relaxed);
        }
      } catch (const Error&) {
        ok.store(false, std::memory_order_relaxed);
      }
    });
    if (!ok.load()) return std::nullopt;

    return values;
  } catch (const Error&) {
    return std::nullopt;
  }
}

std::optional<std::map<EdbKey, Bytes>> edb_verify_membership_batch(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbKey>& keys, const EdbBatchMembershipProof& proof,
    unsigned threads) {
  EdbVerifyOptions opts;
  opts.threads = threads;
  return edb_verify_membership_batch(crs, root, keys, proof, opts);
}

}  // namespace desword::zkedb
