#include "zkedb/batch.h"

#include <set>

#include "common/error.h"
#include "common/serial.h"
#include "zkedb/prover.h"

namespace desword::zkedb {

Bytes EdbBatchMembershipProof::serialize(const EdbCrs& crs) const {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryWriter w;
  w.varint(steps.size());
  for (const EdbBatchStep& s : steps) {
    w.bytes(s.prefix);
    w.bytes(s.opening.serialize(n));
    w.bytes(s.child_commitment);
  }
  w.varint(leaves.size());
  for (const EdbBatchLeaf& l : leaves) {
    w.bytes(l.key);
    w.bytes(l.opening.serialize(crs.group()));
    w.bytes(l.value);
  }
  return w.take();
}

EdbBatchMembershipProof EdbBatchMembershipProof::deserialize(
    const EdbCrs& crs, BytesView data) {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryReader r(data);
  EdbBatchMembershipProof proof;
  const std::uint64_t n_steps = r.varint();
  for (std::uint64_t i = 0; i < n_steps; ++i) {
    EdbBatchStep step;
    step.prefix = r.bytes();
    step.opening = mercurial::QtmcOpening::deserialize(n, r.bytes());
    step.child_commitment = r.bytes();
    if (step.prefix.size() >= crs.height()) {
      throw SerializationError("batch step prefix too deep");
    }
    proof.steps.push_back(std::move(step));
  }
  const std::uint64_t n_leaves = r.varint();
  for (std::uint64_t i = 0; i < n_leaves; ++i) {
    EdbBatchLeaf leaf;
    leaf.key = r.bytes();
    leaf.opening = mercurial::TmcOpening::deserialize(crs.group(), r.bytes());
    leaf.value = r.bytes();
    proof.leaves.push_back(std::move(leaf));
  }
  r.expect_done();
  return proof;
}

EdbBatchMembershipProof edb_prove_membership_batch(
    EdbProver& prover, const std::vector<EdbKey>& keys) {
  const EdbCrs& crs = prover.crs();
  EdbBatchMembershipProof batch;
  std::map<std::pair<Bytes, std::uint32_t>, std::size_t> seen_steps;
  std::set<EdbKey> seen_keys;

  for (const EdbKey& key : keys) {
    if (!seen_keys.insert(key).second) continue;  // duplicate request
    const std::vector<std::uint32_t> digits = crs.digits_of(key);
    EdbMembershipProof single = prover.prove_membership(key);
    Bytes prefix;
    for (std::uint32_t d = 0; d < crs.height(); ++d) {
      const auto step_id = std::make_pair(prefix, digits[d]);
      if (seen_steps.find(step_id) == seen_steps.end()) {
        seen_steps.emplace(step_id, batch.steps.size());
        batch.steps.push_back(EdbBatchStep{
            prefix, std::move(single.openings[d]),
            std::move(single.child_commitments[d])});
      }
      prefix.push_back(static_cast<std::uint8_t>(digits[d]));
    }
    batch.leaves.push_back(EdbBatchLeaf{key, std::move(single.leaf_opening),
                                        std::move(single.value)});
  }
  return batch;
}

std::optional<std::map<EdbKey, Bytes>> edb_verify_membership_batch(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbKey>& keys, const EdbBatchMembershipProof& proof) {
  try {
    const std::uint32_t h = crs.height();
    const Bignum& n = crs.params().qtmc_pk.n;

    // Index the deduplicated material.
    std::map<std::pair<Bytes, std::uint32_t>, const EdbBatchStep*> steps;
    for (const EdbBatchStep& s : proof.steps) {
      steps[{s.prefix, s.opening.pos}] = &s;
    }
    std::map<EdbKey, const EdbBatchLeaf*> leaves;
    for (const EdbBatchLeaf& l : proof.leaves) leaves[l.key] = &l;

    // Each unique (prefix, digit) edge is verified once; chains sharing it
    // share the identical commitment reconstruction, so caching is sound.
    std::set<std::pair<Bytes, std::uint32_t>> verified;

    std::map<EdbKey, Bytes> values;
    for (const EdbKey& key : keys) {
      if (values.find(key) != values.end()) continue;  // duplicate request
      const std::vector<std::uint32_t> digits = crs.digits_of(key);
      mercurial::QtmcCommitment cur = root;
      Bytes prefix;
      const EdbBatchStep* last_step = nullptr;
      for (std::uint32_t d = 0; d < h; ++d) {
        const auto it = steps.find({prefix, digits[d]});
        if (it == steps.end()) return std::nullopt;
        const EdbBatchStep* step = it->second;
        if (verified.find({prefix, digits[d]}) == verified.end()) {
          if (step->opening.pos != digits[d]) return std::nullopt;
          if (!crs.qtmc().verify_open(cur, step->opening)) {
            return std::nullopt;
          }
          // The opened message must be the digest of the revealed child.
          Bytes digest;
          if (d + 1 == h) {
            digest = crs.digest_leaf(mercurial::TmcCommitment::deserialize(
                crs.group(), step->child_commitment));
          } else {
            digest = crs.digest_inner(mercurial::QtmcCommitment::deserialize(
                n, step->child_commitment));
          }
          if (digest != step->opening.message) return std::nullopt;
          verified.insert({prefix, digits[d]});
        }
        if (d + 1 < h) {
          cur = mercurial::QtmcCommitment::deserialize(
              n, step->child_commitment);
        }
        last_step = step;
        prefix.push_back(static_cast<std::uint8_t>(digits[d]));
      }
      const auto leaf_it = leaves.find(key);
      if (leaf_it == leaves.end()) return std::nullopt;
      const EdbBatchLeaf* leaf = leaf_it->second;
      const mercurial::TmcCommitment leaf_com =
          mercurial::TmcCommitment::deserialize(crs.group(),
                                                last_step->child_commitment);
      if (!crs.tmc().verify_open(leaf_com, leaf->opening)) {
        return std::nullopt;
      }
      if (leaf->opening.message != leaf_value_digest(leaf->value)) {
        return std::nullopt;
      }
      values.emplace(key, leaf->value);
    }
    return values;
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace desword::zkedb
