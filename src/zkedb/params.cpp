#include "zkedb/params.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hash.h"

namespace desword::zkedb {

Bytes EdbPublicParams::serialize() const {
  BinaryWriter w;
  w.u32(q);
  w.u32(height);
  w.str(group_name);
  w.u8(static_cast<std::uint8_t>(soft_mode));
  w.bytes(tmc_pk.serialize());
  w.bytes(qtmc_pk.serialize());
  return w.take();
}

EdbPublicParams EdbPublicParams::deserialize(BytesView data) {
  BinaryReader r(data);
  EdbPublicParams p;
  p.q = r.u32();
  p.height = r.u32();
  p.group_name = r.str();
  const std::uint8_t mode = r.u8();
  if (mode > 1) throw SerializationError("bad soft mode");
  p.soft_mode = static_cast<SoftMode>(mode);
  const Bytes tmc_ser = r.bytes();
  const Bytes qtmc_ser = r.bytes();
  r.expect_done();
  const GroupPtr group = group_by_name(p.group_name);
  p.tmc_pk = mercurial::TmcPublicKey::deserialize(*group, tmc_ser);
  p.qtmc_pk = mercurial::QtmcPublicKey::deserialize(qtmc_ser);
  return p;
}

GroupPtr group_by_name(const std::string& name) {
  if (name == "p256") return make_p256_group();
  if (name == "modp2048") return make_modp_group(ModpGroupId::kRfc3526_2048);
  if (name == "modp512-test") return make_modp_group(ModpGroupId::kTest512);
  throw ConfigError("unknown group backend: " + name);
}

EdbCrs::EdbCrs(EdbPublicParams params) : params_(std::move(params)) {
  if (params_.q < 2 || params_.q > 256) {
    throw ConfigError("ZK-EDB branching factor must be in [2, 256]");
  }
  if (params_.height < 1 || params_.height > 256) {
    throw ConfigError("ZK-EDB height must be in [1, 256]");
  }
  if (params_.qtmc_pk.q != params_.q) {
    throw ConfigError("qTMC arity does not match branching factor");
  }
  group_ = group_by_name(params_.group_name);
  tmc_ = std::make_unique<mercurial::TmcScheme>(group_, params_.tmc_pk);
  qtmc_ = std::make_unique<mercurial::QtmcScheme>(params_.qtmc_pk);
  digest_ = sha256(params_.serialize());
}

std::vector<std::uint32_t> EdbCrs::digits_of(const EdbKey& key) const {
  if (key.size() != kKeyBytes) {
    throw ConfigError("ZK-EDB key must be 16 bytes");
  }
  // Repeated long division by q, collecting remainders (least significant
  // digit first). Works for any q in [2, 256].
  Bytes value = key;
  std::vector<std::uint32_t> digits(params_.height);
  for (std::uint32_t d = 0; d < params_.height; ++d) {
    std::uint64_t rem = 0;
    for (auto& byte : value) {
      const std::uint64_t cur = (rem << 8) | byte;
      byte = static_cast<std::uint8_t>(cur / params_.q);
      rem = cur % params_.q;
    }
    digits[params_.height - 1 - d] = static_cast<std::uint32_t>(rem);
  }
  for (std::uint8_t byte : value) {
    if (byte != 0) throw ConfigError("ZK-EDB key exceeds q^height");
  }
  return digits;
}

bool EdbCrs::key_in_range(const EdbKey& key) const {
  if (key.size() != kKeyBytes) return false;
  try {
    (void)digits_of(key);
    return true;
  } catch (const ConfigError&) {
    return false;
  }
}

Bytes EdbCrs::digest_inner(const mercurial::QtmcCommitment& com) const {
  return hash_to_128("zkedb/inner-node", {com.serialize(params_.qtmc_pk.n)});
}

Bytes EdbCrs::digest_leaf(const mercurial::TmcCommitment& com) const {
  return hash_to_128("zkedb/leaf-node", {com.serialize()});
}

EdbCrsPtr generate_crs(const EdbConfig& config) {
  const GroupPtr group = group_by_name(config.group_name);
  mercurial::TmcKeyPair tmc_keys = mercurial::TmcScheme::keygen(group);
  mercurial::QtmcKeyPair qtmc_keys =
      mercurial::QtmcScheme::keygen(config.q, config.rsa_bits);
  EdbPublicParams params;
  params.q = config.q;
  params.height = config.height;
  params.group_name = config.group_name;
  params.soft_mode = config.soft_mode;
  params.tmc_pk = std::move(tmc_keys.pk);
  params.qtmc_pk = std::move(qtmc_keys.pk);
  // Trapdoors go out of scope here: the CRS generator (the proxy) never
  // needs them at runtime.
  return std::make_shared<EdbCrs>(std::move(params));
}

EdbKey key_for_identifier(const EdbCrs& crs, BytesView identifier) {
  const Bytes digest = hash_to_128("zkedb/key", {identifier});
  // Reduce into [0, q^height) for small test key spaces; a no-op whenever
  // q^height >= 2^128 (all production configurations).
  Bignum space(1);
  const Bignum q(crs.q());
  for (std::uint32_t i = 0; i < crs.height(); ++i) space *= q;
  const Bignum reduced = Bignum::from_bytes(digest).mod(space);
  return reduced.to_bytes_padded(kKeyBytes);
}

}  // namespace desword::zkedb
