// Epoch-versioned verification cache (ISSUE 10 tentpole).
//
// Repeated audit traffic re-walks the same proof chains: recall campaigns
// and counterfeit audits query far more often than participants re-commit,
// so the exact same (commitment, key, proof bytes) triple is verified over
// and over. This cache memoizes the *verdict* of an accepted verification
// so a hop whose exact proof bytes were already admitted under the same
// commitment skips the multi-exponentiation entirely.
//
// Safety rests on two pillars:
//
//   * Keys bind the FULL proof bytes (plus CRS digest, commitment and
//     key/position) through a domain-separated SHA-256 — see proof_key()
//     / hop_key(). A tampered proof, however close to a cached one, hashes
//     to a different key and can never alias a cached acceptance. The
//     `cache-key` lint rule (tools/desword_lint.py) rejects key
//     constructions that omit the proof bytes.
//   * Entries are tagged with an epoch (the proxy's per-task POC-list
//     generation). A lookup under a different epoch misses AND erases the
//     stale entry, so acceptances from before a list replacement are
//     structurally unreachable.
//
// Only *accepted* verdicts are stored. Negative caching would be sound —
// the key binds the exact rejected bytes — but every adversarial garbage
// proof would then occupy a distinct entry, letting a flooder evict the
// legitimate working set at zero crypto cost. Rejections stay expensive
// for the attacker and free for the cache. (DESIGN.md §12.)
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"

namespace desword::zkedb {

/// Uniform result of a proof verification: `ok` is the verdict; `value`
/// carries the proven value for memberships (absent for non-memberships).
/// Replaces the historical std::optional<Bytes> / bare bool split so cache
/// entries and callers handle both proof flavours identically.
struct VerifyOutcome {
  bool ok = false;
  std::optional<Bytes> value;

  /// True iff the proof was accepted AND proves a value (membership).
  bool has_value() const { return ok && value.has_value(); }
  const Bytes& operator*() const { return *value; }
  const Bytes* operator->() const { return &*value; }
  explicit operator bool() const { return ok; }

  bool operator==(const VerifyOutcome&) const = default;

  static VerifyOutcome accept() { return VerifyOutcome{true, std::nullopt}; }
  static VerifyOutcome accept_value(Bytes v) {
    return VerifyOutcome{true, std::move(v)};
  }
  static VerifyOutcome reject() { return VerifyOutcome{}; }
};

/// Sharded, capacity-bounded LRU of accepted verification verdicts.
///
/// Thread safe: each shard owns an annotated Mutex; a lookup or store
/// touches exactly one shard. Keys are 32-byte tagged digests (uniform),
/// so the first key byte picks the shard without skew. Instrumented with
/// zkedb.cache.{hit,miss,evict,stale}.
class VerifyCache {
 public:
  struct Config {
    std::size_t capacity = 4096;  // total entries across all shards
    std::size_t shards = 8;
  };

  // Two overloads instead of `Config config = {}`: a brace default for a
  // nested aggregate with member initializers is ill-formed until the
  // enclosing class is complete.
  VerifyCache() : VerifyCache(Config{}) {}
  explicit VerifyCache(Config config);

  VerifyCache(const VerifyCache&) = delete;
  VerifyCache& operator=(const VerifyCache&) = delete;

  /// Returns the cached outcome iff `key` is present under exactly
  /// `epoch`. A present entry under a different epoch is erased (counted
  /// as zkedb.cache.stale) and reported as a miss.
  std::optional<VerifyOutcome> lookup(const Bytes& key, std::uint64_t epoch);

  /// Records an accepted outcome under (key, epoch). Rejections are
  /// dropped (see file header on negative caching). Storing an existing
  /// key refreshes its LRU position and overwrites its epoch.
  void store(const Bytes& key, const VerifyOutcome& outcome,
             std::uint64_t epoch);

  /// Entries currently resident (sums shards; approximate under races).
  std::size_t size() const;

  /// Key for a ZK-EDB proof-level verdict. Binds the CRS (its params
  /// digest), the root commitment, the key position, the FULL serialized
  /// proof bytes and the proof flavour (`kind` = "membership" /
  /// "non_membership").
  static Bytes proof_key(const Bytes& crs_digest, BytesView commitment,
                         BytesView key, BytesView proof_bytes,
                         std::string_view kind);

  /// Key for a proxy-level hop verdict. Binds the task, the responding
  /// participant, the queried product id, the hop's POC commitment bytes,
  /// the FULL proof bytes as received and the check flavour (`kind` =
  /// "ownership" / "non_ownership").
  static Bytes hop_key(std::string_view task_id, std::string_view participant,
                       BytesView product_id, BytesView commitment,
                       BytesView proof_bytes, std::string_view kind);

 private:
  struct Entry {
    VerifyOutcome outcome;
    std::uint64_t epoch = 0;
    std::list<Bytes>::iterator pos;  // position in the shard's LRU list
  };

  struct Shard {
    mutable Mutex mu;
    std::map<Bytes, Entry> entries DESWORD_GUARDED_BY(mu);
    /// Most-recently-used first; back() is the eviction victim.
    std::list<Bytes> lru DESWORD_GUARDED_BY(mu);
  };

  Shard& shard_of(const Bytes& key);
  const Shard& shard_of(const Bytes& key) const;

  std::size_t per_shard_cap_;
  std::vector<Shard> shards_;
};

using VerifyCachePtr = std::shared_ptr<VerifyCache>;

}  // namespace desword::zkedb
