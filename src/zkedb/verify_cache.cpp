#include "zkedb/verify_cache.h"

#include <algorithm>

#include "crypto/hash.h"
#include "obs/metrics.h"

namespace desword::zkedb {

namespace {

obs::Counter& cache_hits() {
  static obs::Counter& c = obs::metric("zkedb.cache.hit");
  return c;
}

obs::Counter& cache_misses() {
  static obs::Counter& c = obs::metric("zkedb.cache.miss");
  return c;
}

obs::Counter& cache_evictions() {
  static obs::Counter& c = obs::metric("zkedb.cache.evict");
  return c;
}

obs::Counter& cache_stale() {
  static obs::Counter& c = obs::metric("zkedb.cache.stale");
  return c;
}

}  // namespace

VerifyCache::VerifyCache(Config config)
    : per_shard_cap_(std::max<std::size_t>(
          1, config.capacity / std::max<std::size_t>(1, config.shards))),
      shards_(std::max<std::size_t>(1, config.shards)) {}

VerifyCache::Shard& VerifyCache::shard_of(const Bytes& key) {
  const std::size_t b = key.empty() ? 0 : key[0];
  return shards_[b % shards_.size()];
}

const VerifyCache::Shard& VerifyCache::shard_of(const Bytes& key) const {
  const std::size_t b = key.empty() ? 0 : key[0];
  return shards_[b % shards_.size()];
}

std::optional<VerifyOutcome> VerifyCache::lookup(const Bytes& key,
                                                 std::uint64_t epoch) {
  Shard& sh = shard_of(key);
  MutexLock lock(sh.mu);
  const auto it = sh.entries.find(key);
  if (it == sh.entries.end()) {
    cache_misses().add();
    return std::nullopt;
  }
  if (it->second.epoch != epoch) {
    // A fresh POC list superseded the entry's world: the verdict may still
    // be cryptographically true, but the proxy must re-derive it against
    // the new list's commitments. Drop it so it can never resurface.
    sh.lru.erase(it->second.pos);
    sh.entries.erase(it);
    cache_stale().add();
    cache_misses().add();
    return std::nullopt;
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second.pos);
  cache_hits().add();
  return it->second.outcome;
}

void VerifyCache::store(const Bytes& key, const VerifyOutcome& outcome,
                        std::uint64_t epoch) {
  if (!outcome.ok) return;  // never cache rejections (see header)
  Shard& sh = shard_of(key);
  MutexLock lock(sh.mu);
  const auto it = sh.entries.find(key);
  if (it != sh.entries.end()) {
    it->second.outcome = outcome;
    it->second.epoch = epoch;
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second.pos);
    return;
  }
  sh.lru.push_front(key);
  sh.entries.emplace(key, Entry{outcome, epoch, sh.lru.begin()});
  while (sh.entries.size() > per_shard_cap_) {
    sh.entries.erase(sh.lru.back());
    sh.lru.pop_back();
    cache_evictions().add();
  }
}

std::size_t VerifyCache::size() const {
  std::size_t total = 0;
  for (const Shard& sh : shards_) {
    MutexLock lock(sh.mu);
    total += sh.entries.size();
  }
  return total;
}

Bytes VerifyCache::proof_key(const Bytes& crs_digest, BytesView commitment,
                             BytesView key, BytesView proof_bytes,
                             std::string_view kind) {
  TaggedHasher h("zkedb/cache/proof");
  h.add(crs_digest);
  h.add(commitment);
  h.add(key);
  h.add(proof_bytes);
  h.add_str(kind);
  return h.digest();
}

Bytes VerifyCache::hop_key(std::string_view task_id,
                           std::string_view participant, BytesView product_id,
                           BytesView commitment, BytesView proof_bytes,
                           std::string_view kind) {
  TaggedHasher h("zkedb/cache/hop");
  h.add_str(task_id);
  h.add_str(participant);
  h.add(product_id);
  h.add(commitment);
  h.add(proof_bytes);
  h.add_str(kind);
  return h.digest();
}

}  // namespace desword::zkedb
