// ZK-EDB prover: commits a database and answers membership /
// non-membership queries.
//
// Committing builds the trie of committed keys bottom-up: leaves are TMC
// hard commitments to H(value); every inner trie node is a qTMC hard
// commitment over its q child digests, where absent children point at soft
// commitments (shared or per-child, see SoftMode). Non-membership proofs
// fabricate soft nodes lazily below the committed trie; fabrications are
// memoized so repeated queries present a consistent view.
//
// The prover object *is* the (Com, Dec) pair of the paper's EDB-commit:
// `commitment()` is Com, the internal state is Dec.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/mutex.h"
#include "crypto/randsource.h"
#include "zkedb/proof.h"

namespace desword {
class ThreadPool;
}

namespace desword::zkedb {

/// Knobs for EDB-commit (and later updates) on an EdbProver.
struct EdbProverOptions {
  /// Worker threads for the bottom-up trie build: 0 = default
  /// (DESWORD_THREADS env var, else hardware_concurrency()), 1 = fully
  /// sequential. Commitments are identical at any thread count when `seed`
  /// is set; without a seed the CSPRNG makes every build unique anyway.
  unsigned threads = 0;
  /// Deterministic commitment randomness. When set, every node draws its
  /// randomizers from a DRBG keyed by H(seed, role, node position), so the
  /// commitment (and all proofs) are byte-identical across runs and thread
  /// counts. Leave unset for production use (CSPRNG).
  std::optional<Bytes> seed;
};

class EdbProver {
 public:
  /// EDB-commit: builds the tree over `entries` (key -> value). Keys must
  /// be unique, 16 bytes, within [0, q^height).
  EdbProver(EdbCrsPtr crs, const std::map<Bytes, Bytes>& entries,
            const EdbProverOptions& options = {});

  // Movable (the internal mutex is not moved; moving a prover that other
  // threads are using is undefined anyway).
  EdbProver(EdbProver&& other) noexcept;
  EdbProver& operator=(EdbProver&& other) noexcept;

  /// Com: the root qTMC commitment.
  const mercurial::QtmcCommitment& commitment() const { return root_com_; }
  /// Com in wire form.
  Bytes commitment_bytes() const;

  const EdbCrs& crs() const { return *crs_; }
  std::size_t size() const { return values_.size(); }
  bool contains(const EdbKey& key) const;
  /// The committed value for `key`, if any.
  std::optional<Bytes> value_of(const EdbKey& key) const;

  /// EDB-proof for x ∈ [D]. Throws ProtocolError if the key is absent.
  /// Read-only: safe to call concurrently from many threads.
  EdbMembershipProof prove_membership(const EdbKey& key) const;

  /// EDB-proof for x ∉ [D]. Throws ProtocolError if the key is present.
  /// Mutates internal memoization state (fabricated soft subtrees).
  EdbNonMembershipProof prove_non_membership(const EdbKey& key);

  /// Inserts a new entry, recommitting the affected root-to-leaf path
  /// (extension: dynamic databases). The root commitment CHANGES; the
  /// owner must re-publish its POC. Throws ProtocolError if the key is
  /// already present or out of range.
  void insert(const EdbKey& key, const Bytes& value);

  /// Removes an entry, recommitting the affected path (and pruning
  /// now-empty branches). The root commitment changes. Throws
  /// ProtocolError if the key is absent.
  void erase(const EdbKey& key);

  /// Serializes the full prover state (Dec): commitments, decommitments,
  /// soft backing nodes and memoized fabrications. Participants persist
  /// this across sessions — rebuilding from the entries alone would
  /// resample randomness and change the commitment.
  Bytes serialize_state() const;

  /// Restores a prover from `serialize_state` output. The resulting
  /// prover produces proofs valid under the original commitment.
  static EdbProver load(EdbCrsPtr crs, BytesView state);

 private:
  struct InnerNode {
    mercurial::QtmcCommitment com;
    mercurial::QtmcHardDecommit dec;
  };
  struct LeafNode {
    mercurial::TmcCommitment com;
    mercurial::TmcHardDecommit dec;
  };
  struct SoftInner {
    mercurial::QtmcCommitment com;
    mercurial::QtmcSoftDecommit dec;
    // digit -> (memoized tease, child soft-node id)
    std::map<std::uint32_t, std::pair<mercurial::QtmcTease, std::size_t>>
        teases;
  };
  struct SoftLeaf {
    mercurial::TmcCommitment com;
    mercurial::TmcSoftDecommit dec;
  };
  using SoftNode = std::variant<SoftInner, SoftLeaf>;

  /// Uninitialized shell used by `load`.
  explicit EdbProver(EdbCrsPtr crs) : crs_(std::move(crs)) {}

  using BuildEntry = std::pair<std::vector<std::uint32_t>, Bytes>;

  // Builds the subtree for entries[lo, hi) under `prefix`; returns the
  // digest of the subtree root. Child runs fan out over `pool` (nullptr =
  // sequential); map mutations are serialized on state_mu_, crypto runs
  // outside the lock.
  Bytes build(const std::vector<BuildEntry>& entries,
              const std::string& prefix, std::size_t lo, std::size_t hi,
              ThreadPool* pool);

  /// Creates the chain of nodes for `digits` from depth `from_depth` down
  /// to the leaf (all with exactly one trie child); returns the digest of
  /// the node at `from_depth`.
  Bytes grow_branch(const std::vector<std::uint32_t>& digits,
                    std::uint32_t from_depth, const Bytes& value);

  /// Digest of the soft node backing absent children of the trie node at
  /// `prefix` (child depth = prefix depth + 1), creating it if needed.
  /// Thread safe during parallel builds.
  Bytes backing_digest(const std::string& prefix, std::uint32_t digit);

  /// Re-hard-commits the node at `prefix` with one child digest replaced,
  /// then propagates digest changes up to the root.
  void recommit_path(const std::vector<std::uint32_t>& digits,
                     std::uint32_t depth, const Bytes& child_digest);

  // Creates a soft node whose *node depth* is `depth` (leaf iff == height),
  // drawing its randomness from `rng`; returns (id, digest). Crypto runs
  // outside state_mu_; only the push_back is serialized.
  std::pair<std::size_t, Bytes> make_soft_node(std::uint32_t depth,
                                               RandomSource& rng);

  // Digest of a soft node by id.
  Bytes soft_digest(std::size_t id) const;

  /// DRBG seed for the node identified by (role, id): role 'i' = inner
  /// node keyed by prefix, 'l' = leaf keyed by prefix, 's' = soft backing
  /// keyed by backing key, 'f' = fabricated soft node keyed by a counter.
  /// Only meaningful when opts_.seed is set; epoch_ folds updates in so
  /// recommits of the same prefix get fresh randomness.
  Bytes node_seed(char role, std::string_view id) const;

  /// Commits `messages` at the inner node `prefix` with the right
  /// randomness source (seeded DRBG or CSPRNG) and records it. Returns the
  /// node digest. Thread safe.
  Bytes commit_inner(const std::string& prefix, std::vector<Bytes> messages);

  static std::string child_prefix(const std::string& prefix,
                                  std::uint32_t digit);

  EdbCrsPtr crs_;
  EdbProverOptions opts_;
  // Bumped on every insert/erase so recommitted nodes draw fresh
  // deterministic randomness (seeded mode only).
  std::uint64_t epoch_ = 0;
  // Names fabricated soft nodes in seeded mode (role 'f').
  std::uint64_t fabrication_counter_ = 0;
  // Serializes map/deque mutations during the parallel build. Never held
  // while doing modular exponentiations. The containers below deliberately
  // carry no DESWORD_GUARDED_BY: they are phase-disciplined, not
  // lock-disciplined — shared (and locked) only while build() fans out
  // over the pool, then read lock-free on the serial prove/update paths.
  // That phase split is outside the capability model; the parallel phase
  // is covered dynamically by parallel_edb_test under TSan.
  mutable Mutex state_mu_;
  // Trie nodes addressed by digit-prefix strings (one byte per digit).
  std::map<std::string, InnerNode> inner_;
  std::map<std::string, LeafNode> leaves_;
  // Soft backing of absent children: trie prefix (shared mode) or trie
  // prefix + digit (per-child mode) -> soft node id.
  std::map<std::string, std::size_t> soft_backing_;
  // Deque: stable references across push_back, so fabricating a child soft
  // node cannot invalidate the parent reference mid-update (and parallel
  // builders can hold digests while others append).
  std::deque<SoftNode> soft_nodes_;
  std::map<Bytes, Bytes> values_;
  mercurial::QtmcCommitment root_com_;
};

}  // namespace desword::zkedb
