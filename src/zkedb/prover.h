// ZK-EDB prover: commits a database and answers membership /
// non-membership queries.
//
// Committing builds the trie of committed keys bottom-up: leaves are TMC
// hard commitments to H(value); every inner trie node is a qTMC hard
// commitment over its q child digests, where absent children point at soft
// commitments (shared or per-child, see SoftMode). Non-membership proofs
// fabricate soft nodes lazily below the committed trie; fabrications are
// memoized so repeated queries present a consistent view.
//
// The prover object *is* the (Com, Dec) pair of the paper's EDB-commit:
// `commitment()` is Com, the internal state is Dec.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "zkedb/proof.h"

namespace desword::zkedb {

class EdbProver {
 public:
  /// EDB-commit: builds the tree over `entries` (key -> value). Keys must
  /// be unique, 16 bytes, within [0, q^height).
  EdbProver(EdbCrsPtr crs, const std::map<Bytes, Bytes>& entries);

  /// Com: the root qTMC commitment.
  const mercurial::QtmcCommitment& commitment() const { return root_com_; }
  /// Com in wire form.
  Bytes commitment_bytes() const;

  const EdbCrs& crs() const { return *crs_; }
  std::size_t size() const { return values_.size(); }
  bool contains(const EdbKey& key) const;
  /// The committed value for `key`, if any.
  std::optional<Bytes> value_of(const EdbKey& key) const;

  /// EDB-proof for x ∈ [D]. Throws ProtocolError if the key is absent.
  EdbMembershipProof prove_membership(const EdbKey& key);

  /// EDB-proof for x ∉ [D]. Throws ProtocolError if the key is present.
  /// Mutates internal memoization state (fabricated soft subtrees).
  EdbNonMembershipProof prove_non_membership(const EdbKey& key);

  /// Inserts a new entry, recommitting the affected root-to-leaf path
  /// (extension: dynamic databases). The root commitment CHANGES; the
  /// owner must re-publish its POC. Throws ProtocolError if the key is
  /// already present or out of range.
  void insert(const EdbKey& key, const Bytes& value);

  /// Removes an entry, recommitting the affected path (and pruning
  /// now-empty branches). The root commitment changes. Throws
  /// ProtocolError if the key is absent.
  void erase(const EdbKey& key);

  /// Serializes the full prover state (Dec): commitments, decommitments,
  /// soft backing nodes and memoized fabrications. Participants persist
  /// this across sessions — rebuilding from the entries alone would
  /// resample randomness and change the commitment.
  Bytes serialize_state() const;

  /// Restores a prover from `serialize_state` output. The resulting
  /// prover produces proofs valid under the original commitment.
  static EdbProver load(EdbCrsPtr crs, BytesView state);

 private:
  struct InnerNode {
    mercurial::QtmcCommitment com;
    mercurial::QtmcHardDecommit dec;
  };
  struct LeafNode {
    mercurial::TmcCommitment com;
    mercurial::TmcHardDecommit dec;
  };
  struct SoftInner {
    mercurial::QtmcCommitment com;
    mercurial::QtmcSoftDecommit dec;
    // digit -> (memoized tease, child soft-node id)
    std::map<std::uint32_t, std::pair<mercurial::QtmcTease, std::size_t>>
        teases;
  };
  struct SoftLeaf {
    mercurial::TmcCommitment com;
    mercurial::TmcSoftDecommit dec;
  };
  using SoftNode = std::variant<SoftInner, SoftLeaf>;

  /// Uninitialized shell used by `load`.
  explicit EdbProver(EdbCrsPtr crs) : crs_(std::move(crs)) {}

  using BuildEntry = std::pair<std::vector<std::uint32_t>, Bytes>;

  // Builds the subtree for entries[lo, hi) under `prefix`; returns the
  // digest of the subtree root.
  Bytes build(const std::vector<BuildEntry>& entries,
              const std::string& prefix, std::size_t lo, std::size_t hi);

  /// Creates the chain of nodes for `digits` from depth `from_depth` down
  /// to the leaf (all with exactly one trie child); returns the digest of
  /// the node at `from_depth`.
  Bytes grow_branch(const std::vector<std::uint32_t>& digits,
                    std::uint32_t from_depth, const Bytes& value);

  /// Digest of the soft node backing absent children of the trie node at
  /// `prefix` (child depth = prefix depth + 1), creating it if needed.
  Bytes backing_digest(const std::string& prefix, std::uint32_t digit);

  /// Re-hard-commits the node at `prefix` with one child digest replaced,
  /// then propagates digest changes up to the root.
  void recommit_path(const std::vector<std::uint32_t>& digits,
                     std::uint32_t depth, const Bytes& child_digest);

  // Creates a soft node whose *node depth* is `depth` (leaf iff == height);
  // returns (id, digest).
  std::pair<std::size_t, Bytes> make_soft_node(std::uint32_t depth);

  // Digest of a soft node by id.
  Bytes soft_digest(std::size_t id) const;

  static std::string child_prefix(const std::string& prefix,
                                  std::uint32_t digit);

  EdbCrsPtr crs_;
  // Trie nodes addressed by digit-prefix strings (one byte per digit).
  std::map<std::string, InnerNode> inner_;
  std::map<std::string, LeafNode> leaves_;
  // Soft backing of absent children: trie prefix (shared mode) or trie
  // prefix + digit (per-child mode) -> soft node id.
  std::map<std::string, std::size_t> soft_backing_;
  std::vector<SoftNode> soft_nodes_;
  std::map<Bytes, Bytes> values_;
  mercurial::QtmcCommitment root_com_;
};

}  // namespace desword::zkedb
