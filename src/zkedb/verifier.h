// ZK-EDB verification (the paper's EDB-Verify).
//
// Verification walks the proof chain from the root commitment, checking at
// every depth that (a) the opening/tease is valid for the current node's
// commitment, (b) it is at the key's digit position, and (c) its message
// equals the digest of the next node's commitment. Verification cost is
// O(height) and independent of q — the property Figure 5 measures.
#pragma once

#include <optional>
#include <vector>

#include "zkedb/proof.h"

namespace desword::zkedb {

/// Verifies a membership proof against `root`. Returns the proven value
/// D(key) on success, std::nullopt if the proof is invalid. Never throws
/// on malformed proof content.
std::optional<Bytes> edb_verify_membership(const EdbCrs& crs,
                                           const mercurial::QtmcCommitment& root,
                                           const EdbKey& key,
                                           const EdbMembershipProof& proof);

/// Verifies a non-membership proof against `root`. Returns true iff the
/// proof is valid (i.e. the prover demonstrated D(key) = ⊥).
bool edb_verify_non_membership(const EdbCrs& crs,
                               const mercurial::QtmcCommitment& root,
                               const EdbKey& key,
                               const EdbNonMembershipProof& proof);

/// One key/proof pair of a verification sweep.
struct EdbMembershipQuery {
  EdbKey key;
  const EdbMembershipProof* proof;
};

/// Verifies many independent membership proofs, fanning the per-proof work
/// out over `threads` workers (0 = default: DESWORD_THREADS env, else
/// hardware_concurrency()). result[i] corresponds to queries[i] and equals
/// what edb_verify_membership would return for it.
std::vector<std::optional<Bytes>> edb_verify_membership_many(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbMembershipQuery>& queries, unsigned threads = 0);

}  // namespace desword::zkedb
