// ZK-EDB verification (the paper's EDB-Verify).
//
// Verification walks the proof chain from the root commitment, checking at
// every depth that (a) the opening/tease is valid for the current node's
// commitment, (b) it is at the key's digit position, and (c) its message
// equals the digest of the next node's commitment. Verification cost is
// O(height) and independent of q — the property Figure 5 measures.
//
// Two execution strategies produce the same accept/reject decisions:
//   * scalar — each opening is verified on its own (3–4 exponentiations);
//   * batched (default) — the chain's verification equations are folded
//     into one multi-exponentiation by a mercurial::BatchVerifier, with
//     scalar re-checks behind the bisection on failure (see
//     mercurial/batch_verify.h for the soundness argument).
//
// Both flavours return a `VerifyOutcome` (verify_cache.h): `ok` is the
// verdict; memberships additionally carry the proven value D(key).
#pragma once

#include <vector>

#include "zkedb/proof.h"
#include "zkedb/verify_cache.h"

namespace desword::zkedb {

/// Controls HOW verification executes, never WHAT it decides: the batched
/// and scalar strategies accept/reject identically (batched falls back to
/// exact scalar re-checks when a fold fails), and a cache hit replays a
/// verdict the same bytes already earned.
struct EdbVerifyOptions {
  bool batched = true;   // fold proof-chain equations into one multi-exp
  unsigned threads = 0;  // *_many fan-out; 0 = DESWORD_THREADS / hw default
  /// Optional verdict cache. When set, each verification first looks up
  /// digest(CRS ‖ commitment ‖ key ‖ full proof bytes) and skips the
  /// multi-exp on a hit; accepted verdicts are stored back. Null = off.
  VerifyCachePtr cache;
};

/// Verifies a membership proof against `root`. On success the outcome is
/// accepted and carries the proven value D(key). Never throws on
/// malformed proof content.
VerifyOutcome edb_verify_membership(const EdbCrs& crs,
                                    const mercurial::QtmcCommitment& root,
                                    const EdbKey& key,
                                    const EdbMembershipProof& proof,
                                    const EdbVerifyOptions& opts = {});

/// Verifies a non-membership proof against `root`. Accepted iff the
/// prover demonstrated D(key) = ⊥ (the outcome never carries a value).
VerifyOutcome edb_verify_non_membership(const EdbCrs& crs,
                                        const mercurial::QtmcCommitment& root,
                                        const EdbKey& key,
                                        const EdbNonMembershipProof& proof,
                                        const EdbVerifyOptions& opts = {});

/// One key/proof pair of a verification sweep.
struct EdbMembershipQuery {
  EdbKey key;
  const EdbMembershipProof* proof;
};

/// Verifies many independent membership proofs, fanning the per-proof work
/// out over `opts.threads` workers (0 = default: DESWORD_THREADS env, else
/// hardware_concurrency()). result[i] corresponds to queries[i] and equals
/// what edb_verify_membership would return for it. With `opts.batched`,
/// each worker folds its whole shard of proofs into one batch — the main
/// throughput lever of this module (see bench_zkedb VerifyManyBatched).
/// With `opts.cache`, hits are satisfied before sharding and only misses
/// enter the fold.
std::vector<VerifyOutcome> edb_verify_membership_many(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbMembershipQuery>& queries,
    const EdbVerifyOptions& opts = {});

}  // namespace desword::zkedb
