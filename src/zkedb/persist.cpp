// EdbProver state (de)serialization — the durable form of the paper's
// DPOC. Format versioned with a magic header so stored credentials fail
// loudly rather than misparse after upgrades.
#include "common/error.h"
#include "common/serial.h"
#include "zkedb/prover.h"

namespace desword::zkedb {

namespace {

constexpr std::uint32_t kStateMagic = 0x44504f43;  // "DPOC"
constexpr std::uint8_t kStateVersion = 1;

void write_scalar(BinaryWriter& w, const Bignum& v) { w.bytes(v.to_bytes()); }

Bignum read_scalar(BinaryReader& r) { return Bignum::from_bytes(r.bytes()); }

}  // namespace

Bytes EdbProver::serialize_state() const {
  const Bignum& n = crs_->params().qtmc_pk.n;
  BinaryWriter w;
  w.u32(kStateMagic);
  w.u8(kStateVersion);

  // Committed entries.
  w.varint(values_.size());
  for (const auto& [key, value] : values_) {
    w.bytes(key);
    w.bytes(value);
  }

  // Inner trie nodes.
  w.varint(inner_.size());
  for (const auto& [prefix, node] : inner_) {
    w.str(prefix);
    w.bytes(node.com.serialize(n));
    w.varint(node.dec.messages.size());
    for (const auto& m : node.dec.messages) w.bytes(m);
    write_scalar(w, node.dec.z);
    write_scalar(w, node.dec.r0);
    write_scalar(w, node.dec.r1);
  }

  // Leaves.
  w.varint(leaves_.size());
  for (const auto& [prefix, leaf] : leaves_) {
    w.str(prefix);
    w.bytes(leaf.com.serialize());
    w.bytes(leaf.dec.message);
    write_scalar(w, leaf.dec.r0);
    write_scalar(w, leaf.dec.r1);
  }

  // Soft backing map.
  w.varint(soft_backing_.size());
  for (const auto& [key, id] : soft_backing_) {
    w.str(key);
    w.varint(id);
  }

  // Soft nodes (including memoized fabrication teases).
  w.varint(soft_nodes_.size());
  for (const SoftNode& node : soft_nodes_) {
    if (const auto* inner = std::get_if<SoftInner>(&node)) {
      w.u8(0);
      w.bytes(inner->com.serialize(n));
      write_scalar(w, inner->dec.r0);
      write_scalar(w, inner->dec.r1);
      w.varint(inner->teases.size());
      for (const auto& [digit, entry] : inner->teases) {
        w.u32(digit);
        w.bytes(entry.first.serialize(n));
        w.varint(entry.second);
      }
    } else {
      const auto& leaf = std::get<SoftLeaf>(node);
      w.u8(1);
      w.bytes(leaf.com.serialize());
      write_scalar(w, leaf.dec.r0);
      write_scalar(w, leaf.dec.r1);
    }
  }
  return w.take();
}

EdbProver EdbProver::load(EdbCrsPtr crs, BytesView state) {
  EdbProver prover(std::move(crs));
  const EdbCrs& c = *prover.crs_;
  const Bignum& n = c.params().qtmc_pk.n;
  BinaryReader r(state);

  if (r.u32() != kStateMagic) {
    throw SerializationError("not a DPOC state blob");
  }
  if (r.u8() != kStateVersion) {
    throw SerializationError("unsupported DPOC state version");
  }

  const std::uint64_t n_values = r.varint();
  for (std::uint64_t i = 0; i < n_values; ++i) {
    Bytes key = r.bytes();
    Bytes value = r.bytes();
    (void)c.digits_of(key);  // validates the key against the CRS
    prover.values_.emplace(std::move(key), std::move(value));
  }

  const std::uint64_t n_inner = r.varint();
  for (std::uint64_t i = 0; i < n_inner; ++i) {
    std::string prefix = r.str();
    InnerNode node;
    node.com = mercurial::QtmcCommitment::deserialize(n, r.bytes());
    const std::uint64_t n_msgs = r.varint();
    if (n_msgs != c.q()) {
      throw SerializationError("inner node message count mismatch");
    }
    node.dec.messages.reserve(n_msgs);
    for (std::uint64_t j = 0; j < n_msgs; ++j) {
      node.dec.messages.push_back(r.bytes());
    }
    node.dec.z = read_scalar(r);
    node.dec.r0 = read_scalar(r);
    node.dec.r1 = read_scalar(r);
    prover.inner_.emplace(std::move(prefix), std::move(node));
  }

  const std::uint64_t n_leaves = r.varint();
  for (std::uint64_t i = 0; i < n_leaves; ++i) {
    std::string prefix = r.str();
    LeafNode leaf;
    leaf.com = mercurial::TmcCommitment::deserialize(c.group(), r.bytes());
    leaf.dec.message = r.bytes();
    leaf.dec.r0 = read_scalar(r);
    leaf.dec.r1 = read_scalar(r);
    prover.leaves_.emplace(std::move(prefix), std::move(leaf));
  }

  const std::uint64_t n_backing = r.varint();
  for (std::uint64_t i = 0; i < n_backing; ++i) {
    std::string key = r.str();
    const std::size_t id = static_cast<std::size_t>(r.varint());
    prover.soft_backing_.emplace(std::move(key), id);
  }

  const std::uint64_t n_soft = r.varint();
  for (std::uint64_t i = 0; i < n_soft; ++i) {
    const std::uint8_t tag = r.u8();
    if (tag == 0) {
      SoftInner inner;
      inner.com = mercurial::QtmcCommitment::deserialize(n, r.bytes());
      inner.dec.r0 = read_scalar(r);
      inner.dec.r1 = read_scalar(r);
      const std::uint64_t n_teases = r.varint();
      for (std::uint64_t j = 0; j < n_teases; ++j) {
        const std::uint32_t digit = r.u32();
        mercurial::QtmcTease tease =
            mercurial::QtmcTease::deserialize(n, r.bytes());
        const std::size_t child = static_cast<std::size_t>(r.varint());
        inner.teases.emplace(digit, std::make_pair(std::move(tease), child));
      }
      prover.soft_nodes_.emplace_back(std::move(inner));
    } else if (tag == 1) {
      SoftLeaf leaf;
      leaf.com = mercurial::TmcCommitment::deserialize(c.group(), r.bytes());
      leaf.dec.r0 = read_scalar(r);
      leaf.dec.r1 = read_scalar(r);
      prover.soft_nodes_.emplace_back(std::move(leaf));
    } else {
      throw SerializationError("unknown soft node tag");
    }
  }
  r.expect_done();

  // Referential integrity: backing ids and memoized children must exist.
  for (const auto& [key, id] : prover.soft_backing_) {
    if (id >= prover.soft_nodes_.size()) {
      throw SerializationError("soft backing id out of range");
    }
  }
  for (const SoftNode& node : prover.soft_nodes_) {
    if (const auto* inner = std::get_if<SoftInner>(&node)) {
      for (const auto& [digit, entry] : inner->teases) {
        if (entry.second >= prover.soft_nodes_.size()) {
          throw SerializationError("memoized child id out of range");
        }
      }
    }
  }

  const auto root = prover.inner_.find(std::string());
  if (root == prover.inner_.end()) {
    throw SerializationError("DPOC state has no root node");
  }
  prover.root_com_ = root->second.com;
  return prover;
}

}  // namespace desword::zkedb
