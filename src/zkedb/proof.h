// ZK-EDB proof objects.
//
// Both proof flavours walk the q-ary tree from the root to the key's leaf:
//
//   * membership ("ownership" at the POC layer): hard openings at every
//     inner node plus a hard opening of the leaf TMC to H(value), plus the
//     value itself — the verifier recovers D(x) = value.
//   * non-membership ("non-ownership"): teases at every inner node plus a
//     tease of the (fabricated) leaf to the designated null message.
//
// Each step carries the serialized commitment of the next node so the
// verifier can recompute the digest chain; per-level size is constant in q,
// which is what makes Table II's proof sizes proportional to h only.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "mercurial/qtmc.h"
#include "mercurial/tmc.h"
#include "zkedb/params.h"

namespace desword::zkedb {

struct EdbMembershipProof {
  /// Hard openings of inner nodes at depths 0..height-1 (root first).
  std::vector<mercurial::QtmcOpening> openings;
  /// Serialized commitment of the node at depth d+1 for step d; the last
  /// entry is the leaf's TMC commitment.
  std::vector<Bytes> child_commitments;
  mercurial::TmcOpening leaf_opening;
  Bytes value;

  Bytes serialize(const EdbCrs& crs) const;
  static EdbMembershipProof deserialize(const EdbCrs& crs, BytesView data);
};

struct EdbNonMembershipProof {
  /// Teases of inner nodes at depths 0..height-1 (root first).
  std::vector<mercurial::QtmcTease> teases;
  std::vector<Bytes> child_commitments;
  /// Tease of the leaf to the null message.
  mercurial::TmcTease leaf_tease;

  Bytes serialize(const EdbCrs& crs) const;
  static EdbNonMembershipProof deserialize(const EdbCrs& crs, BytesView data);
};

/// Digest a leaf value into the TMC message space.
Bytes leaf_value_digest(BytesView value);

}  // namespace desword::zkedb
