#include "zkedb/proof.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hash.h"

namespace desword::zkedb {

Bytes leaf_value_digest(BytesView value) {
  return hash_to_128("zkedb/leaf-value", {value});
}

Bytes EdbMembershipProof::serialize(const EdbCrs& crs) const {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryWriter w;
  w.varint(openings.size());
  for (const auto& op : openings) w.bytes(op.serialize(n));
  w.varint(child_commitments.size());
  for (const auto& c : child_commitments) w.bytes(c);
  w.bytes(leaf_opening.serialize(crs.group()));
  w.bytes(value);
  return w.take();
}

EdbMembershipProof EdbMembershipProof::deserialize(const EdbCrs& crs,
                                                   BytesView data) {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryReader r(data);
  EdbMembershipProof proof;
  const std::uint64_t n_open = r.varint();
  if (n_open != crs.height()) {
    throw SerializationError("membership proof has wrong depth");
  }
  proof.openings.reserve(n_open);
  for (std::uint64_t i = 0; i < n_open; ++i) {
    proof.openings.push_back(mercurial::QtmcOpening::deserialize(n, r.bytes()));
  }
  const std::uint64_t n_child = r.varint();
  if (n_child != crs.height()) {
    throw SerializationError("membership proof has wrong child count");
  }
  proof.child_commitments.reserve(n_child);
  for (std::uint64_t i = 0; i < n_child; ++i) {
    proof.child_commitments.push_back(r.bytes());
  }
  proof.leaf_opening =
      mercurial::TmcOpening::deserialize(crs.group(), r.bytes());
  proof.value = r.bytes();
  r.expect_done();
  return proof;
}

Bytes EdbNonMembershipProof::serialize(const EdbCrs& crs) const {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryWriter w;
  w.varint(teases.size());
  for (const auto& t : teases) w.bytes(t.serialize(n));
  w.varint(child_commitments.size());
  for (const auto& c : child_commitments) w.bytes(c);
  w.bytes(leaf_tease.serialize(crs.group()));
  return w.take();
}

EdbNonMembershipProof EdbNonMembershipProof::deserialize(const EdbCrs& crs,
                                                         BytesView data) {
  const Bignum& n = crs.params().qtmc_pk.n;
  BinaryReader r(data);
  EdbNonMembershipProof proof;
  const std::uint64_t n_tease = r.varint();
  if (n_tease != crs.height()) {
    throw SerializationError("non-membership proof has wrong depth");
  }
  proof.teases.reserve(n_tease);
  for (std::uint64_t i = 0; i < n_tease; ++i) {
    proof.teases.push_back(mercurial::QtmcTease::deserialize(n, r.bytes()));
  }
  const std::uint64_t n_child = r.varint();
  if (n_child != crs.height()) {
    throw SerializationError("non-membership proof has wrong child count");
  }
  proof.child_commitments.reserve(n_child);
  for (std::uint64_t i = 0; i < n_child; ++i) {
    proof.child_commitments.push_back(r.bytes());
  }
  proof.leaf_tease = mercurial::TmcTease::deserialize(crs.group(), r.bytes());
  r.expect_done();
  return proof;
}

}  // namespace desword::zkedb
