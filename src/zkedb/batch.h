// Batched membership proofs (extension).
//
// Recall checks query many products of one lot against the SAME POC; their
// tree paths share prefixes (always at least the root). A batch proof
// stores each unique (node, position) opening once instead of once per
// key, cutting wire bytes by the shared-prefix factor while preserving the
// exact per-key verification chain: the verifier re-walks every key and
// accepts only if each chain verifies edge by edge.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "zkedb/proof.h"
#include "zkedb/verifier.h"

namespace desword::zkedb {

class EdbProver;

/// One deduplicated step: the opening of the node reached by `prefix`
/// (digit path from the root, one byte per digit) at position
/// `opening.pos`, plus the serialized commitment of the child it reveals.
struct EdbBatchStep {
  Bytes prefix;  // digits of the node's path (empty = root)
  mercurial::QtmcOpening opening;
  Bytes child_commitment;
};

struct EdbBatchLeaf {
  EdbKey key;
  mercurial::TmcOpening opening;
  Bytes value;
};

struct EdbBatchMembershipProof {
  std::vector<EdbBatchStep> steps;
  std::vector<EdbBatchLeaf> leaves;

  Bytes serialize(const EdbCrs& crs) const;
  static EdbBatchMembershipProof deserialize(const EdbCrs& crs,
                                             BytesView data);
};

/// Proves membership of every key in `keys` (duplicates allowed; all must
/// be present). Mutates nothing. Per-key openings are generated on
/// `threads` workers (0 = default, see EdbProverOptions::threads).
EdbBatchMembershipProof edb_prove_membership_batch(
    const EdbProver& prover, const std::vector<EdbKey>& keys,
    unsigned threads = 0);

/// Verifies the batch against `root`. Returns the proven key -> value map,
/// or nullopt if ANY chain fails (all-or-nothing, so a partially forged
/// batch cannot smuggle values through). The unique edge and leaf checks
/// run on `opts.threads` workers (0 = default); with `opts.batched` each
/// worker folds its edge/leaf shard into one multi-exponentiation.
std::optional<std::map<EdbKey, Bytes>> edb_verify_membership_batch(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbKey>& keys, const EdbBatchMembershipProof& proof,
    const EdbVerifyOptions& opts = {});

/// Back-compat overload: threads only, defaults otherwise.
std::optional<std::map<EdbKey, Bytes>> edb_verify_membership_batch(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbKey>& keys, const EdbBatchMembershipProof& proof,
    unsigned threads);

}  // namespace desword::zkedb
