#include "zkedb/prover.h"

#include <algorithm>

#include "common/error.h"
#include "common/thread_pool.h"
#include "crypto/hash.h"
#include "mercurial/message.h"
#include "obs/metrics.h"

namespace desword::zkedb {

namespace {

obs::Histogram& prove_wall_ms() {
  static obs::Histogram& h = obs::histogram_metric("zkedb.prove.wall_ms");
  return h;
}

}  // namespace

std::string EdbProver::child_prefix(const std::string& prefix,
                                    std::uint32_t digit) {
  std::string out = prefix;
  out.push_back(static_cast<char>(static_cast<unsigned char>(digit)));
  return out;
}

EdbProver::EdbProver(EdbCrsPtr crs, const std::map<Bytes, Bytes>& entries,
                     const EdbProverOptions& options)
    : crs_(std::move(crs)), opts_(options) {
  static obs::Histogram& commit_wall_ms =
      obs::histogram_metric("zkedb.commit.wall_ms");
  const obs::ScopedTimer commit_timer(commit_wall_ms);
  std::vector<BuildEntry> build_entries;
  build_entries.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    build_entries.emplace_back(crs_->digits_of(key), value);
    values_.emplace(key, value);
  }
  // std::map iterates keys in lexicographic == numeric order, which is the
  // same order as digit vectors — the recursive build depends on it.
  DESWORD_CHECK(std::is_sorted(build_entries.begin(), build_entries.end(),
                               [](const auto& a, const auto& b) {
                                 return a.first < b.first;
                               }),
                "ZK-EDB build entries not in digit order");

  const unsigned threads =
      opts_.threads != 0 ? opts_.threads : ThreadPool::default_threads();
  ThreadPool* pool =
      threads > 1 ? &ThreadPool::with_threads(threads) : nullptr;
  (void)build(build_entries, std::string(), 0, build_entries.size(), pool);
  root_com_ = inner_.at(std::string()).com;
  static obs::Counter& commit_nodes = obs::metric("zkedb.commit.nodes");
  commit_nodes.add(inner_.size() + leaves_.size());
}

EdbProver::EdbProver(EdbProver&& other) noexcept
    : crs_(std::move(other.crs_)),
      opts_(std::move(other.opts_)),
      epoch_(other.epoch_),
      fabrication_counter_(other.fabrication_counter_),
      inner_(std::move(other.inner_)),
      leaves_(std::move(other.leaves_)),
      soft_backing_(std::move(other.soft_backing_)),
      soft_nodes_(std::move(other.soft_nodes_)),
      values_(std::move(other.values_)),
      root_com_(std::move(other.root_com_)) {}

EdbProver& EdbProver::operator=(EdbProver&& other) noexcept {
  if (this != &other) {
    crs_ = std::move(other.crs_);
    opts_ = std::move(other.opts_);
    epoch_ = other.epoch_;
    fabrication_counter_ = other.fabrication_counter_;
    inner_ = std::move(other.inner_);
    leaves_ = std::move(other.leaves_);
    soft_backing_ = std::move(other.soft_backing_);
    soft_nodes_ = std::move(other.soft_nodes_);
    values_ = std::move(other.values_);
    root_com_ = std::move(other.root_com_);
  }
  return *this;
}

Bytes EdbProver::node_seed(char role, std::string_view id) const {
  TaggedHasher h("desword/edb-node-rng");
  h.add(*opts_.seed);
  h.add_u64(static_cast<std::uint64_t>(static_cast<unsigned char>(role)));
  h.add_u64(epoch_);
  h.add_str(id);
  return h.digest();
}

Bytes EdbProver::commitment_bytes() const {
  return root_com_.serialize(crs_->params().qtmc_pk.n);
}

bool EdbProver::contains(const EdbKey& key) const {
  return values_.find(key) != values_.end();
}

std::optional<Bytes> EdbProver::value_of(const EdbKey& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::pair<std::size_t, Bytes> EdbProver::make_soft_node(std::uint32_t depth,
                                                        RandomSource& rng) {
  if (depth == crs_->height()) {
    auto [com, dec] = crs_->tmc().soft_commit(rng);
    Bytes digest = crs_->digest_leaf(com);
    MutexLock lock(state_mu_);
    const std::size_t id = soft_nodes_.size();
    soft_nodes_.push_back(SoftLeaf{std::move(com), std::move(dec)});
    return {id, std::move(digest)};
  }
  auto [com, dec] = crs_->qtmc().soft_commit(rng);
  Bytes digest = crs_->digest_inner(com);
  MutexLock lock(state_mu_);
  const std::size_t id = soft_nodes_.size();
  soft_nodes_.push_back(SoftInner{std::move(com), std::move(dec), {}});
  return {id, std::move(digest)};
}

Bytes EdbProver::soft_digest(std::size_t id) const {
  DESWORD_DCHECK(id < soft_nodes_.size(), "soft node id out of range");
  const SoftNode& node = soft_nodes_.at(id);
  if (const auto* inner = std::get_if<SoftInner>(&node)) {
    return crs_->digest_inner(inner->com);
  }
  return crs_->digest_leaf(std::get<SoftLeaf>(node).com);
}

Bytes EdbProver::backing_digest(const std::string& prefix,
                                std::uint32_t digit) {
  const std::uint32_t depth = static_cast<std::uint32_t>(prefix.size());
  const std::string backing_key =
      crs_->params().soft_mode == SoftMode::kShared
          ? prefix
          : child_prefix(prefix, digit);
  {
    MutexLock lock(state_mu_);
    const auto it = soft_backing_.find(backing_key);
    if (it != soft_backing_.end()) return soft_digest(it->second);
  }
  // Each backing key belongs to exactly one trie node, and that node's
  // build/update runs on one thread, so no other thread can be creating
  // this key concurrently; the lock only protects the containers.
  std::optional<DrbgRandomSource> drbg;
  if (opts_.seed) drbg.emplace(node_seed('s', backing_key));
  RandomSource& rng =
      drbg ? static_cast<RandomSource&>(*drbg) : system_random();
  auto [id, digest] = make_soft_node(depth + 1, rng);
  MutexLock lock(state_mu_);
  soft_backing_.emplace(backing_key, id);
  return digest;
}

Bytes EdbProver::commit_inner(const std::string& prefix,
                              std::vector<Bytes> messages) {
  std::optional<DrbgRandomSource> drbg;
  if (opts_.seed) drbg.emplace(node_seed('i', prefix));
  RandomSource& rng =
      drbg ? static_cast<RandomSource&>(*drbg) : system_random();
  auto [com, dec] = crs_->qtmc().hard_commit(messages, rng);
  Bytes digest = crs_->digest_inner(com);
  MutexLock lock(state_mu_);
  inner_.insert_or_assign(prefix, InnerNode{std::move(com), std::move(dec)});
  return digest;
}

Bytes EdbProver::build(const std::vector<BuildEntry>& entries,
                       const std::string& prefix, std::size_t lo,
                       std::size_t hi, ThreadPool* pool) {
  const std::uint32_t depth = static_cast<std::uint32_t>(prefix.size());
  if (depth == crs_->height()) {
    DESWORD_CHECK(hi - lo == 1, "duplicate ZK-EDB keys in one leaf");
    const Bytes& value = entries[lo].second;
    std::optional<DrbgRandomSource> drbg;
    if (opts_.seed) drbg.emplace(node_seed('l', prefix));
    RandomSource& rng =
        drbg ? static_cast<RandomSource&>(*drbg) : system_random();
    auto [com, dec] = crs_->tmc().hard_commit(leaf_value_digest(value), rng);
    Bytes digest = crs_->digest_leaf(com);
    MutexLock lock(state_mu_);
    leaves_.emplace(prefix, LeafNode{std::move(com), std::move(dec)});
    return digest;
  }

  const std::uint32_t q = crs_->q();
  std::vector<Bytes> messages(q);
  std::vector<bool> present(q, false);

  // Entries are sorted by digit vectors, so children form contiguous runs.
  // Collect the runs (and fill `present`, which is bit-packed and must not
  // be written concurrently) before fanning the child builds out.
  struct Run {
    std::uint32_t digit;
    std::size_t lo;
    std::size_t hi;
  };
  std::vector<Run> runs;
  std::size_t run_lo = lo;
  while (run_lo < hi) {
    const std::uint32_t digit = entries[run_lo].first[depth];
    std::size_t run_hi = run_lo;
    while (run_hi < hi && entries[run_hi].first[depth] == digit) {
      ++run_hi;
    }
    runs.push_back(Run{digit, run_lo, run_hi});
    present[digit] = true;
    run_lo = run_hi;
  }

  // Child subtrees are independent: each task writes a distinct
  // messages[digit] slot. Nested parallel_for is deadlock-free (a blocked
  // caller drains its own batch), so the recursion fans out at every level
  // and degrades to sequential once all workers are busy.
  parallel_for(pool, runs.size(), [&](std::size_t i) {
    const Run& r = runs[i];
    messages[r.digit] =
        build(entries, child_prefix(prefix, r.digit), r.lo, r.hi, pool);
  });

  // Back absent children with soft commitments.
  for (std::uint32_t c = 0; c < q; ++c) {
    if (!present[c]) messages[c] = backing_digest(prefix, c);
  }

  return commit_inner(prefix, std::move(messages));
}

EdbMembershipProof EdbProver::prove_membership(const EdbKey& key) const {
  if (!contains(key)) {
    throw ProtocolError("prove_membership: key not in database");
  }
  const obs::ScopedTimer timer(prove_wall_ms());
  const std::vector<std::uint32_t> digits = crs_->digits_of(key);
  const std::uint32_t h = crs_->height();
  const Bignum& n = crs_->params().qtmc_pk.n;

  EdbMembershipProof proof;
  proof.openings.reserve(h);
  proof.child_commitments.reserve(h);
  std::string prefix;
  for (std::uint32_t d = 0; d < h; ++d) {
    const InnerNode& node = inner_.at(prefix);
    proof.openings.push_back(crs_->qtmc().hard_open(node.dec, digits[d]));
    prefix = child_prefix(prefix, digits[d]);
    if (d + 1 < h) {
      proof.child_commitments.push_back(inner_.at(prefix).com.serialize(n));
    } else {
      proof.child_commitments.push_back(leaves_.at(prefix).com.serialize());
    }
  }
  const LeafNode& leaf = leaves_.at(prefix);
  proof.leaf_opening = crs_->tmc().hard_open(leaf.dec);
  proof.value = values_.at(key);
  return proof;
}

EdbNonMembershipProof EdbProver::prove_non_membership(const EdbKey& key) {
  if (contains(key)) {
    throw ProtocolError("prove_non_membership: key is in database");
  }
  const obs::ScopedTimer timer(prove_wall_ms());
  const std::vector<std::uint32_t> digits = crs_->digits_of(key);
  const std::uint32_t h = crs_->height();
  const Bignum& n = crs_->params().qtmc_pk.n;

  EdbNonMembershipProof proof;
  proof.teases.reserve(h);
  proof.child_commitments.reserve(h);

  // Phase 1: walk committed trie nodes, teasing to committed digests.
  std::string prefix;
  std::uint32_t d = 0;
  std::optional<std::size_t> soft_id;
  while (d < h) {
    const InnerNode& node = inner_.at(prefix);
    const std::uint32_t digit = digits[d];
    proof.teases.push_back(crs_->qtmc().tease_hard(node.dec, digit));
    const std::string next = child_prefix(prefix, digit);
    const bool child_in_trie =
        (d + 1 < h) ? (inner_.find(next) != inner_.end())
                    : (leaves_.find(next) != leaves_.end());
    if (child_in_trie) {
      if (d + 1 == h) {
        // Walked into a committed leaf — the key is present after all.
        throw ProtocolError("non-membership walk reached a committed leaf");
      }
      proof.child_commitments.push_back(inner_.at(next).com.serialize(n));
      prefix = next;
      ++d;
      continue;
    }
    // Fell off the trie: the committed digest at this position is the soft
    // backing node's digest.
    const std::string backing_key =
        crs_->params().soft_mode == SoftMode::kShared ? prefix : next;
    soft_id = soft_backing_.at(backing_key);
    proof.child_commitments.push_back(
        std::holds_alternative<SoftInner>(soft_nodes_[*soft_id])
            ? std::get<SoftInner>(soft_nodes_[*soft_id]).com.serialize(n)
            : std::get<SoftLeaf>(soft_nodes_[*soft_id]).com.serialize());
    ++d;
    break;
  }

  // Phase 2: fabricate (memoized) soft nodes down to the leaf.
  while (d < h) {
    const std::uint32_t digit = digits[d];
    auto& cur = std::get<SoftInner>(soft_nodes_[*soft_id]);
    const auto it = cur.teases.find(digit);
    if (it != cur.teases.end()) {
      proof.teases.push_back(it->second.first);
      soft_id = it->second.second;
    } else {
      // soft_nodes_ is a deque, so creating the child never invalidates
      // `cur` (a vector's push_back could reallocate out from under it).
      std::optional<DrbgRandomSource> drbg;
      if (opts_.seed) {
        drbg.emplace(node_seed('f', std::to_string(fabrication_counter_++)));
      }
      RandomSource& rng =
          drbg ? static_cast<RandomSource&>(*drbg) : system_random();
      auto [child_id, child_digest] = make_soft_node(d + 1, rng);
      mercurial::QtmcTease tease =
          crs_->qtmc().tease_soft(cur.dec, digit, child_digest);
      cur.teases.emplace(digit, std::make_pair(tease, child_id));
      proof.teases.push_back(std::move(tease));
      soft_id = child_id;
    }
    proof.child_commitments.push_back(
        std::holds_alternative<SoftInner>(soft_nodes_[*soft_id])
            ? std::get<SoftInner>(soft_nodes_[*soft_id]).com.serialize(n)
            : std::get<SoftLeaf>(soft_nodes_[*soft_id]).com.serialize());
    ++d;
  }

  const auto& leaf = std::get<SoftLeaf>(soft_nodes_[*soft_id]);
  proof.leaf_tease =
      crs_->tmc().tease_soft(leaf.dec, mercurial::null_message());
  return proof;
}

// ---------------------------------------------------------------------------
// Incremental updates
// ---------------------------------------------------------------------------

Bytes EdbProver::grow_branch(const std::vector<std::uint32_t>& digits,
                             std::uint32_t from_depth, const Bytes& value) {
  const std::uint32_t h = crs_->height();
  // Leaf first.
  std::string prefix;
  for (std::uint32_t d = 0; d < h; ++d) {
    prefix = child_prefix(prefix, digits[d]);
  }
  std::optional<DrbgRandomSource> drbg;
  if (opts_.seed) drbg.emplace(node_seed('l', prefix));
  RandomSource& rng =
      drbg ? static_cast<RandomSource&>(*drbg) : system_random();
  auto [leaf_com, leaf_dec] =
      crs_->tmc().hard_commit(leaf_value_digest(value), rng);
  Bytes digest = crs_->digest_leaf(leaf_com);
  leaves_.emplace(prefix, LeafNode{std::move(leaf_com), std::move(leaf_dec)});

  // Inner nodes from depth h-1 down to from_depth, each with exactly one
  // trie child (the one just created) and soft backing elsewhere.
  for (std::uint32_t d = h; d-- > from_depth;) {
    prefix.pop_back();
    const std::uint32_t q = crs_->q();
    std::vector<Bytes> messages(q);
    for (std::uint32_t c = 0; c < q; ++c) {
      messages[c] = (c == digits[d]) ? digest : backing_digest(prefix, c);
    }
    digest = commit_inner(prefix, std::move(messages));
  }
  return digest;
}

void EdbProver::recommit_path(const std::vector<std::uint32_t>& digits,
                              std::uint32_t depth, const Bytes& child_digest) {
  // Update nodes from `depth` (whose child digest at digits[depth]
  // changed) up to the root, re-hard-committing each.
  Bytes digest = child_digest;
  std::string prefix(digits.begin(),
                     digits.begin() + static_cast<long>(depth) + 1);
  prefix.pop_back();  // prefix of the node at `depth`
  for (std::uint32_t d = depth + 1; d-- > 0;) {
    std::vector<Bytes> messages = inner_.at(prefix).dec.messages;
    messages[digits[d]] = digest;
    digest = commit_inner(prefix, std::move(messages));
    if (!prefix.empty()) prefix.pop_back();
  }
  root_com_ = inner_.at(std::string()).com;
}

void EdbProver::insert(const EdbKey& key, const Bytes& value) {
  if (contains(key)) throw ProtocolError("insert: key already present");
  ++epoch_;  // recommitted nodes must draw fresh seeded randomness
  const std::vector<std::uint32_t> digits = crs_->digits_of(key);
  const std::uint32_t h = crs_->height();

  // Find the deepest existing ancestor.
  std::string prefix;
  std::uint32_t d = 0;
  while (d < h) {
    const std::string next = child_prefix(prefix, digits[d]);
    const bool child_in_trie =
        (d + 1 < h) ? (inner_.find(next) != inner_.end())
                    : (leaves_.find(next) != leaves_.end());
    if (!child_in_trie) break;
    prefix = next;
    ++d;
  }
  if (d == h) throw ProtocolError("insert: leaf already exists");

  // Grow the missing branch below depth d+1 and splice it into the node
  // at depth d, then recommit up to the root.
  const Bytes branch_digest = grow_branch(digits, d + 1, value);
  values_.emplace(key, value);
  recommit_path(digits, d, branch_digest);
}

void EdbProver::erase(const EdbKey& key) {
  if (!contains(key)) throw ProtocolError("erase: key not present");
  ++epoch_;  // recommitted nodes must draw fresh seeded randomness
  const std::vector<std::uint32_t> digits = crs_->digits_of(key);
  const std::uint32_t h = crs_->height();

  // Remove the leaf.
  std::string prefix(digits.begin(), digits.end());
  leaves_.erase(prefix);
  values_.erase(key);

  // Prune childless inner nodes bottom-up (never the root).
  std::uint32_t d = h;  // depth of the removed node's parent + 1
  while (d > 1) {
    prefix.pop_back();
    --d;
    // Does this node still have any trie child?
    bool has_child = false;
    for (std::uint32_t c = 0; c < crs_->q() && !has_child; ++c) {
      const std::string next = child_prefix(prefix, c);
      has_child = (d + 1 < h) ? (inner_.find(next) != inner_.end())
                              : (leaves_.find(next) != leaves_.end());
    }
    if (has_child) {
      // Replace the removed child's digest with soft backing, recommit.
      recommit_path(digits, d, backing_digest(prefix, digits[d]));
      return;
    }
    inner_.erase(prefix);
  }
  // Everything below the root vanished: recommit the root with soft
  // backing at the removed position.
  recommit_path(digits, 0, backing_digest(std::string(), digits[0]));
}

}  // namespace desword::zkedb
