#include "zkedb/verifier.h"

#include <algorithm>

#include "common/error.h"
#include "common/thread_pool.h"
#include "mercurial/batch_verify.h"
#include "mercurial/message.h"
#include "obs/metrics.h"

namespace desword::zkedb {

namespace {

/// Verification runs concurrently from the thread pool (see
/// edb_verify_membership_many), which the histogram's atomic buckets are
/// built for — no extra synchronization here.
obs::Histogram& verify_wall_ms() {
  static obs::Histogram& h = obs::histogram_metric("zkedb.verify.wall_ms");
  return h;
}

obs::Counter& batched_verifies() {
  static obs::Counter& c = obs::metric("zkedb.verify.batched");
  return c;
}

obs::Counter& scalar_verifies() {
  static obs::Counter& c = obs::metric("zkedb.verify.scalar");
  return c;
}

/// Digest of a serialized child commitment at depth `child_depth`
/// (leaf iff == height). Returns nullopt on malformed bytes.
std::optional<Bytes> child_digest(const EdbCrs& crs, BytesView serialized,
                                  std::uint32_t child_depth) {
  try {
    if (child_depth == crs.height()) {
      return crs.digest_leaf(
          mercurial::TmcCommitment::deserialize(crs.group(), serialized));
    }
    return crs.digest_inner(mercurial::QtmcCommitment::deserialize(
        crs.params().qtmc_pk.n, serialized));
  } catch (const Error&) {
    return std::nullopt;
  }
}

/// Walks a membership chain, accumulating every opening into `bv` (one
/// already-begun unit) and running all non-equation checks: digit
/// positions, chain digests, the leaf value digest. Returns false — the
/// caller must then fail the unit — when any of them rejects; the proof is
/// valid iff this returns true AND the unit's equations verify. May throw
/// Error on malformed bytes (callers catch).
bool add_membership_chain(const EdbCrs& crs,
                          const mercurial::QtmcCommitment& root,
                          const EdbKey& key, const EdbMembershipProof& proof,
                          mercurial::BatchVerifier& bv) {
  const std::uint32_t h = crs.height();
  if (proof.openings.size() != h || proof.child_commitments.size() != h) {
    return false;
  }
  const std::vector<std::uint32_t> digits = crs.digits_of(key);

  mercurial::QtmcCommitment cur = root;
  for (std::uint32_t d = 0; d < h; ++d) {
    const mercurial::QtmcOpening& op = proof.openings[d];
    if (op.pos != digits[d]) return false;
    if (!bv.add_open(cur, op)) return false;
    const auto digest = child_digest(crs, proof.child_commitments[d], d + 1);
    if (!digest.has_value() || *digest != op.message) return false;
    if (d + 1 < h) {
      cur = mercurial::QtmcCommitment::deserialize(crs.params().qtmc_pk.n,
                                                   proof.child_commitments[d]);
    }
  }
  const mercurial::TmcCommitment leaf_com = mercurial::TmcCommitment::deserialize(
      crs.group(), proof.child_commitments[h - 1]);
  if (!bv.add_leaf_open(leaf_com, proof.leaf_opening)) return false;
  return proof.leaf_opening.message == leaf_value_digest(proof.value);
}

/// Non-membership analogue of add_membership_chain (teases instead of
/// openings, null message at the leaf).
bool add_non_membership_chain(const EdbCrs& crs,
                              const mercurial::QtmcCommitment& root,
                              const EdbKey& key,
                              const EdbNonMembershipProof& proof,
                              mercurial::BatchVerifier& bv) {
  const std::uint32_t h = crs.height();
  if (proof.teases.size() != h || proof.child_commitments.size() != h) {
    return false;
  }
  const std::vector<std::uint32_t> digits = crs.digits_of(key);

  mercurial::QtmcCommitment cur = root;
  for (std::uint32_t d = 0; d < h; ++d) {
    const mercurial::QtmcTease& tease = proof.teases[d];
    if (tease.pos != digits[d]) return false;
    if (!bv.add_tease(cur, tease)) return false;
    const auto digest = child_digest(crs, proof.child_commitments[d], d + 1);
    if (!digest.has_value() || *digest != tease.message) return false;
    if (d + 1 < h) {
      cur = mercurial::QtmcCommitment::deserialize(crs.params().qtmc_pk.n,
                                                   proof.child_commitments[d]);
    }
  }
  const mercurial::TmcCommitment leaf_com = mercurial::TmcCommitment::deserialize(
      crs.group(), proof.child_commitments[h - 1]);
  if (!bv.add_leaf_tease(leaf_com, proof.leaf_tease)) return false;
  return proof.leaf_tease.message == mercurial::null_message();
}

VerifyOutcome verify_membership_scalar(const EdbCrs& crs,
                                       const mercurial::QtmcCommitment& root,
                                       const EdbKey& key,
                                       const EdbMembershipProof& proof) {
  try {
    const std::uint32_t h = crs.height();
    if (proof.openings.size() != h || proof.child_commitments.size() != h) {
      return VerifyOutcome::reject();
    }
    const std::vector<std::uint32_t> digits = crs.digits_of(key);

    mercurial::QtmcCommitment cur = root;
    for (std::uint32_t d = 0; d < h; ++d) {
      const mercurial::QtmcOpening& op = proof.openings[d];
      if (op.pos != digits[d]) return VerifyOutcome::reject();
      if (!crs.qtmc().verify_open(cur, op)) return VerifyOutcome::reject();
      const auto digest =
          child_digest(crs, proof.child_commitments[d], d + 1);
      if (!digest.has_value() || *digest != op.message) {
        return VerifyOutcome::reject();
      }
      if (d + 1 < h) {
        cur = mercurial::QtmcCommitment::deserialize(
            crs.params().qtmc_pk.n, proof.child_commitments[d]);
      }
    }
    const mercurial::TmcCommitment leaf_com =
        mercurial::TmcCommitment::deserialize(crs.group(),
                                              proof.child_commitments[h - 1]);
    if (!crs.tmc().verify_open(leaf_com, proof.leaf_opening)) {
      return VerifyOutcome::reject();
    }
    if (proof.leaf_opening.message != leaf_value_digest(proof.value)) {
      return VerifyOutcome::reject();
    }
    return VerifyOutcome::accept_value(proof.value);
  } catch (const Error&) {
    return VerifyOutcome::reject();
  }
}

bool verify_non_membership_scalar(const EdbCrs& crs,
                                  const mercurial::QtmcCommitment& root,
                                  const EdbKey& key,
                                  const EdbNonMembershipProof& proof) {
  try {
    const std::uint32_t h = crs.height();
    if (proof.teases.size() != h || proof.child_commitments.size() != h) {
      return false;
    }
    const std::vector<std::uint32_t> digits = crs.digits_of(key);

    mercurial::QtmcCommitment cur = root;
    for (std::uint32_t d = 0; d < h; ++d) {
      const mercurial::QtmcTease& tease = proof.teases[d];
      if (tease.pos != digits[d]) return false;
      if (!crs.qtmc().verify_tease(cur, tease)) return false;
      const auto digest = child_digest(crs, proof.child_commitments[d], d + 1);
      if (!digest.has_value() || *digest != tease.message) return false;
      if (d + 1 < h) {
        cur = mercurial::QtmcCommitment::deserialize(
            crs.params().qtmc_pk.n, proof.child_commitments[d]);
      }
    }
    const mercurial::TmcCommitment leaf_com =
        mercurial::TmcCommitment::deserialize(crs.group(),
                                              proof.child_commitments[h - 1]);
    if (!crs.tmc().verify_tease(leaf_com, proof.leaf_tease)) return false;
    return proof.leaf_tease.message == mercurial::null_message();
  } catch (const Error&) {
    return false;
  }
}

/// Cache key of a membership proof: CRS digest ‖ root commitment ‖ key ‖
/// full serialized proof bytes, domain-separated by flavour. Throws Error
/// on unserializable proof content (callers then verify uncached).
Bytes membership_cache_key(const EdbCrs& crs,
                           const mercurial::QtmcCommitment& root,
                           const EdbKey& key,
                           const EdbMembershipProof& proof) {
  return VerifyCache::proof_key(crs.digest(),
                                root.serialize(crs.params().qtmc_pk.n), key,
                                proof.serialize(crs), "membership");
}

Bytes non_membership_cache_key(const EdbCrs& crs,
                               const mercurial::QtmcCommitment& root,
                               const EdbKey& key,
                               const EdbNonMembershipProof& proof) {
  return VerifyCache::proof_key(crs.digest(),
                                root.serialize(crs.params().qtmc_pk.n), key,
                                proof.serialize(crs), "non_membership");
}

/// Proof-level entries never go stale — a (commitment, proof bytes) pair
/// is immutable — so the zkedb layer always uses epoch 0. The proxy's
/// hop-level layer is where POC-list generations version entries.
constexpr std::uint64_t kProofEpoch = 0;

VerifyOutcome verify_membership_uncached(const EdbCrs& crs,
                                         const mercurial::QtmcCommitment& root,
                                         const EdbKey& key,
                                         const EdbMembershipProof& proof,
                                         const EdbVerifyOptions& opts) {
  const obs::ScopedTimer timer(verify_wall_ms());
  if (!opts.batched) {
    scalar_verifies().add();
    return verify_membership_scalar(crs, root, key, proof);
  }
  batched_verifies().add();
  try {
    mercurial::BatchVerifier bv(crs.qtmc(), &crs.tmc());
    bv.begin_unit();
    if (!add_membership_chain(crs, root, key, proof, bv)) {
      return VerifyOutcome::reject();
    }
    if (!bv.verify().all_ok) return VerifyOutcome::reject();
    return VerifyOutcome::accept_value(proof.value);
  } catch (const Error&) {
    return VerifyOutcome::reject();
  }
}

VerifyOutcome verify_non_membership_uncached(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const EdbKey& key, const EdbNonMembershipProof& proof,
    const EdbVerifyOptions& opts) {
  const obs::ScopedTimer timer(verify_wall_ms());
  if (!opts.batched) {
    scalar_verifies().add();
    return verify_non_membership_scalar(crs, root, key, proof)
               ? VerifyOutcome::accept()
               : VerifyOutcome::reject();
  }
  batched_verifies().add();
  try {
    mercurial::BatchVerifier bv(crs.qtmc(), &crs.tmc());
    bv.begin_unit();
    if (!add_non_membership_chain(crs, root, key, proof, bv)) {
      return VerifyOutcome::reject();
    }
    return bv.verify().all_ok ? VerifyOutcome::accept()
                              : VerifyOutcome::reject();
  } catch (const Error&) {
    return VerifyOutcome::reject();
  }
}

}  // namespace

VerifyOutcome edb_verify_membership(const EdbCrs& crs,
                                    const mercurial::QtmcCommitment& root,
                                    const EdbKey& key,
                                    const EdbMembershipProof& proof,
                                    const EdbVerifyOptions& opts) {
  Bytes cache_key;
  if (opts.cache) {
    try {
      cache_key = membership_cache_key(crs, root, key, proof);
      if (const auto hit = opts.cache->lookup(cache_key, kProofEpoch)) {
        return *hit;
      }
    } catch (const Error&) {
      cache_key.clear();  // unserializable proof: verify uncached
    }
  }
  const VerifyOutcome out =
      verify_membership_uncached(crs, root, key, proof, opts);
  if (opts.cache && !cache_key.empty() && out.ok) {
    opts.cache->store(cache_key, out, kProofEpoch);
  }
  return out;
}

VerifyOutcome edb_verify_non_membership(const EdbCrs& crs,
                                        const mercurial::QtmcCommitment& root,
                                        const EdbKey& key,
                                        const EdbNonMembershipProof& proof,
                                        const EdbVerifyOptions& opts) {
  Bytes cache_key;
  if (opts.cache) {
    try {
      cache_key = non_membership_cache_key(crs, root, key, proof);
      if (const auto hit = opts.cache->lookup(cache_key, kProofEpoch)) {
        return *hit;
      }
    } catch (const Error&) {
      cache_key.clear();
    }
  }
  const VerifyOutcome out =
      verify_non_membership_uncached(crs, root, key, proof, opts);
  if (opts.cache && !cache_key.empty() && out.ok) {
    opts.cache->store(cache_key, out, kProofEpoch);
  }
  return out;
}

std::vector<VerifyOutcome> edb_verify_membership_many(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbMembershipQuery>& queries,
    const EdbVerifyOptions& opts) {
  std::vector<VerifyOutcome> results(queries.size());
  const unsigned t = opts.threads != 0 ? opts.threads
                                       : ThreadPool::default_threads();
  ThreadPool* pool = t > 1 ? &ThreadPool::with_threads(t) : nullptr;

  // Cache pre-pass: hits resolve before any shard is formed, so only
  // misses pay for key digests twice. keys[i] stays empty when the proof
  // was null, unserializable, or the cache is off; done[i] marks slots no
  // verification strategy should touch again.
  std::vector<Bytes> keys;
  std::vector<char> done(queries.size(), 0);
  if (opts.cache) {
    keys.resize(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].proof == nullptr) continue;  // stays rejected
      try {
        keys[i] =
            membership_cache_key(crs, root, queries[i].key, *queries[i].proof);
      } catch (const Error&) {
        continue;
      }
      if (const auto hit = opts.cache->lookup(keys[i], kProofEpoch)) {
        results[i] = *hit;
        done[i] = 1;
      }
    }
  }
  const auto store_result = [&](std::size_t i) {
    if (opts.cache && !keys.empty() && !keys[i].empty() && results[i].ok) {
      opts.cache->store(keys[i], results[i], kProofEpoch);
    }
  };

  if (!opts.batched) {
    // Proof verification is pure (crs and root are only read), so queries
    // are embarrassingly parallel.
    parallel_for(pool, queries.size(), [&](std::size_t i) {
      if (done[i] || queries[i].proof == nullptr) return;
      results[i] = verify_membership_uncached(crs, root, queries[i].key,
                                              *queries[i].proof, opts);
      store_result(i);
    });
    return results;
  }

  // Batched: contiguous shards, one BatchVerifier per worker so each fold
  // spans as many proofs as possible (the fold's win grows with the number
  // of merged equations). Units are proofs, so a bad proof in a shard is
  // bisected down to its own slot and everything else still passes.
  const std::size_t shards =
      pool == nullptr
          ? 1
          : std::max<std::size_t>(
                1, std::min<std::size_t>(t, queries.size()));
  parallel_for(pool, shards, [&](std::size_t s) {
    const std::size_t begin = queries.size() * s / shards;
    const std::size_t end = queries.size() * (s + 1) / shards;
    if (begin == end) return;
    const obs::ScopedTimer timer(verify_wall_ms());
    mercurial::BatchVerifier bv(crs.qtmc(), &crs.tmc());
    struct Pending {
      std::size_t query;
      std::size_t unit;
    };
    std::vector<Pending> pending;
    for (std::size_t i = begin; i < end; ++i) {
      if (done[i] || queries[i].proof == nullptr) continue;
      batched_verifies().add();
      const std::size_t unit = bv.begin_unit();
      bool ok = false;
      try {
        ok = add_membership_chain(crs, root, queries[i].key,
                                  *queries[i].proof, bv);
      } catch (const Error&) {
        ok = false;
      }
      if (!ok) {
        bv.fail_unit();
        continue;  // rejected before the equations; stays rejected
      }
      pending.push_back({i, unit});
    }
    // Same exception discipline as the scalar verifiers: a verify() throw
    // (BN_* failure, internal check) rejects the shard's pending units —
    // their results stay rejected — instead of escaping the pool worker.
    try {
      const mercurial::BatchVerifier::Result res = bv.verify();
      for (const Pending& p : pending) {
        if (res.unit_ok[p.unit]) {
          results[p.query] =
              VerifyOutcome::accept_value(queries[p.query].proof->value);
          store_result(p.query);
        }
      }
    } catch (const Error&) {
    }
  });
  return results;
}

}  // namespace desword::zkedb
