#include "zkedb/verifier.h"

#include "common/error.h"
#include "common/thread_pool.h"
#include "mercurial/message.h"
#include "obs/metrics.h"

namespace desword::zkedb {

namespace {

/// Verification runs concurrently from the thread pool (see
/// edb_verify_membership_many), which the histogram's atomic buckets are
/// built for — no extra synchronization here.
obs::Histogram& verify_wall_ms() {
  static obs::Histogram& h = obs::histogram_metric("zkedb.verify.wall_ms");
  return h;
}

/// Digest of a serialized child commitment at depth `child_depth`
/// (leaf iff == height). Returns nullopt on malformed bytes.
std::optional<Bytes> child_digest(const EdbCrs& crs, BytesView serialized,
                                  std::uint32_t child_depth) {
  try {
    if (child_depth == crs.height()) {
      return crs.digest_leaf(
          mercurial::TmcCommitment::deserialize(crs.group(), serialized));
    }
    return crs.digest_inner(mercurial::QtmcCommitment::deserialize(
        crs.params().qtmc_pk.n, serialized));
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<Bytes> edb_verify_membership(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const EdbKey& key, const EdbMembershipProof& proof) {
  const obs::ScopedTimer timer(verify_wall_ms());
  try {
    const std::uint32_t h = crs.height();
    if (proof.openings.size() != h || proof.child_commitments.size() != h) {
      return std::nullopt;
    }
    const std::vector<std::uint32_t> digits = crs.digits_of(key);

    mercurial::QtmcCommitment cur = root;
    for (std::uint32_t d = 0; d < h; ++d) {
      const mercurial::QtmcOpening& op = proof.openings[d];
      if (op.pos != digits[d]) return std::nullopt;
      if (!crs.qtmc().verify_open(cur, op)) return std::nullopt;
      const auto digest =
          child_digest(crs, proof.child_commitments[d], d + 1);
      if (!digest.has_value() || *digest != op.message) return std::nullopt;
      if (d + 1 < h) {
        cur = mercurial::QtmcCommitment::deserialize(
            crs.params().qtmc_pk.n, proof.child_commitments[d]);
      }
    }
    const mercurial::TmcCommitment leaf_com =
        mercurial::TmcCommitment::deserialize(crs.group(),
                                              proof.child_commitments[h - 1]);
    if (!crs.tmc().verify_open(leaf_com, proof.leaf_opening)) {
      return std::nullopt;
    }
    if (proof.leaf_opening.message != leaf_value_digest(proof.value)) {
      return std::nullopt;
    }
    return proof.value;
  } catch (const Error&) {
    return std::nullopt;
  }
}

bool edb_verify_non_membership(const EdbCrs& crs,
                               const mercurial::QtmcCommitment& root,
                               const EdbKey& key,
                               const EdbNonMembershipProof& proof) {
  const obs::ScopedTimer timer(verify_wall_ms());
  try {
    const std::uint32_t h = crs.height();
    if (proof.teases.size() != h || proof.child_commitments.size() != h) {
      return false;
    }
    const std::vector<std::uint32_t> digits = crs.digits_of(key);

    mercurial::QtmcCommitment cur = root;
    for (std::uint32_t d = 0; d < h; ++d) {
      const mercurial::QtmcTease& tease = proof.teases[d];
      if (tease.pos != digits[d]) return false;
      if (!crs.qtmc().verify_tease(cur, tease)) return false;
      const auto digest = child_digest(crs, proof.child_commitments[d], d + 1);
      if (!digest.has_value() || *digest != tease.message) return false;
      if (d + 1 < h) {
        cur = mercurial::QtmcCommitment::deserialize(
            crs.params().qtmc_pk.n, proof.child_commitments[d]);
      }
    }
    const mercurial::TmcCommitment leaf_com =
        mercurial::TmcCommitment::deserialize(crs.group(),
                                              proof.child_commitments[h - 1]);
    if (!crs.tmc().verify_tease(leaf_com, proof.leaf_tease)) return false;
    return proof.leaf_tease.message == mercurial::null_message();
  } catch (const Error&) {
    return false;
  }
}

std::vector<std::optional<Bytes>> edb_verify_membership_many(
    const EdbCrs& crs, const mercurial::QtmcCommitment& root,
    const std::vector<EdbMembershipQuery>& queries, unsigned threads) {
  std::vector<std::optional<Bytes>> results(queries.size());
  const unsigned t = threads != 0 ? threads : ThreadPool::default_threads();
  ThreadPool* pool = t > 1 ? &ThreadPool::with_threads(t) : nullptr;
  // Proof verification is pure (crs and root are only read), so queries
  // are embarrassingly parallel.
  parallel_for(pool, queries.size(), [&](std::size_t i) {
    if (queries[i].proof == nullptr) return;  // results[i] stays nullopt
    results[i] =
        edb_verify_membership(crs, root, queries[i].key, *queries[i].proof);
  });
  return results;
}

}  // namespace desword::zkedb
