#include "net/fault_injector.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.h"

namespace desword::net {

namespace {

obs::Counter& faults_dropped() {
  static obs::Counter& c = obs::metric("net.fault.dropped");
  return c;
}

obs::Counter& faults_delayed() {
  static obs::Counter& c = obs::metric("net.fault.delayed");
  return c;
}

obs::Counter& faults_duplicated() {
  static obs::Counter& c = obs::metric("net.fault.duplicated");
  return c;
}

obs::Counter& faults_reset() {
  static obs::Counter& c = obs::metric("net.fault.reset");
  return c;
}

obs::Counter& faults_partitioned() {
  static obs::Counter& c = obs::metric("net.fault.partitioned");
  return c;
}

obs::Counter& faults_crashed() {
  static obs::Counter& c = obs::metric("net.fault.crashed");
  return c;
}

// Distinct fate kinds so one message gets independent draws per fault.
constexpr std::uint64_t kKindDrop = 0x11;
constexpr std::uint64_t kKindReset = 0x22;
constexpr std::uint64_t kKindDelay = 0x33;
constexpr std::uint64_t kKindDuplicate = 0x44;

/// SplitMix64 finalizer: bijective avalanche over the accumulated state.
std::uint64_t mix(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint64_t mix_in(std::uint64_t h, std::uint64_t v) {
  return mix(h ^ v);
}

/// FNV-1a over arbitrary bytes — cheap, deterministic, good enough for
/// fate decisions (this is fault scheduling, not cryptography).
std::uint64_t fnv1a(std::uint64_t h, const unsigned char* data,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t digest_string(const std::string& s) {
  return fnv1a(0xcbf29ce484222325ULL,
               reinterpret_cast<const unsigned char*>(s.data()), s.size());
}

std::uint64_t digest_bytes(const Bytes& b) {
  return fnv1a(0xcbf29ce484222325ULL, b.data(), b.size());
}

double u01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool member(const std::vector<NodeId>& group, const NodeId& node) {
  return std::find(group.begin(), group.end(), node) != group.end();
}

}  // namespace

FaultInjector::~FaultInjector() {
  // A delayed frame must never fire into a destroyed injector.
  for (const TimerId id : delay_timers_) inner_.cancel_timer(id);
}

const LinkFaults& FaultInjector::faults_for(const NodeId& from,
                                            const NodeId& to) const {
  for (const FaultRule& rule : plan_.rules) {
    if ((rule.from.empty() || rule.from == from) &&
        (rule.to.empty() || rule.to == to)) {
      return rule.faults;
    }
  }
  return plan_.default_faults;
}

bool FaultInjector::crashed(const NodeId& node, std::uint64_t t) const {
  for (const CrashWindow& cw : plan_.crashes) {
    if (cw.node == node && cw.window.contains(t)) return true;
  }
  return false;
}

bool FaultInjector::partitioned(const NodeId& from, const NodeId& to,
                                std::uint64_t t) const {
  for (const Partition& p : plan_.partitions) {
    if (!p.window.contains(t)) continue;
    if ((member(p.group_a, from) && member(p.group_b, to)) ||
        (member(p.group_b, from) && member(p.group_a, to))) {
      return true;
    }
  }
  return false;
}

double FaultInjector::draw(const NodeId& from, const NodeId& to,
                           const std::string& type, std::uint64_t attempt,
                           std::uint64_t kind) const {
  // Deliberately payload-blind: commitment/proof randomizers make payload
  // BYTES differ between two otherwise-identical runs, so hashing them
  // would turn "same logical message" into independent coin flips per run
  // and break cross-run verdict equality. The payload only feeds the
  // attempt *counter* (via the attempts_ key), which is schedule- and
  // randomizer-independent.
  std::uint64_t h = mix_in(plan_.seed, kind);
  h = mix_in(h, digest_string(from));
  h = mix_in(h, digest_string(to));
  h = mix_in(h, digest_string(type));
  h = mix_in(h, attempt);
  return u01(h);
}

bool FaultInjector::send(const NodeId& from, const NodeId& to,
                         const std::string& type, Bytes payload) {
  const std::uint64_t t = inner_.now();
  if (crashed(from, t)) {
    // The sender itself is dark: nothing leaves the node. The return value
    // is moot (the node is "dead"), report success so a simulated zombie
    // doesn't fast-path its own retries.
    faults_crashed().add();
    return true;
  }
  if (crashed(to, t)) {
    // Dead peer: a real transport sees the refused connect, so the drop is
    // known at send time.
    faults_crashed().add();
    return false;
  }
  if (partitioned(from, to, t)) {
    // Partitions drop silently: both ends are alive, the path is gone.
    faults_partitioned().add();
    return true;
  }

  const LinkFaults& f = faults_for(from, to);
  const std::uint64_t attempt =
      attempts_[{from, to, type, digest_bytes(payload)}]++;
  if (f.drop_rate > 0 &&
      draw(from, to, type, attempt, kKindDrop) < f.drop_rate) {
    faults_dropped().add();
    return true;  // silent loss
  }
  if (f.reset_rate > 0 &&
      draw(from, to, type, attempt, kKindReset) < f.reset_rate) {
    faults_reset().add();
    return false;  // connection reset: the sender observes the failure
  }
  if (f.delay_rate > 0 &&
      draw(from, to, type, attempt, kKindDelay) < f.delay_rate) {
    // Hold the frame back on a timer; the delayed leg re-enters the inner
    // transport directly (one fate decision per send).
    faults_delayed().add();
    auto armed = std::make_shared<TimerId>(0);
    const TimerId id = inner_.set_timer(
        f.delay, [this, armed, from, to, type, p = std::move(payload)]() {
          delay_timers_.erase(*armed);
          inner_.send(from, to, type, p);
        });
    *armed = id;
    delay_timers_.insert(id);
    return true;
  }
  if (f.duplicate_rate > 0 &&
      draw(from, to, type, attempt, kKindDuplicate) <
          f.duplicate_rate) {
    faults_duplicated().add();
    inner_.send(from, to, type, payload);
  }
  return inner_.send(from, to, type, std::move(payload));
}

}  // namespace desword::net
