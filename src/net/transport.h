// Transport abstraction decoupling the protocol layer from its message
// substrate.
//
// The DE-Sword proxy and participants are distributed backend servers
// (§II-C). The protocol endpoints (`protocol::Proxy`, `protocol::
// Participant`) are written against this interface only, so the same state
// machines run over:
//
//   * `SimTransport`  — the in-process simulated `Network` (deterministic,
//     fault-injecting; what every test and the `Scenario` harness uses);
//   * `SocketTransport` — a poll(2)-based TCP event loop with
//     length-prefixed envelope framing (see net/wire.h), letting a proxy
//     and N participants run as separate OS processes.
//
// Endpoints are event driven: they react to delivered envelopes and to
// timers. Timers are the only way an endpoint regains control without a
// message (retransmission, give-up timeouts) — there is no global "scan
// for stalled work" primitive, because one cannot exist outside a
// simulator.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/error.h"
#include "net/network.h"

namespace desword::net {

class Transport {
 public:
  using TimerId = std::uint64_t;
  using TimerFn = std::function<void()>;

  virtual ~Transport() = default;

  /// Registers the handler for envelopes addressed to `id`. Throws
  /// ProtocolError on duplicates.
  virtual void register_node(const NodeId& id, Handler handler) = 0;
  virtual void unregister_node(const NodeId& id) = 0;
  virtual bool has_node(const NodeId& id) const = 0;

  /// Queues a message for delivery. Never throws on an unreachable or
  /// unknown recipient — the message is dropped and counted, and the
  /// sender's timer/retransmission path recovers. Returns false when the
  /// transport KNOWS at send time that the message cannot reach the peer
  /// (unknown/deregistered node, synchronously refused connect, crash
  /// window): the sender may charge a retry immediately instead of waiting
  /// a full retransmission timeout. Returns true otherwise — including
  /// silent in-flight losses (lossy links, partitions), which only the
  /// timeout can detect.
  virtual bool send(const NodeId& from, const NodeId& to,
                    const std::string& type, Bytes payload) = 0;

  /// Transport clock. Simulated ticks for SimTransport, milliseconds since
  /// transport start for SocketTransport. Timer delays use the same unit.
  virtual std::uint64_t now() const = 0;

  /// Arms a one-shot timer firing `delay` clock units from now. The
  /// returned id can cancel it; ids are never reused.
  virtual TimerId set_timer(std::uint64_t delay, TimerFn fn) = 0;
  /// Cancels a pending timer; unknown / already-fired ids are a no-op.
  virtual void cancel_timer(TimerId id) = 0;
  /// Timers armed but not yet fired (pump-stall diagnostics).
  virtual std::size_t pending_timers() const = 0;

  /// Hands a closure from an executor worker back to the event loop: it
  /// runs on the loop thread during a subsequent poll(). The only
  /// thread-safe Transport entry point; it wakes a poll() blocked in
  /// timeout_ms.
  virtual void post(std::function<void()> fn) = 0;

  /// Off-loop work accounting bracket. While at least one add_work() is
  /// unbalanced, a completion is still owed to the loop, so the simulator
  /// must not declare quiescence (fire stall-scan timers) and poll() may
  /// block briefly waiting for the post(). Real-time transports need no
  /// such bracket — their timers have genuine deadlines — so the default
  /// is a no-op. Call add_work() on the loop thread before dispatching;
  /// the posted completion calls remove_work().
  virtual void add_work() {}
  virtual void remove_work() {}

  /// Processes pending transport work: delivers queued/readable envelopes
  /// to handlers and fires due timers. `timeout_ms` bounds how long a
  /// real-time transport may block waiting for events (ignored by the
  /// simulator). Returns the number of events processed (envelope
  /// deliveries + timer firings); 0 means the transport is idle.
  virtual std::size_t poll(int timeout_ms = 0) = 0;

  /// Per-link traffic counters (sent/dropped/bytes), keyed like the
  /// simulator's.
  virtual const LinkStats& stats(const NodeId& from, const NodeId& to)
      const = 0;
  virtual LinkStats total_stats() const = 0;

  // --- loop-thread affinity ---------------------------------------------
  //
  // Every Transport member except post() is loop-thread-only (DESIGN.md
  // §9/§10). The loop thread is tagged lazily: the first poll() binds the
  // calling thread as *the* loop thread, and `DESWORD_DCHECK_ON_LOOP`
  // assertions in the protocol handlers verify all later loop-only entry
  // points run on it. Before any poll() the transport is considered
  // unbound and every thread passes — setup (register_node, initial sends)
  // legitimately happens before the loop starts.

  /// True iff the calling thread is the bound loop thread, or no thread
  /// has been bound yet. Debug-assertion predicate, not a synchronization
  /// primitive.
  bool on_loop_thread() const {
    const std::size_t bound = loop_thread_hash_.load(std::memory_order_relaxed);
    return bound == 0 ||
           bound == std::hash<std::thread::id>{}(std::this_thread::get_id());
  }

 protected:
  /// Binds the calling thread as the loop thread (first caller wins;
  /// poll() implementations call this at entry, so re-binding from the
  /// same thread is the common no-op case).
  void bind_loop_thread() const {
    std::size_t expected = 0;
    loop_thread_hash_.compare_exchange_strong(
        expected, std::hash<std::thread::id>{}(std::this_thread::get_id()),
        std::memory_order_relaxed);
  }

 private:
  // 0 = unbound. Hash of std::thread::id (not the id itself) so the slot
  // is a lock-free atomic; a colliding hash could only ever weaken the
  // debug assertion, never break the transport.
  mutable std::atomic<std::size_t> loop_thread_hash_{0};
};

/// Debug-only loop-affinity assertion: fails (throws CheckError, like any
/// DESWORD_DCHECK) when executed off the transport's bound loop thread.
/// Compiled out under NDEBUG. Place at the top of loop-only entry points —
/// protocol handlers, timer callbacks, posted continuations.
#define DESWORD_DCHECK_ON_LOOP(transport)         \
  DESWORD_DCHECK((transport).on_loop_thread(),    \
                 "loop-affinity violation: running off the loop thread")

/// Adapter running the protocol over the in-process simulated `Network`,
/// byte-for-byte compatible with driving the `Network` directly (same
/// envelopes, same LinkStats accounting).
///
/// Timer semantics follow discrete-event simulation: while messages are in
/// flight the clock only advances through deliveries; once the queue is
/// fully drained nothing can preempt a pending timer anymore, so `poll()`
/// fires pending timers (in arming order) — but only while the network
/// stays quiescent. The moment a timer callback queues traffic, the round
/// ends: the remaining timers are no longer "due before anything else",
/// because the new in-flight messages would be delivered first in real
/// event order. Callbacks may also re-arm themselves or cancel sibling
/// timers mid-round; both are honored (a cancelled sibling never fires).
/// This reproduces exactly the retransmit-all-stalled-sessions rounds of
/// the historical `Proxy::pump()` stall scan.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Network& network) : network_(network) {}

  void register_node(const NodeId& id, Handler handler) override {
    network_.register_node(id, std::move(handler));
  }
  void unregister_node(const NodeId& id) override {
    network_.unregister_node(id);
  }
  bool has_node(const NodeId& id) const override {
    return network_.has_node(id);
  }

  bool send(const NodeId& from, const NodeId& to, const std::string& type,
            Bytes payload) override {
    return network_.send(from, to, type, std::move(payload));
  }

  std::uint64_t now() const override { return network_.now(); }

  TimerId set_timer(std::uint64_t delay, TimerFn fn) override;
  void cancel_timer(TimerId id) override;
  std::size_t pending_timers() const override { return timers_.size(); }

  void post(std::function<void()> fn) override {
    network_.post(std::move(fn));
  }
  void add_work() override { network_.add_work(); }
  void remove_work() override { network_.remove_work(); }

  std::size_t poll(int timeout_ms = 0) override;

  const LinkStats& stats(const NodeId& from, const NodeId& to) const override {
    return network_.stats(from, to);
  }
  LinkStats total_stats() const override { return network_.total_stats(); }

  Network& network() { return network_; }

 private:
  struct Timer {
    std::uint64_t deadline = 0;
    TimerFn fn;
  };

  Network& network_;
  TimerId next_timer_id_ = 1;
  std::map<TimerId, Timer> timers_;  // keyed by id == arming order
};

}  // namespace desword::net
