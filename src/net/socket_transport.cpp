#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace desword::net {

namespace {

obs::Counter& frames_sent() {
  static obs::Counter& c = obs::metric("net.frame.sent");
  return c;
}

obs::Counter& frames_received() {
  static obs::Counter& c = obs::metric("net.frame.received");
  return c;
}

obs::Counter& frames_dropped() {
  static obs::Counter& c = obs::metric("net.frame.dropped");
  return c;
}

obs::Counter& link_stats_evictions() {
  static obs::Counter& c = obs::metric("net.link_stats.evictions");
  return c;
}

obs::Counter& timers_armed() {
  static obs::Counter& c = obs::metric("net.timer.armed");
  return c;
}

obs::Counter& timers_cancelled() {
  static obs::Counter& c = obs::metric("net.timer.cancelled");
  return c;
}

obs::Counter& timers_fired() {
  static obs::Counter& c = obs::metric("net.timer.fired");
  return c;
}

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw ProtocolError("fcntl(O_NONBLOCK) failed");
  }
}

/// Parses "host:port" into a IPv4 sockaddr. Returns false on bad input.
bool parse_address(const std::string& address, sockaddr_in& out) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string host = address.substr(0, colon);
  const int port = std::atoi(address.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return false;
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(static_cast<std::uint16_t>(port));
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions options)
    : options_(std::move(options)), epoch_ns_(steady_ns()) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw ProtocolError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw ProtocolError("bad bind host: " + options_.bind_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    throw ProtocolError("bind/listen on " + options_.bind_host + ":" +
                        std::to_string(options_.port) + " failed: " +
                        std::strerror(errno));
  }
  set_nonblocking(listen_fd_);
  if (::pipe(wake_pipe_) < 0) {
    ::close(listen_fd_);
    throw ProtocolError("pipe() for post() wakeup failed");
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
  local_address_ =
      std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
}

SocketTransport::~SocketTransport() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void SocketTransport::post(std::function<void()> fn) {
  if (!fn) return;
  {
    MutexLock lk(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  // A full pipe (EAGAIN) is fine: a wakeup byte is already pending.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

std::size_t SocketTransport::run_posted() {
  std::size_t ran = 0;
  for (;;) {
    std::deque<std::function<void()>> batch;
    {
      MutexLock lk(posted_mu_);
      if (posted_.empty()) return ran;
      batch.swap(posted_);
    }
    for (auto& fn : batch) {
      fn();
      ++ran;
    }
  }
}

void SocketTransport::register_node(const NodeId& id, Handler handler) {
  if (id.empty()) throw ProtocolError("node id must be non-empty");
  if (!handler) throw ProtocolError("node handler must be callable");
  if (!handlers_.emplace(id, std::move(handler)).second) {
    throw ProtocolError("duplicate node id: " + id);
  }
}

void SocketTransport::unregister_node(const NodeId& id) {
  if (handlers_.erase(id) == 0) {
    throw ProtocolError("unknown node id: " + id);
  }
}

bool SocketTransport::has_node(const NodeId& id) const {
  return handlers_.find(id) != handlers_.end();
}

std::uint64_t SocketTransport::now() const {
  return (steady_ns() - epoch_ns_) / 1000000u;
}

Transport::TimerId SocketTransport::set_timer(std::uint64_t delay_ms,
                                              TimerFn fn) {
  if (!fn) throw ProtocolError("timer callback must be callable");
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{now() + delay_ms, std::move(fn)});
  timers_armed().add();
  return id;
}

void SocketTransport::cancel_timer(TimerId id) {
  if (timers_.erase(id) > 0) timers_cancelled().add();
}

LinkStats& SocketTransport::touch_stats(const LinkKey& key) const {
  const auto it = stats_.find(key);
  if (it != stats_.end()) {
    stats_lru_.splice(stats_lru_.begin(), stats_lru_, it->second.pos);
    return it->second.stats;
  }
  if (options_.max_tracked_links > 0 &&
      stats_.size() >= options_.max_tracked_links) {
    const auto victim = stats_.find(stats_lru_.back());
    DESWORD_CHECK(victim != stats_.end(), "link-stats LRU out of sync");
    const LinkStats& s = victim->second.stats;
    evicted_total_.messages_sent += s.messages_sent;
    evicted_total_.messages_dropped += s.messages_dropped;
    evicted_total_.messages_duplicated += s.messages_duplicated;
    evicted_total_.bytes_sent += s.bytes_sent;
    stats_.erase(victim);
    stats_lru_.pop_back();
    link_stats_evictions().add();
  }
  stats_lru_.push_front(key);
  const auto [ins, inserted] =
      stats_.emplace(key, TrackedLink{LinkStats{}, stats_lru_.begin()});
  DESWORD_CHECK(inserted, "link-stats entry resurrected during insert");
  return ins->second.stats;
}

void SocketTransport::learn_peer(const NodeId& peer, int fd) {
  if (peer.empty()) return;
  const auto it = peer_connections_.find(peer);
  if (it != peer_connections_.end() && it->second == fd) return;
  peer_connections_[peer] = fd;
  const auto conn = connections_.find(fd);
  if (conn != connections_.end() && conn->second.peer.empty()) {
    conn->second.peer = peer;
  }
}

SocketTransport::Connection* SocketTransport::connection_for(
    const NodeId& to) {
  const auto known = peer_connections_.find(to);
  if (known != peer_connections_.end()) {
    const auto it = connections_.find(known->second);
    if (it != connections_.end()) return &it->second;
    peer_connections_.erase(known);
  }
  if (!options_.resolve) return nullptr;
  const std::optional<std::string> address = options_.resolve(to);
  if (!address.has_value()) return nullptr;
  sockaddr_in addr{};
  if (!parse_address(*address, addr)) return nullptr;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return nullptr;
  }
  Connection conn;
  conn.fd = fd;
  conn.connecting = rc < 0;
  conn.peer = to;
  auto [it, inserted] = connections_.emplace(fd, std::move(conn));
  DESWORD_CHECK(inserted, "connection fd already tracked");
  peer_connections_[to] = fd;
  return &it->second;
}

bool SocketTransport::send(const NodeId& from, const NodeId& to,
                           const std::string& type, Bytes payload) {
  LinkStats& stats = touch_stats({from, to});
  stats.messages_sent += 1;
  stats.bytes_sent += payload.size();
  frames_sent().add();

  Envelope env{from, to, type, std::move(payload), 0};
  if (has_node(to)) {  // loopback: deliver on the next poll
    local_queue_.push_back(std::move(env));
    return true;
  }
  Connection* conn = connection_for(to);
  if (conn == nullptr) {
    // Unresolvable peer or synchronously refused connect (on loopback a
    // connect() to a closed port fails immediately with ECONNREFUSED): the
    // drop is *known* at send time, so report it — the caller may charge a
    // retry right away instead of waiting out a retransmission timeout.
    stats.messages_dropped += 1;
    frames_dropped().add();
    return false;
  }
  const Bytes frame = encode_frame(env);
  conn->outbuf.insert(conn->outbuf.end(), frame.begin(), frame.end());
  if (!conn->connecting) flush_output(*conn);  // opportunistic write
  return true;
}

void SocketTransport::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (!it->second.peer.empty()) {
    const auto peer = peer_connections_.find(it->second.peer);
    if (peer != peer_connections_.end() && peer->second == fd) {
      peer_connections_.erase(peer);
    }
  }
  ::close(fd);
  connections_.erase(it);
}

std::size_t SocketTransport::drain_input(Connection& conn) {
  std::size_t delivered = 0;
  std::size_t consumed = 0;
  try {
    while (true) {
      const std::optional<Envelope> env =
          try_decode_frame(conn.inbuf, consumed);
      if (!env.has_value()) break;
      // Decoder contract: a decoded frame consumed its length prefix and at
      // most the buffered bytes, otherwise the erase below would be UB.
      DESWORD_CHECK(consumed >= 4 && consumed <= conn.inbuf.size(),
                    "frame decoder consumed out-of-range byte count");
      conn.inbuf.erase(conn.inbuf.begin(),
                       conn.inbuf.begin() +
                           static_cast<std::ptrdiff_t>(consumed));
      learn_peer(env->from, conn.fd);
      const auto handler = handlers_.find(env->to);
      if (handler != handlers_.end()) {
        Envelope delivery = *env;
        delivery.deliver_at = now();
        frames_received().add();
        handler->second(delivery);
        ++delivered;
      }
      // No handler: not addressed to this process — dropped (the sender's
      // retransmission path recovers if it mattered).
    }
  } catch (const SerializationError&) {
    // Corrupt stream (bad frame length or body): the connection is
    // unrecoverable, drop it.
    close_connection(conn.fd);
  }
  return delivered;
}

bool SocketTransport::flush_output(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(conn.outbuf.begin(),
                        conn.outbuf.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    return false;  // hard error: reaped by the next poll round
  }
  return true;
}

std::optional<std::uint64_t> SocketTransport::next_timer_deadline() const {
  std::optional<std::uint64_t> earliest;
  for (const auto& [id, timer] : timers_) {
    if (!earliest.has_value() || timer.deadline_ms < *earliest) {
      earliest = timer.deadline_ms;
    }
  }
  return earliest;
}

std::size_t SocketTransport::fire_due_timers() {
  const std::uint64_t t = now();
  std::vector<TimerId> due;
  for (const auto& [id, timer] : timers_) {
    if (timer.deadline_ms <= t) due.push_back(id);
  }
  std::size_t fired = 0;
  for (const TimerId id : due) {
    const auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled by an earlier callback
    TimerFn fn = std::move(it->second.fn);
    timers_.erase(it);
    fn();
    ++fired;
    timers_fired().add();
  }
  return fired;
}

std::size_t SocketTransport::poll(int timeout_ms) {
  bind_loop_thread();
  std::size_t events = 0;

  // Executor completions first: they were owed before anything newly
  // readable, and typically queue the sends serviced below.
  events += run_posted();

  // Loopback deliveries next: they are already due.
  while (!local_queue_.empty()) {
    Envelope env = std::move(local_queue_.front());
    local_queue_.pop_front();
    const auto handler = handlers_.find(env.to);
    if (handler != handlers_.end()) {
      env.deliver_at = now();
      frames_received().add();
      handler->second(env);
      ++events;
    }
  }
  events += fire_due_timers();

  // Cap the wait so a due timer is never delayed by a quiet socket.
  int wait_ms = events > 0 ? 0 : timeout_ms;
  if (const auto deadline = next_timer_deadline(); deadline.has_value()) {
    const std::uint64_t t = now();
    const std::uint64_t until =
        *deadline > t ? *deadline - t : 0;
    if (wait_ms < 0 || static_cast<std::uint64_t>(wait_ms) > until) {
      wait_ms = static_cast<int>(until);
    }
  }

  std::vector<pollfd> fds;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
  for (auto& [fd, conn] : connections_) {
    short interest = POLLIN;
    if (!conn.outbuf.empty() || conn.connecting) interest |= POLLOUT;
    fds.push_back(pollfd{fd, interest, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), wait_ms);
  if (ready < 0 && errno != EINTR) {
    throw ProtocolError("poll() failed");
  }

  // post() wakeup: swallow the pending bytes, then run the completions.
  if (fds[1].revents & POLLIN) {
    char buf[64];
    while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
    }
    events += run_posted();
  }

  // Accept new peers.
  if (fds[0].revents & POLLIN) {
    while (true) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Connection conn;
      conn.fd = fd;
      connections_.emplace(fd, std::move(conn));
    }
  }

  // Service connections. Handlers may add/close connections mid-loop, so
  // re-resolve every fd from the snapshot before touching it.
  for (std::size_t i = 2; i < fds.size(); ++i) {
    const auto it = connections_.find(fds[i].fd);
    if (it == connections_.end()) continue;
    Connection& conn = it->second;
    if (fds[i].revents & POLLOUT) {
      if (conn.connecting) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          close_connection(conn.fd);
          continue;
        }
        conn.connecting = false;
      }
      flush_output(conn);
    }
    if (fds[i].revents & POLLIN) {
      char buf[65536];
      while (true) {
        const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          conn.inbuf.insert(conn.inbuf.end(), buf, buf + n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // Orderly close or hard error: deliver what we have, then reap.
        events += drain_input(conn);
        close_connection(fds[i].fd);
        break;
      }
      if (connections_.find(fds[i].fd) != connections_.end()) {
        events += drain_input(conn);
      }
      continue;
    }
    if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
      close_connection(fds[i].fd);
    }
  }

  events += fire_due_timers();
  return events;
}

bool SocketTransport::flush(int timeout_ms) {
  // Negative timeout = block until drained. The old body clamped negative
  // values to 0, so the documented `-1` sentinel returned false on the
  // very first iteration with bytes still buffered.
  const bool unbounded = timeout_ms < 0;
  const std::uint64_t deadline =
      unbounded ? 0 : now() + static_cast<std::uint64_t>(timeout_ms);
  while (true) {
    bool pending = false;
    for (const auto& [fd, conn] : connections_) {
      if (!conn.outbuf.empty() || conn.connecting) pending = true;
    }
    if (!pending) return true;
    if (!unbounded && now() >= deadline) return false;
    poll(10);
  }
}

const LinkStats& SocketTransport::stats(const NodeId& from,
                                        const NodeId& to) const {
  // Lookup-only. The old body went through touch_stats(), so *reading* an
  // unknown link inserted it into the LRU and — once the table was at
  // max_tracked_links — evicted a live link's counters into the aggregate.
  // A diagnostics sweep could thus destroy exactly the per-link detail it
  // was trying to report. Observers get a canonical zero record instead.
  static const LinkStats kZero;
  const auto it = stats_.find({from, to});
  return it == stats_.end() ? kZero : it->second.stats;
}

LinkStats SocketTransport::total_stats() const {
  LinkStats total = evicted_total_;
  for (const auto& [link, tracked] : stats_) {
    const LinkStats& s = tracked.stats;
    total.messages_sent += s.messages_sent;
    total.messages_dropped += s.messages_dropped;
    total.messages_duplicated += s.messages_duplicated;
    total.bytes_sent += s.bytes_sent;
  }
  return total;
}

}  // namespace desword::net
