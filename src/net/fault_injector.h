// Deterministic fault injection as a Transport decorator.
//
// DE-Sword's incentive argument (paper §V) only holds if queries always
// terminate in a verdict: an unresponsive participant must become a
// `kNoResponse` violation, never a wedged session. Proving that requires
// injecting the faults — loss, delay, duplication, resets, partitions,
// crash windows — *deterministically*, so that a failing chaos run can be
// replayed from its seed and so that serial and concurrent query
// schedulers see the same per-message fates.
//
// `FaultInjector` wraps any `Transport` (SimTransport or SocketTransport —
// the protocol endpoints never know) and decides each outbound message's
// fate from a pure hash of (plan seed, link, type, attempt number). The
// attempt number counts identical prior sends on the same link (keyed by
// payload digest), so a retransmission of the same frame gets a fresh,
// independent draw while the *order in which different messages are sent
// does not matter* — this is what makes serial and concurrent schedulers
// agree on which messages drop. A shared sequential RNG would couple every
// message's fate to global send order and destroy that property. The draw
// itself is payload-blind on purpose: commitment/proof randomizers make
// payload bytes differ between two otherwise-identical deployments, and
// hashing them would turn "the same logical message" into independent coin
// flips per run.
//
// Time-windowed faults (partitions, crash/blackout windows) are evaluated
// against the wrapped transport's clock, so they ARE schedule-dependent on
// a simulated clock; tests pin windows to fully cover or fully precede the
// phase under test when they also assert scheduler equivalence.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "net/transport.h"

namespace desword::net {

/// Half-open activity window [from, until) on the transport clock.
/// `until == 0` means "never heals" (open-ended).
struct FaultWindow {
  std::uint64_t from = 0;
  std::uint64_t until = 0;

  bool contains(std::uint64_t t) const {
    return t >= from && (until == 0 || t < until);
  }
};

/// Per-link fault probabilities. All rates are independent Bernoulli
/// trials per message; precedence when several hit: drop > reset > delay
/// > duplicate.
struct LinkFaults {
  double drop_rate = 0.0;       // silent loss (sender sees success)
  double reset_rate = 0.0;      // connection reset: dropped, sender KNOWS
  double delay_rate = 0.0;      // held back `delay` clock units
  std::uint64_t delay = 50;     // extra delay when delay_rate hits
  double duplicate_rate = 0.0;  // delivered twice
};

/// Overrides `FaultPlan::default_faults` for a directed link. Empty
/// `from`/`to` match any node; first matching rule wins.
struct FaultRule {
  NodeId from;
  NodeId to;
  LinkFaults faults;
};

/// While the window is active, messages crossing between `group_a` and
/// `group_b` (either direction) are silently dropped. Healing is implicit
/// at `window.until`.
struct Partition {
  std::vector<NodeId> group_a;
  std::vector<NodeId> group_b;
  FaultWindow window;
};

/// While the window is active the node is dark: everything it sends and
/// everything sent to it is dropped. Sends *to* a crashed node report
/// failure (the transport knows the peer is dead — a refused connect).
struct CrashWindow {
  NodeId node;
  FaultWindow window;
};

/// A complete, seedable fault schedule. Value type: build it in a test,
/// parse it from JSON in the CLI, hand it to a FaultInjector.
struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFaults default_faults;
  std::vector<FaultRule> rules;
  std::vector<Partition> partitions;
  std::vector<CrashWindow> crashes;
};

class FaultInjector final : public Transport {
 public:
  FaultInjector(Transport& inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)) {}
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // -- Transport -----------------------------------------------------------
  void register_node(const NodeId& id, Handler handler) override {
    inner_.register_node(id, std::move(handler));
  }
  void unregister_node(const NodeId& id) override {
    inner_.unregister_node(id);
  }
  bool has_node(const NodeId& id) const override {
    return inner_.has_node(id);
  }
  bool send(const NodeId& from, const NodeId& to, const std::string& type,
            Bytes payload) override;
  std::uint64_t now() const override { return inner_.now(); }
  TimerId set_timer(std::uint64_t delay, TimerFn fn) override {
    return inner_.set_timer(delay, std::move(fn));
  }
  void cancel_timer(TimerId id) override { inner_.cancel_timer(id); }
  std::size_t pending_timers() const override {
    return inner_.pending_timers();
  }
  void post(std::function<void()> fn) override { inner_.post(std::move(fn)); }
  void add_work() override { inner_.add_work(); }
  void remove_work() override { inner_.remove_work(); }
  std::size_t poll(int timeout_ms = 0) override {
    return inner_.poll(timeout_ms);
  }
  const LinkStats& stats(const NodeId& from, const NodeId& to) const override {
    return inner_.stats(from, to);
  }
  LinkStats total_stats() const override { return inner_.total_stats(); }

  const FaultPlan& plan() const { return plan_; }
  /// Replaces the active plan. Chaos harnesses re-plan between phases —
  /// e.g. run the distribution phase clean, then black a node out for the
  /// whole query phase (an open-ended window is schedule-independent where
  /// a timed one is not). Attempt counters survive the swap so
  /// retransmission fates stay order-independent across it.
  void set_plan(FaultPlan plan) { plan_ = std::move(plan); }
  Transport& inner() { return inner_; }

 private:
  const LinkFaults& faults_for(const NodeId& from, const NodeId& to) const;
  bool crashed(const NodeId& node, std::uint64_t t) const;
  bool partitioned(const NodeId& from, const NodeId& to,
                   std::uint64_t t) const;
  /// Deterministic per-message, per-fault-kind uniform draw in [0,1).
  double draw(const NodeId& from, const NodeId& to, const std::string& type,
              std::uint64_t attempt, std::uint64_t kind) const;

  Transport& inner_;
  FaultPlan plan_;
  /// Identical prior sends per (from,to,type,payload digest): the attempt
  /// number that decorrelates retransmission fates from global send order.
  std::map<std::tuple<NodeId, NodeId, std::string, std::uint64_t>,
           std::uint64_t>
      attempts_;
  /// Timers holding delayed messages; cancelled on teardown so a delayed
  /// frame never fires into a destroyed injector.
  std::set<TimerId> delay_timers_;
};

}  // namespace desword::net
