#include "net/wire.h"

#include "common/error.h"
#include "common/serial.h"

namespace desword::net {

Bytes encode_envelope(const Envelope& env) {
  BinaryWriter w;
  w.str(env.from);
  w.str(env.to);
  w.str(env.type);
  w.bytes(env.payload);
  return w.take();
}

Envelope decode_envelope(BytesView data) {
  BinaryReader r(data);
  Envelope env;
  env.from = r.str();
  env.to = r.str();
  env.type = r.str();
  env.payload = r.bytes();
  r.expect_done();
  return env;
}

Bytes encode_frame(const Envelope& env) {
  const Bytes body = encode_envelope(env);
  DESWORD_CHECK(body.size() <= kMaxFrameBytes,
                "envelope exceeds the frame size limit");
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  Bytes out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Envelope> try_decode_frame(BytesView buffer,
                                         std::size_t& consumed) {
  consumed = 0;
  if (buffer.size() < 4) return std::nullopt;
  BinaryReader r(buffer.subspan(0, 4));
  const std::uint32_t len = r.u32();
  if (len > kMaxFrameBytes) {
    throw SerializationError("frame length " + std::to_string(len) +
                             " exceeds limit");
  }
  // size_t arithmetic: a hostile 32-bit length prefix must not be able to
  // wrap the comparison below.
  const std::size_t frame_len = static_cast<std::size_t>(len) + 4;
  if (buffer.size() < frame_len) return std::nullopt;
  Envelope env = decode_envelope(buffer.subspan(4, len));
  consumed = frame_len;
  return env;
}

}  // namespace desword::net
