#include "net/wire.h"

#include "common/error.h"
#include "common/serial.h"

namespace desword::net {

Bytes encode_envelope(const Envelope& env) {
  BinaryWriter w;
  w.str(env.from);
  w.str(env.to);
  w.str(env.type);
  w.bytes(env.payload);
  return w.take();
}

Envelope decode_envelope(BytesView data) {
  BinaryReader r(data);
  Envelope env;
  env.from = r.str();
  env.to = r.str();
  env.type = r.str();
  env.payload = r.bytes();
  r.expect_done();
  return env;
}

Bytes encode_frame(const Envelope& env) {
  const Bytes body = encode_envelope(env);
  BinaryWriter w;
  w.u32(static_cast<std::uint32_t>(body.size()));
  Bytes out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<Envelope> try_decode_frame(BytesView buffer,
                                         std::size_t& consumed) {
  consumed = 0;
  if (buffer.size() < 4) return std::nullopt;
  BinaryReader r(buffer.subspan(0, 4));
  const std::uint32_t len = r.u32();
  if (len > kMaxFrameBytes) {
    throw SerializationError("frame length " + std::to_string(len) +
                             " exceeds limit");
  }
  if (buffer.size() < 4u + len) return std::nullopt;
  Envelope env = decode_envelope(buffer.subspan(4, len));
  consumed = 4u + len;
  return env;
}

}  // namespace desword::net
