// Real TCP transport: a poll(2)-based, single-threaded event loop speaking
// the length-prefixed envelope framing of net/wire.h.
//
// One SocketTransport is one process's network endpoint. It owns a
// listening socket (ephemeral port by default) plus one non-blocking
// connection per peer. Outbound peers are resolved lazily through a
// caller-supplied resolver (NodeId -> "host:port"); inbound peers are
// learned from the `from` field of the frames they send, so a reply can
// travel back over the connection the request arrived on — clients
// therefore never need a resolvable address.
//
// Delivery semantics match the simulator's lossy defaults: an unreachable
// or unresolvable peer silently drops the message (counted in LinkStats)
// and the sender's retransmission timers recover — TCP only makes the
// in-connection stream reliable, not the peer available.
//
// Single-threaded by design: handlers and timer callbacks run inside
// `poll()` on the calling thread; `send()` from handler context queues
// into per-connection write buffers that `poll()` flushes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "net/transport.h"

namespace desword::net {

struct SocketTransportOptions {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned ephemeral port
  /// Maps a peer node id to "host:port". Return nullopt when unknown (the
  /// message is dropped). Called lazily, at most once per successful
  /// connection per peer.
  std::function<std::optional<std::string>(const NodeId&)> resolve;
  /// Per-link stats entries kept before the least-recently-touched one is
  /// folded into the aggregate (`total_stats()` stays exact; per-link
  /// detail for the evicted pair is lost). 0 = unbounded. Bounds memory
  /// against churning peer ids (e.g. one client id per query process).
  std::size_t max_tracked_links = 1024;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// "host:port" actually bound (port resolved when options.port was 0).
  const std::string& local_address() const { return local_address_; }

  // -- Transport -----------------------------------------------------------
  void register_node(const NodeId& id, Handler handler) override;
  void unregister_node(const NodeId& id) override;
  bool has_node(const NodeId& id) const override;
  bool send(const NodeId& from, const NodeId& to, const std::string& type,
            Bytes payload) override;
  std::uint64_t now() const override;  // ms since transport construction
  TimerId set_timer(std::uint64_t delay_ms, TimerFn fn) override;
  void cancel_timer(TimerId id) override;
  std::size_t pending_timers() const override { return timers_.size(); }
  /// Thread safe. A self-pipe byte wakes a poll() blocked in ::poll(2), so
  /// executor completions re-enter the loop without waiting out the
  /// timeout. No add_work() bracket needed: timers here have real
  /// deadlines, so an in-flight job never triggers a spurious stall scan.
  void post(std::function<void()> fn) override DESWORD_EXCLUDES(posted_mu_);
  std::size_t poll(int timeout_ms = 0) override;
  /// Lookup-only: reading an unknown link returns a canonical zero record
  /// without inserting into (or re-ordering) the LRU — an observer must
  /// never evict a live link's counters.
  const LinkStats& stats(const NodeId& from, const NodeId& to) const override;
  LinkStats total_stats() const override;

  /// Polls until every connection's write buffer drained or `timeout_ms`
  /// elapsed. Returns true when fully flushed. A negative timeout blocks
  /// until drained (connections that die while flushing are closed and
  /// their buffers discarded, so the wait always terminates).
  bool flush(int timeout_ms);

 private:
  struct Connection {
    int fd = -1;
    bool connecting = false;  // non-blocking connect() in flight
    Bytes inbuf;
    Bytes outbuf;
    NodeId peer;  // learned from inbound frames or set at connect time
  };

  int listen_fd_ = -1;
  std::string local_address_;
  SocketTransportOptions options_;
  std::uint64_t epoch_ns_ = 0;  // steady-clock origin

  // Self-pipe wakeup for post(): workers write one byte, the loop's
  // ::poll(2) wakes on the read end and drains posted_ closures.
  int wake_pipe_[2] = {-1, -1};
  mutable Mutex posted_mu_;
  std::deque<std::function<void()>> posted_ DESWORD_GUARDED_BY(posted_mu_);
  std::size_t run_posted() DESWORD_EXCLUDES(posted_mu_);

  std::map<NodeId, Handler> handlers_;
  std::map<int, Connection> connections_;        // fd -> connection
  std::map<NodeId, int> peer_connections_;       // peer id -> fd
  std::deque<Envelope> local_queue_;             // loopback deliveries

  TimerId next_timer_id_ = 1;
  struct Timer {
    std::uint64_t deadline_ms = 0;
    TimerFn fn;
  };
  std::map<TimerId, Timer> timers_;

  // Link stats live in an LRU-capped map (see
  // SocketTransportOptions::max_tracked_links). `stats_lru_` orders keys
  // most-recently-touched first; each entry holds its own list position so
  // a touch is O(1). Evicted entries are folded into `evicted_total_`.
  using LinkKey = std::pair<NodeId, NodeId>;
  struct TrackedLink {
    LinkStats stats;
    std::list<LinkKey>::iterator pos;
  };
  mutable std::map<LinkKey, TrackedLink> stats_;
  mutable std::list<LinkKey> stats_lru_;
  mutable LinkStats evicted_total_;

  LinkStats& touch_stats(const LinkKey& key) const;
  Connection* connection_for(const NodeId& to);
  void learn_peer(const NodeId& peer, int fd);
  void close_connection(int fd);
  std::size_t drain_input(Connection& conn);
  bool flush_output(Connection& conn);
  std::size_t fire_due_timers();
  std::optional<std::uint64_t> next_timer_deadline() const;
};

}  // namespace desword::net
