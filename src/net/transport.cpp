#include "net/transport.h"

#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

namespace desword::net {

namespace {

obs::Counter& timers_armed() {
  static obs::Counter& c = obs::metric("net.timer.armed");
  return c;
}

obs::Counter& timers_cancelled() {
  static obs::Counter& c = obs::metric("net.timer.cancelled");
  return c;
}

obs::Counter& timers_fired() {
  static obs::Counter& c = obs::metric("net.timer.fired");
  return c;
}

// Upper bound on how long an otherwise-idle poll() blocks for an owed
// executor completion when the caller gave no timeout. The condition
// variable wakes the instant the completion posts, so this only bounds
// pathological cases (a wedged worker).
constexpr int kWorkWaitMs = 200;

}  // namespace

Transport::TimerId SimTransport::set_timer(std::uint64_t delay, TimerFn fn) {
  if (!fn) throw ProtocolError("timer callback must be callable");
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{network_.now() + delay, std::move(fn)});
  timers_armed().add();
  return id;
}

void SimTransport::cancel_timer(TimerId id) {
  if (timers_.erase(id) > 0) timers_cancelled().add();
}

std::size_t SimTransport::poll(int timeout_ms) {
  bind_loop_thread();
  // Executor completions first: they typically send() responses the
  // subsequent network_.run() then delivers within the same round.
  std::size_t events = network_.run_posted();
  events += network_.run();
  if (events > 0) return events;
  if (network_.work_pending() > 0) {
    // Off-loop crypto is still running: the network only *looks* drained —
    // a completion is owed, so this is not quiescence and timers must hold
    // their fire (a stall-scan round here would burn the retransmission
    // budget against a prover that is merely busy, not silent). Block for
    // the completion instead of busy-spinning the pump.
    network_.wait_posted(timeout_ms > 0 ? timeout_ms : kWorkWaitMs);
    events = network_.run_posted();
    events += network_.run();
    return events;
  }
  if (timers_.empty()) return 0;
  // Queue drained: every pending timer is due before anything else can
  // happen. Snapshot the pending set — callbacks may arm new timers (e.g.
  // a retransmission re-arming itself) and those must wait for the next
  // quiescent point, exactly like a fresh stall-scan round.
  std::vector<TimerId> due;
  due.reserve(timers_.size());
  for (const auto& [id, timer] : timers_) due.push_back(id);
  std::size_t fired = 0;
  for (const TimerId id : due) {
    const auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled by an earlier callback
    TimerFn fn = std::move(it->second.fn);
    timers_.erase(it);
    fn();
    ++fired;
    timers_fired().add();
    // The callback queued traffic: the network is no longer quiescent, so
    // the rest of the snapshot is NOT "due before anything else" anymore —
    // deliveries preempt them. End the round; they fire (or get cancelled
    // by whatever the deliveries trigger) at the next quiescent point.
    if (network_.pending() > 0) break;
  }
  return fired;
}

}  // namespace desword::net
