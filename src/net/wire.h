// Canonical wire format for protocol envelopes.
//
// A framed envelope is what travels over a real byte stream (TCP):
//
//   frame    := u32_be total_len | envelope          (len of envelope only)
//   envelope := str from | str to | str type | bytes payload
//
// using the repo-wide binary conventions of common/serial.h (big-endian
// fixed ints, LEB128 varints, varint-length-prefixed strings/bytes).
// `SocketTransport` speaks this format on the wire; `SimTransport` carries
// the same `Envelope` fields in process (its byte accounting counts the
// logical `payload` only, matching the original simulator). See
// PROTOCOL.md "Wire format".
#pragma once

#include <cstddef>
#include <optional>

#include "net/network.h"

namespace desword::net {

/// Frames larger than this are treated as protocol violations and the
/// connection carrying them is dropped (guards against hostile or corrupt
/// length prefixes allocating unbounded memory).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// Serializes the envelope body (no length prefix).
Bytes encode_envelope(const Envelope& env);

/// Parses an envelope body. Throws SerializationError on malformed input
/// (including trailing bytes).
Envelope decode_envelope(BytesView data);

/// Serializes a complete frame: u32_be length prefix + envelope body.
Bytes encode_frame(const Envelope& env);

/// Attempts to cut one frame off the front of a receive buffer.
/// Returns the decoded envelope and sets `consumed` to the number of
/// buffer bytes to discard, or nullopt when the buffer does not yet hold a
/// complete frame (`consumed` is 0 then). Throws SerializationError on a
/// malformed body or an oversized length prefix.
std::optional<Envelope> try_decode_frame(BytesView buffer,
                                         std::size_t& consumed);

}  // namespace desword::net
