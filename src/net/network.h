// In-process simulated network.
//
// DE-Sword is a distributed protocol between the proxy and participant
// backend servers. This module gives the protocol layer a realistic
// message-passing substrate without sockets: named endpoints exchange
// serialized envelopes through a central `Network` that models per-link
// latency, message drops, and byte accounting. Byte counters back the
// communication-overhead numbers of Table II; fault injection exercises
// the protocol's abort paths.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/rng.h"

namespace desword::net {

using NodeId = std::string;

struct Envelope {
  NodeId from;
  NodeId to;
  std::string type;  // protocol message type tag
  Bytes payload;
  std::uint64_t deliver_at = 0;  // simulated time
};

struct LinkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t bytes_sent = 0;
};

/// Per-link fault/latency model.
struct LinkPolicy {
  std::uint64_t latency = 1;       // simulated ticks
  double drop_rate = 0.0;          // probability a message is lost
  double duplicate_rate = 0.0;     // probability a message is delivered twice
  std::uint64_t jitter = 0;        // extra random delay in [0, jitter]
                                   // (jitter reorders messages)
};

/// A handler consumes a delivered envelope and may send replies.
using Handler = std::function<void(const Envelope&)>;

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed) {}

  /// Registers an endpoint. Throws ProtocolError on duplicates.
  void register_node(const NodeId& id, Handler handler);
  void unregister_node(const NodeId& id);
  bool has_node(const NodeId& id) const;

  /// Sets the policy for the directed link from->to (default policy
  /// otherwise).
  void set_link_policy(const NodeId& from, const NodeId& to,
                       LinkPolicy policy);
  void set_default_policy(LinkPolicy policy) { default_policy_ = policy; }

  /// Queues a message. Sending to an unknown (crashed / deregistered)
  /// recipient drops the message, counts it in
  /// `LinkStats::messages_dropped`, and returns false — it never throws,
  /// so a dead peer cannot kill the sender, but the sender learns the peer
  /// is known-dead and may charge a retry immediately. Lossy-link drops
  /// are decided at send time per link policy and return true (the loss is
  /// silent, only a timeout can observe it).
  bool send(const NodeId& from, const NodeId& to, const std::string& type,
            Bytes payload);

  /// Delivers queued messages (in deliver_at, then FIFO order) until the
  /// queue drains or `max_steps` deliveries happened. Returns deliveries.
  std::size_t run(std::size_t max_steps = SIZE_MAX);

  /// Simulated clock (advances as messages deliver).
  std::uint64_t now() const { return now_; }

  std::size_t pending() const { return queue_.size(); }

  // --- loop re-entry for off-loop (executor) work -----------------------
  //
  // Everything above is loop-thread-only, like the protocol handlers. The
  // four members below are the one thread-safe seam: executor workers hand
  // finished crypto back to the event loop by post()ing a completion
  // closure, and the loop thread drains them inside SimTransport::poll().
  // With several SimTransports sharing one Network, all of them are polled
  // by the same loop thread, so completions always run on that thread no
  // matter whose poll() drains them.

  /// Enqueues a loop-thread continuation. Thread safe; wakes wait_posted().
  void post(std::function<void()> fn) DESWORD_EXCLUDES(posted_mu_);
  /// Runs every queued continuation (loop thread only). Returns how many.
  std::size_t run_posted() DESWORD_EXCLUDES(posted_mu_);
  /// Blocks until a continuation is queued or `timeout_ms` elapsed.
  /// Returns true when one is pending.
  bool wait_posted(int timeout_ms) DESWORD_EXCLUDES(posted_mu_);
  std::size_t posted_pending() const DESWORD_EXCLUDES(posted_mu_);

  /// Off-loop work accounting: while `work_pending() > 0` the network is
  /// NOT quiescent even with an empty message queue — a completion is
  /// still coming — so SimTransport must keep timers holstered instead of
  /// firing a stall-scan round. Dispatchers add_work() before handing a
  /// job to the executor; the posted completion remove_work()s.
  void add_work() DESWORD_EXCLUDES(posted_mu_);
  void remove_work() DESWORD_EXCLUDES(posted_mu_);
  std::size_t work_pending() const DESWORD_EXCLUDES(posted_mu_);

  /// Counters for the directed link from->to. Reading an unknown link
  /// returns a canonical all-zero record WITHOUT materializing an entry —
  /// observation must not mutate the table (loop thread only, like every
  /// other non-post member).
  const LinkStats& stats(const NodeId& from, const NodeId& to) const;
  LinkStats total_stats() const;
  void reset_stats() { stats_.clear(); }

 private:
  const LinkPolicy& policy_for(const NodeId& from, const NodeId& to) const;

  // Thread-safe seam (workers + loop thread); everything else loop-only.
  mutable Mutex posted_mu_;
  CondVar posted_cv_;
  std::deque<std::function<void()>> posted_ DESWORD_GUARDED_BY(posted_mu_);
  std::size_t work_pending_ DESWORD_GUARDED_BY(posted_mu_) = 0;

  SimRng rng_;
  std::uint64_t now_ = 0;
  LinkPolicy default_policy_;
  std::map<NodeId, Handler> nodes_;
  std::map<std::pair<NodeId, NodeId>, LinkPolicy> policies_;
  std::map<std::pair<NodeId, NodeId>, LinkStats> stats_;
  std::deque<Envelope> queue_;
};

}  // namespace desword::net
