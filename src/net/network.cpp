#include "net/network.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "obs/metrics.h"

namespace desword::net {

namespace {

obs::Counter& frames_sent() {
  static obs::Counter& c = obs::metric("net.frame.sent");
  return c;
}

obs::Counter& frames_received() {
  static obs::Counter& c = obs::metric("net.frame.received");
  return c;
}

obs::Counter& frames_dropped() {
  static obs::Counter& c = obs::metric("net.frame.dropped");
  return c;
}

}  // namespace

void Network::register_node(const NodeId& id, Handler handler) {
  if (id.empty()) throw ProtocolError("node id must be non-empty");
  if (!handler) throw ProtocolError("node handler must be callable");
  if (!nodes_.emplace(id, std::move(handler)).second) {
    throw ProtocolError("duplicate node id: " + id);
  }
}

void Network::unregister_node(const NodeId& id) {
  if (nodes_.erase(id) == 0) {
    throw ProtocolError("unknown node id: " + id);
  }
}

bool Network::has_node(const NodeId& id) const {
  return nodes_.find(id) != nodes_.end();
}

void Network::set_link_policy(const NodeId& from, const NodeId& to,
                              LinkPolicy policy) {
  policies_[{from, to}] = policy;
}

const LinkPolicy& Network::policy_for(const NodeId& from,
                                      const NodeId& to) const {
  const auto it = policies_.find({from, to});
  return it == policies_.end() ? default_policy_ : it->second;
}

bool Network::send(const NodeId& from, const NodeId& to,
                   const std::string& type, Bytes payload) {
  const LinkPolicy& policy = policy_for(from, to);
  LinkStats& stats = stats_[{from, to}];
  stats.messages_sent += 1;
  stats.bytes_sent += payload.size();
  frames_sent().add();
  if (!has_node(to)) {
    // A crashed or deregistered peer must not take the *sender* down: the
    // message is dropped and counted, and the sender's retransmission /
    // no-response path deals with the silence. Returning false tells the
    // sender the drop is *known* so a retry can be charged immediately.
    stats.messages_dropped += 1;
    frames_dropped().add();
    return false;
  }
  if (rng_.chance(policy.drop_rate)) {
    stats.messages_dropped += 1;
    frames_dropped().add();
    return true;  // silent in-flight loss: the sender cannot know
  }
  const auto deliver_at = [&] {
    std::uint64_t at = now_ + policy.latency;
    if (policy.jitter > 0) at += rng_.below(policy.jitter + 1);
    return at;
  };
  if (rng_.chance(policy.duplicate_rate)) {
    stats.messages_duplicated += 1;
    queue_.push_back(Envelope{from, to, type, payload, deliver_at()});
  }
  queue_.push_back(
      Envelope{from, to, type, std::move(payload), deliver_at()});
  return true;
}

std::size_t Network::run(std::size_t max_steps) {
  std::size_t delivered = 0;
  while (!queue_.empty() && delivered < max_steps) {
    // Deliver the earliest message (stable for equal timestamps).
    auto it = std::min_element(queue_.begin(), queue_.end(),
                               [](const Envelope& a, const Envelope& b) {
                                 return a.deliver_at < b.deliver_at;
                               });
    Envelope env = std::move(*it);
    queue_.erase(it);
    now_ = std::max(now_, env.deliver_at);
    const auto node = nodes_.find(env.to);
    if (node == nodes_.end()) continue;  // receiver left: message lost
    frames_received().add();
    node->second(env);
    ++delivered;
  }
  return delivered;
}

void Network::post(std::function<void()> fn) {
  if (!fn) return;
  {
    MutexLock lk(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  posted_cv_.notify_all();
}

std::size_t Network::run_posted() {
  std::size_t ran = 0;
  for (;;) {
    std::deque<std::function<void()>> batch;
    {
      MutexLock lk(posted_mu_);
      if (posted_.empty()) return ran;
      batch.swap(posted_);
    }
    for (auto& fn : batch) {
      fn();
      ++ran;
    }
  }
}

bool Network::wait_posted(int timeout_ms) {
  MutexLock lk(posted_mu_);
  if (timeout_ms <= 0) return !posted_.empty();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (posted_.empty()) {
    if (!posted_cv_.wait_until(lk, deadline)) break;  // timed out
  }
  return !posted_.empty();
}

std::size_t Network::posted_pending() const {
  MutexLock lk(posted_mu_);
  return posted_.size();
}

void Network::add_work() {
  MutexLock lk(posted_mu_);
  ++work_pending_;
}

void Network::remove_work() {
  MutexLock lk(posted_mu_);
  --work_pending_;
}

std::size_t Network::work_pending() const {
  MutexLock lk(posted_mu_);
  return work_pending_;
}

const LinkStats& Network::stats(const NodeId& from, const NodeId& to) const {
  // Lookup-only: the old operator[] body inserted a zero record for every
  // link anyone ever *asked* about, so diagnostic sweeps over unknown pairs
  // grew the table without bound. Unknown links share one canonical zero.
  static const LinkStats kZero;
  const auto it = stats_.find({from, to});
  return it == stats_.end() ? kZero : it->second;
}

LinkStats Network::total_stats() const {
  LinkStats total;
  for (const auto& [link, s] : stats_) {
    total.messages_sent += s.messages_sent;
    total.messages_dropped += s.messages_dropped;
    total.messages_duplicated += s.messages_duplicated;
    total.bytes_sent += s.bytes_sent;
  }
  return total;
}

}  // namespace desword::net
