#include "desword/applications.h"

#include <algorithm>

namespace desword::protocol {

InvestigationReport ContaminationInvestigator::investigate(
    const supplychain::ProductId& bad_product,
    const std::vector<supplychain::ProductId>& lot, std::size_t suspect_hop,
    std::optional<std::string> task_hint) {
  InvestigationReport report;
  report.bad_query =
      proxy_.run_query(bad_product, ProductQuality::kBad, task_hint);
  if (report.bad_query.path.empty()) {
    return report;  // nothing located; report carries the failed query
  }
  report.source = report.bad_query.path.front();
  const std::size_t hop =
      std::min(suspect_hop, report.bad_query.path.size() - 1);
  report.suspect_stage = report.bad_query.path[hop];

  for (const supplychain::ProductId& product : lot) {
    if (product == bad_product) continue;
    QueryOutcome outcome =
        proxy_.run_query(product, ProductQuality::kGood, task_hint);
    const bool affected =
        outcome.complete &&
        std::find(outcome.path.begin(), outcome.path.end(),
                  report.suspect_stage) != outcome.path.end();
    if (affected) report.recall_set.push_back(product);
    report.sibling_queries.push_back(std::move(outcome));
  }
  return report;
}

std::string to_string(ProvenanceVerdict verdict) {
  switch (verdict) {
    case ProvenanceVerdict::kAuthentic: return "authentic";
    case ProvenanceVerdict::kUnknownOrigin: return "unknown-origin";
    case ProvenanceVerdict::kSuspect: return "suspect";
  }
  return "unknown";
}

ProvenanceReport CounterfeitDetector::check(
    const supplychain::ProductId& product) {
  ProvenanceReport report;
  report.query = proxy_.run_query(product, ProductQuality::kGood);

  if (report.query.path.empty()) {
    report.verdict = ProvenanceVerdict::kUnknownOrigin;
    report.reason = "no participant proved ownership of this product";
    return report;
  }
  if (licensed_.find(report.query.path.front()) == licensed_.end()) {
    report.verdict = ProvenanceVerdict::kSuspect;
    report.reason = "path originates at unlicensed participant " +
                    report.query.path.front();
    return report;
  }
  if (!report.query.complete || !report.query.violations.empty()) {
    report.verdict = ProvenanceVerdict::kSuspect;
    report.reason = "provenance chain broken or violations detected";
    return report;
  }
  report.verdict = ProvenanceVerdict::kAuthentic;
  report.reason = "complete verified path from licensed source " +
                  report.query.path.front();
  return report;
}

std::vector<QueryOutcome> MarketSampler::sweep(
    const std::vector<supplychain::ProductId>& products, double rate,
    const QualityOracle& oracle) {
  std::vector<QueryOutcome> outcomes;
  for (const supplychain::ProductId& product : products) {
    if (!rng_.chance(rate)) continue;
    ++sampled_;
    outcomes.push_back(proxy_.run_query(product, oracle(product)));
  }
  return outcomes;
}

}  // namespace desword::protocol
