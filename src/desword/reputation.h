// Reputation ledger — the carrier of the double-edged incentive.
//
// The proxy awards positive scores to participants identified in good
// product queries and negative scores to participants identified in bad
// product queries (§II-C). Scores can be responsibility-weighted (the
// paper: "diverse positive/negative reputation scores based on the
// responsibilities of the identified participants") — here the path
// source carries a configurable multiplier in bad-product queries, since
// contamination originates upstream. Scores are publicly readable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace desword::protocol {

struct ScorePolicy {
  /// Score added per identified participant in a good product query.
  double positive = 1.0;
  /// Score subtracted per identified participant in a bad product query.
  double negative = 2.0;
  /// Extra penalty for a *detected* dishonest behaviour during a query.
  double violation_penalty = 5.0;
  /// Responsibility weighting: multiply the path source's (first
  /// identified participant's) negative score in bad product queries.
  bool weight_by_responsibility = false;
  double source_multiplier = 2.0;
};

struct ReputationEvent {
  std::string participant;
  double delta = 0.0;
  std::string reason;
  std::uint64_t query_id = 0;
};

class ReputationLedger {
 public:
  void apply(const std::string& participant, double delta,
             const std::string& reason, std::uint64_t query_id);

  /// Current score (0 for unknown participants — everyone starts neutral).
  double score(const std::string& participant) const;

  /// Public snapshot of all scores.
  std::map<std::string, double> snapshot() const { return scores_; }

  const std::vector<ReputationEvent>& history() const { return events_; }

 private:
  std::map<std::string, double> scores_;
  std::vector<ReputationEvent> events_;
};

}  // namespace desword::protocol
