// Reputation ledger — the carrier of the double-edged incentive.
//
// The proxy awards positive scores to participants identified in good
// product queries and negative scores to participants identified in bad
// product queries (§II-C). Scores can be responsibility-weighted (the
// paper: "diverse positive/negative reputation scores based on the
// responsibilities of the identified participants") — here the path
// source carries a configurable multiplier in bad-product queries, since
// contamination originates upstream. Scores are publicly readable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace desword::protocol {

struct ScorePolicy {
  /// Score added per identified participant in a good product query.
  double positive = 1.0;
  /// Score subtracted per identified participant in a bad product query.
  double negative = 2.0;
  /// Extra penalty for a *detected* dishonest behaviour during a query.
  double violation_penalty = 5.0;
  /// Responsibility weighting: multiply the path source's (first
  /// identified participant's) negative score in bad product queries.
  bool weight_by_responsibility = false;
  double source_multiplier = 2.0;
};

struct ReputationEvent {
  std::string participant;
  double delta = 0.0;
  std::string reason;
  std::uint64_t query_id = 0;
};

class ReputationLedger {
 public:
  /// Default bound on the retained event history (see set_history_cap).
  static constexpr std::size_t kDefaultHistoryCap = 4096;

  void apply(const std::string& participant, double delta,
             const std::string& reason, std::uint64_t query_id);

  /// Current score (0 for unknown participants — everyone starts neutral).
  double score(const std::string& participant) const;

  /// Live view of all scores. Prefer this (or `score()`) over `snapshot()`
  /// on hot paths — no copy.
  const std::map<std::string, double>& scores() const { return scores_; }

  /// Copying snapshot of all scores, for callers that need an owned map.
  std::map<std::string, double> snapshot() const { return scores_; }

  /// Bounds the event history ring buffer: once full, the oldest event is
  /// dropped per new one (scores are unaffected — they are folded in at
  /// apply() time). 0 = unbounded. Shrinks eagerly when lowered.
  void set_history_cap(std::size_t cap);
  std::size_t history_cap() const { return history_cap_; }

  /// Most recent events, oldest first; at most history_cap() entries.
  const std::deque<ReputationEvent>& history() const { return events_; }

  /// Lifetime counters: how many events were ever applied, and how many
  /// fell off the bounded history.
  std::uint64_t events_applied() const { return events_applied_; }
  std::uint64_t events_dropped() const { return events_dropped_; }

 private:
  std::map<std::string, double> scores_;
  std::deque<ReputationEvent> events_;
  std::size_t history_cap_ = kDefaultHistoryCap;
  std::uint64_t events_applied_ = 0;
  std::uint64_t events_dropped_ = 0;
};

}  // namespace desword::protocol
