// A DE-Sword participant backend node.
//
// Owns the participant's RFID-trace database and drives both protocol
// phases over an abstract `net::Transport` (simulated network or TCP):
//
//   * distribution phase: fetch/receive ps, aggregate the trace database
//     into a POC (applying any configured dishonest deviations), exchange
//     POCs with task parents to build POC pairs, and route everything to
//     the task-initial participant, who submits the POC list to the proxy;
//   * query phase: answer query / reveal / next-hop requests under the
//     configured query behaviour.
//
// Query-phase request handling is idempotent: a duplicate request (proxy
// retransmission, duplicated link delivery) is answered from a bounded
// reply cache instead of re-running proof generation, so retransmissions
// cost bytes but never CPU.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/mutex.h"
#include "desword/behavior.h"
#include "desword/crs_cache.h"
#include "desword/messages.h"
#include "net/transport.h"
#include "poc/poc.h"
#include "poc/poc_list.h"
#include "supplychain/graph.h"
#include "supplychain/trace.h"

namespace desword::protocol {

using supplychain::ParticipantId;

/// Task-local wiring handed to each involved participant before the
/// distribution phase runs (who its parents/children are for this task,
/// where each product went next, who the task-initial participant is).
struct TaskSetup {
  std::string task_id;
  ParticipantId initial;
  std::vector<ParticipantId> parents;
  std::vector<ParticipantId> children;
  /// Involved participants (needed by the initial participant to broadcast
  /// ps and to know when every report arrived).
  std::vector<ParticipantId> involved;
  /// Ground-truth next hop of each product this participant processed.
  std::map<supplychain::ProductId, ParticipantId> shipments;
};

/// Collaborator handles of a Participant — the same dependency-struct
/// shape as ProxyDeps, so both node types grow dependencies without
/// sprouting constructor overloads.
struct ParticipantDeps {
  CrsCachePtr crs_cache;
};

class Participant {
 public:
  /// The one real constructor: every dependency travels in `deps`.
  Participant(ParticipantId id, net::Transport& transport, net::NodeId proxy,
              ParticipantDeps deps);
  /// Deprecated convenience shim (kept one release): runs over an
  /// internally-owned SimTransport wrapping `network`.
  Participant(ParticipantId id, net::Network& network, net::NodeId proxy,
              CrsCachePtr crs_cache);
  ~Participant();

  Participant(const Participant&) = delete;
  Participant& operator=(const Participant&) = delete;

  const ParticipantId& id() const { return id_; }
  net::Transport& transport() { return transport_; }

  /// Loads the RFID-trace database produced by a distribution task.
  void load_database(supplychain::TraceDatabase db);
  const supplychain::TraceDatabase& database() const { return db_; }

  void set_distribution_behavior(DistributionBehavior behavior);
  void set_query_behavior(QueryBehavior behavior);
  const QueryBehavior& query_behavior() const { return query_behavior_; }

  /// Registers the task context. Must be called on every involved
  /// participant before `initiate_task` runs on the initial one.
  void begin_task(const TaskSetup& setup);

  /// Kicks off the distribution phase for a task (initial participant
  /// only): requests ps from the proxy and arms a retry timer that
  /// re-requests it until the POC list is submitted (the duplicate-ps
  /// recovery path re-broadcasts, which heals any lost message downstream).
  void initiate_task(const std::string& task_id);

  /// Whether this participant finished its distribution-phase duties for
  /// the task (POC built, pairs reported / list submitted).
  bool task_complete(const std::string& task_id) const;

  /// Task-level distribution error, or empty: the initial participant's
  /// bounded wait on "every report arrived" ran out and the task was given
  /// up. Names the participants whose reports never came. A later
  /// `initiate_task` re-kick clears it and restarts the retry budget.
  std::string task_error(const std::string& task_id) const;

  /// Bound on distribution-phase retry rounds (ps re-requests by the
  /// initial participant, report re-sends by the others) before the node
  /// gives up on the task. Must be >= 1.
  void set_max_distribution_retries(int retries);
  int max_distribution_retries() const { return max_distribution_retries_; }

  /// The POC built for a task, if any (for tests/inspection).
  const poc::Poc* poc_for_task(const std::string& task_id) const;

  struct Stats {
    /// Query-phase requests answered from the reply cache (no recompute) or
    /// joined onto an in-flight proof generation. Atomic because proof
    /// builders bump counters from executor workers.
    std::atomic<std::uint64_t> duplicate_requests_served{0};
    /// POC proofs actually generated (each is heavyweight ZK-EDB work).
    std::atomic<std::uint64_t> proofs_generated{0};
  };
  const Stats& stats() const { return stats_; }

  /// Attaches an executor: query/reveal/next-hop responses are then built
  /// on a per-participant strand (proof generation serialized per node,
  /// concurrent across nodes) and sent from the loop thread via
  /// `Transport::post()`. Without an executor (the default) every response
  /// is computed inline in the handler, byte-identically to the historical
  /// behavior. Must be called before query traffic arrives.
  void set_executor(std::shared_ptr<Executor> executor);

  /// Rebounds the query-phase reply cache (LRU; 0 = unbounded). Shrinks
  /// eagerly, evicting least-recently-used entries, when lowered.
  void set_reply_cache_capacity(std::size_t cap);
  std::size_t reply_cache_capacity() const { return reply_cache_capacity_; }
  std::size_t reply_cache_size() const { return reply_cache_.size(); }

  /// Toggles the proof memo (on by default): repeated proofs of the same
  /// (commitment, product) statement are served from memory instead of
  /// re-running ZK-EDB proof generation. Sound because proofs are
  /// re-derivations of committed state — the memoized bytes are exactly
  /// what a recompute would produce (and for randomized non-ownership
  /// teases, a replayed valid proof of the same statement). Must be set
  /// before query traffic arrives, like `set_executor`.
  void set_proof_memo(bool enabled) { proof_memo_enabled_ = enabled; }
  bool proof_memo_enabled() const { return proof_memo_enabled_; }
  std::size_t proof_memo_size() const {
    MutexLock lock(proof_memo_mu_);
    return proof_memo_.size();
  }

  /// Receives envelopes whose type the participant does not understand
  /// (admin extensions layered on top of the core protocol).
  void set_fallback_handler(net::Handler handler) {
    fallback_ = std::move(handler);
  }

 private:
  Participant(ParticipantId id, std::unique_ptr<net::SimTransport> owned,
              net::Transport* transport, net::NodeId proxy,
              ParticipantDeps deps);

  struct TaskState {
    TaskSetup setup;
    Bytes ps;
    zkedb::EdbCrsPtr crs;
    std::unique_ptr<poc::PocScheme> scheme;
    std::optional<poc::Poc> own_poc;
    std::shared_ptr<poc::PocDecommitment> dpoc;
    std::vector<Bytes> buffered_child_pocs;  // arrived before own POC
    std::vector<std::pair<Bytes, Bytes>> pairs;  // (own POC, child POC)
    std::set<ParticipantId> children_reported;
    bool pairs_sent = false;
    // Initial-participant aggregation state.
    poc::PocList list;
    std::set<ParticipantId> reports_received;
    bool list_submitted = false;
    net::Transport::TimerId ps_retry_timer = 0;
    /// Retry timer for this node's own distribution sends (PocToParent /
    /// PocPairsToInitial) — the protocol has no acks for them, so re-sends
    /// are bounded best-effort (receivers dedup).
    net::Transport::TimerId report_retry_timer = 0;
    int ps_retries = 0;
    int report_retries = 0;
    /// Set when the bounded wait on "every report arrived" ran out: names
    /// the still-missing participants. The task is given up, not wedged.
    std::string error;
  };

  /// Per-commitment proving context for the query phase.
  struct ProofContext {
    zkedb::EdbCrsPtr crs;
    std::shared_ptr<poc::PocDecommitment> dpoc;
    std::shared_ptr<poc::PocScheme> scheme;
    /// Serialized commitment the context proves against — the proof-memo
    /// key component that scopes memoized proofs to one aggregation (a
    /// re-aggregated database commits to different bytes, so its proofs
    /// never alias the old ones).
    Bytes commitment;
  };

  void handle(const net::Envelope& env);
  void dispatch(const net::Envelope& env);

  // Distribution phase.
  void on_ps_response(const PsResponse& m);
  void on_ps_broadcast(const PsBroadcast& m);
  void on_poc_to_parent(const net::Envelope& env, const PocToParent& m);
  void on_poc_pairs_to_initial(const net::Envelope& env,
                               const PocPairsToInitial& m);
  void aggregate_poc(TaskState& task);
  void absorb_child_poc(TaskState& task, const Bytes& child_poc);
  void maybe_send_pairs(TaskState& task);
  void absorb_report_at_initial(TaskState& task, const ParticipantId& from,
                                const PocPairsToInitial& m);
  void maybe_submit_list(TaskState& task);
  void on_ps_retry(const std::string& task_id);
  void on_report_retry(const std::string& task_id);
  /// (Re-)arms `report_retry_timer` unless the retry budget ran out.
  void arm_report_retry(TaskState& task);
  /// "involved minus reports_received", comma-joined, for give-up errors.
  static std::string missing_reports(const TaskState& task);

  // Query phase. Handlers only resolve the proving context (loop-thread
  // state) and hand a self-contained builder closure to respond_cached;
  // the expensive proof generation lives in the build_* methods, which
  // touch nothing but their by-value captures and are safe on a worker.
  void on_query_request(const net::Envelope& env, const QueryRequest& m);
  void on_reveal_request(const net::Envelope& env, const RevealRequest& m);
  void on_next_hop_request(const net::Envelope& env, const NextHopRequest& m);
  Bytes build_query_response(const QueryRequest& m,
                             const std::optional<ProofContext>& ctx);
  Bytes build_reveal_response(const RevealRequest& m,
                              const std::optional<ProofContext>& ctx);
  Bytes build_next_hop_response(const NextHopRequest& m) const;
  const ProofContext* context_for(const Bytes& poc_bytes) const;
  /// Ownership proof honouring wrong_trace behaviour.
  Bytes make_ownership_proof(const ProofContext& ctx,
                             const supplychain::ProductId& product);
  /// The one gateway to `PocScheme::prove`: consults the proof memo first
  /// (POC proofs are deterministic — openings reveal stored randomness —
  /// so a repeat of the same (commitment, product) statement re-serves the
  /// identical bytes instead of re-running the heavyweight ZK-EDB work).
  /// Behaviour deviations (tampering, relabelling, corruption) apply on
  /// the returned copy at the call sites, never to the memoized honest
  /// proof. Safe from strand workers; `stats_.proofs_generated` counts
  /// only actual generations (memo misses).
  poc::PocProof prove_poc(const ProofContext& ctx,
                          const supplychain::ProductId& product);
  /// Applies the corrupt_proof deviation (bit-flips the serialized proof)
  /// when configured for `product`; identity otherwise.
  Bytes maybe_corrupt_proof(const supplychain::ProductId& product,
                            Bytes proof) const;
  /// Serves `env` from the reply cache, or computes the response payload
  /// via `compute`, caches it, and sends it. Deduplication is keyed on a
  /// digest of the request (type + payload), so retransmitted requests get
  /// byte-identical responses without re-running proof generation.
  ///
  /// With an executor attached, `compute` runs on the participant's strand
  /// and the response is cached + sent from a posted loop-thread
  /// completion; a duplicate request arriving while the original is still
  /// being generated joins the in-flight entry (one proof generation, one
  /// response delivery per request arrival). `compute` must be
  /// self-contained (by-value captures only).
  void respond_cached(const net::Envelope& env, const std::string& resp_type,
                      std::function<Bytes()> compute);
  /// Loop-thread completion of an offloaded `compute`: caches the payload,
  /// answers every joined waiter. A failed compute (`ok == false`) just
  /// clears the in-flight entry so a retransmission recomputes.
  void finish_in_flight(const Bytes& key, bool ok, Bytes payload);

  ParticipantId id_;
  std::unique_ptr<net::SimTransport> owned_transport_;  // compat ctor only
  net::Transport& transport_;
  net::NodeId proxy_;
  CrsCachePtr crs_cache_;
  supplychain::TraceDatabase db_;
  DistributionBehavior dist_behavior_;
  QueryBehavior query_behavior_;
  std::map<std::string, TaskState> tasks_;
  /// Commitment bytes -> proving context (across all tasks).
  std::map<Bytes, ProofContext> contexts_;
  /// Ground-truth next hops (merged across tasks).
  std::map<supplychain::ProductId, ParticipantId> shipments_;

  struct CachedReply {
    std::string type;
    Bytes payload;
    std::list<Bytes>::iterator pos;  // position in reply_cache_lru_
  };
  std::map<Bytes, CachedReply> reply_cache_;  // request digest -> reply
  std::list<Bytes> reply_cache_lru_;          // most recently used first
  /// "In-flight" reply-cache state: requests whose response is being built
  /// on the strand right now. Loop-thread only. `waiters` records every
  /// request arrival (original + joined duplicates); each gets its own
  /// response delivery when the build completes.
  struct InFlight {
    std::string resp_type;
    std::vector<net::NodeId> waiters;
  };
  std::map<Bytes, InFlight> in_flight_;
  /// Sized for the retransmission window of a handful of concurrent
  /// queries, not for history: a digest plus response per in-flight
  /// request round.
  std::size_t reply_cache_capacity_ = 128;
  int max_distribution_retries_ = 32;
  /// Proof memo: digest(commitment ‖ product) -> serialized honest
  /// PocProof. Shared between strand workers and the loop thread (size
  /// queries), hence the lock; proving dominates it by orders of
  /// magnitude. Bounded by wholesale clearing at the cap — a participant
  /// serves a handful of commitments × products, so the cap only guards
  /// against pathological query streams.
  bool proof_memo_enabled_ = true;
  mutable Mutex proof_memo_mu_;
  std::map<Bytes, Bytes> proof_memo_ DESWORD_GUARDED_BY(proof_memo_mu_);
  Stats stats_;
  net::Handler fallback_;

  std::shared_ptr<Executor> executor_;  // null = inline (legacy) mode
  std::unique_ptr<Strand> strand_;      // per-participant proof ordering
  /// Aliveness token for posted completions: a completion that outlives
  /// this participant (weak_ptr expired) becomes a no-op instead of a
  /// use-after-free. The destructor drains the strand first, so workers
  /// never outlive the object either.
  std::shared_ptr<void> alive_ = std::make_shared<int>(0);
};

}  // namespace desword::protocol
