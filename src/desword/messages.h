// DE-Sword protocol messages.
//
// Two families, mirroring the paper's phases:
//
//   Distribution phase (§IV-B):
//     ps_request / ps_response        initial participant fetches ps
//     ps_broadcast                    initial participant distributes ps
//     poc_to_parent                   child POC travels to parents
//     poc_pairs_to_initial            constructed pairs travel to v1
//     poc_list_submit                 v1 submits the POC list to the proxy
//
//   Query phase (§IV-C/D):
//     query_request / query_response  identify + prove ownership state
//     reveal_request / reveal_response  bad case: demand ownership proof
//     next_hop_request / next_hop_response  path continuation
//
// All payloads serialize through BinaryWriter/Reader; message `type` tags
// on net::Envelope carry the family member name.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "poc/poc.h"
#include "poc/poc_list.h"
#include "supplychain/rfid.h"

namespace desword::protocol {

using supplychain::ProductId;

/// Quality of the queried product — decides which edge of the double-edged
/// strategy applies.
enum class ProductQuality : std::uint8_t { kGood = 0, kBad = 1 };

std::string to_string(ProductQuality quality);

// --------------------------------------------------------------------------
// Distribution phase
// --------------------------------------------------------------------------

struct PsRequest {
  std::string task_id;

  Bytes serialize() const;
  static PsRequest deserialize(BytesView data);
};

struct PsResponse {
  std::string task_id;
  Bytes ps;  // serialized zkedb::EdbPublicParams

  Bytes serialize() const;
  static PsResponse deserialize(BytesView data);
};

/// Also used for the initial participant's broadcast (same payload).
using PsBroadcast = PsResponse;

struct PocToParent {
  std::string task_id;
  Bytes poc;  // serialized poc::Poc of the child

  Bytes serialize() const;
  static PocToParent deserialize(BytesView data);
};

struct PocPairsToInitial {
  std::string task_id;
  Bytes own_poc;                              // sender's own POC
  std::vector<std::pair<Bytes, Bytes>> pairs;  // (parent POC, child POC)

  Bytes serialize() const;
  static PocPairsToInitial deserialize(BytesView data);
};

struct PocListSubmit {
  std::string task_id;
  Bytes poc_list;  // serialized poc::PocList

  Bytes serialize() const;
  static PocListSubmit deserialize(BytesView data);
};

// --------------------------------------------------------------------------
// Query phase
// --------------------------------------------------------------------------

struct QueryRequest {
  std::uint64_t query_id = 0;
  ProductId product;
  ProductQuality quality = ProductQuality::kGood;
  Bytes poc;  // the POC the participant must answer under

  Bytes serialize() const;
  static QueryRequest deserialize(BytesView data);
};

struct QueryResponse {
  std::uint64_t query_id = 0;
  /// Whether the participant claims it processed the product.
  bool claims_processing = false;
  /// Ownership proof (good case / bad case after identification) or
  /// non-ownership proof (bad case denial). Absent when the participant
  /// merely denies in the good case.
  std::optional<Bytes> proof;  // serialized poc::PocProof

  Bytes serialize() const;
  static QueryResponse deserialize(BytesView data);
};

struct RevealRequest {
  std::uint64_t query_id = 0;
  ProductId product;
  Bytes poc;

  Bytes serialize() const;
  static RevealRequest deserialize(BytesView data);
};

struct RevealResponse {
  std::uint64_t query_id = 0;
  /// Ownership proof; absent = refusal.
  std::optional<Bytes> proof;

  Bytes serialize() const;
  static RevealResponse deserialize(BytesView data);
};

struct NextHopRequest {
  std::uint64_t query_id = 0;
  ProductId product;

  Bytes serialize() const;
  static NextHopRequest deserialize(BytesView data);
};

struct NextHopResponse {
  std::uint64_t query_id = 0;
  /// Identity of the next participant that processed the product; absent
  /// when the responder is the last hop.
  std::optional<std::string> next;

  Bytes serialize() const;
  static NextHopResponse deserialize(BytesView data);
};

// --------------------------------------------------------------------------
// Client / admin extension (CLI daemons)
// --------------------------------------------------------------------------
//
// Not part of the paper's protocol: a thin RPC layer that the standalone
// `desword serve-proxy` daemon exposes so external clients (the `desword
// query` command) can trigger queries and fetch the audit report over the
// same transport. The proxy routes these to its fallback handler.

/// Client asks the proxy daemon to run a product path query.
struct ClientQueryRequest {
  std::uint64_t client_ref = 0;  // echoed back so clients match replies
  ProductId product;
  ProductQuality quality = ProductQuality::kGood;
  std::optional<std::string> task_hint;

  Bytes serialize() const;
  static ClientQueryRequest deserialize(BytesView data);
};

struct ClientQueryResponse {
  std::uint64_t client_ref = 0;
  bool ok = false;
  std::string error;        // set when !ok
  std::string report_json;  // QueryOutcome summary (see Proxy report schema)

  Bytes serialize() const;
  static ClientQueryResponse deserialize(BytesView data);
};

/// Readiness probe: "has task_id's POC list been submitted yet?"
struct StatusRequest {
  std::string task_id;

  Bytes serialize() const;
  static StatusRequest deserialize(BytesView data);
};

struct StatusResponse {
  std::string task_id;
  bool ready = false;

  Bytes serialize() const;
  static StatusResponse deserialize(BytesView data);
};

/// Client asks the proxy daemon for the full audit report
/// (`Proxy::export_report_json`). Reply is a ClientQueryResponse carrying
/// the report in `report_json`.
struct ClientReportRequest {
  std::uint64_t client_ref = 0;

  Bytes serialize() const;
  static ClientReportRequest deserialize(BytesView data);
};

/// Client asks a daemon for its observability snapshot
/// (`Proxy::export_stats_json` on the proxy; the process-wide metrics
/// registry on a participant). Reply is a ClientQueryResponse carrying the
/// snapshot in `report_json`.
struct StatsRequest {
  std::uint64_t client_ref = 0;

  Bytes serialize() const;
  static StatsRequest deserialize(BytesView data);
};

// Message type tags used on the wire.
namespace msg {
inline constexpr const char* kPsRequest = "ps_request";
inline constexpr const char* kPsResponse = "ps_response";
inline constexpr const char* kPsBroadcast = "ps_broadcast";
inline constexpr const char* kPocToParent = "poc_to_parent";
inline constexpr const char* kPocPairsToInitial = "poc_pairs_to_initial";
inline constexpr const char* kPocListSubmit = "poc_list_submit";
inline constexpr const char* kQueryRequest = "query_request";
inline constexpr const char* kQueryResponse = "query_response";
inline constexpr const char* kRevealRequest = "reveal_request";
inline constexpr const char* kRevealResponse = "reveal_response";
inline constexpr const char* kNextHopRequest = "next_hop_request";
inline constexpr const char* kNextHopResponse = "next_hop_response";
// Client / admin extension (CLI daemons only).
inline constexpr const char* kClientQueryRequest = "client_query_request";
inline constexpr const char* kClientQueryResponse = "client_query_response";
inline constexpr const char* kStatusRequest = "status_request";
inline constexpr const char* kStatusResponse = "status_response";
inline constexpr const char* kClientReportRequest = "client_report_request";
inline constexpr const char* kStatsRequest = "stats_request";
/// Empty payload; asks a daemon to exit its serve loop.
inline constexpr const char* kAdminShutdown = "admin_shutdown";
}  // namespace msg

/// Enumerated view of the wire `type` tags. Dispatch loops switch over this
/// enum *exhaustively* (no `default:` — enforced by tools/desword_lint.py
/// plus -Wswitch) so adding a message type forces every endpoint to decide
/// how to treat it.
enum class MessageType : std::uint8_t {
  kUnknown = 0,  // foreign tag: fallback/extension handling only
  kPsRequest,
  kPsResponse,
  kPsBroadcast,
  kPocToParent,
  kPocPairsToInitial,
  kPocListSubmit,
  kQueryRequest,
  kQueryResponse,
  kRevealRequest,
  kRevealResponse,
  kNextHopRequest,
  kNextHopResponse,
  kClientQueryRequest,
  kClientQueryResponse,
  kStatusRequest,
  kStatusResponse,
  kClientReportRequest,
  kAdminShutdown,
  kStatsRequest,  // appended: keep earlier values' wire-adjacent numbering
};

/// Maps a wire tag to its MessageType; unrecognized tags (future protocol
/// extensions, garbage from hostile peers) map to kUnknown.
MessageType message_type_of(std::string_view tag);

/// Canonical wire tag of a known message type. Throws ProtocolError for
/// kUnknown, which has no wire spelling.
const char* to_tag(MessageType type);

}  // namespace desword::protocol
