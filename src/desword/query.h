// Query outcome types.
//
// A product path information query either completes (the proxy collected a
// verified trace chain from the task-initial participant to a leaf) or
// aborts with recorded violations — §III-B's guarantee is that every
// dishonest query-phase behaviour is *detected*, not that the query always
// completes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "desword/messages.h"
#include "supplychain/trace.h"

namespace desword::protocol {

enum class ViolationType : std::uint8_t {
  /// Good case: claimed processing but the ownership proof failed.
  kClaimProcessingInvalidProof,
  /// Bad case: denied processing but the non-ownership proof failed
  /// (or was missing).
  kClaimNonProcessingInvalidProof,
  /// Identified participant's revealed ownership proof failed (covers the
  /// wrong-RFID-trace behaviour: the value binding breaks).
  kInvalidReveal,
  /// Identified participant refused to reveal an ownership proof.
  kRefusedReveal,
  /// Named a next participant that is not its child in the POC list.
  kWrongNextHopNotChild,
  /// Named a next participant that proved it did not process the product.
  kWrongNextHopNotProcessed,
  /// Claimed to be the last hop although the POC list shows children.
  kFalseTermination,
  /// Participant did not respond (after retransmissions).
  kNoResponse,
};

std::string to_string(ViolationType type);

struct Violation {
  std::string participant;
  ViolationType type = ViolationType::kNoResponse;

  bool operator==(const Violation&) const = default;
};

/// A verified trace value recovered from an ownership proof. `da` is the
/// committed value as-is; `info` is its decoded form when the committed
/// bytes parse as a TraceInfo (a cheater may have committed garbage —
/// verifiably bound garbage, but garbage).
struct RecoveredTrace {
  Bytes da;
  std::optional<supplychain::TraceInfo> info;
};

struct QueryOutcome {
  std::uint64_t query_id = 0;
  supplychain::ProductId product;
  ProductQuality quality = ProductQuality::kGood;
  std::string task_id;  // task whose POC list drove the walk (if any)
  /// Query finished the full path walk (reached a leaf).
  bool complete = false;
  /// Identified participants, in path order.
  std::vector<std::string> path;
  /// Verified RFID-trace values recovered from ownership proofs.
  std::map<std::string, RecoveredTrace> traces;
  std::vector<Violation> violations;

  bool has_violation(const std::string& participant,
                     ViolationType type) const;
};

}  // namespace desword::protocol
