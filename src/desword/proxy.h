// The DE-Sword query proxy (e.g. the FDA).
//
// Responsibilities (§II-C):
//   * serve ps to initial participants and store submitted POC lists,
//     maintaining a POC-queue per initial participant (§IV-D);
//   * drive good/bad product path information queries hop by hop,
//     verifying every response against the POC list;
//   * maintain public reputation scores under the double-edged award
//     strategy.
//
// Each query is an event-driven session state machine over an abstract
// `net::Transport`: every request the session sends arms a retransmission
// timer; a matching response cancels it; when the timer fires past
// `max_retries`, the peer is deemed unresponsive. The proxy therefore
// runs identically over the in-process simulator (`SimTransport`) and a
// real TCP event loop (`SocketTransport`) — `pump()`/`run_query()` remain
// as synchronous conveniences that drive the transport until every
// in-flight session resolves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/rng.h"
#include "desword/crs_cache.h"
#include "desword/messages.h"
#include "desword/query.h"
#include "desword/query_scheduler.h"
#include "desword/reputation.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "poc/poc_list.h"
#include "zkedb/verify_cache.h"

namespace desword::protocol {

/// How the proxy verifies proofs: execution strategy, worker fan-out and
/// the verification cache. Grouped so deployments tune one knob cluster
/// (ProxyConfig::verify); none of these fields ever changes verdicts.
struct VerifyPolicy {
  /// Verify query proofs with the batched multi-exponentiation engine
  /// (scalar per-opening checks when false).
  bool batch_verify = true;
  /// Crypto worker threads. 0 (the default) keeps every verification
  /// inline in the transport loop — byte-identical to the historical
  /// single-threaded behavior. With workers, `scheme().verify` runs on a
  /// per-session strand and its verdict is posted back to the loop thread.
  unsigned worker_threads = 0;
  /// Memoize accepted ZK-EDB proof verdicts keyed on
  /// digest(CRS ‖ commitment ‖ key ‖ full proof bytes). See
  /// zkedb/verify_cache.h for why this is sound.
  bool cache_proofs = true;
  /// Memoize whole per-(task, participant, product, proof bytes) hop
  /// verdicts across queries, epoch-versioned by POC-list generation, and
  /// single-flight-join identical in-flight hop verifications.
  bool cache_hops = true;
  /// Total entry budget of the verification cache (shared by both layers
  /// unless an external cache is injected via ProxyDeps).
  std::size_t cache_capacity = 4096;
  std::size_t cache_shards = 8;
};

struct ProxyConfig {
  zkedb::EdbConfig edb;
  ScorePolicy scores;
  int max_retries = 3;
  /// Base retransmission timeout in transport clock units (simulated ticks
  /// for SimTransport — where any value behaves the same, timers fire at
  /// quiescence — and milliseconds for SocketTransport). The first
  /// retransmission waits exactly this long.
  std::uint64_t retransmit_base = 250;
  /// Upper bound on a backed-off retransmission delay. Clamped up to
  /// `retransmit_base` when set lower.
  std::uint64_t retransmit_cap = 4000;
  /// Exponential backoff growth per retry. Each retry draws a delay
  /// uniformly from [base, min(cap, previous * backoff_factor)] —
  /// "decorrelated jitter", so a fleet of sessions stalled by the same
  /// outage does not retransmit in lockstep. <= 1.0 disables backoff
  /// (every retry waits exactly `retransmit_base`).
  double backoff_factor = 2.0;
  /// Seed for the jitter DRBG: runs with equal seeds draw equal delays, so
  /// chaos tests replay bit-identically.
  std::uint64_t backoff_seed = 0x5eedull;
  /// End-to-end budget per query, in transport clock units (0 = none).
  /// Checked whenever a stalled session regains control (retransmission
  /// fire, scheduler admission): past the budget the session force-
  /// finishes incomplete — `kNoResponse` violation against the pending
  /// peer, reputation penalty, `deadline_exceeded` trace span — instead of
  /// walking further hops or burning more retries. Detection granularity
  /// is therefore one retransmission delay, bounded by `retransmit_cap`.
  std::uint64_t query_deadline = 0;
  /// Bound on the reputation ledger's retained event history (ring buffer;
  /// 0 = unbounded). Scores are never affected, only the audit trail depth.
  std::size_t reputation_history_cap = ReputationLedger::kDefaultHistoryCap;
  /// Verification policy: strategy, worker fan-out, cache knobs. Verdicts
  /// — and thus reputation penalties — are identical under every setting.
  VerifyPolicy verify;
  /// Deprecated alias of `verify.batch_verify` (one release): effective
  /// batching requires BOTH to stay true, so old call sites that clear
  /// this still get scalar verification.
  bool batch_verify = true;
  /// Deprecated alias of `verify.worker_threads` (one release): a nonzero
  /// value here wins over the nested field.
  unsigned worker_threads = 0;
  /// Query sessions allowed to drive the transport at once; further
  /// `begin_query` calls queue in the scheduler until a slot frees
  /// (0 is treated as 1).
  std::size_t max_concurrent_queries = 8;

  /// Folds the deprecated flat aliases into the nested policy.
  VerifyPolicy effective_verify() const {
    VerifyPolicy v = verify;
    v.batch_verify = verify.batch_verify && batch_verify;
    v.worker_threads =
        worker_threads != 0 ? worker_threads : verify.worker_threads;
    return v;
  }
};

/// Collaborator handles of a Proxy, gathered so the constructor surface
/// stays one signature as dependencies accrue. Only `crs_cache` is
/// mandatory; a null `crs` derives a fresh CRS from ProxyConfig::edb, a
/// null `verify_cache` lets the proxy own one sized by its VerifyPolicy.
struct ProxyDeps {
  CrsCachePtr crs_cache;
  zkedb::EdbCrsPtr crs;
  zkedb::VerifyCachePtr verify_cache;
};

class Proxy {
 public:
  /// The one real constructor: every dependency travels in `deps`.
  Proxy(net::NodeId id, net::Transport& transport, ProxyDeps deps,
        ProxyConfig config);
  /// Deprecated convenience shims (kept one release): run over an
  /// internally-owned SimTransport wrapping `network`. New code should
  /// construct a SimTransport and use the primary constructor.
  Proxy(net::NodeId id, net::Network& network, CrsCachePtr crs_cache,
        ProxyConfig config);
  Proxy(net::NodeId id, net::Network& network, CrsCachePtr crs_cache,
        zkedb::EdbCrsPtr crs, ProxyConfig config);
  ~Proxy();

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  const net::NodeId& id() const { return id_; }
  const zkedb::EdbCrsPtr& crs() const { return crs_; }
  net::Transport& transport() { return transport_; }

  // -- Distribution-phase state ------------------------------------------

  /// POC list submitted for a task, if any.
  const poc::PocList* task_list(const std::string& task_id) const;

  struct QueueEntry {
    std::string task_id;
    poc::Poc poc;  // the initial participant's POC for that task
  };
  /// POC-queue of an initial participant (§IV-D).
  std::vector<QueueEntry> poc_queue(const std::string& initial) const;

  // -- Query phase ---------------------------------------------------------

  /// Starts an asynchronous product path information query. If `task_hint`
  /// is set the proxy walks that task's POC list directly; otherwise it
  /// first identifies the right task by scanning initial participants'
  /// POC-queues (§IV-D).
  std::uint64_t begin_query(const supplychain::ProductId& product,
                            ProductQuality quality,
                            std::optional<std::string> task_hint = {});

  /// Drives the transport until every in-flight query resolves
  /// (retransmissions and no-response aborts happen via session timers).
  void pump();

  /// Synchronous convenience: begin + pump + fetch.
  QueryOutcome run_query(const supplychain::ProductId& product,
                         ProductQuality quality,
                         std::optional<std::string> task_hint = {});

  /// One entry of a `run_queries` batch.
  struct QuerySpec {
    supplychain::ProductId product;
    ProductQuality quality = ProductQuality::kGood;
    std::optional<std::string> task_hint;
  };

  /// Synchronous batch convenience: begins every query (the scheduler
  /// admits up to `max_concurrent_queries` at a time, queueing the rest),
  /// pumps until all resolve, and returns the outcomes in input order.
  std::vector<QueryOutcome> run_queries(const std::vector<QuerySpec>& specs);
  std::vector<QueryOutcome> run_queries(
      const std::vector<supplychain::ProductId>& products,
      ProductQuality quality, std::optional<std::string> task_hint = {});

  /// The crypto executor (null when `worker_threads == 0`). Scenarios hand
  /// this to participants so one worker pool serves the whole deployment.
  const std::shared_ptr<Executor>& executor() const { return executor_; }

  /// The verification cache in use (null when caching is disabled).
  const zkedb::VerifyCachePtr& verify_cache() const { return verify_cache_; }

  /// Outcome of a finished query (nullptr while in flight / unknown).
  const QueryOutcome* outcome(std::uint64_t query_id) const;

  /// True while any query session is unresolved.
  bool has_active_sessions() const;

  /// Invoked (synchronously, from transport context) whenever a query
  /// session finishes — the hook a server wrapper uses to answer remote
  /// clients.
  void set_completion_callback(std::function<void(const QueryOutcome&)> cb) {
    completion_cb_ = std::move(cb);
  }

  /// Receives envelopes whose type the proxy itself does not understand
  /// (admin/client extensions layered on top of the core protocol).
  void set_fallback_handler(net::Handler handler) {
    fallback_ = std::move(handler);
  }

  /// One audit-log entry per protocol message of a query session.
  struct TranscriptEntry {
    std::uint64_t at = 0;  // transport time
    bool outgoing = false;  // proxy -> participant?
    net::NodeId peer;
    std::string type;
    std::size_t bytes = 0;
  };

  /// Full message transcript of a query (nullptr if unknown). Useful for
  /// audits and for attributing wire costs (Table II end-to-end).
  const std::vector<TranscriptEntry>* transcript(std::uint64_t query_id) const;

  /// Per-query observability trace: one timestamped span per protocol step
  /// (request sent, response received, verify outcome, retransmit,
  /// violation, finish). nullptr if the query id is unknown. Export one
  /// trace as a JSON line via `obs::QueryTrace::to_json_line()`.
  const obs::QueryTrace* query_trace(std::uint64_t query_id) const;

  /// Observability snapshot: process-wide metrics registry, current
  /// reputation scores, and every query trace. This is what `desword
  /// stats` and the `--stats-json` flags surface.
  std::string export_stats_json() const;

  // -- Reputation -----------------------------------------------------------

  double reputation(const std::string& participant) const;
  std::map<std::string, double> reputation_snapshot() const;
  const ReputationLedger& ledger() const { return ledger_; }

  /// Machine-readable audit report: public reputation board, per-event
  /// ledger history, and a summary of every finished query (path,
  /// violations, completeness). This is the artifact a regulator
  /// publishes; customers "publicly access" the scores through it (§II-C).
  std::string export_report_json() const;

 private:
  /// All public ctors delegate here. Exactly one of `owned` / `transport`
  /// is set; when `owned` is non-null the proxy keeps it alive and uses it.
  Proxy(net::NodeId id, std::unique_ptr<net::SimTransport> owned,
        net::Transport* transport, ProxyDeps deps, ProxyConfig config);

  enum class Phase : std::uint8_t { kInitialScan, kWalk, kReveal, kNextHop,
                                    kDone };

  struct Candidate {
    std::string participant;
    std::string task_id;
    poc::Poc poc;
  };

  struct Session {
    QueryOutcome outcome;
    Phase phase = Phase::kInitialScan;
    // Initial-task identification.
    std::vector<Candidate> candidates;
    std::size_t candidate_idx = 0;
    // Walk state. The list is held by shared_ptr so an in-flight session
    // keeps walking the epoch it started under even if a fresh POC-list
    // submission replaces the task's list mid-query.
    std::shared_ptr<const poc::PocList> list;
    std::string current;
    poc::Poc current_poc;
    std::string previous;  // referrer of `current` (for misdirection blame)
    std::vector<std::string> visited;
    std::vector<TranscriptEntry> transcript;
    obs::QueryTrace trace;
    // Retransmission bookkeeping.
    net::NodeId last_to;
    std::string last_type;
    Bytes last_payload;
    int retries = 0;
    bool awaiting = false;
    net::Transport::TimerId retrans_timer = 0;
    /// Delay the armed `retrans_timer` used (decorrelated-jitter state:
    /// the next backed-off delay is drawn relative to this one).
    std::uint64_t backoff = 0;
    /// Absolute transport time the query budget runs out (0 = none).
    std::uint64_t deadline_at = 0;
    // Off-loop verification: while a verdict is in flight on the strand the
    // session ignores incoming protocol messages (it is not awaiting any —
    // the response that triggered the verify already settled the timer).
    bool verifying = false;
    std::shared_ptr<Strand> strand;  // serializes this session's verifies
  };

  /// Worker-safe verdict of an ownership-proof check: `trace_da` carries
  /// the recovered committed trace bytes when valid.
  struct OwnershipCheck {
    bool valid = false;
    std::optional<Bytes> trace_da;
  };

  void handle(const net::Envelope& env);
  void on_ps_request(const net::Envelope& env, const PsRequest& m);
  void on_poc_list_submit(const net::Envelope& env, const PocListSubmit& m);
  void on_query_response(const net::Envelope& env, const QueryResponse& m);
  void on_reveal_response(const net::Envelope& env, const RevealResponse& m);
  void on_next_hop_response(const net::Envelope& env, const NextHopResponse& m);

  void send_tracked(Session& s, const net::NodeId& to, const std::string& type,
                    Bytes payload);
  /// Response accepted: stop awaiting and disarm the session's timer.
  void settle(Session& s);
  void arm_retransmit(Session& s);
  void on_retransmit_timeout(std::uint64_t query_id);
  /// True when the session ran out of its `query_deadline` budget; the
  /// session is then force-finished (violation + penalty recorded) and the
  /// caller must stop touching it.
  bool deadline_expired(Session& s);
  void record_incoming(Session& s, const net::Envelope& env);
  void advance_candidate(Session& s);
  void start_walk(Session& s, const Candidate& candidate,
                  const std::optional<OwnershipCheck>& pre_verified);
  void query_current(Session& s);
  void request_reveal(Session& s);
  void request_next_hop(Session& s);
  /// Sends the first candidate request of a scheduler-admitted session.
  void launch_query(std::uint64_t query_id);

  // The only `scheme().verify` call sites (handlers stay crypto-free so
  // they never block the loop — enforced by tools/desword_lint.py). Both
  // are worker-safe: const, touching only their arguments and the shared
  // read-only scheme. Adversarial input (malformed proof bytes) yields an
  // invalid verdict, never an exception.
  OwnershipCheck check_ownership(const poc::Poc& poc,
                                 const supplychain::ProductId& product,
                                 const Bytes& proof_bytes) const;
  bool check_non_ownership(const poc::Poc& poc,
                           const supplychain::ProductId& product,
                           const Bytes& proof_bytes) const;

  /// Runs `work` and invokes `done(session, result)` on the loop thread.
  /// Inline (no executor): both run synchronously, byte-identically to the
  /// historical behavior. Async: `work` runs on the session's strand under
  /// the transport work-accounting bracket (add_work before dispatch, the
  /// worker posts the verdict *before* remove_work, so the loop never sees
  /// "no work" while a completion is owed) and `done` runs from the posted
  /// completion, guarded by the aliveness token and a fresh session lookup.
  template <typename R>
  void verify_then(Session& s, std::function<R()> work,
                   std::function<void(Session&, const R&)> done);
  template <typename R>
  void resume_verify(std::uint64_t query_id, std::optional<R> result,
                     std::exception_ptr error,
                     const std::function<void(Session&, const R&)>& done);

  /// Continuation of a hop verdict. The verdict is a zkedb::VerifyOutcome
  /// so ownership (value = recovered trace da) and non-ownership checks
  /// share one memoizable shape.
  using HopDone = std::function<void(Session&, const zkedb::VerifyOutcome&)>;

  /// Unified hop verification: consults the hop-level memo (epoch =
  /// current POC-list generation of `task_id`), single-flight-joins an
  /// identical in-flight verification, or schedules the check via
  /// verify_then. `done` always runs on the loop thread.
  void verify_hop_then(Session& s, const std::string& task_id, poc::Poc poc,
                       Bytes proof_bytes, bool ownership, HopDone done);
  /// Executor-mode miss path of verify_hop_then: runs `work` on the
  /// session's strand and resolves ALL waiters registered under `key`
  /// through finish_hop_verify (resume_verify would strand joined waiters
  /// on its single-session early returns).
  void start_hop_verify(Session& s, Bytes key, std::uint64_t epoch,
                        std::function<zkedb::VerifyOutcome()> work);
  void finish_hop_verify(const Bytes& key, std::uint64_t epoch,
                         std::optional<zkedb::VerifyOutcome> result,
                         std::exception_ptr error);

  void verify_ownership_then(
      Session& s, const std::string& task_id, poc::Poc poc, Bytes proof_bytes,
      std::function<void(Session&, const OwnershipCheck&)> done);
  void verify_non_ownership_then(Session& s, const std::string& task_id,
                                 poc::Poc poc, Bytes proof_bytes,
                                 std::function<void(Session&, bool)> done);
  /// POC-list generation of a task (0 before any submission). Bumped on
  /// every list replacement so stale hop-memo entries die structurally.
  std::uint64_t task_epoch(const std::string& task_id) const;

  /// Records the verify span for `s.current` and, when valid, the
  /// recovered trace; returns `check.valid`.
  bool absorb_ownership_result(Session& s, const OwnershipCheck& check);
  /// Records a verify-outcome span (`kind` = "ownership"/"non_ownership").
  void record_verify(Session& s, const std::string& peer, bool ok,
                     const char* kind);
  void record_violation(Session& s, const std::string& participant,
                        ViolationType type);
  void finish(Session& s, bool complete);
  void apply_scores(Session& s);
  /// Per-session diagnosis for the pump non-convergence error.
  std::string pump_stall_report() const;
  static const char* phase_name(Phase phase);

  poc::PocScheme& scheme() { return *scheme_; }
  const poc::PocScheme& scheme() const { return *scheme_; }

  net::NodeId id_;
  std::unique_ptr<net::SimTransport> owned_transport_;  // compat ctors only
  net::Transport& transport_;
  CrsCachePtr crs_cache_;
  ProxyConfig config_;
  zkedb::EdbCrsPtr crs_;
  Bytes ps_bytes_;
  std::unique_ptr<poc::PocScheme> scheme_;
  std::function<void(const QueryOutcome&)> completion_cb_;
  net::Handler fallback_;

  /// task id -> current POC list (shared with in-flight sessions so a
  /// replacement never dangles a walking query).
  std::map<std::string, std::shared_ptr<const poc::PocList>> lists_;
  std::map<std::string, std::vector<QueueEntry>> queues_;  // initial -> queue
  /// task id -> POC-list generation: bumped whenever a submission replaces
  /// the task's list (the hop memo's epoch tag). Absent = 0.
  std::map<std::string, std::uint64_t> task_generation_;
  /// task id -> sha256 of the accepted serialized list, for idempotent
  /// resubmission detection (a retransmitted identical submit is a no-op;
  /// different bytes mean a new epoch).
  std::map<std::string, Bytes> list_digests_;

  std::uint64_t next_query_id_ = 1;
  std::map<std::uint64_t, Session> sessions_;
  ReputationLedger ledger_;
  /// Jitter DRBG for backed-off retransmission delays (loop-thread-only,
  /// seeded from `ProxyConfig::backoff_seed` for reproducible runs).
  SimRng backoff_rng_;

  std::shared_ptr<Executor> executor_;  // null = inline verification
  std::unique_ptr<QueryScheduler> scheduler_;
  /// Effective verification policy (flat aliases already folded in).
  VerifyPolicy verify_policy_;
  /// Verdict cache shared by the zkedb proof layer (via
  /// EdbVerifyOptions::cache) and the proxy hop memo. Null = caching off.
  zkedb::VerifyCachePtr verify_cache_;
  /// Single-flight registry for hop verifications (loop-thread only):
  /// hop key -> sessions awaiting that verdict. The first arrival runs
  /// the check; identical concurrent hops join and are all resolved by
  /// finish_hop_verify (zkedb.cache.joined counts the joiners).
  struct HopWaiter {
    std::uint64_t query_id = 0;
    HopDone done;
  };
  std::map<Bytes, std::vector<HopWaiter>> hop_in_flight_;
  /// Aliveness token for posted verdict completions: one that outlives the
  /// proxy (weak_ptr expired) becomes a no-op instead of a use-after-free.
  /// The destructor drains the executor first, so strand workers never
  /// outlive the object either.
  std::shared_ptr<void> alive_ = std::make_shared<int>(0);
};

}  // namespace desword::protocol
