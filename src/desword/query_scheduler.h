// Admission control for concurrent query sessions.
//
// The proxy can drive many query state machines over one transport, but
// each in-flight session costs retransmission timers, strand slots, and
// participant-side proof work. The scheduler bounds how many sessions are
// active at once: `submit` either launches a query immediately or parks it
// in a FIFO queue; `finished` frees the slot and admits the
// longest-waiting entrant.
//
// Loop-thread only — no locking. Launching may resolve a query
// synchronously (e.g. an empty candidate set), which re-enters
// `finished`; the drain loop re-checks its bounds every iteration, so the
// reentrancy is benign. The loop-only contract is machine-checked at the
// proxy's entry points via DESWORD_DCHECK_ON_LOOP (DESIGN.md §10) rather
// than by capability annotations — there is deliberately no mutex here to
// annotate, and the `loop-affinity` lint rule keeps scheduler_ touches out
// of worker-context strand continuations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <set>

namespace desword::protocol {

class QueryScheduler {
 public:
  using LaunchFn = std::function<void(std::uint64_t)>;

  /// `max_concurrent` of 0 is treated as 1.
  QueryScheduler(std::size_t max_concurrent, LaunchFn launch);

  /// Admits `query_id` (invoking the launch callback synchronously) when a
  /// slot is free, queues it otherwise. Returns true when launched now.
  bool submit(std::uint64_t query_id);

  /// Releases `query_id` — whether it held a slot or was still queued —
  /// and admits queued sessions while slots remain. No-op for ids the
  /// scheduler never saw.
  void finished(std::uint64_t query_id);

  bool is_queued(std::uint64_t query_id) const;
  std::size_t active() const { return active_.size(); }
  std::size_t queued() const { return queued_.size(); }
  std::size_t max_concurrent() const { return max_; }

 private:
  void launch(std::uint64_t query_id);

  std::size_t max_;
  LaunchFn launch_fn_;
  std::set<std::uint64_t> active_;
  std::deque<std::uint64_t> queued_;
};

}  // namespace desword::protocol
