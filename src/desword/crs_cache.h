// Shared cache of instantiated CRS objects.
//
// Deriving an EdbCrs from serialized public parameters recomputes the qTMC
// S_i power tables, which is the dominant keygen cost. Every in-process
// node (proxy + participants) would otherwise re-derive the same tables,
// so they share a cache keyed by the hash of the serialized parameters —
// mirroring how real deployments cache published CRS material.
#pragma once

#include <cstddef>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "crypto/hash.h"
#include "zkedb/params.h"

namespace desword::protocol {

class CrsCache {
 public:
  /// Returns the CRS for serialized EdbPublicParams, deriving it on first
  /// use. Thread safe. Derivation and table warming run outside the cache
  /// lock (they dominate; a rare concurrent double-derivation is resolved
  /// keep-first).
  zkedb::EdbCrsPtr get(BytesView ps_serialized) {
    const Bytes key = sha256(ps_serialized);
    {
      MutexLock lock(mutex_);
      const auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    auto crs = std::make_shared<zkedb::EdbCrs>(
        zkedb::EdbPublicParams::deserialize(ps_serialized));
    zkedb::EdbCrsPtr canonical;
    {
      MutexLock lock(mutex_);
      canonical = cache_.emplace(key, std::move(crs)).first->second;
    }
    warm(*canonical);
    return canonical;
  }

  /// Pre-seeds the cache with an already-instantiated CRS and returns the
  /// canonical instance for those parameters: the cached one if the key is
  /// already present (keep-first — `crs` is NOT swapped in), else `crs`
  /// itself. Callers should adopt the return value so every node holding
  /// the same parameters shares one EdbCrs (and its power tables).
  zkedb::EdbCrsPtr put(const zkedb::EdbCrsPtr& crs) {
    const Bytes key = sha256(crs->params().serialize());
    zkedb::EdbCrsPtr canonical;
    {
      MutexLock lock(mutex_);
      canonical = cache_.emplace(key, crs).first->second;
    }
    warm(*canonical);
    return canonical;
  }

  /// Number of distinct parameter sets cached. Thread safe.
  std::size_t size() {
    MutexLock lock(mutex_);
    return cache_.size();
  }

 private:
  /// Warms the fixed-base exponentiation tables every cached-CRS consumer
  /// shares (the qTMC tables live in a process-wide per-public-key
  /// registry, so this is once per distinct CRS no matter how many nodes
  /// adopt it). The per-position S_i tables are left to first use — they
  /// cost q·~128 KiB and only verification-heavy nodes need them.
  static void warm(const zkedb::EdbCrs& crs) {
    crs.qtmc().precompute_fixed_bases(/*position_bases=*/false);
    crs.tmc().precompute_fixed_bases();
  }

  Mutex mutex_;
  std::map<Bytes, zkedb::EdbCrsPtr> cache_ DESWORD_GUARDED_BY(mutex_);
};

using CrsCachePtr = std::shared_ptr<CrsCache>;

}  // namespace desword::protocol
