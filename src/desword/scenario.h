// Scenario harness: glue between the supply-chain simulation and the
// DE-Sword protocol stack.
//
// Builds a complete in-process deployment — proxy, participant nodes,
// network — runs distribution tasks through the physical simulator, wires
// the resulting trace databases and task topologies into the participants,
// and drives the distribution phase to completion. Tests, examples and
// benchmarks all start from here.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "desword/participant.h"
#include "desword/proxy.h"
#include "net/fault_injector.h"
#include "supplychain/distribution.h"

namespace desword::protocol {

struct ScenarioConfig {
  zkedb::EdbConfig edb = {4, 6, 512, "p256", zkedb::SoftMode::kShared};
  ScorePolicy scores;
  std::uint64_t network_seed = 1;
  int max_retries = 3;
  /// Forwarded to ProxyConfig::batch_verify (query-proof verification
  /// strategy; verdicts identical either way).
  bool batch_verify = true;
  /// Forwarded to VerifyPolicy::{cache_proofs, cache_hops} — the proxy's
  /// epoch-versioned verification cache — and to every participant's
  /// `set_proof_memo` (repeated proofs of the same committed statement are
  /// served from memory). Verdicts and reputation are byte-identical
  /// either way; the caches only skip recomputation of work whose result
  /// is already determined.
  bool verify_cache = true;
  /// Crypto worker threads shared by the proxy and every participant
  /// (forwarded to ProxyConfig::worker_threads; the proxy's executor is
  /// handed to each participant via set_executor). 0 = inline crypto,
  /// byte-identical to the historical single-threaded deployment.
  unsigned worker_threads = 0;
  /// Forwarded to ProxyConfig::max_concurrent_queries.
  std::size_t max_concurrent_queries = 8;
  /// When set, the whole deployment shares ONE SimTransport wrapped in a
  /// FaultInjector driven by this plan: every endpoint's timers fire from
  /// the same poll loop, the distribution phase is driven by the
  /// participants' own retry timers (instead of the harness re-kick loop),
  /// and a distribution give-up surfaces as a ProtocolError naming the
  /// missing participants. When unset the legacy wiring (one SimTransport
  /// per endpoint over the shared Network) is used, byte-identical to
  /// before.
  std::optional<net::FaultPlan> fault_plan;
  /// Forwarded to ProxyConfig::query_deadline (0 = no budget).
  std::uint64_t query_deadline = 0;
  /// Retransmission/backoff knobs forwarded to ProxyConfig.
  std::uint64_t retransmit_base = 250;
  std::uint64_t retransmit_cap = 4000;
  double backoff_factor = 2.0;
  std::uint64_t backoff_seed = 0x5eedull;
  /// Distribution-phase retry budget per participant (0 = library default).
  int max_distribution_retries = 0;
};

class Scenario {
 public:
  Scenario(supplychain::SupplyChainGraph graph, ScenarioConfig config);

  net::Network& network() { return network_; }
  /// The transport the proxy runs over: the shared fault-injecting
  /// transport when `fault_plan` is set, the proxy's own otherwise.
  net::Transport& transport() {
    return fault_ ? static_cast<net::Transport&>(*fault_)
                  : proxy_->transport();
  }
  /// The fault injector, or nullptr when no `fault_plan` was configured.
  net::FaultInjector* fault_injector() { return fault_.get(); }
  Proxy& proxy() { return *proxy_; }
  Participant& participant(const ParticipantId& id);
  const CrsCachePtr& crs_cache() const { return crs_cache_; }
  const supplychain::SupplyChainGraph& graph() const { return graph_; }

  /// Runs one physical distribution task and the full distribution phase
  /// of the protocol (ps fetch/broadcast, POC aggregation, pair exchange,
  /// list submission). Returns the ground-truth result.
  ///
  /// Dishonest distribution behaviours must be configured on the
  /// participants *before* calling this.
  const supplychain::DistributionResult& run_task(
      const std::string& task_id, const supplychain::DistributionConfig& dist);

  /// Ground truth for a finished task.
  const supplychain::DistributionResult& truth(const std::string& task_id) const;

  /// Ground-truth path of a product (searched across tasks).
  const std::vector<ParticipantId>* path_of(
      const supplychain::ProductId& product) const;

 private:
  supplychain::SupplyChainGraph graph_;
  ScenarioConfig config_;
  net::Network network_;
  CrsCachePtr crs_cache_;
  // Declared before the endpoints: proxy/participant destructors cancel
  // their timers through these, so they must outlive them.
  std::unique_ptr<net::SimTransport> sim_;       // fault mode only
  std::unique_ptr<net::FaultInjector> fault_;    // fault mode only
  std::unique_ptr<Proxy> proxy_;
  std::map<ParticipantId, std::unique_ptr<Participant>> participants_;
  std::map<std::string, supplychain::DistributionResult> truths_;
};

}  // namespace desword::protocol
