#include "desword/baseline.h"

#include <algorithm>

#include "common/error.h"
#include "common/serial.h"

namespace desword::baseline {

Bytes BaselineEntry::serialize() const {
  BinaryWriter w;
  w.bytes(product);
  w.bytes(trace_sig);
  w.bytes(binding_sig);
  return w.take();
}

BaselineEntry BaselineEntry::deserialize(BytesView data) {
  BinaryReader r(data);
  BaselineEntry e;
  e.product = r.bytes();
  e.trace_sig = r.bytes();
  e.binding_sig = r.bytes();
  r.expect_done();
  return e;
}

Bytes BaselinePoc::serialize() const {
  BinaryWriter w;
  w.str(participant);
  w.bytes(public_key);
  w.varint(entries.size());
  for (const auto& e : entries) w.bytes(e.serialize());
  return w.take();
}

BaselinePoc BaselinePoc::deserialize(BytesView data) {
  BinaryReader r(data);
  BaselinePoc poc;
  poc.participant = r.str();
  poc.public_key = r.bytes();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    poc.entries.push_back(BaselineEntry::deserialize(r.bytes()));
  }
  r.expect_done();
  return poc;
}

bool BaselinePoc::contains(const supplychain::ProductId& id) const {
  return std::any_of(entries.begin(), entries.end(),
                     [&](const BaselineEntry& e) { return e.product == id; });
}

BaselineScheme::BaselineScheme(GroupPtr group) : group_(std::move(group)) {}

Bytes BaselineScheme::binding_message(const std::string& participant,
                                      const supplychain::ProductId& id,
                                      BytesView trace_sig) const {
  BinaryWriter w;
  w.str(participant);
  w.bytes(id);
  w.bytes(trace_sig);
  return w.take();
}

std::pair<BaselinePoc, SchnorrKeyPair> BaselineScheme::aggregate(
    const std::string& participant,
    const supplychain::TraceDatabase& db) const {
  SchnorrKeyPair keys = schnorr_keygen(*group_);
  BaselinePoc poc;
  poc.participant = participant;
  poc.public_key = keys.public_key;
  for (const supplychain::RfidTrace& trace : db.all()) {
    BaselineEntry entry;
    entry.product = trace.id;
    entry.trace_sig =
        schnorr_sign(*group_, keys.secret, trace.serialize()).serialize(*group_);
    entry.binding_sig =
        schnorr_sign(*group_, keys.secret,
                     binding_message(participant, trace.id, entry.trace_sig))
            .serialize(*group_);
    poc.entries.push_back(std::move(entry));
  }
  return {std::move(poc), std::move(keys)};
}

bool BaselineScheme::proves_processing(const BaselinePoc& poc,
                                       const supplychain::ProductId& id) const {
  for (const BaselineEntry& e : poc.entries) {
    if (e.product != id) continue;
    try {
      const SchnorrSignature sig =
          SchnorrSignature::deserialize(*group_, e.binding_sig);
      return schnorr_verify(*group_, poc.public_key,
                            binding_message(poc.participant, id, e.trace_sig),
                            sig);
    } catch (const Error&) {
      return false;
    }
  }
  return false;
}

bool BaselineScheme::verify_trace(const BaselinePoc& poc,
                                  const supplychain::RfidTrace& trace) const {
  for (const BaselineEntry& e : poc.entries) {
    if (e.product != trace.id) continue;
    try {
      const SchnorrSignature sig =
          SchnorrSignature::deserialize(*group_, e.trace_sig);
      return schnorr_verify(*group_, poc.public_key, trace.serialize(), sig);
    } catch (const Error&) {
      return false;
    }
  }
  return false;
}

}  // namespace desword::baseline
