#include "desword/proxy.h"

#include <algorithm>
#include <iterator>

#include "common/error.h"
#include "common/json.h"
#include "crypto/hash.h"
#include "obs/metrics.h"

namespace desword::protocol {

namespace {

obs::Counter& queries_started() {
  static obs::Counter& c = obs::metric("protocol.query.started");
  return c;
}

obs::Counter& queries_completed() {
  static obs::Counter& c = obs::metric("protocol.query.completed");
  return c;
}

obs::Counter& violations_detected() {
  static obs::Counter& c = obs::metric("protocol.violation.detected");
  return c;
}

obs::Counter& retransmits_fired() {
  static obs::Counter& c = obs::metric("net.retransmit.fired");
  return c;
}

obs::Gauge& sessions_active() {
  static obs::Gauge& g = obs::gauge_metric("protocol.sessions.active");
  return g;
}

obs::Counter& pump_stalled() {
  static obs::Counter& c = obs::metric("protocol.pump.stalled");
  return c;
}

obs::Counter& retransmits_refused() {
  static obs::Counter& c = obs::metric("net.retransmit.refused");
  return c;
}

obs::Counter& deadlines_exceeded() {
  static obs::Counter& c = obs::metric("protocol.query.deadline_exceeded");
  return c;
}

obs::Counter& hops_joined() {
  static obs::Counter& c = obs::metric("zkedb.cache.joined");
  return c;
}

}  // namespace

Proxy::Proxy(net::NodeId id, net::Transport& transport, ProxyDeps deps,
             ProxyConfig config)
    : Proxy(std::move(id), nullptr, &transport, std::move(deps),
            std::move(config)) {}

Proxy::Proxy(net::NodeId id, net::Network& network, CrsCachePtr crs_cache,
             ProxyConfig config)
    : Proxy(std::move(id), std::make_unique<net::SimTransport>(network),
            nullptr, ProxyDeps{std::move(crs_cache), nullptr, nullptr},
            std::move(config)) {}

Proxy::Proxy(net::NodeId id, net::Network& network, CrsCachePtr crs_cache,
             zkedb::EdbCrsPtr crs, ProxyConfig config)
    : Proxy(std::move(id), std::make_unique<net::SimTransport>(network),
            nullptr, ProxyDeps{std::move(crs_cache), std::move(crs), nullptr},
            std::move(config)) {}

Proxy::Proxy(net::NodeId id, std::unique_ptr<net::SimTransport> owned,
             net::Transport* transport, ProxyDeps deps, ProxyConfig config)
    : id_(std::move(id)),
      owned_transport_(std::move(owned)),
      transport_(owned_transport_ ? static_cast<net::Transport&>(
                                        *owned_transport_)
                                  : *transport),
      crs_cache_(std::move(deps.crs_cache)),
      config_(std::move(config)),
      // config_ is initialized before crs_ (declaration order), so a fresh
      // CRS can be derived from it when the caller did not supply one.
      crs_(deps.crs != nullptr ? std::move(deps.crs)
                               : zkedb::generate_crs(config_.edb)),
      backoff_rng_(config_.backoff_seed) {
  ps_bytes_ = crs_->params().serialize();
  // Adopt the cache's canonical instance: if another in-process node
  // already derived a CRS for the same parameters, share it (and its
  // precomputed power tables) instead of keeping a duplicate alive.
  crs_ = crs_cache_->put(crs_);
  ledger_.set_history_cap(config_.reputation_history_cap);
  verify_policy_ = config_.effective_verify();
  if (deps.verify_cache != nullptr) {
    verify_cache_ = std::move(deps.verify_cache);
  } else if (verify_policy_.cache_proofs || verify_policy_.cache_hops) {
    verify_cache_ = std::make_shared<zkedb::VerifyCache>(
        zkedb::VerifyCache::Config{verify_policy_.cache_capacity,
                                   verify_policy_.cache_shards});
  }
  zkedb::EdbVerifyOptions verify_opts;
  verify_opts.batched = verify_policy_.batch_verify;
  if (verify_policy_.cache_proofs) verify_opts.cache = verify_cache_;
  scheme_ = std::make_unique<poc::PocScheme>(crs_, verify_opts);
  if (verify_policy_.worker_threads > 0) {
    obs::install_executor_metrics();
    executor_ = std::make_shared<Executor>(verify_policy_.worker_threads);
  }
  scheduler_ = std::make_unique<QueryScheduler>(
      config_.max_concurrent_queries,
      [this](std::uint64_t qid) { launch_query(qid); });
  transport_.register_node(id_,
                           [this](const net::Envelope& env) { handle(env); });
}

Proxy::~Proxy() {
  // Drain before teardown: executor pending hitting zero implies every
  // session strand is empty too (a strand with queued work always has a
  // drainer task pending), so no worker still touches `this` or the
  // transport. Verdict completions already posted but never polled expire
  // against the aliveness token.
  if (executor_) executor_->drain();
  for (auto& [qid, s] : sessions_) {
    if (s.retrans_timer != 0) transport_.cancel_timer(s.retrans_timer);
  }
  if (transport_.has_node(id_)) transport_.unregister_node(id_);
}

const poc::PocList* Proxy::task_list(const std::string& task_id) const {
  const auto it = lists_.find(task_id);
  return it == lists_.end() ? nullptr : it->second.get();
}

std::uint64_t Proxy::task_epoch(const std::string& task_id) const {
  const auto it = task_generation_.find(task_id);
  return it == task_generation_.end() ? 0 : it->second;
}

std::vector<Proxy::QueueEntry> Proxy::poc_queue(
    const std::string& initial) const {
  const auto it = queues_.find(initial);
  return it == queues_.end() ? std::vector<QueueEntry>{} : it->second;
}

void Proxy::handle(const net::Envelope& env) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  try {
    switch (message_type_of(env.type)) {
      case MessageType::kPsRequest:
        on_ps_request(env, PsRequest::deserialize(env.payload));
        break;
      case MessageType::kPocListSubmit:
        on_poc_list_submit(env, PocListSubmit::deserialize(env.payload));
        break;
      case MessageType::kQueryResponse:
        on_query_response(env, QueryResponse::deserialize(env.payload));
        break;
      case MessageType::kRevealResponse:
        on_reveal_response(env, RevealResponse::deserialize(env.payload));
        break;
      case MessageType::kNextHopResponse:
        on_next_hop_response(env, NextHopResponse::deserialize(env.payload));
        break;
      case MessageType::kPsResponse:
      case MessageType::kPsBroadcast:
      case MessageType::kPocToParent:
      case MessageType::kPocPairsToInitial:
      case MessageType::kQueryRequest:
      case MessageType::kRevealRequest:
      case MessageType::kNextHopRequest:
      case MessageType::kClientQueryRequest:
      case MessageType::kClientQueryResponse:
      case MessageType::kStatusRequest:
      case MessageType::kStatusResponse:
      case MessageType::kClientReportRequest:
      case MessageType::kAdminShutdown:
      case MessageType::kStatsRequest:
      case MessageType::kUnknown:
        // Not a proxy-bound core message: let the embedding server (CLI
        // daemon) interpret client/admin extensions; otherwise drop.
        if (fallback_) fallback_(env);
        break;
    }
  } catch (const CheckError&) {
    // Internal invariant violation: a DE-Sword bug, never input-dependent.
    // Fail loudly instead of limping on with corrupt state.
    throw;
  } catch (const Error&) {
    // Any other failure while decoding or absorbing the message means the
    // bytes were adversarial or corrupt (malformed framing, conflicting
    // POCs, unknown groups, ...): drop it. Retransmission or the
    // no-response path will deal with the sender.
  }
}

void Proxy::on_ps_request(const net::Envelope& env, const PsRequest& m) {
  transport_.send(id_, env.from, msg::kPsResponse,
                  PsResponse{m.task_id, ps_bytes_}.serialize());
}

void Proxy::on_poc_list_submit(const net::Envelope& env,
                               const PocListSubmit& m) {
  (void)env;
  const Bytes digest = sha256(m.poc_list);
  const auto prev_digest = list_digests_.find(m.task_id);
  if (prev_digest != list_digests_.end() && prev_digest->second == digest) {
    return;  // retransmitted identical submission: idempotent no-op
  }
  poc::PocList list = poc::PocList::deserialize(m.poc_list);
  if (list.ps() != ps_bytes_) {
    // POCs under an unknown CRS are unverifiable; reject the task.
    return;
  }
  if (prev_digest != list_digests_.end()) {
    // Replacement: a NEW distribution epoch for this task. Retire the old
    // list (in-flight sessions keep their shared_ptr and finish under the
    // epoch they started in), flush its queue entries, and bump the
    // generation so every hop-memo entry tagged with the old epoch is
    // structurally unreachable (zkedb.cache.stale on next touch).
    lists_.erase(m.task_id);
    for (auto it = queues_.begin(); it != queues_.end();) {
      auto& queue = it->second;
      std::erase_if(queue, [&](const QueueEntry& e) {
        return e.task_id == m.task_id;
      });
      it = queue.empty() ? queues_.erase(it) : std::next(it);
    }
    ++task_generation_[m.task_id];
  }
  const auto [it, inserted] = lists_.emplace(
      m.task_id, std::make_shared<const poc::PocList>(std::move(list)));
  list_digests_[m.task_id] = digest;
  for (const std::string& initial : it->second->initial_participants()) {
    const poc::Poc* poc = it->second->find(initial);
    queues_[initial].push_back(QueueEntry{m.task_id, *poc});
  }
}

// ---------------------------------------------------------------------------
// Query driving
// ---------------------------------------------------------------------------

std::uint64_t Proxy::begin_query(const supplychain::ProductId& product,
                                 ProductQuality quality,
                                 std::optional<std::string> task_hint) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  const std::uint64_t query_id = next_query_id_++;
  Session& s = sessions_[query_id];
  s.outcome.query_id = query_id;
  s.outcome.product = product;
  s.outcome.quality = quality;
  s.trace.set_query_id(query_id);
  if (config_.query_deadline > 0) {
    // The budget covers the whole query — scheduler queue time included:
    // a verdict owed to a customer is late no matter where the time went.
    s.deadline_at = transport_.now() + config_.query_deadline;
  }
  queries_started().add();
  sessions_active().add(1);

  if (task_hint.has_value()) {
    const poc::PocList* list = task_list(*task_hint);
    if (list == nullptr) {
      throw ProtocolError("unknown task: " + *task_hint);
    }
    for (const std::string& initial : list->initial_participants()) {
      s.candidates.push_back(Candidate{initial, *task_hint, *list->find(initial)});
    }
  } else {
    for (const auto& [initial, queue] : queues_) {
      for (const QueueEntry& entry : queue) {
        s.candidates.push_back(Candidate{initial, entry.task_id, entry.poc});
      }
    }
  }

  if (s.candidates.empty()) {
    finish(s, /*complete=*/false);
    return query_id;
  }
  if (!scheduler_->submit(query_id)) {
    s.trace.record(transport_.now(), id_, obs::span::kQueued,
                   "concurrency_limit");
  }
  return query_id;
}

void Proxy::launch_query(std::uint64_t query_id) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  const auto it = sessions_.find(query_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.phase == Phase::kDone) return;
  if (deadline_expired(s)) return;  // budget burned while queued
  s.trace.record(transport_.now(), id_, obs::span::kAdmitted, "");
  const Candidate& cand = s.candidates[s.candidate_idx];
  send_tracked(s, cand.participant, msg::kQueryRequest,
               QueryRequest{query_id, s.outcome.product, s.outcome.quality,
                            cand.poc.serialize()}
                   .serialize());
}

void Proxy::send_tracked(Session& s, const net::NodeId& to,
                         const std::string& type, Bytes payload) {
  s.last_to = to;
  s.last_type = type;
  s.last_payload = payload;
  s.retries = 0;
  s.backoff = 0;  // fresh request: backoff restarts from the base delay
  s.awaiting = true;
  s.transcript.push_back(
      TranscriptEntry{transport_.now(), true, to, type, payload.size()});
  s.trace.record(transport_.now(), to, obs::span::kRequestSent, type);
  transport_.send(id_, to, type, std::move(payload));
  arm_retransmit(s);
}

void Proxy::settle(Session& s) {
  s.awaiting = false;
  if (s.retrans_timer != 0) {
    transport_.cancel_timer(s.retrans_timer);
    s.retrans_timer = 0;
  }
}

void Proxy::arm_retransmit(Session& s) {
  if (s.retrans_timer != 0) transport_.cancel_timer(s.retrans_timer);
  // Decorrelated-jitter exponential backoff: the first wait is exactly the
  // base; each retry then draws uniformly from [base, min(cap, previous *
  // backoff_factor)], so repeated stalls spread out instead of
  // retransmitting in lockstep. Values are irrelevant under SimTransport
  // (timers fire at quiescence), so simulated verdicts never depend on the
  // backoff schedule.
  const std::uint64_t base = config_.retransmit_base;
  const std::uint64_t cap = std::max(base, config_.retransmit_cap);
  std::uint64_t delay = base;
  if (s.backoff > 0 && config_.backoff_factor > 1.0) {
    const double grown =
        static_cast<double>(s.backoff) * config_.backoff_factor;
    const std::uint64_t hi =
        grown >= static_cast<double>(cap) ? cap
                                          : static_cast<std::uint64_t>(grown);
    if (hi > base) delay = base + backoff_rng_.below(hi - base + 1);
  }
  s.backoff = delay;
  const std::uint64_t query_id = s.outcome.query_id;
  s.retrans_timer = transport_.set_timer(
      delay, [this, query_id] { on_retransmit_timeout(query_id); });
}

bool Proxy::deadline_expired(Session& s) {
  if (s.deadline_at == 0 || transport_.now() < s.deadline_at) return false;
  deadlines_exceeded().add();
  s.trace.record(transport_.now(), s.last_to.empty() ? id_ : s.last_to,
                 obs::span::kDeadlineExceeded, "query_deadline");
  // Graceful degradation: the budget is gone, so the verdict is "the
  // pending peer never answered in time" — violation booked, reputation
  // penalized via the normal finish path — rather than an open session.
  if (s.awaiting && !s.last_to.empty()) {
    record_violation(s, s.last_to, ViolationType::kNoResponse);
  }
  finish(s, false);
  return true;
}

void Proxy::on_retransmit_timeout(std::uint64_t query_id) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  const auto it = sessions_.find(query_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  s.retrans_timer = 0;
  if (s.phase == Phase::kDone || !s.awaiting) return;
  if (deadline_expired(s)) return;
  while (s.retries < config_.max_retries) {
    ++s.retries;
    // Retransmissions do not get transcript entries: the transcript audits
    // the logical exchange, LinkStats count the physical bytes. The query
    // trace records them — it audits what the session actually did.
    retransmits_fired().add();
    s.trace.record(transport_.now(), s.last_to, obs::span::kRetransmit,
                   s.last_type);
    if (transport_.send(id_, s.last_to, s.last_type, s.last_payload)) {
      arm_retransmit(s);
      return;
    }
    // The transport KNOWS the peer is unreachable (deregistered node,
    // refused redial after a POLLERR/HUP close): burning a full timeout
    // per attempt would stretch a dead peer's detection to max_retries
    // timeouts. Charge the retry immediately and try again now.
    retransmits_refused().add();
  }
  record_violation(s, s.last_to, ViolationType::kNoResponse);
  if (s.phase == Phase::kInitialScan) {
    advance_candidate(s);
  } else {
    finish(s, false);
  }
}

void Proxy::record_incoming(Session& s, const net::Envelope& env) {
  s.transcript.push_back(TranscriptEntry{transport_.now(), false, env.from,
                                         env.type, env.payload.size()});
  s.trace.record(transport_.now(), env.from, obs::span::kResponseReceived,
                 env.type);
}

const std::vector<Proxy::TranscriptEntry>* Proxy::transcript(
    std::uint64_t query_id) const {
  const auto it = sessions_.find(query_id);
  return it == sessions_.end() ? nullptr : &it->second.transcript;
}

const obs::QueryTrace* Proxy::query_trace(std::uint64_t query_id) const {
  const auto it = sessions_.find(query_id);
  return it == sessions_.end() ? nullptr : &it->second.trace;
}

void Proxy::advance_candidate(Session& s) {
  ++s.candidate_idx;
  if (s.candidate_idx >= s.candidates.size()) {
    finish(s, /*complete=*/false);
    return;
  }
  const Candidate& cand = s.candidates[s.candidate_idx];
  send_tracked(s, cand.participant, msg::kQueryRequest,
               QueryRequest{s.outcome.query_id, s.outcome.product,
                            s.outcome.quality, cand.poc.serialize()}
                   .serialize());
}

void Proxy::start_walk(Session& s, const Candidate& candidate,
                       const std::optional<OwnershipCheck>& pre_verified) {
  const auto it = lists_.find(candidate.task_id);
  if (it == lists_.end()) {
    finish(s, false);
    return;
  }
  s.list = it->second;
  s.outcome.task_id = candidate.task_id;
  s.current = candidate.participant;
  s.current_poc = candidate.poc;
  s.previous.clear();
  s.visited.push_back(s.current);

  if (pre_verified.has_value()) {
    // The initial scan already verified this hop's ownership proof once;
    // absorbing the cached verdict records the hop's single verify span.
    if (!absorb_ownership_result(s, *pre_verified)) {
      // Should not happen: the caller checked validity before identifying.
      finish(s, false);
      return;
    }
    request_next_hop(s);
  } else {
    request_reveal(s);
  }
}

void Proxy::query_current(Session& s) {
  s.phase = Phase::kWalk;
  send_tracked(s, s.current, msg::kQueryRequest,
               QueryRequest{s.outcome.query_id, s.outcome.product,
                            s.outcome.quality, s.current_poc.serialize()}
                   .serialize());
}

void Proxy::request_reveal(Session& s) {
  s.phase = Phase::kReveal;
  send_tracked(s, s.current, msg::kRevealRequest,
               RevealRequest{s.outcome.query_id, s.outcome.product,
                             s.current_poc.serialize()}
                   .serialize());
}

void Proxy::request_next_hop(Session& s) {
  s.phase = Phase::kNextHop;
  send_tracked(s, s.current, msg::kNextHopRequest,
               NextHopRequest{s.outcome.query_id, s.outcome.product}
                   .serialize());
}

void Proxy::record_verify(Session& s, const std::string& peer, bool ok,
                          const char* kind) {
  s.trace.record(transport_.now(), peer,
                 ok ? obs::span::kVerifyOk : obs::span::kVerifyFail, kind);
}

Proxy::OwnershipCheck Proxy::check_ownership(
    const poc::Poc& poc, const supplychain::ProductId& product,
    const Bytes& proof_bytes) const {
  OwnershipCheck check;
  try {
    const poc::PocProof proof = poc::PocProof::deserialize(proof_bytes);
    if (!proof.ownership) return check;
    const poc::PocVerifyResult result = scheme().verify(poc, product, proof);
    if (result.verdict != poc::PocVerdict::kTrace) return check;
    check.valid = true;
    check.trace_da = *result.trace_info;
  } catch (const Error&) {
    check = OwnershipCheck{};
  }
  return check;
}

bool Proxy::check_non_ownership(const poc::Poc& poc,
                                const supplychain::ProductId& product,
                                const Bytes& proof_bytes) const {
  try {
    const poc::PocProof proof = poc::PocProof::deserialize(proof_bytes);
    return !proof.ownership &&
           scheme().verify(poc, product, proof).verdict ==
               poc::PocVerdict::kValid;
  } catch (const Error&) {
    return false;
  }
}

bool Proxy::absorb_ownership_result(Session& s, const OwnershipCheck& check) {
  record_verify(s, s.current, check.valid, "ownership");
  if (!check.valid) return false;
  RecoveredTrace trace;
  trace.da = *check.trace_da;
  try {
    trace.info = supplychain::TraceInfo::deserialize(trace.da);
  } catch (const Error&) {
    // Verifiably committed, but not a decodable TraceInfo.
  }
  s.outcome.path.push_back(s.current);
  s.outcome.traces[s.current] = std::move(trace);
  return true;
}

template <typename R>
void Proxy::verify_then(Session& s, std::function<R()> work,
                        std::function<void(Session&, const R&)> done) {
  if (!executor_) {
    // Inline mode: byte-identical to the historical synchronous path.
    const R result = work();
    done(s, result);
    return;
  }
  s.verifying = true;
  if (!s.strand) s.strand = std::make_shared<Strand>(executor_);
  const std::uint64_t query_id = s.outcome.query_id;
  // Work-accounting bracket: add_work() here on the loop thread; the
  // worker posts the verdict completion BEFORE remove_work(), so the loop
  // never observes "no work pending" while a verdict is owed (SimTransport
  // would otherwise fire stall-scan retransmission timers against a
  // verifier that is merely busy, not silent).
  transport_.add_work();
  std::weak_ptr<void> token = alive_;
  s.strand->post([this, token, query_id, strand = s.strand,
                  work = std::move(work), done = std::move(done)]() mutable {
    // Worker context: the session's strand serializes this body, and
    // everything loop-owned (sessions_, timers, sends) stays out of it —
    // the verdict travels back through transport_.post below.
    DESWORD_DCHECK(strand->running_on_this_thread(),
                   "verify task escaped its session strand");
    std::optional<R> result;
    std::exception_ptr error;
    try {
      result = work();
    } catch (...) {
      // check_* swallow adversarial Errors themselves; anything escaping
      // is an internal invariant failure, rethrown on the loop thread.
      error = std::current_exception();
    }
    transport_.post([this, token, query_id, result = std::move(result), error,
                     done = std::move(done)]() mutable {
      if (token.expired()) return;
      resume_verify<R>(query_id, std::move(result), error, done);
    });
    transport_.remove_work();
  });
}

template <typename R>
void Proxy::resume_verify(std::uint64_t query_id, std::optional<R> result,
                          std::exception_ptr error,
                          const std::function<void(Session&, const R&)>& done) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  const auto it = sessions_.find(query_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  s.verifying = false;
  if (error) std::rethrow_exception(error);
  if (s.phase == Phase::kDone) return;
  try {
    done(s, *result);
  } catch (const CheckError&) {
    throw;  // internal bug: fail loudly, exactly like handle()
  } catch (const Error&) {
    // Same policy as handle(): adversarial input aborts this continuation;
    // the session's timers recover.
  }
}

void Proxy::verify_hop_then(Session& s, const std::string& task_id,
                            poc::Poc poc, Bytes proof_bytes, bool ownership,
                            HopDone done) {
  const supplychain::ProductId product = s.outcome.product;
  const char* kind = ownership ? "ownership" : "non_ownership";
  // Worker-safe: by-value captures plus the shared read-only scheme.
  // Ownership and non-ownership checks share the VerifyOutcome shape so
  // one memo serves both flavours.
  std::function<zkedb::VerifyOutcome()> work =
      [this, poc, product, proof_bytes, ownership] {
        if (ownership) {
          OwnershipCheck c = check_ownership(poc, product, proof_bytes);
          return zkedb::VerifyOutcome{c.valid, std::move(c.trace_da)};
        }
        return zkedb::VerifyOutcome{
            check_non_ownership(poc, product, proof_bytes), std::nullopt};
      };

  if (!verify_cache_ || !verify_policy_.cache_hops) {
    verify_then<zkedb::VerifyOutcome>(s, std::move(work), std::move(done));
    return;
  }

  // The memo key binds the FULL proof bytes (a tampered proof can never
  // alias a cached acceptance); the epoch tag is the task's POC-list
  // generation, so entries from before a list replacement are dead.
  const std::uint64_t epoch = task_epoch(task_id);
  Bytes key = zkedb::VerifyCache::hop_key(task_id, poc.participant, product,
                                          poc.commitment, proof_bytes, kind);
  if (const auto hit = verify_cache_->lookup(key, epoch)) {
    // Same calling context as the inline verify_then path: the enclosing
    // handle()/resume discipline covers exceptions out of `done`.
    done(s, *hit);
    return;
  }

  if (!executor_) {
    verify_then<zkedb::VerifyOutcome>(
        s, std::move(work),
        [this, key = std::move(key), epoch, done = std::move(done)](
            Session& s, const zkedb::VerifyOutcome& o) {
          verify_cache_->store(key, o, epoch);
          done(s, o);
        });
    return;
  }

  // Executor mode: single-flight. The first arrival for this key runs the
  // check on its strand; identical concurrent hops (other sessions racing
  // the same proof bytes) just enqueue a waiter — one multi-exp, N
  // verdict deliveries, mirroring the participant's reply-cache join.
  const auto [it, inserted] = hop_in_flight_.try_emplace(key);
  it->second.push_back(HopWaiter{s.outcome.query_id, std::move(done)});
  if (!inserted) {
    hops_joined().add();
    s.verifying = true;  // resolved by finish_hop_verify
    return;
  }
  start_hop_verify(s, std::move(key), epoch, std::move(work));
}

void Proxy::start_hop_verify(Session& s, Bytes key, std::uint64_t epoch,
                             std::function<zkedb::VerifyOutcome()> work) {
  s.verifying = true;
  if (!s.strand) s.strand = std::make_shared<Strand>(executor_);
  // Same work-accounting bracket as verify_then (see there); the verdict
  // resolves through finish_hop_verify instead of resume_verify because
  // resume's single-session early returns would strand joined waiters.
  transport_.add_work();
  std::weak_ptr<void> token = alive_;
  s.strand->post([this, token, key = std::move(key), epoch, strand = s.strand,
                  work = std::move(work)]() mutable {
    DESWORD_DCHECK(strand->running_on_this_thread(),
                   "hop verify task escaped its session strand");
    std::optional<zkedb::VerifyOutcome> result;
    std::exception_ptr error;
    try {
      result = work();
    } catch (...) {
      // check_* swallow adversarial Errors themselves; anything escaping
      // is an internal invariant failure, rethrown on the loop thread.
      error = std::current_exception();
    }
    transport_.post([this, token, key = std::move(key), epoch,
                     result = std::move(result), error]() mutable {
      if (token.expired()) return;
      finish_hop_verify(key, epoch, std::move(result), error);
    });
    transport_.remove_work();
  });
}

void Proxy::finish_hop_verify(const Bytes& key, std::uint64_t epoch,
                              std::optional<zkedb::VerifyOutcome> result,
                              std::exception_ptr error) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  auto node = hop_in_flight_.extract(key);
  if (error) std::rethrow_exception(error);
  const zkedb::VerifyOutcome& o = *result;
  verify_cache_->store(key, o, epoch);
  if (node.empty()) return;
  for (HopWaiter& w : node.mapped()) {
    const auto it = sessions_.find(w.query_id);
    if (it == sessions_.end()) continue;
    Session& ws = it->second;
    ws.verifying = false;
    if (ws.phase == Phase::kDone) continue;
    try {
      w.done(ws, o);
    } catch (const CheckError&) {
      throw;  // internal bug: fail loudly, exactly like handle()
    } catch (const Error&) {
      // Adversarial input aborts this continuation; timers recover.
    }
  }
}

void Proxy::verify_ownership_then(
    Session& s, const std::string& task_id, poc::Poc poc, Bytes proof_bytes,
    std::function<void(Session&, const OwnershipCheck&)> done) {
  verify_hop_then(
      s, task_id, std::move(poc), std::move(proof_bytes), /*ownership=*/true,
      [done = std::move(done)](Session& s, const zkedb::VerifyOutcome& o) {
        done(s, OwnershipCheck{o.ok, o.value});
      });
}

void Proxy::verify_non_ownership_then(
    Session& s, const std::string& task_id, poc::Poc poc, Bytes proof_bytes,
    std::function<void(Session&, bool)> done) {
  verify_hop_then(
      s, task_id, std::move(poc), std::move(proof_bytes), /*ownership=*/false,
      [done = std::move(done)](Session& s, const zkedb::VerifyOutcome& o) {
        done(s, o.ok);
      });
}

void Proxy::record_violation(Session& s, const std::string& participant,
                             ViolationType type) {
  s.outcome.violations.push_back(Violation{participant, type});
  violations_detected().add();
  s.trace.record(transport_.now(), participant, obs::span::kViolation,
                 to_string(type));
}

void Proxy::finish(Session& s, bool complete) {
  if (s.phase == Phase::kDone) return;
  s.phase = Phase::kDone;
  settle(s);
  s.outcome.complete = complete;
  s.trace.record(transport_.now(), id_, obs::span::kFinished,
                 complete ? "complete" : "incomplete");
  queries_completed().add();
  sessions_active().add(-1);
  apply_scores(s);
  if (completion_cb_) completion_cb_(s.outcome);
  // Free the concurrency slot last: this may synchronously launch (and
  // even resolve) the next queued query.
  if (scheduler_) scheduler_->finished(s.outcome.query_id);
}

void Proxy::apply_scores(Session& s) {
  const std::uint64_t qid = s.outcome.query_id;
  if (s.outcome.quality == ProductQuality::kGood) {
    for (const std::string& p : s.outcome.path) {
      ledger_.apply(p, config_.scores.positive, "good-product-query", qid);
    }
  } else {
    for (std::size_t i = 0; i < s.outcome.path.size(); ++i) {
      double delta = -config_.scores.negative;
      if (config_.scores.weight_by_responsibility && i == 0) {
        delta *= config_.scores.source_multiplier;
      }
      ledger_.apply(s.outcome.path[i], delta, "bad-product-query", qid);
    }
  }
  for (const Violation& v : s.outcome.violations) {
    ledger_.apply(v.participant, -config_.scores.violation_penalty,
                  "violation:" + to_string(v.type), qid);
  }
}

void Proxy::on_query_response(const net::Envelope& env,
                              const QueryResponse& m) {
  const auto it = sessions_.find(m.query_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.phase == Phase::kDone || s.verifying) return;

  if (s.phase == Phase::kInitialScan) {
    if (s.candidate_idx >= s.candidates.size()) return;
    const Candidate cand = s.candidates[s.candidate_idx];
    if (env.from != cand.participant) return;  // stray
    settle(s);
    record_incoming(s, env);
    s.current_poc = cand.poc;  // verification target during the scan

    if (s.outcome.quality == ProductQuality::kGood) {
      if (m.claims_processing && m.proof.has_value()) {
        // One verify identifies the hop AND yields its recovered trace:
        // start_walk absorbs the cached verdict, recording the single
        // verify_ok span for this hop.
        verify_ownership_then(
            s, cand.task_id, cand.poc, *m.proof,
            [this, cand](Session& s, const OwnershipCheck& check) {
              if (check.valid) {
                start_walk(s, cand, check);
              } else {
                record_verify(s, cand.participant, false, "ownership");
                record_violation(s, cand.participant,
                                 ViolationType::kClaimProcessingInvalidProof);
                advance_candidate(s);
              }
            });
      } else if (m.claims_processing) {
        record_violation(s, cand.participant,
                         ViolationType::kClaimProcessingInvalidProof);
        advance_candidate(s);
      } else {
        advance_candidate(s);
      }
      return;
    }

    // Bad product scan: demand a valid non-ownership proof per queue entry.
    if (!m.claims_processing && m.proof.has_value()) {
      verify_non_ownership_then(
          s, cand.task_id, cand.poc, *m.proof,
          [this, cand](Session& s, bool valid) {
            record_verify(s, cand.participant, valid, "non_ownership");
            if (valid) {
              advance_candidate(s);
            } else {
              record_violation(s, cand.participant,
                               ViolationType::kClaimNonProcessingInvalidProof);
              start_walk(s, cand, std::nullopt);
            }
          });
    } else if (!m.claims_processing) {
      record_violation(s, cand.participant,
                       ViolationType::kClaimNonProcessingInvalidProof);
      start_walk(s, cand, std::nullopt);
    } else {
      // Admits processing: identified; proceed to the reveal round.
      start_walk(s, cand, std::nullopt);
    }
    return;
  }

  if (s.phase != Phase::kWalk || env.from != s.current) return;
  settle(s);
  record_incoming(s, env);

  if (s.outcome.quality == ProductQuality::kGood) {
    if (m.claims_processing && m.proof.has_value()) {
      verify_ownership_then(
          s, s.outcome.task_id, s.current_poc, *m.proof,
          [this](Session& s, const OwnershipCheck& check) {
            if (absorb_ownership_result(s, check)) {
              request_next_hop(s);
              return;
            }
            record_violation(s, s.current,
                             ViolationType::kClaimProcessingInvalidProof);
            finish(s, false);
          });
      return;
    }
    if (m.claims_processing) {
      record_violation(s, s.current,
                       ViolationType::kClaimProcessingInvalidProof);
      finish(s, false);
      return;
    }
    // Denied in the good case: with a correct POC list this means the
    // previous hop misdirected us.
    if (!s.previous.empty()) {
      record_violation(s, s.previous,
                       ViolationType::kWrongNextHopNotProcessed);
    }
    finish(s, false);
    return;
  }

  // Bad product walk.
  if (!m.claims_processing && m.proof.has_value()) {
    verify_non_ownership_then(
        s, s.outcome.task_id, s.current_poc, *m.proof,
        [this](Session& s, bool valid) {
          record_verify(s, s.current, valid, "non_ownership");
          if (valid) {
            // Really did not process the product: the referrer lied.
            if (!s.previous.empty()) {
              record_violation(s, s.previous,
                               ViolationType::kWrongNextHopNotProcessed);
            }
            finish(s, false);
            return;
          }
          record_violation(s, s.current,
                           ViolationType::kClaimNonProcessingInvalidProof);
          request_reveal(s);
        });
    return;
  }
  if (!m.claims_processing) {
    record_violation(s, s.current,
                     ViolationType::kClaimNonProcessingInvalidProof);
    request_reveal(s);
    return;
  }
  request_reveal(s);
}

void Proxy::on_reveal_response(const net::Envelope& env,
                               const RevealResponse& m) {
  const auto it = sessions_.find(m.query_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.phase != Phase::kReveal || env.from != s.current || s.verifying) {
    return;
  }
  settle(s);
  record_incoming(s, env);

  if (!m.proof.has_value()) {
    record_violation(s, s.current, ViolationType::kRefusedReveal);
    finish(s, false);
    return;
  }
  verify_ownership_then(s, s.outcome.task_id, s.current_poc, *m.proof,
                        [this](Session& s, const OwnershipCheck& check) {
                          if (!absorb_ownership_result(s, check)) {
                            record_violation(s, s.current,
                                             ViolationType::kInvalidReveal);
                            finish(s, false);
                            return;
                          }
                          request_next_hop(s);
                        });
}

void Proxy::on_next_hop_response(const net::Envelope& env,
                                 const NextHopResponse& m) {
  const auto it = sessions_.find(m.query_id);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.phase != Phase::kNextHop || env.from != s.current || s.verifying) {
    return;
  }
  settle(s);
  record_incoming(s, env);

  if (!m.next.has_value()) {
    if (s.list->children_of(s.current).empty()) {
      finish(s, /*complete=*/true);
    } else {
      record_violation(s, s.current, ViolationType::kFalseTermination);
      finish(s, false);
    }
    return;
  }
  const std::string& next = *m.next;
  const bool revisits =
      std::find(s.visited.begin(), s.visited.end(), next) != s.visited.end();
  if (revisits || !s.list->has_edge(s.current, next)) {
    record_violation(s, s.current, ViolationType::kWrongNextHopNotChild);
    finish(s, false);
    return;
  }
  s.previous = s.current;
  s.current = next;
  s.current_poc = *s.list->find(next);
  s.visited.push_back(next);
  query_current(s);
}

bool Proxy::has_active_sessions() const {
  for (const auto& [qid, s] : sessions_) {
    if (s.phase != Phase::kDone) return true;
  }
  return false;
}

void Proxy::pump() {
  // Every in-flight session owns a retransmission timer, so progress is
  // timer-driven: each poll() either delivers messages or fires due timers
  // (SimTransport fires them at quiescence; SocketTransport after real
  // timeouts). A session always resolves after at most
  // max_retries * timeout of silence per request.
  constexpr int kMaxRounds = 1000000;
  for (int round = 0; round < kMaxRounds; ++round) {
    transport_.poll(/*timeout_ms=*/10);
    if (!has_active_sessions()) return;
  }
  pump_stalled().add();
  throw ProtocolError(pump_stall_report());
}

const char* Proxy::phase_name(Phase phase) {
  switch (phase) {
    case Phase::kInitialScan: return "initial_scan";
    case Phase::kWalk: return "walk";
    case Phase::kReveal: return "reveal";
    case Phase::kNextHop: return "next_hop";
    case Phase::kDone: return "done";
  }
  return "?";
}

std::string Proxy::pump_stall_report() const {
  // Reads session phase/candidate state, which is loop-owned: a stall
  // report assembled from a worker thread would race the very state it is
  // describing.
  DESWORD_DCHECK_ON_LOOP(transport_);
  std::string msg = "proxy pump did not converge:";
  std::size_t active = 0;
  for (const auto& [qid, s] : sessions_) {
    if (s.phase == Phase::kDone) continue;
    ++active;
    msg += " [qid " + std::to_string(qid) + " phase=" + phase_name(s.phase);
    if (scheduler_ && scheduler_->is_queued(qid)) msg += " queued";
    msg += " hop=" + (s.current.empty() ? std::string("-") : s.current) +
           " candidate=" + std::to_string(s.candidate_idx + 1) + "/" +
           std::to_string(s.candidates.size()) +
           " awaiting=" + (s.awaiting ? "1" : "0") +
           " verifying=" + (s.verifying ? "1" : "0") +
           " retries=" + std::to_string(s.retries) + "]";
  }
  msg += " (" + std::to_string(active) + " active sessions, " +
         std::to_string(transport_.pending_timers()) + " pending timers)";
  return msg;
}

QueryOutcome Proxy::run_query(const supplychain::ProductId& product,
                              ProductQuality quality,
                              std::optional<std::string> task_hint) {
  const std::uint64_t qid = begin_query(product, quality, task_hint);
  pump();
  const QueryOutcome* out = outcome(qid);
  if (out == nullptr) throw ProtocolError("query did not resolve");
  return *out;
}

std::vector<QueryOutcome> Proxy::run_queries(
    const std::vector<QuerySpec>& specs) {
  std::vector<std::uint64_t> ids;
  ids.reserve(specs.size());
  for (const QuerySpec& spec : specs) {
    ids.push_back(begin_query(spec.product, spec.quality, spec.task_hint));
  }
  pump();
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(ids.size());
  for (const std::uint64_t qid : ids) {
    const QueryOutcome* out = outcome(qid);
    if (out == nullptr) throw ProtocolError("query did not resolve");
    outcomes.push_back(*out);
  }
  return outcomes;
}

std::vector<QueryOutcome> Proxy::run_queries(
    const std::vector<supplychain::ProductId>& products, ProductQuality quality,
    std::optional<std::string> task_hint) {
  std::vector<QuerySpec> specs;
  specs.reserve(products.size());
  for (const supplychain::ProductId& product : products) {
    specs.push_back(QuerySpec{product, quality, task_hint});
  }
  return run_queries(specs);
}

const QueryOutcome* Proxy::outcome(std::uint64_t query_id) const {
  const auto it = sessions_.find(query_id);
  if (it == sessions_.end() || it->second.phase != Phase::kDone) {
    return nullptr;
  }
  return &it->second.outcome;
}

double Proxy::reputation(const std::string& participant) const {
  return ledger_.score(participant);
}

std::map<std::string, double> Proxy::reputation_snapshot() const {
  return ledger_.snapshot();
}

std::string Proxy::export_stats_json() const {
  json::Object stats;
  stats["metrics"] = obs::MetricsRegistry::global().snapshot_value();

  json::Object scores;
  for (const auto& [participant, score] : ledger_.scores()) {
    scores[participant] = json::Value(score);
  }
  stats["reputation"] = json::Value(std::move(scores));

  json::Array traces;
  for (const auto& [qid, session] : sessions_) {
    traces.push_back(session.trace.to_json());
  }
  stats["traces"] = json::Value(std::move(traces));

  return json::Value(std::move(stats)).dump_pretty();
}

std::string Proxy::export_report_json() const {
  json::Object report;

  json::Object scores;
  for (const auto& [participant, score] : ledger_.scores()) {
    scores[participant] = json::Value(score);
  }
  report["reputation"] = json::Value(std::move(scores));

  json::Array events;
  for (const ReputationEvent& event : ledger_.history()) {
    json::Object e;
    e["participant"] = json::Value(event.participant);
    e["delta"] = json::Value(event.delta);
    e["reason"] = json::Value(event.reason);
    e["query_id"] = json::Value(static_cast<std::int64_t>(event.query_id));
    events.push_back(json::Value(std::move(e)));
  }
  report["events"] = json::Value(std::move(events));

  json::Array queries;
  for (const auto& [qid, session] : sessions_) {
    if (session.phase != Phase::kDone) continue;
    const QueryOutcome& outcome = session.outcome;
    json::Object q;
    q["query_id"] = json::Value(static_cast<std::int64_t>(qid));
    q["product"] = json::Value(to_hex(outcome.product));
    q["quality"] = json::Value(to_string(outcome.quality));
    q["task"] = json::Value(outcome.task_id);
    q["complete"] = json::Value(outcome.complete);
    json::Array path;
    for (const auto& hop : outcome.path) path.push_back(json::Value(hop));
    q["path"] = json::Value(std::move(path));
    json::Array violations;
    for (const Violation& v : outcome.violations) {
      json::Object vo;
      vo["participant"] = json::Value(v.participant);
      vo["type"] = json::Value(to_string(v.type));
      violations.push_back(json::Value(std::move(vo)));
    }
    q["violations"] = json::Value(std::move(violations));
    queries.push_back(json::Value(std::move(q)));
  }
  report["queries"] = json::Value(std::move(queries));

  return json::Value(std::move(report)).dump_pretty();
}

}  // namespace desword::protocol
