#include "desword/reputation.h"

namespace desword::protocol {

void ReputationLedger::apply(const std::string& participant, double delta,
                             const std::string& reason,
                             std::uint64_t query_id) {
  scores_[participant] += delta;
  events_.push_back(ReputationEvent{participant, delta, reason, query_id});
}

double ReputationLedger::score(const std::string& participant) const {
  const auto it = scores_.find(participant);
  return it == scores_.end() ? 0.0 : it->second;
}

}  // namespace desword::protocol
