#include "desword/reputation.h"

#include "obs/metrics.h"

namespace desword::protocol {

namespace {

obs::Counter& reputation_events() {
  static obs::Counter& c = obs::metric("protocol.reputation.events");
  return c;
}

obs::Counter& reputation_dropped() {
  static obs::Counter& c = obs::metric("protocol.reputation.dropped");
  return c;
}

}  // namespace

void ReputationLedger::apply(const std::string& participant, double delta,
                             const std::string& reason,
                             std::uint64_t query_id) {
  scores_[participant] += delta;
  events_.push_back(ReputationEvent{participant, delta, reason, query_id});
  events_applied_ += 1;
  reputation_events().add();
  while (history_cap_ > 0 && events_.size() > history_cap_) {
    events_.pop_front();
    events_dropped_ += 1;
    reputation_dropped().add();
  }
}

void ReputationLedger::set_history_cap(std::size_t cap) {
  history_cap_ = cap;
  while (history_cap_ > 0 && events_.size() > history_cap_) {
    events_.pop_front();
    events_dropped_ += 1;
    reputation_dropped().add();
  }
}

double ReputationLedger::score(const std::string& participant) const {
  const auto it = scores_.find(participant);
  return it == scores_.end() ? 0.0 : it->second;
}

}  // namespace desword::protocol
