// Dishonest-behaviour configuration (the threat models of §III).
//
// A participant's behaviour is honest unless specific deviations are
// configured. Distribution-phase deviations corrupt what goes into the POC;
// query-phase deviations corrupt the answers. Coordinated (colluding)
// adversaries are modelled by configuring the same deviation on every
// participant along a path — exactly the paper's collusion scenario.
#pragma once

#include <map>
#include <set>
#include <string>

#include "common/bytes.h"
#include "supplychain/rfid.h"

namespace desword::protocol {

/// §III-A: deviations applied while constructing the POC.
struct DistributionBehavior {
  /// Deletion: omit the RFID-trace of these products from the POC.
  std::set<supplychain::ProductId> delete_ids;
  /// Addition: commit a fake RFID-trace for these products (id -> fake da).
  std::map<supplychain::ProductId, Bytes> add_fake;
  /// Modification: replace the committed da of these products.
  std::map<supplychain::ProductId, Bytes> modify;

  bool is_honest() const {
    return delete_ids.empty() && add_fake.empty() && modify.empty();
  }
};

/// §III-B: deviations applied while answering queries.
struct QueryBehavior {
  /// Claim non-processing (bad product case): attempt a forged
  /// non-ownership proof for these products.
  std::set<supplychain::ProductId> claim_non_processing;
  /// Claim processing (good product case): attempt a forged ownership
  /// proof for these products.
  std::set<supplychain::ProductId> claim_processing;
  /// Return a wrong RFID-trace: tamper with the revealed value.
  std::set<supplychain::ProductId> wrong_trace;
  /// Return the identity of a wrong next participant.
  std::map<supplychain::ProductId, std::string> wrong_next;
  /// Claim to be the last hop for these products although they moved on.
  std::set<supplychain::ProductId> false_termination;
  /// Bit-flip the serialized proof for these products before sending:
  /// models wire corruption or crude tampering. The proxy must treat it as
  /// a clean verification failure, never crash.
  std::set<supplychain::ProductId> corrupt_proof;
  /// Refuse to reveal an ownership proof when identified in the bad case.
  bool refuse_reveal = false;
  /// Ignore queries entirely (models a withdrawn/offline participant).
  bool unresponsive = false;

  bool is_honest() const {
    return claim_non_processing.empty() && claim_processing.empty() &&
           wrong_trace.empty() && wrong_next.empty() &&
           false_termination.empty() && corrupt_proof.empty() &&
           !refuse_reveal && !unresponsive;
  }
};

}  // namespace desword::protocol
