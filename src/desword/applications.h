// Supply-chain applications built on verifiable path queries (§I).
//
// The paper motivates DE-Sword with contamination localization,
// counterfeit detection and targeted product recall; this module provides
// them as library features over the proxy's query API:
//
//   * ContaminationInvestigator — bad-product query, source localization,
//     and computation of the targeted recall set (all sibling products
//     whose verified paths share the suspect stage);
//   * CounterfeitDetector — provenance check: a product is authentic only
//     if its full path verifies and originates at a licensed initial
//     participant;
//   * MarketSampler — the paper's "adjust the query frequency by sampling
//     products from the market": drives sampled queries through a quality
//     oracle.
#pragma once

#include <functional>
#include <set>
#include <vector>

#include "desword/proxy.h"
#include "supplychain/graph.h"

namespace desword::protocol {

struct InvestigationReport {
  /// The bad-product path query that anchored the investigation.
  QueryOutcome bad_query;
  /// First identified participant (heaviest responsibility).
  std::string source;
  /// The stage whose throughput defines the recall set.
  std::string suspect_stage;
  /// Sibling products verified to have passed through the suspect stage.
  std::vector<supplychain::ProductId> recall_set;
  /// All sibling query outcomes (for audit).
  std::vector<QueryOutcome> sibling_queries;

  bool located() const { return !source.empty(); }
};

class ContaminationInvestigator {
 public:
  explicit ContaminationInvestigator(Proxy& proxy) : proxy_(proxy) {}

  /// Investigates `bad_product`: runs the bad-product query, picks the
  /// suspect stage (hop index `suspect_hop` of the recovered path, clamped
  /// to its length), then runs good-product queries over `lot` and
  /// collects every product whose verified path contains the suspect
  /// stage. Products that fail to verify are excluded from the recall set
  /// but their outcomes are reported.
  InvestigationReport investigate(
      const supplychain::ProductId& bad_product,
      const std::vector<supplychain::ProductId>& lot,
      std::size_t suspect_hop = 1,
      std::optional<std::string> task_hint = {});

 private:
  Proxy& proxy_;
};

enum class ProvenanceVerdict : std::uint8_t {
  /// Complete verified path from a licensed initial participant.
  kAuthentic,
  /// No participant could prove ownership — likely counterfeit.
  kUnknownOrigin,
  /// A path exists but is broken or starts at an unlicensed source.
  kSuspect,
};

std::string to_string(ProvenanceVerdict verdict);

struct ProvenanceReport {
  ProvenanceVerdict verdict = ProvenanceVerdict::kUnknownOrigin;
  std::string reason;
  QueryOutcome query;
};

class CounterfeitDetector {
 public:
  CounterfeitDetector(Proxy& proxy,
                      std::set<supplychain::ParticipantId> licensed_initials)
      : proxy_(proxy), licensed_(std::move(licensed_initials)) {}

  /// Checks the provenance of a product sampled from the market.
  ProvenanceReport check(const supplychain::ProductId& product);

 private:
  Proxy& proxy_;
  std::set<supplychain::ParticipantId> licensed_;
};

class MarketSampler {
 public:
  using QualityOracle =
      std::function<ProductQuality(const supplychain::ProductId&)>;

  MarketSampler(Proxy& proxy, std::uint64_t seed)
      : proxy_(proxy), rng_(seed) {}

  /// Samples each product independently with probability `rate`, asks the
  /// oracle for its quality (e.g. a lab check), and runs the query. The
  /// double-edged scores land on the ledger as a side effect.
  std::vector<QueryOutcome> sweep(
      const std::vector<supplychain::ProductId>& products, double rate,
      const QualityOracle& oracle);

  std::uint64_t sampled_count() const { return sampled_; }

 private:
  Proxy& proxy_;
  SimRng rng_;
  std::uint64_t sampled_ = 0;
};

}  // namespace desword::protocol
