#include "desword/participant.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/hash.h"
#include "obs/metrics.h"
#include "zkedb/proof.h"

namespace desword::protocol {

namespace {

/// Interval between ps re-requests by the initial participant and report
/// re-sends by the others (transport clock units; see
/// ProxyConfig::retransmit_base for semantics).
constexpr std::uint64_t kPsRetryInterval = 500;

obs::Counter& reply_cache_hits() {
  static obs::Counter& c = obs::metric("net.reply_cache.hits");
  return c;
}

obs::Counter& reply_cache_misses() {
  static obs::Counter& c = obs::metric("net.reply_cache.misses");
  return c;
}

obs::Counter& reply_cache_evictions() {
  static obs::Counter& c = obs::metric("net.reply_cache.evictions");
  return c;
}

obs::Counter& reply_cache_joined() {
  static obs::Counter& c = obs::metric("net.reply_cache.joined");
  return c;
}

obs::Counter& ownership_proofs() {
  static obs::Counter& c = obs::metric("protocol.proof.ownership");
  return c;
}

obs::Counter& non_ownership_proofs() {
  static obs::Counter& c = obs::metric("protocol.proof.non_ownership");
  return c;
}

obs::Counter& proof_memo_hits() {
  static obs::Counter& c = obs::metric("protocol.proof.memo_hits");
  return c;
}

/// Proof-memo entry bound: generous for a real deployment (a participant
/// proves per (commitment, product) it ever served) while still bounding
/// memory against a hostile query stream sweeping fabricated product ids.
constexpr std::size_t kProofMemoCap = 4096;

obs::Counter& distribution_orphaned() {
  static obs::Counter& c = obs::metric("net.distribution.orphaned");
  return c;
}

obs::Counter& distribution_gaveup() {
  static obs::Counter& c = obs::metric("protocol.distribution.gaveup");
  return c;
}

}  // namespace

Participant::Participant(ParticipantId id, net::Transport& transport,
                         net::NodeId proxy, ParticipantDeps deps)
    : Participant(std::move(id), nullptr, &transport, std::move(proxy),
                  std::move(deps)) {}

Participant::Participant(ParticipantId id, net::Network& network,
                         net::NodeId proxy, CrsCachePtr crs_cache)
    : Participant(std::move(id), std::make_unique<net::SimTransport>(network),
                  nullptr, std::move(proxy),
                  ParticipantDeps{std::move(crs_cache)}) {}

Participant::Participant(ParticipantId id,
                         std::unique_ptr<net::SimTransport> owned,
                         net::Transport* transport, net::NodeId proxy,
                         ParticipantDeps deps)
    : id_(std::move(id)),
      owned_transport_(std::move(owned)),
      transport_(owned_transport_ ? static_cast<net::Transport&>(
                                        *owned_transport_)
                                  : *transport),
      proxy_(std::move(proxy)),
      crs_cache_(std::move(deps.crs_cache)) {
  transport_.register_node(id_,
                           [this](const net::Envelope& env) { handle(env); });
}

Participant::~Participant() {
  // Finish in-flight proof builds first: after the drain no worker touches
  // this object (or its owned transport) again. Completions already posted
  // to the loop guard themselves with the aliveness token.
  if (strand_) strand_->drain();
  for (auto& [task_id, task] : tasks_) {
    if (task.ps_retry_timer != 0) transport_.cancel_timer(task.ps_retry_timer);
    if (task.report_retry_timer != 0) {
      transport_.cancel_timer(task.report_retry_timer);
    }
  }
  if (transport_.has_node(id_)) transport_.unregister_node(id_);
}

void Participant::set_executor(std::shared_ptr<Executor> executor) {
  if (strand_) strand_->drain();
  executor_ = std::move(executor);
  strand_ = executor_ ? std::make_unique<Strand>(executor_) : nullptr;
}

void Participant::load_database(supplychain::TraceDatabase db) {
  db_ = std::move(db);
}

void Participant::set_distribution_behavior(DistributionBehavior behavior) {
  dist_behavior_ = std::move(behavior);
}

void Participant::set_query_behavior(QueryBehavior behavior) {
  query_behavior_ = std::move(behavior);
}

void Participant::begin_task(const TaskSetup& setup) {
  if (setup.task_id.empty()) throw ProtocolError("task id must be non-empty");
  TaskState state;
  state.setup = setup;
  tasks_[setup.task_id] = std::move(state);
  for (const auto& [product, next] : setup.shipments) {
    shipments_[product] = next;
  }
}

void Participant::initiate_task(const std::string& task_id) {
  TaskState& task = tasks_.at(task_id);
  if (task.setup.initial != id_) {
    throw ProtocolError("only the initial participant initiates a task");
  }
  // An explicit (re-)kick restarts the give-up budget and clears a prior
  // task-level failure.
  task.ps_retries = 0;
  task.error.clear();
  transport_.send(id_, proxy_, msg::kPsRequest,
                  PsRequest{task_id}.serialize());
  if (task.ps_retry_timer != 0) transport_.cancel_timer(task.ps_retry_timer);
  task.ps_retry_timer = transport_.set_timer(
      kPsRetryInterval, [this, task_id] { on_ps_retry(task_id); });
}

std::string Participant::missing_reports(const TaskState& task) {
  std::string missing;
  for (const ParticipantId& p : task.setup.involved) {
    if (task.reports_received.count(p) > 0) continue;
    if (!missing.empty()) missing += ", ";
    missing += p;
  }
  return missing;
}

void Participant::on_ps_retry(const std::string& task_id) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  TaskState& task = it->second;
  task.ps_retry_timer = 0;
  if (task.list_submitted) {
    // The submit itself has no ack, so a lost one is invisible here:
    // re-send it (the proxy dedups) until the retry budget runs out. A
    // delivered submit makes these re-sends no-ops; a lost one no longer
    // wedges the whole task.
    if (++task.ps_retries < max_distribution_retries_) {
      transport_.send(
          id_, proxy_, msg::kPocListSubmit,
          PocListSubmit{task_id, task.list.serialize()}.serialize());
      task.ps_retry_timer = transport_.set_timer(
          kPsRetryInterval, [this, task_id] { on_ps_retry(task_id); });
    }
    return;
  }
  if (++task.ps_retries >= max_distribution_retries_) {
    // Bounded wait on "every report arrived": give the task up with an
    // error naming exactly who never reported, instead of re-requesting ps
    // forever. One permanently-dark participant must not wedge the task.
    task.error = "distribution gave up after " +
                 std::to_string(task.ps_retries) +
                 " retries; missing reports from: " + missing_reports(task);
    distribution_gaveup().add();
    return;
  }
  // Re-request ps. A duplicate ps response triggers the full re-broadcast /
  // re-report recovery chain, healing any message lost anywhere in the
  // distribution phase.
  transport_.send(id_, proxy_, msg::kPsRequest,
                  PsRequest{task_id}.serialize());
  task.ps_retry_timer = transport_.set_timer(
      kPsRetryInterval, [this, task_id] { on_ps_retry(task_id); });
}

void Participant::arm_report_retry(TaskState& task) {
  if (task.report_retry_timer != 0 ||
      task.report_retries >= max_distribution_retries_) {
    return;
  }
  const std::string task_id = task.setup.task_id;
  task.report_retry_timer = transport_.set_timer(
      kPsRetryInterval, [this, task_id] { on_report_retry(task_id); });
}

void Participant::on_report_retry(const std::string& task_id) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return;
  TaskState& task = it->second;
  task.report_retry_timer = 0;
  if (task.setup.initial == id_ || !task.own_poc.has_value()) return;
  ++task.report_retries;
  // PocToParent / PocPairsToInitial carry no acks, so losses are invisible
  // to the sender: re-send both, bounded, and rely on receiver-side dedup.
  for (const ParticipantId& parent : task.setup.parents) {
    transport_.send(id_, parent, msg::kPocToParent,
                    PocToParent{task_id, task.own_poc->serialize()}
                        .serialize());
  }
  if (task.pairs_sent) {
    PocPairsToInitial report;
    report.task_id = task.setup.task_id;
    report.own_poc = task.own_poc->serialize();
    report.pairs = task.pairs;
    transport_.send(id_, task.setup.initial, msg::kPocPairsToInitial,
                    report.serialize());
  }
  arm_report_retry(task);
}

std::string Participant::task_error(const std::string& task_id) const {
  const auto it = tasks_.find(task_id);
  return it == tasks_.end() ? std::string() : it->second.error;
}

void Participant::set_max_distribution_retries(int retries) {
  if (retries < 1) throw ProtocolError("distribution retries must be >= 1");
  max_distribution_retries_ = retries;
}

bool Participant::task_complete(const std::string& task_id) const {
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end()) return false;
  const TaskState& task = it->second;
  if (task.setup.initial == id_) return task.list_submitted;
  return task.pairs_sent;
}

const poc::Poc* Participant::poc_for_task(const std::string& task_id) const {
  const auto it = tasks_.find(task_id);
  if (it == tasks_.end() || !it->second.own_poc.has_value()) return nullptr;
  return &*it->second.own_poc;
}

void Participant::handle(const net::Envelope& env) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  try {
    dispatch(env);
  } catch (const CheckError&) {
    // Internal invariant violation: a DE-Sword bug, never input-dependent.
    throw;
  } catch (const Error&) {
    // Malformed or adversarial message from the network: drop it
    // (retransmission and the proxy's no-response handling recover the
    // protocol). This covers decode failures and deeper rejections alike —
    // e.g. a hostile peer shipping conflicting POCs or an unparseable ps.
  }
}

void Participant::dispatch(const net::Envelope& env) {
  switch (message_type_of(env.type)) {
    case MessageType::kPsResponse:
      on_ps_response(PsResponse::deserialize(env.payload));
      break;
    case MessageType::kPsBroadcast:
      on_ps_broadcast(PsBroadcast::deserialize(env.payload));
      break;
    case MessageType::kPocToParent:
      on_poc_to_parent(env, PocToParent::deserialize(env.payload));
      break;
    case MessageType::kPocPairsToInitial:
      on_poc_pairs_to_initial(env,
                              PocPairsToInitial::deserialize(env.payload));
      break;
    case MessageType::kQueryRequest:
      on_query_request(env, QueryRequest::deserialize(env.payload));
      break;
    case MessageType::kRevealRequest:
      on_reveal_request(env, RevealRequest::deserialize(env.payload));
      break;
    case MessageType::kNextHopRequest:
      on_next_hop_request(env, NextHopRequest::deserialize(env.payload));
      break;
    case MessageType::kPsRequest:
    case MessageType::kPocListSubmit:
    case MessageType::kQueryResponse:
    case MessageType::kRevealResponse:
    case MessageType::kNextHopResponse:
    case MessageType::kClientQueryRequest:
    case MessageType::kClientQueryResponse:
    case MessageType::kStatusRequest:
    case MessageType::kStatusResponse:
    case MessageType::kClientReportRequest:
    case MessageType::kAdminShutdown:
    case MessageType::kStatsRequest:
    case MessageType::kUnknown:
      // Admin extensions (daemon shutdown etc.); unknown types are
      // otherwise ignored (forward compatibility).
      if (fallback_) fallback_(env);
      break;
  }
}

// ---------------------------------------------------------------------------
// Distribution phase
// ---------------------------------------------------------------------------

void Participant::on_ps_response(const PsResponse& m) {
  const auto it = tasks_.find(m.task_id);
  if (it == tasks_.end() || it->second.setup.initial != id_) {
    // ps for a task this node never began (or mis-routed to a non-initial
    // node): dropping it silently made distribution wedges undiagnosable,
    // so count the orphan where `desword stats` can see it.
    distribution_orphaned().add();
    return;
  }
  TaskState& task = it->second;
  if (!task.ps.empty()) {
    // Duplicate (re-kick or ps-retry after message loss): re-broadcast ps
    // so participants that missed it can recover.
    for (const ParticipantId& other : task.setup.involved) {
      if (other == id_) continue;
      transport_.send(id_, other, msg::kPsBroadcast,
                      PsBroadcast{m.task_id, task.ps}.serialize());
    }
    if (task.list_submitted) {
      // The submission itself may have been the lost message.
      transport_.send(id_, proxy_, msg::kPocListSubmit,
                      PocListSubmit{task.setup.task_id, task.list.serialize()}
                          .serialize());
    } else {
      maybe_submit_list(task);
    }
    return;
  }
  task.ps = m.ps;
  task.list = poc::PocList(task.ps);
  // Broadcast ps to every other involved participant (§IV-B: "the initial
  // participant v1 requests ps from the proxy and broadcasts it").
  for (const ParticipantId& other : task.setup.involved) {
    if (other == id_) continue;
    transport_.send(id_, other, msg::kPsBroadcast,
                    PsBroadcast{m.task_id, task.ps}.serialize());
  }
  aggregate_poc(task);
  maybe_send_pairs(task);
  maybe_submit_list(task);
}

void Participant::on_ps_broadcast(const PsBroadcast& m) {
  const auto it = tasks_.find(m.task_id);
  if (it == tasks_.end()) {
    distribution_orphaned().add();
    return;
  }
  TaskState& task = it->second;
  if (!task.ps.empty()) {
    // Duplicate: re-announce our POC (receivers dedup) and re-report any
    // pairs in case the originals were lost.
    for (const ParticipantId& parent : task.setup.parents) {
      transport_.send(id_, parent, msg::kPocToParent,
                      PocToParent{m.task_id, task.own_poc->serialize()}
                          .serialize());
    }
    if (task.pairs_sent && task.setup.initial != id_) {
      PocPairsToInitial report;
      report.task_id = task.setup.task_id;
      report.own_poc = task.own_poc->serialize();
      report.pairs = task.pairs;
      transport_.send(id_, task.setup.initial, msg::kPocPairsToInitial,
                      report.serialize());
    }
    return;
  }
  task.ps = m.ps;
  aggregate_poc(task);
  // Announce our POC to every task parent so they can build POC pairs.
  for (const ParticipantId& parent : task.setup.parents) {
    transport_.send(id_, parent, msg::kPocToParent,
                    PocToParent{m.task_id, task.own_poc->serialize()}
                        .serialize());
  }
  // Buffered child POCs may have arrived before ps did.
  for (const Bytes& child : task.buffered_child_pocs) {
    absorb_child_poc(task, child);
  }
  task.buffered_child_pocs.clear();
  maybe_send_pairs(task);
  // The announcements above have no acks: retry them on a bounded timer in
  // case they were lost (on a never-polled per-node sim transport the
  // timer simply never fires and the duplicate-ps chain heals instead).
  if (task.setup.initial != id_) arm_report_retry(task);
}

void Participant::aggregate_poc(TaskState& task) {
  task.crs = crs_cache_->get(task.ps);
  task.scheme = std::make_unique<poc::PocScheme>(task.crs);

  // Start from the honest trace database, then apply the configured
  // distribution-phase deviations (§III-A).
  std::map<Bytes, Bytes> traces = db_.as_poc_input();
  for (const auto& id : dist_behavior_.delete_ids) traces.erase(id);
  for (const auto& [id, fake_da] : dist_behavior_.add_fake) {
    traces[id] = fake_da;
  }
  for (const auto& [id, new_da] : dist_behavior_.modify) {
    const auto it = traces.find(id);
    if (it != traces.end()) it->second = new_da;
  }

  auto [poc, dpoc] = task.scheme->aggregate(id_, traces);
  task.own_poc = poc;
  task.dpoc = std::shared_ptr<poc::PocDecommitment>(std::move(dpoc));
  contexts_[poc.commitment] =
      ProofContext{task.crs, task.dpoc,
                   std::make_shared<poc::PocScheme>(task.crs), poc.commitment};
}

void Participant::on_poc_to_parent(const net::Envelope& env,
                                   const PocToParent& m) {
  (void)env;
  const auto it = tasks_.find(m.task_id);
  if (it == tasks_.end()) {
    distribution_orphaned().add();
    return;
  }
  TaskState& task = it->second;
  if (!task.own_poc.has_value()) {
    // Dedup the buffer: with duplicated links the same child POC can show
    // up several times before ps arrives.
    const auto& buf = task.buffered_child_pocs;
    if (std::find(buf.begin(), buf.end(), m.poc) == buf.end()) {
      task.buffered_child_pocs.push_back(m.poc);
    }
    return;
  }
  absorb_child_poc(task, m.poc);
  maybe_send_pairs(task);
  maybe_submit_list(task);
}

void Participant::absorb_child_poc(TaskState& task, const Bytes& child_poc) {
  const poc::Poc child = poc::Poc::deserialize(child_poc);
  // Only accept POCs from our task children; duplicates are idempotent.
  const auto& children = task.setup.children;
  if (std::find(children.begin(), children.end(), child.participant) ==
      children.end()) {
    return;
  }
  if (task.children_reported.insert(child.participant).second) {
    task.pairs.emplace_back(task.own_poc->serialize(), child_poc);
  }
}

void Participant::maybe_send_pairs(TaskState& task) {
  if (task.pairs_sent || !task.own_poc.has_value()) return;
  if (task.children_reported.size() < task.setup.children.size()) return;
  task.pairs_sent = true;
  PocPairsToInitial report;
  report.task_id = task.setup.task_id;
  report.own_poc = task.own_poc->serialize();
  report.pairs = task.pairs;
  if (task.setup.initial == id_) {
    // The initial participant absorbs its own report locally.
    absorb_report_at_initial(task, id_, report);
    maybe_submit_list(task);
  } else {
    transport_.send(id_, task.setup.initial, msg::kPocPairsToInitial,
                    report.serialize());
    arm_report_retry(task);  // the report has no ack either
  }
}

void Participant::on_poc_pairs_to_initial(const net::Envelope& env,
                                          const PocPairsToInitial& m) {
  const auto it = tasks_.find(m.task_id);
  if (it == tasks_.end() || it->second.setup.initial != id_) {
    distribution_orphaned().add();
    return;
  }
  TaskState& task = it->second;
  absorb_report_at_initial(task, env.from, m);
  maybe_submit_list(task);
}

void Participant::absorb_report_at_initial(TaskState& task,
                                           const ParticipantId& from,
                                           const PocPairsToInitial& m) {
  if (!task.reports_received.insert(from).second) return;  // duplicate
  task.list.add_poc(poc::Poc::deserialize(m.own_poc));
  for (const auto& [parent_bytes, child_bytes] : m.pairs) {
    const poc::Poc parent = poc::Poc::deserialize(parent_bytes);
    const poc::Poc child = poc::Poc::deserialize(child_bytes);
    task.list.add_poc(parent);
    task.list.add_poc(child);
    task.list.add_edge(parent.participant, child.participant);
  }
}

void Participant::maybe_submit_list(TaskState& task) {
  if (task.setup.initial != id_ || task.list_submitted) return;
  if (task.reports_received.size() < task.setup.involved.size()) return;
  task.list_submitted = true;
  transport_.send(
      id_, proxy_, msg::kPocListSubmit,
      PocListSubmit{task.setup.task_id, task.list.serialize()}.serialize());
  // Deliberately keep the ps-retry timer ticking: its list_submitted
  // branch re-sends the submit (bounded by the retry budget), because the
  // proxy never acks it. Arm one if none is pending (a late report can
  // complete the set after the timer already fired).
  if (task.ps_retry_timer == 0 &&
      task.ps_retries < max_distribution_retries_) {
    const std::string task_id = task.setup.task_id;
    task.ps_retry_timer = transport_.set_timer(
        kPsRetryInterval, [this, task_id] { on_ps_retry(task_id); });
  }
}

// ---------------------------------------------------------------------------
// Query phase
// ---------------------------------------------------------------------------

const Participant::ProofContext* Participant::context_for(
    const Bytes& poc_bytes) const {
  try {
    const poc::Poc poc = poc::Poc::deserialize(poc_bytes);
    const auto it = contexts_.find(poc.commitment);
    return it == contexts_.end() ? nullptr : &it->second;
  } catch (const Error&) {
    return nullptr;
  }
}

poc::PocProof Participant::prove_poc(const ProofContext& ctx,
                                     const supplychain::ProductId& product) {
  if (!proof_memo_enabled_) {
    stats_.proofs_generated += 1;
    return ctx.scheme->prove(*ctx.dpoc, product);
  }
  const Bytes key = TaggedHasher("desword/proof-memo")
                        .add(ctx.commitment)
                        .add(product)
                        .digest();
  {
    MutexLock lock(proof_memo_mu_);
    const auto it = proof_memo_.find(key);
    if (it != proof_memo_.end()) {
      proof_memo_hits().add();
      return poc::PocProof::deserialize(it->second);
    }
  }
  // Miss: generate outside the lock (proving is the heavyweight part and
  // must not serialize unrelated memo lookups), then publish. A racing
  // duplicate generation stores identical bytes, so last-write-wins is
  // harmless.
  stats_.proofs_generated += 1;
  poc::PocProof proof = ctx.scheme->prove(*ctx.dpoc, product);
  Bytes serialized = proof.serialize();
  MutexLock lock(proof_memo_mu_);
  if (proof_memo_.size() >= kProofMemoCap) proof_memo_.clear();
  proof_memo_[key] = std::move(serialized);
  return proof;
}

Bytes Participant::make_ownership_proof(const ProofContext& ctx,
                                        const supplychain::ProductId& product) {
  ownership_proofs().add();
  poc::PocProof proof = prove_poc(ctx, product);
  if (query_behavior_.wrong_trace.count(product) > 0) {
    // "Return wrong RFID-trace": tamper with the revealed value. The
    // ZK-EDB value binding makes this detectable (Claim 2).
    auto zk = zkedb::EdbMembershipProof::deserialize(*ctx.crs, proof.zk_proof);
    zk.value = bytes_of("tampered-trace");
    proof.zk_proof = zk.serialize(*ctx.crs);
  }
  return maybe_corrupt_proof(product, proof.serialize());
}

Bytes Participant::maybe_corrupt_proof(const supplychain::ProductId& product,
                                       Bytes proof) const {
  if (query_behavior_.corrupt_proof.count(product) == 0 || proof.empty()) {
    return proof;
  }
  // Deterministic single bit-flip in the middle of the buffer: enough to
  // break either the serialization framing or the cryptographic check,
  // depending on what the flipped byte encoded.
  proof[proof.size() / 2] ^= 0x10;
  return proof;
}

void Participant::set_reply_cache_capacity(std::size_t cap) {
  reply_cache_capacity_ = cap;
  while (reply_cache_capacity_ > 0 &&
         reply_cache_.size() > reply_cache_capacity_) {
    reply_cache_.erase(reply_cache_lru_.back());
    reply_cache_lru_.pop_back();
    reply_cache_evictions().add();
  }
}

void Participant::respond_cached(const net::Envelope& env,
                                 const std::string& resp_type,
                                 std::function<Bytes()> compute) {
  const Bytes key = TaggedHasher("desword.reply-cache")
                        .add_str(env.type)
                        .add(env.payload)
                        .digest();
  const auto it = reply_cache_.find(key);
  if (it != reply_cache_.end()) {
    stats_.duplicate_requests_served += 1;
    reply_cache_hits().add();
    reply_cache_lru_.splice(reply_cache_lru_.begin(), reply_cache_lru_,
                            it->second.pos);
    transport_.send(id_, env.from, it->second.type, it->second.payload);
    return;
  }
  const auto inflight = in_flight_.find(key);
  if (inflight != in_flight_.end()) {
    // The original request's proof is still being generated on the strand:
    // attach to that job instead of re-running it. Each arrival still gets
    // its own response delivery when the build lands.
    stats_.duplicate_requests_served += 1;
    reply_cache_joined().add();
    inflight->second.waiters.push_back(env.from);
    return;
  }
  reply_cache_misses().add();
  if (!strand_) {
    // Inline (legacy) mode: compute, cache, send — all in the handler.
    Bytes payload = compute();
    while (reply_cache_capacity_ > 0 &&
           reply_cache_.size() >= reply_cache_capacity_) {
      reply_cache_.erase(reply_cache_lru_.back());
      reply_cache_lru_.pop_back();
      reply_cache_evictions().add();
    }
    reply_cache_lru_.push_front(key);
    reply_cache_[key] =
        CachedReply{resp_type, payload, reply_cache_lru_.begin()};
    transport_.send(id_, env.from, resp_type, std::move(payload));
    return;
  }
  in_flight_.emplace(key, InFlight{resp_type, {env.from}});
  transport_.add_work();
  std::weak_ptr<void> token = alive_;
  // Raw Strand pointer is safe: the destructor (and rebind) drain the
  // strand before releasing it, so the task never outlives *strand.
  Strand* strand = strand_.get();
  strand_->post([this, token, key, strand, compute = std::move(compute)] {
    // Worker context: reply_cache_/in_flight_ are loop-owned and must not
    // be touched here — results travel back through transport_.post.
    DESWORD_DCHECK(strand->running_on_this_thread(),
                   "proof task escaped its participant strand");
    Bytes payload;
    bool ok = true;
    try {
      payload = compute();
    } catch (...) {
      // Any failure clears the in-flight entry on the loop; a retransmitted
      // request then recomputes from scratch.
      ok = false;
    }
    // Post the completion BEFORE releasing the work bracket: the loop must
    // never observe "no work pending" while a completion is still owed, or
    // the simulator would declare quiescence and fire a stall-scan round.
    transport_.post([this, token, key, ok, payload = std::move(payload)]() mutable {
      if (token.expired()) return;
      finish_in_flight(key, ok, std::move(payload));
    });
    transport_.remove_work();
  });
}

void Participant::finish_in_flight(const Bytes& key, bool ok, Bytes payload) {
  DESWORD_DCHECK_ON_LOOP(transport_);
  const auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return;
  InFlight entry = std::move(it->second);
  in_flight_.erase(it);
  if (!ok) return;
  while (reply_cache_capacity_ > 0 &&
         reply_cache_.size() >= reply_cache_capacity_) {
    reply_cache_.erase(reply_cache_lru_.back());
    reply_cache_lru_.pop_back();
    reply_cache_evictions().add();
  }
  reply_cache_lru_.push_front(key);
  reply_cache_[key] = CachedReply{entry.resp_type, payload,
                                  reply_cache_lru_.begin()};
  for (const net::NodeId& waiter : entry.waiters) {
    transport_.send(id_, waiter, entry.resp_type, payload);
  }
}

void Participant::on_query_request(const net::Envelope& env,
                                   const QueryRequest& m) {
  if (query_behavior_.unresponsive) return;
  // Resolve the proving context here (contexts_ is loop-thread state) and
  // hand the builder a copy: the strand job must not touch the map.
  std::optional<ProofContext> ctx;
  if (const ProofContext* found = context_for(m.poc)) ctx = *found;
  respond_cached(env, msg::kQueryResponse, [this, m, ctx]() -> Bytes {
    return build_query_response(m, ctx);
  });
}

Bytes Participant::build_query_response(const QueryRequest& m,
                                        const std::optional<ProofContext>& ctx) {
  QueryResponse resp;
  resp.query_id = m.query_id;

  if (!ctx.has_value()) {
    // We never built this POC: answer "not processing", no proof. The
    // proxy treats the missing proof according to the product quality.
    resp.claims_processing = false;
    return resp.serialize();
  }

  const bool committed = ctx->dpoc->owns(m.product);
  if (m.quality == ProductQuality::kGood) {
    if (committed && query_behavior_.claim_non_processing.count(m.product) ==
                         0) {
      // Honest: claim processing with an ownership proof (tampered if the
      // wrong-trace deviation is configured).
      resp.claims_processing = true;
      resp.proof = make_ownership_proof(*ctx, m.product);
    } else if (!committed &&
               query_behavior_.claim_processing.count(m.product) > 0) {
      // "Claim processing": the best a cheater can do is send something
      // shaped like a proof — here its (valid) non-ownership proof dressed
      // up as an ownership proof. Verification must reject it.
      ownership_proofs().add();
      poc::PocProof forged = prove_poc(*ctx, m.product);
      forged.ownership = true;
      resp.claims_processing = true;
      resp.proof = forged.serialize();
    } else {
      resp.claims_processing = false;  // forfeit the positive score
    }
  } else {  // bad product
    if (!committed) {
      // Honest denial with a non-ownership proof.
      non_ownership_proofs().add();
      resp.claims_processing = false;
      resp.proof = maybe_corrupt_proof(
          m.product, prove_poc(*ctx, m.product).serialize());
    } else if (query_behavior_.claim_non_processing.count(m.product) > 0) {
      // "Claim non-processing": forge a denial. A valid non-ownership
      // proof cannot exist (Claim 1), so the cheater sends its ownership
      // proof relabelled — or garbage; either way verification rejects.
      non_ownership_proofs().add();
      poc::PocProof forged = prove_poc(*ctx, m.product);
      forged.ownership = false;
      forged.zk_proof = random_bytes(64);
      resp.claims_processing = false;
      resp.proof = forged.serialize();
    } else {
      // Honest: cannot deny; admit processing and await the reveal round.
      resp.claims_processing = true;
    }
  }
  return resp.serialize();
}

void Participant::on_reveal_request(const net::Envelope& env,
                                    const RevealRequest& m) {
  if (query_behavior_.unresponsive) return;
  std::optional<ProofContext> ctx;
  if (const ProofContext* found = context_for(m.poc)) ctx = *found;
  respond_cached(env, msg::kRevealResponse, [this, m, ctx]() -> Bytes {
    return build_reveal_response(m, ctx);
  });
}

Bytes Participant::build_reveal_response(
    const RevealRequest& m, const std::optional<ProofContext>& ctx) {
  RevealResponse resp;
  resp.query_id = m.query_id;
  if (ctx.has_value() && ctx->dpoc->owns(m.product) &&
      !query_behavior_.refuse_reveal) {
    resp.proof = make_ownership_proof(*ctx, m.product);
  }
  return resp.serialize();
}

void Participant::on_next_hop_request(const net::Envelope& env,
                                      const NextHopRequest& m) {
  if (query_behavior_.unresponsive) return;
  respond_cached(env, msg::kNextHopResponse, [this, m]() -> Bytes {
    return build_next_hop_response(m);
  });
}

Bytes Participant::build_next_hop_response(const NextHopRequest& m) const {
  NextHopResponse resp;
  resp.query_id = m.query_id;
  const auto wrong = query_behavior_.wrong_next.find(m.product);
  if (query_behavior_.false_termination.count(m.product) > 0) {
    // Pretend the product's journey ended here.
  } else if (wrong != query_behavior_.wrong_next.end()) {
    resp.next = wrong->second;
  } else {
    const auto it = shipments_.find(m.product);
    if (it != shipments_.end()) resp.next = it->second;
  }
  return resp.serialize();
}

}  // namespace desword::protocol
