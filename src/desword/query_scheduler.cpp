#include "desword/query_scheduler.h"

#include <algorithm>

#include "obs/metrics.h"

namespace desword::protocol {

namespace {

obs::Counter& scheduler_admitted() {
  static obs::Counter& c = obs::metric("protocol.scheduler.admitted");
  return c;
}

obs::Gauge& scheduler_queue_depth() {
  static obs::Gauge& g = obs::gauge_metric("protocol.scheduler.queued");
  return g;
}

}  // namespace

QueryScheduler::QueryScheduler(std::size_t max_concurrent, LaunchFn launch)
    : max_(max_concurrent == 0 ? 1 : max_concurrent),
      launch_fn_(std::move(launch)) {}

bool QueryScheduler::submit(std::uint64_t query_id) {
  if (active_.size() < max_) {
    launch(query_id);
    return true;
  }
  queued_.push_back(query_id);
  scheduler_queue_depth().add(1);
  return false;
}

void QueryScheduler::finished(std::uint64_t query_id) {
  const auto queued_it = std::find(queued_.begin(), queued_.end(), query_id);
  if (queued_it != queued_.end()) {
    // Finished before admission (e.g. aborted externally): it never held a
    // slot, so nothing frees up.
    queued_.erase(queued_it);
    scheduler_queue_depth().add(-1);
    return;
  }
  if (active_.erase(query_id) == 0) return;
  while (active_.size() < max_ && !queued_.empty()) {
    const std::uint64_t next = queued_.front();
    queued_.pop_front();
    scheduler_queue_depth().add(-1);
    // May reenter finished() when the query resolves synchronously; the
    // loop bounds are re-read each iteration, so that is safe.
    launch(next);
  }
}

bool QueryScheduler::is_queued(std::uint64_t query_id) const {
  return std::find(queued_.begin(), queued_.end(), query_id) != queued_.end();
}

void QueryScheduler::launch(std::uint64_t query_id) {
  active_.insert(query_id);
  scheduler_admitted().add();
  launch_fn_(query_id);
}

}  // namespace desword::protocol
