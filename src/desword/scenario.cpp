#include "desword/scenario.h"

#include "common/error.h"

namespace desword::protocol {

namespace {
constexpr const char* kProxyId = "proxy";
}  // namespace

Scenario::Scenario(supplychain::SupplyChainGraph graph, ScenarioConfig config)
    : graph_(std::move(graph)),
      config_(std::move(config)),
      network_(config_.network_seed),
      crs_cache_(std::make_shared<CrsCache>()) {
  ProxyConfig proxy_config;
  proxy_config.edb = config_.edb;
  proxy_config.scores = config_.scores;
  proxy_config.max_retries = config_.max_retries;
  proxy_config.verify.batch_verify = config_.batch_verify;
  proxy_config.verify.worker_threads = config_.worker_threads;
  proxy_config.verify.cache_proofs = config_.verify_cache;
  proxy_config.verify.cache_hops = config_.verify_cache;
  proxy_config.max_concurrent_queries = config_.max_concurrent_queries;
  proxy_config.query_deadline = config_.query_deadline;
  proxy_config.retransmit_base = config_.retransmit_base;
  proxy_config.retransmit_cap = config_.retransmit_cap;
  proxy_config.backoff_factor = config_.backoff_factor;
  proxy_config.backoff_seed = config_.backoff_seed;
  if (config_.fault_plan.has_value()) {
    // One shared transport for the whole deployment: a single poll loop
    // fires every endpoint's timers (distribution retries included) and
    // every send crosses the fault injector.
    sim_ = std::make_unique<net::SimTransport>(network_);
    fault_ = std::make_unique<net::FaultInjector>(*sim_, *config_.fault_plan);
    ProxyDeps deps;
    deps.crs_cache = crs_cache_;
    proxy_ = std::make_unique<Proxy>(kProxyId, *fault_, std::move(deps),
                                     std::move(proxy_config));
  } else {
    proxy_ = std::make_unique<Proxy>(kProxyId, network_, crs_cache_,
                                     std::move(proxy_config));
  }
  for (const ParticipantId& id : graph_.participants()) {
    auto p = fault_ ? std::make_unique<Participant>(
                          id, *fault_, kProxyId,
                          ParticipantDeps{.crs_cache = crs_cache_})
                    : std::make_unique<Participant>(id, network_, kProxyId,
                                                    crs_cache_);
    if (config_.max_distribution_retries > 0) {
      p->set_max_distribution_retries(config_.max_distribution_retries);
    }
    // The scenario-level cache knob governs every memoization layer: the
    // proxy's verification cache AND the participants' proof memo, so a
    // cache-off run truly recomputes everything (the equivalence tests
    // rely on that).
    p->set_proof_memo(config_.verify_cache);
    // One worker pool serves the whole deployment: proxy verifies and
    // participant proofs share the executor, each behind its own strand.
    if (proxy_->executor()) p->set_executor(proxy_->executor());
    participants_.emplace(id, std::move(p));
  }
}

Participant& Scenario::participant(const ParticipantId& id) {
  const auto it = participants_.find(id);
  if (it == participants_.end()) {
    throw ProtocolError("unknown participant: " + id);
  }
  return *it->second;
}

const supplychain::DistributionResult& Scenario::run_task(
    const std::string& task_id, const supplychain::DistributionConfig& dist) {
  if (truths_.find(task_id) != truths_.end()) {
    throw ProtocolError("task already ran: " + task_id);
  }
  supplychain::DistributionResult result = run_distribution(graph_, dist);

  // Wire the physical outcome into the protocol endpoints.
  for (const ParticipantId& id : result.involved) {
    Participant& p = participant(id);
    p.load_database(result.databases.at(id));

    TaskSetup setup;
    setup.task_id = task_id;
    setup.initial = dist.initial;
    setup.involved = result.involved;
    // Task-local topology from the edges the task actually used.
    for (const auto& [parent, children] : result.used_edges) {
      if (parent == id) {
        setup.children.assign(children.begin(), children.end());
      }
      if (children.count(id) > 0) setup.parents.push_back(parent);
    }
    // Ground-truth next hops for this participant's products.
    for (const auto& [product, path] : result.paths) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (path[i] == id) setup.shipments[product] = path[i + 1];
      }
    }
    p.begin_task(setup);
  }

  participant(dist.initial).initiate_task(task_id);
  if (fault_) {
    // Fault mode: the endpoints share one transport, so driving it fires
    // their own distribution retry timers — the protocol heals itself, the
    // harness only polls. A bounded wait that runs out surfaces the
    // initial participant's task-level error instead of spinning forever.
    Participant& initial = participant(dist.initial);
    std::size_t idle_rounds = 0;
    while (idle_rounds < 3) {
      if (proxy_->task_list(task_id) != nullptr) break;
      const std::string error = initial.task_error(task_id);
      if (!error.empty()) {
        throw ProtocolError("distribution failed for " + task_id + ": " +
                            error);
      }
      idle_rounds = fault_->poll() == 0 ? idle_rounds + 1 : 0;
    }
  } else {
    network_.run();
    // Retransmit the distribution phase if messages were dropped: re-kick
    // the initiator a bounded number of times.
    for (int attempt = 0; attempt < config_.max_retries; ++attempt) {
      bool all_done = true;
      for (const ParticipantId& id : result.involved) {
        if (!participant(id).task_complete(task_id)) {
          all_done = false;
          break;
        }
      }
      if (all_done && proxy_->task_list(task_id) != nullptr) break;
      participant(dist.initial).initiate_task(task_id);
      network_.run();
    }
  }
  if (proxy_->task_list(task_id) == nullptr) {
    throw ProtocolError("distribution phase did not complete for " + task_id);
  }

  const auto [it, inserted] = truths_.emplace(task_id, std::move(result));
  return it->second;
}

const supplychain::DistributionResult& Scenario::truth(
    const std::string& task_id) const {
  const auto it = truths_.find(task_id);
  if (it == truths_.end()) throw ProtocolError("unknown task: " + task_id);
  return it->second;
}

const std::vector<ParticipantId>* Scenario::path_of(
    const supplychain::ProductId& product) const {
  for (const auto& [task, truth] : truths_) {
    const auto it = truth.paths.find(product);
    if (it != truth.paths.end()) return &it->second;
  }
  return nullptr;
}

}  // namespace desword::protocol
