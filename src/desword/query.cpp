#include "desword/query.h"

#include <algorithm>

namespace desword::protocol {

std::string to_string(ViolationType type) {
  switch (type) {
    case ViolationType::kClaimProcessingInvalidProof:
      return "claim-processing-invalid-proof";
    case ViolationType::kClaimNonProcessingInvalidProof:
      return "claim-non-processing-invalid-proof";
    case ViolationType::kInvalidReveal:
      return "invalid-reveal";
    case ViolationType::kRefusedReveal:
      return "refused-reveal";
    case ViolationType::kWrongNextHopNotChild:
      return "wrong-next-hop-not-child";
    case ViolationType::kWrongNextHopNotProcessed:
      return "wrong-next-hop-not-processed";
    case ViolationType::kFalseTermination:
      return "false-termination";
    case ViolationType::kNoResponse:
      return "no-response";
  }
  return "unknown";
}

bool QueryOutcome::has_violation(const std::string& participant,
                                 ViolationType type) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) {
                       return v.participant == participant && v.type == type;
                     });
}

}  // namespace desword::protocol
