// Signature-list POC baseline — the strawman of §II-C.
//
// A participant v builds its "POC" as a list of signed messages: for each
// RFID-trace t, σ_t = Sign(t) and σ_v = Sign(v || id || σ_t); the POC is
// the full list {(v || id || σ_t, σ_v)}. Compared against DE-Sword's
// ZK-EDB POC it demonstrates exactly the deficiencies the paper motivates:
//
//   * the POC size is linear in the number of traces (vs one commitment),
//   * every committed product id is visible to the proxy in the clear
//     (no privacy for non-queried products),
//   * a dishonest participant can simply sign fake messages at
//     construction time — the "honest-data owner" failure the double-edged
//     incentive exists to fix.
//
// Used by tests and by bench_baseline as the comparison harness.
#pragma once

#include <string>
#include <vector>

#include "crypto/schnorr.h"
#include "supplychain/trace.h"

namespace desword::baseline {

struct BaselineEntry {
  supplychain::ProductId product;
  Bytes trace_sig;    // σ_t over the serialized trace
  Bytes binding_sig;  // σ_v over v || id || σ_t

  Bytes serialize() const;
  static BaselineEntry deserialize(BytesView data);
};

struct BaselinePoc {
  std::string participant;
  Bytes public_key;
  std::vector<BaselineEntry> entries;

  Bytes serialize() const;
  static BaselinePoc deserialize(BytesView data);

  /// Any third party can read the committed ids — the privacy leak.
  bool contains(const supplychain::ProductId& id) const;
};

class BaselineScheme {
 public:
  explicit BaselineScheme(GroupPtr group);

  /// Builds the signed-list POC for a participant's trace database.
  std::pair<BaselinePoc, SchnorrKeyPair> aggregate(
      const std::string& participant,
      const supplychain::TraceDatabase& db) const;

  /// Checks that `poc` proves `participant` processed `id` (a valid σ_v
  /// binding exists).
  bool proves_processing(const BaselinePoc& poc,
                         const supplychain::ProductId& id) const;

  /// Verifies a returned trace against the σ_t recorded in the POC.
  bool verify_trace(const BaselinePoc& poc,
                    const supplychain::RfidTrace& trace) const;

 private:
  Bytes binding_message(const std::string& participant,
                        const supplychain::ProductId& id,
                        BytesView trace_sig) const;

  GroupPtr group_;
};

}  // namespace desword::baseline
