#include "desword/messages.h"

#include "common/error.h"
#include "common/serial.h"

namespace desword::protocol {

std::string to_string(ProductQuality quality) {
  return quality == ProductQuality::kGood ? "good" : "bad";
}

MessageType message_type_of(std::string_view tag) {
  if (tag == msg::kPsRequest) return MessageType::kPsRequest;
  if (tag == msg::kPsResponse) return MessageType::kPsResponse;
  if (tag == msg::kPsBroadcast) return MessageType::kPsBroadcast;
  if (tag == msg::kPocToParent) return MessageType::kPocToParent;
  if (tag == msg::kPocPairsToInitial) return MessageType::kPocPairsToInitial;
  if (tag == msg::kPocListSubmit) return MessageType::kPocListSubmit;
  if (tag == msg::kQueryRequest) return MessageType::kQueryRequest;
  if (tag == msg::kQueryResponse) return MessageType::kQueryResponse;
  if (tag == msg::kRevealRequest) return MessageType::kRevealRequest;
  if (tag == msg::kRevealResponse) return MessageType::kRevealResponse;
  if (tag == msg::kNextHopRequest) return MessageType::kNextHopRequest;
  if (tag == msg::kNextHopResponse) return MessageType::kNextHopResponse;
  if (tag == msg::kClientQueryRequest) return MessageType::kClientQueryRequest;
  if (tag == msg::kClientQueryResponse) {
    return MessageType::kClientQueryResponse;
  }
  if (tag == msg::kStatusRequest) return MessageType::kStatusRequest;
  if (tag == msg::kStatusResponse) return MessageType::kStatusResponse;
  if (tag == msg::kClientReportRequest) {
    return MessageType::kClientReportRequest;
  }
  if (tag == msg::kAdminShutdown) return MessageType::kAdminShutdown;
  if (tag == msg::kStatsRequest) return MessageType::kStatsRequest;
  return MessageType::kUnknown;
}

const char* to_tag(MessageType type) {
  switch (type) {
    case MessageType::kPsRequest: return msg::kPsRequest;
    case MessageType::kPsResponse: return msg::kPsResponse;
    case MessageType::kPsBroadcast: return msg::kPsBroadcast;
    case MessageType::kPocToParent: return msg::kPocToParent;
    case MessageType::kPocPairsToInitial: return msg::kPocPairsToInitial;
    case MessageType::kPocListSubmit: return msg::kPocListSubmit;
    case MessageType::kQueryRequest: return msg::kQueryRequest;
    case MessageType::kQueryResponse: return msg::kQueryResponse;
    case MessageType::kRevealRequest: return msg::kRevealRequest;
    case MessageType::kRevealResponse: return msg::kRevealResponse;
    case MessageType::kNextHopRequest: return msg::kNextHopRequest;
    case MessageType::kNextHopResponse: return msg::kNextHopResponse;
    case MessageType::kClientQueryRequest: return msg::kClientQueryRequest;
    case MessageType::kClientQueryResponse: return msg::kClientQueryResponse;
    case MessageType::kStatusRequest: return msg::kStatusRequest;
    case MessageType::kStatusResponse: return msg::kStatusResponse;
    case MessageType::kClientReportRequest: return msg::kClientReportRequest;
    case MessageType::kAdminShutdown: return msg::kAdminShutdown;
    case MessageType::kStatsRequest: return msg::kStatsRequest;
    case MessageType::kUnknown: break;
  }
  throw ProtocolError("MessageType::kUnknown has no wire tag");
}

namespace {

void write_optional_bytes(BinaryWriter& w, const std::optional<Bytes>& v) {
  w.boolean(v.has_value());
  if (v.has_value()) w.bytes(*v);
}

std::optional<Bytes> read_optional_bytes(BinaryReader& r) {
  if (!r.boolean()) return std::nullopt;
  return r.bytes();
}

ProductQuality read_quality(BinaryReader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) throw SerializationError("bad product quality");
  return static_cast<ProductQuality>(v);
}

}  // namespace

Bytes PsRequest::serialize() const {
  BinaryWriter w;
  w.str(task_id);
  return w.take();
}

PsRequest PsRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  PsRequest m{r.str()};
  r.expect_done();
  return m;
}

Bytes PsResponse::serialize() const {
  BinaryWriter w;
  w.str(task_id);
  w.bytes(ps);
  return w.take();
}

PsResponse PsResponse::deserialize(BytesView data) {
  BinaryReader r(data);
  PsResponse m;
  m.task_id = r.str();
  m.ps = r.bytes();
  r.expect_done();
  return m;
}

Bytes PocToParent::serialize() const {
  BinaryWriter w;
  w.str(task_id);
  w.bytes(poc);
  return w.take();
}

PocToParent PocToParent::deserialize(BytesView data) {
  BinaryReader r(data);
  PocToParent m;
  m.task_id = r.str();
  m.poc = r.bytes();
  r.expect_done();
  return m;
}

Bytes PocPairsToInitial::serialize() const {
  BinaryWriter w;
  w.str(task_id);
  w.bytes(own_poc);
  w.varint(pairs.size());
  for (const auto& [parent, child] : pairs) {
    w.bytes(parent);
    w.bytes(child);
  }
  return w.take();
}

PocPairsToInitial PocPairsToInitial::deserialize(BytesView data) {
  BinaryReader r(data);
  PocPairsToInitial m;
  m.task_id = r.str();
  m.own_poc = r.bytes();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    Bytes parent = r.bytes();
    Bytes child = r.bytes();
    m.pairs.emplace_back(std::move(parent), std::move(child));
  }
  r.expect_done();
  return m;
}

Bytes PocListSubmit::serialize() const {
  BinaryWriter w;
  w.str(task_id);
  w.bytes(poc_list);
  return w.take();
}

PocListSubmit PocListSubmit::deserialize(BytesView data) {
  BinaryReader r(data);
  PocListSubmit m;
  m.task_id = r.str();
  m.poc_list = r.bytes();
  r.expect_done();
  return m;
}

Bytes QueryRequest::serialize() const {
  BinaryWriter w;
  w.u64(query_id);
  w.bytes(product);
  w.u8(static_cast<std::uint8_t>(quality));
  w.bytes(poc);
  return w.take();
}

QueryRequest QueryRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  QueryRequest m;
  m.query_id = r.u64();
  m.product = r.bytes();
  m.quality = read_quality(r);
  m.poc = r.bytes();
  r.expect_done();
  return m;
}

Bytes QueryResponse::serialize() const {
  BinaryWriter w;
  w.u64(query_id);
  w.boolean(claims_processing);
  write_optional_bytes(w, proof);
  return w.take();
}

QueryResponse QueryResponse::deserialize(BytesView data) {
  BinaryReader r(data);
  QueryResponse m;
  m.query_id = r.u64();
  m.claims_processing = r.boolean();
  m.proof = read_optional_bytes(r);
  r.expect_done();
  return m;
}

Bytes RevealRequest::serialize() const {
  BinaryWriter w;
  w.u64(query_id);
  w.bytes(product);
  w.bytes(poc);
  return w.take();
}

RevealRequest RevealRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  RevealRequest m;
  m.query_id = r.u64();
  m.product = r.bytes();
  m.poc = r.bytes();
  r.expect_done();
  return m;
}

Bytes RevealResponse::serialize() const {
  BinaryWriter w;
  w.u64(query_id);
  write_optional_bytes(w, proof);
  return w.take();
}

RevealResponse RevealResponse::deserialize(BytesView data) {
  BinaryReader r(data);
  RevealResponse m;
  m.query_id = r.u64();
  m.proof = read_optional_bytes(r);
  r.expect_done();
  return m;
}

Bytes NextHopRequest::serialize() const {
  BinaryWriter w;
  w.u64(query_id);
  w.bytes(product);
  return w.take();
}

NextHopRequest NextHopRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  NextHopRequest m;
  m.query_id = r.u64();
  m.product = r.bytes();
  r.expect_done();
  return m;
}

Bytes NextHopResponse::serialize() const {
  BinaryWriter w;
  w.u64(query_id);
  w.boolean(next.has_value());
  if (next.has_value()) w.str(*next);
  return w.take();
}

NextHopResponse NextHopResponse::deserialize(BytesView data) {
  BinaryReader r(data);
  NextHopResponse m;
  m.query_id = r.u64();
  if (r.boolean()) m.next = r.str();
  r.expect_done();
  return m;
}

Bytes ClientQueryRequest::serialize() const {
  BinaryWriter w;
  w.u64(client_ref);
  w.bytes(product);
  w.u8(static_cast<std::uint8_t>(quality));
  w.boolean(task_hint.has_value());
  if (task_hint.has_value()) w.str(*task_hint);
  return w.take();
}

ClientQueryRequest ClientQueryRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  ClientQueryRequest m;
  m.client_ref = r.u64();
  m.product = r.bytes();
  m.quality = read_quality(r);
  if (r.boolean()) m.task_hint = r.str();
  r.expect_done();
  return m;
}

Bytes ClientQueryResponse::serialize() const {
  BinaryWriter w;
  w.u64(client_ref);
  w.boolean(ok);
  w.str(error);
  w.str(report_json);
  return w.take();
}

ClientQueryResponse ClientQueryResponse::deserialize(BytesView data) {
  BinaryReader r(data);
  ClientQueryResponse m;
  m.client_ref = r.u64();
  m.ok = r.boolean();
  m.error = r.str();
  m.report_json = r.str();
  r.expect_done();
  return m;
}

Bytes StatusRequest::serialize() const {
  BinaryWriter w;
  w.str(task_id);
  return w.take();
}

StatusRequest StatusRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  StatusRequest m{r.str()};
  r.expect_done();
  return m;
}

Bytes StatusResponse::serialize() const {
  BinaryWriter w;
  w.str(task_id);
  w.boolean(ready);
  return w.take();
}

StatusResponse StatusResponse::deserialize(BytesView data) {
  BinaryReader r(data);
  StatusResponse m;
  m.task_id = r.str();
  m.ready = r.boolean();
  r.expect_done();
  return m;
}

Bytes ClientReportRequest::serialize() const {
  BinaryWriter w;
  w.u64(client_ref);
  return w.take();
}

ClientReportRequest ClientReportRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  ClientReportRequest m;
  m.client_ref = r.u64();
  r.expect_done();
  return m;
}

Bytes StatsRequest::serialize() const {
  BinaryWriter w;
  w.u64(client_ref);
  return w.take();
}

StatsRequest StatsRequest::deserialize(BytesView data) {
  BinaryReader r(data);
  StatsRequest m;
  m.client_ref = r.u64();
  r.expect_done();
  return m;
}

}  // namespace desword::protocol
