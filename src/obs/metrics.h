// Lock-cheap metrics registry.
//
// Design goals (ISSUE 4 tentpole):
//   * zero-alloc, wait-free hot path — a counter add is one relaxed atomic
//     fetch_add; a histogram observation is four (count, sum, CAS'd max,
//     bucket). No mutex is ever taken while recording.
//   * stable instrument addresses — every instrument is a fixed slot in the
//     process-wide registry, so call sites cache the reference once:
//       static obs::Counter& c = obs::metric("net.frame.sent");
//       c.add();
//   * deterministic snapshots — instruments serialize in registration
//     (instruments.h) order, so two snapshots of identical state are
//     byte-identical JSON.
//   * testability — MetricsRegistry::reset_for_test() zeroes every value in
//     place (addresses stay valid), letting tier-1 tests assert exact
//     deltas.
//
// Instrument names live in obs/instruments.h; tools/desword_lint.py rejects
// call sites using unregistered names.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/timing.h"
#include "obs/instruments.h"

namespace desword::obs {

/// Monotonic event counter. Thread safe; relaxed ordering is enough because
/// totals are only read at snapshot/assert points, never used to sequence.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous signed level (e.g. sessions currently active).
class Gauge {
 public:
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram over power-of-two microsecond boundaries:
/// bucket i counts observations in (2^(i-1), 2^i] µs (bucket 0 is 0 µs,
/// the last bucket is unbounded). 28 buckets cover 1 µs .. ~134 s, enough
/// for any single proof/verify/commit in this codebase.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 28;

  void observe_us(std::uint64_t us) {
    // Write order count -> bucket (bucket release) pairs with the read
    // order buckets (acquire) -> count in snapshots: an observation whose
    // bucket increment a snapshot sees is guaranteed to be in the count it
    // reads afterwards, so Σ buckets ≤ count holds in every snapshot even
    // while observers hammer the histogram.
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
    std::uint64_t prev = max_us_.load(std::memory_order_relaxed);
    while (us > prev && !max_us_.compare_exchange_weak(
                            prev, us, std::memory_order_relaxed)) {
    }
    buckets_[bucket_index(us)].fetch_add(1, std::memory_order_release);
  }
  void observe_ms(double ms) {
    observe_us(ms <= 0.0 ? 0
                         : static_cast<std::uint64_t>(ms * 1000.0 + 0.5));
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum_us() const {
    return sum_us_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_us() const {
    return max_us_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(std::size_t i) const {
    // Acquire pairs with the release increment in observe_us; see there.
    return buckets_[i].load(std::memory_order_acquire);
  }

  static std::size_t bucket_index(std::uint64_t us) {
    if (us == 0) return 0;
    const std::size_t width = static_cast<std::size_t>(std::bit_width(us));
    return width < kBuckets ? width : kBuckets - 1;
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// RAII wall-clock timer recording into a histogram on scope exit.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(h), start_ns_(now_ns()) {}
  ~ScopedTimer() { h_.observe_us((now_ns() - start_ns_) / 1000u); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::uint64_t start_ns_;
};

enum class CounterId : std::size_t {
#define DESWORD_OBS_X(id, name) id,
  DESWORD_OBS_COUNTERS(DESWORD_OBS_X)
#undef DESWORD_OBS_X
      kCount
};

enum class GaugeId : std::size_t {
#define DESWORD_OBS_X(id, name) id,
  DESWORD_OBS_GAUGES(DESWORD_OBS_X)
#undef DESWORD_OBS_X
      kCount
};

enum class HistogramId : std::size_t {
#define DESWORD_OBS_X(id, name) id,
  DESWORD_OBS_HISTOGRAMS(DESWORD_OBS_X)
#undef DESWORD_OBS_X
      kCount
};

/// Process-wide registry. All instruments exist for the life of the
/// process at fixed addresses; lookup by name is a linear scan meant to be
/// done once per call site (cache the reference in a local static).
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(CounterId id) {
    return counters_[static_cast<std::size_t>(id)];
  }
  Gauge& gauge(GaugeId id) { return gauges_[static_cast<std::size_t>(id)]; }
  Histogram& histogram(HistogramId id) {
    return histograms_[static_cast<std::size_t>(id)];
  }
  const Counter& counter(CounterId id) const {
    return counters_[static_cast<std::size_t>(id)];
  }
  const Gauge& gauge(GaugeId id) const {
    return gauges_[static_cast<std::size_t>(id)];
  }
  const Histogram& histogram(HistogramId id) const {
    return histograms_[static_cast<std::size_t>(id)];
  }

  /// Name lookups; throw CheckError for unregistered names (the lint gate
  /// should have caught those at review time).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  static const char* name_of(CounterId id);
  static const char* name_of(GaugeId id);
  static const char* name_of(HistogramId id);

  /// Zeroes every instrument in place. Addresses (and cached references)
  /// stay valid. Not atomic across instruments — call only at quiescent
  /// points in tests.
  void reset_for_test();

  /// Full snapshot as a JSON value: one member per instrument, in
  /// instruments.h order (deterministic). Histograms expand to
  /// {count, sum_ms, max_ms, buckets}.
  json::Value snapshot_value() const;
  /// snapshot_value() pretty-printed.
  std::string snapshot_json() const;
  /// Single-line snapshot containing only instruments that recorded
  /// anything (for embedding in bench JSON lines). "{}" when idle.
  std::string compact_json() const;

 private:
  MetricsRegistry() = default;

  std::array<Counter, static_cast<std::size_t>(CounterId::kCount)> counters_;
  std::array<Gauge, static_cast<std::size_t>(GaugeId::kCount)> gauges_;
  std::array<Histogram, static_cast<std::size_t>(HistogramId::kCount)>
      histograms_;
};

/// Call-site sugar over MetricsRegistry::global(). Lookup is a linear name
/// scan: cache the returned reference in a function-local static.
Counter& metric(std::string_view name);
Gauge& gauge_metric(std::string_view name);
Histogram& histogram_metric(std::string_view name);

/// Installs the desword::set_executor_hooks() instrumentation bridging
/// Executor task accounting into this registry (exec.task.* counters and
/// latency histograms plus the exec.queue.depth gauge). The executor lives
/// below the obs layer and cannot record metrics itself; every site that
/// constructs an Executor calls this (idempotent, thread-safe).
void install_executor_metrics();

}  // namespace desword::obs
