// Per-query trace spans.
//
// A QueryTrace rides inside the proxy's query session state machine and
// records one timestamped span per protocol event: a request leaving for a
// hop, the hop's response arriving, the verify outcome of its proof, a
// retransmission firing, a violation being booked, and finally the query
// finishing. The trace exports as a single JSON line (one query = one
// line), the shape log pipelines ingest.
//
// Span schema (DESIGN.md §8):
//   { "at": <transport clock>, "peer": "<node id>",
//     "event": "<span::k* constant>", "detail": "<free-form qualifier>" }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace desword::obs {

/// Canonical span event names. Tests assert on these, so call sites must
/// use the constants, not ad-hoc strings.
namespace span {
inline constexpr const char* kRequestSent = "request_sent";
inline constexpr const char* kResponseReceived = "response_received";
inline constexpr const char* kVerifyOk = "verify_ok";
inline constexpr const char* kVerifyFail = "verify_fail";
inline constexpr const char* kRetransmit = "retransmit";
inline constexpr const char* kViolation = "violation";
inline constexpr const char* kFinished = "finished";
inline constexpr const char* kQueued = "scheduler_queued";
inline constexpr const char* kAdmitted = "scheduler_admitted";
inline constexpr const char* kDeadlineExceeded = "deadline_exceeded";
}  // namespace span

struct TraceSpan {
  std::uint64_t at = 0;  // transport clock (ticks or ms; see Transport::now)
  std::string peer;      // remote node the span refers to ("" for kFinished)
  std::string event;     // one of the span::k* constants
  std::string detail;    // qualifier: message type, proof kind, verdict, ...
};

class QueryTrace {
 public:
  void set_query_id(std::uint64_t id) { query_id_ = id; }
  std::uint64_t query_id() const { return query_id_; }

  void record(std::uint64_t at, std::string peer, std::string event,
              std::string detail = {});

  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Count of spans with the given event name.
  std::size_t count(std::string_view event) const;

  json::Value to_json() const;
  /// Compact single-line JSON: {"query_id":N,"spans":[...]}.
  std::string to_json_line() const;

 private:
  std::uint64_t query_id_ = 0;
  std::vector<TraceSpan> spans_;
};

}  // namespace desword::obs
