#include "obs/trace.h"

namespace desword::obs {

void QueryTrace::record(std::uint64_t at, std::string peer, std::string event,
                        std::string detail) {
  spans_.push_back(TraceSpan{at, std::move(peer), std::move(event),
                             std::move(detail)});
}

std::size_t QueryTrace::count(std::string_view event) const {
  std::size_t n = 0;
  for (const TraceSpan& s : spans_) {
    if (s.event == event) ++n;
  }
  return n;
}

json::Value QueryTrace::to_json() const {
  json::Object root;
  root["query_id"] = json::Value(static_cast<std::int64_t>(query_id_));
  json::Array spans;
  for (const TraceSpan& s : spans_) {
    json::Object o;
    o["at"] = json::Value(static_cast<std::int64_t>(s.at));
    o["peer"] = json::Value(s.peer);
    o["event"] = json::Value(s.event);
    if (!s.detail.empty()) o["detail"] = json::Value(s.detail);
    spans.push_back(json::Value(std::move(o)));
  }
  root["spans"] = json::Value(std::move(spans));
  return json::Value(std::move(root));
}

std::string QueryTrace::to_json_line() const { return to_json().dump(); }

}  // namespace desword::obs
