// Central registry of every metric instrument in the codebase.
//
// Instrument names follow the `layer.object.verb` scheme (see DESIGN.md §8)
// and MUST be listed here: tools/desword_lint.py cross-checks every
// `metric("...")` / `gauge_metric("...")` / `histogram_metric("...")` call
// site against these X-macro lists, so a typo'd or unregistered name fails
// the lint gate instead of silently creating a dead instrument.
//
// Adding an instrument: add one X(identifier, "layer.object.verb") line to
// the matching list below. The identifier becomes the enum constant
// (CounterId::identifier etc.); the string is the wire/lookup name.
#pragma once

// clang-format off
#define DESWORD_OBS_COUNTERS(X)                                       \
  X(crypto_modexp_calls,        "crypto.modexp.calls")                \
  X(crypto_modexp_fb_hits,      "crypto.modexp.fixed_base_hits")      \
  X(crypto_multi_exp_calls,     "crypto.multi_exp.calls")             \
  X(crypto_batch_folds,         "crypto.batch_verify.folds")          \
  X(crypto_batch_bisects,       "crypto.batch_verify.bisect_steps")   \
  X(zkedb_commit_nodes,         "zkedb.commit.nodes")                 \
  X(zkedb_verify_batched,       "zkedb.verify.batched")               \
  X(zkedb_verify_scalar,        "zkedb.verify.scalar")                \
  X(zkedb_cache_hit,            "zkedb.cache.hit")                    \
  X(zkedb_cache_miss,           "zkedb.cache.miss")                   \
  X(zkedb_cache_evict,          "zkedb.cache.evict")                  \
  X(zkedb_cache_stale,          "zkedb.cache.stale")                  \
  X(zkedb_cache_joined,         "zkedb.cache.joined")                 \
  X(net_frame_sent,             "net.frame.sent")                     \
  X(net_frame_received,         "net.frame.received")                 \
  X(net_frame_dropped,          "net.frame.dropped")                  \
  X(net_fault_dropped,          "net.fault.dropped")                  \
  X(net_fault_delayed,          "net.fault.delayed")                  \
  X(net_fault_duplicated,       "net.fault.duplicated")               \
  X(net_fault_reset,            "net.fault.reset")                    \
  X(net_fault_partitioned,      "net.fault.partitioned")              \
  X(net_fault_crashed,          "net.fault.crashed")                  \
  X(net_retransmit_fired,       "net.retransmit.fired")               \
  X(net_retransmit_refused,     "net.retransmit.refused")             \
  X(net_distribution_orphaned,  "net.distribution.orphaned")          \
  X(net_reply_cache_hits,       "net.reply_cache.hits")               \
  X(net_reply_cache_misses,     "net.reply_cache.misses")             \
  X(net_reply_cache_evictions,  "net.reply_cache.evictions")          \
  X(net_reply_cache_joined,     "net.reply_cache.joined")             \
  X(net_link_stats_evictions,   "net.link_stats.evictions")           \
  X(net_timer_armed,            "net.timer.armed")                    \
  X(net_timer_cancelled,        "net.timer.cancelled")                \
  X(net_timer_fired,            "net.timer.fired")                    \
  X(protocol_query_started,     "protocol.query.started")             \
  X(protocol_query_completed,   "protocol.query.completed")           \
  X(protocol_proof_ownership,   "protocol.proof.ownership")           \
  X(protocol_proof_non_own,     "protocol.proof.non_ownership")       \
  X(protocol_proof_memo_hits,   "protocol.proof.memo_hits")           \
  X(protocol_violation_detected,"protocol.violation.detected")        \
  X(protocol_reputation_events, "protocol.reputation.events")         \
  X(protocol_reputation_dropped,"protocol.reputation.dropped")        \
  X(protocol_pump_stalled,      "protocol.pump.stalled")              \
  X(protocol_deadline_exceeded, "protocol.query.deadline_exceeded")   \
  X(protocol_distribution_gaveup,"protocol.distribution.gaveup")      \
  X(protocol_scheduler_admitted,"protocol.scheduler.admitted")        \
  X(exec_task_submitted,        "exec.task.submitted")                \
  X(exec_task_completed,        "exec.task.completed")

#define DESWORD_OBS_GAUGES(X)                                         \
  X(protocol_sessions_active,   "protocol.sessions.active")           \
  X(protocol_scheduler_queued,  "protocol.scheduler.queued")          \
  X(exec_queue_depth,           "exec.queue.depth")

#define DESWORD_OBS_HISTOGRAMS(X)                                     \
  X(zkedb_commit_wall_ms,       "zkedb.commit.wall_ms")               \
  X(zkedb_prove_wall_ms,        "zkedb.prove.wall_ms")                \
  X(zkedb_verify_wall_ms,       "zkedb.verify.wall_ms")               \
  X(exec_task_wait_ms,          "exec.task.wait_ms")                  \
  X(exec_task_run_ms,           "exec.task.run_ms")
// clang-format on
