#include "obs/metrics.h"

#include "common/error.h"
#include "common/executor.h"

namespace desword::obs {

namespace {

constexpr const char* kCounterNames[] = {
#define DESWORD_OBS_X(id, name) name,
    DESWORD_OBS_COUNTERS(DESWORD_OBS_X)
#undef DESWORD_OBS_X
};

constexpr const char* kGaugeNames[] = {
#define DESWORD_OBS_X(id, name) name,
    DESWORD_OBS_GAUGES(DESWORD_OBS_X)
#undef DESWORD_OBS_X
};

constexpr const char* kHistogramNames[] = {
#define DESWORD_OBS_X(id, name) name,
    DESWORD_OBS_HISTOGRAMS(DESWORD_OBS_X)
#undef DESWORD_OBS_X
};

constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(CounterId::kCount);
constexpr std::size_t kNumGauges = static_cast<std::size_t>(GaugeId::kCount);
constexpr std::size_t kNumHistograms =
    static_cast<std::size_t>(HistogramId::kCount);

json::Value histogram_value(const Histogram& h) {
  // Read order buckets -> count (the reverse of the write order in
  // Histogram::observe_us): every observation visible in a bucket is then
  // guaranteed to be in the count read below, keeping Σ buckets ≤ count in
  // every snapshot taken while observers are recording. The old
  // count-first order could show a bucket total EXCEEDING the count.
  json::Array buckets;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    buckets.push_back(json::Value(static_cast<std::int64_t>(h.bucket(i))));
  }
  json::Object o;
  o["count"] = json::Value(static_cast<std::int64_t>(h.count()));
  o["sum_ms"] = json::Value(static_cast<double>(h.sum_us()) / 1000.0);
  o["max_ms"] = json::Value(static_cast<double>(h.max_us()) / 1000.0);
  o["buckets"] = json::Value(std::move(buckets));
  return json::Value(std::move(o));
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

const char* MetricsRegistry::name_of(CounterId id) {
  return kCounterNames[static_cast<std::size_t>(id)];
}

const char* MetricsRegistry::name_of(GaugeId id) {
  return kGaugeNames[static_cast<std::size_t>(id)];
}

const char* MetricsRegistry::name_of(HistogramId id) {
  return kHistogramNames[static_cast<std::size_t>(id)];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (name == kCounterNames[i]) return counters_[i];
  }
  throw CheckError("unregistered counter: " + std::string(name));
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (name == kGaugeNames[i]) return gauges_[i];
  }
  throw CheckError("unregistered gauge: " + std::string(name));
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    if (name == kHistogramNames[i]) return histograms_[i];
  }
  throw CheckError("unregistered histogram: " + std::string(name));
}

void MetricsRegistry::reset_for_test() {
  for (Counter& c : counters_) {
    c.value_.store(0, std::memory_order_relaxed);
  }
  for (Gauge& g : gauges_) {
    g.value_.store(0, std::memory_order_relaxed);
  }
  for (Histogram& h : histograms_) {
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_us_.store(0, std::memory_order_relaxed);
    h.max_us_.store(0, std::memory_order_relaxed);
    for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
  }
}

json::Value MetricsRegistry::snapshot_value() const {
  json::Object root;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    root[kCounterNames[i]] =
        json::Value(static_cast<std::int64_t>(counters_[i].value()));
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    root[kGaugeNames[i]] = json::Value(gauges_[i].value());
  }
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    root[kHistogramNames[i]] = histogram_value(histograms_[i]);
  }
  return json::Value(std::move(root));
}

std::string MetricsRegistry::snapshot_json() const {
  return snapshot_value().dump_pretty();
}

std::string MetricsRegistry::compact_json() const {
  json::Object root;
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (counters_[i].value() == 0) continue;
    root[kCounterNames[i]] =
        json::Value(static_cast<std::int64_t>(counters_[i].value()));
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (gauges_[i].value() == 0) continue;
    root[kGaugeNames[i]] = json::Value(gauges_[i].value());
  }
  for (std::size_t i = 0; i < kNumHistograms; ++i) {
    const Histogram& h = histograms_[i];
    // One read serves both the emptiness gate and the emitted value — two
    // reads could disagree under concurrent observers (gate passes on 0,
    // output shows 1, or count and sum drift apart more than one in-flight
    // observation can explain).
    const std::uint64_t count = h.count();
    if (count == 0) continue;
    json::Object o;
    o["count"] = json::Value(static_cast<std::int64_t>(count));
    o["sum_ms"] = json::Value(static_cast<double>(h.sum_us()) / 1000.0);
    o["max_ms"] = json::Value(static_cast<double>(h.max_us()) / 1000.0);
    root[kHistogramNames[i]] = json::Value(std::move(o));
  }
  return json::Value(std::move(root)).dump();
}

Counter& metric(std::string_view name) {
  return MetricsRegistry::global().counter(name);
}

Gauge& gauge_metric(std::string_view name) {
  return MetricsRegistry::global().gauge(name);
}

Histogram& histogram_metric(std::string_view name) {
  return MetricsRegistry::global().histogram(name);
}

namespace {

void executor_task_submitted() {
  auto& reg = MetricsRegistry::global();
  reg.counter(CounterId::exec_task_submitted).add();
  reg.gauge(GaugeId::exec_queue_depth).add(1);
}

void executor_task_completed(double wait_ms, double run_ms) {
  auto& reg = MetricsRegistry::global();
  reg.counter(CounterId::exec_task_completed).add();
  reg.gauge(GaugeId::exec_queue_depth).add(-1);
  reg.histogram(HistogramId::exec_task_wait_ms).observe_ms(wait_ms);
  reg.histogram(HistogramId::exec_task_run_ms).observe_ms(run_ms);
}

}  // namespace

void install_executor_metrics() {
  // Re-installing the same function pointers is benign, so no once-guard.
  ExecutorHooks hooks;
  hooks.submitted = &executor_task_submitted;
  hooks.completed = &executor_task_completed;
  set_executor_hooks(hooks);
}

}  // namespace desword::obs
