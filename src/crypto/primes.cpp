#include "crypto/primes.h"

#include <algorithm>

#include "common/error.h"
#include "crypto/hash.h"

namespace desword {

Bignum hash_to_prime(BytesView seed, std::uint64_t index, int bits) {
  if (bits < 16) throw CryptoError("hash_to_prime: bits too small");
  const std::size_t nbytes = (static_cast<std::size_t>(bits) + 7) / 8;
  for (std::uint64_t counter = 0;; ++counter) {
    // Expand SHA-256 output to the requested width with a block counter.
    Bytes material;
    std::uint64_t block = 0;
    while (material.size() < nbytes) {
      TaggedHasher h("desword/hash-to-prime");
      h.add(seed).add_u64(index).add_u64(counter).add_u64(block++);
      append(material, h.digest());
    }
    material.resize(nbytes);
    // Force exact bit length and oddness.
    const int top_shift = static_cast<int>(nbytes * 8) - bits;
    material[0] &= static_cast<std::uint8_t>(0xff >> top_shift);
    material[0] |= static_cast<std::uint8_t>(0x80 >> top_shift);
    material[nbytes - 1] |= 0x01;
    Bignum candidate = Bignum::from_bytes(material);
    if (candidate.is_prime()) return candidate;
  }
}

std::vector<Bignum> derive_primes(BytesView seed, std::size_t count,
                                  int bits) {
  std::vector<Bignum> primes;
  primes.reserve(count);
  std::uint64_t index = 0;
  while (primes.size() < count) {
    Bignum p = hash_to_prime(seed, index++, bits);
    const bool dup =
        std::any_of(primes.begin(), primes.end(),
                    [&](const Bignum& q) { return q == p; });
    if (!dup) primes.push_back(std::move(p));
  }
  return primes;
}

}  // namespace desword
