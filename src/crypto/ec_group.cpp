// NIST P-256 elliptic-curve backend.
//
// Elements are serialized as 33-byte compressed points. P-256 has cofactor
// 1, so every on-curve non-infinity point is a member of the prime-order
// group, which keeps validation cheap.
#include <openssl/ec.h>
#include <openssl/obj_mac.h>

#include <algorithm>
#include <memory>

#include "common/error.h"
#include "crypto/group.h"
#include "crypto/hash.h"

namespace desword {

namespace {

struct EcGroupDeleter {
  void operator()(EC_GROUP* g) const { EC_GROUP_free(g); }
};
struct EcPointDeleter {
  void operator()(EC_POINT* p) const { EC_POINT_free(p); }
};
struct BnCtxDeleter {
  void operator()(BN_CTX* c) const { BN_CTX_free(c); }
};

using EcGroupPtr = std::unique_ptr<EC_GROUP, EcGroupDeleter>;
using EcPointPtr = std::unique_ptr<EC_POINT, EcPointDeleter>;
using BnCtxPtr = std::unique_ptr<BN_CTX, BnCtxDeleter>;

constexpr std::size_t kCompressedPointSize = 33;

class P256Group final : public Group {
 public:
  P256Group()
      : group_(EC_GROUP_new_by_curve_name(NID_X9_62_prime256v1)) {
    if (group_ == nullptr) throw CryptoError("EC_GROUP_new_by_curve_name");
    const BIGNUM* n = EC_GROUP_get0_order(group_.get());
    order_ = Bignum::from_bytes(bn_bytes(n));
    generator_ = encode(EC_GROUP_get0_generator(group_.get()));
  }

  std::string name() const override { return "p256"; }
  const Bignum& order() const override { return order_; }
  Bytes generator() const override { return generator_; }
  std::size_t element_size() const override { return kCompressedPointSize; }

  Bytes exp(BytesView elem, const Bignum& scalar) const override {
    BnCtxPtr ctx(BN_CTX_new());
    EcPointPtr p = decode(elem, ctx.get());
    EcPointPtr r(EC_POINT_new(group_.get()));
    const Bignum s = scalar.mod(order_);
    if (r == nullptr ||
        EC_POINT_mul(group_.get(), r.get(), nullptr, p.get(), s.raw(),
                     ctx.get()) != 1) {
      throw CryptoError("EC_POINT_mul failed");
    }
    return encode(r.get(), ctx.get());
  }

  Bytes mul(BytesView a, BytesView b) const override {
    BnCtxPtr ctx(BN_CTX_new());
    EcPointPtr pa = decode(a, ctx.get());
    EcPointPtr pb = decode(b, ctx.get());
    EcPointPtr r(EC_POINT_new(group_.get()));
    if (r == nullptr ||
        EC_POINT_add(group_.get(), r.get(), pa.get(), pb.get(), ctx.get()) !=
            1) {
      throw CryptoError("EC_POINT_add failed");
    }
    return encode(r.get(), ctx.get());
  }

  /// Straus interleaved multi-scalar multiplication: one shared doubling
  /// chain over the widest scalar, per-point window tables of kWindow bits.
  /// Variable-time, which is fine here — the scalars are verification
  /// equation coefficients, not secrets. (EC_POINTs_mul would do this but
  /// is deprecated in OpenSSL 3.0+.)
  Bytes multi_exp(
      const std::vector<std::pair<Bytes, Bignum>>& terms) const override {
    constexpr int kWindow = 4;
    constexpr std::size_t kRow = (std::size_t{1} << kWindow) - 1;
    BnCtxPtr ctx(BN_CTX_new());

    std::vector<EcPointPtr> table;  // [point][digit-1] = point·digit
    std::vector<Bignum> scalars;
    int max_bits = 0;
    for (const auto& [elem, scalar] : terms) {
      Bignum s = scalar.mod(order_);
      if (s.is_zero()) continue;  // identity contribution
      const EcPointPtr p = decode(elem, ctx.get());
      const std::size_t base = table.size();
      table.resize(base + kRow);
      for (std::size_t k = 1; k <= kRow; ++k) {
        EcPointPtr& entry = table[base + k - 1];
        entry.reset(EC_POINT_new(group_.get()));
        if (entry == nullptr) throw CryptoError("EC_POINT_new failed");
        int rc;
        if (k == 1) {
          rc = EC_POINT_copy(entry.get(), p.get());
        } else if (k == 2) {
          rc = EC_POINT_dbl(group_.get(), entry.get(), p.get(), ctx.get());
        } else {
          rc = EC_POINT_add(group_.get(), entry.get(),
                            table[base + k - 2].get(), p.get(), ctx.get());
        }
        if (rc != 1) throw CryptoError("p256 table build failed");
      }
      max_bits = std::max(max_bits, s.bits());
      scalars.push_back(std::move(s));
    }
    if (scalars.empty()) {
      throw CryptoError("p256 multi_exp: identity product");
    }

    EcPointPtr acc(EC_POINT_new(group_.get()));
    if (acc == nullptr ||
        EC_POINT_set_to_infinity(group_.get(), acc.get()) != 1) {
      throw CryptoError("EC_POINT_set_to_infinity failed");
    }
    bool have_acc = false;
    const int blocks = (max_bits + kWindow - 1) / kWindow;
    for (int j = blocks - 1; j >= 0; --j) {
      if (have_acc) {
        for (int s = 0; s < kWindow; ++s) {
          if (EC_POINT_dbl(group_.get(), acc.get(), acc.get(), ctx.get()) !=
              1) {
            throw CryptoError("EC_POINT_dbl failed");
          }
        }
      }
      for (std::size_t i = 0; i < scalars.size(); ++i) {
        unsigned digit = 0;
        for (int b = 0; b < kWindow; ++b) {
          if (BN_is_bit_set(scalars[i].raw(), j * kWindow + b)) {
            digit |= 1u << b;
          }
        }
        if (digit == 0) continue;
        if (EC_POINT_add(group_.get(), acc.get(), acc.get(),
                         table[i * kRow + (digit - 1)].get(),
                         ctx.get()) != 1) {
          throw CryptoError("EC_POINT_add failed");
        }
        have_acc = true;
      }
    }
    return encode(acc.get(), ctx.get());  // throws if identity
  }

  Bytes inverse(BytesView a) const override {
    BnCtxPtr ctx(BN_CTX_new());
    EcPointPtr p = decode(a, ctx.get());
    if (EC_POINT_invert(group_.get(), p.get(), ctx.get()) != 1) {
      throw CryptoError("EC_POINT_invert failed");
    }
    return encode(p.get(), ctx.get());
  }

  bool is_valid_element(BytesView e) const override {
    if (e.size() != kCompressedPointSize) return false;
    BnCtxPtr ctx(BN_CTX_new());
    EcPointPtr p(EC_POINT_new(group_.get()));
    if (p == nullptr ||
        EC_POINT_oct2point(group_.get(), p.get(), e.data(), e.size(),
                           ctx.get()) != 1) {
      return false;
    }
    return EC_POINT_is_at_infinity(group_.get(), p.get()) == 0;
  }

  Bytes hash_to_element(BytesView seed) const override {
    // Try-and-increment: interpret successive hashes as compressed points.
    BnCtxPtr ctx(BN_CTX_new());
    for (std::uint64_t counter = 0;; ++counter) {
      TaggedHasher h("desword/p256-hash-to-element");
      h.add(seed).add_u64(counter);
      const Bytes digest = h.digest();
      Bytes candidate(kCompressedPointSize);
      candidate[0] = (digest[0] & 1) ? 0x03 : 0x02;
      std::copy(digest.begin(), digest.end(), candidate.begin() + 1);
      EcPointPtr p(EC_POINT_new(group_.get()));
      if (p != nullptr &&
          EC_POINT_oct2point(group_.get(), p.get(), candidate.data(),
                             candidate.size(), ctx.get()) == 1 &&
          EC_POINT_is_at_infinity(group_.get(), p.get()) == 0) {
        return candidate;
      }
    }
  }

 private:
  static Bytes bn_bytes(const BIGNUM* bn) {
    Bytes out(static_cast<std::size_t>(BN_num_bytes(bn)));
    if (!out.empty()) BN_bn2bin(bn, out.data());
    return out;
  }

  EcPointPtr decode(BytesView e, BN_CTX* ctx) const {
    if (e.size() != kCompressedPointSize) {
      throw CryptoError("p256 element has wrong size");
    }
    EcPointPtr p(EC_POINT_new(group_.get()));
    if (p == nullptr ||
        EC_POINT_oct2point(group_.get(), p.get(), e.data(), e.size(), ctx) !=
            1) {
      throw CryptoError("p256 element decode failed");
    }
    return p;
  }

  Bytes encode(const EC_POINT* p, BN_CTX* ctx = nullptr) const {
    BnCtxPtr local;
    if (ctx == nullptr) {
      local.reset(BN_CTX_new());
      ctx = local.get();
    }
    if (EC_POINT_is_at_infinity(group_.get(), p) != 0) {
      // Pedersen commitments hit the identity only with negligible
      // probability; treat it as a hard error rather than widening the
      // wire format.
      throw CryptoError("p256: refusing to encode point at infinity");
    }
    Bytes out(kCompressedPointSize);
    const std::size_t n =
        EC_POINT_point2oct(group_.get(), p, POINT_CONVERSION_COMPRESSED,
                           out.data(), out.size(), ctx);
    if (n != kCompressedPointSize) {
      throw CryptoError("EC_POINT_point2oct failed");
    }
    return out;
  }

  EcGroupPtr group_;
  Bignum order_;
  Bytes generator_;
};

}  // namespace

GroupPtr make_p256_group() { return std::make_shared<P256Group>(); }

}  // namespace desword
