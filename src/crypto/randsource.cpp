#include "crypto/randsource.h"

#include "common/error.h"
#include "crypto/hash.h"

namespace desword {

Bignum SystemRandomSource::rand_bits(int bits) {
  return Bignum::rand_bits(bits);
}

Bignum SystemRandomSource::rand_range(const Bignum& bound) {
  return Bignum::rand_range(bound);
}

RandomSource& system_random() {
  static SystemRandomSource source;
  return source;
}

DrbgRandomSource::DrbgRandomSource(BytesView seed)
    : seed_(seed.begin(), seed.end()) {}

Bytes DrbgRandomSource::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    if (buffer_pos_ >= buffer_.size()) {
      TaggedHasher h("desword/drbg-block");
      h.add(seed_).add_u64(counter_++);
      buffer_ = h.digest();
      buffer_pos_ = 0;
    }
    const std::size_t take =
        std::min(n - out.size(), buffer_.size() - buffer_pos_);
    out.insert(out.end(), buffer_.begin() + static_cast<long>(buffer_pos_),
               buffer_.begin() + static_cast<long>(buffer_pos_ + take));
    buffer_pos_ += take;
  }
  return out;
}

Bignum DrbgRandomSource::rand_bits(int bits) {
  if (bits <= 0) throw CryptoError("DrbgRandomSource::rand_bits: bits <= 0");
  const std::size_t n = (static_cast<std::size_t>(bits) + 7) / 8;
  Bytes raw = bytes(n);
  // Mask down to exactly `bits` bits, then force the top bit so the result
  // has the same "exactly bits wide" contract as Bignum::rand_bits.
  const int excess = static_cast<int>(n * 8) - bits;
  raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return Bignum::from_bytes(raw);
}

Bignum DrbgRandomSource::rand_range(const Bignum& bound) {
  if (bound.is_zero() || bound.is_negative()) {
    throw CryptoError("DrbgRandomSource::rand_range: bound must be > 0");
  }
  const int bits = bound.bits();
  const std::size_t n = (static_cast<std::size_t>(bits) + 7) / 8;
  const int excess = static_cast<int>(n * 8) - bits;
  // Rejection sampling on `bits`-wide candidates: acceptance >= 1/2.
  for (;;) {
    Bytes raw = bytes(n);
    raw[0] &= static_cast<std::uint8_t>(0xff >> excess);
    Bignum candidate = Bignum::from_bytes(raw);
    if (candidate < bound) return candidate;
  }
}

}  // namespace desword
