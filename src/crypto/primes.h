// Prime generation utilities for the strong-RSA q-mercurial commitment.
//
// The qTMC key needs q distinct primes e_1..e_q with every committed message
// strictly below each e_i. Messages are 128-bit digests, so the primes are
// 136-bit and derived *deterministically* from a seed via hash-to-prime: the
// same public seed always yields the same primes, so verifiers can recompute
// (or cache) them from the public key.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/bignum.h"

namespace desword {

/// Deterministically maps (seed, index) to an odd prime of exactly `bits`
/// bits. Iterates SHA-256(seed || index || counter) candidates (top and
/// bottom bits forced) until one passes Miller-Rabin.
Bignum hash_to_prime(BytesView seed, std::uint64_t index, int bits);

/// Derives `count` pairwise-distinct primes of `bits` bits from `seed`.
/// Distinctness is enforced (collision probability is negligible at 136
/// bits, but the check is cheap insurance).
std::vector<Bignum> derive_primes(BytesView seed, std::size_t count, int bits);

}  // namespace desword
