// RAII arbitrary-precision integer built on OpenSSL BIGNUM.
//
// Semantics:
//   * values are signed integers; serialization (`to_bytes`) is the
//     big-endian magnitude and requires a non-negative value,
//   * `mod()` always returns the canonical non-negative representative,
//   * modular helpers (`mod_exp`, `mod_mul`, `mod_inverse`) require
//     non-negative operands reduced or reducible mod `m`.
//
// The class is value-semantic (deep copy) and exception safe: any OpenSSL
// failure throws CryptoError.
#pragma once

#include <openssl/bn.h>

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace desword {

class Bignum {
 public:
  /// Zero.
  Bignum();
  explicit Bignum(std::uint64_t v);
  Bignum(const Bignum& other);
  Bignum(Bignum&& other) noexcept;
  Bignum& operator=(const Bignum& other);
  Bignum& operator=(Bignum&& other) noexcept;
  ~Bignum();

  /// Parses a big-endian magnitude (non-negative result).
  static Bignum from_bytes(BytesView be);
  /// Parses a decimal string (optionally signed).
  static Bignum from_dec(std::string_view dec);
  /// Parses a hex string (optionally signed).
  static Bignum from_hex(std::string_view hex);

  /// Minimal big-endian magnitude (empty for zero). Requires value >= 0.
  Bytes to_bytes() const;
  /// Big-endian magnitude left-padded with zeros to exactly `len` bytes.
  /// Throws if the value does not fit. Requires value >= 0.
  Bytes to_bytes_padded(std::size_t len) const;
  std::string to_dec() const;
  std::string to_hex() const;
  /// Converts to uint64_t; throws CryptoError if negative or too large.
  std::uint64_t to_u64() const;

  int bits() const;
  bool is_zero() const;
  bool is_one() const;
  bool is_odd() const;
  bool is_negative() const;

  Bignum operator+(const Bignum& rhs) const;
  Bignum operator-(const Bignum& rhs) const;
  Bignum operator*(const Bignum& rhs) const;
  Bignum& operator+=(const Bignum& rhs);
  Bignum& operator-=(const Bignum& rhs);
  Bignum& operator*=(const Bignum& rhs);
  Bignum negated() const;

  /// Integer division; if `rem` is non-null receives the remainder
  /// (OpenSSL truncated-division semantics). `d` must be non-zero.
  Bignum divided_by(const Bignum& d, Bignum* rem = nullptr) const;

  /// True iff `d` divides this value exactly.
  bool divisible_by(const Bignum& d) const;

  /// Canonical non-negative residue in [0, m).
  Bignum mod(const Bignum& m) const;

  /// (base ^ exp) mod m. Requires exp >= 0 and m > 0.
  static Bignum mod_exp(const Bignum& base, const Bignum& exp,
                        const Bignum& m);
  /// (a * b) mod m.
  static Bignum mod_mul(const Bignum& a, const Bignum& b, const Bignum& m);
  /// a^{-1} mod m; throws CryptoError if the inverse does not exist.
  static Bignum mod_inverse(const Bignum& a, const Bignum& m);
  static Bignum gcd(const Bignum& a, const Bignum& b);

  std::strong_ordering operator<=>(const Bignum& rhs) const;
  bool operator==(const Bignum& rhs) const;

  /// Uniform value in [0, bound). Requires bound > 0. CSPRNG-backed.
  static Bignum rand_range(const Bignum& bound);
  /// Uniform value with exactly `bits` bits (top bit set). CSPRNG-backed.
  static Bignum rand_bits(int bits);

  /// Miller-Rabin primality check (BN_check_prime).
  bool is_prime() const;
  /// Generates a random prime of exactly `bits` bits. `safe` requests a
  /// safe prime (p = 2q + 1 with q prime).
  static Bignum generate_prime(int bits, bool safe = false);

  /// Escape hatches for OpenSSL interop (e.g. EC scalar multiplication).
  BIGNUM* raw() { return bn_; }
  const BIGNUM* raw() const { return bn_; }

 private:
  explicit Bignum(BIGNUM* owned) : bn_(owned) {}
  static BIGNUM* checked(BIGNUM* bn);

  BIGNUM* bn_;
};

}  // namespace desword
