// Repeated modular exponentiation under one fixed modulus.
//
// Every qTMC operation exponentiates under the same RSA modulus N; OpenSSL
// rebuilds the Montgomery context on every BN_mod_exp call unless one is
// supplied. ModExpContext builds the context once per modulus and reuses
// it, which shaves a measurable constant off all commit/open/verify paths
// (see bench_qtmc_micro). Thread safe after construction: the context is
// only read.
#pragma once

#include <openssl/bn.h>

#include "crypto/bignum.h"

namespace desword {

class ModExpContext {
 public:
  /// Builds the Montgomery context for `modulus` (must be odd and > 1 —
  /// RSA moduli always are). Throws CryptoError otherwise.
  explicit ModExpContext(const Bignum& modulus);
  ~ModExpContext();

  ModExpContext(const ModExpContext&) = delete;
  ModExpContext& operator=(const ModExpContext&) = delete;

  const Bignum& modulus() const { return modulus_; }

  /// (base ^ exponent) mod modulus; exponent must be >= 0.
  Bignum exp(const Bignum& base, const Bignum& exponent) const;

  /// Signed-exponent variant: negative exponents invert the result
  /// (base must be a unit mod modulus).
  Bignum exp_signed(const Bignum& base, const Bignum& exponent) const;

 private:
  Bignum modulus_;
  BN_MONT_CTX* mont_;
};

}  // namespace desword
