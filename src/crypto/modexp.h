// Repeated modular exponentiation under one fixed modulus.
//
// Every qTMC operation exponentiates under the same RSA modulus N; OpenSSL
// rebuilds the Montgomery context on every BN_mod_exp call unless one is
// supplied. ModExpContext builds the context once per modulus and reuses
// it, which shaves a measurable constant off all commit/open/verify paths
// (see bench_qtmc_micro). Thread safe after construction: the context is
// only read.
//
// Fixed-base acceleration: the CRS generators (g, h, h̃, the S_i vector)
// never change after key generation, so callers exponentiating the same
// base thousands of times can trade memory for speed with a windowed
// precomputation table. For window w and exponent length L the table holds
// ceil(L/w) · (2^w − 1) residues (entry [j][k] = base^(k·2^{wj}) in
// Montgomery form) and an exponentiation becomes at most ceil(L/w)
// multiplications — no squarings at all. At w = 4 that is ~4–6× fewer
// modular multiplications than square-and-multiply, for ~4 KiB of table
// per 64 exponent bits at a 2048-bit modulus.
#pragma once

#include <openssl/bn.h>

#include <vector>

#include "crypto/bignum.h"

namespace desword {

class ModExpContext {
 public:
  /// Precomputed fixed-base table (build via `precompute`). Movable,
  /// read-only afterwards, safe to share across threads. Valid only with
  /// the ModExpContext that built it.
  class FixedBaseTable {
   public:
    FixedBaseTable(FixedBaseTable&&) noexcept = default;
    FixedBaseTable& operator=(FixedBaseTable&&) noexcept = default;

    int max_bits() const { return max_bits_; }
    int window() const { return window_; }
    /// Table footprint in residues (diagnostics / memory accounting).
    std::size_t entries() const { return table_.size(); }

   private:
    friend class ModExpContext;
    FixedBaseTable() = default;

    Bignum base_;                // reduced base (for oversized fallback)
    int window_ = 0;             // digit width w
    int max_bits_ = 0;           // largest exponent the table covers
    std::size_t row_ = 0;        // 2^w - 1 entries per block
    std::vector<Bignum> table_;  // [block][digit-1], Montgomery form
  };

  /// Builds the Montgomery context for `modulus` (must be odd and > 1 —
  /// RSA moduli always are). Throws CryptoError otherwise.
  explicit ModExpContext(const Bignum& modulus);
  ~ModExpContext();

  ModExpContext(const ModExpContext&) = delete;
  ModExpContext& operator=(const ModExpContext&) = delete;

  const Bignum& modulus() const { return modulus_; }

  /// (base ^ exponent) mod modulus; exponent must be >= 0.
  Bignum exp(const Bignum& base, const Bignum& exponent) const;

  /// Signed-exponent variant: negative exponents invert the result
  /// (base must be a unit mod modulus).
  Bignum exp_signed(const Bignum& base, const Bignum& exponent) const;

  /// Builds a fixed-base table for exponents up to `max_bits` bits.
  /// `window` in [1, 8]; 4 is a good default (16-entry rows).
  FixedBaseTable precompute(const Bignum& base, int max_bits,
                            int window = 4) const;

  /// (base ^ exponent) via the table; exponent must be >= 0. Exponents
  /// wider than table.max_bits() transparently fall back to plain exp().
  Bignum exp(const FixedBaseTable& table, const Bignum& exponent) const;

  /// Signed-exponent variant of the table path.
  Bignum exp_signed(const FixedBaseTable& table, const Bignum& exponent) const;

 private:
  Bignum modulus_;
  BN_MONT_CTX* mont_;
};

}  // namespace desword
