// Repeated modular exponentiation under one fixed modulus.
//
// Every qTMC operation exponentiates under the same RSA modulus N; OpenSSL
// rebuilds the Montgomery context on every BN_mod_exp call unless one is
// supplied. ModExpContext builds the context once per modulus and reuses
// it, which shaves a measurable constant off all commit/open/verify paths
// (see bench_qtmc_micro). Thread safe after construction: the context is
// only read.
//
// Fixed-base acceleration: the CRS generators (g, h, h̃, the S_i vector)
// never change after key generation, so callers exponentiating the same
// base thousands of times can trade memory for speed with a windowed
// precomputation table. For window w and exponent length L the table holds
// ceil(L/w) · (2^w − 1) residues (entry [j][k] = base^(k·2^{wj}) in
// Montgomery form) and an exponentiation becomes at most ceil(L/w)
// multiplications — no squarings at all. At w = 4 that is ~4–6× fewer
// modular multiplications than square-and-multiply, for ~4 KiB of table
// per 64 exponent bits at a 2048-bit modulus.
//
// Multi-exponentiation: verification equations are products of powers
// ∏ b_i^{x_i} under one modulus. multi_exp() evaluates the whole product
// with a SINGLE shared squaring chain (the dominant cost of any
// exponentiation) instead of one chain per base: Straus interleaving for
// small batches (per-base window tables), Pippenger bucket aggregation for
// large ones (per-window digit buckets, no per-base tables). The crossover
// is picked from a multiplication-count model over the batch size and the
// widest exponent.
#pragma once

#include <openssl/bn.h>

#include <vector>

#include "crypto/bignum.h"

namespace desword {

class ModExpContext {
 public:
  /// Precomputed fixed-base table (build via `precompute`). Movable,
  /// read-only afterwards, safe to share across threads. Valid with any
  /// ModExpContext over the same modulus (the Montgomery representation
  /// depends only on the modulus), which lets one CRS-wide table set serve
  /// every scheme instance derived from the same public key.
  class FixedBaseTable {
   public:
    FixedBaseTable(FixedBaseTable&&) noexcept = default;
    FixedBaseTable& operator=(FixedBaseTable&&) noexcept = default;

    int max_bits() const { return max_bits_; }
    int window() const { return window_; }
    /// Table footprint in residues (diagnostics / memory accounting).
    std::size_t entries() const { return table_.size(); }

   private:
    friend class ModExpContext;
    FixedBaseTable() = default;

    Bignum base_;                // reduced base (for oversized fallback)
    int window_ = 0;             // digit width w
    int max_bits_ = 0;           // largest exponent the table covers
    std::size_t row_ = 0;        // 2^w - 1 entries per block
    std::vector<Bignum> table_;  // [block][digit-1], Montgomery form
  };

  /// One b^x factor of a multi-exponentiation product.
  struct ExpTerm {
    Bignum base;
    Bignum exponent;  // must be >= 0
  };

  /// Builds the Montgomery context for `modulus` (must be odd and > 1 —
  /// RSA moduli always are). Throws CryptoError otherwise.
  explicit ModExpContext(const Bignum& modulus);
  ~ModExpContext();

  ModExpContext(const ModExpContext&) = delete;
  ModExpContext& operator=(const ModExpContext&) = delete;

  const Bignum& modulus() const { return modulus_; }

  /// (base ^ exponent) mod modulus; exponent must be >= 0.
  Bignum exp(const Bignum& base, const Bignum& exponent) const;

  /// Signed-exponent variant: negative exponents invert the result
  /// (base must be a unit mod modulus).
  Bignum exp_signed(const Bignum& base, const Bignum& exponent) const;

  /// Builds a fixed-base table for exponents up to `max_bits` bits.
  /// `window` in [1, 8]; 4 is a good default (16-entry rows).
  FixedBaseTable precompute(const Bignum& base, int max_bits,
                            int window = 4) const;

  /// (base ^ exponent) via the table; exponent must be >= 0. Exponents
  /// wider than table.max_bits() transparently fall back to plain exp().
  Bignum exp(const FixedBaseTable& table, const Bignum& exponent) const;

  /// Signed-exponent variant of the table path.
  Bignum exp_signed(const FixedBaseTable& table, const Bignum& exponent) const;

  /// ∏ terms[i].base ^ terms[i].exponent mod modulus, sharing one squaring
  /// chain across all bases. Zero exponents contribute 1 and are skipped;
  /// an empty (or all-zero-exponent) product returns 1. Negative exponents
  /// throw CryptoError.
  Bignum multi_exp(const std::vector<ExpTerm>& terms) const;

 private:
  Bignum multi_exp_straus(const std::vector<const ExpTerm*>& terms,
                          int max_bits, int window) const;
  Bignum multi_exp_pippenger(const std::vector<const ExpTerm*>& terms,
                             int max_bits, int window) const;

  Bignum modulus_;
  BN_MONT_CTX* mont_;
};

}  // namespace desword
