// Abstract cyclic group of prime order.
//
// The Pedersen-style trapdoor mercurial commitment (TMC) and the Schnorr
// signature baseline are written against this interface. Elements are
// handled as opaque serialized byte strings so that commitments and proofs
// serialize without caring which backend produced them.
//
// Backends:
//   * NIST P-256 elliptic curve (compressed points, 33 bytes) — primary.
//   * Multiplicative subgroup of quadratic residues mod a safe prime
//     (RFC 3526 2048-bit group, plus a small deterministic test group) —
//     ablation backend matching the "classic" DL instantiation.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"
#include "crypto/bignum.h"

namespace desword {

class Group {
 public:
  virtual ~Group() = default;

  /// Human-readable backend identifier ("p256", "modp2048", ...).
  virtual std::string name() const = 0;

  /// The prime group order; scalars live in [0, order).
  virtual const Bignum& order() const = 0;

  /// Serialized canonical generator.
  virtual Bytes generator() const = 0;

  /// elem ^ scalar (scalar taken mod order; must be non-negative).
  virtual Bytes exp(BytesView elem, const Bignum& scalar) const = 0;

  /// Group operation a * b.
  virtual Bytes mul(BytesView a, BytesView b) const = 0;

  /// ∏ elem_i ^ scalar_i (scalars taken mod order; must be non-negative).
  /// Terms whose scalar reduces to 0 contribute the identity and are
  /// skipped. Backends override this with genuine multi-scalar
  /// multiplication sharing one doubling chain; the default multiplies
  /// per-term exp() results. Throws CryptoError if the product is the
  /// identity (it has no serialization on the EC backend) — batched
  /// verification equations avoid the identity with overwhelming
  /// probability, and verifiers treat the throw as a mismatch.
  virtual Bytes multi_exp(
      const std::vector<std::pair<Bytes, Bignum>>& terms) const {
    Bytes acc;
    bool have_acc = false;
    for (const auto& [elem, scalar] : terms) {
      if (scalar.mod(order()).is_zero()) continue;
      Bytes factor = exp(elem, scalar);
      acc = have_acc ? mul(acc, factor) : std::move(factor);
      have_acc = true;
    }
    if (!have_acc) {
      throw CryptoError("Group::multi_exp: identity product");
    }
    return acc;
  }

  /// Group inverse.
  virtual Bytes inverse(BytesView a) const = 0;

  /// Full membership check (expensive for MODP; used at trust boundaries).
  virtual bool is_valid_element(BytesView e) const = 0;

  /// Deterministically maps a seed to a group element with unknown discrete
  /// log relative to the generator (used to derive the Pedersen base `h`
  /// when no trapdoor is wanted).
  virtual Bytes hash_to_element(BytesView seed) const = 0;

  /// Hint that `elem` will be exponentiated many times (a CRS generator):
  /// backends may build a fixed-base precomputation table for it. Optional
  /// — the default is a no-op. Call before sharing the group across
  /// threads, or rely on the backend's own locking.
  virtual void precompute_base(BytesView elem) const { (void)elem; }

  /// Serialized element size in bytes (fixed per backend).
  virtual std::size_t element_size() const = 0;

  /// Uniform scalar in [0, order).
  Bignum random_scalar() const { return Bignum::rand_range(order()); }

  /// generator() ^ scalar.
  Bytes exp_g(const Bignum& scalar) const {
    const Bytes g = generator();
    return exp(g, scalar);
  }

  /// a * b^{-1}.
  Bytes div(BytesView a, BytesView b) const {
    const Bytes ib = inverse(b);
    return mul(a, ib);
  }
};

using GroupPtr = std::shared_ptr<const Group>;

/// NIST P-256 backend.
GroupPtr make_p256_group();

enum class ModpGroupId {
  kRfc3526_2048,  // 2048-bit MODP group 14 (safe prime), production scale
  kTest512,       // fixed 512-bit safe prime, for fast unit tests only
};

/// Safe-prime QR-subgroup backend.
GroupPtr make_modp_group(ModpGroupId id);

}  // namespace desword
