// Safe-prime multiplicative-group backend.
//
// Elements are members of the order-q subgroup of quadratic residues of
// Z_p^* where p = 2q + 1 is a safe prime. Serialization is the big-endian
// value padded to the byte length of p.
#include <map>
#include <string_view>

#include "common/error.h"
#include "common/mutex.h"
#include "crypto/group.h"
#include "crypto/hash.h"
#include "crypto/modexp.h"

namespace desword {

namespace {

// RFC 3526 MODP group 14 (2048-bit safe prime). Verified prime (and
// (p-1)/2 prime) in tests/crypto_group_test.cpp.
constexpr std::string_view kRfc3526Prime2048 =
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

// Fixed 512-bit safe prime for fast unit tests (generated once with
// `openssl prime -generate -bits 512 -safe`).
constexpr std::string_view kTestPrime512 =
    "F31267334161EF3D039697159E43AC113A6D63026E7021F45BC94A28ADA8B2ED"
    "E479C9A8DCA3FDDA5FDA1F5A4E9C096D825D8F042EEC008D4CB2DCE7A7331A07";

class ModpGroup final : public Group {
 public:
  ModpGroup(std::string name, std::string_view prime_hex)
      : name_(std::move(name)),
        p_(Bignum::from_hex(prime_hex)),
        q_((p_ - Bignum(1)).divided_by(Bignum(2))),
        elem_size_(static_cast<std::size_t>((p_.bits() + 7) / 8)),
        mexp_(p_) {
    // Generator of the QR subgroup: 4 = 2^2 is always a quadratic residue.
    g_ = Bignum(4).mod(p_).to_bytes_padded(elem_size_);
  }

  std::string name() const override { return name_; }
  const Bignum& order() const override { return q_; }
  Bytes generator() const override { return g_; }
  std::size_t element_size() const override { return elem_size_; }

  Bytes exp(BytesView elem, const Bignum& scalar) const override {
    const Bignum e = decode(elem);
    const Bignum s = scalar.mod(q_);
    {
      ReaderMutexLock lk(fixed_mu_);
      const auto it = fixed_.find(Bytes(elem.begin(), elem.end()));
      if (it != fixed_.end()) return encode(mexp_.exp(it->second, s));
    }
    return encode(mexp_.exp(e, s));
  }

  void precompute_base(BytesView elem) const override {
    (void)decode(elem);  // validate before caching
    Bytes key(elem.begin(), elem.end());
    WriterMutexLock lk(fixed_mu_);
    if (fixed_.find(key) != fixed_.end()) return;
    // Scalars are reduced mod q before exponentiation, so q's width bounds
    // every table lookup.
    ModExpContext::FixedBaseTable table =
        mexp_.precompute(Bignum::from_bytes(elem), q_.bits());
    fixed_.emplace(std::move(key), std::move(table));
  }

  Bytes mul(BytesView a, BytesView b) const override {
    return encode(Bignum::mod_mul(decode(a), decode(b), p_));
  }

  Bytes multi_exp(
      const std::vector<std::pair<Bytes, Bignum>>& terms) const override {
    std::vector<ModExpContext::ExpTerm> exps;
    exps.reserve(terms.size());
    for (const auto& [elem, scalar] : terms) {
      Bignum s = scalar.mod(q_);
      if (s.is_zero()) continue;  // identity contribution
      exps.push_back(ModExpContext::ExpTerm{decode(elem), std::move(s)});
    }
    if (exps.empty()) {
      throw CryptoError("modp multi_exp: identity product");
    }
    return encode(mexp_.multi_exp(exps));
  }

  Bytes inverse(BytesView a) const override {
    return encode(Bignum::mod_inverse(decode(a), p_));
  }

  bool is_valid_element(BytesView e) const override {
    if (e.size() != elem_size_) return false;
    const Bignum v = Bignum::from_bytes(e);
    if (v.is_zero() || v >= p_) return false;
    // Subgroup membership: v^q == 1 (one exponentiation; trust-boundary
    // only, not on hot paths).
    return Bignum::mod_exp(v, q_, p_).is_one();
  }

  Bytes hash_to_element(BytesView seed) const override {
    // Expand the seed to the width of p, reduce, then square to land in
    // the QR subgroup. The discrete log w.r.t. the generator is unknown.
    Bytes material;
    std::uint64_t block = 0;
    while (material.size() < elem_size_ + 16) {
      TaggedHasher h("desword/modp-hash-to-element");
      h.add(seed).add_u64(block++);
      append(material, h.digest());
    }
    Bignum v = Bignum::from_bytes(material).mod(p_);
    if (v.is_zero()) v = Bignum(2);  // astronomically unlikely
    return encode(Bignum::mod_mul(v, v, p_));
  }

 private:
  Bignum decode(BytesView e) const {
    if (e.size() != elem_size_) {
      throw CryptoError("modp element has wrong size");
    }
    Bignum v = Bignum::from_bytes(e);
    if (v.is_zero() || v >= p_) {
      throw CryptoError("modp element out of range");
    }
    return v;
  }

  Bytes encode(const Bignum& v) const { return v.to_bytes_padded(elem_size_); }

  std::string name_;
  Bignum p_;
  Bignum q_;
  std::size_t elem_size_;
  ModExpContext mexp_;
  Bytes g_;

  // Fixed-base tables for registered generators (precompute_base).
  mutable SharedMutex fixed_mu_;
  mutable std::map<Bytes, ModExpContext::FixedBaseTable> fixed_
      DESWORD_GUARDED_BY(fixed_mu_);
};

}  // namespace

GroupPtr make_modp_group(ModpGroupId id) {
  switch (id) {
    case ModpGroupId::kRfc3526_2048:
      return std::make_shared<ModpGroup>("modp2048", kRfc3526Prime2048);
    case ModpGroupId::kTest512:
      return std::make_shared<ModpGroup>("modp512-test", kTestPrime512);
  }
  throw ConfigError("unknown modp group id");
}

}  // namespace desword
