// RSA modulus generation for the strong-RSA q-mercurial commitment.
//
// The modulus is produced by a trusted setup (the query proxy in DE-Sword);
// the factorization is discarded after generation unless the caller opts to
// keep it for simulator/equivocation tests.
#pragma once

#include <optional>

#include "crypto/bignum.h"

namespace desword {

struct RsaModulus {
  Bignum n;
  /// Factors; present only when generated with `keep_factors = true`.
  std::optional<Bignum> p;
  std::optional<Bignum> q;
};

/// Generates an RSA modulus of exactly `bits` bits (two random primes of
/// bits/2). `bits` must be even and >= 256.
RsaModulus generate_rsa_modulus(int bits, bool keep_factors = false);

/// Samples a random quadratic residue mod n with unknown square root
/// structure (r^2 for uniform r), suitable as a group generator in QR_n.
Bignum random_quadratic_residue(const Bignum& n);

}  // namespace desword
