#include "crypto/rsa.h"

#include "common/error.h"

namespace desword {

RsaModulus generate_rsa_modulus(int bits, bool keep_factors) {
  if (bits < 256 || bits % 2 != 0) {
    throw CryptoError("RSA modulus bits must be even and >= 256");
  }
  for (;;) {
    Bignum p = Bignum::generate_prime(bits / 2);
    Bignum q = Bignum::generate_prime(bits / 2);
    if (p == q) continue;
    Bignum n = p * q;
    if (n.bits() != bits) continue;  // rare: product lost a bit
    RsaModulus out{std::move(n), std::nullopt, std::nullopt};
    if (keep_factors) {
      out.p = std::move(p);
      out.q = std::move(q);
    }
    return out;
  }
}

Bignum random_quadratic_residue(const Bignum& n) {
  for (;;) {
    Bignum r = Bignum::rand_range(n);
    if (r.is_zero() || !Bignum::gcd(r, n).is_one()) continue;
    return Bignum::mod_mul(r, r, n);
  }
}

}  // namespace desword
