#include "crypto/schnorr.h"

#include "common/error.h"
#include "common/serial.h"
#include "crypto/hash.h"

namespace desword {

namespace {

Bignum challenge_of(const Group& group, BytesView commitment_r,
                    BytesView public_key, BytesView msg) {
  TaggedHasher h("desword/schnorr");
  h.add_str(group.name()).add(commitment_r).add(public_key).add(msg);
  return Bignum::from_bytes(h.digest()).mod(group.order());
}

}  // namespace

Bytes SchnorrSignature::serialize(const Group& group) const {
  const std::size_t scalar_len =
      static_cast<std::size_t>((group.order().bits() + 7) / 8);
  BinaryWriter w;
  w.bytes(challenge.to_bytes_padded(scalar_len));
  w.bytes(response.to_bytes_padded(scalar_len));
  return w.take();
}

SchnorrSignature SchnorrSignature::deserialize(const Group& group,
                                               BytesView data) {
  BinaryReader r(data);
  SchnorrSignature sig{Bignum::from_bytes(r.bytes()),
                       Bignum::from_bytes(r.bytes())};
  r.expect_done();
  if (sig.challenge >= group.order() || sig.response >= group.order()) {
    throw SerializationError("schnorr scalar out of range");
  }
  return sig;
}

SchnorrKeyPair schnorr_keygen(const Group& group) {
  Bignum sk = group.random_scalar();
  while (sk.is_zero()) sk = group.random_scalar();
  Bytes pk = group.exp_g(sk);
  return SchnorrKeyPair{std::move(sk), std::move(pk)};
}

SchnorrSignature schnorr_sign(const Group& group, const Bignum& secret,
                              BytesView msg) {
  Bignum k = group.random_scalar();
  while (k.is_zero()) k = group.random_scalar();
  const Bytes big_r = group.exp_g(k);
  const Bytes pk = group.exp_g(secret);
  Bignum e = challenge_of(group, big_r, pk, msg);
  Bignum s = (k + e * secret).mod(group.order());
  return SchnorrSignature{std::move(e), std::move(s)};
}

bool schnorr_verify(const Group& group, BytesView public_key, BytesView msg,
                    const SchnorrSignature& sig) {
  try {
    if (!group.is_valid_element(public_key)) return false;
    // R' = g^s * pk^{-e}; accept iff H(R' || pk || msg) == e.
    const Bytes gs = group.exp_g(sig.response);
    const Bytes pk_e = group.exp(public_key, sig.challenge);
    const Bytes big_r = group.div(gs, pk_e);
    return challenge_of(group, big_r, public_key, msg) == sig.challenge;
  } catch (const CryptoError&) {
    return false;
  }
}

}  // namespace desword
